module tracon

go 1.22
