// Quickstart: bring up TRACON, ask the interference models questions, and
// schedule one batch of data-intensive tasks with and without
// interference awareness.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tracon"
)

func main() {
	log.SetFlags(0)

	// One call builds the whole system: the simulated Xen testbed, the
	// profiling run (8 benchmarks × 125 synthetic workloads) and the
	// nonlinear interference models the paper recommends.
	sys, err := tracon.New(tracon.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profiling the eight Table 3 benchmarks (takes a second or two)...")
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}

	// Question 1: how long does a DNA search take alone, and how long next
	// to a video encoder hammering the same disk?
	solo, err := sys.SoloRuntime("blastn")
	if err != nil {
		log.Fatal(err)
	}
	withVideo, err := sys.PredictRuntime("blastn", "video")
	if err != nil {
		log.Fatal(err)
	}
	withEmail, err := sys.PredictRuntime("blastn", "email")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblastn solo:            %6.0f s\n", solo)
	fmt.Printf("blastn next to video:   %6.0f s  (%.1fx — avoid this pairing)\n", withVideo, withVideo/solo)
	fmt.Printf("blastn next to email:   %6.0f s  (%.1fx — a good neighbour)\n", withEmail, withEmail/solo)

	// Question 2: does interference-aware batch scheduling beat FIFO on a
	// small cluster? 16 tasks drawn from the paper's medium I/O mix onto 8
	// machines (two VMs each).
	fifo, err := sys.RunStatic(tracon.Policy{Name: "fifo"}, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	mibs, err := sys.RunStatic(tracon.Policy{Name: "mibs"}, 8, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFIFO   total runtime: %7.0f s, total IOPS: %7.1f\n", fifo.TotalRuntime, fifo.TotalIOPS)
	fmt.Printf("MIBS   total runtime: %7.0f s, total IOPS: %7.1f\n", mibs.TotalRuntime, mibs.TotalIOPS)
	fmt.Printf("Speedup over FIFO: %.3f\n", tracon.Speedup(fifo, mibs))
}
