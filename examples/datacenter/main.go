// Datacenter: a day in the life of a 64-machine virtualized cluster under
// Poisson task arrivals — the paper's Section 4.7 scenario. Compares the
// four schedulers (FIFO, MIOS, MIBS₈, MIX₈) on identical workloads across
// three arrival rates and reports normalized throughput.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"tracon"
)

func main() {
	log.SetFlags(0)

	sys, err := tracon.New(tracon.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bringing up TRACON...")
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}

	const machines = 64
	const hours = 4.0
	policies := []tracon.Policy{
		{Name: "fifo"},
		{Name: "mios"},
		{Name: "mibs", QueueLen: 8},
		{Name: "mix", QueueLen: 8},
	}

	for _, lambda := range []float64{5, 20, 60} {
		fmt.Printf("\nλ = %.0f tasks/minute, medium I/O mix, %d machines, %.0f h\n", lambda, machines, hours)
		fmt.Printf("%-8s %10s %12s %10s %10s\n", "sched", "completed", "mean rt (s)", "wait (s)", "vs FIFO")
		var fifo tracon.Report
		for _, p := range policies {
			rep, err := sys.RunDynamic(p, machines, lambda, hours, tracon.Medium)
			if err != nil {
				log.Fatal(err)
			}
			if p.Name == "fifo" {
				fifo = rep
			}
			fmt.Printf("%-8s %10d %12.0f %10.0f %10.3f\n",
				rep.Scheduler, rep.Completed, rep.MeanRuntime, rep.MeanWait,
				tracon.NormalizedThroughput(fifo, rep))
		}
	}

	fmt.Println("\nAt low λ the cluster is mostly idle and every policy looks like FIFO;")
	fmt.Println("as λ saturates the disks, the interference-aware batch schedulers pull ahead.")
}
