// Workflow: scheduling a data-intensive scientific pipeline — the class of
// application TRACON targets. Three bioinformatics workflows (sequence
// search → mining → dedup archive, with a report stage joining them) are
// pushed through a small cluster, with and without interference awareness,
// and the workflow makespan is compared.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"

	"tracon"
)

// pipeline builds one analysis workflow: a DNA search fans out into a
// mining stage and a compile/post-process stage, which join into a dedup
// archival step.
func pipeline(id string) []tracon.WorkflowTask {
	return []tracon.WorkflowTask{
		{Name: id + "-search", App: "blastn"},
		{Name: id + "-mine", App: "freqmine", After: []string{id + "-search"}},
		{Name: id + "-post", App: "compile", After: []string{id + "-search"}},
		{Name: id + "-archive", App: "dedup", After: []string{id + "-mine", id + "-post"}},
	}
}

func main() {
	log.SetFlags(0)

	sys, err := tracon.New(tracon.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bringing up TRACON...")
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}

	// Three concurrent pipelines on four machines: stages from different
	// pipelines inevitably share machines, so placement matters.
	var stages []tracon.WorkflowTask
	for _, id := range []string{"wf1", "wf2", "wf3"} {
		stages = append(stages, pipeline(id)...)
	}

	const machines = 4
	fmt.Printf("\n%d workflow stages on %d machines (%d VMs)\n\n", len(stages), machines, 2*machines)
	fmt.Printf("%-10s %14s %16s %14s\n", "scheduler", "makespan (s)", "total runtime", "mean wait (s)")

	var fifoRep tracon.Report
	var fifoSpan float64
	for _, p := range []tracon.Policy{
		{Name: "fifo"},
		{Name: "mios"},
		{Name: "mibs"},
	} {
		rep, span, err := sys.RunWorkflow(p, machines, stages)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Completed != len(stages) {
			log.Fatalf("%s finished only %d of %d stages", rep.Scheduler, rep.Completed, len(stages))
		}
		if p.Name == "fifo" {
			fifoRep, fifoSpan = rep, span
		}
		fmt.Printf("%-10s %14.0f %16.0f %14.0f\n", rep.Scheduler, span, rep.TotalRuntime, rep.MeanWait)
		if p.Name == "mibs" {
			fmt.Printf("\nMIBS vs FIFO: makespan %.2fx faster, total runtime speedup %.3f\n",
				fifoSpan/span, tracon.Speedup(fifoRep, rep))
		}
	}
}
