// Modelcompare: the paper's model bake-off (Fig 3 / Fig 4) through the
// public API. Trains the weighted mean method, the linear model and the
// nonlinear model on identical profiles, compares their cross-validated
// prediction errors, and shows how model quality translates into
// scheduling quality.
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"

	"tracon"
)

func main() {
	log.SetFlags(0)

	kinds := []tracon.ModelKind{tracon.WMM, tracon.LM, tracon.NLM}
	systems := map[tracon.ModelKind]*tracon.System{}
	for _, k := range kinds {
		sys, err := tracon.New(tracon.Config{Model: k})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("training %s models...\n", k)
		if err := sys.RegisterBenchmarks(); err != nil {
			log.Fatal(err)
		}
		systems[k] = sys
	}

	fmt.Printf("\nCross-validated runtime prediction error per benchmark (%%):\n")
	fmt.Printf("%-10s", "app")
	for _, k := range kinds {
		fmt.Printf(" %8s", k)
	}
	fmt.Println()
	apps := systems[tracon.NLM].Apps()
	means := map[tracon.ModelKind]float64{}
	for _, app := range apps {
		fmt.Printf("%-10s", app)
		for _, k := range kinds {
			m, _, err := systems[k].ModelError(app, tracon.MinRuntime)
			if err != nil {
				log.Fatal(err)
			}
			means[k] += m
			fmt.Printf("   %5.1f ", m*100)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "MEAN")
	for _, k := range kinds {
		fmt.Printf("   %5.1f ", means[k]/float64(len(apps))*100)
	}
	fmt.Println()

	// Model quality → scheduling quality: the same batch scheduled by MIBS
	// with each model family, normalized to FIFO.
	fmt.Println("\nMIBS speedup over FIFO with each model family (16 machines, medium mix):")
	for _, k := range kinds {
		sys := systems[k]
		fifo, err := sys.RunStatic(tracon.Policy{Name: "fifo"}, 16, nil)
		if err != nil {
			log.Fatal(err)
		}
		mibs, err := sys.RunStatic(tracon.Policy{Name: "mibs"}, 16, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s speedup %.3f\n", k, tracon.Speedup(fifo, mibs))
	}

	// The ground-truth upper bound: what a perfect model would achieve.
	sys := systems[tracon.NLM]
	fifo, err := sys.RunStatic(tracon.Policy{Name: "fifo"}, 16, nil)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := sys.RunStatic(tracon.Policy{Name: "mibs", Oracle: true}, 16, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  oracle (perfect model) speedup %.3f\n", tracon.Speedup(fifo, oracle))
}
