// Adaptation: TRACON's online learning loop (Section 3.1 / Fig 7). The
// manager keeps observing production co-runs, tracks its models' prediction
// errors, and periodically rebuilds each model from the freshest data —
// so when the environment changes (here: the storage migrates from the
// local disk to an iSCSI volume), accuracy recovers on its own.
//
//	go run ./examples/adaptation
package main

import (
	"fmt"
	"log"

	"tracon"
)

func main() {
	log.SetFlags(0)

	// The production system: trained on the local HDD.
	sys, err := tracon.New(tracon.Config{Storage: tracon.HDD})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training blastn's interference model on local storage...")
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}

	// Feed production observations from the same environment: the model
	// should stay accurate and keep rebuilding quietly in the background.
	fmt.Println("\nphase 1: stable environment (co-runs against each benchmark)")
	backgrounds := sys.Apps()
	for round := 0; round < 6; round++ {
		for _, bg := range backgrounds {
			if _, err := sys.Observe("blastn", bg); err != nil {
				log.Fatal(err)
			}
		}
	}
	obs, errNow, rebuilds, err := sys.AdaptationStats("blastn", 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after %d observations: recent prediction error %.0f%%, %d rebuilds\n",
		obs, errNow*100, rebuilds)

	// An environment change: the same applications on an iSCSI volume. The
	// HDD-trained model's predictions no longer match what the new
	// environment measures — exactly the drift the adaptation loop exists
	// to catch.
	fmt.Println("\nphase 2: the storage migrates to iSCSI — how wrong is the stale model?")
	remote, err := tracon.New(tracon.Config{Storage: tracon.ISCSI, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := remote.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %14s %14s %8s\n", "pairing", "stale predict", "new measured", "error")
	for _, bg := range []string{"video", "dedup", "compile", "email"} {
		stale, err := sys.PredictRuntime("blastn", bg)
		if err != nil {
			log.Fatal(err)
		}
		// The remote system's prediction is trained on the new environment
		// and tracks its measured reality.
		actual, err := remote.PredictRuntime("blastn", bg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("blastn + %-12s %12.0f s %12.0f s %7.0f%%\n",
			bg, stale, actual, 100*abs(stale-actual)/actual)
	}

	fmt.Println("\nThe full shock-and-recovery timeline (errors spiking to ~70% and")
	fmt.Println("recovering to ~5% after two rebuilds of the sliding window) is Fig 7:")
	fmt.Println("  go run ./cmd/traconbench -only fig7")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
