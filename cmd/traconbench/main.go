// Command traconbench regenerates the TRACON paper's evaluation: every
// table and figure of Section 4, printed as text tables. Individual
// experiments are selected with -only; the heavyweight dynamic sweeps can
// be trimmed with -hours and -quick.
//
// Usage:
//
//	traconbench                 # everything, paper-scale where feasible
//	traconbench -quick          # reduced machine counts and horizons
//	traconbench -only fig3,fig7 # a subset
//	traconbench -spotcheck      # include the 10,000-machine run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tracon/internal/experiments"
	"tracon/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traconbench: ")

	var (
		only      = flag.String("only", "", "comma-separated subset: table1,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,fig12,storage")
		quick     = flag.Bool("quick", false, "smaller machine counts and shorter horizons")
		hours     = flag.Float64("hours", 0, "override the dynamic horizon in hours (0 = default)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		spotcheck = flag.Bool("spotcheck", false, "also run the 10,000-machine Sec 4.8 spot check")
		csvDir    = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	fmt.Fprintln(os.Stderr, "building environment (profiling 8 apps × 125 workloads, training models)...")
	env, err := experiments.NewEnv(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	staticMachines := []int{8, 64, 256, 1024}
	dynMachines := []int{8, 64, 256, 1024}
	lambdas := []float64{2, 5, 10, 20, 50, 100}
	dynHours := 10.0
	repeats := 3
	if *quick {
		staticMachines = []int{8, 64}
		dynMachines = []int{8, 64}
		lambdas = []float64{2, 10, 50}
		dynHours = 2
		repeats = 2
	}
	if *hours > 0 {
		dynHours = *hours
	}

	section := func(name string, run func() (fmt.Stringer, error)) {
		if !sel(name) {
			return
		}
		t0 := time.Now()
		res, err := run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		if *csvDir != "" {
			if tab, ok := res.(trace.Tabular); ok {
				path := filepath.Join(*csvDir, name+".csv")
				if err := trace.Save(path, tab.Table()); err != nil {
					log.Fatalf("%s: writing %s: %v", name, path, err)
				}
				fmt.Fprintf(os.Stderr, "[%s CSV → %s]\n", name, path)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	section("table1", func() (fmt.Stringer, error) { return experiments.Table1(env) })
	section("fig3", func() (fmt.Stringer, error) { return experiments.Fig3(env) })
	section("fig4", func() (fmt.Stringer, error) { return experiments.Fig4(env, 10) })
	section("fig5", func() (fmt.Stringer, error) { return experiments.Fig5(env) })
	section("fig6", func() (fmt.Stringer, error) { return experiments.Fig6(env) })
	section("fig7", func() (fmt.Stringer, error) { return experiments.Fig7(env) })
	section("fig8", func() (fmt.Stringer, error) { return experiments.Fig8(env, staticMachines, repeats) })
	section("fig9", func() (fmt.Stringer, error) { return experiments.Fig9(env, lambdas, dynHours) })
	section("fig10", func() (fmt.Stringer, error) { return experiments.Fig10(env, lambdas, dynHours) })
	section("fig11", func() (fmt.Stringer, error) { return experiments.Fig11(env, dynMachines, dynHours) })
	section("fig12", func() (fmt.Stringer, error) { return experiments.Fig12(env, dynMachines, dynHours) })
	section("storage", func() (fmt.Stringer, error) { return experiments.StorageStudy(env) })
	if *spotcheck {
		section("spotcheck", func() (fmt.Stringer, error) { return experiments.SpotCheck10k(env, 2) })
	}

	fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
}
