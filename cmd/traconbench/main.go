// Command traconbench regenerates the TRACON paper's evaluation: every
// table and figure of Section 4, printed as text tables. Individual
// experiments are selected with -only; the heavyweight dynamic sweeps can
// be trimmed with -hours and -quick. Environment construction and the
// experiment sweep fan out across -parallel workers (default GOMAXPROCS);
// the output bytes are identical at every worker count.
//
// Usage:
//
//	traconbench                 # everything, paper-scale where feasible
//	traconbench -quick          # reduced machine counts and horizons
//	traconbench -only fig3,fig7 # a subset
//	traconbench -parallel 1     # sequential reference run
//	traconbench -spotcheck      # include the 10,000-machine run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"tracon/internal/experiments"
	"tracon/internal/fault"
	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traconbench: ")

	var (
		only      = flag.String("only", "", "comma-separated subset: table1,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11,fig12,storage")
		quick     = flag.Bool("quick", false, "smaller machine counts and shorter horizons")
		hours     = flag.Float64("hours", 0, "override the dynamic horizon in hours (0 = default)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		spotcheck = flag.Bool("spotcheck", false, "also run the 10,000-machine Sec 4.8 spot check")
		csvDir    = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for env construction and experiment fan-out (1 = sequential)")
		metrics   = flag.Bool("metrics", false, "collect per-run simulation metrics; writes metrics_seed<seed>.{json,csv} under -metrics-dir")
		metricDir = flag.String("metrics-dir", "results", "directory for -metrics exports")
		audit     = flag.Bool("audit", false, "attach the invariant auditor to every simulation; exits 1 if any violation is found")
		auditN    = flag.Int("audit-every", 32, "audit full-state scan sampling: one scan per N events (O(1) checks always run)")
		faultPlan = flag.String("faults", "", "inject faults from this JSON plan into every simulation (see EXPERIMENTS.md; the plan is filtered per run to the run's cluster size)")
		traceRuns = flag.Bool("trace", false, "record per-task lifecycle traces; writes trace_seed<seed>.ndjson under -trace-dir (inspect with tracontrace)")
		traceDir  = flag.String("trace-dir", "results", "directory for -trace exports")
		traceCap  = flag.Int("trace-cap", obs.DefaultTraceCap, "per-run trace ring capacity in events; the oldest events drop beyond it")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *parallel < 1 {
		*parallel = 1
	}

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}

	opts := experiments.DefaultSuiteOptions(*quick)
	opts.SpotCheck = *spotcheck
	if *hours > 0 {
		opts.DynHours = *hours
	}
	suite, err := experiments.SelectExperiments(experiments.Suite(opts), want)
	if err != nil {
		log.Fatal(err)
	}

	// Load and validate the fault plan before the (expensive) environment
	// build so a typo'd plan fails in milliseconds, like a bad -only name.
	var plan *fault.Plan
	if *faultPlan != "" {
		if plan, err = fault.LoadFile(*faultPlan); err != nil {
			log.Fatalf("loading fault plan: %v", err)
		}
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "building environment (profiling 8 apps × 125 workloads, training models, %d workers)...\n", *parallel)
	env, err := experiments.NewEnvParallel(*seed, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "environment ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Observability: one metrics collector for the whole sweep, one auditor
	// per simulation run (the monotonicity checks track per-run clocks).
	// Labels are derived from run inputs, so exports are identical at every
	// -parallel width.
	var collector *obs.Collector
	var auditMu sync.Mutex
	var auditors []*obs.InvariantAuditor
	if *metrics {
		collector = obs.NewCollector()
	}
	if plan != nil {
		// Filter per run: a sweep visits many cluster sizes, and crashes or
		// slowdowns aimed at machines a small run lacks must not reject it.
		env.Faults = func(kind, scheduler string, machines int, tasks []sched.Task) *fault.Plan {
			return plan.ForMachines(machines)
		}
		fmt.Fprintf(os.Stderr, "fault injection: %s (%d crashes, %d slowdowns, fail-prob %g, timeout %gs)\n",
			*faultPlan, len(plan.Crashes), len(plan.Slowdowns), plan.FailProb, plan.TaskTimeout)
	}
	var traces *obs.TraceCollector
	if *traceRuns {
		traces = obs.NewTraceCollector(*traceCap)
		env.Trace = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Tracer {
			return traces.Tracer(obs.RunLabel(kind, scheduler, machines, tasks), scheduler, machines)
		}
	}
	if *metrics || *audit {
		env.Observe = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Observer {
			var multi obs.Multi
			if collector != nil {
				multi = append(multi, collector.Observer(obs.RunLabel(kind, scheduler, machines, tasks)))
			}
			if *audit {
				a := &obs.InvariantAuditor{Every: *auditN}
				auditMu.Lock()
				auditors = append(auditors, a)
				auditMu.Unlock()
				multi = append(multi, a)
			}
			return multi
		}
	}

	runner := experiments.Runner{Workers: *parallel}
	for _, oc := range runner.Run(env, suite) {
		if oc.Err != nil {
			log.Fatalf("%s: %v", oc.Name, oc.Err)
		}
		fmt.Println(oc.Result.String())
		if *csvDir != "" {
			if tab, ok := oc.Result.(trace.Tabular); ok {
				path := filepath.Join(*csvDir, oc.Name+".csv")
				if err := trace.Save(path, tab.Table()); err != nil {
					log.Fatalf("%s: writing %s: %v", oc.Name, path, err)
				}
				fmt.Fprintf(os.Stderr, "[%s CSV → %s]\n", oc.Name, path)
			}
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", oc.Name, oc.Elapsed.Round(time.Millisecond))
	}

	if collector != nil {
		jsonPath, csvPath, err := collector.Export(*metricDir, fmt.Sprintf("seed%d", *seed), false)
		if err != nil {
			log.Fatalf("exporting metrics: %v", err)
		}
		fmt.Fprintf(os.Stderr, "metrics: %d runs → %s, %s\n", collector.Len(), jsonPath, csvPath)
	}
	if traces != nil {
		path, err := traces.Export(*traceDir, fmt.Sprintf("seed%d", *seed))
		if err != nil {
			log.Fatalf("exporting traces: %v", err)
		}
		fmt.Fprintf(os.Stderr, "traces: %d runs → %s (inspect with tracontrace -in %s)\n", traces.Len(), path, path)
		if n := traces.Collisions(); n > 0 {
			fmt.Fprintf(os.Stderr, "traces: WARNING: %d run-label collisions; the export is complete but not worker-count-deterministic\n", n)
		}
	}
	if *audit {
		var total int64
		for _, a := range auditors {
			total += a.Total()
		}
		if total > 0 {
			for _, a := range auditors {
				if a.Total() > 0 {
					fmt.Fprintln(os.Stderr, a.Summary())
				}
			}
			log.Fatalf("audit: %d invariant violations across %d simulation runs", total, len(auditors))
		}
		fmt.Fprintf(os.Stderr, "audit: %d simulation runs, 0 invariant violations\n", len(auditors))
	}

	fmt.Fprintf(os.Stderr, "all done in %v\n", time.Since(start).Round(time.Millisecond))
}
