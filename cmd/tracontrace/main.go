// Command tracontrace analyses the NDJSON trace exports that traconbench
// -trace (or any obs.Tracer user) writes: per-app queue-wait/execution/
// dilation breakdowns, the longest-waiting tasks, per-machine contention
// timelines and the completion-time critical path. It also converts one
// run to Chrome/Perfetto trace_event JSON for chrome://tracing or
// ui.perfetto.dev.
//
// Examples:
//
//	tracontrace -in results/trace_seed1.ndjson -list
//	tracontrace -in results/trace_seed1.ndjson -run dynamic/MIBS8-RT
//	tracontrace -in results/trace_seed1.ndjson -run fifo -top 20
//	tracontrace -in results/trace_seed1.ndjson -run spotcheck -perfetto out.json
//
// It also inspects tracond's durability journal offline:
//
//	tracontrace -wal-dump /var/lib/tracond    # render snapshots + WAL events
//	tracontrace -wal-verify /var/lib/tracond  # CRC/chain check, summary line
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tracon/internal/durable"
	"tracon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracontrace: ")

	var (
		in        = flag.String("in", "", "NDJSON trace export to read (default: stdin)")
		run       = flag.String("run", "", "only analyse runs whose label contains this substring")
		list      = flag.Bool("list", false, "list matching runs (label, scheduler, machines, events) and exit")
		topK      = flag.Int("top", 10, "how many longest-waiting tasks to print")
		perfetto  = flag.String("perfetto", "", "write the matching run as Chrome/Perfetto trace_event JSON to this file (requires the filter to match exactly one run)")
		walDump   = flag.String("wal-dump", "", "render a tracond journal (data dir, .wal segment or .snap file) as text and exit")
		walVerify = flag.String("wal-verify", "", "integrity-check a tracond journal (CRCs, sequence chain, torn tail) and exit")
	)
	flag.Parse()

	if *walDump != "" {
		n, err := durable.Dump(os.Stdout, *walDump)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d event(s)\n", n)
		return
	}
	if *walVerify != "" {
		res, err := durable.Verify(*walVerify)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ok: %d snapshot(s), %d segment(s), %d event(s), last seq %d, torn tail %v\n",
			res.Snapshots, res.Segments, res.Events, res.LastSeq, res.TornTail)
		return
	}

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
	}
	runs, err := obs.ReadTraces(src)
	if err != nil {
		log.Fatal(err)
	}
	if len(runs) == 0 {
		log.Fatal("no runs in input")
	}
	matched := obs.FindRuns(runs, *run)
	if len(matched) == 0 {
		log.Fatalf("no runs match -run %q (input has %d runs; use -list to see them)", *run, len(runs))
	}

	if *list {
		fmt.Printf("%-28s %-12s %9s %9s %9s\n", "label", "scheduler", "machines", "events", "dropped")
		for _, r := range matched {
			fmt.Printf("%-28s %-12s %9d %9d %9d\n", r.Label, r.Scheduler, r.Machines, r.Total, r.Dropped)
		}
		return
	}

	if *perfetto != "" {
		if len(matched) != 1 {
			log.Fatalf("-perfetto needs exactly one run, but -run %q matches %d; tighten the filter (use -list)", *run, len(matched))
		}
		f, err := os.Create(*perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WritePerfetto(f, matched[0]); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", *perfetto)
		return
	}

	for i, r := range matched {
		if i > 0 {
			fmt.Println()
		}
		r.Summarize(os.Stdout, *topK)
	}
}
