// Command traconsim runs one TRACON data-center simulation: it brings up
// the testbed, profiles the eight Table 3 benchmarks, trains the chosen
// interference models and simulates a cluster under the chosen scheduling
// policy, reporting the paper's metrics (and the FIFO comparison).
//
// Examples:
//
//	traconsim -machines 64 -policy mibs -queue 8 -lambda 20 -hours 10
//	traconsim -static -machines 16 -policy mibs -objective iops
//	traconsim -policy mix -mix heavy -model lm
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tracon"
	"tracon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traconsim: ")

	var (
		machines  = flag.Int("machines", 64, "physical machines (2 VMs each)")
		policy    = flag.String("policy", "mibs", "scheduler: fifo, mios, mibs, mix")
		queue     = flag.Int("queue", 8, "batch queue length for mibs/mix")
		objective = flag.String("objective", "runtime", "objective: runtime or iops")
		lambda    = flag.Float64("lambda", 20, "dynamic arrival rate (tasks/minute)")
		hours     = flag.Float64("hours", 10, "dynamic horizon in hours")
		mix       = flag.String("mix", "medium", "workload mix: light, medium, heavy")
		modelKind = flag.String("model", "nlm", "interference model: wmm, lm, nlm")
		static    = flag.Bool("static", false, "static scenario (one task per VM) instead of Poisson arrivals")
		oracle    = flag.Bool("oracle", false, "use ground-truth predictions (upper bound)")
		seed      = flag.Int64("seed", 1, "random seed")
		noCompare = flag.Bool("nocompare", false, "skip the FIFO baseline run")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	start := time.Now()
	fmt.Fprintln(os.Stderr, "bringing up TRACON (profiling + model training)...")
	sys, err := tracon.New(tracon.Config{
		Model: tracon.ModelKind(*modelKind),
		Seed:  *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ready in %v\n", time.Since(start).Round(time.Millisecond))

	p := tracon.Policy{
		Name:      *policy,
		QueueLen:  *queue,
		Objective: tracon.Objective(*objective),
		Oracle:    *oracle,
	}

	run := func(pol tracon.Policy) tracon.Report {
		var rep tracon.Report
		var err error
		if *static {
			rep, err = sys.RunStaticMix(pol, *machines, nil, tracon.Mix(*mix))
		} else {
			rep, err = sys.RunDynamic(pol, *machines, *lambda, *hours, tracon.Mix(*mix))
		}
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	rep := run(p)
	printReport(rep)

	if !*noCompare && p.Name != "fifo" {
		fifo := run(tracon.Policy{Name: "fifo"})
		fmt.Println()
		printReport(fifo)
		fmt.Println()
		fmt.Printf("Speedup (eq. 5):               %.3f\n", tracon.Speedup(fifo, rep))
		fmt.Printf("IOBoost (eq. 6):               %.3f\n", tracon.IOBoost(fifo, rep))
		fmt.Printf("Normalized throughput (4.7):   %.3f\n", tracon.NormalizedThroughput(fifo, rep))
	}
	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
}

func printReport(r tracon.Report) {
	fmt.Printf("scheduler %s on %d machines (%d VMs)\n", r.Scheduler, r.Machines, 2*r.Machines)
	fmt.Printf("  submitted %d, completed %d (horizon %.0fs)\n", r.Submitted, r.Completed, r.Horizon)
	fmt.Printf("  total runtime %.0fs, mean runtime %.0fs, mean wait %.0fs\n", r.TotalRuntime, r.MeanRuntime, r.MeanWait)
	fmt.Printf("  total IOPS %.1f\n", r.TotalIOPS)
}
