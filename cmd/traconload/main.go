// Command traconload drives a running tracond with a synthetic task
// stream and reports client-side throughput and latency percentiles.
//
// Three modes:
//
//   - closed loop (default): -concurrency workers each keep exactly one
//     task in flight — submit, wait for placement, complete, repeat.
//   - batched closed loop (-batch N): workers submit N tasks per request
//     through POST /v1/tasks:batch, so the daemon runs one queue-aware
//     scheduling pass per group, then complete each admitted task.
//   - open loop (-rate N): task arrivals follow a Poisson process at N
//     tasks/minute regardless of how fast the daemon answers, the
//     arrival model of the paper's Sec. 4 workload mixes.
//
// Completions report an observed runtime derived from the daemon's own
// forecast times multiplicative noise; -drift inflates observed runtimes
// for the second half of the run to exercise the drift-triggered model
// hot-swap path end to end.
//
// -chaos turns the run into a failure drill: a background goroutine kills
// and revives random machines through the daemon's lifecycle API while the
// load runs. Workers ride out the churn — a completion answered 409 means
// the task's machine died and the daemon re-queued it, so the worker waits
// for the re-placement and completes it there. Every killed machine is
// revived before the run reports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracon/internal/obs"
	"tracon/internal/serve"
	"tracon/internal/workload"
)

func main() {
	var (
		target       = flag.String("addr", "127.0.0.1:8080", "tracond address (host:port)")
		tasks        = flag.Int("tasks", 200, "total tasks to submit")
		concurrency  = flag.Int("concurrency", 8, "closed-loop workers (ignored with -rate)")
		batch        = flag.Int("batch", 0, "submit tasks in groups of this size via /v1/tasks:batch (closed loop only; 0 = singleton)")
		rate         = flag.Float64("rate", 0, "open-loop Poisson arrival rate in tasks/minute (0 = closed loop)")
		seed         = flag.Int64("seed", 1, "randomness seed (app choice, noise, arrivals)")
		apps         = flag.String("apps", "", "comma-separated application mix (default: every app the daemon serves)")
		noise        = flag.Float64("noise", 0.05, "multiplicative noise sigma on observed runtimes")
		drift        = flag.Float64("drift", 0, "inflate observed runtimes by this factor after half the run (0 = off)")
		pollEvery    = flag.Duration("poll", 2*time.Millisecond, "queued-placement poll interval")
		timeout      = flag.Duration("timeout", 2*time.Minute, "overall run timeout")
		jsonOut      = flag.Bool("json", false, "emit the summary as JSON")
		chaos        = flag.Bool("chaos", false, "kill and revive random machines during the run; tasks must survive via the daemon's re-queue")
		chaosEvery   = flag.Duration("chaos-interval", 200*time.Millisecond, "interval between -chaos kill/revive actions")
		scrape       = flag.Bool("scrape", false, "sample the daemon's Prometheus endpoint during the run and report the server-side submit latency next to the client's")
		scrapeEvery  = flag.Duration("scrape-interval", 250*time.Millisecond, "-scrape sampling period")
		reconnect    = flag.Bool("reconnect", false, "ride out a daemon restart: retry refused/5xx requests with backoff, resubmitting under stable idempotency keys")
		reconnectFor = flag.Duration("reconnect-window", 15*time.Second, "max time one request keeps retrying under -reconnect")
	)
	flag.Parse()

	sum, err := run(loadConfig{
		base: "http://" + *target, tasks: *tasks, concurrency: *concurrency,
		batch: *batch,
		rate:  *rate, seed: *seed, apps: *apps, noise: *noise, drift: *drift,
		pollEvery: *pollEvery, timeout: *timeout,
		chaos: *chaos, chaosEvery: *chaosEvery,
		scrape: *scrape, scrapeEvery: *scrapeEvery,
		reconnect: *reconnect, reconnectFor: *reconnectFor,
	})
	if err != nil {
		log.Fatalf("traconload: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sum)
	} else {
		fmt.Print(sum.text())
	}
	if sum.Completed == 0 {
		log.Fatalf("traconload: zero tasks completed")
	}
}

type loadConfig struct {
	base         string
	tasks        int
	concurrency  int
	batch        int
	rate         float64
	seed         int64
	apps         string
	noise        float64
	drift        float64
	pollEvery    time.Duration
	timeout      time.Duration
	chaos        bool
	chaosEvery   time.Duration
	scrape       bool
	scrapeEvery  time.Duration
	reconnect    bool
	reconnectFor time.Duration
}

// summary is the run report (the -json shape).
type summary struct {
	Mode      string `json:"mode"`
	Tasks     int    `json:"tasks"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Queued    int64  `json:"queued"`
	Rejected  int64  `json:"rejected"`
	Failed    int64  `json:"failed"`
	// Batches counts /v1/tasks:batch requests in -batch mode.
	Batches       int64              `json:"batches,omitempty"`
	WallSeconds   float64            `json:"wall_seconds"`
	ThroughputPS  float64            `json:"throughput_per_s"`
	SubmitLatency obs.LatencySummary `json:"submit_latency_s"`
	E2ELatency    obs.LatencySummary `json:"e2e_latency_s"`
	FinalGen      uint64             `json:"final_generation"`
	// Chaos-mode counters: machines killed/revived by the drill, and tasks
	// that survived losing their machine mid-flight (completed after a
	// daemon-side re-queue and re-placement).
	ChaosKills   int64 `json:"chaos_kills,omitempty"`
	ChaosRevives int64 `json:"chaos_revives,omitempty"`
	Retried      int64 `json:"retried,omitempty"`
	// Reconnects counts request attempts retried under -reconnect;
	// DuplicateIDs counts idempotency violations the client observed (one
	// logical task answered with two placement IDs, or one placement ID
	// handed to two logical tasks). Zero after a daemon crash-restart is
	// the exactly-once property crash_smoke asserts.
	Reconnects   int64 `json:"reconnects,omitempty"`
	DuplicateIDs int64 `json:"duplicate_ids"`
	// Server is the daemon's own view of the run, sampled from its
	// Prometheus endpoint (-scrape): the submit route's server-side latency
	// over exactly the scraped window, for side-by-side comparison with
	// SubmitLatency. A client/server p99 gap is network + client overhead.
	Server *serverSummary `json:"server,omitempty"`
}

// serverSummary is the -scrape report: the delta between the first and
// last scrape of the submit route's cumulative latency histogram.
type serverSummary struct {
	Route    string             `json:"route"`
	Scrapes  int64              `json:"scrapes"`
	Requests int64              `json:"requests"`
	Latency  obs.LatencySummary `json:"latency_s"`
	Error    string             `json:"error,omitempty"`
}

func (s summary) text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode        %s\n", s.Mode)
	fmt.Fprintf(&b, "submitted   %d (queued %d, rejected %d, failed %d)\n", s.Submitted, s.Queued, s.Rejected, s.Failed)
	if s.Batches > 0 {
		fmt.Fprintf(&b, "batches     %d\n", s.Batches)
	}
	fmt.Fprintf(&b, "completed   %d in %.2fs → %.1f tasks/s\n", s.Completed, s.WallSeconds, s.ThroughputPS)
	fmt.Fprintf(&b, "submit lat  p50 %.1fµs  p95 %.1fµs  p99 %.1fµs\n",
		s.SubmitLatency.P50*1e6, s.SubmitLatency.P95*1e6, s.SubmitLatency.P99*1e6)
	if s.Server != nil {
		if s.Server.Error != "" {
			fmt.Fprintf(&b, "server lat  scrape failed: %s\n", s.Server.Error)
		} else {
			fmt.Fprintf(&b, "server lat  p50 %.1fµs  p95 %.1fµs  p99 %.1fµs  (%s, %d reqs, %d scrapes)\n",
				s.Server.Latency.P50*1e6, s.Server.Latency.P95*1e6, s.Server.Latency.P99*1e6,
				s.Server.Route, s.Server.Requests, s.Server.Scrapes)
		}
	}
	fmt.Fprintf(&b, "e2e lat     p50 %.1fµs  p95 %.1fµs  p99 %.1fµs\n",
		s.E2ELatency.P50*1e6, s.E2ELatency.P95*1e6, s.E2ELatency.P99*1e6)
	fmt.Fprintf(&b, "model gen   %d\n", s.FinalGen)
	if s.ChaosKills > 0 {
		fmt.Fprintf(&b, "chaos       %d kills, %d revives, %d tasks survived re-placement\n",
			s.ChaosKills, s.ChaosRevives, s.Retried)
	}
	if s.Reconnects > 0 || s.DuplicateIDs > 0 {
		fmt.Fprintf(&b, "reconnect   %d retried attempts, %d duplicate ids\n",
			s.Reconnects, s.DuplicateIDs)
	}
	return b.String()
}

// loader is the shared state of one run.
type loader struct {
	cfg    loadConfig
	client *http.Client
	apps   []string

	submitLat *obs.Histogram
	e2eLat    *obs.Histogram

	submitted, completed, queued, rejected, failed atomic.Int64
	issued                                         atomic.Int64 // tasks handed to workers, for the drift midpoint
	batches                                        atomic.Int64
	kills, revives, retried                        atomic.Int64
	reconnects, duplicates                         atomic.Int64
	deadline                                       time.Time

	// Idempotency bookkeeping for -reconnect: keyPrefix+keySeq mint one
	// stable key per logical task; keyIDs (key → placement ID) and ids
	// (placement ID → key) cross-check that a key never yields two IDs and
	// an ID never serves two keys across retries and daemon restarts.
	keyPrefix string
	keySeq    atomic.Int64
	keyIDs    sync.Map
	ids       sync.Map
}

// nextKey mints a stable client-side idempotency key, or "" when
// -reconnect is off (the daemon then mints per-request IDs that never
// dedup). The prefix ties keys to this process so two loaders hammering
// one daemon cannot collide.
func (l *loader) nextKey() string {
	if !l.cfg.reconnect {
		return ""
	}
	return fmt.Sprintf("%s-%d", l.keyPrefix, l.keySeq.Add(1))
}

// noteID cross-checks the placement ID the daemon answered for a key.
// Either direction of disagreement — one key answered with two IDs, or
// one ID handed to two keys — is an exactly-once violation.
func (l *loader) noteID(key, id string) {
	if key == "" || id == "" {
		return
	}
	if prev, loaded := l.keyIDs.LoadOrStore(key, id); loaded && prev.(string) != id {
		l.duplicates.Add(1)
	}
	if prev, loaded := l.ids.LoadOrStore(id, key); loaded && prev.(string) != key {
		l.duplicates.Add(1)
	}
}

// post issues one POST, retrying refused connections and 5xx answers with
// exponential backoff while -reconnect is on and the window allows. The
// idempotency key rides the X-Request-Id header on every attempt, so a
// retry that crosses a daemon crash-restart dedups server-side instead of
// double-admitting the task.
func (l *loader) post(path, key string, body []byte) (*http.Response, error) {
	backoff := 50 * time.Millisecond
	giveUp := time.Now().Add(l.cfg.reconnectFor)
	for {
		req, err := http.NewRequest(http.MethodPost, l.cfg.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set(serve.RequestIDHeader, key)
		}
		resp, err := l.client.Do(req)
		if err == nil && resp.StatusCode < 500 {
			return resp, nil
		}
		if !l.cfg.reconnect || time.Now().After(giveUp) || time.Now().After(l.deadline) {
			return resp, err
		}
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		l.reconnects.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

func run(cfg loadConfig) (summary, error) {
	l := &loader{
		cfg: cfg,
		client: &http.Client{
			Timeout: 10 * time.Second,
			// Batched mode keeps concurrency*batch requests in flight against
			// one host; the default idle pool (2 per host) would churn
			// connections instead of reusing them.
			Transport: &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256},
		},
		submitLat: obs.NewHistogram(obs.DefaultLatencyBuckets()),
		e2eLat:    obs.NewHistogram(obs.DefaultLatencyBuckets()),
		deadline:  time.Now().Add(cfg.timeout),
		keyPrefix: fmt.Sprintf("ld-%d-%d", os.Getpid(), cfg.seed),
	}
	if err := l.resolveApps(); err != nil {
		return summary{}, err
	}
	if cfg.batch > 1 && cfg.rate > 0 {
		return summary{}, fmt.Errorf("-batch is a closed-loop mode; it cannot combine with -rate")
	}

	start := time.Now()
	var scr *scraper
	if cfg.scrape {
		scr = l.startScraper()
	}
	var chaosStop chan struct{}
	var chaosDone chan struct{}
	if cfg.chaos {
		chaosStop, chaosDone = make(chan struct{}), make(chan struct{})
		go l.chaosLoop(chaosStop, chaosDone)
	}
	switch {
	case cfg.rate > 0:
		l.openLoop()
	case cfg.batch > 1:
		l.batchLoop()
	default:
		l.closedLoop()
	}
	if cfg.chaos {
		close(chaosStop)
		<-chaosDone // the drill revives every machine it downed before exiting
	}
	wall := time.Since(start).Seconds()

	sum := summary{
		Mode:          "closed",
		Tasks:         cfg.tasks,
		Submitted:     l.submitted.Load(),
		Completed:     l.completed.Load(),
		Queued:        l.queued.Load(),
		Rejected:      l.rejected.Load(),
		Failed:        l.failed.Load(),
		WallSeconds:   wall,
		ThroughputPS:  float64(l.completed.Load()) / wall,
		SubmitLatency: l.submitLat.Latency(),
		E2ELatency:    l.e2eLat.Latency(),
	}
	if cfg.rate > 0 {
		sum.Mode = fmt.Sprintf("open (%.0f/min)", cfg.rate)
	} else if cfg.batch > 1 {
		sum.Mode = fmt.Sprintf("closed batch=%d", cfg.batch)
		sum.Batches = l.batches.Load()
	}
	if cfg.chaos {
		sum.Mode += " +chaos"
		sum.ChaosKills = l.kills.Load()
		sum.ChaosRevives = l.revives.Load()
		sum.Retried = l.retried.Load()
	}
	if cfg.reconnect {
		sum.Mode += " +reconnect"
		sum.Reconnects = l.reconnects.Load()
	}
	sum.DuplicateIDs = l.duplicates.Load()
	if scr != nil {
		sum.Server = scr.finish()
	}
	sum.FinalGen = l.finalGeneration()
	return sum, nil
}

// submitRoute is the route label whose server-side histogram -scrape
// compares against the client's submit latency.
func (l *loader) submitRoute() string {
	if l.cfg.batch > 1 {
		return "/v1/tasks:batch"
	}
	return "/v1/tasks"
}

// scraper samples the daemon's Prometheus endpoint for the duration of a
// run. Server-side latency comes from the delta between the first and the
// last scrape of the submit route's cumulative histogram — exactly the
// requests the run put through, even against a daemon that served earlier
// traffic.
type scraper struct {
	l          *loader
	route      string
	first      obs.PromHistogram
	last       obs.PromHistogram
	scrapes    int64
	err        error
	stop, done chan struct{}
}

// scrapeOnce fetches and parses one exposition sample of the submit route.
func (l *loader) scrapeOnce(route string) (obs.PromHistogram, error) {
	resp, err := l.client.Get(l.cfg.base + "/metrics?format=prometheus")
	if err != nil {
		return obs.PromHistogram{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return obs.PromHistogram{}, fmt.Errorf("scrape: HTTP %d", resp.StatusCode)
	}
	return obs.ParsePrometheusHistogram(resp.Body,
		"serve_http_request_seconds", map[string]string{"route": route})
}

// startScraper takes the baseline sample and starts the sampling loop.
func (l *loader) startScraper() *scraper {
	s := &scraper{
		l: l, route: l.submitRoute(),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	s.first, s.err = l.scrapeOnce(s.route)
	s.last, s.scrapes = s.first, 1
	go s.loop()
	return s
}

func (s *scraper) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.l.cfg.scrapeEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if h, err := s.l.scrapeOnce(s.route); err == nil {
				s.last = h
				s.scrapes++
			}
		}
	}
}

// finish stops the loop, takes the closing sample and builds the report.
func (s *scraper) finish() *serverSummary {
	close(s.stop)
	<-s.done
	if h, err := s.l.scrapeOnce(s.route); err == nil {
		s.last = h
		s.scrapes++
	} else if s.err == nil {
		s.err = err
	}
	out := &serverSummary{Route: s.route, Scrapes: s.scrapes}
	if s.err != nil {
		out.Error = s.err.Error()
		return out
	}
	window := s.last.Sub(s.first).Snapshot()
	out.Requests = window.N
	out.Latency = window.Latency()
	return out
}

// machineCount asks the daemon for its inventory size.
func (l *loader) machineCount() int {
	resp, err := l.client.Get(l.cfg.base + "/v1/machines")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var mvs []serve.MachineView
	if err := json.NewDecoder(resp.Body).Decode(&mvs); err != nil {
		return 0
	}
	return len(mvs)
}

// machineOp fires one lifecycle verb; true on 200.
func (l *loader) machineOp(id int, op string) bool {
	resp, err := l.client.Post(fmt.Sprintf("%s/v1/machines/%d/%s", l.cfg.base, id, op), "application/json", nil)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// chaosLoop alternates machine kills and revivals on a seeded schedule:
// it kills random up machines until half the cluster is down, then starts
// reviving, and always leaves the cluster fully healed on exit. A
// single-machine cluster is left alone — there would be nowhere to
// re-place the victims.
func (l *loader) chaosLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	machines := l.machineCount()
	if machines <= 1 {
		return
	}
	rng := rand.New(rand.NewSource(l.cfg.seed + 31337))
	down := map[int]bool{}
	defer func() {
		for m := range down {
			if l.machineOp(m, "revive") {
				l.revives.Add(1)
			}
		}
	}()
	step := func() {
		if len(down)*2 >= machines {
			// Half the cluster is out: heal a random victim.
			victims := make([]int, 0, len(down))
			for m := range down {
				victims = append(victims, m)
			}
			sort.Ints(victims) // map order is random; keep the drill seeded
			m := victims[rng.Intn(len(victims))]
			if l.machineOp(m, "revive") {
				l.revives.Add(1)
				delete(down, m)
			}
			return
		}
		m := rng.Intn(machines)
		if down[m] {
			return
		}
		if l.machineOp(m, "kill") {
			l.kills.Add(1)
			down[m] = true
		}
	}
	step() // strike immediately — short bursts must still see churn
	tick := time.NewTicker(l.cfg.chaosEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			step()
		}
	}
}

// resolveApps takes the -apps mix, or asks the daemon what it serves.
func (l *loader) resolveApps() error {
	if l.cfg.apps != "" {
		l.apps = strings.Split(l.cfg.apps, ",")
		return nil
	}
	resp, err := l.client.Get(l.cfg.base + "/v1/models")
	if err != nil {
		return fmt.Errorf("querying daemon census: %w", err)
	}
	defer resp.Body.Close()
	var mr struct {
		Apps []string `json:"apps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return err
	}
	if len(mr.Apps) == 0 {
		return fmt.Errorf("daemon serves no applications")
	}
	l.apps = mr.Apps
	return nil
}

func (l *loader) finalGeneration() uint64 {
	resp, err := l.client.Get(l.cfg.base + "/v1/models")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var mr struct {
		Generation uint64 `json:"generation"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&mr)
	return mr.Generation
}

// closedLoop keeps cfg.concurrency tasks in flight until cfg.tasks have
// been issued.
func (l *loader) closedLoop() {
	var wg sync.WaitGroup
	next := atomic.Int64{}
	for w := 0; w < l.cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(l.cfg.seed + int64(w)*7919))
			for {
				n := next.Add(1)
				if int(n) > l.cfg.tasks || time.Now().After(l.deadline) {
					return
				}
				l.runTask(rng)
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires tasks at their precomputed Poisson arrival offsets,
// regardless of daemon responsiveness.
func (l *loader) openLoop() {
	rng := rand.New(rand.NewSource(l.cfg.seed))
	// Draw enough arrivals to cover cfg.tasks at the configured rate.
	horizon := float64(l.cfg.tasks) / l.cfg.rate * 60 * 2
	arrivals := workload.Arrivals(rng, l.cfg.rate, horizon)
	for len(arrivals) < l.cfg.tasks {
		horizon *= 2
		arrivals = workload.Arrivals(rng, l.cfg.rate, horizon)
	}
	arrivals = arrivals[:l.cfg.tasks]

	start := time.Now()
	var wg sync.WaitGroup
	for i, at := range arrivals {
		if d := time.Duration(at * float64(time.Second)); d > time.Until(l.deadline) {
			break
		} else if sleep := start.Add(d).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(l.cfg.seed + int64(i)*104729))
			l.runTask(rng)
		}(i)
	}
	wg.Wait()
}

// batchLoop is the closed loop over /v1/tasks:batch: each worker submits
// cfg.batch tasks per request, so the daemon runs one queue-aware
// scheduling pass per group, then completes every admitted task before
// taking the next group.
func (l *loader) batchLoop() {
	var wg sync.WaitGroup
	next := atomic.Int64{}
	for w := 0; w < l.cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(l.cfg.seed + int64(w)*7919))
			for {
				n := int(next.Add(int64(l.cfg.batch)))
				if n-l.cfg.batch >= l.cfg.tasks || time.Now().After(l.deadline) {
					return
				}
				size := l.cfg.batch
				if over := n - l.cfg.tasks; over > 0 {
					size -= over // last group takes the remainder
				}
				l.runBatch(rng, size)
			}
		}(w)
	}
	wg.Wait()
}

// runBatch submits one task group and completes every admitted task. The
// completions run concurrently — the group was placed as a unit, and
// serializing its completions would stall the daemon's backlog drain
// behind this client's poll interval.
func (l *loader) runBatch(rng *rand.Rand, size int) {
	req := serve.BatchRequest{Tasks: make([]serve.BatchTask, size)}
	for i := range req.Tasks {
		req.Tasks[i].App = l.apps[rng.Intn(len(l.apps))]
	}
	body, _ := json.Marshal(req)
	// One key covers the whole group; the daemon derives per-task dedup
	// keys as "<key>#<index>", so a resubmitted group maps back onto the
	// same admitted tasks position by position.
	batchKey := l.nextKey()
	t0 := time.Now()
	resp, err := l.post("/v1/tasks:batch", batchKey, body)
	l.submitLat.Observe(time.Since(t0).Seconds())
	if err != nil {
		l.failed.Add(int64(size))
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		l.rejected.Add(int64(size))
		return
	default:
		io.Copy(io.Discard, resp.Body)
		l.failed.Add(int64(size))
		return
	}
	var br serve.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		l.failed.Add(int64(size))
		return
	}
	l.batches.Add(1)
	var wg sync.WaitGroup
	for i, r := range br.Results {
		switch {
		case r.Rejected:
			l.rejected.Add(1)
		case r.Placement == nil:
			l.failed.Add(1)
		default:
			if batchKey != "" {
				l.noteID(fmt.Sprintf("%s#%d", batchKey, i), r.Placement.ID)
			}
			l.submitted.Add(1)
			wg.Add(1)
			go func(seed int64, rec *serve.Placement) {
				defer wg.Done()
				l.finishTask(rand.New(rand.NewSource(seed)), rec, t0)
			}(rng.Int63(), r.Placement)
		}
	}
	wg.Wait()
}

// runTask submits one task, waits for it to be placed, and completes it
// with a synthetic observation.
func (l *loader) runTask(rng *rand.Rand) {
	app := l.apps[rng.Intn(len(l.apps))]
	key := l.nextKey()
	t0 := time.Now()
	rec, status, err := l.submit(app, key)
	l.submitLat.Observe(time.Since(t0).Seconds())
	switch {
	case err != nil:
		l.failed.Add(1)
		return
	case status == http.StatusTooManyRequests:
		l.rejected.Add(1)
		return
	case status != http.StatusOK:
		l.failed.Add(1)
		return
	}
	l.noteID(key, rec.ID)
	l.submitted.Add(1)
	l.finishTask(rng, rec, t0)
}

// finishTask rides one admitted task to completion: wait out the queue if
// the daemon parked it, then report a synthetic observation. t0 anchors
// the end-to-end latency sample at the original submission.
func (l *loader) finishTask(rng *rand.Rand, rec *serve.Placement, t0 time.Time) {
	if rec.Status == serve.StatusQueued {
		l.queued.Add(1)
		if rec = l.awaitPlacement(rec.ID); rec == nil {
			l.failed.Add(1)
			return
		}
	}

	// Synthesize the observed outcome: the daemon's own forecast times
	// noise, inflated by the drift factor for the back half of the run.
	factor := 1 + rng.NormFloat64()*l.cfg.noise
	if factor < 0.1 {
		factor = 0.1
	}
	if l.cfg.drift > 0 && l.issued.Add(1) > int64(l.cfg.tasks/2) {
		factor *= 1 + l.cfg.drift
	}
	for {
		obsBody := serve.Observation{
			Runtime: rec.PredictedRuntime * factor,
			IOPS:    rec.PredictedIOPS / factor,
		}
		code, err := l.complete(rec.ID, obsBody)
		if err == nil && code == http.StatusOK {
			break
		}
		// 409 under chaos or reconnect: either the task's machine was killed
		// between placement and completion and the daemon re-queued it, or a
		// completion retry crossed a restart after its first attempt landed.
		if err == nil && code == http.StatusConflict && (l.cfg.chaos || l.cfg.reconnect) && time.Now().Before(l.deadline) {
			// A record already terminal means the earlier attempt committed
			// and only its response was lost: the work happened exactly once,
			// so count it completed rather than failed.
			if cur, cerr := l.getPlacement(rec.ID); cerr == nil && cur.Status == serve.StatusCompleted {
				break
			}
			if rec = l.awaitPlacement(rec.ID); rec != nil {
				l.retried.Add(1)
				continue
			}
		}
		l.failed.Add(1)
		return
	}
	l.completed.Add(1)
	l.e2eLat.Observe(time.Since(t0).Seconds())
}

func (l *loader) submit(app, key string) (*serve.Placement, int, error) {
	body, _ := json.Marshal(map[string]string{"app": app})
	resp, err := l.post("/v1/tasks", key, body)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	var rec serve.Placement
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return nil, resp.StatusCode, err
	}
	return &rec, resp.StatusCode, nil
}

// awaitPlacement polls a queued task until it lands on a slot (or fails).
// The first polls come fast and back off to the configured interval: in a
// burst the placement usually lands within a few hundred microseconds of
// a slot freeing, and waiting a full interval for it would put the poll
// period on the critical path of every slot turnover.
func (l *loader) awaitPlacement(id string) *serve.Placement {
	sleep := l.cfg.pollEvery / 16
	if sleep <= 0 {
		sleep = l.cfg.pollEvery
	}
	for time.Now().Before(l.deadline) {
		rec, err := l.getPlacement(id)
		if err != nil {
			// A poll that fails mid-restart is survivable under -reconnect:
			// the record is journaled, so keep polling until the daemon
			// answers again.
			if !l.cfg.reconnect {
				return nil
			}
			l.reconnects.Add(1)
		} else {
			switch rec.Status {
			case serve.StatusPlaced:
				return rec
			case serve.StatusFailed, serve.StatusCompleted:
				return nil
			}
		}
		time.Sleep(sleep)
		if sleep *= 2; sleep > l.cfg.pollEvery {
			sleep = l.cfg.pollEvery
		}
	}
	return nil
}

// getPlacement fetches one placement record.
func (l *loader) getPlacement(id string) (*serve.Placement, error) {
	resp, err := l.client.Get(l.cfg.base + "/v1/placements/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("placement %s: HTTP %d", id, resp.StatusCode)
	}
	var rec serve.Placement
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

func (l *loader) complete(id string, o serve.Observation) (int, error) {
	body, _ := json.Marshal(o)
	resp, err := l.post("/v1/placements/"+id+"/complete", "", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
