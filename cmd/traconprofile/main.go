// Command traconprofile runs TRACON's profiling and modeling pipeline and
// reports what the manager learns: each benchmark's solo characteristics
// (the four Table 2 features), the cross-validated prediction error of the
// chosen model family, and the full pairwise interference predictions.
//
// Examples:
//
//	traconprofile                  # NLM models, all benchmarks
//	traconprofile -model wmm       # the weighted mean method instead
//	traconprofile -pairs           # also print the prediction matrix
//	traconprofile -storage iscsi   # profile on remote storage
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"tracon"
	"tracon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traconprofile: ")

	var (
		modelKind = flag.String("model", "nlm", "interference model: wmm, lm, nlm")
		storage   = flag.String("storage", "hdd", "device: hdd, iscsi, ssd")
		pairs     = flag.Bool("pairs", false, "print the pairwise predicted-slowdown matrix")
		seed      = flag.Int64("seed", 1, "random seed")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	start := time.Now()
	sys, err := tracon.New(tracon.Config{
		Model:   tracon.ModelKind(*modelKind),
		Storage: tracon.Storage(*storage),
		Seed:    *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "profiling 8 benchmarks × 125 synthetic workloads...")
	if err := sys.RegisterBenchmarks(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))

	apps := sys.Apps()
	fmt.Printf("Model family: %s, storage: %s\n\n", *modelKind, *storage)
	fmt.Printf("%-10s %12s %16s %16s\n", "app", "solo rt (s)", "rt err (CV)", "iops err (CV)")
	for _, app := range apps {
		solo, err := sys.SoloRuntime(app)
		if err != nil {
			log.Fatal(err)
		}
		rtMean, rtStd, err := sys.ModelError(app, tracon.MinRuntime)
		if err != nil {
			log.Fatal(err)
		}
		ioMean, ioStd, err := sys.ModelError(app, tracon.MaxIOPS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.0f %8.1f%% ± %4.1f %8.1f%% ± %4.1f\n",
			app, solo, rtMean*100, rtStd*100, ioMean*100, ioStd*100)
	}

	if *pairs {
		fmt.Printf("\nPredicted slowdown of ROW when co-located with COLUMN:\n%-10s", "")
		for _, b := range apps {
			fmt.Printf(" %9s", trunc(b, 9))
		}
		fmt.Println()
		for _, a := range apps {
			fmt.Printf("%-10s", a)
			solo, err := sys.SoloRuntime(a)
			if err != nil {
				log.Fatal(err)
			}
			for _, b := range apps {
				p, err := sys.PredictRuntime(a, b)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %9.2f", p/solo)
			}
			fmt.Println()
		}
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
