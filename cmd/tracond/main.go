// Command tracond is the TRACON placement daemon: it trains (or loads) an
// interference model library, owns a two-VM-per-machine inventory, and
// serves placement decisions over a JSON HTTP API (see internal/serve for
// the route table). SIGINT/SIGTERM drain gracefully: the listener stops
// accepting, in-flight requests finish, and background retrains complete
// before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"tracon/internal/durable"
	"tracon/internal/model"
	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/serve"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
		portFile    = flag.String("portfile", "", "write the actual listen address to this file once serving")
		machines    = flag.Int("machines", 8, "machine inventory size (two VMs each)")
		kindName    = flag.String("model", "NLM", "model family: WMM, LM, NLM, NLMNoDom0, Forest")
		policy      = flag.String("policy", "mios", "scheduling policy: fifo, mios, mibs, mix")
		queueLen    = flag.Int("queue-len", 4, "batch size for the batch policies (mibs, mix)")
		objName     = flag.String("objective", "runtime", "optimization objective: runtime or iops")
		seed        = flag.Int64("seed", 1, "testbed seed for training")
		modelsIn    = flag.String("models", "", "load a trained library from this JSON file instead of training")
		modelsOut   = flag.String("save-models", "", "save the trained library to this JSON file (LM/NLM families)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrent submissions (0 = default)")
		maxQueue    = flag.Int("max-queue", 0, "max queued tasks before 429 (0 = default, negative = unbounded)")
		batchWindow = flag.Duration("batch-window", 0, "coalesce singleton submissions for up to this long into one scheduling pass (0 = off)")
		batchMax    = flag.Int("batch-max", 0, "max tasks per scheduling pass and per /v1/tasks:batch request (0 = default)")
		syncRetrain = flag.Bool("sync-retrain", false, "run drift-triggered retrains on the request path (deterministic)")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
		logFormat   = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")
		traceCap    = flag.Int("trace-cap", 0, "serving-span ring capacity for GET /v1/trace (0 = default, negative = off)")
		sloWindow   = flag.Duration("slo-window", 0, "rolling SLO evaluation window (0 = default 1m)")
		sloP99      = flag.Float64("slo-p99", 0, "latency objective: rolling p99 seconds (0 = default 0.25, negative = off)")
		sloErrRate  = flag.Float64("slo-error-rate", 0, "error budget: rolling error fraction (0 = default 0.01, negative = off)")
		statsEvery  = flag.Duration("stats-interval", 0, "runtime self-stats sampling period (0 = default 5s, negative = off)")
		dataDir     = flag.String("data-dir", "", "crash-safe persistence directory (WAL + snapshots); empty = in-memory only")
		fsync       = flag.String("fsync", "always", "WAL durability policy: always, interval, never")
		fsyncEvery  = flag.Duration("fsync-interval", 0, "max time between WAL fsyncs under -fsync=interval (0 = default 50ms)")
		snapEvery   = flag.Duration("snapshot-interval", time.Minute, "compacted snapshot period (also triggered by -wal-max-bytes; <=0 = size-only)")
		walMaxBytes = flag.Int64("wal-max-bytes", 0, "WAL segment size that triggers an early snapshot (0 = default 64MiB, negative = off)")
	)
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracond: %v\n", err)
		os.Exit(1)
	}
	if err := run(daemonConfig{
		addr: *addr, portFile: *portFile, machines: *machines,
		kindName: *kindName, policy: *policy, queueLen: *queueLen,
		objName: *objName, seed: *seed, modelsIn: *modelsIn,
		modelsOut: *modelsOut, maxInflight: *maxInflight, maxQueue: *maxQueue,
		batchWindow: *batchWindow, batchMax: *batchMax,
		syncRetrain: *syncRetrain, cpuProf: *cpuProf, memProf: *memProf,
		logger: logger, traceCap: *traceCap, sloWindow: *sloWindow,
		sloP99: *sloP99, sloErrRate: *sloErrRate, statsEvery: *statsEvery,
		dataDir: *dataDir, fsync: *fsync, fsyncEvery: *fsyncEvery,
		snapEvery: *snapEvery, walMaxBytes: *walMaxBytes,
	}); err != nil {
		logger.Error("fatal", "err", err.Error())
		os.Exit(1)
	}
}

// newLogger builds the daemon's slog root from the -log-format and
// -log-level flags. Logs go to stderr; stdout stays clean for tooling.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

type daemonConfig struct {
	addr, portFile        string
	machines              int
	kindName, policy      string
	queueLen              int
	objName               string
	seed                  int64
	modelsIn, modelsOut   string
	maxInflight, maxQueue int
	batchWindow           time.Duration
	batchMax              int
	syncRetrain           bool
	cpuProf, memProf      string
	logger                *slog.Logger
	traceCap              int
	sloWindow             time.Duration
	sloP99, sloErrRate    float64
	statsEvery            time.Duration
	dataDir, fsync        string
	fsyncEvery, snapEvery time.Duration
	walMaxBytes           int64
}

func run(cfg daemonConfig) error {
	if cfg.cpuProf != "" {
		f, err := os.Create(cfg.cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	kind, err := parseKind(cfg.kindName)
	if err != nil {
		return err
	}
	obj, err := parseObjective(cfg.objName)
	if err != nil {
		return err
	}

	// Bring up the model library: load a saved one, or profile and train on
	// the simulated testbed. Training also retains the per-app training
	// sets so drift-triggered retrains can fold production observations
	// into the original profile and refit.
	var (
		lib   *model.Library
		brain *trainer
	)
	if cfg.modelsIn != "" {
		f, err := os.Open(cfg.modelsIn)
		if err != nil {
			return err
		}
		lib, err = model.LoadLibrary(f)
		f.Close()
		if err != nil {
			return err
		}
		if lib.Kind != kind {
			cfg.logger.Warn("loaded library overrides -model flag",
				"loaded", lib.Kind.String(), "flag", kind.String(), "path", cfg.modelsIn)
		}
		brain = &trainer{lib: lib}
		cfg.logger.Info("loaded model library",
			"kind", lib.Kind.String(), "apps", len(lib.Apps()), "path", cfg.modelsIn)
	} else {
		t0 := time.Now()
		brain, err = trainLibrary(kind, cfg.seed)
		if err != nil {
			return err
		}
		lib = brain.lib
		cfg.logger.Info("trained model library",
			"kind", kind.String(), "apps", len(lib.Apps()),
			"dur", time.Since(t0).Round(time.Millisecond).String())
	}
	if cfg.modelsOut != "" {
		f, err := os.Create(cfg.modelsOut)
		if err != nil {
			return err
		}
		err = lib.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("saving library: %w", err)
		}
		cfg.logger.Info("saved model library", "path", cfg.modelsOut)
	}

	// Bring up the durability layer before the server: serve.New recovers
	// the placer from the journal (snapshot + WAL replay) during
	// construction, so by the time the listener opens the backlog and
	// inventory are exactly what the previous process acknowledged.
	var mgr *durable.Manager
	if cfg.dataDir != "" {
		policy, err := durable.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		mgr, err = durable.Open(cfg.dataDir, durable.Options{
			Fsync:         policy,
			FsyncInterval: cfg.fsyncEvery,
			WALMaxBytes:   cfg.walMaxBytes,
			Now:           obs.Wall.Now,
		})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", cfg.dataDir, err)
		}
		defer mgr.Close()
		rec := mgr.Recovery()
		cfg.logger.Info("journal opened",
			"dir", cfg.dataDir, "fsync", policy.String(),
			"replay_events", len(rec.Events), "snapshot", rec.Snapshot != nil,
			"torn_tail", rec.TornTail, "segments", rec.Segments)
	}

	srv, err := serve.New(lib, serve.Config{
		Machines:       cfg.machines,
		Policy:         cfg.policy,
		QueueLen:       cfg.queueLen,
		Objective:      obj,
		MaxInflight:    cfg.maxInflight,
		MaxQueue:       cfg.maxQueue,
		CoalesceWindow: cfg.batchWindow,
		BatchMax:       cfg.batchMax,
		Retrain:        brain.retrain,
		SyncRetrain:    cfg.syncRetrain,
		Logger:         cfg.logger,
		TraceCap:       cfg.traceCap,
		SLOWindow:      cfg.sloWindow,
		SLOLatencyP99:  cfg.sloP99,
		SLOErrorRate:   cfg.sloErrRate,
		Journal:        mgr,
		Clock:          obs.Wall,
	})
	if err != nil {
		return err
	}

	// Snapshot loop: compact on the age ticker and whenever the live WAL
	// segment outgrows -wal-max-bytes.
	snapDone := make(chan struct{})
	defer close(snapDone)
	if mgr != nil {
		go func() {
			var tick <-chan time.Time
			if cfg.snapEvery > 0 {
				t := time.NewTicker(cfg.snapEvery)
				defer t.Stop()
				tick = t.C
			}
			for {
				select {
				case <-snapDone:
					return
				case <-tick:
				case <-mgr.SnapshotSignal():
				}
				if err := srv.SnapshotNow(); err != nil {
					cfg.logger.Error("snapshot failed", "err", err.Error())
				}
			}
		}()
	}
	if cfg.statsEvery >= 0 {
		sampler := obs.StartRuntimeStats(srv.Registry(), cfg.statsEvery)
		defer sampler.Stop()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.portFile != "" {
		if err := os.WriteFile(cfg.portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if cfg.batchWindow > 0 {
		cfg.logger.Info("coalescing enabled", "window", cfg.batchWindow.String())
	}
	cfg.logger.Info("serving",
		"machines", cfg.machines, "policy", cfg.policy, "addr", ln.Addr().String())

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	cfg.logger.Info("signal received, draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Drain()
	if mgr != nil {
		// Final compaction: a clean shutdown leaves a snapshot covering
		// everything, so the next boot replays nothing.
		if err := srv.SnapshotNow(); err != nil {
			cfg.logger.Error("final snapshot failed", "err", err.Error())
		}
	}
	cfg.logger.Info("drained cleanly",
		"swaps", srv.ModelSet().Swaps(), "drift_fires", srv.Swapper().DriftFires())

	if cfg.memProf != "" {
		f, err := os.Create(cfg.memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// trainer holds what a retrain needs: the served library plus, when the
// daemon trained locally, the original training sets and solo profiles.
type trainer struct {
	lib   *model.Library
	sets  map[string]*model.TrainingSet // nil when the library was loaded
	solos map[string]xen.SoloProfile
}

// trainLibrary runs the full bring-up pipeline: profile each Table 3
// benchmark against the 125-point synthetic grid and fit the family.
func trainLibrary(kind model.Kind, seed int64) (*trainer, error) {
	host, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		return nil, err
	}
	tb := xen.NewTestbed(host, 3, 0.05, seed)
	var bgs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(host.Config().Disk) {
		bgs = append(bgs, w.Spec)
	}
	prof := &model.Profiler{TB: tb}
	tr := &trainer{
		lib:   model.NewLibrary(kind),
		sets:  map[string]*model.TrainingSet{},
		solos: map[string]xen.SoloProfile{},
	}
	for _, b := range workload.Benchmarks() {
		ts, err := prof.Profile(b.Spec, bgs)
		if err != nil {
			return nil, err
		}
		solo, err := tb.ProfileSolo(b.Spec)
		if err != nil {
			return nil, err
		}
		if err := tr.lib.Add(ts, solo); err != nil {
			return nil, err
		}
		tr.sets[b.Spec.Name] = ts
		tr.solos[b.Spec.Name] = solo
	}
	return tr, nil
}

// retrain is the serve.Retrainer: fold the recent production observations
// into each application's profile and refit. Apps without a stored
// training set (loaded libraries) refit from recent samples alone when
// there are enough, and keep their current model otherwise.
func (tr *trainer) retrain(recent map[string][]model.Sample) (*model.Library, error) {
	cur := tr.lib
	next := model.NewLibrary(cur.Kind)
	for _, app := range cur.Apps() {
		feats, err := cur.Features(app)
		if err != nil {
			return nil, err
		}
		rt, err := cur.SoloRuntime(app)
		if err != nil {
			return nil, err
		}
		io, err := cur.SoloIOPS(app)
		if err != nil {
			return nil, err
		}
		solo := xen.SoloProfile{Runtime: rt, IOPS: io}
		if s, ok := tr.solos[app]; ok {
			solo = s
		}

		ts := &model.TrainingSet{App: app, Features: feats}
		if base, ok := tr.sets[app]; ok {
			ts.Samples = append(ts.Samples, base.Samples...)
		}
		ts.Samples = append(ts.Samples, recent[app]...)

		m, err := model.Train(ts, cur.Kind)
		if errors.Is(err, model.ErrTooFewSamples) {
			// Not enough evidence to refit this app: carry its current
			// model forward unchanged.
			m, err = cur.Model(app)
		}
		if err != nil {
			return nil, fmt.Errorf("retraining %s: %w", app, err)
		}
		if err := next.AddTrained(m, feats, solo); err != nil {
			return nil, err
		}
	}
	tr.lib = next
	return next, nil
}

func parseKind(s string) (model.Kind, error) {
	for _, k := range []model.Kind{model.WMM, model.LM, model.NLM, model.NLMNoDom0, model.Forest} {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model family %q (want WMM, LM, NLM, NLMNoDom0 or Forest)", s)
}

func parseObjective(s string) (sched.Objective, error) {
	switch strings.ToLower(s) {
	case "", "runtime":
		return sched.MinRuntime, nil
	case "iops":
		return sched.MaxIOPS, nil
	default:
		return 0, fmt.Errorf("unknown objective %q (want runtime or iops)", s)
	}
}
