package tracon

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sys     *System
)

func system(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		s, err := New(Config{})
		if err != nil {
			panic(err)
		}
		if err := s.RegisterBenchmarks(); err != nil {
			panic(err)
		}
		sys = s
	})
	return sys
}

func TestConfigDefaults(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Model != NLM || s.cfg.Storage != HDD || s.cfg.MeasurementRuns != 3 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Model: "tree"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := New(Config{Storage: "tape"}); err == nil {
		t.Fatal("unknown storage accepted")
	}
}

func TestRegisterAndPredict(t *testing.T) {
	s := system(t)
	if got := s.Apps(); len(got) != 8 {
		t.Fatalf("Apps = %v", got)
	}
	solo, err := s.SoloRuntime("blastn")
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := s.PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= solo {
		t.Fatalf("prediction under interference (%v) not above solo (%v)", heavy, solo)
	}
	io, err := s.PredictIOPS("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	ioSolo, err := s.PredictIOPS("blastn", "")
	if err != nil {
		t.Fatal(err)
	}
	if io >= ioSolo {
		t.Fatalf("IOPS under interference (%v) not below idle (%v)", io, ioSolo)
	}
}

func TestRegisterCustomApp(t *testing.T) {
	s := system(t)
	err := s.RegisterApp(App{
		Name: "custom-etl", CPUSeconds: 100,
		ReadOps: 50000, WriteOps: 20000, ReqSizeKB: 32, Seq: 0.7, IODepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PredictRuntime("custom-etl", "video"); err != nil {
		t.Fatal(err)
	}
}

func TestModelError(t *testing.T) {
	s := system(t)
	mean, stddev, err := s.ModelError("blastn", MinRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean > 0.5 || stddev < 0 {
		t.Fatalf("NLM blastn error %v ± %v out of expected range", mean, stddev)
	}
}

func TestRunStaticSpeedup(t *testing.T) {
	s := system(t)
	fifo, err := s.RunStatic(Policy{Name: "fifo"}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	mibs, err := s.RunStatic(Policy{Name: "mibs"}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Completed != 16 || mibs.Completed != 16 {
		t.Fatalf("completed %d / %d", fifo.Completed, mibs.Completed)
	}
	if sp := Speedup(fifo, mibs); sp < 0.95 {
		t.Fatalf("MIBS speedup %v collapsed", sp)
	}
}

func TestRunStaticExplicitApps(t *testing.T) {
	s := system(t)
	rep, err := s.RunStatic(Policy{Name: "mios"}, 2, []string{"video", "email", "dedup", "blastp"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 {
		t.Fatalf("completed %d of 4", rep.Completed)
	}
}

func TestRunDynamic(t *testing.T) {
	s := system(t)
	fifo, err := s.RunDynamic(Policy{Name: "fifo"}, 8, 2, 2, Medium)
	if err != nil {
		t.Fatal(err)
	}
	mibs, err := s.RunDynamic(Policy{Name: "mibs", QueueLen: 8}, 8, 2, 2, Medium)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Completed == 0 || mibs.Completed == 0 {
		t.Fatal("nothing completed")
	}
	nt := NormalizedThroughput(fifo, mibs)
	if nt < 0.8 || math.IsNaN(nt) {
		t.Fatalf("normalized throughput %v", nt)
	}
	if _, err := s.RunDynamic(Policy{Name: "fifo"}, 0, 1, 1, Medium); err == nil {
		t.Fatal("bad args accepted")
	}
}

func TestObserveAdaptation(t *testing.T) {
	s := system(t)
	// Feed co-run observations; none should error, and the call is the
	// complete monitor → adaptation pipeline.
	for i := 0; i < 5; i++ {
		if _, err := s.Observe("blastn", "video"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Observe("blastn", "nope"); err == nil {
		t.Fatal("unknown background accepted")
	}
}

func TestRatioHelpers(t *testing.T) {
	fifo := Report{TotalRuntime: 200, TotalIOPS: 100, Completed: 50}
	pol := Report{TotalRuntime: 100, TotalIOPS: 150, Completed: 60}
	if Speedup(fifo, pol) != 2 {
		t.Fatal("Speedup wrong")
	}
	if IOBoost(fifo, pol) != 1.5 {
		t.Fatal("IOBoost wrong")
	}
	if NormalizedThroughput(fifo, pol) != 1.2 {
		t.Fatal("NormalizedThroughput wrong")
	}
	if Speedup(fifo, Report{}) != 0 || IOBoost(Report{}, pol) != 0 || NormalizedThroughput(Report{}, pol) != 0 {
		t.Fatal("zero guards missing")
	}
}

func TestRunWorkflowValidation(t *testing.T) {
	s := system(t)
	if _, _, err := s.RunWorkflow(Policy{Name: "fifo"}, 0, nil); err == nil {
		t.Fatal("zero machines accepted")
	}
	if _, _, err := s.RunWorkflow(Policy{Name: "fifo"}, 2, nil); err == nil {
		t.Fatal("empty workflow accepted")
	}
	dup := []WorkflowTask{{Name: "a", App: "email"}, {Name: "a", App: "web"}}
	if _, _, err := s.RunWorkflow(Policy{Name: "fifo"}, 2, dup); err == nil {
		t.Fatal("duplicate stage accepted")
	}
	bad := []WorkflowTask{{Name: "a", App: "email", After: []string{"ghost"}}}
	if _, _, err := s.RunWorkflow(Policy{Name: "fifo"}, 2, bad); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestRunWorkflowChain(t *testing.T) {
	s := system(t)
	stages := []WorkflowTask{
		{Name: "search", App: "blastn"},
		{Name: "mine", App: "freqmine", After: []string{"search"}},
	}
	rep, span, err := s.RunWorkflow(Policy{Name: "mibs"}, 2, stages)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed %d of 2", rep.Completed)
	}
	soloA, _ := s.SoloRuntime("blastn")
	soloB, _ := s.SoloRuntime("freqmine")
	want := soloA + soloB
	if math.Abs(span-want)/want > 0.05 {
		t.Fatalf("chain makespan %v want ≈%v", span, want)
	}
}

func TestForestModelKind(t *testing.T) {
	s, err := New(Config{Model: ForestKind, Noise: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Register a subset cheaply via custom app to keep the test fast.
	if err := s.RegisterApp(App{
		Name: "etl", CPUSeconds: 100, ReadOps: 60000, WriteOps: 10000,
		ReqSizeKB: 32, Seq: 0.8, IODepth: 2,
	}); err != nil {
		t.Fatal(err)
	}
	solo, err := s.PredictRuntime("etl", "")
	if err != nil {
		t.Fatal(err)
	}
	if solo <= 0 {
		t.Fatalf("forest solo prediction %v", solo)
	}
	mean, _, err := s.ModelError("etl", MinRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if mean <= 0 || mean > 0.6 {
		t.Fatalf("forest CV error %v out of range", mean)
	}
}

func TestAdaptationStatsUnknownApp(t *testing.T) {
	s := system(t)
	if _, _, _, err := s.AdaptationStats("nope", 10); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestSaveLoadModelThroughFacade(t *testing.T) {
	s := system(t)
	var buf bytes.Buffer
	if err := s.SaveModel("blastn", &buf); err != nil {
		t.Fatal(err)
	}
	before, err := s.PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	after, err := s.PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("round-tripped model predicts %v, was %v", after, before)
	}
	if err := s.SaveModel("nope", &buf); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := s.LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk accepted")
	}
}
