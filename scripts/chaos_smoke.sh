#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end chaos drill of the serving mode: boot tracond,
# fire traconload with -chaos (random machine kills and revivals through the
# lifecycle API while the load runs), and assert that the drill actually
# killed machines, that no task failed, that every machine is back up, and
# that the daemon still drains cleanly on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload

"$workdir/tracond" \
    -addr 127.0.0.1:0 \
    -portfile "$workdir/port" \
    -machines 4 \
    -model NLM \
    -policy mios \
    -seed 1 \
    >"$workdir/tracond.log" 2>&1 &
daemon_pid=$!

# Wait for the port file (training takes under a second; allow thirty).
for _ in $(seq 300); do
    [[ -s "$workdir/port" ]] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "chaos-smoke: tracond died during startup" >&2
        cat "$workdir/tracond.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$workdir/port" ]] || { echo "chaos-smoke: no port file after 30s" >&2; exit 1; }
addr="$(tr -d '\n' <"$workdir/port")"

"$workdir/traconload" \
    -addr "$addr" \
    -tasks 2000 \
    -concurrency 8 \
    -seed 1 \
    -chaos \
    -chaos-interval 20ms \
    -json >"$workdir/load.json"

field() {
    sed -n "s/^ *\"$1\": \([0-9]*\),*/\1/p" "$workdir/load.json"
}
completed="$(field completed)"
failed="$(field failed)"
kills="$(field chaos_kills)"

if [[ -z "$completed" || "$completed" -eq 0 ]]; then
    echo "chaos-smoke: zero completions" >&2
    cat "$workdir/load.json" >&2
    exit 1
fi
if [[ -z "$kills" || "$kills" -eq 0 ]]; then
    echo "chaos-smoke: the drill killed no machines — nothing was tested" >&2
    cat "$workdir/load.json" >&2
    exit 1
fi
if [[ -n "$failed" && "$failed" -ne 0 ]]; then
    echo "chaos-smoke: $failed tasks failed under chaos" >&2
    cat "$workdir/load.json" >&2
    exit 1
fi

# The drill must leave every machine back in service.
down="$(curl -sf "http://$addr/v1/machines" | grep -c '"state": *"down"' || true)"
if [[ "$down" -ne 0 ]]; then
    echo "chaos-smoke: $down machines still down after the drill" >&2
    exit 1
fi

# Graceful drain: SIGTERM must produce exit code 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "chaos-smoke: tracond did not drain cleanly" >&2
    cat "$workdir/tracond.log" >&2
    exit 1
fi
daemon_pid=""

echo "chaos-smoke: OK ($completed tasks completed through $kills machine kills, cluster healed, clean drain)"
