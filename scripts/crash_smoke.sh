#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery drill of the durable serving
# mode: boot tracond with a WAL under -fsync always, fire a mixed burst
# (singleton + batched submissions) through traconload -reconnect, kill the
# daemon with SIGKILL mid-burst, restart it on the same address and data
# directory, and assert that every admitted task reached a terminal state
# exactly once — zero failures and zero duplicate placement IDs across the
# restart — then verify the journal and drain cleanly on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload
go build -o "$workdir/tracontrace" ./cmd/tracontrace

boot() {
    # boot <portfile> <logfile>: start tracond against the shared data dir
    # and wait for it to serve. Retried binds ride out a lingering socket
    # from the SIGKILLed predecessor.
    local portfile="$1" logfile="$2" bind="${3:-127.0.0.1:0}"
    for attempt in $(seq 20); do
        : >"$portfile"
        "$workdir/tracond" \
            -addr "$bind" \
            -portfile "$portfile" \
            -machines 4 \
            -model NLM \
            -policy mios \
            -seed 1 \
            -data-dir "$workdir/data" \
            -fsync always \
            -snapshot-interval 2s \
            >>"$logfile" 2>&1 &
        daemon_pid=$!
        for _ in $(seq 300); do
            [[ -s "$portfile" ]] && return 0
            kill -0 "$daemon_pid" 2>/dev/null || break
            sleep 0.1
        done
        if [[ -s "$portfile" ]]; then
            return 0
        fi
        if kill -0 "$daemon_pid" 2>/dev/null; then
            echo "crash-smoke: tracond alive but no port file after 30s" >&2
            cat "$logfile" >&2
            exit 1
        fi
        daemon_pid=""
        if grep -q 'address already in use' "$logfile"; then
            sleep 0.2
            continue
        fi
        echo "crash-smoke: tracond died during startup" >&2
        cat "$logfile" >&2
        exit 1
    done
    echo "crash-smoke: could not rebind $bind after 20 attempts" >&2
    cat "$logfile" >&2
    exit 1
}

boot "$workdir/port" "$workdir/tracond.log"
addr="$(tr -d '\n' <"$workdir/port")"

# Mixed 200-task burst: 120 singleton submissions and 80 batched ones, both
# riding -reconnect so they retry through the restart window under stable
# idempotency keys instead of failing or double-submitting.
"$workdir/traconload" \
    -addr "$addr" -tasks 120 -concurrency 8 -seed 1 \
    -reconnect -reconnect-window 30s \
    -json >"$workdir/load_singleton.json" &
single_pid=$!
"$workdir/traconload" \
    -addr "$addr" -tasks 80 -concurrency 2 -batch 8 -seed 2 \
    -reconnect -reconnect-window 30s \
    -json >"$workdir/load_batched.json" &
batch_pid=$!

# Kill the daemon the moment the journal shows admitted work, so the crash
# lands mid-burst with tasks in flight (queued and placed, not yet done).
wal_bytes() {
    local total=0 f
    for f in "$workdir"/data/wal-*.wal; do
        [[ -e "$f" ]] || continue
        total=$((total + $(wc -c <"$f")))
    done
    echo "$total"
}
for _ in $(seq 200); do
    if [[ "$(wal_bytes)" -gt 4096 ]]; then
        break
    fi
    kill -0 "$single_pid" 2>/dev/null || break
    sleep 0.02
done

kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

# Restart on the same address against the same data dir; recovery must
# replay the journal before the loaders' retries land.
boot "$workdir/port2" "$workdir/tracond2.log" "$addr"
if ! grep -q 'recovered journal' "$workdir/tracond2.log"; then
    echo "crash-smoke: restarted tracond did not report journal recovery" >&2
    cat "$workdir/tracond2.log" >&2
    exit 1
fi

if ! wait "$single_pid"; then
    echo "crash-smoke: singleton loader failed" >&2
    cat "$workdir/load_singleton.json" >&2
    exit 1
fi
if ! wait "$batch_pid"; then
    echo "crash-smoke: batched loader failed" >&2
    cat "$workdir/load_batched.json" >&2
    exit 1
fi

field() {
    sed -n "s/^ *\"$2\": \([0-9]*\),*/\1/p" "$workdir/$1"
}
check_loader() {
    local file="$1" want="$2" completed failed dups
    completed="$(field "$file" completed)"
    failed="$(field "$file" failed)"
    dups="$(field "$file" duplicate_ids)"
    if [[ -z "$completed" || "$completed" -ne "$want" ]]; then
        echo "crash-smoke: $file completed ${completed:-0}/$want tasks" >&2
        cat "$workdir/$file" >&2
        exit 1
    fi
    if [[ -n "$failed" && "$failed" -ne 0 ]]; then
        echo "crash-smoke: $file reported $failed failed tasks across the crash" >&2
        cat "$workdir/$file" >&2
        exit 1
    fi
    if [[ -z "$dups" || "$dups" -ne 0 ]]; then
        echo "crash-smoke: $file reported ${dups:-missing} duplicate placement ids" >&2
        cat "$workdir/$file" >&2
        exit 1
    fi
}
check_loader load_singleton.json 120
check_loader load_batched.json 80

# Graceful drain: SIGTERM must produce exit code 0 and a final snapshot.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "crash-smoke: tracond did not drain cleanly after recovery" >&2
    cat "$workdir/tracond2.log" >&2
    exit 1
fi
daemon_pid=""

# The journal left behind must verify end to end: snapshot CRCs, WAL frame
# CRCs, and a contiguous sequence chain.
if ! "$workdir/tracontrace" -wal-verify "$workdir/data" >"$workdir/verify.out"; then
    echo "crash-smoke: journal failed verification after the drill" >&2
    cat "$workdir/verify.out" >&2
    exit 1
fi

r1="$(field load_singleton.json reconnects)"
r2="$(field load_batched.json reconnects)"
reconnects=$(( ${r1:-0} + ${r2:-0} ))
echo "crash-smoke: OK (200 tasks exactly-once across a SIGKILL restart, $reconnects retried attempts, journal verified, clean drain)"
