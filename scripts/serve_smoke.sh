#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the serving mode: boot tracond
# on a random port, fire a traconload burst at it, assert non-zero
# completions, then SIGTERM the daemon and require a clean drain (exit 0).
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload

"$workdir/tracond" \
    -addr 127.0.0.1:0 \
    -portfile "$workdir/port" \
    -machines 4 \
    -model NLM \
    -policy mios \
    -seed 1 \
    >"$workdir/tracond.log" 2>&1 &
daemon_pid=$!

# Wait for the port file (training takes under a second; allow thirty).
for _ in $(seq 300); do
    [[ -s "$workdir/port" ]] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "serve-smoke: tracond died during startup" >&2
        cat "$workdir/tracond.log" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -s "$workdir/port" ]] || { echo "serve-smoke: no port file after 30s" >&2; exit 1; }
addr="$(tr -d '\n' <"$workdir/port")"

"$workdir/traconload" \
    -addr "$addr" \
    -tasks 200 \
    -concurrency 8 \
    -seed 1 \
    -json >"$workdir/load.json"

completed="$(sed -n 's/^ *"completed": \([0-9]*\),*/\1/p' "$workdir/load.json")"
if [[ -z "$completed" || "$completed" -eq 0 ]]; then
    echo "serve-smoke: zero completions" >&2
    cat "$workdir/load.json" >&2
    exit 1
fi

# Graceful drain: SIGTERM must produce exit code 0.
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    echo "serve-smoke: tracond did not drain cleanly" >&2
    cat "$workdir/tracond.log" >&2
    exit 1
fi
daemon_pid=""

echo "serve-smoke: OK ($completed tasks completed, clean drain)"
