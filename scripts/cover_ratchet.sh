#!/usr/bin/env bash
# Per-package statement-coverage ratchet.
#
# COVERAGE.ratchet records, for every tested package, the coverage observed
# when the floor was last raised. The check fails when a package's current
# coverage falls more than EPS points below its floor (the tolerance absorbs
# scheduling-dependent branches in the concurrency tests); packages that
# gained coverage keep their old floor until someone deliberately raises it.
#
#   scripts/cover_ratchet.sh          # gate: compare against the floors
#   scripts/cover_ratchet.sh -update  # raise floors to current coverage
#                                     # (never lowers one) and add new
#                                     # packages
set -euo pipefail
cd "$(cd "$(dirname "$0")/.." && pwd)"

RATCHET=COVERAGE.ratchet
EPS=1.0
MODE=check
[ "${1:-}" = "-update" ] && MODE=update

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# `go test -cover` per package; keep "ok ... coverage: N% of statements"
# lines, drop untested ("?") and zero-asserted packages.
go test ./internal/... -count=1 -cover |
  awk '$1 == "ok" {
    for (i = 1; i <= NF; i++)
      if ($i == "coverage:") { sub(/%/, "", $(i+1)); print $2, $(i+1) }
  }' | sort > "$tmp"

if [ ! -s "$tmp" ]; then
  echo "cover_ratchet: parsed no coverage lines (did the tests fail?)" >&2
  exit 1
fi

if [ "$MODE" = update ]; then
  if [ -f "$RATCHET" ]; then
    awk 'NR == FNR { floor[$1] = $2; next }
         { if (($1 in floor) && floor[$1] + 0 > $2 + 0) $2 = floor[$1]; print }' \
      "$RATCHET" "$tmp" > "$RATCHET.new"
    mv "$RATCHET.new" "$RATCHET"
  else
    cp "$tmp" "$RATCHET"
  fi
  echo "cover_ratchet: floors written to $RATCHET"
  cat "$RATCHET"
  exit 0
fi

if [ ! -f "$RATCHET" ]; then
  echo "cover_ratchet: $RATCHET missing; run scripts/cover_ratchet.sh -update" >&2
  exit 1
fi

fail=0
while read -r pkg floor; do
  got=$(awk -v p="$pkg" '$1 == p { print $2 }' "$tmp")
  if [ -z "$got" ]; then
    echo "cover_ratchet: FAIL $pkg has a ${floor}% floor but reported no coverage" >&2
    fail=1
    continue
  fi
  if awk -v g="$got" -v f="$floor" -v e="$EPS" 'BEGIN { exit !(g + 0 < f - e) }'; then
    echo "cover_ratchet: FAIL $pkg at ${got}%, below the ${floor}% floor (tolerance ${EPS})" >&2
    fail=1
  else
    echo "cover_ratchet: ok   $pkg ${got}% (floor ${floor}%)"
  fi
done < "$RATCHET"
exit "$fail"
