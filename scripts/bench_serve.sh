#!/usr/bin/env bash
# bench_serve.sh — capture the serving benchmarks into one JSON file:
#   1. go-test benchmarks of the prediction cache's hit path vs uncached
#      regression scoring (NLM and Forest families),
#   2. a fixed-seed singleton traconload run (throughput, p50/p95/p99)
#      against a freshly trained tracond, and
#   3. a batched-burst traconload run (-batch 8 via POST /v1/tasks:batch)
#      against the same daemon, so one queue-aware scheduling pass covers
#      each task group. Two workers keep 16 tasks in flight — exactly the
#      8-machine cluster's slot count, a burst the batch path absorbs
#      without queueing; more tasks per run damp the short-run variance.
#   4. a durability sweep: the same singleton + batched runs repeated
#      against a journaling daemon (-data-dir) under each WAL fsync
#      policy (always, interval, never), so the price of crash safety on
#      the serving path is measured, not guessed. Each policy gets a
#      fresh data dir; the trained library is saved once and reloaded so
#      every daemon serves identical models.
# Usage: bench_serve.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr9.json}"
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go test -json -run '^$' -bench 'BenchmarkPredict(Cached|Uncached)(NLM|Forest)' \
    -benchmem -count=1 ./internal/serve >"$workdir/cache.json"

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload

# boot_and_load <suffix> [extra tracond flags...]: start a daemon, run the
# fixed-seed singleton and batched bursts against it, write the summaries
# to load_singleton_<suffix>.json / load_batched_<suffix>.json, drain.
boot_and_load() {
    local suffix="$1"
    shift
    : >"$workdir/port"
    "$workdir/tracond" \
        -addr 127.0.0.1:0 -portfile "$workdir/port" \
        -machines 8 -model NLM -policy mios -seed 1 \
        "$@" \
        >>"$workdir/tracond.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 300); do
        [[ -s "$workdir/port" ]] && break
        sleep 0.1
    done
    local addr
    addr="$(tr -d '\n' <"$workdir/port")"

    "$workdir/traconload" \
        -addr "$addr" -tasks 500 -concurrency 8 -seed 1 -json \
        >"$workdir/load_singleton_$suffix.json"

    "$workdir/traconload" \
        -addr "$addr" -tasks 2000 -concurrency 2 -batch 8 -seed 1 -json \
        >"$workdir/load_batched_$suffix.json"

    kill -TERM "$daemon_pid"
    wait "$daemon_pid"
    daemon_pid=""
}

# In-memory baseline (the PR-7 configuration), saving the trained library
# so the durability sweep reloads it instead of retraining.
boot_and_load mem -save-models "$workdir/models.json"

# Durability sweep: identical load, journal enabled, one fsync policy per
# run. "always" pays one fsync per committed event group, "interval"
# amortizes over a 50ms window, "never" leaves flushing to the kernel.
for policy in always interval never; do
    boot_and_load "$policy" \
        -models "$workdir/models.json" \
        -data-dir "$workdir/data-$policy" \
        -fsync "$policy"
done

# Stitch the captures into one artifact: the go-test event stream under
# "cache_benchmarks" (one event per line), the in-memory baseline load
# summaries, and the per-policy durable runs under "fsync_sweep".
{
    echo '{'
    echo '  "bench": "pr9-serving",'
    echo '  "config": {"machines": 8, "model": "NLM", "policy": "mios", "seed": 1, "singleton": {"tasks": 500, "concurrency": 8}, "batched": {"tasks": 2000, "concurrency": 2, "batch": 8}},'
    echo '  "cache_benchmarks": ['
    sed -e 's/^/    /' -e '$!s/$/,/' "$workdir/cache.json"
    echo '  ],'
    echo '  "load_singleton": '
    sed 's/^/  /' "$workdir/load_singleton_mem.json"
    echo '  ,'
    echo '  "load_batched": '
    sed 's/^/  /' "$workdir/load_batched_mem.json"
    echo '  ,'
    echo '  "fsync_sweep": {'
    for policy in always interval never; do
        echo "    \"$policy\": {"
        echo '      "load_singleton": '
        sed 's/^/      /' "$workdir/load_singleton_$policy.json"
        echo '      ,'
        echo '      "load_batched": '
        sed 's/^/      /' "$workdir/load_batched_$policy.json"
        if [[ "$policy" == never ]]; then
            echo '    }'
        else
            echo '    },'
        fi
    done
    echo '  }'
    echo '}'
} >"$out"

echo "bench-serve: wrote $out"
