#!/usr/bin/env bash
# bench_serve.sh — capture the serving benchmarks into one JSON file:
#   1. go-test benchmarks of the prediction cache's hit path vs uncached
#      regression scoring (NLM and Forest families),
#   2. a fixed-seed singleton traconload run (throughput, p50/p95/p99)
#      against a freshly trained tracond, and
#   3. a batched-burst traconload run (-batch 8 via POST /v1/tasks:batch)
#      against the same daemon, so one queue-aware scheduling pass covers
#      each task group. Two workers keep 16 tasks in flight — exactly the
#      8-machine cluster's slot count, a burst the batch path absorbs
#      without queueing; more tasks per run damp the short-run variance.
# Usage: bench_serve.sh [output.json]
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_pr7.json}"
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

go test -json -run '^$' -bench 'BenchmarkPredict(Cached|Uncached)(NLM|Forest)' \
    -benchmem -count=1 ./internal/serve >"$workdir/cache.json"

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload

"$workdir/tracond" \
    -addr 127.0.0.1:0 -portfile "$workdir/port" \
    -machines 8 -model NLM -policy mios -seed 1 \
    >"$workdir/tracond.log" 2>&1 &
daemon_pid=$!
for _ in $(seq 300); do
    [[ -s "$workdir/port" ]] && break
    sleep 0.1
done
addr="$(tr -d '\n' <"$workdir/port")"

"$workdir/traconload" \
    -addr "$addr" -tasks 500 -concurrency 8 -seed 1 -json \
    >"$workdir/load_singleton.json"

"$workdir/traconload" \
    -addr "$addr" -tasks 2000 -concurrency 2 -batch 8 -seed 1 -json \
    >"$workdir/load_batched.json"

kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=""

# Stitch the captures into one artifact: the go-test event stream under
# "cache_benchmarks" (one event per line) and the two load summaries.
{
    echo '{'
    echo '  "bench": "pr7-serving",'
    echo '  "config": {"machines": 8, "model": "NLM", "policy": "mios", "seed": 1, "singleton": {"tasks": 500, "concurrency": 8}, "batched": {"tasks": 2000, "concurrency": 2, "batch": 8}},'
    echo '  "cache_benchmarks": ['
    sed -e 's/^/    /' -e '$!s/$/,/' "$workdir/cache.json"
    echo '  ],'
    echo '  "load_singleton": '
    sed 's/^/  /' "$workdir/load_singleton.json"
    echo '  ,'
    echo '  "load_batched": '
    sed 's/^/  /' "$workdir/load_batched.json"
    echo '}'
} >"$out"

echo "bench-serve: wrote $out"
