#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test: boot tracond with
# JSON logs, drive a traconload burst with client-side scraping, then
# assert the whole telemetry surface: Prometheus exposition parses, the
# serve trace converts to Perfetto, spans join admission to completion,
# request IDs echo, and /v1/slo has the expected shape.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
daemon_pid=""

cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "obs-smoke: $1" >&2
    shift
    for f in "$@"; do cat "$f" >&2; done
    exit 1
}

go build -o "$workdir/tracond" ./cmd/tracond
go build -o "$workdir/traconload" ./cmd/traconload
go build -o "$workdir/tracontrace" ./cmd/tracontrace

"$workdir/tracond" \
    -addr 127.0.0.1:0 \
    -portfile "$workdir/port" \
    -machines 4 \
    -model NLM \
    -policy mios \
    -seed 1 \
    -log-format json \
    -stats-interval 1s \
    >"$workdir/tracond.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 300); do
    [[ -s "$workdir/port" ]] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        fail "tracond died during startup" "$workdir/tracond.log"
    fi
    sleep 0.1
done
[[ -s "$workdir/port" ]] || fail "no port file after 30s" "$workdir/tracond.log"
addr="$(tr -d '\n' <"$workdir/port")"

# Structured logging: every log line the daemon has emitted so far must be
# a JSON object (slog JSON handler).
if grep -qv '^{' "$workdir/tracond.log"; then
    fail "-log-format json emitted a non-JSON log line" "$workdir/tracond.log"
fi

# Request-ID round trip: a client-supplied X-Request-Id must be echoed.
echoed="$(curl -sf -D - -o /dev/null -H 'X-Request-Id: smoke-ping-1' \
    "http://$addr/v1/machines" | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')"
[[ "$echoed" == "smoke-ping-1" ]] || fail "X-Request-Id not echoed (got '$echoed')"

# Closed-loop burst with client-side scraping of the daemon's Prometheus
# endpoint. Default admission bounds never shed a 200-task burst, so the
# span ledger below is exact.
"$workdir/traconload" \
    -addr "$addr" \
    -tasks 200 \
    -concurrency 8 \
    -seed 1 \
    -scrape \
    -json >"$workdir/load.json"

jint() { sed -n "s/^ *\"$1\": \([0-9]*\),*/\1/p" "$2" | head -1; }

completed="$(jint completed "$workdir/load.json")"
[[ "$completed" == 200 ]] || fail "completed=$completed, want 200" "$workdir/load.json"
grep -q '"server"' "$workdir/load.json" \
    || fail "traconload -scrape produced no server-side summary" "$workdir/load.json"

# Prometheus exposition: parseable shape with cumulative buckets.
curl -sf "http://$addr/metrics?format=prometheus" >"$workdir/metrics.prom"
grep -q '^# TYPE serve_http_request_seconds histogram$' "$workdir/metrics.prom" \
    || fail "missing histogram TYPE line" "$workdir/metrics.prom"
grep -q 'serve_http_request_seconds_bucket{.*le="+Inf"}' "$workdir/metrics.prom" \
    || fail "missing +Inf bucket" "$workdir/metrics.prom"
grep -q '^serve_tasks_completed 200$' "$workdir/metrics.prom" \
    || fail "serve_tasks_completed != 200 in exposition" "$workdir/metrics.prom"
grep -q '^runtime_goroutines ' "$workdir/metrics.prom" \
    || fail "runtime self-stats missing from exposition" "$workdir/metrics.prom"

# The JSON snapshot rides the same endpoint by default.
curl -sf "http://$addr/metrics" | grep -q '"serve.tasks_completed"' \
    || fail "JSON metrics snapshot missing counters"

# Serve trace: NDJSON exports, spans balance (200 admits, 200 places,
# 200 completes), and the export converts to Perfetto without error.
curl -sf "http://$addr/v1/trace" >"$workdir/trace.ndjson"
for kind in admit place complete; do
    n="$(grep -c "\"k\":\"$kind\"" "$workdir/trace.ndjson" || true)"
    [[ "$n" == 200 ]] || fail "span kind=$kind count=$n, want 200"
done
"$workdir/tracontrace" -in "$workdir/trace.ndjson" -perfetto "$workdir/trace.perfetto.json" \
    >"$workdir/trace.summary" 2>&1 \
    || fail "tracontrace -perfetto failed" "$workdir/trace.summary"
[[ -s "$workdir/trace.perfetto.json" ]] || fail "empty Perfetto export"

# SLO endpoint shape: an all-success burst must report status ok with a
# full error budget.
curl -sf "http://$addr/v1/slo" >"$workdir/slo.json"
grep -q '"status": *"ok"' "$workdir/slo.json" \
    || fail "/v1/slo status not ok after clean burst" "$workdir/slo.json"
grep -q '"error_budget_left": *1' "$workdir/slo.json" \
    || fail "/v1/slo error budget burned by clean burst" "$workdir/slo.json"
grep -q '"latency_s"' "$workdir/slo.json" \
    || fail "/v1/slo missing latency summary" "$workdir/slo.json"

# Healthz folds the SLO verdict in.
curl -sf "http://$addr/healthz" | grep -q '"slo"' \
    || fail "healthz missing slo block"

kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
    fail "tracond did not drain cleanly" "$workdir/tracond.log"
fi
daemon_pid=""

echo "obs-smoke: OK (200 spans joined, exposition + perfetto + slo verified)"
