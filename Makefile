# Tier-1 gate plus the race pass that guards the parallel evaluation
# engine. `make ci` is what a checkin must keep green.

GO ?= go

.PHONY: ci vet build test race audit trace serve-smoke obs-smoke chaos crash-smoke fuzz-smoke dst dst-long cover bench bench-json bench-serve clean

ci: vet build test race audit trace serve-smoke obs-smoke chaos crash-smoke fuzz-smoke dst cover

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# Short mode keeps the race pass under ~2 minutes: the determinism golden
# test drops to one seed and the heavyweight dynamic sweeps shrink their
# dimensions (see testing.Short() guards in the _test files).
race:
	$(GO) test -short -race ./... -count=1

# Self-audit: replay a compact slice of the evaluation with the invariant
# auditor attached to every simulation (pool⟺machine consistency, work
# conservation, time/energy monotonicity, FIFO-fair pops). Any violation
# exits non-zero. Takes a couple of seconds.
audit:
	$(GO) run ./cmd/traconbench -quick -hours 0.5 -only table1,fig3,fig8,fig9 -audit -parallel 4 > /dev/null

# Tracing gate: the tracontrace CLI must build and the trace exports must
# be byte-identical across worker counts (and leave results untouched).
trace:
	$(GO) build -o /dev/null ./cmd/tracontrace
	$(GO) test ./internal/experiments -run TestTraceExportDeterministicAcrossWorkers -short -count=1
	$(GO) test ./internal/obs -run 'TestTrace|TestTracer|TestPerfetto' -count=1

# Serving-mode smoke test: boot tracond on a random port, drive it with a
# traconload burst, assert non-zero completions and a clean SIGTERM drain.
serve-smoke:
	bash scripts/serve_smoke.sh

# Observability smoke test: boot tracond with JSON logs, drive a scraped
# traconload burst, then assert Prometheus exposition shape, serve-trace
# span balance and Perfetto conversion, X-Request-Id echo, and /v1/slo.
obs-smoke:
	bash scripts/obs_smoke.sh

# Chaos gate: the simulator-side fault-injection suite (crash recovery,
# retry/backoff/timeout, golden determinism under faults), the serve-side
# machine lifecycle tests, and the end-to-end drill — tracond under
# traconload -chaos with random kills and revivals; no task may fail.
chaos:
	$(GO) test ./internal/fault ./internal/sim -run 'TestChaos|TestTimeout|TestRetry|TestBackoff|TestSlowdown|TestEmptyPlan|Fault' -count=1
	$(GO) test ./internal/serve -run 'TestMachineLifecycle|TestDrainCordons|TestKillRequeues|TestAdmissionShedding|TestHTTPMachineOps' -count=1
	$(GO) test ./internal/experiments -run 'TestChaosExperiments|TestEmptyFaultFactory' -short -count=1
	bash scripts/chaos_smoke.sh

# Crash gate: tracond journaling under -fsync always takes a SIGKILL
# mid-burst, restarts on the same data dir, and every admitted task must
# reach a terminal state exactly once (no losses, no duplicate IDs).
crash-smoke:
	bash scripts/crash_smoke.sh

# Ten seconds each of coverage-guided fuzzing against the placer's machine
# lifecycle (submit/complete/kill/revive/drain/undrain interleavings) and
# the WAL reader's torn/corrupt-frame discrimination; the checked-in
# corpora under internal/{serve,durable}/testdata seed them.
fuzz-smoke:
	$(GO) test ./internal/serve -fuzz=FuzzPlacerBacklog -fuzztime=10s -run '^$$'
	$(GO) test ./internal/durable -fuzz=FuzzWALReader -fuzztime=10s -run '^$$'

# Deterministic simulation gate: 50 seeded scenarios drive the whole
# daemon (placer, coalescer, admission, swaps, journal, simulated crashes)
# on a virtual clock and an in-memory disk, with the full property suite
# checked after every op; plus the byte-identical-trail contract, the
# sim-engine equivalence oracle, and the injected-violation meta-test
# (catch → ddmin shrink → seed repro). A failure prints a one-line
# `go test ./internal/dst -run 'TestDST$$' -dst-seed=N` reproduction.
dst:
	$(GO) test ./internal/dst -count=1 -dst-scenarios=50

# Nightly-depth sweep: an order of magnitude more seeds and longer op
# streams. Not part of `make ci`.
dst-long:
	$(GO) test ./internal/dst -count=1 -dst-scenarios=500 -dst-ops=400 -timeout 30m

# Per-package statement coverage with a ratchet: any package falling more
# than a point below the floor recorded in COVERAGE.ratchet fails the
# gate. After genuine coverage gains, raise the floors with
# `bash scripts/cover_ratchet.sh -update` (it never lowers one).
cover:
	bash scripts/cover_ratchet.sh

# Regenerate the paper exhibits through the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem -count=1 .

# Machine-readable benchmark snapshot of the engine-critical paths; the
# checked-in BENCH_pr3.json is this target's output at the PR-3 baseline.
bench-json:
	$(GO) test -json -run '^$$' -bench 'BenchmarkNewEnv|BenchmarkFig9$$|BenchmarkSchedulerOverhead' \
		-benchmem -benchtime 1x -count=1 . > BENCH_pr3.json

# Serving-path benchmark snapshot: prediction-cache hit vs uncached
# scoring, fixed-seed singleton and batched traconload runs, and the WAL
# fsync-policy sweep (always/interval/never) against a journaling daemon;
# BENCH_pr9.json is this target's output at the PR-9 baseline
# (BENCH_pr7.json is the pre-durability snapshot, BENCH_pr4.json the
# pre-batching singleton one).
bench-serve:
	bash scripts/bench_serve.sh BENCH_pr9.json

clean:
	$(GO) clean ./...
