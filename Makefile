# Tier-1 gate plus the race pass that guards the parallel evaluation
# engine. `make ci` is what a checkin must keep green.

GO ?= go

.PHONY: ci vet build test race audit bench clean

ci: vet build test race audit

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./... -count=1

# Short mode keeps the race pass under ~2 minutes: the determinism golden
# test drops to one seed and the heavyweight dynamic sweeps shrink their
# dimensions (see testing.Short() guards in the _test files).
race:
	$(GO) test -short -race ./... -count=1

# Self-audit: replay a compact slice of the evaluation with the invariant
# auditor attached to every simulation (pool⟺machine consistency, work
# conservation, time/energy monotonicity, FIFO-fair pops). Any violation
# exits non-zero. Takes a couple of seconds.
audit:
	$(GO) run ./cmd/traconbench -quick -hours 0.5 -only table1,fig3,fig8,fig9 -audit -parallel 4 > /dev/null

# Regenerate the paper exhibits through the benchmark harness.
bench:
	$(GO) test -bench=. -benchmem -count=1 .

clean:
	$(GO) clean ./...
