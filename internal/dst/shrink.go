package dst

// Shrink minimizes a failing op stream with ddmin (Zeller & Hildebrandt):
// repeatedly try dropping complement chunks at increasing granularity,
// keeping any candidate that still fails, until the stream is 1-minimal —
// removing any single remaining op makes the failure disappear. fails
// must be deterministic (DST scenarios are: the whole daemon runs on a
// virtual clock and an in-memory disk), and must return true for ops.
func Shrink(ops []Op, fails func([]Op) bool) []Op {
	if len(ops) == 0 || !fails(ops) {
		return ops
	}
	n := 2
	for len(ops) >= 2 {
		chunk := (len(ops) + n - 1) / n
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := make([]Op, 0, len(ops)-(end-start))
			candidate = append(candidate, ops[:start]...)
			candidate = append(candidate, ops[end:]...)
			if len(candidate) > 0 && fails(candidate) {
				ops = candidate
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(ops) {
			break // 1-minimal: no single-op removal still fails
		}
		n *= 2
		if n > len(ops) {
			n = len(ops)
		}
	}
	return ops
}
