package dst

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"tracon/internal/model"
	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/serve"
	"tracon/internal/sim"
)

// The equivalence oracle replays one arrival/completion schedule through
// both placement engines the repo grew: the discrete-event simulator
// (internal/sim, the paper reproduction) and the serving daemon's Placer
// (internal/serve). Their semantics overlap exactly where both run an
// online policy (batch size 1) over a fixed two-VM-per-machine cluster
// with no faults and no admission bound: tasks must start in the same
// order, the backlog must have the same depth at every synchronization
// point, and every task must finish. Machine identity is intentionally
// out of scope — the daemon's free-slot resolution and the simulator's
// free pool may pick different concrete VMs for the same decision — and
// so are the batch policies, whose queue reordering is scored against
// engine-specific load inputs.

type oracleEventKind int

const (
	otEnqueue oracleEventKind = iota
	otPlace
	otComplete
)

type oracleEvent struct {
	kind oracleEventKind
	task int64
	app  string
}

// oracleTracer captures the simulator's lifecycle stream: the driver
// events (enqueue, complete) the serve replay re-issues, and the place
// events that record the simulator's start order.
type oracleTracer struct {
	events []oracleEvent
}

func (o *oracleTracer) TraceArrival(float64, sched.Task, bool) {}
func (o *oracleTracer) TraceEnqueue(_ float64, t sched.Task, _ bool) {
	o.events = append(o.events, oracleEvent{kind: otEnqueue, task: t.ID, app: t.App})
}
func (o *oracleTracer) TraceFlush(float64)                  {}
func (o *oracleTracer) TraceDecision(float64, sim.Decision) {}
func (o *oracleTracer) TracePop(float64, sim.PopInfo)       {}
func (o *oracleTracer) TracePlace(_ float64, p sim.PlaceInfo) {
	o.events = append(o.events, oracleEvent{kind: otPlace, task: p.Task.ID, app: p.Task.App})
}
func (o *oracleTracer) TraceSegment(float64, sim.Segment) {}
func (o *oracleTracer) TraceComplete(_ float64, c sim.Completion) {
	o.events = append(o.events, oracleEvent{kind: otComplete, task: c.Record.Task.ID, app: c.Record.Task.App})
}
func (o *oracleTracer) TraceFault(float64, sim.FaultInfo) {}
func (o *oracleTracer) TraceDone(float64, *sim.Results)   {}

// RunOracle draws a seeded arrival schedule, runs it to completion in the
// simulator, then replays the simulator's own event stream against a
// serve.Placer on a virtual clock and asserts agreement. policy must be
// an online policy ("fifo" or "mios"); lib both schedules the serve side
// and scores the simulator side, so the two engines see identical models.
func RunOracle(lib *model.Library, tbl *sim.InterferenceTable, policy string, machines, tasks int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	apps := lib.Apps()
	arrivals := make([]sched.Task, tasks)
	for i := range arrivals {
		app := apps[rng.Intn(len(apps))]
		if !tbl.Has(app) {
			return fmt.Errorf("oracle: app %q trained but not in the interference table", app)
		}
		arrivals[i] = sched.Task{ID: int64(i + 1), App: app, Arrival: float64(i)}
	}

	var scheduler sched.Scheduler
	switch policy {
	case "fifo":
		scheduler = sched.FIFO{}
	case "mios":
		scheduler = &sched.MIOS{Scorer: sched.NewScorer(lib, 0)}
	default:
		return fmt.Errorf("oracle: policy %q has no overlapping semantics (online policies only)", policy)
	}
	tracer := &oracleTracer{}
	engine, err := sim.NewEngine(sim.Config{
		Machines:  machines,
		Scheduler: scheduler,
		Table:     tbl,
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	if _, err := engine.Run(arrivals, math.Inf(1)); err != nil {
		return err
	}

	// Replay the simulator's stream through the serving daemon.
	srv, err := serve.New(lib, serve.Config{
		Machines:     machines,
		Policy:       policy,
		MaxQueue:     -1, // the simulator has no admission control
		DisableCache: true,
		TraceCap:     -1,
		Clock:        obs.NewVirtualClock(time.Unix(1700000000, 0)),
	})
	if err != nil {
		return err
	}
	p := srv.Placer()

	simToServe := map[int64]string{} // sim task ID → serve placement ID
	serveToSim := map[string]int64{}
	var order []string // serve IDs in submission order
	started := map[string]bool{}
	var simStarts, serveStarts []int64
	enqueued := 0

	// observeStarts appends every serve task that newly reached the
	// placed (or later) state, in submission order — which is start order
	// for an online policy: the placer drains its FIFO backlog head-first.
	observeStarts := func() {
		for _, id := range order {
			if started[id] {
				continue
			}
			rec, ok := p.Get(id)
			if !ok {
				continue
			}
			if rec.Status == serve.StatusPlaced || rec.Status == serve.StatusCompleted {
				started[id] = true
				serveStarts = append(serveStarts, serveToSim[id])
			}
		}
	}
	// sync asserts the two engines agree at a driver-event boundary: same
	// start order, same backlog depth.
	sync := func(at string) error {
		if len(simStarts) != len(serveStarts) {
			return fmt.Errorf("oracle: at %s: sim started %d tasks, serve %d", at, len(simStarts), len(serveStarts))
		}
		for i := range simStarts {
			if simStarts[i] != serveStarts[i] {
				return fmt.Errorf("oracle: at %s: start order diverges at position %d: sim task %d, serve task %d",
					at, i, simStarts[i], serveStarts[i])
			}
		}
		if want, got := enqueued-len(simStarts), p.QueueDepth(); want != got {
			return fmt.Errorf("oracle: at %s: serve backlog %d, sim backlog %d", at, got, want)
		}
		return p.CheckInvariants()
	}

	for i, ev := range tracer.events {
		switch ev.kind {
		case otPlace:
			simStarts = append(simStarts, ev.task)
		case otEnqueue:
			if err := sync(fmt.Sprintf("event %d (enqueue task %d)", i, ev.task)); err != nil {
				return err
			}
			rec, err := p.Submit(ev.app)
			if err != nil {
				return fmt.Errorf("oracle: submit task %d: %w", ev.task, err)
			}
			simToServe[ev.task] = rec.ID
			serveToSim[rec.ID] = ev.task
			order = append(order, rec.ID)
			enqueued++
			observeStarts()
		case otComplete:
			if err := sync(fmt.Sprintf("event %d (complete task %d)", i, ev.task)); err != nil {
				return err
			}
			id, ok := simToServe[ev.task]
			if !ok {
				return fmt.Errorf("oracle: sim completed task %d the serve side never admitted", ev.task)
			}
			if _, err := p.Complete(id); err != nil {
				return fmt.Errorf("oracle: complete task %d (%s): %w — the engines placed different tasks", ev.task, id, err)
			}
			observeStarts()
		}
	}
	if err := sync("end of stream"); err != nil {
		return err
	}
	if len(simStarts) != tasks {
		return fmt.Errorf("oracle: sim started %d of %d tasks", len(simStarts), tasks)
	}
	if depth := p.QueueDepth(); depth != 0 {
		return fmt.Errorf("oracle: %d tasks still queued after the sim completed everything", depth)
	}
	if free := p.FreeSlots(); free != 2*machines {
		return fmt.Errorf("oracle: %d free slots at the end, want %d", free, 2*machines)
	}
	return nil
}
