package dst

import (
	"bytes"
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/sim"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

var (
	dstSeed      = flag.Int64("dst-seed", 0, "run exactly one DST scenario with this seed (0 = seeded sweep)")
	dstOps       = flag.Int("dst-ops", 120, "ops per DST scenario")
	dstScenarios = flag.Int("dst-scenarios", 0, "scenarios in the sweep (0 = 50, or 8 with -short)")
)

// The trained library and the simulator's interference table are the
// expensive fixtures; both are built once per test binary over the same
// synthetic host, so the serve side and the sim side see the same world.
var (
	fixOnce sync.Once
	fixLib  *model.Library
	fixTbl  *sim.InterferenceTable
	fixErr  error
)

func fixtures(t testing.TB) (*model.Library, *sim.InterferenceTable) {
	t.Helper()
	fixOnce.Do(func() {
		host, err := xen.NewHost(xen.DefaultHost())
		if err != nil {
			fixErr = err
			return
		}
		tb := xen.NewTestbed(host, 3, 0.05, 1)
		var bgs []xen.AppSpec
		for _, w := range workload.ProfilingWorkloads(host.Config().Disk) {
			bgs = append(bgs, w.Spec)
		}
		var specs []xen.AppSpec
		for _, b := range workload.Benchmarks() {
			specs = append(specs, b.Spec)
		}
		if fixLib, err = model.BuildLibrary(tb, specs, bgs, model.NLM); err != nil {
			fixErr = err
			return
		}
		fixTbl, fixErr = sim.BuildInterferenceTable(host, specs)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixLib, fixTbl
}

func sweepSize() int {
	if *dstScenarios > 0 {
		return *dstScenarios
	}
	if testing.Short() {
		return 8
	}
	return 50
}

// TestDST is the seeded sweep: each seed derives a scenario shape and an
// op stream, runs the whole daemon on virtual time and a simulated disk,
// and checks the property suite after every op. A failure shrinks itself
// and prints a one-line repro.
func TestDST(t *testing.T) {
	lib, _ := fixtures(t)
	if *dstSeed != 0 {
		runSeed(t, lib, *dstSeed, *dstOps)
		return
	}
	for seed := int64(1); seed <= int64(sweepSize()); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, lib, seed, *dstOps)
		})
	}
}

// runSeed executes one scenario; on failure it ddmin-shrinks the op
// stream and reports the seed repro plus the minimized stream.
func runSeed(t *testing.T, lib *model.Library, seed int64, nops int) {
	t.Helper()
	sc, ops := NewScenario(seed, nops)
	trail, err := sc.Execute(lib, ops)
	if err == nil {
		return
	}
	minimized := Shrink(ops, func(c []Op) bool {
		_, e := sc.Execute(lib, c)
		return e != nil
	})
	t.Errorf("scenario failed: %v\n"+
		"repro: go test ./internal/dst -run 'TestDST$' -dst-seed=%d -dst-ops=%d\n"+
		"minimized to %d of %d ops: %s\n"+
		"trail tail:\n%s",
		err, seed, nops, len(minimized), len(ops), FormatOps(minimized), trailTail(trail, 12))
}

func trailTail(trail []byte, lines int) []byte {
	all := bytes.Split(bytes.TrimRight(trail, "\n"), []byte("\n"))
	if len(all) > lines {
		all = all[len(all)-lines:]
	}
	return bytes.Join(all, []byte("\n"))
}

// TestDSTTrailIsDeterministic pins the harness's core contract: the same
// seed produces a byte-identical execution trail. Everything the sweep
// proves rests on this — a nondeterministic harness can neither shrink
// nor reproduce.
func TestDSTTrailIsDeterministic(t *testing.T) {
	lib, _ := fixtures(t)
	for seed := int64(1); seed <= 3; seed++ {
		sc := Scenario{Seed: seed, Ops: *dstOps}
		first, err1 := sc.Run(lib)
		second, err2 := sc.Run(lib)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: one run failed, the other did not: %v vs %v", seed, err1, err2)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("seed %d: trails differ between identical runs\nfirst:\n%s\nsecond:\n%s",
				seed, trailTail(first, 20), trailTail(second, 20))
		}
	}
}

// TestDSTInjectedViolationShrinksAndReproduces is the meta-test: with a
// deliberately wrong FIFO-requeue expectation injected into the checker,
// some seed must fail; the failure must shrink to a smaller stream that
// still fails, and re-running from the seed alone must reproduce the
// identical failure. This proves the catch → shrink → repro pipeline on a
// real violation rather than trusting it until a regression needs it.
func TestDSTInjectedViolationShrinksAndReproduces(t *testing.T) {
	lib, _ := fixtures(t)
	const nops = 120
	var failSeed int64
	var failErr error
	var failOps []Op
	var failSc Scenario
	for seed := int64(1); seed <= 100; seed++ {
		sc, ops := NewScenario(seed, nops)
		sc.InjectRequeueBug = true
		if _, err := sc.Execute(lib, ops); err != nil {
			failSeed, failErr, failOps, failSc = seed, err, ops, sc
			break
		}
	}
	if failSeed == 0 {
		t.Fatal("no seed in 1..100 tripped the injected FIFO-requeue violation — the harness is not exercising kill-under-backlog")
	}
	if !strings.Contains(failErr.Error(), "FIFO fairness") {
		t.Fatalf("injected violation surfaced as the wrong failure: %v", failErr)
	}

	minimized := Shrink(failOps, func(c []Op) bool {
		_, e := failSc.Execute(lib, c)
		return e != nil
	})
	if len(minimized) >= len(failOps) {
		t.Fatalf("shrinker made no progress: %d ops in, %d out", len(failOps), len(minimized))
	}
	if _, err := failSc.Execute(lib, minimized); err == nil {
		t.Fatal("minimized stream no longer fails")
	}
	t.Logf("injected violation: seed %d, %d ops shrunk to %d: %s",
		failSeed, len(failOps), len(minimized), FormatOps(minimized))

	// The printed one-line repro — seed alone — must reproduce the very
	// same failure, byte for byte.
	reproSc := Scenario{Seed: failSeed, Ops: nops, InjectRequeueBug: true}
	if _, err := reproSc.Run(lib); err == nil || err.Error() != failErr.Error() {
		t.Fatalf("seed repro diverged:\noriginal: %v\nrepro:    %v", failErr, err)
	}
}

// TestDSTOracle replays seeded arrival/completion schedules through both
// the discrete-event simulator and the serving placer and requires
// identical start order and backlog depth at every synchronization point.
func TestDSTOracle(t *testing.T) {
	lib, tbl := fixtures(t)
	policies := []string{"fifo", "mios"}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, policy := range policies {
		for _, seed := range seeds {
			policy, seed := policy, seed
			t.Run(fmt.Sprintf("%s/seed=%d", policy, seed), func(t *testing.T) {
				if err := RunOracle(lib, tbl, policy, 3, 40, seed); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestShrinkIsOneMinimal exercises ddmin against a synthetic predicate
// (fails iff the stream still contains one kill after at least two
// submits) and requires the exact 3-op minimum back.
func TestShrinkIsOneMinimal(t *testing.T) {
	ops := []Op{
		{Kind: OpSubmit}, {Kind: OpAdvance}, {Kind: OpSubmit}, {Kind: OpDrain},
		{Kind: OpSubmit}, {Kind: OpKill}, {Kind: OpRevive}, {Kind: OpComplete},
	}
	fails := func(c []Op) bool {
		submits := 0
		for _, op := range c {
			switch op.Kind {
			case OpSubmit:
				submits++
			case OpKill:
				if submits >= 2 {
					return true
				}
			}
		}
		return false
	}
	got := Shrink(ops, fails)
	if len(got) != 3 {
		t.Fatalf("shrunk to %d ops (%s), want the 3-op minimum", len(got), FormatOps(got))
	}
	if got[0].Kind != OpSubmit || got[1].Kind != OpSubmit || got[2].Kind != OpKill {
		t.Fatalf("wrong minimum: %s", FormatOps(got))
	}
}
