package dst

import (
	"fmt"
	"math/rand"
	"strings"
)

// OpKind enumerates the scenario interpreter's verbs. The stream mixes
// the serving daemon's whole external surface: submissions (singleton,
// batch, coalesced, keyed), completions, the machine lifecycle, model
// hot-swaps, virtual-clock jumps, snapshot compaction and full simulated
// crashes.
type OpKind int

const (
	OpSubmit OpKind = iota
	OpBatch
	OpCoalesce
	OpComplete
	OpKill
	OpRevive
	OpDrain
	OpUndrain
	OpDedup
	OpAdvance
	OpSwap
	OpSnapshot
	OpCrash
	numOpKinds
)

var opNames = [numOpKinds]string{
	"submit", "batch", "coalesce", "complete", "kill", "revive",
	"drain", "undrain", "dedup", "advance", "swap", "snapshot", "crash",
}

// Op is one scenario step: a verb plus one argument whose meaning depends
// on the verb (application index, machine index, key index, batch width,
// or clock-jump milliseconds).
type Op struct {
	Kind OpKind
	Arg  int
}

func (o Op) String() string {
	if o.Kind < 0 || o.Kind >= numOpKinds {
		return fmt.Sprintf("op?(%d,%d)", int(o.Kind), o.Arg)
	}
	return fmt.Sprintf("%s(%d)", opNames[o.Kind], o.Arg)
}

// FormatOps renders an op stream as one readable line (shrunk repros).
func FormatOps(ops []Op) string {
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// GenOps draws n ops from rng. The weights keep the cluster busy (about
// half the stream is submission work) while still exercising every fault
// and maintenance verb; crashes, swaps and snapshots are rare enough that
// a 100-op stream usually sees one or two of each.
func GenOps(rng *rand.Rand, n int) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: drawKind(rng), Arg: rng.Intn(1 << 16)}
	}
	return ops
}

func drawKind(rng *rand.Rand) OpKind {
	switch r := rng.Intn(100); {
	case r < 24:
		return OpSubmit
	case r < 34:
		return OpBatch
	case r < 44:
		return OpCoalesce
	case r < 62:
		return OpComplete
	case r < 70:
		return OpKill
	case r < 78:
		return OpRevive
	case r < 83:
		return OpDrain
	case r < 88:
		return OpUndrain
	case r < 93:
		return OpDedup
	case r < 96:
		return OpAdvance
	case r < 97:
		return OpSwap
	case r < 98:
		return OpSnapshot
	default:
		return OpCrash
	}
}
