// Package dst is a deterministic simulation harness for the serving
// daemon, in the FoundationDB style: the full serve stack — Placer,
// coalescer, admission, swap manager, journal and crash recovery — runs
// on an injected obs.VirtualClock and an in-memory crash-simulating
// filesystem (durable.MemFS), driven by a seeded op-stream interpreter.
// Nothing in the stack reads the wall clock or the OS filesystem, so a
// scenario is a pure function of its seed: the same seed produces a
// byte-identical execution trail, a failing stream shrinks to a minimal
// repro with ddmin, and the printed one-line repro re-runs it exactly.
//
// After every single op the interpreter checks the properties the unit
// and fuzz tests check at their own seams, here composed across the whole
// daemon: placer invariants (CheckInvariants), conservation (no admitted
// task is ever lost or double-placed), the scaled admission bound
// (submissions never grow the backlog past it), FIFO fairness of
// kill-requeues, exactly-once keyed dedup, and — across simulated
// crashes — the journal's durability contract (FsyncAlways loses nothing
// acknowledged; FsyncNever loses at most an unsynced suffix).
package dst

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tracon/internal/durable"
	"tracon/internal/model"
	"tracon/internal/obs"
	"tracon/internal/serve"
)

// Scenario is one seeded DST run's shape. Everything — the cluster size,
// the policy, the coalescer, the fsync contract, and the op stream — is
// derived from Seed, so Seed alone reproduces the run.
type Scenario struct {
	Seed int64
	Ops  int

	Machines       int
	Policy         string
	CoalesceWindow time.Duration // 0 disables the coalescer
	Fsync          durable.FsyncPolicy

	// InjectRequeueBug deliberately inverts the harness's FIFO-requeue
	// expectation (kill victims expected at the BACK of the queue instead
	// of the front). The daemon is correct, the checker is wrong — which
	// is exactly the point: the meta-test uses it to prove a real
	// invariant violation would be caught, shrunk, and reproduced.
	InjectRequeueBug bool
}

// NewScenario derives a scenario and its op stream from seed. The
// derivation order is fixed; changing it invalidates every recorded seed.
func NewScenario(seed int64, nops int) (Scenario, []Op) {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Seed: seed, Ops: nops}
	sc.Machines = 2 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		sc.Policy = "fifo"
	} else {
		sc.Policy = "mios"
	}
	if rng.Intn(2) == 0 {
		sc.CoalesceWindow = 10 * time.Millisecond
	}
	if rng.Intn(4) == 0 {
		sc.Fsync = durable.FsyncNever
	} else {
		sc.Fsync = durable.FsyncAlways
	}
	return sc, GenOps(rng, nops)
}

// Run re-derives the scenario's shape and op stream from its seed and
// executes it (InjectRequeueBug carries over — it is a harness knob, not
// a seed draw).
func (sc Scenario) Run(lib *model.Library) ([]byte, error) {
	derived, ops := NewScenario(sc.Seed, sc.Ops)
	derived.InjectRequeueBug = sc.InjectRequeueBug
	return derived.Execute(lib, ops)
}

// Execute interprets an explicit op stream (the shrinker's entry point)
// and returns the execution trail. A non-nil error is a property
// violation (or an unexpected daemon error), stamped with the op index.
func (sc Scenario) Execute(lib *model.Library, ops []Op) ([]byte, error) {
	h := &harness{
		sc:    sc,
		lib:   lib,
		apps:  lib.Apps(),
		clock: obs.NewVirtualClock(time.Unix(1700000000, 0)),
		mem:   durable.NewMemFS(),
		keys:  map[string]string{},
	}
	fmt.Fprintf(&h.trail, "scenario seed=%d ops=%d machines=%d policy=%s coalesce=%s fsync=%s\n",
		sc.Seed, len(ops), sc.Machines, sc.Policy, sc.CoalesceWindow, sc.Fsync)
	if err := h.boot(); err != nil {
		return h.trail.Bytes(), fmt.Errorf("boot: %w", err)
	}
	for i, op := range ops {
		if err := h.step(op); err != nil {
			fmt.Fprintf(&h.trail, "%04d %-14s FAIL %v\n", i, op, err)
			return h.trail.Bytes(), fmt.Errorf("op %d %s: %w", i, op, err)
		}
		fmt.Fprintf(&h.trail, "%04d %-14s %s\n", i, op, h.digest())
	}
	if err := h.check(false); err != nil {
		return h.trail.Bytes(), fmt.Errorf("final check: %w", err)
	}
	return h.trail.Bytes(), nil
}

// harness is the live interpreter state: the daemon under test plus the
// ledger of everything the daemon has acknowledged, which the per-op
// property checks replay against the daemon's own answers.
type harness struct {
	sc    Scenario
	lib   *model.Library
	apps  []string
	clock *obs.VirtualClock
	mem   *durable.MemFS
	mgr   *durable.Manager
	srv   *serve.Server

	ids       []string          // acknowledged placement IDs, admission order
	keys      map[string]string // idempotency key → first acknowledged ID
	rejected  int               // ErrQueueFull sheds (expected, counted)
	crashes   int
	prevDepth int

	trail bytes.Buffer // one line per op; byte-identical across same-seed runs
}

// boot opens (or re-opens, after a crash) the journal on the shared MemFS
// and builds a fresh Server over it. The daemon recovers whatever the
// simulated disk durably holds.
func (h *harness) boot() error {
	mgr, err := durable.Open("data", durable.Options{
		Fsync: h.sc.Fsync, Now: h.clock.Now, FS: h.mem,
	})
	if err != nil {
		return err
	}
	srv, err := serve.New(h.lib, serve.Config{
		Machines:       h.sc.Machines,
		Policy:         h.sc.Policy,
		CoalesceWindow: h.sc.CoalesceWindow,
		BatchMax:       64,
		Retrain: func(map[string][]model.Sample) (*model.Library, error) {
			return h.lib, nil
		},
		SyncRetrain: true,
		TraceCap:    -1,
		Clock:       h.clock,
		Journal:     mgr,
	})
	if err != nil {
		return err
	}
	h.mgr = mgr
	h.srv = srv
	return nil
}

// step interprets one op, then runs the whole property suite.
func (h *harness) step(op Op) error {
	submitted := false
	var err error
	switch op.Kind {
	case OpSubmit:
		submitted, err = true, h.opSubmit(op.Arg)
	case OpBatch:
		submitted, err = true, h.opBatch(op.Arg)
	case OpCoalesce:
		submitted, err = true, h.opCoalesce(op.Arg)
	case OpComplete:
		err = h.opComplete()
	case OpKill:
		err = h.opKill(op.Arg % h.sc.Machines)
	case OpRevive:
		err = tolerate(h.srv.Placer().Revive(op.Arg % h.sc.Machines))
	case OpDrain:
		err = tolerate(h.srv.Placer().Drain(op.Arg % h.sc.Machines))
	case OpUndrain:
		err = tolerate(h.srv.Placer().Undrain(op.Arg % h.sc.Machines))
	case OpDedup:
		submitted, err = true, h.opDedup(op.Arg)
	case OpAdvance:
		h.clock.Advance(time.Duration(1+op.Arg%5000) * time.Millisecond)
	case OpSwap:
		err = h.srv.Swapper().TriggerSwap()
	case OpSnapshot:
		err = h.srv.SnapshotNow()
	case OpCrash:
		err = h.opCrash()
	default:
		err = fmt.Errorf("dst: unknown op kind %d", op.Kind)
	}
	if err != nil {
		return err
	}
	return h.check(submitted)
}

// tolerate accepts the expected no-op outcome of a lifecycle verb fired
// at a machine in the wrong state; anything else is a real failure.
func tolerate(err error) error {
	if err == nil || errors.Is(err, serve.ErrBadTransition) {
		return nil
	}
	return err
}

func (h *harness) opSubmit(arg int) error {
	rec, err := h.srv.Placer().Submit(h.apps[arg%len(h.apps)])
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		h.rejected++
	case err != nil:
		return err
	default:
		h.ids = append(h.ids, rec.ID)
	}
	return nil
}

func (h *harness) opBatch(arg int) error {
	n := 2 + arg%3
	batch := make([]string, n)
	for j := range batch {
		batch[j] = h.apps[(arg+j)%len(h.apps)]
	}
	outcomes, err := h.srv.Placer().SubmitBatch(batch)
	if err != nil {
		return err
	}
	for j, o := range outcomes {
		switch {
		case errors.Is(o.Err, serve.ErrQueueFull):
			h.rejected++
		case o.Err != nil:
			return fmt.Errorf("batch task %d: %w", j, o.Err)
		default:
			h.ids = append(h.ids, o.Placement.ID)
		}
	}
	return nil
}

// opCoalesce parks 1-3 submissions in the micro-batcher one at a time
// (sequenced on Coalescer.Waiting, so the batch order — and therefore the
// minted IDs — is deterministic), then advances the virtual clock past
// the window so the group flushes through one scheduling pass.
func (h *harness) opCoalesce(arg int) error {
	c := h.srv.Coalescer()
	if c == nil {
		return h.opSubmit(arg)
	}
	k := 1 + arg%3
	type result struct {
		rec *serve.Placement
		err error
	}
	chans := make([]chan result, k)
	for j := 0; j < k; j++ {
		chans[j] = make(chan result, 1)
		app := h.apps[(arg+j)%len(h.apps)]
		want := c.Waiting() + 1
		ch := chans[j]
		go func() {
			rec, err := c.Submit(app)
			ch <- result{rec, err}
		}()
		if err := waitFor(func() bool { return c.Waiting() == want }); err != nil {
			return fmt.Errorf("waiter %d never parked: %w", j, err)
		}
	}
	h.clock.Advance(h.sc.CoalesceWindow)
	for j := 0; j < k; j++ {
		res := <-chans[j]
		switch {
		case errors.Is(res.err, serve.ErrQueueFull):
			h.rejected++
		case res.err != nil:
			return fmt.Errorf("coalesced submit %d: %w", j, res.err)
		default:
			h.ids = append(h.ids, res.rec.ID)
		}
	}
	if got := c.Waiting(); got != 0 {
		return fmt.Errorf("%d submissions still parked after the window flush", got)
	}
	return nil
}

// opComplete finishes the oldest placed task (admission order).
func (h *harness) opComplete() error {
	p := h.srv.Placer()
	for _, id := range h.ids {
		rec, ok := p.Get(id)
		if ok && rec.Status == serve.StatusPlaced {
			_, err := p.Complete(id)
			return err
		}
	}
	return nil // nothing placed; a no-op draw
}

// opKill fails a machine and checks FIFO fairness of the requeue: the
// victims must land at the queue front in slot order, ahead of everything
// that was still waiting, minus whatever prefix the post-kill scheduling
// pass already re-placed on surviving capacity.
func (h *harness) opKill(machine int) error {
	p := h.srv.Placer()
	var victims []string
	for _, sv := range p.Machines()[machine].Slots {
		if sv.Task != "" {
			victims = append(victims, sv.Task)
		}
	}
	prior := p.QueueIDs()
	if _, err := p.Kill(machine); err != nil {
		return tolerate(err)
	}
	expected := append(append([]string(nil), victims...), prior...)
	if h.sc.InjectRequeueBug {
		// Wrong on purpose: expect victims at the back. See Scenario.
		expected = append(append([]string(nil), prior...), victims...)
	}
	got := p.QueueIDs()
	if len(got) > len(expected) {
		return fmt.Errorf("kill grew the queue: %d tasks, at most %d expected", len(got), len(expected))
	}
	tail := expected[len(expected)-len(got):]
	for i := range got {
		if got[i] != tail[i] {
			return fmt.Errorf("requeue order violates FIFO fairness: queue %v, want a suffix of %v", got, expected)
		}
	}
	return nil
}

// opDedup submits under one of four reused idempotency keys; a replayed
// key must return the first ID minted under it, exactly once, across any
// interleaving of kills, drains, swaps and crashes.
func (h *harness) opDedup(arg int) error {
	key := fmt.Sprintf("k%d", arg%4)
	rec, err := h.srv.Placer().SubmitKeyed(h.apps[arg%len(h.apps)], "", key)
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		h.rejected++
	case err != nil:
		return err
	case h.keys[key] != "":
		if rec.ID != h.keys[key] {
			return fmt.Errorf("key %q replay returned %q, original was %q — dedup not exactly-once", key, rec.ID, h.keys[key])
		}
	default:
		h.keys[key] = rec.ID
		h.ids = append(h.ids, rec.ID)
	}
	return nil
}

// opCrash simulates a full process crash plus disk loss of everything not
// fsynced: the MemFS drops unsynced state, the old Server (whose file
// handles are now orphaned — their writes can no longer reach the disk)
// is abandoned, and a fresh daemon boots from recovery. Under FsyncAlways
// every acknowledged task must survive; under FsyncNever the recovered
// state must be a prefix of what was acknowledged — losses are allowed,
// inventions are not.
func (h *harness) opCrash() error {
	h.crashes++
	h.mem.Crash()
	if err := h.boot(); err != nil {
		return fmt.Errorf("recovery after crash: %w", err)
	}
	p := h.srv.Placer()
	kept := h.ids[:0]
	for _, id := range h.ids {
		if _, ok := p.Get(id); ok {
			kept = append(kept, id)
			continue
		}
		if h.sc.Fsync == durable.FsyncAlways {
			return fmt.Errorf("crash lost acknowledged task %s under FsyncAlways", id)
		}
	}
	h.ids = kept
	for key, id := range h.keys {
		if _, ok := p.Get(id); !ok {
			if h.sc.Fsync == durable.FsyncAlways {
				return fmt.Errorf("crash lost keyed task %s (key %q) under FsyncAlways", id, key)
			}
			delete(h.keys, key)
		}
	}
	// Recovery requeues orphans: nothing may claim to be placed on the
	// machines the dead daemon was using unless the post-recovery drain
	// re-placed it — which CheckInvariants in the common suite verifies.
	h.prevDepth = p.QueueDepth()
	return nil
}

// check is the per-op property suite: placer invariants, conservation
// with slot uniqueness, and the scaled admission bound.
func (h *harness) check(submitted bool) error {
	p := h.srv.Placer()
	if err := p.CheckInvariants(); err != nil {
		return err
	}
	if _, _, _, err := h.conserve(); err != nil {
		return err
	}
	snap := p.Snapshot()
	if submitted {
		// Mirrors FuzzPlacerBacklog: a kill may leave the backlog overfull
		// (victims were admitted once; shedding them would lose tasks), so
		// the bound governs growth — a submit must never push depth past
		// bound+free when it was not already there.
		if bound := h.srv.Admission().ScaledBound(snap.Available, snap.Total); bound >= 0 &&
			snap.QueueDepth > bound+snap.FreeSlots && snap.QueueDepth > h.prevDepth {
			return fmt.Errorf("submit grew backlog to %d, past scaled bound %d (+%d free)",
				snap.QueueDepth, bound, snap.FreeSlots)
		}
	}
	h.prevDepth = snap.QueueDepth
	return nil
}

// conserve verifies every acknowledged task is still accounted for in
// exactly one state and no two placed tasks share a slot.
func (h *harness) conserve() (queued, placed, done int, err error) {
	p := h.srv.Placer()
	slots := map[[2]int]string{}
	for _, id := range h.ids {
		rec, ok := p.Get(id)
		if !ok {
			return 0, 0, 0, fmt.Errorf("acknowledged task %s vanished", id)
		}
		switch rec.Status {
		case serve.StatusQueued:
			queued++
		case serve.StatusPlaced:
			placed++
			key := [2]int{rec.Machine, rec.Slot}
			if prev, dup := slots[key]; dup {
				return 0, 0, 0, fmt.Errorf("slot %v double-placed: %s and %s", key, prev, id)
			}
			slots[key] = id
		case serve.StatusCompleted:
			done++
		default:
			return 0, 0, 0, fmt.Errorf("task %s in unexpected state %q (%s)", id, rec.Status, rec.Error)
		}
	}
	return queued, placed, done, nil
}

// digest renders one deterministic trail line: the daemon's observable
// state after an op. Byte-identical trails across runs of the same seed
// are the harness's determinism contract, asserted by TestDSTTrailIsDeterministic.
func (h *harness) digest() string {
	queued, placed, done, _ := h.conserve()
	snap := h.srv.Placer().Snapshot()
	return fmt.Sprintf("depth=%d free=%d avail=%d/%d q=%d p=%d c=%d rej=%d gen=%d seq=%d crashes=%d",
		snap.QueueDepth, snap.FreeSlots, snap.Available, snap.Total,
		queued, placed, done, h.rejected, h.srv.ModelSet().Generation(),
		h.mgr.LastSeq(), h.crashes)
}

// waitFor spins on a wall-clock deadline until cond holds. This is
// goroutine coordination (waiting for a submission to park), not virtual
// timing: the virtual clock never advances here.
func waitFor(cond func() bool) error {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("dst: timed out")
		}
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}
