// Package experiments reproduces every table and figure of the TRACON
// paper's evaluation (Sec. 4). Each experiment is a pure function of a
// shared Env (the expensive artifacts: profiled training sets, trained
// model libraries, the measured interference table) and returns a
// structured result with a text renderer, so the same code backs the
// traconbench CLI, the benchmark harness and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"tracon/internal/fault"
	"tracon/internal/model"
	"tracon/internal/par"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Env holds the shared expensive artifacts of the evaluation.
type Env struct {
	Host *xen.Host
	TB   *xen.Testbed

	Benchmarks  []workload.Benchmark
	Backgrounds []xen.AppSpec

	TrainingSets map[string]*model.TrainingSet
	Solo         map[string]xen.SoloProfile

	// Libraries holds one trained library per model family.
	Libraries map[model.Kind]*model.Library

	Table  *sim.InterferenceTable
	Oracle *model.Oracle

	Seed int64

	// Observe, when non-nil, supplies an observer for every simulation the
	// experiments launch (metrics collection, invariant auditing). It is
	// called once per engine run, possibly from concurrent workers, and must
	// key any shared state by its arguments — never by call order — so that
	// observed artifacts stay identical across worker counts.
	Observe ObserverFactory

	// Trace, when non-nil, supplies a tracer for every simulation the
	// experiments launch. Same contract as Observe: one call per engine
	// run, keyed by arguments so each run records into its own tracer and
	// exports stay identical across worker counts.
	Trace TracerFactory

	// Faults, when non-nil, supplies a fault-injection plan for every
	// simulation the experiments launch. Same contract as Observe: keyed by
	// arguments, never call order, so fault-injected sweeps stay identical
	// across worker counts. Return nil to leave a given run fault-free.
	Faults FaultFactory
}

// ObserverFactory builds the observer for one simulation run. kind names
// the call site ("static", "dynamic", "spotcheck", "storage-<device>");
// together with the scheduler name, cluster size and task stream it
// identifies the run deterministically (see obs.RunLabel).
type ObserverFactory func(kind, scheduler string, machines int, tasks []sched.Task) sim.Observer

// TracerFactory builds the tracer for one simulation run; arguments as in
// ObserverFactory.
type TracerFactory func(kind, scheduler string, machines int, tasks []sched.Task) sim.Tracer

// FaultFactory builds the fault-injection plan for one simulation run;
// arguments as in ObserverFactory. Typically it filters one loaded plan to
// the run's cluster size via Plan.ForMachines.
type FaultFactory func(kind, scheduler string, machines int, tasks []sched.Task) *fault.Plan

// observer resolves the factory for one run, nil-safe.
func (e *Env) observer(kind, scheduler string, machines int, tasks []sched.Task) sim.Observer {
	if e.Observe == nil {
		return nil
	}
	return e.Observe(kind, scheduler, machines, tasks)
}

// tracer resolves the tracer factory for one run, nil-safe.
func (e *Env) tracer(kind, scheduler string, machines int, tasks []sched.Task) sim.Tracer {
	if e.Trace == nil {
		return nil
	}
	return e.Trace(kind, scheduler, machines, tasks)
}

// faults resolves the fault-plan factory for one run, nil-safe.
func (e *Env) faults(kind, scheduler string, machines int, tasks []sched.Task) *fault.Plan {
	if e.Faults == nil {
		return nil
	}
	return e.Faults(kind, scheduler, machines, tasks)
}

// NewEnv measures, profiles and trains everything once, sequentially. With
// the default settings this takes a few seconds; NewEnvParallel produces
// the identical Env using a bounded worker pool.
func NewEnv(seed int64) (*Env, error) {
	return NewEnvParallel(seed, 1)
}

// envLibraryKinds are the model families every Env trains, in build order.
var envLibraryKinds = []model.Kind{model.WMM, model.LM, model.NLM}

// NewEnvParallel builds the Env with up to workers concurrent goroutines:
// the eight per-benchmark profiling runs fan out first (each worker on its
// own testbed clone), then the three model-family trainings and the
// interference-table solves. workers <= 1 is the sequential reference
// build.
//
// Parallel construction is byte-identical to sequential construction for
// the same seed: testbed measurement noise is key-addressed (derived from
// the seed and the measurement's name, never from call order), every
// concurrent stage writes into its own index of a pre-sized slice, and the
// Env's maps are assembled on the calling goroutine in benchmark order.
// The determinism tests assert this equivalence.
func NewEnvParallel(seed int64, workers int) (*Env, error) {
	hostCfg := xen.DefaultHost()
	host, err := xen.NewHost(hostCfg)
	if err != nil {
		return nil, err
	}
	tb := xen.NewTestbed(host, 3, 0.05, seed)

	e := &Env{
		Host:         host,
		TB:           tb,
		Benchmarks:   workload.Benchmarks(),
		TrainingSets: map[string]*model.TrainingSet{},
		Solo:         map[string]xen.SoloProfile{},
		Libraries:    map[model.Kind]*model.Library{},
		Seed:         seed,
	}
	for _, w := range workload.ProfilingWorkloads(hostCfg.Disk) {
		e.Backgrounds = append(e.Backgrounds, w.Spec)
	}

	// Stage 1: per-benchmark profiling (the 8 × 125 measurement sweep plus
	// solo runs). Each job owns a testbed clone, so no state is shared even
	// though a shared testbed would be safe; clones keep the same seed, so
	// the key-addressed noise reproduces the sequential measurements.
	type profiled struct {
		ts   *model.TrainingSet
		solo xen.SoloProfile
	}
	profs := make([]profiled, len(e.Benchmarks))
	err = par.ForEach(workers, len(e.Benchmarks), func(i int) error {
		wtb := tb.Clone()
		prof := &model.Profiler{TB: wtb}
		ts, err := prof.Profile(e.Benchmarks[i].Spec, e.Backgrounds)
		if err != nil {
			return err
		}
		solo, err := wtb.ProfileSolo(e.Benchmarks[i].Spec)
		if err != nil {
			return err
		}
		profs[i] = profiled{ts: ts, solo: solo}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var specs []xen.AppSpec
	for i, b := range e.Benchmarks {
		e.TrainingSets[b.Spec.Name] = profs[i].ts
		e.Solo[b.Spec.Name] = profs[i].solo
		specs = append(specs, b.Spec)
	}

	// Stage 2: once the profiles land, the three model-family trainings
	// are independent — one job per family, each library owned by exactly
	// one job while it trains.
	libs := make([]*model.Library, len(envLibraryKinds))
	err = par.ForEach(workers, len(envLibraryKinds), func(i int) error {
		lib := model.NewLibrary(envLibraryKinds[i])
		for _, b := range e.Benchmarks {
			if err := lib.Add(e.TrainingSets[b.Spec.Name], e.Solo[b.Spec.Name]); err != nil {
				return err
			}
		}
		libs[i] = lib
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range envLibraryKinds {
		e.Libraries[k] = libs[i]
	}

	// Stage 3: the interference table's n solo + n² pair solves fan out
	// inside sim, again bounded by workers.
	e.Table, err = sim.BuildInterferenceTableParallel(host, specs, workers)
	if err != nil {
		return nil, err
	}
	e.Oracle = model.NewOracle(tb, specs)
	return e, nil
}

// newScheduler builds a policy instance over the given predictor.
func newScheduler(policy string, q int, scorer *sched.Scorer) (sched.Scheduler, error) {
	switch policy {
	case "fifo":
		return sched.FIFO{}, nil
	case "mios":
		return &sched.MIOS{Scorer: scorer}, nil
	case "mibs":
		return &sched.MIBS{Scorer: scorer, QueueLen: q}, nil
	case "mix":
		return &sched.MIX{Scorer: scorer, QueueLen: q}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", policy)
	}
}

// staticTasks draws n tasks from the mix, deterministically for the seed.
func staticTasks(mix workload.IOIntensity, n int, seed int64) []sched.Task {
	mixer := workload.NewMixer(seed)
	batch := mixer.Batch(mix, n)
	tasks := make([]sched.Task, n)
	for i, spec := range batch {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name)}
	}
	return tasks
}

// uniformTasks draws n tasks uniformly over the eight benchmarks.
func uniformTasks(n int, seed int64) []sched.Task {
	mixer := workload.NewMixer(seed)
	batch := mixer.UniformBatch(n)
	tasks := make([]sched.Task, n)
	for i, spec := range batch {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name)}
	}
	return tasks
}

// poissonTasks draws Poisson arrivals at lambda tasks/minute over horizon
// seconds, app types from the mix.
func poissonTasks(mix workload.IOIntensity, lambda, horizon float64, seed int64) []sched.Task {
	rng := rand.New(rand.NewSource(seed))
	times := workload.Arrivals(rng, lambda, horizon)
	mixer := workload.NewMixer(seed + 7919)
	tasks := make([]sched.Task, len(times))
	for i, tm := range times {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(mixer.Draw(mix).Spec.Name), Arrival: tm}
	}
	return tasks
}

// runStatic executes a static batch to completion.
func (e *Env) runStatic(s sched.Scheduler, machines int, tasks []sched.Task) (*sim.Results, error) {
	return e.runStaticTagged("static", s, machines, tasks)
}

// runStaticTagged is runStatic with an explicit run-kind tag. Call sites
// that launch the same scheduler on the same task stream more than once —
// fig4 reruns MIBS per model family — must tag each launch distinctly, or
// the runs collide on one observability label (see obs.RunLabel).
func (e *Env) runStaticTagged(kind string, s sched.Scheduler, machines int, tasks []sched.Task) (*sim.Results, error) {
	eng, err := sim.NewEngine(sim.Config{
		Machines:    machines,
		Scheduler:   s,
		Table:       e.Table,
		DropRecords: len(tasks) > 200000,
		Observer:    e.observer(kind, s.Name(), machines, tasks),
		Tracer:      e.tracer(kind, s.Name(), machines, tasks),
		Faults:      e.faults(kind, s.Name(), machines, tasks),
	})
	if err != nil {
		return nil, err
	}
	return eng.Run(tasks, math.Inf(1))
}

// runDynamic executes Poisson arrivals until the horizon.
func (e *Env) runDynamic(s sched.Scheduler, machines int, tasks []sched.Task, horizon float64) (*sim.Results, error) {
	eng, err := sim.NewEngine(sim.Config{
		Machines:    machines,
		Scheduler:   s,
		Table:       e.Table,
		DropRecords: true,
		Observer:    e.observer("dynamic", s.Name(), machines, tasks),
		Tracer:      e.tracer("dynamic", s.Name(), machines, tasks),
		Faults:      e.faults("dynamic", s.Name(), machines, tasks),
	})
	if err != nil {
		return nil, err
	}
	return eng.Run(tasks, horizon)
}

// scorerFor builds a scorer over a trained library (or the oracle).
func (e *Env) scorerFor(kind model.Kind, obj sched.Objective, oracle bool) *sched.Scorer {
	if oracle {
		return sched.NewScorer(e.Oracle, obj)
	}
	return sched.NewScorer(e.Libraries[kind], obj)
}

// BenchmarkNames returns the application names in Table 3 order.
func (e *Env) BenchmarkNames() []string {
	out := make([]string, len(e.Benchmarks))
	for i, b := range e.Benchmarks {
		out[i] = b.Spec.Name
	}
	return out
}
