package experiments

import (
	"tracon/internal/model"
	"tracon/internal/trace"
)

// Table renderers: every experiment result can be exported as CSV via
// internal/trace (the traconbench -csv flag).

// Table implements trace.Tabular.
func (r *Table1Result) Table() trace.Table {
	t := trace.Table{Header: append([]string{"app"}, r.Columns...)}
	for _, name := range []string{"calc", "seqread"} {
		row := []string{name}
		for _, v := range r.Rows[name] {
			row = append(row, trace.F(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig3Result) Table() trace.Table {
	t := trace.Table{Header: []string{"response", "app", "model", "mean_err", "stddev"}}
	for _, resp := range []model.Response{model.Runtime, model.IOPS} {
		for _, app := range r.Apps {
			for _, k := range r.Kinds {
				c := r.Cells[resp][app][k]
				t.Rows = append(t.Rows, []string{
					resp.String(), app, k.String(), trace.F(c.Mean), trace.F(c.Stddev),
				})
			}
		}
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig4Result) Table() trace.Table {
	t := trace.Table{Header: []string{"model", "speedup_mean", "speedup_std", "ioboost_mean", "ioboost_std"}}
	for _, k := range r.Kinds {
		sp, io := r.Speedup[k], r.IOBoost[k]
		t.Rows = append(t.Rows, []string{
			k.String(), trace.F(sp.Mean), trace.F(sp.Stddev), trace.F(io.Mean), trace.F(io.Stddev),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig5Result) Table() trace.Table {
	t := trace.Table{Header: []string{"app", "predicted_min", "measured_min", "measured_avg", "measured_max"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App, trace.F(row.PredictedMin), trace.F(row.MeasuredMin),
			trace.F(row.MeasuredAvg), trace.F(row.MeasuredMax),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig6Result) Table() trace.Table {
	t := trace.Table{Header: []string{"app", "predicted_max", "measured_min", "measured_avg", "measured_max"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.App, trace.F(row.PredictedMax), trace.F(row.MeasuredMin),
			trace.F(row.MeasuredAvg), trace.F(row.MeasuredMax),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig7Result) Table() trace.Table {
	t := trace.Table{Header: []string{"observation", "adapt_rt_err", "adapt_io_err", "control_rt_err", "control_io_err"}}
	for i, p := range r.Adapting {
		row := []string{trace.I(p.Observation), trace.F(p.RuntimeErr), trace.F(p.IOPSErr), "", ""}
		if i < len(r.Control) {
			row[3] = trace.F(r.Control[i].RuntimeErr)
			row[4] = trace.F(r.Control[i].IOPSErr)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table implements trace.Tabular.
func (r *Fig8Result) Table() trace.Table {
	t := trace.Table{Header: []string{"machines", "mix", "speedup_rt", "speedup_io", "ioboost"}}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			trace.I(c.Machines), c.Mix.String(), trace.F(c.SpeedupRT), trace.F(c.SpeedupIO), trace.F(c.IOBoost),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *DynamicResult) Table() trace.Table {
	t := trace.Table{Header: []string{"machines", "mix", "lambda_per_min", "scheduler", "completed", "normalized"}}
	for _, c := range r.Cells {
		t.Rows = append(t.Rows, []string{
			trace.I(c.Machines), c.Mix.String(), trace.F(c.Lambda), c.Scheduler,
			trace.F(c.Completed), trace.F(c.Normalized),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *StorageStudyResult) Table() trace.Table {
	t := trace.Table{Header: []string{"device", "seqread_vs_iohigh", "mibs_speedup", "energy_saving"}}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Device, trace.F(row.SeqReadVsIOHigh), trace.F(row.MIBSSpeedup), trace.F(row.EnergySaving),
		})
	}
	return t
}

// Table implements trace.Tabular.
func (r *SpotCheckResult) Table() trace.Table {
	return trace.Table{
		Header: []string{"machines", "lambda_per_min", "groups", "horizon_hours", "fifo_completed", "mibs8_completed", "normalized"},
		Rows: [][]string{{
			trace.I(r.Machines), trace.F(r.Lambda), trace.I(r.Groups), trace.F(r.HorizonHours),
			trace.F(r.FIFO), trace.F(r.MIBS8), trace.F(r.Normalized),
		}},
	}
}
