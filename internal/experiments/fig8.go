package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
)

// Fig8Cell is one bar of Fig 8: the speedup of a MIBS variant over FIFO
// for a machine count and an I/O mix (static workload: one task per VM).
type Fig8Cell struct {
	Machines int
	Mix      workload.IOIntensity
	// SpeedupRT is MIBS_RT's eq.-5 speedup; SpeedupIO is MIBS_IO's;
	// IOBoost is MIBS_IO's eq.-6 throughput gain.
	SpeedupRT float64
	SpeedupIO float64
	IOBoost   float64
}

// Fig8Result reproduces Fig 8.
type Fig8Result struct {
	Machines []int
	Mixes    []workload.IOIntensity
	Cells    []Fig8Cell
	Repeats  int
}

// Fig8 sweeps machine counts × mixes with the static scenario, averaging
// over repeats batches.
func Fig8(e *Env, machines []int, repeats int) (*Fig8Result, error) {
	if len(machines) == 0 {
		machines = []int{8, 64, 256, 1024}
	}
	if repeats <= 0 {
		repeats = 3
	}
	res := &Fig8Result{
		Machines: machines,
		Mixes:    []workload.IOIntensity{workload.LightIO, workload.MediumIO, workload.HeavyIO},
		Repeats:  repeats,
	}
	for _, m := range machines {
		for _, mix := range res.Mixes {
			var sumFifoRT, sumRT, sumFifoIO, sumIO, sumIOBoostNum float64
			for rep := 0; rep < repeats; rep++ {
				tasks := staticTasks(mix, 2*m, e.Seed+int64(rep)*307+int64(m))
				fifo, err := e.runStatic(sched.FIFO{}, m, tasks)
				if err != nil {
					return nil, err
				}
				rt, err := e.runStatic(&sched.MIBS{
					Scorer:   e.scorerFor(model.NLM, sched.MinRuntime, false),
					QueueLen: len(tasks),
				}, m, tasks)
				if err != nil {
					return nil, err
				}
				io, err := e.runStatic(&sched.MIBS{
					Scorer:   e.scorerFor(model.NLM, sched.MaxIOPS, false),
					QueueLen: len(tasks),
				}, m, tasks)
				if err != nil {
					return nil, err
				}
				sumFifoRT += fifo.TotalRuntime
				sumRT += rt.TotalRuntime
				sumFifoIO += fifo.TotalIOPS
				sumIO += io.TotalRuntime
				sumIOBoostNum += io.TotalIOPS
			}
			res.Cells = append(res.Cells, Fig8Cell{
				Machines:  m,
				Mix:       mix,
				SpeedupRT: sumFifoRT / sumRT,
				SpeedupIO: sumFifoRT / sumIO,
				IOBoost:   sumIOBoostNum / sumFifoIO,
			})
		}
	}
	return res, nil
}

// Cell finds the result for a machine count and mix.
func (r *Fig8Result) Cell(machines int, mix workload.IOIntensity) (Fig8Cell, bool) {
	for _, c := range r.Cells {
		if c.Machines == machines && c.Mix == mix {
			return c, true
		}
	}
	return Fig8Cell{}, false
}

// String renders the sweep.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8: static-workload speedup over FIFO (MIBS, NLM models, %d repeats)\n", r.Repeats)
	fmt.Fprintf(&b, "%-9s %-8s %12s %12s %10s\n", "machines", "mix", "MIBS_RT", "MIBS_IO(rt)", "IOBoost")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9d %-8s %12.3f %12.3f %10.3f\n", c.Machines, c.Mix, c.SpeedupRT, c.SpeedupIO, c.IOBoost)
	}
	return b.String()
}
