package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/model"
	"tracon/internal/stats"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Fig7Point is one bucket of the online-learning timeline: the mean
// prediction error over a window of observations.
type Fig7Point struct {
	Observation int // index of the bucket's last observation
	RuntimeErr  float64
	IOPSErr     float64
}

// Fig7Result reproduces Fig 7: a blastn model trained on local storage is
// confronted with an iSCSI-backed environment; errors spike, then online
// retraining (every 160 samples over a sliding 500-sample window) brings
// them back down. Control is the same stream without the environment
// change.
type Fig7Result struct {
	// Adapting is the error timeline in the changed environment.
	Adapting []Fig7Point
	// Control is the timeline when the environment stays unchanged.
	Control []Fig7Point
	// InitialErr and ShockErr and FinalErr summarize the runtime-error
	// story the paper tells (12% → 160% → ≈10%; magnitudes differ on the
	// simulated testbed, the shape is the claim).
	InitialErr, ShockErr, FinalErr float64
	// Rebuilds are the observation indices where retraining fired.
	Rebuilds []int
	// BucketSize is the averaging window of each point.
	BucketSize int
}

// Fig7 runs the online-learning experiment.
func Fig7(e *Env) (*Fig7Result, error) {
	const bucket = 25
	target, err := workload.BenchmarkByName("blastn")
	if err != nil {
		return nil, err
	}

	// Initial model from the local-storage profile.
	ad, err := model.NewAdaptive(e.TrainingSets["blastn"], model.NLM, model.DefaultAdaptive())
	if err != nil {
		return nil, err
	}
	ctl, err := model.NewAdaptive(e.TrainingSets["blastn"], model.NLM, model.DefaultAdaptive())
	if err != nil {
		return nil, err
	}

	// The iSCSI environment: same machine, remote storage.
	iscsiCfg := e.Host.Config()
	iscsiCfg.Disk = xen.ISCSI()
	iscsiHost, err := xen.NewHost(iscsiCfg)
	if err != nil {
		return nil, err
	}
	iscsiTB := xen.NewTestbed(iscsiHost, 3, 0.05, e.Seed+99)
	iscsiProf := &model.Profiler{TB: iscsiTB}
	var iscsiBGs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(iscsiCfg.Disk) {
		iscsiBGs = append(iscsiBGs, w.Spec)
	}
	iscsiTS, err := iscsiProf.Profile(target.Spec, iscsiBGs)
	if err != nil {
		return nil, err
	}

	// Stream: 50 local observations (sanity), then five passes of the
	// iSCSI environment — enough for the sliding window to be fully
	// replaced by post-change data.
	local := e.TrainingSets["blastn"].Samples
	var adaptStream, controlStream []model.Sample
	adaptStream = append(adaptStream, local[:50]...)
	controlStream = append(controlStream, local[:50]...)
	for pass := 0; pass < 5; pass++ {
		adaptStream = append(adaptStream, iscsiTS.Samples...)
		controlStream = append(controlStream, local...)
	}

	feed := func(a *model.Adaptive, stream []model.Sample) error {
		for _, s := range stream {
			if _, err := a.Observe(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := feed(ad, adaptStream); err != nil {
		return nil, err
	}
	if err := feed(ctl, controlStream); err != nil {
		return nil, err
	}

	res := &Fig7Result{BucketSize: bucket, Rebuilds: ad.Rebuilds}
	res.Adapting = bucketize(ad.RuntimeErrors, ad.IOPSErrors, bucket)
	res.Control = bucketize(ctl.RuntimeErrors, ctl.IOPSErrors, bucket)
	res.InitialErr = stats.Summarize(ad.RuntimeErrors[:50]).Mean
	res.ShockErr = stats.Summarize(ad.RuntimeErrors[50:150]).Mean
	n := len(ad.RuntimeErrors)
	res.FinalErr = stats.Summarize(ad.RuntimeErrors[n-100:]).Mean
	return res, nil
}

func bucketize(rt, io []float64, bucket int) []Fig7Point {
	var out []Fig7Point
	for start := 0; start < len(rt); start += bucket {
		end := start + bucket
		if end > len(rt) {
			end = len(rt)
		}
		out = append(out, Fig7Point{
			Observation: end,
			RuntimeErr:  stats.Summarize(rt[start:end]).Mean,
			IOPSErr:     stats.Summarize(io[start:end]).Mean,
		})
	}
	return out
}

// String renders the timeline.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 7: online model learning (blastn, local → iSCSI at observation 50)\n")
	fmt.Fprintf(&b, "initial err %.0f%%, post-change err %.0f%%, final err %.0f%%; rebuilds at %v\n",
		r.InitialErr*100, r.ShockErr*100, r.FinalErr*100, r.Rebuilds)
	fmt.Fprintf(&b, "%-6s %22s %22s\n", "obs", "adapting rt/io err %", "control rt/io err %")
	for i, p := range r.Adapting {
		var c Fig7Point
		if i < len(r.Control) {
			c = r.Control[i]
		}
		fmt.Fprintf(&b, "%-6d %9.1f / %9.1f %9.1f / %9.1f\n",
			p.Observation, p.RuntimeErr*100, p.IOPSErr*100, c.RuntimeErr*100, c.IOPSErr*100)
	}
	return b.String()
}
