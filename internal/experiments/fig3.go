package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/model"
)

// Fig3Cell is one bar of Fig 3: a model family's cross-validated
// prediction error on one benchmark.
type Fig3Cell struct {
	Mean, Stddev float64
}

// Fig3Result reproduces Fig 3(a) and 3(b): prediction errors of WMM, LM
// and NLM per benchmark for both responses, plus the paper's own ablation
// (NLM without the global Dom0 CPU characteristic).
type Fig3Result struct {
	Apps  []string
	Kinds []model.Kind
	// Cells[response][app][kind].
	Cells map[model.Response]map[string]map[model.Kind]Fig3Cell
}

// fig3Kinds are the plotted families; NLMNoDom0 is the ablation the text
// discusses ("without it, NLM would have much larger prediction errors").
var fig3Kinds = []model.Kind{model.WMM, model.LM, model.NLM, model.NLMNoDom0}

// Fig3 cross-validates every family on every benchmark (5-fold).
func Fig3(e *Env) (*Fig3Result, error) {
	res := &Fig3Result{
		Apps:  e.BenchmarkNames(),
		Kinds: fig3Kinds,
		Cells: map[model.Response]map[string]map[model.Kind]Fig3Cell{},
	}
	for _, resp := range []model.Response{model.Runtime, model.IOPS} {
		res.Cells[resp] = map[string]map[model.Kind]Fig3Cell{}
		for _, app := range res.Apps {
			res.Cells[resp][app] = map[model.Kind]Fig3Cell{}
			for _, k := range fig3Kinds {
				errs, err := model.CrossValidate(e.TrainingSets[app], k, resp, 5)
				if err != nil {
					return nil, fmt.Errorf("fig3 %s/%v: %w", app, k, err)
				}
				m, s := model.ErrorSummary(errs)
				res.Cells[resp][app][k] = Fig3Cell{Mean: m, Stddev: s}
			}
		}
	}
	return res, nil
}

// MeanError averages a family's error over all benchmarks for a response.
func (r *Fig3Result) MeanError(resp model.Response, k model.Kind) float64 {
	sum := 0.0
	for _, app := range r.Apps {
		sum += r.Cells[resp][app][k].Mean
	}
	return sum / float64(len(r.Apps))
}

// String renders both panels.
func (r *Fig3Result) String() string {
	var b strings.Builder
	for _, resp := range []model.Response{model.Runtime, model.IOPS} {
		panel := "a"
		if resp == model.IOPS {
			panel = "b"
		}
		fmt.Fprintf(&b, "Fig 3(%s): %s prediction error (mean ± stddev, %%)\n", panel, resp)
		fmt.Fprintf(&b, "%-10s", "app")
		for _, k := range r.Kinds {
			fmt.Fprintf(&b, " %16s", k)
		}
		b.WriteByte('\n')
		for _, app := range r.Apps {
			fmt.Fprintf(&b, "%-10s", app)
			for _, k := range r.Kinds {
				c := r.Cells[resp][app][k]
				fmt.Fprintf(&b, "   %5.1f ± %5.1f ", c.Mean*100, c.Stddev*100)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-10s", "MEAN")
		for _, k := range r.Kinds {
			fmt.Fprintf(&b, "   %5.1f         ", r.MeanError(resp, k)*100)
		}
		b.WriteString("\n\n")
	}
	return b.String()
}
