package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"tracon/internal/fault"
	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/sim"
)

// chaosPlan is the fixed fault plan behind the golden determinism tests:
// two mid-run crashes with recovery, one degraded slot and a small
// key-addressed failure probability. Machines beyond a run's cluster size
// are filtered out per run by ForMachines, exactly as traconbench -faults
// does.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Seed:     7,
		FailProb: 0.02,
		Crashes: []fault.Crash{
			{Machine: 0, DownAt: 100, UpAt: 400},
			{Machine: 2, DownAt: 250, UpAt: 600},
		},
		Slowdowns: []fault.Slowdown{
			{Machine: 1, Slot: 0, From: 50, To: 300, Factor: 0.5},
		},
		Retry: fault.RetryPolicy{MaxAttempts: 4, Backoff: 5, BackoffFactor: 2, MaxBackoff: 60},
	}
}

// chaosSuite runs the experiment cross-section under the chaos plan with
// metrics, traces and a strict invariant auditor attached, and returns
// every deterministic artifact.
func chaosSuite(t *testing.T, e *Env, workers int) (output, metricsJSON, ndjson string, violations int64) {
	t.Helper()
	plan := chaosPlan()
	collector := obs.NewCollector()
	traceColl := obs.NewTraceCollector(obs.DefaultTraceCap)
	var mu sync.Mutex
	var auditors []*obs.InvariantAuditor
	e.Faults = func(kind, scheduler string, machines int, tasks []sched.Task) *fault.Plan {
		return plan.ForMachines(machines)
	}
	e.Trace = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Tracer {
		return traceColl.Tracer(obs.RunLabel(kind, scheduler, machines, tasks), scheduler, machines)
	}
	e.Observe = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Observer {
		a := &obs.InvariantAuditor{Every: 16, Strict: true}
		mu.Lock()
		auditors = append(auditors, a)
		mu.Unlock()
		return obs.Multi{collector.Observer(obs.RunLabel(kind, scheduler, machines, tasks)), a}
	}
	defer func() { e.Faults, e.Trace, e.Observe = nil, nil, nil }()

	out := renderOutcomes(t, Runner{Workers: workers}.Run(e, observeSuite()))
	var j, n bytes.Buffer
	if err := collector.WriteJSON(&j, false); err != nil {
		t.Fatal(err)
	}
	if err := traceColl.WriteNDJSON(&n); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, a := range auditors {
		total += a.Total()
	}
	return out, j.String(), n.String(), total
}

// TestChaosExperimentsDeterministicAcrossWorkers is the acceptance
// guarantee at the experiment level: a fault-injected sweep — crashes,
// a degraded slot, probabilistic failures, retries — renders byte-identical
// output, metrics JSON and trace NDJSON at every worker count, passes the
// strict invariant audit throughout, and reproduces from the seed.
func TestChaosExperimentsDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{1}
	if !testing.Short() {
		seeds = append(seeds, 42)
	}
	for _, seed := range seeds {
		var e *Env
		if seed == 1 {
			e = testEnv(t)
		} else {
			var err error
			e, err = NewEnv(seed)
			if err != nil {
				t.Fatal(err)
			}
		}

		var firstOut, firstJSON, firstNDJSON string
		for _, workers := range []int{1, 2, 8} {
			out, metricsJSON, ndjson, violations := chaosSuite(t, e, workers)
			if violations != 0 {
				t.Fatalf("seed %d, %d workers: %d invariant violations under chaos", seed, workers, violations)
			}
			if firstOut == "" {
				firstOut, firstJSON, firstNDJSON = out, metricsJSON, ndjson
				continue
			}
			if out != firstOut {
				t.Errorf("seed %d: chaos output differs between 1 and %d workers; first divergence:\n%s",
					seed, workers, firstDiff(firstOut, out))
			}
			if metricsJSON != firstJSON {
				t.Errorf("seed %d: chaos metrics JSON differs between 1 and %d workers; first divergence:\n%s",
					seed, workers, firstDiff(firstJSON, metricsJSON))
			}
			if ndjson != firstNDJSON {
				t.Errorf("seed %d: chaos trace NDJSON differs between 1 and %d workers; first divergence:\n%s",
					seed, workers, firstDiff(firstNDJSON, ndjson))
			}
		}

		// The plan must actually have injected and recovered from faults:
		// the trace carries the fault lifecycle and the metrics carry the
		// recovery counters.
		runs, err := obs.ReadTraces(strings.NewReader(firstNDJSON))
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[string]bool{}
		for _, r := range runs {
			for _, ev := range r.Events {
				kinds[ev.Kind] = true
			}
		}
		for _, k := range []string{"machine_down", "machine_up", "evict", "retry"} {
			if !kinds[k] {
				t.Errorf("seed %d: no %q event in the chaos trace", seed, k)
			}
		}
		if !strings.Contains(firstJSON, `"faults"`) {
			t.Errorf("seed %d: chaos metrics JSON carries no faults section", seed)
		}
	}
}

// TestEmptyFaultFactoryZeroPerturbation: a fault factory handing every run
// an empty (but non-nil) plan must leave the rendered experiment output
// byte-identical to the fault-free baseline.
func TestEmptyFaultFactoryZeroPerturbation(t *testing.T) {
	e := testEnv(t)
	baseline := renderOutcomes(t, Runner{Workers: 2}.Run(e, observeSuite()))

	e.Faults = func(kind, scheduler string, machines int, tasks []sched.Task) *fault.Plan {
		return &fault.Plan{}
	}
	defer func() { e.Faults = nil }()
	out := renderOutcomes(t, Runner{Workers: 2}.Run(e, observeSuite()))
	if out != baseline {
		t.Errorf("empty fault plan perturbed experiment output; first divergence:\n%s", firstDiff(baseline, out))
	}
}
