package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
)

// DynamicCell is one point of the dynamic-workload figures: a scheduler's
// completed-task throughput normalized to FIFO under the same arrivals.
type DynamicCell struct {
	Scheduler string
	Machines  int
	Lambda    float64 // tasks per minute
	Mix       workload.IOIntensity
	// Completed is the completed-task count within the horizon (the T_S of
	// Sec. 4.7 — a count, not a rate); Normalized is T_S / T_FIFO, where the
	// shared horizon divides out.
	Completed  float64
	Normalized float64
}

// DynamicResult is the shared shape of Figs 9–12.
type DynamicResult struct {
	Title        string
	HorizonHours float64
	Cells        []DynamicCell
}

// dynPolicy describes one scheduler under test in the dynamic figures.
type dynPolicy struct {
	label  string
	policy string
	queue  int
}

// runDynamicSet evaluates the policies (plus FIFO) on identical arrivals
// and returns normalized throughputs.
func (e *Env) runDynamicSet(policies []dynPolicy, machines int, lambda float64, mix workload.IOIntensity, horizon float64, seed int64) ([]DynamicCell, error) {
	tasks := poissonTasks(mix, lambda, horizon, seed)
	fifo, err := e.runDynamic(sched.FIFO{}, machines, tasks, horizon)
	if err != nil {
		return nil, err
	}
	base := fifo.CompletedTasks()
	var out []DynamicCell
	for _, p := range policies {
		s, err := newScheduler(p.policy, p.queue, e.scorerFor(model.NLM, sched.MinRuntime, false))
		if err != nil {
			return nil, err
		}
		res, err := e.runDynamic(s, machines, tasks, horizon)
		if err != nil {
			return nil, err
		}
		norm := 0.0
		if base > 0 {
			norm = res.CompletedTasks() / base
		}
		out = append(out, DynamicCell{
			Scheduler:  p.label,
			Machines:   machines,
			Lambda:     lambda,
			Mix:        mix,
			Completed:  res.CompletedTasks(),
			Normalized: norm,
		})
	}
	return out, nil
}

// fig9Policies are the schedulers of Fig 9 and Fig 11.
var fig9Policies = []dynPolicy{
	{"MIBS8", "mibs", 8},
	{"MIOS", "mios", 1},
	{"MIX8", "mix", 8},
}

// queuePolicies are the MIBS queue-length variants of Fig 10 and Fig 12.
var queuePolicies = []dynPolicy{
	{"MIBS2", "mibs", 2},
	{"MIBS4", "mibs", 4},
	{"MIBS8", "mibs", 8},
}

// Fig9 reproduces Fig 9: normalized throughput of MIBS8, MIOS and MIX8 at
// varying arrival rates λ on 64 machines over ten hours, for the three
// I/O mixes.
func Fig9(e *Env, lambdas []float64, horizonHours float64) (*DynamicResult, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{2, 5, 10, 20, 50, 100}
	}
	if horizonHours <= 0 {
		horizonHours = 10
	}
	res := &DynamicResult{Title: "Fig 9: normalized throughput vs λ (64 machines)", HorizonHours: horizonHours}
	for _, mix := range []workload.IOIntensity{workload.LightIO, workload.MediumIO, workload.HeavyIO} {
		for _, lam := range lambdas {
			cells, err := e.runDynamicSet(fig9Policies, 64, lam, mix, horizonHours*3600, e.Seed+int64(lam*13))
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cells...)
		}
	}
	return res, nil
}

// Fig10 reproduces Fig 10: MIBS queue lengths 2/4/8 vs λ.
func Fig10(e *Env, lambdas []float64, horizonHours float64) (*DynamicResult, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{2, 5, 10, 20, 50, 100}
	}
	if horizonHours <= 0 {
		horizonHours = 10
	}
	res := &DynamicResult{Title: "Fig 10: MIBS queue lengths vs λ (64 machines)", HorizonHours: horizonHours}
	for _, mix := range []workload.IOIntensity{workload.LightIO, workload.MediumIO, workload.HeavyIO} {
		for _, lam := range lambdas {
			cells, err := e.runDynamicSet(queuePolicies, 64, lam, mix, horizonHours*3600, e.Seed+int64(lam*17))
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, cells...)
		}
	}
	return res, nil
}

// Fig11 reproduces Fig 11: scalability of MIBS8/MIOS/MIX8 at λ = 1000
// tasks/minute for 8–1024 machines.
func Fig11(e *Env, machines []int, horizonHours float64) (*DynamicResult, error) {
	if len(machines) == 0 {
		machines = []int{8, 64, 256, 1024}
	}
	if horizonHours <= 0 {
		horizonHours = 10
	}
	const lambda = 1000
	res := &DynamicResult{Title: "Fig 11: normalized throughput vs machines (λ=1000/min, medium mix)", HorizonHours: horizonHours}
	for _, m := range machines {
		cells, err := e.runDynamicSet(fig9Policies, m, lambda, workload.MediumIO, horizonHours*3600, e.Seed+int64(m))
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

// Fig12 reproduces Fig 12: MIBS queue lengths vs machine count at
// λ = 1000 tasks/minute.
func Fig12(e *Env, machines []int, horizonHours float64) (*DynamicResult, error) {
	if len(machines) == 0 {
		machines = []int{8, 64, 256, 1024}
	}
	if horizonHours <= 0 {
		horizonHours = 10
	}
	const lambda = 1000
	res := &DynamicResult{Title: "Fig 12: MIBS queue lengths vs machines (λ=1000/min, medium mix)", HorizonHours: horizonHours}
	for _, m := range machines {
		cells, err := e.runDynamicSet(queuePolicies, m, lambda, workload.MediumIO, horizonHours*3600, e.Seed+int64(m)*3)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cells...)
	}
	return res, nil
}

// Cell returns the point for (scheduler, machines, lambda, mix).
func (r *DynamicResult) Cell(schedName string, machines int, lambda float64, mix workload.IOIntensity) (DynamicCell, bool) {
	for _, c := range r.Cells {
		if c.Scheduler == schedName && c.Machines == machines && c.Lambda == lambda && c.Mix == mix {
			return c, true
		}
	}
	return DynamicCell{}, false
}

// String renders the sweep.
func (r *DynamicResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (horizon %.0f h)\n", r.Title, r.HorizonHours)
	fmt.Fprintf(&b, "%-9s %-8s %8s %-8s %12s %11s\n", "machines", "mix", "λ/min", "sched", "completed", "vs FIFO")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9d %-8s %8.0f %-8s %12.0f %11.3f\n",
			c.Machines, c.Mix, c.Lambda, c.Scheduler, c.Completed, c.Normalized)
	}
	return b.String()
}
