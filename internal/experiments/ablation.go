package experiments

import (
	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
)

// RunStaticPublic exposes the static-batch runner for the ablation benches
// in the repository root.
func (e *Env) RunStaticPublic(s sched.Scheduler, machines int, tasks []sched.Task) (*sim.Results, error) {
	return e.runStatic(s, machines, tasks)
}

// RunQueueLength runs MIBS with the given queue length under Poisson
// arrivals and returns its throughput normalized to FIFO on the same
// arrivals — the ablation behind Figs 10/12 extended to arbitrary q
// (q = 1 degenerates to head-only batching, close to MIOS).
func RunQueueLength(e *Env, q, machines int, lambda, horizon float64) (float64, error) {
	tasks := poissonTasks(workload.MediumIO, lambda, horizon, e.Seed+int64(q)*37)
	fifo, err := e.runDynamic(sched.FIFO{}, machines, tasks, horizon)
	if err != nil {
		return 0, err
	}
	mibs, err := e.runDynamic(&sched.MIBS{
		Scorer:   e.scorerFor(model.NLM, sched.MinRuntime, false),
		QueueLen: q,
	}, machines, tasks, horizon)
	if err != nil {
		return 0, err
	}
	if fifo.CompletedTasks() == 0 {
		return 0, nil
	}
	return mibs.CompletedTasks() / fifo.CompletedTasks(), nil
}

// StaticTasksPublic exposes the deterministic static task generator for
// the ablation benches and diagnostics.
func StaticTasksPublic(mix workload.IOIntensity, n int, seed int64) []sched.Task {
	return staticTasks(mix, n, seed)
}

// PoissonTasksPublic exposes the Poisson arrival generator for diagnostics
// and ablation benches.
func PoissonTasksPublic(mix workload.IOIntensity, lambda, horizon float64, seed int64) []sched.Task {
	return poissonTasks(mix, lambda, horizon, seed)
}
