package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/stats"
)

// Fig4Result reproduces Fig 4: the effect of the model family on the
// scheduler. Batches of 32 uniformly drawn tasks are scheduled onto 16
// machines (two VMs each) by MIBS_RT and MIBS_IO using WMM, LM and NLM
// models; Speedup and IOBoost are normalized to FIFO on the same batch.
type Fig4Result struct {
	Kinds []model.Kind
	// Speedup and IOBoost are summarized over the repeated batches.
	Speedup map[model.Kind]stats.Summary
	IOBoost map[model.Kind]stats.Summary
	Batches int
}

// Fig4 runs the experiment with the paper's dimensions (32 tasks, 16
// machines) over several batches.
func Fig4(e *Env, batches int) (*Fig4Result, error) {
	if batches <= 0 {
		batches = 10
	}
	const machines = 16
	const batchSize = 32
	res := &Fig4Result{
		Kinds:   []model.Kind{model.WMM, model.LM, model.NLM},
		Speedup: map[model.Kind]stats.Summary{},
		IOBoost: map[model.Kind]stats.Summary{},
		Batches: batches,
	}
	speedups := map[model.Kind][]float64{}
	boosts := map[model.Kind][]float64{}
	for trial := 0; trial < batches; trial++ {
		tasks := uniformTasks(batchSize, e.Seed+int64(trial)*101)
		fifo, err := e.runStatic(sched.FIFO{}, machines, tasks)
		if err != nil {
			return nil, err
		}
		for _, k := range res.Kinds {
			// Tag runs with the model family: the scheduler name and task
			// stream repeat across WMM/LM/NLM, so the family must key the
			// observability label.
			tag := "static-" + k.String()
			rt, err := e.runStaticTagged(tag, &sched.MIBS{
				Scorer:   e.scorerFor(k, sched.MinRuntime, false),
				QueueLen: batchSize,
			}, machines, tasks)
			if err != nil {
				return nil, err
			}
			io, err := e.runStaticTagged(tag, &sched.MIBS{
				Scorer:   e.scorerFor(k, sched.MaxIOPS, false),
				QueueLen: batchSize,
			}, machines, tasks)
			if err != nil {
				return nil, err
			}
			speedups[k] = append(speedups[k], fifo.TotalRuntime/rt.TotalRuntime)
			boosts[k] = append(boosts[k], io.TotalIOPS/fifo.TotalIOPS)
		}
	}
	for _, k := range res.Kinds {
		res.Speedup[k] = stats.Summarize(speedups[k])
		res.IOBoost[k] = stats.Summarize(boosts[k])
	}
	return res, nil
}

// String renders the two bar groups.
func (r *Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: MIBS with different models, normalized to FIFO (%d batches of 32 tasks on 16 machines)\n", r.Batches)
	fmt.Fprintf(&b, "%-8s %18s %18s\n", "model", "Speedup (MIBS_RT)", "IOBoost (MIBS_IO)")
	for _, k := range r.Kinds {
		sp, io := r.Speedup[k], r.IOBoost[k]
		fmt.Fprintf(&b, "%-8s   %6.3f ± %5.3f    %6.3f ± %5.3f\n", k, sp.Mean, sp.Stddev, io.Mean, io.Stddev)
	}
	return b.String()
}
