package experiments

import (
	"fmt"
	"math"
	"strings"

	"tracon/internal/model"
	"tracon/internal/xen"
)

// Fig5Row is one application of Fig 5: NLM's predicted minimum runtime
// against the measured minimum, average and maximum runtimes across all
// possible co-runners.
type Fig5Row struct {
	App          string
	PredictedMin float64
	MeasuredMin  float64
	MeasuredAvg  float64
	MeasuredMax  float64
}

// Fig5Result reproduces Fig 5.
type Fig5Result struct{ Rows []Fig5Row }

// Fig6Row is one application of Fig 6: NLM's predicted maximum IOPS
// against measured min/avg/max across co-runners.
type Fig6Row struct {
	App          string
	PredictedMax float64
	MeasuredMin  float64
	MeasuredAvg  float64
	MeasuredMax  float64
}

// Fig6Result reproduces Fig 6.
type Fig6Result struct{ Rows []Fig6Row }

// corunSteady measures target's steady behaviour beside each possible
// co-runner (the "runs concurrently with other applications" setting).
func corunSteady(e *Env, target xen.AppSpec) (runtimes, iops []float64, err error) {
	for _, other := range e.Benchmarks {
		peer := other.Spec
		peer.Name += "~peer"
		st, err := e.Host.Steady([]xen.AppSpec{target, peer})
		if err != nil {
			return nil, nil, err
		}
		runtimes = append(runtimes, st[0].Runtime)
		iops = append(iops, st[0].IOPS)
	}
	return runtimes, iops, nil
}

// Fig5 compares NLM's predicted best-case runtime with measured reality.
// The web benchmark is excluded, as in the paper (FileBench takes runtime
// as an input).
func Fig5(e *Env) (*Fig5Result, error) {
	lib := e.Libraries[model.NLM]
	res := &Fig5Result{}
	for _, b := range e.Benchmarks {
		if !b.HasRuntimeMetric {
			continue
		}
		app := b.Spec.Name
		predMin := math.Inf(1)
		for _, other := range e.Benchmarks {
			p, err := lib.PredictRuntime(app, other.Spec.Name)
			if err != nil {
				return nil, err
			}
			predMin = math.Min(predMin, p)
		}
		rts, _, err := corunSteady(e, b.Spec)
		if err != nil {
			return nil, err
		}
		row := Fig5Row{App: app, PredictedMin: predMin}
		row.MeasuredMin, row.MeasuredAvg, row.MeasuredMax = minAvgMax(rts)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig6 compares NLM's predicted best-case IOPS with measured reality.
func Fig6(e *Env) (*Fig6Result, error) {
	lib := e.Libraries[model.NLM]
	res := &Fig6Result{}
	for _, b := range e.Benchmarks {
		app := b.Spec.Name
		predMax := 0.0
		for _, other := range e.Benchmarks {
			p, err := lib.PredictIOPS(app, other.Spec.Name)
			if err != nil {
				return nil, err
			}
			predMax = math.Max(predMax, p)
		}
		_, ios, err := corunSteady(e, b.Spec)
		if err != nil {
			return nil, err
		}
		row := Fig6Row{App: app, PredictedMax: predMax}
		row.MeasuredMin, row.MeasuredAvg, row.MeasuredMax = minAvgMax(ios)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func minAvgMax(v []float64) (mn, avg, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, x := range v {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
		sum += x
	}
	return mn, sum / float64(len(v)), mx
}

// String renders Fig 5.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 5: predicted minimum runtime vs measured min/avg/max (seconds)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s\n", "app", "pred-min", "min", "avg", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.0f %10.0f %10.0f %10.0f\n",
			row.App, row.PredictedMin, row.MeasuredMin, row.MeasuredAvg, row.MeasuredMax)
	}
	return b.String()
}

// String renders Fig 6.
func (r *Fig6Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 6: predicted maximum IOPS vs measured min/avg/max\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s\n", "app", "pred-max", "min", "avg", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %10.1f %10.1f\n",
			row.App, row.PredictedMax, row.MeasuredMin, row.MeasuredAvg, row.MeasuredMax)
	}
	return b.String()
}
