package experiments

import (
	"fmt"
	"math"
	"strings"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// StorageRow characterizes one device class: how violent I/O interference
// is on it, and how much an interference-aware scheduler can therefore
// recover — the study the paper sketches as future work ("we will explore
// I/O interference effects on various storage devices, e.g., RAID and
// solid-state drives (SSD), as well as network storage systems").
type StorageRow struct {
	Device string
	// SeqReadVsIOHigh is the Table 1 probe on this device: the slowdown of
	// a sequential reader beside an unthrottled I/O hog.
	SeqReadVsIOHigh float64
	// MIBSSpeedup is the static-workload MIBS_RT speedup over FIFO on this
	// device (oracle predictions, to isolate the device effect from model
	// quality).
	MIBSSpeedup float64
	// EnergySaving is 1 − MIBS energy-per-task / FIFO energy-per-task.
	EnergySaving float64
}

// StorageStudyResult compares devices.
type StorageStudyResult struct{ Rows []StorageRow }

// StorageStudy runs the device comparison: HDD (the paper's testbed),
// RAID0 arrays, the iSCSI volume and an SSD.
func StorageStudy(e *Env) (*StorageStudyResult, error) {
	devices := []xen.DiskParams{
		xen.HDD(),
		xen.RAID0(4),
		xen.RAID10(4),
		xen.ISCSI(),
		xen.SSD(),
	}
	res := &StorageStudyResult{}
	for _, dev := range devices {
		row, err := storageRow(e, dev)
		if err != nil {
			return nil, fmt.Errorf("storage study %s: %w", dev.Name, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func storageRow(e *Env, dev xen.DiskParams) (StorageRow, error) {
	cfg := xen.DefaultHost()
	cfg.Disk = dev
	host, err := xen.NewHost(cfg)
	if err != nil {
		return StorageRow{}, err
	}
	tb := xen.NewTestbed(host, 3, 0.05, e.Seed+int64(len(dev.Name)))

	// Probe: Table 1's data-intensive row on this device.
	sd, err := tb.Slowdown(workload.SeqRead(), workload.BGIOHigh.Spec())
	if err != nil {
		return StorageRow{}, err
	}

	// Scheduling: static medium-mix batches with oracle predictions.
	var specs []xen.AppSpec
	for _, b := range e.Benchmarks {
		specs = append(specs, b.Spec)
	}
	table, err := sim.BuildInterferenceTable(host, specs)
	if err != nil {
		return StorageRow{}, err
	}
	oracle := model.NewOracle(tb, specs)

	var fifoRT, mibsRT, fifoE, mibsE float64
	for seed := int64(1); seed <= 4; seed++ {
		tasks := staticTasks(workload.MediumIO, 32, e.Seed+seed*211)
		run := func(s sched.Scheduler) (*sim.Results, error) {
			eng, err := sim.NewEngine(sim.Config{
				Machines:  16,
				Scheduler: s,
				Table:     table,
				// The device name keys the label: the task stream and cluster
				// size repeat across devices, only the table differs.
				Observer: e.observer("storage-"+dev.Name, s.Name(), 16, tasks),
				Tracer:   e.tracer("storage-"+dev.Name, s.Name(), 16, tasks),
				Faults:   e.faults("storage-"+dev.Name, s.Name(), 16, tasks),
			})
			if err != nil {
				return nil, err
			}
			return eng.Run(tasks, math.Inf(1))
		}
		fifo, err := run(sched.FIFO{})
		if err != nil {
			return StorageRow{}, err
		}
		mibs, err := run(&sched.MIBS{
			Scorer:   sched.NewScorer(oracle, sched.MinRuntime),
			QueueLen: len(tasks),
		})
		if err != nil {
			return StorageRow{}, err
		}
		fifoRT += fifo.TotalRuntime
		mibsRT += mibs.TotalRuntime
		fifoE += fifo.EnergyPerTaskKJ()
		mibsE += mibs.EnergyPerTaskKJ()
	}
	row := StorageRow{
		Device:          dev.Name,
		SeqReadVsIOHigh: sd,
		MIBSSpeedup:     fifoRT / mibsRT,
	}
	if fifoE > 0 {
		row.EnergySaving = 1 - mibsE/fifoE
	}
	return row, nil
}

// String renders the study.
func (r *StorageStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Storage study (paper future work): interference and scheduler value per device\n")
	fmt.Fprintf(&b, "%-10s %20s %14s %16s\n", "device", "seqread-vs-iohog ×", "MIBS speedup", "energy saving %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %20.2f %14.3f %16.1f\n",
			row.Device, row.SeqReadVsIOHigh, row.MIBSSpeedup, row.EnergySaving*100)
	}
	return b.String()
}
