package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/sim"
)

// observeSuite is a small cross-section of the evaluation touching the
// static, dynamic and per-policy code paths.
func observeSuite() []Experiment {
	return []Experiment{
		{"table1", func(e *Env) (fmt.Stringer, error) { return Table1(e) }},
		{"fig4", func(e *Env) (fmt.Stringer, error) { return Fig4(e, 4) }},
		{"fig9", func(e *Env) (fmt.Stringer, error) { return Fig9(e, []float64{2, 50}, 1) }},
	}
}

func renderOutcomes(t *testing.T, ocs []Outcome) string {
	t.Helper()
	var b strings.Builder
	for _, oc := range ocs {
		if oc.Err != nil {
			t.Fatalf("%s: %v", oc.Name, oc.Err)
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", oc.Name, oc.Result.String())
	}
	return b.String()
}

// TestObserversDoNotPerturbExperiments is the tentpole's safety guarantee
// at the experiment level: attaching the metrics collector plus a strict
// invariant auditor to every simulation run leaves the rendered experiment
// output byte-identical to the unobserved baseline, the audit finds zero
// violations, and the deterministic metrics export is byte-identical
// across Runner worker counts.
func TestObserversDoNotPerturbExperiments(t *testing.T) {
	e := testEnv(t)
	suite := observeSuite()

	baseline := renderOutcomes(t, Runner{Workers: 2}.Run(e, suite))

	observed := func(workers int) (output, metricsJSON, metricsCSV string, violations int64, runs int) {
		collector := obs.NewCollector()
		var mu sync.Mutex
		var auditors []*obs.InvariantAuditor
		e.Observe = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Observer {
			a := &obs.InvariantAuditor{Every: 16, Strict: true}
			mu.Lock()
			auditors = append(auditors, a)
			mu.Unlock()
			label := obs.RunLabel(kind, scheduler, machines, tasks)
			return obs.Multi{collector.Observer(label), a}
		}
		defer func() { e.Observe = nil }()
		out := renderOutcomes(t, Runner{Workers: workers}.Run(e, suite))
		var j, c bytes.Buffer
		if err := collector.WriteJSON(&j, false); err != nil {
			t.Fatal(err)
		}
		if err := collector.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, a := range auditors {
			total += a.Total()
		}
		return out, j.String(), c.String(), total, collector.Len()
	}

	out1, json1, csv1, viol1, runs1 := observed(1)
	out4, json4, csv4, viol4, runs4 := observed(4)

	if viol1 != 0 || viol4 != 0 {
		t.Fatalf("invariant violations: %d sequential, %d parallel", viol1, viol4)
	}
	if out1 != baseline {
		t.Errorf("observers perturbed experiment output; first divergence:\n%s", firstDiff(baseline, out1))
	}
	if out4 != baseline {
		t.Errorf("observers perturbed parallel experiment output; first divergence:\n%s", firstDiff(baseline, out4))
	}
	if runs1 == 0 || runs1 != runs4 {
		t.Fatalf("collected %d runs sequentially, %d with 4 workers", runs1, runs4)
	}
	if json1 != json4 {
		t.Errorf("metrics JSON differs across worker counts; first divergence:\n%s", firstDiff(json1, json4))
	}
	if csv1 != csv4 {
		t.Errorf("metrics CSV differs across worker counts; first divergence:\n%s", firstDiff(csv1, csv4))
	}
}
