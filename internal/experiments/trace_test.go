package experiments

import (
	"bytes"
	"strings"
	"testing"

	"tracon/internal/obs"
	"tracon/internal/sched"
	"tracon/internal/sim"
)

// tracedSuite runs the experiment cross-section with a trace collector
// attached and returns the rendered output plus the NDJSON export.
func tracedSuite(t *testing.T, e *Env, workers int) (output, ndjson string, collisions int) {
	t.Helper()
	collector := obs.NewTraceCollector(obs.DefaultTraceCap)
	e.Trace = func(kind, scheduler string, machines int, tasks []sched.Task) sim.Tracer {
		return collector.Tracer(obs.RunLabel(kind, scheduler, machines, tasks), scheduler, machines)
	}
	defer func() { e.Trace = nil }()
	out := renderOutcomes(t, Runner{Workers: workers}.Run(e, observeSuite()))
	var buf bytes.Buffer
	if err := collector.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return out, buf.String(), collector.Collisions()
}

// TestTraceExportDeterministicAcrossWorkers is the tentpole's golden
// guarantee: the NDJSON trace export is byte-identical no matter how many
// Runner workers executed the suite, run labels are input-unique
// (zero collisions), and attaching tracers leaves the rendered experiment
// output byte-identical to the untraced baseline.
func TestTraceExportDeterministicAcrossWorkers(t *testing.T) {
	seeds := []int64{1}
	if !testing.Short() {
		seeds = append(seeds, 42)
	}
	for _, seed := range seeds {
		var e *Env
		if seed == 1 {
			e = testEnv(t)
		} else {
			var err error
			e, err = NewEnv(seed)
			if err != nil {
				t.Fatal(err)
			}
		}
		baseline := renderOutcomes(t, Runner{Workers: 2}.Run(e, observeSuite()))

		var first string
		for _, workers := range []int{1, 2, 8} {
			out, ndjson, collisions := tracedSuite(t, e, workers)
			if collisions != 0 {
				t.Fatalf("seed %d, %d workers: %d run-label collisions — labels are not input-unique", seed, workers, collisions)
			}
			if out != baseline {
				t.Errorf("seed %d: tracers perturbed experiment output at %d workers; first divergence:\n%s",
					seed, workers, firstDiff(baseline, out))
			}
			if first == "" {
				first = ndjson
				continue
			}
			if ndjson != first {
				t.Errorf("seed %d: trace export differs between 1 and %d workers; first divergence:\n%s",
					seed, workers, firstDiff(first, ndjson))
			}
		}

		// The export must be substantive: parse it back and check the
		// lifecycle stages and the fig4 per-model-family labels are present.
		runs, err := obs.ReadTraces(strings.NewReader(first))
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) < 10 {
			t.Fatalf("seed %d: only %d traced runs", seed, len(runs))
		}
		kinds := map[string]bool{}
		labels := map[string]bool{}
		for _, r := range runs {
			labels[r.Label] = true
			for _, ev := range r.Events {
				kinds[ev.Kind] = true
			}
		}
		for _, k := range []string{"arrival", "enqueue", "decision", "pop", "place", "segment", "complete", "done"} {
			if !kinds[k] {
				t.Fatalf("seed %d: no %q events anywhere in the export", seed, k)
			}
		}
		var kindTagged bool
		for l := range labels {
			if strings.Contains(l, "static-") {
				kindTagged = true
				break
			}
		}
		if !kindTagged {
			t.Fatalf("seed %d: fig4 model-family tags missing from labels", seed)
		}
	}
}
