package experiments

import (
	"strings"
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/workload"
)

var (
	envOnce sync.Once
	env     *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		e, err := NewEnv(1)
		if err != nil {
			panic(err)
		}
		env = e
	})
	return env
}

func TestEnvArtifacts(t *testing.T) {
	e := testEnv(t)
	if len(e.Benchmarks) != 8 || len(e.Backgrounds) != 125 {
		t.Fatalf("benchmarks %d backgrounds %d", len(e.Benchmarks), len(e.Backgrounds))
	}
	for _, k := range []model.Kind{model.WMM, model.LM, model.NLM} {
		if e.Libraries[k] == nil || len(e.Libraries[k].Apps()) != 8 {
			t.Fatalf("library %v incomplete", k)
		}
	}
	if len(e.Table.Apps()) != 8 {
		t.Fatal("table incomplete")
	}
}

func TestTable1ReproducesShape(t *testing.T) {
	e := testEnv(t)
	res, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	calc, seq := res.Rows["calc"], res.Rows["seqread"]
	if len(calc) != 4 || len(seq) != 4 {
		t.Fatalf("rows: %v / %v", calc, seq)
	}
	// Shape: calc doubles under CPU; seqread ~unaffected by CPU-only but
	// an order of magnitude worse under I/O, worst under CPU+I/O.
	if calc[0] < 1.7 || calc[0] > 2.3 {
		t.Errorf("calc vs CPU-high = %v", calc[0])
	}
	if seq[0] > 1.2 {
		t.Errorf("seqread vs CPU-high = %v", seq[0])
	}
	if seq[1] < 5 {
		t.Errorf("seqread vs IO-high = %v, want ≥5×", seq[1])
	}
	if seq[3] <= seq[1] {
		t.Errorf("CPU&IO-high (%v) must exceed IO-high (%v)", seq[3], seq[1])
	}
	if !strings.Contains(res.String(), "seqread") {
		t.Error("renderer missing row")
	}
}

func TestFig3ReproducesOrdering(t *testing.T) {
	e := testEnv(t)
	res, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	nlm := res.MeanError(model.Runtime, model.NLM)
	lm := res.MeanError(model.Runtime, model.LM)
	wmm := res.MeanError(model.Runtime, model.WMM)
	noDom0 := res.MeanError(model.Runtime, model.NLMNoDom0)
	if !(nlm < lm && nlm < wmm) {
		t.Errorf("NLM (%v) must beat LM (%v) and WMM (%v)", nlm, lm, wmm)
	}
	if nlm > 0.2 {
		t.Errorf("NLM mean runtime error %v too large", nlm)
	}
	if noDom0 < nlm*1.5 {
		t.Errorf("Dom0 ablation should hurt substantially: %v vs %v", noDom0, nlm)
	}
	if got := res.MeanError(model.IOPS, model.NLM); got >= res.MeanError(model.IOPS, model.LM) {
		t.Errorf("NLM IOPS error %v not below LM", got)
	}
}

func TestFig4ModelsHelpScheduler(t *testing.T) {
	e := testEnv(t)
	res, err := Fig4(e, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kinds {
		if res.Speedup[k].Mean < 1.05 {
			t.Errorf("%v speedup %v — interference-aware batch must beat FIFO", k, res.Speedup[k].Mean)
		}
	}
	if res.IOBoost[model.NLM].Mean <= res.IOBoost[model.LM].Mean {
		t.Errorf("NLM IOBoost %v should beat LM %v", res.IOBoost[model.NLM].Mean, res.IOBoost[model.LM].Mean)
	}
}

func TestFig5PredictedMinIsSane(t *testing.T) {
	e := testEnv(t)
	res, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 { // web excluded
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The paper's claim: the predicted minimum stays close to the
		// measured minimum and never crosses the measured average.
		if r.PredictedMin > r.MeasuredAvg {
			t.Errorf("%s: predicted min %v exceeds measured average %v", r.App, r.PredictedMin, r.MeasuredAvg)
		}
		if r.PredictedMin < 0.5*r.MeasuredMin || r.PredictedMin > 1.5*r.MeasuredMin {
			t.Errorf("%s: predicted min %v far from measured min %v", r.App, r.PredictedMin, r.MeasuredMin)
		}
		if !(r.MeasuredMin <= r.MeasuredAvg && r.MeasuredAvg <= r.MeasuredMax) {
			t.Errorf("%s: measured ordering broken", r.App)
		}
	}
}

func TestFig6PredictedMaxIsSane(t *testing.T) {
	e := testEnv(t)
	res, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The predicted best case must stay within the measured envelope
		// (above the worst case, not wildly above the best case).
		if r.PredictedMax < r.MeasuredMin*0.8 {
			t.Errorf("%s: predicted max %v below measured min %v", r.App, r.PredictedMax, r.MeasuredMin)
		}
		if r.PredictedMax > r.MeasuredMax*1.5 {
			t.Errorf("%s: predicted max %v far above measured max %v", r.App, r.PredictedMax, r.MeasuredMax)
		}
	}
}

func TestFig7AdaptationStory(t *testing.T) {
	e := testEnv(t)
	res, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShockErr < res.InitialErr*3 {
		t.Errorf("environment change must spike the error: %v → %v", res.InitialErr, res.ShockErr)
	}
	if res.FinalErr > res.ShockErr/2 {
		t.Errorf("online learning must recover: shock %v, final %v", res.ShockErr, res.FinalErr)
	}
	if len(res.Rebuilds) < 2 {
		t.Errorf("expected periodic rebuilds, got %v", res.Rebuilds)
	}
}

func TestFig8SpeedupShape(t *testing.T) {
	e := testEnv(t)
	res, err := Fig8(e, []int{8, 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var medium, heavy float64
	for _, c := range res.Cells {
		if c.SpeedupRT < 0.95 {
			t.Errorf("machines=%d mix=%s: MIBS_RT speedup collapsed to %v", c.Machines, c.Mix, c.SpeedupRT)
		}
		if c.Machines == 32 {
			switch c.Mix {
			case workload.MediumIO:
				medium = c.SpeedupRT
			case workload.HeavyIO:
				heavy = c.SpeedupRT
			}
		}
	}
	// The paper's headline: medium I/O gains the most, heavy the least.
	if medium <= heavy {
		t.Errorf("medium mix speedup (%v) should exceed heavy (%v)", medium, heavy)
	}
}

func TestFig9DynamicShape(t *testing.T) {
	e := testEnv(t)
	res, err := Fig9(e, []float64{2, 50}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Low λ: everything ≈ FIFO. High λ on the medium mix: the batch
	// schedulers must win.
	low, ok := res.Cell("MIBS8", 64, 2, workload.MediumIO)
	if !ok {
		t.Fatal("missing cell")
	}
	if low.Normalized < 0.9 || low.Normalized > 1.1 {
		t.Errorf("λ=2 normalized throughput %v should be ≈1", low.Normalized)
	}
	high, _ := res.Cell("MIBS8", 64, 50, workload.MediumIO)
	if high.Normalized < 1.03 {
		t.Errorf("λ=50 MIBS8 normalized throughput %v should clearly beat FIFO", high.Normalized)
	}
	mix, _ := res.Cell("MIX8", 64, 50, workload.MediumIO)
	if mix.Normalized < high.Normalized-0.05 {
		t.Errorf("MIX8 (%v) should not trail MIBS8 (%v) badly", mix.Normalized, high.Normalized)
	}
}

func TestFig10QueueLengthHelps(t *testing.T) {
	e := testEnv(t)
	res, err := Fig10(e, []float64{50}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := res.Cell("MIBS2", 64, 50, workload.MediumIO)
	q8, _ := res.Cell("MIBS8", 64, 50, workload.MediumIO)
	if q8.Normalized < q2.Normalized-0.02 {
		t.Errorf("longer queue should not hurt: q8 %v vs q2 %v", q8.Normalized, q2.Normalized)
	}
}

func TestFig11Scales(t *testing.T) {
	e := testEnv(t)
	res, err := Fig11(e, []int{8, 32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.Normalized < 0.9 {
			t.Errorf("%s at %d machines collapsed: %v", c.Scheduler, c.Machines, c.Normalized)
		}
	}
	c8, _ := res.Cell("MIBS8", 32, 1000, workload.MediumIO)
	if c8.Normalized < 1.02 {
		t.Errorf("MIBS8 under overload should beat FIFO, got %v", c8.Normalized)
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	e := testEnv(t)
	f3, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{f3.String()} {
		if len(s) < 100 || !strings.Contains(s, "NLM") {
			t.Error("renderer output suspicious")
		}
	}
}

func TestStorageStudyShape(t *testing.T) {
	e := testEnv(t)
	res, err := StorageStudy(e)
	if err != nil {
		t.Fatal(err)
	}
	byDev := map[string]StorageRow{}
	for _, r := range res.Rows {
		byDev[r.Device] = r
	}
	hdd, ssd := byDev["hdd"], byDev["ssd"]
	if hdd.SeqReadVsIOHigh < 5 {
		t.Errorf("HDD interference %v too tame", hdd.SeqReadVsIOHigh)
	}
	if ssd.SeqReadVsIOHigh > hdd.SeqReadVsIOHigh/2 {
		t.Errorf("SSD interference %v should be far below HDD %v", ssd.SeqReadVsIOHigh, hdd.SeqReadVsIOHigh)
	}
	// The scheduler's value tracks the violence of interference.
	if hdd.MIBSSpeedup < ssd.MIBSSpeedup {
		t.Errorf("scheduling should matter more on HDD (%v) than SSD (%v)", hdd.MIBSSpeedup, ssd.MIBSSpeedup)
	}
}

func TestCSVTables(t *testing.T) {
	e := testEnv(t)
	t1, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	tab := t1.Table()
	if len(tab.Header) != 5 || len(tab.Rows) != 2 {
		t.Fatalf("table1 CSV shape %dx%d", len(tab.Header), len(tab.Rows))
	}
	f3, err := Fig3(e)
	if err != nil {
		t.Fatal(err)
	}
	tab3 := f3.Table()
	if len(tab3.Rows) != 2*8*4 { // responses × apps × kinds
		t.Fatalf("fig3 CSV rows %d", len(tab3.Rows))
	}
	for _, row := range tab3.Rows {
		if len(row) != len(tab3.Header) {
			t.Fatal("ragged fig3 CSV")
		}
	}
	f5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f5.Table().Rows); got != 7 {
		t.Fatalf("fig5 CSV rows %d", got)
	}
}

func TestRunQueueLengthAblation(t *testing.T) {
	e := testEnv(t)
	n1, err := RunQueueLength(e, 1, 16, 20, 3600)
	if err != nil {
		t.Fatal(err)
	}
	n8, err := RunQueueLength(e, 8, 16, 20, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if n1 <= 0 || n8 <= 0 {
		t.Fatal("ablation produced zero throughput")
	}
	if n8 < n1-0.1 {
		t.Errorf("longer queue should not hurt: q8=%v q1=%v", n8, n1)
	}
}
