package experiments

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
)

// envFingerprint renders every artifact of an Env into a canonical string:
// training samples, solo profiles, library predictions and the full
// interference table. Two Envs fingerprint identically iff the evaluation
// built on them is byte-identical, so this is what the determinism golden
// tests compare. %v prints float64s in shortest round-trip form, making
// the comparison exact to the last bit.
func envFingerprint(e *Env) string {
	var b strings.Builder
	names := e.BenchmarkNames()
	fmt.Fprintf(&b, "seed=%d benchmarks=%v backgrounds=%d\n", e.Seed, names, len(e.Backgrounds))
	for _, app := range names {
		ts := e.TrainingSets[app]
		fmt.Fprintf(&b, "ts %s features=%v solo=%v\n", app, ts.Features, e.Solo[app])
		for i, s := range ts.Samples {
			fmt.Fprintf(&b, "  sample %d bg=%v rt=%v io=%v\n", i, s.BG, s.Runtime, s.IOPS)
		}
	}
	kinds := append([]model.Kind(nil), envLibraryKinds...)
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		lib := e.Libraries[k]
		fmt.Fprintf(&b, "library %v apps=%v\n", k, lib.Apps())
		for _, target := range names {
			for _, co := range append([]string{""}, names...) {
				rt, err := lib.PredictRuntime(target, co)
				if err != nil {
					fmt.Fprintf(&b, "  err %v\n", err)
					continue
				}
				io, _ := lib.PredictIOPS(target, co)
				fmt.Fprintf(&b, "  predict %s|%s rt=%v io=%v\n", target, co, rt, io)
			}
		}
	}
	for _, a := range e.Table.Apps() {
		fmt.Fprintf(&b, "table %s solo rt=%v io=%v ops=%v util=%v\n",
			a, e.Table.SoloRuntime(a), e.Table.SoloIOPS(a), e.Table.Ops(a), e.Table.Util(a, ""))
		for _, n := range e.Table.Apps() {
			fmt.Fprintf(&b, "  pair %s|%s rate=%v io=%v util=%v\n",
				a, n, e.Table.Rate(a, n), e.Table.IOPS(a, n), e.Table.Util(a, n))
		}
	}
	return b.String()
}

// TestNewEnvParallelMatchesSequential is the determinism golden test of
// the tentpole guarantee: for the same seed, NewEnvParallel produces the
// exact Env the sequential build produces, at every worker count. Seed 42
// is skipped under -short to keep the race pass fast.
func TestNewEnvParallelMatchesSequential(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seq, err := NewEnvParallel(seed, 1)
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		want := envFingerprint(seq)
		for _, workers := range []int{4} {
			par, err := NewEnvParallel(seed, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			got := envFingerprint(par)
			if got != want {
				t.Errorf("seed %d: parallel (workers=%d) Env differs from sequential; first divergence:\n%s",
					seed, workers, firstDiff(want, got))
			}
		}
	}
}

// TestRunnerParallelMatchesSequential runs a representative slice of the
// evaluation — a table, a static figure and a dynamic figure — through the
// Runner at worker counts 1 and 4 and asserts the rendered outputs are
// byte-identical.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	e := testEnv(t)
	suite := []Experiment{
		{"table1", func(e *Env) (fmt.Stringer, error) { return Table1(e) }},
		{"fig4", func(e *Env) (fmt.Stringer, error) { return Fig4(e, 4) }},
		{"fig9", func(e *Env) (fmt.Stringer, error) { return Fig9(e, []float64{2, 50}, 1) }},
	}
	render := func(ocs []Outcome) string {
		var b strings.Builder
		for _, oc := range ocs {
			if oc.Err != nil {
				t.Fatalf("%s: %v", oc.Name, oc.Err)
			}
			fmt.Fprintf(&b, "== %s ==\n%s\n", oc.Name, oc.Result.String())
		}
		return b.String()
	}
	want := render(Runner{Workers: 1}.Run(e, suite))
	for _, workers := range []int{1, 4} {
		got := render(Runner{Workers: workers}.Run(e, suite))
		if got != want {
			t.Errorf("workers=%d output differs; first divergence:\n%s", workers, firstDiff(want, got))
		}
	}
}

// TestRunnerKeepsOrderAndIsolatesErrors: outcomes come back in input order
// and one failing experiment does not poison the rest.
func TestRunnerKeepsOrderAndIsolatesErrors(t *testing.T) {
	e := testEnv(t)
	boom := fmt.Errorf("deliberate failure")
	suite := []Experiment{
		{"ok1", func(e *Env) (fmt.Stringer, error) { return Table1(e) }},
		{"bad", func(e *Env) (fmt.Stringer, error) { return nil, boom }},
		{"ok2", func(e *Env) (fmt.Stringer, error) { return Table1(e) }},
	}
	ocs := Runner{Workers: 4}.Run(e, suite)
	if len(ocs) != 3 || ocs[0].Name != "ok1" || ocs[1].Name != "bad" || ocs[2].Name != "ok2" {
		t.Fatalf("outcome order broken: %+v", ocs)
	}
	if ocs[1].Err != boom {
		t.Errorf("bad experiment error = %v", ocs[1].Err)
	}
	if ocs[0].Err != nil || ocs[2].Err != nil {
		t.Errorf("healthy experiments poisoned: %v / %v", ocs[0].Err, ocs[2].Err)
	}
	if ocs[0].Result == nil || ocs[2].Result == nil {
		t.Error("healthy experiments missing results")
	}
}

func TestSuiteSelection(t *testing.T) {
	suite := Suite(DefaultSuiteOptions(true))
	if len(suite) != 12 {
		t.Fatalf("suite has %d experiments", len(suite))
	}
	sub, err := SelectExperiments(suite, map[string]bool{"fig3": true, "table1": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "table1" || sub[1].Name != "fig3" {
		t.Fatalf("selection broken: %+v", sub)
	}
	if _, err := SelectExperiments(suite, map[string]bool{"fig99": true}); err == nil {
		t.Error("unknown experiment name must fail fast")
	}
	all, err := SelectExperiments(suite, nil)
	if err != nil || len(all) != len(suite) {
		t.Errorf("empty selection must mean everything")
	}
	withSpot := Suite(SuiteOptions{SpotCheck: true, SpotCheckHours: 1})
	if withSpot[len(withSpot)-1].Name != "spotcheck" {
		t.Error("spotcheck missing from suite")
	}
}

// TestNewSchedulerTable covers every policy constructor and the error
// paths of the -only/policy plumbing.
func TestNewSchedulerTable(t *testing.T) {
	e := testEnv(t)
	scorer := e.scorerFor(model.NLM, sched.MinRuntime, false)
	cases := []struct {
		policy  string
		queue   int
		wantErr bool
		check   func(sched.Scheduler) error
	}{
		{"fifo", 0, false, func(s sched.Scheduler) error {
			if _, ok := s.(sched.FIFO); !ok {
				return fmt.Errorf("got %T", s)
			}
			return nil
		}},
		{"mios", 0, false, func(s sched.Scheduler) error {
			m, ok := s.(*sched.MIOS)
			if !ok || m.Scorer != scorer {
				return fmt.Errorf("got %T scorer=%v", s, ok)
			}
			return nil
		}},
		{"mibs", 8, false, func(s sched.Scheduler) error {
			m, ok := s.(*sched.MIBS)
			if !ok || m.QueueLen != 8 {
				return fmt.Errorf("got %T", s)
			}
			return nil
		}},
		{"mix", 4, false, func(s sched.Scheduler) error {
			m, ok := s.(*sched.MIX)
			if !ok || m.QueueLen != 4 {
				return fmt.Errorf("got %T", s)
			}
			return nil
		}},
		{"MIBS", 8, true, nil}, // case-sensitive
		{"round-robin", 0, true, nil},
		{"", 0, true, nil},
	}
	for _, c := range cases {
		s, err := newScheduler(c.policy, c.queue, scorer)
		if c.wantErr {
			if err == nil {
				t.Errorf("policy %q: expected error, got %T", c.policy, s)
			} else if !strings.Contains(err.Error(), "unknown policy") {
				t.Errorf("policy %q: unhelpful error %v", c.policy, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("policy %q: %v", c.policy, err)
			continue
		}
		if err := c.check(s); err != nil {
			t.Errorf("policy %q: %v", c.policy, err)
		}
	}
}

// TestTaskGeneratorsSeedStable pins down the seed contract of the three
// task generators: same seed → same task list, different seed → different
// list. The parallel runner depends on this to keep per-experiment
// arrivals reproducible no matter which worker runs them.
func TestTaskGeneratorsSeedStable(t *testing.T) {
	type gen struct {
		name string
		make func(seed int64) interface{}
	}
	gens := []gen{
		{"staticTasks", func(seed int64) interface{} {
			return staticTasks(workload.MediumIO, 64, seed)
		}},
		{"uniformTasks", func(seed int64) interface{} {
			return uniformTasks(64, seed)
		}},
		{"poissonTasks", func(seed int64) interface{} {
			return poissonTasks(workload.HeavyIO, 30, 1800, seed)
		}},
	}
	for _, g := range gens {
		a, b := g.make(7), g.make(7)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different task lists", g.name)
		}
		c := g.make(8)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical task lists", g.name)
		}
	}
	// Arrival times must be non-decreasing and inside the horizon.
	for _, task := range poissonTasks(workload.LightIO, 10, 600, 3) {
		if task.Arrival < 0 || task.Arrival > 600 {
			t.Fatalf("arrival %v outside horizon", task.Arrival)
		}
	}
}

// firstDiff locates the first differing line of two renderings — a full
// dump of two fingerprints would be megabytes.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  sequential: %s\n  parallel:   %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(wl), len(gl))
}
