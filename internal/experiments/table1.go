package experiments

import (
	"fmt"
	"strings"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Table1Result reproduces Table 1: normalized runtime of the two probe
// applications under the four interference classes.
type Table1Result struct {
	// Columns are the four background classes in paper order.
	Columns []string
	// Rows maps probe name → normalized runtimes per column.
	Rows map[string][]float64
	// Paper holds the published values for side-by-side comparison.
	Paper map[string][]float64
}

// Table1 measures the probes against each background class.
func Table1(e *Env) (*Table1Result, error) {
	res := &Table1Result{
		Rows: map[string][]float64{},
		Paper: map[string][]float64{
			"calc":    {1.96, 1.26, 1.77, 2.52},
			"seqread": {1.03, 10.23, 1.78, 16.11},
		},
	}
	for _, bg := range workload.Table1Backgrounds() {
		res.Columns = append(res.Columns, bg.String())
	}
	probes := map[string]xen.AppSpec{
		"calc":    workload.Calc(),
		"seqread": workload.SeqRead(),
	}
	for name, spec := range probes {
		var row []float64
		for _, bg := range workload.Table1Backgrounds() {
			sd, err := e.TB.Slowdown(spec, bg.Spec())
			if err != nil {
				return nil, err
			}
			row = append(row, sd)
		}
		res.Rows[name] = row
	}
	return res, nil
}

// String renders the table next to the paper's numbers.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: normalized App1 runtime under App2 interference (p = paper)\n")
	fmt.Fprintf(&b, "%-9s", "App1")
	for _, c := range r.Columns {
		fmt.Fprintf(&b, " %16s", c)
	}
	b.WriteByte('\n')
	for _, name := range []string{"calc", "seqread"} {
		fmt.Fprintf(&b, "%-9s", name)
		for i, v := range r.Rows[name] {
			fmt.Fprintf(&b, " %7.2f (p%6.2f)", v, r.Paper[name][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
