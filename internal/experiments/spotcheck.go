package experiments

import (
	"fmt"
	"strings"
	"sync"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
)

// SpotCheckResult reproduces the Sec. 4.8 claim: "If we scale the data
// center to 10,000 machines and λ = 10,000, the normalized throughput of
// MIBS8 with the medium I/O workload remains high with 40% improvement."
// The run uses the manager-server hierarchy: the cluster is partitioned
// into groups, each scheduled independently, tasks routed round-robin.
type SpotCheckResult struct {
	Machines     int
	Lambda       float64
	Groups       int
	HorizonHours float64
	FIFO         float64 // completed tasks
	MIBS8        float64
	Normalized   float64
}

// SpotCheck10k runs the 10,000-machine experiment. horizonHours below the
// paper's 10 h keeps the run tractable; the normalized throughput is the
// reported quantity either way.
func SpotCheck10k(e *Env, horizonHours float64) (*SpotCheckResult, error) {
	if horizonHours <= 0 {
		horizonHours = 2
	}
	const machines = 10000
	const lambda = 10000
	const groups = 10
	horizon := horizonHours * 3600
	tasks := poissonTasks(workload.MediumIO, lambda, horizon, e.Seed+101)

	run := func(policy string, q int) (float64, error) {
		routed := make([][]sched.Task, groups)
		for i, t := range tasks {
			routed[i%groups] = append(routed[i%groups], t)
		}
		totals := make([]float64, groups)
		errs := make([]error, groups)
		var wg sync.WaitGroup
		for g := 0; g < groups; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s, err := newScheduler(policy, q, e.scorerFor(model.NLM, sched.MinRuntime, false))
				if err != nil {
					errs[g] = err
					return
				}
				eng, err := sim.NewEngine(sim.Config{
					Machines:    machines / groups,
					Scheduler:   s,
					Table:       e.Table,
					DropRecords: true,
					Observer:    e.observer("spotcheck", s.Name(), machines/groups, routed[g]),
					Tracer:      e.tracer("spotcheck", s.Name(), machines/groups, routed[g]),
					Faults:      e.faults("spotcheck", s.Name(), machines/groups, routed[g]),
				})
				if err != nil {
					errs[g] = err
					return
				}
				res, err := eng.Run(routed[g], horizon)
				if err != nil {
					errs[g] = err
					return
				}
				totals[g] = res.CompletedTasks()
			}(g)
		}
		wg.Wait()
		total := 0.0
		for g := 0; g < groups; g++ {
			if errs[g] != nil {
				return 0, errs[g]
			}
			total += totals[g]
		}
		return total, nil
	}

	fifo, err := run("fifo", 1)
	if err != nil {
		return nil, err
	}
	mibs, err := run("mibs", 8)
	if err != nil {
		return nil, err
	}
	res := &SpotCheckResult{
		Machines: machines, Lambda: lambda, Groups: groups,
		HorizonHours: horizonHours, FIFO: fifo, MIBS8: mibs,
	}
	if fifo > 0 {
		res.Normalized = mibs / fifo
	}
	return res, nil
}

// String renders the spot check.
func (r *SpotCheckResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec 4.8 spot check: %d machines, λ=%.0f/min, %d manager groups, %.1f h\n",
		r.Machines, r.Lambda, r.Groups, r.HorizonHours)
	fmt.Fprintf(&b, "FIFO completed %.0f, MIBS8 completed %.0f, normalized throughput %.3f\n",
		r.FIFO, r.MIBS8, r.Normalized)
	return b.String()
}
