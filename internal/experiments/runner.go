package experiments

import (
	"fmt"
	"time"

	"tracon/internal/par"
)

// Experiment is one independent unit of the evaluation: a named, pure
// function of the shared Env. Experiments must not mutate the Env (every
// figure/table function in this package reads it only), and any randomness
// they use must be seeded deterministically from Env.Seed — those two
// properties are what make the fan-out in Runner safe and reproducible.
type Experiment struct {
	Name string
	Run  func(*Env) (fmt.Stringer, error)
}

// Outcome is one experiment's result. Err is per-experiment: one failing
// experiment does not abort the others.
type Outcome struct {
	Name    string
	Result  fmt.Stringer
	Err     error
	Elapsed time.Duration
}

// Runner executes independent experiments across a bounded worker pool.
// Outcomes come back in the input order regardless of which experiment
// finishes first, so rendering the outcome list produces the same bytes at
// any worker count — the CLI's -parallel flag changes wall-clock time and
// nothing else.
type Runner struct {
	// Workers bounds the concurrent experiments; <= 1 runs sequentially on
	// the calling goroutine.
	Workers int
}

// Run evaluates every experiment against env and returns one Outcome per
// experiment, in input order.
func (r Runner) Run(env *Env, exps []Experiment) []Outcome {
	out := make([]Outcome, len(exps))
	// Job errors land in the per-index Outcome; ForEach itself cannot fail.
	par.ForEach(r.Workers, len(exps), func(i int) error {
		t0 := time.Now()
		res, err := exps[i].Run(env)
		out[i] = Outcome{Name: exps[i].Name, Result: res, Err: err, Elapsed: time.Since(t0)}
		return nil
	})
	return out
}

// SuiteOptions sizes the standard evaluation suite.
type SuiteOptions struct {
	// StaticMachines are the cluster sizes of the Fig 8 static sweep.
	StaticMachines []int
	// DynMachines are the cluster sizes of the Fig 11/12 scalability sweeps.
	DynMachines []int
	// Lambdas are the arrival rates (tasks/minute) of the Fig 9/10 sweeps.
	Lambdas []float64
	// DynHours is the dynamic-experiment horizon in hours.
	DynHours float64
	// Repeats is the per-cell repetition count of the static sweep.
	Repeats int
	// Fig4Batches is the batch count of the Fig 4 model comparison.
	Fig4Batches int
	// SpotCheck includes the 10,000-machine Sec 4.8 run.
	SpotCheck bool
	// SpotCheckHours is that run's horizon.
	SpotCheckHours float64
}

// DefaultSuiteOptions returns the paper-scale dimensions, or the reduced
// -quick dimensions.
func DefaultSuiteOptions(quick bool) SuiteOptions {
	o := SuiteOptions{
		StaticMachines: []int{8, 64, 256, 1024},
		DynMachines:    []int{8, 64, 256, 1024},
		Lambdas:        []float64{2, 5, 10, 20, 50, 100},
		DynHours:       10,
		Repeats:        3,
		Fig4Batches:    10,
		SpotCheckHours: 2,
	}
	if quick {
		o.StaticMachines = []int{8, 64}
		o.DynMachines = []int{8, 64}
		o.Lambdas = []float64{2, 10, 50}
		o.DynHours = 2
		o.Repeats = 2
	}
	return o
}

// Suite returns the full evaluation — every table and figure of Sec. 4 at
// the given dimensions — in presentation order. Each entry is independent
// of the others, so the list can be handed to Runner at any worker count.
func Suite(o SuiteOptions) []Experiment {
	exps := []Experiment{
		{"table1", func(e *Env) (fmt.Stringer, error) { return Table1(e) }},
		{"fig3", func(e *Env) (fmt.Stringer, error) { return Fig3(e) }},
		{"fig4", func(e *Env) (fmt.Stringer, error) { return Fig4(e, o.Fig4Batches) }},
		{"fig5", func(e *Env) (fmt.Stringer, error) { return Fig5(e) }},
		{"fig6", func(e *Env) (fmt.Stringer, error) { return Fig6(e) }},
		{"fig7", func(e *Env) (fmt.Stringer, error) { return Fig7(e) }},
		{"fig8", func(e *Env) (fmt.Stringer, error) { return Fig8(e, o.StaticMachines, o.Repeats) }},
		{"fig9", func(e *Env) (fmt.Stringer, error) { return Fig9(e, o.Lambdas, o.DynHours) }},
		{"fig10", func(e *Env) (fmt.Stringer, error) { return Fig10(e, o.Lambdas, o.DynHours) }},
		{"fig11", func(e *Env) (fmt.Stringer, error) { return Fig11(e, o.DynMachines, o.DynHours) }},
		{"fig12", func(e *Env) (fmt.Stringer, error) { return Fig12(e, o.DynMachines, o.DynHours) }},
		{"storage", func(e *Env) (fmt.Stringer, error) { return StorageStudy(e) }},
	}
	if o.SpotCheck {
		exps = append(exps, Experiment{"spotcheck", func(e *Env) (fmt.Stringer, error) {
			return SpotCheck10k(e, o.SpotCheckHours)
		}})
	}
	return exps
}

// SelectExperiments filters a suite down to the named subset, preserving
// order. An empty want map selects everything. Unknown names are reported
// as an error so a typo in -only fails fast instead of silently running
// nothing.
func SelectExperiments(exps []Experiment, want map[string]bool) ([]Experiment, error) {
	if len(want) == 0 {
		return exps, nil
	}
	known := map[string]bool{}
	var out []Experiment
	for _, ex := range exps {
		known[ex.Name] = true
		if want[ex.Name] {
			out = append(out, ex)
		}
	}
	for name := range want {
		if !known[name] {
			return nil, fmt.Errorf("experiments: unknown experiment %q", name)
		}
	}
	return out, nil
}
