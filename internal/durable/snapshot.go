package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
)

// Snapshot file format: the snapshot magic ("TRCNSNP1") followed by one
// CRC32C frame whose payload is the JSON PlacerState — the same framing
// the WAL uses, so a torn snapshot (a crash mid-write) is detected the
// same way. Snapshots are written to a temp file, fsynced, and renamed
// into place; a reader never sees a half-written snapshot under its
// final name unless the rename itself was torn, which the CRC catches.

// WriteSnapshotFile atomically writes state to path on the OS filesystem.
func WriteSnapshotFile(path string, state *PlacerState) error {
	return writeSnapshotFS(OSFS{}, path, state)
}

// writeSnapshotFS atomically writes state to path through an injected FS.
func writeSnapshotFS(fsys FS, path string, state *PlacerState) error {
	payload, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("durable: encoding snapshot: %w", err)
	}
	var buf []byte
	buf = append(buf, snapMagic[:]...)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castTable))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)

	tmp := path + ".tmp"
	f, err := fsys.Create(tmp, false)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// ReadSnapshot decodes one snapshot stream.
func ReadSnapshot(r io.Reader) (*PlacerState, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameHeader {
		return nil, fmt.Errorf("%w: snapshot too short (%d bytes)", ErrCorrupt, len(data))
	}
	if [8]byte(data[:8]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	rest := data[len(snapMagic):]
	length := binary.LittleEndian.Uint32(rest[0:4])
	crc := binary.LittleEndian.Uint32(rest[4:8])
	if int64(length) > maxSnapshot || int64(len(rest)) < frameHeader+int64(length) {
		return nil, fmt.Errorf("%w: snapshot frame truncated", ErrCorrupt)
	}
	payload := rest[frameHeader : frameHeader+int64(length)]
	if crc32.Checksum(payload, castTable) != crc {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	var state PlacerState
	if err := json.Unmarshal(payload, &state); err != nil {
		return nil, fmt.Errorf("%w: undecodable snapshot: %v", ErrCorrupt, err)
	}
	return &state, nil
}

// maxSnapshot bounds a snapshot payload (a full placement map at the
// default finished-ring cap is well under this).
const maxSnapshot = 1 << 30

// ReadSnapshotFile reads one snapshot file from the OS filesystem.
func ReadSnapshotFile(path string) (*PlacerState, error) {
	return readSnapshotFS(OSFS{}, path)
}

// readSnapshotFS reads one snapshot file through an injected FS.
func readSnapshotFS(fsys FS, path string) (*PlacerState, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
