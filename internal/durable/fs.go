package durable

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS abstracts the filesystem under the journal. Production runs on OSFS;
// the deterministic simulation harness (internal/dst) substitutes MemFS so
// a crash — every unsynced byte and every un-fsynced directory entry lost
// — can be simulated in-process and recovered from without touching disk.
type FS interface {
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// ReadDirNames lists the file names directly inside dir, sorted.
	ReadDirNames(dir string) ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath's file.
	Rename(oldpath, newpath string) error
	// Open opens a file for reading.
	Open(name string) (io.ReadCloser, error)
	// Create opens a file for writing from scratch. With excl set the
	// call fails if the file exists (O_EXCL); otherwise it truncates.
	Create(name string, excl bool) (File, error)
	// OpenWrite opens an existing file for writing without truncating.
	OpenWrite(name string) (File, error)
	// SyncDir makes dir's entries (creations, renames, removals) durable.
	SyncDir(dir string) error
}

// File is the writable handle durable needs from an FS.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	// Seek repositions the write cursor.
	Seek(offset int64, whence int) (int64, error)
}

// OSFS is the production filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDirNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (OSFS) Remove(name string) error                { return os.Remove(name) }
func (OSFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) Create(name string, excl bool) (File, error) {
	flag := os.O_CREATE | os.O_WRONLY
	if excl {
		flag |= os.O_EXCL
	} else {
		flag |= os.O_TRUNC
	}
	return os.OpenFile(name, flag, 0o644)
}

func (OSFS) OpenWrite(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY, 0o644)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory filesystem with crash semantics: Sync pins a
// file's durable byte prefix, SyncDir pins its directory entry, and
// Crash discards everything beyond those pins — exactly the state an OS
// could leave behind after power loss under POSIX fsync rules.
//
// Crash rebuilds every surviving file object, so handles opened before
// the crash keep writing into orphaned buffers instead of corrupting the
// recovered incarnation (mirroring a dead process's lost page cache).
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{}}
}

type memFile struct {
	mu      sync.Mutex
	data    []byte
	synced  int  // durable byte prefix (file content fsynced)
	durable bool // directory entry fsynced (survives a crash)
	orphan  bool // detached by a crash; writes go nowhere visible
}

// Crash simulates power loss: files whose directory entry was never
// synced vanish, surviving files lose every byte past their last Sync,
// and all pre-crash handles are detached. It returns the number of
// files lost entirely.
func (m *MemFS) Crash() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	lost := 0
	next := make(map[string]*memFile, len(m.files))
	for name, f := range m.files {
		f.mu.Lock()
		f.orphan = true
		if !f.durable {
			lost++
			f.mu.Unlock()
			continue
		}
		nf := &memFile{
			data:    append([]byte(nil), f.data[:f.synced]...),
			synced:  f.synced,
			durable: true,
		}
		f.mu.Unlock()
		next[name] = nf
	}
	m.files = next
	return lost
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[filepath.Clean(dir)] = true
	return nil
}

func (m *MemFS) ReadDirNames(dir string) ([]string, error) {
	clean := filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[clean] {
		return nil, &fs.PathError{Op: "open", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == clean {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	clean := filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[clean]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, clean)
	return nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldc, newc := filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldc]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, oldc)
	f.mu.Lock()
	f.durable = false // the new entry needs its own SyncDir
	f.mu.Unlock()
	m.files[newc] = f
	return nil
}

func (m *MemFS) Open(name string) (io.ReadCloser, error) {
	clean := filepath.Clean(name)
	m.mu.Lock()
	f, ok := m.files[clean]
	m.mu.Unlock()
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	f.mu.Lock()
	snap := append([]byte(nil), f.data...)
	f.mu.Unlock()
	return &memReader{data: snap}, nil
}

func (m *MemFS) Create(name string, excl bool) (File, error) {
	clean := filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[clean]; ok {
		if excl {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
		}
		f.mu.Lock()
		f.data = f.data[:0]
		f.synced = 0
		f.mu.Unlock()
		return &memHandle{f: f}, nil
	}
	f := &memFile{}
	m.files[clean] = f
	return &memHandle{f: f}, nil
}

func (m *MemFS) OpenWrite(name string) (File, error) {
	clean := filepath.Clean(name)
	m.mu.Lock()
	f, ok := m.files[clean]
	m.mu.Unlock()
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memHandle{f: f}, nil
}

func (m *MemFS) SyncDir(dir string) error {
	clean := filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, f := range m.files {
		if filepath.Dir(name) == clean {
			f.mu.Lock()
			f.durable = true
			f.mu.Unlock()
		}
	}
	return nil
}

// memHandle is one open write handle with its own cursor.
type memHandle struct {
	f      *memFile
	off    int64
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	end := h.off + int64(len(p))
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[h.off:end], p)
	h.off = end
	return len(p), nil
}

func (h *memHandle) Sync() error {
	if h.closed {
		return fs.ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if !h.f.orphan {
		h.f.synced = len(h.f.data)
	}
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	if h.closed {
		return fs.ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if size < 0 || size > int64(len(h.f.data)) {
		if size < 0 {
			return fmt.Errorf("memfs: truncate to negative size %d", size)
		}
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
	} else {
		h.f.data = h.f.data[:size]
	}
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	if h.closed {
		return 0, fs.ErrClosed
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("memfs: bad whence %d", whence)
	}
	if h.off < 0 {
		return 0, fmt.Errorf("memfs: negative seek offset")
	}
	return h.off, nil
}

func (h *memHandle) Close() error {
	h.closed = true
	return nil
}

type memReader struct {
	data []byte
	off  int
}

func (r *memReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *memReader) Close() error { return nil }
