package durable

import (
	"errors"
	"io"
	"io/fs"
	"testing"
)

func readAllMem(t *testing.T, m *MemFS, name string) []byte {
	t.Helper()
	r, err := m.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestMemFSCrashDropsUnsyncedSuffix(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	f, err := m.Create("d/a", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" lost")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got := string(readAllMem(t, m, "d/a")); got != "durable" {
		t.Fatalf("post-crash content = %q, want %q", got, "durable")
	}
	// The pre-crash handle is orphaned: its writes must not reach the
	// recovered incarnation.
	if _, err := f.Write([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	if got := string(readAllMem(t, m, "d/a")); got != "durable" {
		t.Fatalf("orphan handle leaked into recovered file: %q", got)
	}
}

func TestMemFSCrashDropsUnsyncedDirEntry(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	f, _ := m.Create("d/never-synced-dir", true)
	f.Write([]byte("x"))
	f.Sync() // content synced, but the directory entry never was
	if lost := m.Crash(); lost != 1 {
		t.Fatalf("Crash lost %d files, want 1", lost)
	}
	if _, err := m.Open("d/never-synced-dir"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("unsynced dir entry survived the crash: err=%v", err)
	}
}

func TestMemFSRenameNeedsDirSync(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	f, _ := m.Create("d/a.tmp", true)
	f.Write([]byte("snap"))
	f.Sync()
	m.SyncDir("d")
	if err := m.Rename("d/a.tmp", "d/a"); err != nil {
		t.Fatal(err)
	}
	// No SyncDir after the rename: the new entry is not durable.
	m.Crash()
	if _, err := m.Open("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("un-fsynced rename survived the crash: err=%v", err)
	}
}

func TestMemFSCreateExcl(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d")
	if _, err := m.Create("d/a", true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("d/a", true); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("second exclusive create: err=%v, want ErrExist", err)
	}
	if _, err := m.Create("d/a", false); err != nil {
		t.Fatalf("truncating create: %v", err)
	}
}

// TestManagerOnMemFSCrashRecovery runs the full journal lifecycle on the
// in-memory filesystem: append under FsyncAlways, snapshot, crash, and
// recover — everything acknowledged must come back.
func TestManagerOnMemFSCrashRecovery(t *testing.T) {
	mem := NewMemFS()
	open := func() *Manager {
		m, err := Open("data", Options{Fsync: FsyncAlways, Now: fixedClock(), FS: mem})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return m
	}
	m := open()
	for i := 0; i < 5; i++ {
		if _, err := m.Append(Event{Kind: EvAdmit, Task: "t", Machine: -1, Slot: -1}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := m.WriteSnapshot(&PlacerState{Seq: 3}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := m.Append(Event{Kind: EvComplete, Task: "t", Machine: -1, Slot: -1}); err != nil {
		t.Fatalf("post-snapshot append: %v", err)
	}

	mem.Crash()

	m2 := open()
	rec := m2.Recovery()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 3 {
		t.Fatalf("recovered snapshot = %+v, want seq 3", rec.Snapshot)
	}
	if got := rec.LastSeq(); got != 6 {
		t.Fatalf("recovered LastSeq = %d, want 6 (nothing acknowledged may be lost under FsyncAlways)", got)
	}
	if len(rec.Events) != 3 {
		t.Fatalf("replay suffix has %d events, want 3 (seqs 4..6)", len(rec.Events))
	}
	if _, err := m2.Append(Event{Kind: EvAdmit, Task: "u", Machine: -1, Slot: -1}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got := m2.LastSeq(); got != 7 {
		t.Fatalf("LastSeq after recovery append = %d, want 7", got)
	}
}

// TestManagerOnMemFSFsyncNeverLosesSuffix checks the other durability
// contract: with FsyncNever, a crash rolls back to the last forced sync
// — a prefix, never a reordering.
func TestManagerOnMemFSFsyncNeverLosesSuffix(t *testing.T) {
	mem := NewMemFS()
	m, err := Open("data", Options{Fsync: FsyncNever, Now: fixedClock(), FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.Append(Event{Kind: EvAdmit, Task: "t", Machine: -1, Slot: -1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Append(Event{Kind: EvAdmit, Task: "u", Machine: -1, Slot: -1}); err != nil {
			t.Fatal(err)
		}
	}
	mem.Crash()
	m2, err := Open("data", Options{Fsync: FsyncNever, Now: fixedClock(), FS: mem})
	if err != nil {
		t.Fatalf("recovery after FsyncNever crash: %v", err)
	}
	if got := m2.Recovery().LastSeq(); got != 3 {
		t.Fatalf("recovered LastSeq = %d, want 3 (the synced prefix)", got)
	}
}
