package durable

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALReader throws arbitrary bytes at the segment reader and checks
// the recovery invariants no input may break:
//
//   - the only error types are ErrCorrupt and ErrBadSeq (never a panic, an
//     allocation blow-up or an unwrapped decode error);
//   - GoodSize never exceeds the input and always lands on a frame
//     boundary: re-reading the good prefix yields the same events, clean;
//   - a segment that reads clean round-trips through re-encoding.
func FuzzWALReader(f *testing.F) {
	evs := []Event{
		{Seq: 1, Kind: EvAdmit, Task: "t-1", App: "sort", Machine: -1, Slot: -1},
		{Seq: 2, Kind: EvPlace, Task: "t-1", App: "sort", Machine: 0, Slot: 1, Neighbour: "grep", PredRT: 1.5, Gen: 1},
		{Seq: 3, Kind: EvKill, Machine: 2, Slot: -1, Tasks: []TaskRef{{Task: "t-1", App: "sort"}}},
	}
	valid := append([]byte{}, walMagic[:]...)
	for _, ev := range evs {
		var err error
		if valid, err = encodeFrame(valid, ev); err != nil {
			f.Fatal(err)
		}
	}
	f.Add([]byte{})
	f.Add(walMagic[:])
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte{}, valid...)
	flipped[len(walMagic)+frameHeader+4] ^= 0x10 // mid-log corruption
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := ReadWAL(bytes.NewReader(data), 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadSeq) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if seg.GoodSize > int64(len(data)) {
			t.Fatalf("GoodSize %d beyond input %d", seg.GoodSize, len(data))
		}
		if len(seg.Events) > 0 && seg.GoodSize < int64(len(walMagic)) {
			t.Fatalf("%d events but GoodSize %d", len(seg.Events), seg.GoodSize)
		}
		if seg.GoodSize >= int64(len(walMagic)) {
			again, err := ReadWAL(bytes.NewReader(data[:seg.GoodSize]), 0)
			if err != nil {
				t.Fatalf("good prefix re-read failed: %v", err)
			}
			if again.Torn {
				t.Fatal("good prefix re-read reported torn")
			}
			if len(again.Events) != len(seg.Events) {
				t.Fatalf("good prefix re-read: %d events, first pass had %d", len(again.Events), len(seg.Events))
			}
			for i := range again.Events {
				if again.Events[i].Seq != seg.Events[i].Seq || again.Events[i].Kind != seg.Events[i].Kind {
					t.Fatalf("event %d diverged on re-read", i)
				}
			}
		}
	})
}
