package durable

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultClockIsWallClock(t *testing.T) {
	before := time.Now().Add(-time.Second)
	got := defaultClock()
	if got.Before(before) || got.After(time.Now().Add(time.Second)) {
		t.Fatalf("defaultClock returned %v", got)
	}
}

// TestNoDirectTimeNow bans time.Now outside clock.go: every wall-clock
// read in this package must flow through the injected Clock so rotation,
// fsync pacing and recovery stay deterministic under test. A new call
// site is a build-time design regression, caught here.
func TestNoDirectTimeNow(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || name == "clock.go" {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pkg.Name == "time" && sel.Sel.Name == "Now" {
				t.Errorf("%s: direct time.Now call — route it through the injected Clock (clock.go)",
					fset.Position(sel.Pos()))
			}
			return true
		})
	}
}
