// Package durable is tracond's crash-safe persistence layer: a
// length-prefixed, CRC32C-framed write-ahead log of placement lifecycle
// events plus periodic compacted snapshots of the placer state, managed
// together over one data directory. The serving daemon journals every
// state mutation at its commit point; on boot it loads the newest valid
// snapshot, replays the WAL suffix, and resumes with the exact backlog,
// in-flight set and machine inventory it held when it died.
//
// The package is deliberately ignorant of the serve package: events and
// the snapshot state are neutral, JSON-serializable structs, so serve
// imports durable (never the reverse) and offline tooling (tracontrace's
// WAL inspection mode) can read a journal without a daemon.
//
// Durability contract, by fsync policy:
//
//	always    every append is fsynced before it returns; an event the
//	          daemon acknowledged survives kill -9.
//	interval  appends are fsynced at most once per interval; a crash can
//	          lose up to one interval of acknowledged events.
//	never     the OS decides; a crash can lose everything since the last
//	          snapshot.
//
// All wall-clock reads go through the injected clock (see clock.go), so
// recovery and rotation decisions are deterministic under test.
package durable

import (
	"fmt"
	"strconv"
	"strings"
)

// Event kinds. Every kind journals one placer state transition at its
// commit point; Apply in the serve package replays them idempotently.
const (
	// EvAdmit records one task entering the backlog (singleton submit).
	EvAdmit = "admit"
	// EvBatchAdmit records a whole batch entering the backlog under one
	// critical section (Tasks carries the group in queue order).
	EvBatchAdmit = "batch_admit"
	// EvPlace records a task binding to a concrete (machine, slot).
	EvPlace = "place"
	// EvComplete records a task freeing its slot.
	EvComplete = "complete"
	// EvFail records a task failing terminally (Error carries why).
	EvFail = "fail"
	// EvKill records a machine going down; Tasks carries the evicted
	// in-flight tasks in the order they were re-queued at the queue front.
	EvKill = "kill"
	// EvDrain, EvUndrain and EvRevive record the other machine lifecycle
	// transitions.
	EvDrain   = "drain"
	EvUndrain = "undrain"
	EvRevive  = "revive"
	// EvRequeue records boot-time recovery re-queueing orphaned in-flight
	// tasks at the queue front (Tasks in re-queue order).
	EvRequeue = "requeue"
	// EvGenSwap records a model-generation hot-swap (Gen is the new
	// generation). Replay treats it as informational: a restarted daemon
	// rebuilds its model library independently.
	EvGenSwap = "gen_swap"
)

// TaskRef is one task inside a multi-task event (batch_admit, kill,
// requeue).
type TaskRef struct {
	Task string `json:"task"`
	App  string `json:"app,omitempty"`
	// Req is the originating request ID, Dedup the idempotency key (see
	// Event.Dedup).
	Req   string `json:"req,omitempty"`
	Dedup string `json:"dedup,omitempty"`
}

// Event is one journaled placer state transition. Seq is assigned by the
// Manager at append time: strictly monotonic, gapless within a journal,
// and the replay cursor for snapshots.
type Event struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"k"`

	// Task, App and Req identify single-task events (admit, place,
	// complete, fail).
	Task string `json:"task,omitempty"`
	App  string `json:"app,omitempty"`
	Req  string `json:"req,omitempty"`
	// Dedup is the idempotency key under which the admission was
	// registered (client-supplied request IDs double as idempotency keys;
	// empty for server-minted IDs). Replay rebuilds the dedup index from
	// it, so a client retrying a submit across a daemon crash gets its
	// original placement back instead of a duplicate.
	Dedup string `json:"dedup,omitempty"`
	// Tasks carries the group for batch_admit, kill and requeue.
	Tasks []TaskRef `json:"tasks,omitempty"`

	// Machine and Slot locate place/complete/lifecycle events (-1 when
	// not applicable — never omitted, so machine 0 is unambiguous).
	Machine int `json:"m"`
	Slot    int `json:"s"`
	// Neighbour, PredRT, PredIOPS, Gen and BG capture the placement
	// decision (place): the co-located app, the model's forecasts, the
	// deciding generation and the neighbour's characteristic vector (kept
	// for the retraining sample the completion turns into).
	Neighbour string    `json:"nb,omitempty"`
	PredRT    float64   `json:"pred_rt,omitempty"`
	PredIOPS  float64   `json:"pred_iops,omitempty"`
	Gen       uint64    `json:"gen,omitempty"`
	BG        []float64 `json:"bg,omitempty"`
	// Error carries the failure reason (fail).
	Error string `json:"err,omitempty"`
}

// String renders one event for the WAL dump tool.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d  %-11s", e.Seq, e.Kind)
	if e.Task != "" {
		fmt.Fprintf(&b, " %s", e.Task)
	}
	if e.App != "" {
		fmt.Fprintf(&b, " app=%s", e.App)
	}
	if e.Machine >= 0 {
		fmt.Fprintf(&b, " m=%d/%d", e.Machine, e.Slot)
	}
	if e.Neighbour != "" {
		fmt.Fprintf(&b, " nb=%s", e.Neighbour)
	}
	if e.Gen > 0 {
		fmt.Fprintf(&b, " gen=%d", e.Gen)
	}
	if len(e.Tasks) > 0 {
		ids := make([]string, len(e.Tasks))
		for i, t := range e.Tasks {
			ids[i] = t.Task
		}
		fmt.Fprintf(&b, " tasks=[%s]", strings.Join(ids, " "))
	}
	if e.Error != "" {
		fmt.Fprintf(&b, " err=%q", e.Error)
	}
	return b.String()
}

// SlotState is one VM of a two-VM machine in a snapshot.
type SlotState struct {
	Task string `json:"task,omitempty"`
	App  string `json:"app,omitempty"`
}

// MachineState is one machine in a snapshot.
type MachineState struct {
	State string      `json:"state"`
	Slots []SlotState `json:"slots"`
}

// PlacementState is one placement record in a snapshot. It mirrors
// serve.Placement field for field (plus the unexported idempotency key),
// kept as a neutral struct so this package stays daemon-agnostic.
type PlacementState struct {
	ID        string    `json:"id"`
	App       string    `json:"app"`
	Status    string    `json:"status"`
	Machine   int       `json:"machine"`
	Slot      int       `json:"slot"`
	Neighbour string    `json:"neighbour,omitempty"`
	PredRT    float64   `json:"pred_rt,omitempty"`
	PredIOPS  float64   `json:"pred_iops,omitempty"`
	Gen       uint64    `json:"gen,omitempty"`
	Error     string    `json:"error,omitempty"`
	Retries   int       `json:"retries,omitempty"`
	Req       string    `json:"req,omitempty"`
	Dedup     string    `json:"dedup,omitempty"`
	BG        []float64 `json:"bg,omitempty"`
}

// PlacerState is one compacted snapshot of the full serving state: the
// machine inventory, the FIFO backlog, every retained placement record
// (sorted by numeric ID for byte-stable encoding), the finished ring and
// the admission counters. Seq is the WAL sequence number the state
// includes: replay starts at Seq+1.
type PlacerState struct {
	Seq        uint64           `json:"seq"`
	NextID     int64            `json:"next_id"`
	Machines   []MachineState   `json:"machines"`
	Queue      []string         `json:"queue"`
	Done       []string         `json:"done"`
	Placements []PlacementState `json:"placements"`
	Rejected   uint64           `json:"rejected"`
}

// TaskSeq parses the numeric part of a placement ID ("t-<n>"); ok is
// false for IDs minted elsewhere.
func TaskSeq(id string) (int64, bool) {
	rest, found := strings.CutPrefix(id, "t-")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}
