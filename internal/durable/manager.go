package durable

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tracon/internal/obs"
)

// Data directory layout:
//
//	wal-<first seq, 20 digits>.wal    journal segments
//	snap-<covered seq, 20 digits>.snap  compacted snapshots
//
// The manager owns one open segment for appends. Writing a snapshot at
// sequence S rotates to a fresh segment, deletes every segment whose
// events are all <= S, and prunes snapshots beyond Options.SnapshotKeep.
// Recovery loads the newest snapshot that passes its CRC (falling back
// to older ones past a torn write), then replays every surviving event
// with Seq > S.

const (
	walPrefix  = "wal-"
	walSuffix  = ".wal"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	seqDigits  = 20
)

// Options tunes a Manager. Zero values take the documented defaults.
type Options struct {
	// Fsync is the append durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval paces FsyncInterval mode (default 50ms).
	FsyncInterval time.Duration
	// WALMaxBytes triggers the size-based snapshot signal when the live
	// segment exceeds it (default 64 MiB; negative disables).
	WALMaxBytes int64
	// SnapshotKeep bounds retained snapshots (default 2).
	SnapshotKeep int
	// Now injects the clock (defaults to the wall clock).
	Now Clock
	// FS injects the filesystem (defaults to OSFS). The deterministic
	// simulation harness passes a MemFS so crashes can be simulated
	// in-process.
	FS FS
}

// DefaultWALMaxBytes is the size-based snapshot threshold.
const DefaultWALMaxBytes = 64 << 20

// DefaultFsyncInterval paces FsyncInterval mode.
const DefaultFsyncInterval = 50 * time.Millisecond

// RecoveryInfo reports what Open found.
type RecoveryInfo struct {
	// Snapshot is the newest valid snapshot's state (nil on a cold
	// start or when every snapshot was unreadable).
	Snapshot *PlacerState
	// Events is the replay suffix: every journaled event with
	// Seq > Snapshot.Seq, in order.
	Events []Event
	// SkippedSnapshots counts snapshot files that failed their CRC (a
	// crash mid-rotation) and were passed over.
	SkippedSnapshots int
	// TornTail reports that the last segment ended in a partial frame,
	// truncated away.
	TornTail bool
	// Segments counts journal segments read.
	Segments int
}

// LastSeq returns the newest sequence number the recovered state covers.
func (r RecoveryInfo) LastSeq() uint64 {
	if n := len(r.Events); n > 0 {
		return r.Events[n-1].Seq
	}
	if r.Snapshot != nil {
		return r.Snapshot.Seq
	}
	return 0
}

// Manager owns one data directory: the live WAL segment, the snapshot
// set, and the append cursor. Append and WriteSnapshot are safe for
// concurrent use; callers that need event order to match state mutation
// order (the placer) serialize appends under their own lock.
type Manager struct {
	dir  string
	opts Options

	mu       sync.Mutex
	w        *walWriter
	lastSeq  uint64
	segStart uint64 // first seq the live segment can hold
	snapSeq  uint64 // newest snapshot's covered seq
	closed   bool

	recovery RecoveryInfo
	snapSig  chan struct{}

	// metrics; nil until AttachMetrics.
	appends    *obs.Counter
	walBytes   *obs.Counter
	fsyncHist  *obs.Histogram
	snapHist   *obs.Histogram
	snapCount  *obs.Counter
	replayedMx *obs.Gauge
}

// Open prepares dir (creating it if needed), recovers the newest valid
// snapshot plus the WAL suffix, truncates any torn tail, and returns a
// manager positioned to append the next event.
func Open(dir string, opts Options) (*Manager, error) {
	if opts.Now == nil {
		opts.Now = defaultClock
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.WALMaxBytes == 0 {
		opts.WALMaxBytes = DefaultWALMaxBytes
	}
	if opts.SnapshotKeep <= 0 {
		opts.SnapshotKeep = 2
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	m := &Manager{dir: dir, opts: opts, snapSig: make(chan struct{}, 1)}
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

// listSeqFiles returns the (seq, name) pairs for one prefix/suffix pair,
// sorted ascending by seq.
func listSeqFiles(fsys FS, dir, prefix, suffix string) ([]seqFile, error) {
	names, err := fsys.ReadDirNames(dir)
	if err != nil {
		return nil, err
	}
	var out []seqFile
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		seq, err := strconv.ParseUint(mid, 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		out = append(out, seqFile{seq: seq, name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

type seqFile struct {
	seq  uint64
	name string
}

func seqName(prefix string, seq uint64, suffix string) string {
	return fmt.Sprintf("%s%0*d%s", prefix, seqDigits, seq, suffix)
}

// recover loads the snapshot + WAL suffix and opens the live segment.
func (m *Manager) recover() error {
	snaps, err := listSeqFiles(m.opts.FS, m.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	// Newest CRC-valid snapshot wins; torn ones (a crash mid-rotation
	// can leave a bad newest file) fall back to the previous.
	for i := len(snaps) - 1; i >= 0; i-- {
		state, err := readSnapshotFS(m.opts.FS, filepath.Join(m.dir, snaps[i].name))
		if err != nil {
			if errors.Is(err, ErrCorrupt) || errors.Is(err, fs.ErrNotExist) {
				m.recovery.SkippedSnapshots++
				continue
			}
			return err
		}
		if state.Seq != snaps[i].seq {
			return fmt.Errorf("%w: snapshot %s claims seq %d", ErrCorrupt, snaps[i].name, state.Seq)
		}
		m.recovery.Snapshot = state
		m.snapSeq = state.Seq
		break
	}

	segs, err := listSeqFiles(m.opts.FS, m.dir, walPrefix, walSuffix)
	if err != nil {
		return err
	}
	var (
		lastSeq  = m.snapSeq
		lastPath string
		lastGood int64
	)
	for i, sf := range segs {
		// A segment is fully covered by the snapshot when the next
		// segment starts at or before the first sequence replay needs.
		if i+1 < len(segs) && segs[i+1].seq <= m.snapSeq+1 {
			continue
		}
		path := filepath.Join(m.dir, sf.name)
		seg, err := readWALFS(m.opts.FS, path, sf.seq)
		if err != nil {
			return fmt.Errorf("reading %s: %w", sf.name, err)
		}
		if seg.Torn && i != len(segs)-1 {
			return fmt.Errorf("%w: %s has a torn tail but is not the last segment", ErrCorrupt, sf.name)
		}
		if len(seg.Events) > 0 && lastSeq > 0 && seg.Events[0].Seq > lastSeq+1 {
			return fmt.Errorf("%w: %s starts at seq %d after seq %d", ErrBadSeq, sf.name, seg.Events[0].Seq, lastSeq)
		}
		m.recovery.Segments++
		m.recovery.TornTail = m.recovery.TornTail || seg.Torn
		for _, ev := range seg.Events {
			if ev.Seq > lastSeq {
				lastSeq = ev.Seq
			}
			if ev.Seq > m.snapSeq {
				m.recovery.Events = append(m.recovery.Events, ev)
			}
		}
		if i == len(segs)-1 {
			lastPath, lastGood = path, seg.GoodSize
		}
	}
	m.lastSeq = lastSeq

	// Open the live segment: reuse the last one (truncating a torn
	// tail) when it is usable, otherwise start fresh.
	if lastPath != "" && lastGood >= int64(len(walMagic)) {
		m.segStart = segs[len(segs)-1].seq
		m.w, err = openWALForAppend(m.opts.FS, lastPath, lastGood, m.opts.Fsync, m.opts.FsyncInterval, m.opts.Now)
		if err == nil {
			m.w.onFsync = m.observeFsync
		}
		return err
	}
	if lastPath != "" {
		// The last segment never got its header to disk; replace it.
		if err := m.opts.FS.Remove(lastPath); err != nil {
			return err
		}
	}
	return m.rotateLocked()
}

// rotateLocked opens a fresh segment starting at lastSeq+1. Callers hold
// m.mu (or are inside Open, before the manager is shared).
func (m *Manager) rotateLocked() error {
	if m.w != nil {
		if err := m.w.close(); err != nil {
			return err
		}
		m.w = nil
	}
	start := m.lastSeq + 1
	w, err := createWAL(m.opts.FS, filepath.Join(m.dir, seqName(walPrefix, start, walSuffix)), m.opts.Fsync, m.opts.FsyncInterval, m.opts.Now)
	if err != nil {
		return err
	}
	w.onFsync = m.observeFsync
	m.w = w
	m.segStart = start
	return m.opts.FS.SyncDir(m.dir)
}

// Recovery returns what Open found (valid for the manager's lifetime).
func (m *Manager) Recovery() RecoveryInfo { return m.recovery }

// LastSeq returns the newest assigned sequence number.
func (m *Manager) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeq
}

// Dir returns the data directory.
func (m *Manager) Dir() string { return m.dir }

// Fsync returns the configured append durability policy.
func (m *Manager) Fsync() FsyncPolicy { return m.opts.Fsync }

// Append journals the events as one commit point: sequence numbers are
// assigned here, the frames are written contiguously, and the fsync
// policy is applied once for the group. The assigned sequence of the
// last event is returned.
func (m *Manager) Append(evs ...Event) (uint64, error) {
	if len(evs) == 0 {
		return m.LastSeq(), nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.lastSeq, fmt.Errorf("durable: append to closed manager")
	}
	if m.w == nil {
		if err := m.rotateLocked(); err != nil {
			return m.lastSeq, err
		}
	}
	for i := range evs {
		m.lastSeq++
		evs[i].Seq = m.lastSeq
	}
	n, err := m.w.append(evs)
	if m.appends != nil {
		m.appends.Add(float64(len(evs)))
		m.walBytes.Add(float64(n))
	}
	if err != nil {
		return m.lastSeq, err
	}
	if m.opts.WALMaxBytes > 0 && m.w.size > m.opts.WALMaxBytes {
		select {
		case m.snapSig <- struct{}{}:
		default:
		}
	}
	return m.lastSeq, nil
}

// Sync forces the live segment to stable storage regardless of policy.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w == nil {
		return nil
	}
	return m.w.sync()
}

// SnapshotSignal fires when the live segment outgrows WALMaxBytes; the
// daemon's snapshot loop selects on it next to its age ticker.
func (m *Manager) SnapshotSignal() <-chan struct{} { return m.snapSig }

// WriteSnapshot persists state (whose Seq the caller stamped with the
// last sequence it includes), rotates to a fresh segment, deletes fully
// covered segments and prunes old snapshots.
func (m *Manager) WriteSnapshot(state *PlacerState) error {
	t0 := m.opts.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("durable: snapshot on closed manager")
	}
	if state.Seq > m.lastSeq {
		return fmt.Errorf("durable: snapshot claims seq %d beyond last appended %d", state.Seq, m.lastSeq)
	}
	if err := writeSnapshotFS(m.opts.FS, filepath.Join(m.dir, seqName(snapPrefix, state.Seq, snapSuffix)), state); err != nil {
		return err
	}
	m.snapSeq = state.Seq
	// An empty live segment already positioned at lastSeq+1 needs no
	// rotation — recreating the same filename would trip createWAL's
	// O_EXCL. Idle snapshot loops (age ticker, no traffic) land here.
	if m.w == nil || m.w.size > int64(len(walMagic)) || m.segStart != m.lastSeq+1 {
		if err := m.rotateLocked(); err != nil {
			return err
		}
	}
	if err := m.pruneLocked(); err != nil {
		return err
	}
	if m.snapHist != nil {
		m.snapHist.Observe(m.opts.Now().Sub(t0).Seconds())
		m.snapCount.Inc()
	}
	return nil
}

// pruneLocked deletes segments fully covered by the newest snapshot and
// snapshots beyond the keep bound.
func (m *Manager) pruneLocked() error {
	segs, err := listSeqFiles(m.opts.FS, m.dir, walPrefix, walSuffix)
	if err != nil {
		return err
	}
	for i, sf := range segs {
		if i+1 >= len(segs) || segs[i+1].seq > m.snapSeq+1 || sf.seq == m.segStart {
			continue
		}
		if err := m.opts.FS.Remove(filepath.Join(m.dir, sf.name)); err != nil {
			return err
		}
	}
	snaps, err := listSeqFiles(m.opts.FS, m.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	for i := 0; i < len(snaps)-m.opts.SnapshotKeep; i++ {
		if err := m.opts.FS.Remove(filepath.Join(m.dir, snaps[i].name)); err != nil {
			return err
		}
	}
	return m.opts.FS.SyncDir(m.dir)
}

// Close syncs and closes the live segment.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.w == nil {
		return nil
	}
	err := m.w.close()
	m.w = nil
	return err
}

// AttachMetrics registers the durability instruments on reg and seeds
// the recovery gauge; both exposition formats (JSON and Prometheus) pick
// them up through the registry.
func (m *Manager) AttachMetrics(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appends = reg.Counter("durable.wal_appends")
	m.walBytes = reg.Counter("durable.wal_bytes")
	m.fsyncHist = reg.Histogram("durable.wal_fsync_seconds", obs.DefaultLatencyBuckets())
	m.snapHist = reg.Histogram("durable.snapshot_duration_seconds", obs.DefaultLatencyBuckets())
	m.snapCount = reg.Counter("durable.snapshots")
	m.replayedMx = reg.Gauge("durable.recovery_replayed_events")
	m.replayedMx.Set(float64(len(m.recovery.Events)))
}

// observeFsync feeds the fsync-latency histogram (called from the
// writer, under m.mu).
func (m *Manager) observeFsync(d time.Duration) {
	if m.fsyncHist != nil {
		m.fsyncHist.Observe(d.Seconds())
	}
}
