package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fixedClock is a deterministic Clock for tests.
func fixedClock() Clock {
	at := time.Unix(1700000000, 0)
	return func() time.Time { return at }
}

// testEvents builds n admit-style events with consecutive seqs from 1.
func testEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Seq: uint64(i + 1), Kind: EvAdmit,
			Task: "t-" + string(rune('1'+i)), App: "sort",
			Machine: -1, Slot: -1,
		}
	}
	return evs
}

// rawWAL renders a magic header plus the framed events.
func rawWAL(t *testing.T, evs ...Event) []byte {
	t.Helper()
	buf := append([]byte{}, walMagic[:]...)
	var err error
	for _, ev := range evs {
		if buf, err = encodeFrame(buf, ev); err != nil {
			t.Fatalf("encodeFrame: %v", err)
		}
	}
	return buf
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	w, err := createWAL(OSFS{}, path, FsyncAlways, 0, fixedClock())
	if err != nil {
		t.Fatalf("createWAL: %v", err)
	}
	want := testEvents(3)
	if _, err := w.append(want); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	seg, err := ReadWALFile(path, 1)
	if err != nil {
		t.Fatalf("ReadWALFile: %v", err)
	}
	if seg.Torn {
		t.Fatal("clean segment reported torn")
	}
	if len(seg.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(seg.Events), len(want))
	}
	for i, ev := range seg.Events {
		if ev.Seq != want[i].Seq || ev.Kind != want[i].Kind || ev.Task != want[i].Task {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, ev, want[i])
		}
	}
	fi, _ := os.Stat(path)
	if seg.GoodSize != fi.Size() {
		t.Fatalf("GoodSize %d != file size %d", seg.GoodSize, fi.Size())
	}
}

func TestWALEmptyFile(t *testing.T) {
	seg, err := ReadWAL(bytes.NewReader(nil), 0)
	if err != nil {
		t.Fatalf("empty file must read cleanly, got %v", err)
	}
	if !seg.Torn || len(seg.Events) != 0 || seg.GoodSize != 0 {
		t.Fatalf("empty file: %+v", seg)
	}
}

func TestWALHeaderOnly(t *testing.T) {
	seg, err := ReadWAL(bytes.NewReader(walMagic[:]), 0)
	if err != nil {
		t.Fatalf("header-only file: %v", err)
	}
	if seg.Torn || len(seg.Events) != 0 || seg.GoodSize != int64(len(walMagic)) {
		t.Fatalf("header-only file: %+v", seg)
	}
}

func TestWALBadMagic(t *testing.T) {
	data := rawWAL(t, testEvents(1)...)
	data[0] ^= 0xff
	if _, err := ReadWAL(bytes.NewReader(data), 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: got %v, want ErrCorrupt", err)
	}
}

// TestWALTornFinalFrame cuts a log mid-way through its last frame — the
// crash-mid-write shape — and verifies the reader truncates exactly the
// tail, and that a writer reopened at GoodSize continues the chain.
func TestWALTornFinalFrame(t *testing.T) {
	evs := testEvents(3)
	full := rawWAL(t, evs...)
	twoOnly := rawWAL(t, evs[:2]...)
	for cut := len(twoOnly) + 1; cut < len(full); cut++ {
		seg, err := ReadWAL(bytes.NewReader(full[:cut]), 1)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !seg.Torn {
			t.Fatalf("cut %d: torn tail not detected", cut)
		}
		if len(seg.Events) != 2 || seg.GoodSize != int64(len(twoOnly)) {
			t.Fatalf("cut %d: got %d events, GoodSize %d", cut, len(seg.Events), seg.GoodSize)
		}
	}

	// Reopen at GoodSize and append: the tail is gone, the chain continues.
	path := filepath.Join(t.TempDir(), "seg.wal")
	cut := full[:len(full)-3]
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := openWALForAppend(OSFS{}, path, int64(len(twoOnly)), FsyncAlways, 0, fixedClock())
	if err != nil {
		t.Fatalf("openWALForAppend: %v", err)
	}
	if _, err := w.append([]Event{{Seq: 3, Kind: EvComplete, Task: "t-1", Machine: 0, Slot: 0}}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	seg, err := ReadWALFile(path, 1)
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	if seg.Torn || len(seg.Events) != 3 || seg.Events[2].Kind != EvComplete {
		t.Fatalf("after truncate+append: torn=%v events=%d", seg.Torn, len(seg.Events))
	}
}

// TestWALFlippedByteMidLog flips one payload byte of a frame that has
// valid frames after it: that is corruption, not a torn tail, and must be
// rejected — skipping it would replay a state the daemon never held.
func TestWALFlippedByteMidLog(t *testing.T) {
	evs := testEvents(3)
	data := rawWAL(t, evs...)
	firstPayload := int64(len(walMagic) + frameHeader)
	data[firstPayload+2] ^= 0x01
	_, err := ReadWAL(bytes.NewReader(data), 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log flip: got %v, want ErrCorrupt", err)
	}
}

// TestWALFlippedByteFinalFrame flips a byte in the last frame: with
// nothing after it this is indistinguishable from a torn overwrite of the
// tail, so it truncates instead of failing recovery.
func TestWALFlippedByteFinalFrame(t *testing.T) {
	evs := testEvents(3)
	data := rawWAL(t, evs...)
	twoOnly := rawWAL(t, evs[:2]...)
	data[len(data)-2] ^= 0x01
	seg, err := ReadWAL(bytes.NewReader(data), 1)
	if err != nil {
		t.Fatalf("final-frame flip: %v", err)
	}
	if !seg.Torn || len(seg.Events) != 2 || seg.GoodSize != int64(len(twoOnly)) {
		t.Fatalf("final-frame flip: torn=%v events=%d good=%d", seg.Torn, len(seg.Events), seg.GoodSize)
	}
}

func TestWALOversizedFrame(t *testing.T) {
	data := append([]byte{}, walMagic[:]...)
	data = append(data, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) // length ~4 GiB
	_, err := ReadWAL(bytes.NewReader(data), 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized frame: got %v, want ErrCorrupt", err)
	}
}

func TestWALBrokenSeqChain(t *testing.T) {
	evs := testEvents(3)
	evs[2].Seq = 5 // gap: 1, 2, 5
	data := rawWAL(t, evs...)
	_, err := ReadWAL(bytes.NewReader(data), 1)
	if !errors.Is(err, ErrBadSeq) {
		t.Fatalf("seq gap: got %v, want ErrBadSeq", err)
	}
	// firstSeq 0 infers the chain from the first frame — same gap, same
	// verdict.
	if _, err := ReadWAL(bytes.NewReader(data), 0); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("seq gap (inferred): got %v, want ErrBadSeq", err)
	}
}

func TestWALWrongFirstSeq(t *testing.T) {
	data := rawWAL(t, testEvents(2)...)
	if _, err := ReadWAL(bytes.NewReader(data), 7); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("wrong firstSeq: got %v, want ErrBadSeq", err)
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, want := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(want.String())
		if err != nil || got != want {
			t.Fatalf("round trip %v: got %v, %v", want, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	st := &PlacerState{
		Seq: 42, NextID: 7,
		Machines: []MachineState{{State: "up", Slots: []SlotState{{Task: "t-1", App: "sort"}, {}}}},
		Queue:    []string{"t-2"},
		Placements: []PlacementState{
			{ID: "t-1", App: "sort", Status: "placed", Machine: 0, Slot: 0},
			{ID: "t-2", App: "grep", Status: "queued", Machine: -1, Slot: -1},
		},
		Rejected: 3,
	}
	if err := WriteSnapshotFile(path, st); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if got.Seq != st.Seq || got.NextID != st.NextID || len(got.Placements) != 2 || got.Rejected != 3 {
		t.Fatalf("snapshot mismatch: %+v", got)
	}

	// A flipped byte anywhere makes the snapshot unreadable — typed, so
	// recovery can fall back to an older one.
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
}

func TestTaskSeq(t *testing.T) {
	for _, tc := range []struct {
		id string
		n  int64
		ok bool
	}{
		{"t-1", 1, true}, {"t-120", 120, true},
		{"x-1", 0, false}, {"t-", 0, false}, {"t-0", 0, false}, {"t--3", 0, false},
	} {
		n, ok := TaskSeq(tc.id)
		if n != tc.n || ok != tc.ok {
			t.Fatalf("TaskSeq(%q) = %d, %v", tc.id, n, ok)
		}
	}
}
