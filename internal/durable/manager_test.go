package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracon/internal/obs"
)

func testOpts() Options {
	return Options{Fsync: FsyncAlways, Now: fixedClock()}
}

// admitEv builds one appendable admit event (Seq is assigned by Append).
func admitEv(task string) Event {
	return Event{Kind: EvAdmit, Task: task, App: "sort", Machine: -1, Slot: -1}
}

func TestManagerColdStartAndReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if ri := m.Recovery(); ri.Snapshot != nil || len(ri.Events) != 0 {
		t.Fatalf("cold start recovered %+v", ri)
	}
	last, err := m.Append(admitEv("t-1"), admitEv("t-2"))
	if err != nil || last != 2 {
		t.Fatalf("Append: seq %d, %v", last, err)
	}
	if _, err := m.Append(admitEv("t-3")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	ri := m2.Recovery()
	if ri.Snapshot != nil {
		t.Fatal("no snapshot was written, but one was recovered")
	}
	if len(ri.Events) != 3 || ri.Events[0].Task != "t-1" || ri.Events[2].Task != "t-3" {
		t.Fatalf("replay events: %+v", ri.Events)
	}
	if m2.LastSeq() != 3 || ri.LastSeq() != 3 {
		t.Fatalf("LastSeq: manager %d, recovery %d", m2.LastSeq(), ri.LastSeq())
	}
	// Appends continue the chain, not restart it.
	if seq, err := m2.Append(admitEv("t-4")); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq %d, %v", seq, err)
	}
}

func TestManagerSnapshotCompactsReplay(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Append(admitEv("t-x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WriteSnapshot(&PlacerState{Seq: m.LastSeq(), NextID: 6}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Two post-snapshot events are the only replay suffix.
	m.Append(admitEv("t-6"))
	m.Append(admitEv("t-7"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	ri := m2.Recovery()
	if ri.Snapshot == nil || ri.Snapshot.Seq != 5 || ri.Snapshot.NextID != 6 {
		t.Fatalf("snapshot: %+v", ri.Snapshot)
	}
	if len(ri.Events) != 2 || ri.Events[0].Seq != 6 || ri.Events[1].Seq != 7 {
		t.Fatalf("replay suffix: %+v", ri.Events)
	}
	// The pre-snapshot segment was pruned.
	segs, _ := listSeqFiles(OSFS{}, dir, walPrefix, walSuffix)
	for _, sf := range segs {
		if sf.seq == 1 {
			t.Fatalf("segment %s should have been pruned", sf.name)
		}
	}
}

func TestManagerSnapshotPruneKeep(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SnapshotKeep = 2
	m, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 4; i++ {
		if _, err := m.Append(admitEv("t-x")); err != nil {
			t.Fatal(err)
		}
		if err := m.WriteSnapshot(&PlacerState{Seq: m.LastSeq()}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _ := listSeqFiles(OSFS{}, dir, snapPrefix, snapSuffix)
	if len(snaps) != 2 || snaps[0].seq != 3 || snaps[1].seq != 4 {
		t.Fatalf("retained snapshots: %+v", snaps)
	}
}

// TestManagerCorruptSnapshotFallback simulates a crash mid-rotation that
// leaves a newest snapshot failing its CRC: recovery must fall back to
// the previous snapshot and replay the (still unpruned) WAL suffix.
func TestManagerCorruptSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m.Append(admitEv("t-x"))
	}
	if err := m.WriteSnapshot(&PlacerState{Seq: 5, NextID: 6}); err != nil {
		t.Fatal(err)
	}
	m.Append(admitEv("t-6"))
	m.Append(admitEv("t-7"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn newest snapshot: claims to cover seq 7, fails its CRC.
	garbage := append(append([]byte{}, snapMagic[:]...), []byte("torn mid write")...)
	if err := os.WriteFile(filepath.Join(dir, seqName(snapPrefix, 7, snapSuffix)), garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer m2.Close()
	ri := m2.Recovery()
	if ri.SkippedSnapshots != 1 {
		t.Fatalf("SkippedSnapshots = %d, want 1", ri.SkippedSnapshots)
	}
	if ri.Snapshot == nil || ri.Snapshot.Seq != 5 {
		t.Fatalf("fallback snapshot: %+v", ri.Snapshot)
	}
	if len(ri.Events) != 2 || ri.Events[0].Seq != 6 {
		t.Fatalf("replay suffix after fallback: %+v", ri.Events)
	}
}

// TestManagerSnapshotSeqMismatch: a snapshot whose internal Seq disagrees
// with its filename is structural corruption, not a fallback case.
func TestManagerSnapshotSeqMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshotFile(filepath.Join(dir, seqName(snapPrefix, 10, snapSuffix)), &PlacerState{Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testOpts()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("seq mismatch: got %v, want ErrCorrupt", err)
	}
}

func TestManagerSnapshotBeyondWAL(t *testing.T) {
	m, err := Open(t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Append(admitEv("t-1"))
	if err := m.WriteSnapshot(&PlacerState{Seq: 9}); err == nil {
		t.Fatal("snapshot claiming unjournaled seq accepted")
	}
}

// TestManagerHeaderlessLastSegment: a crash between segment creation and
// the magic-header write leaves a zero-byte last segment. It must be
// replaced, not opened for append (appending would produce a magicless
// file every future recovery rejects).
func TestManagerHeaderlessLastSegment(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	m.Append(admitEv("t-1"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, seqName(walPrefix, 2, walSuffix)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen over headerless segment: %v", err)
	}
	if len(m2.Recovery().Events) != 1 {
		t.Fatalf("replay: %+v", m2.Recovery().Events)
	}
	if seq, err := m2.Append(admitEv("t-2")); err != nil || seq != 2 {
		t.Fatalf("append: seq %d, %v", seq, err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	m3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer m3.Close()
	if len(m3.Recovery().Events) != 2 {
		t.Fatalf("final replay: %+v", m3.Recovery().Events)
	}
}

// TestManagerTornTailAcrossRestart crashes "mid-append" by chopping bytes
// off the live segment, then verifies recovery truncates and resumes.
func TestManagerTornTailAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	m.Append(admitEv("t-1"))
	m.Append(admitEv("t-2"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, seqName(walPrefix, 1, walSuffix))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer m2.Close()
	ri := m2.Recovery()
	if !ri.TornTail || len(ri.Events) != 1 || ri.Events[0].Task != "t-1" {
		t.Fatalf("torn recovery: torn=%v events=%+v", ri.TornTail, ri.Events)
	}
	// The lost event's seq is reused: the chain stays gapless.
	if seq, err := m2.Append(admitEv("t-2b")); err != nil || seq != 2 {
		t.Fatalf("append after torn recovery: seq %d, %v", seq, err)
	}
}

// TestManagerIdleSnapshots: snapshotting with an empty live segment (a
// cold boot's post-recovery snapshot, an idle age-ticker loop) must not
// try to recreate the live segment's filename.
func TestManagerIdleSnapshots(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Cold start: seq 0 snapshot, twice (boot + first ticker fire).
	if err := m.WriteSnapshot(&PlacerState{Seq: 0}); err != nil {
		t.Fatalf("cold snapshot: %v", err)
	}
	if err := m.WriteSnapshot(&PlacerState{Seq: 0}); err != nil {
		t.Fatalf("repeat cold snapshot: %v", err)
	}
	m.Append(admitEv("t-1"))
	if err := m.WriteSnapshot(&PlacerState{Seq: 1}); err != nil {
		t.Fatalf("snapshot after traffic: %v", err)
	}
	// Idle loop: same seq again, live segment empty.
	if err := m.WriteSnapshot(&PlacerState{Seq: 1}); err != nil {
		t.Fatalf("idle snapshot: %v", err)
	}
	if seq, err := m.Append(admitEv("t-2")); err != nil || seq != 2 {
		t.Fatalf("append after idle snapshots: seq %d, %v", seq, err)
	}
}

func TestManagerSizeSignal(t *testing.T) {
	opts := testOpts()
	opts.WALMaxBytes = 1 // every append overflows
	m, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Append(admitEv("t-1"))
	select {
	case <-m.SnapshotSignal():
	default:
		t.Fatal("size-based snapshot signal did not fire")
	}
}

func TestManagerClosedAppend(t *testing.T) {
	m, err := Open(t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Append(admitEv("t-1")); err == nil {
		t.Fatal("append to closed manager accepted")
	}
	if err := m.WriteSnapshot(&PlacerState{}); err == nil {
		t.Fatal("snapshot on closed manager accepted")
	}
}

func TestManagerMetrics(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	m.Append(admitEv("t-1"))
	m.Close()

	m2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	reg := obs.NewRegistry()
	m2.AttachMetrics(reg)
	m2.Append(admitEv("t-2"), admitEv("t-3"))
	if got := reg.Counter("durable.wal_appends").Value(); got != 2 {
		t.Fatalf("wal_appends = %v, want 2", got)
	}
	if got := reg.Gauge("durable.recovery_replayed_events").Value(); got != 1 {
		t.Fatalf("recovery_replayed_events = %v, want 1", got)
	}
	if reg.Counter("durable.wal_bytes").Value() <= 0 {
		t.Fatal("wal_bytes not counted")
	}
}

func TestInspectDumpAndVerify(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m.Append(admitEv("t-x"))
	}
	if err := m.WriteSnapshot(&PlacerState{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Snapshots != 1 || res.LastSeq != 3 || res.Events == 0 {
		t.Fatalf("Verify result: %+v", res)
	}

	var buf bytes.Buffer
	n, err := Dump(&buf, dir)
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if n == 0 || !strings.Contains(buf.String(), EvAdmit) {
		t.Fatalf("Dump rendered %d events:\n%s", n, buf.String())
	}

	// Verify catches a flipped byte in a segment.
	segs, _ := listSeqFiles(OSFS{}, dir, walPrefix, walSuffix)
	var target string
	for _, sf := range segs {
		if sf.seq == 1 {
			target = filepath.Join(dir, sf.name)
		}
	}
	if target == "" {
		t.Fatalf("no event-bearing segment in %+v", segs)
	}
	data, _ := os.ReadFile(target)
	if len(data) > len(walMagic) {
		data[len(walMagic)+frameHeader] ^= 0x01
		os.WriteFile(target, data, 0o644)
		if _, err := Verify(target); err == nil {
			t.Fatal("Verify accepted a corrupt segment")
		}
	}
}
