package durable

import "time"

// Clock is the package's only source of wall time. Everything that needs
// a timestamp — fsync-interval pacing, metric durations — reads it
// through the Options.Now injection point, so recovery and rotation
// behavior is deterministic under a fake clock. A test in this package
// enforces that no other file calls time.Now directly.
type Clock func() time.Time

// defaultClock is the production clock. It is the single permitted
// time.Now call site in this package.
func defaultClock() time.Time { return time.Now() }
