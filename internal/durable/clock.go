package durable

import (
	"time"

	"tracon/internal/obs"
)

// Clock is the package's only source of wall time. Everything that needs
// a timestamp — fsync-interval pacing, metric durations — reads it
// through the Options.Now injection point, so recovery and rotation
// behavior is deterministic under a fake clock. A test in this package
// enforces that no other file calls time.Now directly.
//
// The type is the bare Now shape of the shared obs.Clock: pass obs.Wall's
// Now method in production (the default) or a VirtualClock's Now under
// the deterministic simulation harness.
type Clock func() time.Time

// defaultClock is the production clock, delegating to the shared
// obs.Wall clock.
var defaultClock Clock = obs.Wall.Now
