package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Offline journal inspection, shared by tracontrace's -wal-dump and
// -wal-verify modes. Both accept either a single file (one segment or
// one snapshot, by magic) or a whole data directory.

// Dump renders every record in path (file or data dir) to w,
// human-readably, and returns the number of events printed.
func Dump(w io.Writer, path string) (int, error) {
	files, err := inspectTargets(path)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, file := range files {
		kind, err := sniff(file)
		if err != nil {
			return total, err
		}
		switch kind {
		case "snapshot":
			state, err := ReadSnapshotFile(file)
			if err != nil {
				return total, fmt.Errorf("%s: %w", filepath.Base(file), err)
			}
			fmt.Fprintf(w, "%s: snapshot seq=%d machines=%d queue=%d placements=%d done=%d rejected=%d\n",
				filepath.Base(file), state.Seq, len(state.Machines), len(state.Queue), len(state.Placements), len(state.Done), state.Rejected)
		case "wal":
			seg, err := ReadWALFile(file, 0)
			if err != nil {
				return total, fmt.Errorf("%s: %w", filepath.Base(file), err)
			}
			fmt.Fprintf(w, "%s: %d events, %d good bytes%s\n",
				filepath.Base(file), len(seg.Events), seg.GoodSize, tornNote(seg.Torn))
			for _, ev := range seg.Events {
				fmt.Fprintln(w, ev.String())
				total++
			}
		}
	}
	return total, nil
}

// VerifyResult summarizes a -wal-verify pass.
type VerifyResult struct {
	Snapshots int
	Segments  int
	Events    int
	LastSeq   uint64
	TornTail  bool
}

// Verify checks every record in path (file or data dir): snapshot CRCs,
// frame CRCs, and — for a directory — the cross-segment sequence chain.
// It returns the first integrity error found.
func Verify(path string) (VerifyResult, error) {
	var res VerifyResult
	files, err := inspectTargets(path)
	if err != nil {
		return res, err
	}
	isDir := len(files) > 1 || (len(files) == 1 && files[0] != path)
	var lastSeq uint64
	for i, file := range files {
		kind, err := sniff(file)
		if err != nil {
			return res, err
		}
		switch kind {
		case "snapshot":
			state, err := ReadSnapshotFile(file)
			if err != nil {
				return res, fmt.Errorf("%s: %w", filepath.Base(file), err)
			}
			res.Snapshots++
			if state.Seq > res.LastSeq {
				res.LastSeq = state.Seq
			}
		case "wal":
			firstSeq := uint64(0)
			if isDir {
				base := filepath.Base(file)
				if fs, err := fileStartSeq(base); err == nil {
					firstSeq = fs
				}
			}
			seg, err := ReadWALFile(file, firstSeq)
			if err != nil {
				return res, fmt.Errorf("%s: %w", filepath.Base(file), err)
			}
			if seg.Torn && isDir && !lastWAL(files, i) {
				return res, fmt.Errorf("%w: %s has a torn tail but is not the last segment", ErrCorrupt, filepath.Base(file))
			}
			if isDir && len(seg.Events) > 0 && lastSeq > 0 && seg.Events[0].Seq != lastSeq+1 {
				return res, fmt.Errorf("%w: %s starts at seq %d after seq %d", ErrBadSeq, filepath.Base(file), seg.Events[0].Seq, lastSeq)
			}
			res.Segments++
			res.Events += len(seg.Events)
			res.TornTail = res.TornTail || seg.Torn
			if n := len(seg.Events); n > 0 {
				lastSeq = seg.Events[n-1].Seq
				if lastSeq > res.LastSeq {
					res.LastSeq = lastSeq
				}
			}
		}
	}
	return res, nil
}

func tornNote(torn bool) string {
	if torn {
		return " (torn tail)"
	}
	return ""
}

// inspectTargets expands path: a directory yields its snapshots (by seq)
// followed by its WAL segments (by seq); a file yields itself.
func inspectTargets(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	snaps, err := listSeqFiles(OSFS{}, path, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	segs, err := listSeqFiles(OSFS{}, path, walPrefix, walSuffix)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, sf := range snaps {
		out = append(out, filepath.Join(path, sf.name))
	}
	for _, sf := range segs {
		out = append(out, filepath.Join(path, sf.name))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("durable: no journal files in %s", path)
	}
	return out, nil
}

// sniff classifies a file by its magic header. Empty and sub-header
// files classify as WAL (a segment torn before its header).
func sniff(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return "wal", nil
	}
	if n < len(magic) {
		return "wal", nil
	}
	if magic == snapMagic {
		return "snapshot", nil
	}
	return "wal", nil
}

// fileStartSeq extracts the sequence from a wal-<seq>.wal name.
func fileStartSeq(base string) (uint64, error) {
	mid := strings.TrimSuffix(strings.TrimPrefix(base, walPrefix), walSuffix)
	var seq uint64
	_, err := fmt.Sscanf(mid, "%d", &seq)
	return seq, err
}

// lastWAL reports whether files[i] is the last WAL file in the expanded
// list (snapshots sort before segments, so this is just the last index).
func lastWAL(files []string, i int) bool {
	last := -1
	for j, f := range files {
		if strings.HasSuffix(f, walSuffix) {
			last = j
		}
	}
	return i == last
}
