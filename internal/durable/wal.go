package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// WAL file format:
//
//	magic   8 bytes  "TRCNWAL1"
//	frame*  each: length uint32 LE | crc32c uint32 LE | payload (JSON Event)
//
// The CRC covers the payload only. Frames carry strictly consecutive
// sequence numbers; the reader verifies the chain. A torn tail — the
// partial frame a crash mid-write leaves behind — is detected and
// truncated away; corruption anywhere before the tail (a flipped byte
// with intact frames after it) is rejected with ErrCorrupt, because
// silently skipping it would replay a state the daemon never held.

// Typed journal errors.
var (
	// ErrCorrupt marks mid-log corruption: a frame that fails its CRC,
	// decode or size sanity check while valid data follows it, or a file
	// with a bad magic header.
	ErrCorrupt = errors.New("durable: corrupt journal")
	// ErrBadSeq marks a broken sequence chain: an event whose Seq is not
	// its predecessor's + 1.
	ErrBadSeq = errors.New("durable: broken sequence chain")
)

var (
	walMagic  = [8]byte{'T', 'R', 'C', 'N', 'W', 'A', 'L', '1'}
	snapMagic = [8]byte{'T', 'R', 'C', 'N', 'S', 'N', 'P', '1'}
	castTable = crc32.MakeTable(crc32.Castagnoli)
)

// maxFrame bounds one frame's payload; a length field above it is read
// as corruption, not as an instruction to allocate gigabytes.
const maxFrame = 16 << 20

const frameHeader = 8 // length + crc

// FsyncPolicy selects when appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs every append before it returns.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per configured interval, checked
	// on each append.
	FsyncInterval
	// FsyncNever leaves syncing to the OS (and explicit Sync calls).
	FsyncNever
)

// String renders the policy as its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("durable: unknown fsync policy %q (want always, interval or never)", s)
}

// encodeFrame appends one framed event to buf and returns the result.
func encodeFrame(buf []byte, ev Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return buf, fmt.Errorf("durable: encoding event seq %d: %w", ev.Seq, err)
	}
	if len(payload) > maxFrame {
		return buf, fmt.Errorf("durable: event seq %d encodes to %d bytes (frame cap %d)", ev.Seq, len(payload), maxFrame)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// walWriter appends framed events to one segment file.
type walWriter struct {
	f        File
	policy   FsyncPolicy
	interval time.Duration
	now      Clock
	lastSync time.Time
	size     int64 // bytes written, including the magic header

	// onFsync reports each fsync's duration (metrics); may be nil.
	onFsync func(d time.Duration)
}

// createWAL creates a fresh segment file with its magic header synced.
func createWAL(fsys FS, path string, policy FsyncPolicy, interval time.Duration, now Clock) (*walWriter, error) {
	f, err := fsys.Create(path, true)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{
		f: f, policy: policy, interval: interval, now: now,
		lastSync: now(), size: int64(len(walMagic)),
	}, nil
}

// openWALForAppend opens an existing segment, truncates it at goodSize
// (discarding a torn tail) and positions the writer at its end.
func openWALForAppend(fsys FS, path string, goodSize int64, policy FsyncPolicy, interval time.Duration, now Clock) (*walWriter, error) {
	f, err := fsys.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(goodSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil { // make the truncation durable
		f.Close()
		return nil, err
	}
	return &walWriter{
		f: f, policy: policy, interval: interval, now: now,
		lastSync: now(), size: goodSize,
	}, nil
}

// append writes the events as one contiguous run of frames and applies
// the fsync policy once for the whole group — a multi-event commit point
// (a batch admit plus its placements) costs one sync, not one per event.
func (w *walWriter) append(evs []Event) (bytes int64, err error) {
	var buf []byte
	for _, ev := range evs {
		if buf, err = encodeFrame(buf, ev); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(buf)
	w.size += int64(n)
	if err != nil {
		return int64(n), err
	}
	switch w.policy {
	case FsyncAlways:
		err = w.sync()
	case FsyncInterval:
		if w.now().Sub(w.lastSync) >= w.interval {
			err = w.sync()
		}
	}
	return int64(len(buf)), err
}

// sync flushes to stable storage and reports the duration.
func (w *walWriter) sync() error {
	t0 := w.now()
	err := w.f.Sync()
	if w.onFsync != nil {
		w.onFsync(w.now().Sub(t0))
	}
	w.lastSync = w.now()
	return err
}

func (w *walWriter) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// WALSegment is the result of reading one segment file.
type WALSegment struct {
	// Events are the decoded frames, in order.
	Events []Event
	// GoodSize is the byte offset just past the last valid frame; a torn
	// tail lives in [GoodSize, file size).
	GoodSize int64
	// Torn reports whether a torn tail was found (and where reading
	// stopped).
	Torn bool
}

// ReadWAL decodes one segment from r. firstSeq is the sequence number the
// segment must start with (0 skips the check, inferring the chain from
// the first frame). The returned segment's Torn flag marks a partial
// final frame — the caller decides whether that is acceptable (last
// segment) or mid-log corruption (any earlier segment).
func ReadWAL(r io.Reader, firstSeq uint64) (WALSegment, error) {
	var seg WALSegment
	data, err := io.ReadAll(r)
	if err != nil {
		return seg, err
	}
	if len(data) == 0 {
		// Zero bytes: a segment created but not yet through its header
		// write. Valid and empty; the tail (the header) is re-written.
		seg.Torn = true
		return seg, nil
	}
	if len(data) < len(walMagic) {
		seg.Torn = true // torn header
		return seg, nil
	}
	if [8]byte(data[:8]) != walMagic {
		return seg, fmt.Errorf("%w: bad magic header", ErrCorrupt)
	}
	off := int64(len(walMagic))
	seg.GoodSize = off
	expect := firstSeq
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return seg, nil
		}
		if len(rest) < frameHeader {
			seg.Torn = true
			return seg, nil
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxFrame {
			return seg, fmt.Errorf("%w: frame at offset %d claims %d bytes", ErrCorrupt, off, length)
		}
		if int64(len(rest)) < frameHeader+int64(length) {
			seg.Torn = true // payload cut short by the crash
			return seg, nil
		}
		payload := rest[frameHeader : frameHeader+int64(length)]
		frameEnd := off + frameHeader + int64(length)
		if crc32.Checksum(payload, castTable) != crc {
			if frameEnd == int64(len(data)) {
				// The final frame's payload is complete but fails its CRC:
				// a torn overwrite of the tail. Truncate it.
				seg.Torn = true
				return seg, nil
			}
			return seg, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return seg, fmt.Errorf("%w: undecodable frame at offset %d: %v", ErrCorrupt, off, err)
		}
		if expect != 0 && ev.Seq != expect {
			return seg, fmt.Errorf("%w: got seq %d at offset %d, want %d", ErrBadSeq, ev.Seq, off, expect)
		}
		expect = ev.Seq + 1
		seg.Events = append(seg.Events, ev)
		seg.GoodSize = frameEnd
		off = frameEnd
	}
}

// ReadWALFile reads one segment file from the OS filesystem.
func ReadWALFile(path string, firstSeq uint64) (WALSegment, error) {
	return readWALFS(OSFS{}, path, firstSeq)
}

// readWALFS reads one segment file through an injected FS.
func readWALFS(fsys FS, path string, firstSeq uint64) (WALSegment, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return WALSegment{}, err
	}
	defer f.Close()
	return ReadWAL(f, firstSeq)
}
