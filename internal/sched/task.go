// Package sched implements TRACON's interference-aware schedulers
// (Sec. 3.2): FIFO (the paper's baseline), MIOS (minimum interference
// online scheduler, Algorithm 1), MIBS (minimum interference batch
// scheduler, Algorithm 2) and MIX (Algorithm 3), each in a runtime-
// minimizing and a throughput-maximizing variant.
//
// Schedulers are pure decision procedures: given a batch of queued tasks
// and the pool of free VMs (summarized by the application occupying each
// candidate machine's other VM), they emit placements. The discrete-event
// simulator in internal/sim executes placements and maintains the pool.
package sched

import "fmt"

// Task is one unit of work: an instance of a profiled application.
type Task struct {
	// ID is unique per simulation.
	ID int64
	// App is the application (base benchmark name) the task runs.
	App string
	// Arrival is the task's arrival time in seconds.
	Arrival float64
	// DependsOn lists task IDs that must complete before this task may be
	// scheduled — the edges of a data-intensive scientific workflow DAG.
	// Nil for independent tasks (the paper's evaluation scenarios).
	DependsOn []int64
}

// EmptyCategory is the free-pool category of VMs whose machine is fully
// idle.
const EmptyCategory = ""

// AnyCategory instructs the executor to take the lowest-indexed free VM
// regardless of its neighbour — the FIFO baseline's behaviour.
const AnyCategory = "*"

// Placement is a scheduling decision: run the task on a free VM whose
// co-resident application is Category (EmptyCategory for an idle machine,
// AnyCategory for "next free VM in index order").
type Placement struct {
	Task     Task
	Category string
}

// Objective selects what the interference-aware schedulers optimize:
// the paper's MIBS_RT minimizes total runtime, MIBS_IO maximizes total
// IOPS.
type Objective int

// The two objectives.
const (
	MinRuntime Objective = iota
	MaxIOPS
)

// String returns the paper's subscript for the objective.
func (o Objective) String() string {
	if o == MinRuntime {
		return "RT"
	}
	return "IO"
}

// Load describes cluster pressure at scheduling time; the scorers use it
// to decide how much an idle machine's future neighbour should weigh.
type Load struct {
	// TotalSlots is the cluster's VM count.
	TotalSlots int
	// Queued is the backlog length, including the batch being scheduled.
	Queued int
}

// Fraction estimates the cluster's effective load in [0,1]: occupied slots
// plus waiting tasks, over capacity.
func (l Load) Fraction(counts Counts) float64 {
	if l.TotalSlots <= 0 {
		return 1
	}
	occupied := l.TotalSlots - counts.Total()
	f := (float64(occupied) + float64(l.Queued)) / float64(l.TotalSlots)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Scheduler is a TRACON scheduling policy.
type Scheduler interface {
	// Name returns the policy label used in figures, e.g. "MIBS8".
	Name() string
	// BatchSize is the scheduling queue length (1 for online policies).
	BatchSize() int
	// Schedule decides placements for the batch given the free-pool
	// category counts and the cluster load. Implementations treat counts
	// as scratch space (callers pass a private copy) and may leave tasks
	// unplaced when no free VM remains; unplaced tasks stay queued.
	Schedule(batch []Task, counts Counts, load Load) ([]Placement, error)
}

// Counts summarizes the free pool: how many free VMs exist per co-resident
// application category.
type Counts map[string]int

// Clone copies the counts.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Total returns the number of free VMs.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// take consumes one free VM of the category and updates the bookkeeping
// for a two-VM machine: placing app onto an empty machine converts that
// machine's other free slot into an app-neighboured slot; placing onto a
// half-full machine removes its last free slot.
func (c Counts) take(category, app string) error {
	if c[category] <= 0 {
		return fmt.Errorf("sched: no free VM with neighbour %q", category)
	}
	if category == EmptyCategory {
		// An idle machine holds two free slots in the empty category.
		c[EmptyCategory] -= 2
		if c[EmptyCategory] < 0 {
			return fmt.Errorf("sched: empty-category underflow")
		}
		c[app]++
	} else {
		c[category]--
	}
	return nil
}
