package sched

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestFreePoolRefreeDoesNotJumpFIFOQueue is the regression test for the
// global-heap staleness bug: a slot that is freed, recategorized, made busy
// and freed again used to retain an older global entry with a smaller
// freed-order stamp, so it popped before slots that had been free longer —
// breaking the documented FIFO-over-VMs spreading.
func TestFreePoolRefreeDoesNotJumpFIFOQueue(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 0, EmptyCategory) // freed first
	p.SetFree(0, 0, "x")           // recategorized (keeps its FIFO position)
	p.SetBusy(0, 0)
	p.SetFree(1, 0, EmptyCategory) // now the longest-free slot
	p.SetFree(0, 0, EmptyCategory) // refreed: must queue behind (1,0)

	m, s, err := p.Pop(AnyCategory)
	if err != nil || m != 1 || s != 0 {
		t.Fatalf("Pop(Any) = %d,%d,%v; want 1,0 (the longest-free slot)", m, s, err)
	}
	m, s, err = p.Pop(AnyCategory)
	if err != nil || m != 0 || s != 0 {
		t.Fatalf("Pop(Any) = %d,%d,%v; want 0,0 (the refreed slot)", m, s, err)
	}
}

// TestFreePoolRecategorizeKeepsFIFOPosition: changing a free slot's
// neighbour category must not move it in the FIFO-over-VMs queue.
func TestFreePoolRecategorizeKeepsFIFOPosition(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 0, EmptyCategory) // freed first
	p.SetFree(1, 0, EmptyCategory) // freed second
	p.SetFree(0, 0, "io")          // recategorized, still the oldest
	m, s, err := p.Pop(AnyCategory)
	if err != nil || m != 0 || s != 0 {
		t.Fatalf("Pop(Any) = %d,%d,%v; want 0,0 (recategorization kept it oldest)", m, s, err)
	}
}

// TestFreePoolHeapsStayBounded drives many free/recategorize/busy cycles
// (the access pattern of a long DropRecords run that schedules by category
// and rarely pops the global heap) and asserts heap garbage is compacted
// instead of growing without bound.
func TestFreePoolHeapsStayBounded(t *testing.T) {
	p := NewFreePool()
	const cycles = 50000
	for i := 0; i < cycles; i++ {
		m, s := i%4, (i/4)%2
		p.SetFree(m, s, EmptyCategory)
		p.SetFree(m, s, "x") // recategorization → category-heap garbage
		p.SetBusy(m, s)      // → global-heap garbage
	}
	st := p.Stats()
	// After compaction a heap holds at most its live entries; between
	// compactions it can grow back to the trigger threshold.
	bound := 2*compactMinLen + 16
	if st.GlobalHeapLen > bound {
		t.Fatalf("global heap grew to %d entries over %d cycles (bound %d)", st.GlobalHeapLen, cycles, bound)
	}
	if st.CategoryHeapLen > 2*bound {
		t.Fatalf("category heaps grew to %d entries over %d cycles (bound %d)", st.CategoryHeapLen, cycles, 2*bound)
	}
	if st.FreeSlots != 0 {
		t.Fatalf("FreeSlots = %d, want 0", st.FreeSlots)
	}
}

// refPool is the naive reference implementation of the FreePool contract:
// a flat map of slot states with linear scans. Pop(AnyCategory) takes the
// slot freed the longest ago (FIFO over VMs, index tie-break); category
// pops take the lowest-indexed matching slot.
type refPool struct {
	free  map[[2]int]refSlot
	clock int64
}

type refSlot struct {
	category string
	freedAt  int64
}

func newRefPool() *refPool { return &refPool{free: map[[2]int]refSlot{}} }

func (r *refPool) SetFree(m, s int, category string) {
	key := [2]int{m, s}
	if st, ok := r.free[key]; ok {
		st.category = category
		r.free[key] = st
		return
	}
	r.clock++
	r.free[key] = refSlot{category: category, freedAt: r.clock}
}

func (r *refPool) SetBusy(m, s int) { delete(r.free, [2]int{m, s}) }

func (r *refPool) Counts() Counts {
	out := Counts{}
	for _, st := range r.free {
		out[st.category]++
	}
	return out
}

func (r *refPool) Pop(category string) (int, int, error) {
	bestKey := [2]int{-1, -1}
	found := false
	var bestFreed int64
	for key, st := range r.free {
		if category == AnyCategory {
			if !found || st.freedAt < bestFreed ||
				(st.freedAt == bestFreed && (key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]))) {
				bestKey, bestFreed, found = key, st.freedAt, true
			}
			continue
		}
		if st.category != category {
			continue
		}
		if !found || key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
			bestKey, found = key, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("ref: no free VM")
	}
	delete(r.free, bestKey)
	return bestKey[0], bestKey[1], nil
}

// oldestFree mirrors FreePool.OldestFree on the reference: the slot freed
// the longest ago, index tie-break.
func (r *refPool) oldestFree() (int, int, bool) {
	bestKey := [2]int{-1, -1}
	found := false
	var bestFreed int64
	for key, st := range r.free {
		if !found || st.freedAt < bestFreed ||
			(st.freedAt == bestFreed && (key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]))) {
			bestKey, bestFreed, found = key, st.freedAt, true
		}
	}
	return bestKey[0], bestKey[1], found
}

// TestFreePoolMatchesReferenceRandomized drives FreePool and the naive
// reference through identical random SetFree/SetBusy/Pop sequences and
// requires identical observable behaviour at every step. Fast enough for
// the -race short pass.
func TestFreePoolMatchesReferenceRandomized(t *testing.T) {
	categories := []string{EmptyCategory, "io", "cpu", "mid"}
	for _, seed := range []int64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewSource(seed))
		p := NewFreePool()
		ref := newRefPool()
		const machines, slots = 5, 2
		for op := 0; op < 4000; op++ {
			m, s := rng.Intn(machines), rng.Intn(slots)
			switch rng.Intn(4) {
			case 0, 1:
				cat := categories[rng.Intn(len(categories))]
				// SetFree on the real pool is only legal for busy or free
				// slots alike, but SetBusy/SetFree mirror each other.
				p.SetFree(m, s, cat)
				ref.SetFree(m, s, cat)
			case 2:
				p.SetBusy(m, s)
				ref.SetBusy(m, s)
			case 3:
				cat := AnyCategory
				if rng.Intn(2) == 0 {
					cat = categories[rng.Intn(len(categories))]
				}
				gm, gs, gerr := p.Pop(cat)
				wm, ws, werr := ref.Pop(cat)
				if (gerr != nil) != (werr != nil) {
					t.Fatalf("seed %d op %d Pop(%q): err %v vs reference %v", seed, op, cat, gerr, werr)
				}
				if gerr == nil && (gm != wm || gs != ws) {
					t.Fatalf("seed %d op %d Pop(%q) = %d,%d; reference %d,%d", seed, op, cat, gm, gs, wm, ws)
				}
			}
			got, want := p.Counts(), ref.Counts()
			for c, n := range want {
				if n == 0 {
					delete(want, c)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d op %d counts %v vs reference %v", seed, op, got, want)
			}
			for c, n := range want {
				if got[c] != n {
					t.Fatalf("seed %d op %d counts %v vs reference %v", seed, op, got, want)
				}
			}
			if p.FreeSlots() != len(ref.free) {
				t.Fatalf("seed %d op %d FreeSlots %d vs reference %d", seed, op, p.FreeSlots(), len(ref.free))
			}
		}
	}
}

// TestFreePoolCrashRecoverMatchesReference adds the fault-injection
// lifecycle to the randomized reference check: machine crashes (both slots
// forced busy at once, as the engine evacuates a downed machine) and
// recoveries (both slots freed Empty-category). A crash-evicted slot that
// recovers must re-enter the FIFO at a fresh generation — it becomes the
// NEWEST free slot, never inheriting its pre-crash position — which the
// OldestFree cross-check after every operation verifies.
func TestFreePoolCrashRecoverMatchesReference(t *testing.T) {
	categories := []string{EmptyCategory, "io", "cpu", "mid"}
	for _, seed := range []int64{3, 11, 99, 4242} {
		rng := rand.New(rand.NewSource(seed))
		p := NewFreePool()
		ref := newRefPool()
		const machines, slots = 5, 2
		for op := 0; op < 4000; op++ {
			m, s := rng.Intn(machines), rng.Intn(slots)
			switch rng.Intn(6) {
			case 0, 1:
				cat := categories[rng.Intn(len(categories))]
				p.SetFree(m, s, cat)
				ref.SetFree(m, s, cat)
			case 2:
				p.SetBusy(m, s)
				ref.SetBusy(m, s)
			case 3:
				cat := AnyCategory
				if rng.Intn(2) == 0 {
					cat = categories[rng.Intn(len(categories))]
				}
				gm, gs, gerr := p.Pop(cat)
				wm, ws, werr := ref.Pop(cat)
				if (gerr != nil) != (werr != nil) {
					t.Fatalf("seed %d op %d Pop(%q): err %v vs reference %v", seed, op, cat, gerr, werr)
				}
				if gerr == nil && (gm != wm || gs != ws) {
					t.Fatalf("seed %d op %d Pop(%q) = %d,%d; reference %d,%d", seed, op, cat, gm, gs, wm, ws)
				}
			case 4:
				// Crash: the engine force-busies every slot of the machine
				// (SetBusy is a no-op on slots already handed out).
				for cs := 0; cs < slots; cs++ {
					p.SetBusy(m, cs)
					ref.SetBusy(m, cs)
				}
			case 5:
				// Recovery: both slots return empty-category, stamped as the
				// newest entries in freed order.
				for cs := 0; cs < slots; cs++ {
					p.SetFree(m, cs, EmptyCategory)
					ref.SetFree(m, cs, EmptyCategory)
				}
			}
			gm, gs, gok := p.OldestFree()
			wm, ws, wok := ref.oldestFree()
			if gok != wok || (gok && (gm != wm || gs != ws)) {
				t.Fatalf("seed %d op %d OldestFree = %d,%d,%v; reference %d,%d,%v",
					seed, op, gm, gs, gok, wm, ws, wok)
			}
			if p.FreeSlots() != len(ref.free) {
				t.Fatalf("seed %d op %d FreeSlots %d vs reference %d", seed, op, p.FreeSlots(), len(ref.free))
			}
		}
	}
}
