package sched

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// fakePred is a deterministic Predictor with a hand-built interference
// matrix: "cpu" and "io" barely interfere with each other, while io+io is
// catastrophic and cpu+cpu doubles runtime.
type fakePred struct{}

var fakeRT = map[[2]string]float64{
	{"cpu", ""}:    100,
	{"io", ""}:     100,
	{"cpu", "cpu"}: 200,
	{"cpu", "io"}:  110,
	{"io", "cpu"}:  105,
	{"io", "io"}:   1000,
	{"mid", ""}:    100,
	{"mid", "mid"}: 300,
	{"mid", "cpu"}: 150,
	{"cpu", "mid"}: 150,
	{"mid", "io"}:  200,
	{"io", "mid"}:  200,
}

func (fakePred) PredictRuntime(target, corunner string) (float64, error) {
	v, ok := fakeRT[[2]string{target, corunner}]
	if !ok {
		return 0, fmt.Errorf("no entry for %q vs %q", target, corunner)
	}
	return v, nil
}

func (fakePred) PredictIOPS(target, corunner string) (float64, error) {
	rt, err := fakePred{}.PredictRuntime(target, corunner)
	if err != nil {
		return 0, err
	}
	return 100 * 100 / rt, nil // IOPS inversely proportional to runtime
}

func (fakePred) SoloRuntime(target string) (float64, error) { return 100, nil }
func (fakePred) SoloIOPS(target string) (float64, error)    { return 100, nil }
func (fakePred) Apps() []string                             { return []string{"cpu", "io", "mid"} }

func newScorer(obj Objective) *Scorer { return NewScorer(fakePred{}, obj) }

func tasks(apps ...string) []Task {
	out := make([]Task, len(apps))
	for i, a := range apps {
		out[i] = Task{ID: int64(i), App: a}
	}
	return out
}

func TestCountsTake(t *testing.T) {
	c := Counts{EmptyCategory: 4, "cpu": 1}
	if err := c.take("cpu", "io"); err != nil {
		t.Fatal(err)
	}
	if c["cpu"] != 0 {
		t.Fatalf("cpu count = %d", c["cpu"])
	}
	if err := c.take(EmptyCategory, "io"); err != nil {
		t.Fatal(err)
	}
	if c[EmptyCategory] != 2 || c["io"] != 1 {
		t.Fatalf("counts after empty take: %v", c)
	}
	if err := c.take("nope", "x"); err == nil {
		t.Fatal("take from empty category succeeded")
	}
}

func TestCountsTotalAndClone(t *testing.T) {
	c := Counts{EmptyCategory: 2, "a": 3}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
	d := c.Clone()
	d["a"] = 0
	if c["a"] != 3 {
		t.Fatal("Clone aliases original")
	}
}

func TestScorerPrefersCompatibleNeighbour(t *testing.T) {
	s := newScorer(MinRuntime)
	ioVsCPU, err := s.PlacementScore("io", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	ioVsIO, err := s.PlacementScore("io", "io")
	if err != nil {
		t.Fatal(err)
	}
	if ioVsCPU >= ioVsIO {
		t.Fatalf("io next to cpu (%v) must beat io next to io (%v)", ioVsCPU, ioVsIO)
	}
	empty, err := s.PlacementScore("io", EmptyCategory)
	if err != nil {
		t.Fatal(err)
	}
	if empty >= ioVsCPU {
		t.Fatalf("empty machine (%v) must beat any pairing (%v)", empty, ioVsCPU)
	}
}

func TestScorerIOPSObjectiveSign(t *testing.T) {
	s := newScorer(MaxIOPS)
	good, err := s.PlacementScore("io", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.PlacementScore("io", "io")
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Fatalf("IOPS objective inverted: %v vs %v", good, bad)
	}
}

func TestScorerUnknownAppErrors(t *testing.T) {
	s := newScorer(MinRuntime)
	if _, err := s.PlacementScore("nope", "cpu"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestMIOSAvoidsBadPairing(t *testing.T) {
	s := newScorer(MinRuntime)
	m := &MIOS{Scorer: s}
	// One io-neighboured slot and one cpu-neighboured slot: an io task must
	// pick the cpu neighbour.
	counts := Counts{"io": 1, "cpu": 1}
	pl, err := m.Schedule(tasks("io"), counts, Load{TotalSlots: 4, Queued: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 || pl[0].Category != "cpu" {
		t.Fatalf("placement = %+v", pl)
	}
}

func TestMIOSPrefersEmptyMachineAtLowLoad(t *testing.T) {
	// In a nearly idle cluster the expected future neighbour is negligible,
	// so an idle machine beats sharing with a cpu hog.
	s := newScorer(MinRuntime)
	m := &MIOS{Scorer: s}
	counts := Counts{EmptyCategory: 98, "cpu": 1}
	pl, err := m.Schedule(tasks("cpu"), counts, Load{TotalSlots: 100, Queued: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl[0].Category != EmptyCategory {
		t.Fatalf("placement = %+v", pl)
	}
}

func TestMIOSPairsUnderFullLoad(t *testing.T) {
	// When the queue will certainly fill every slot, an io task should take
	// the cpu-neighboured slot rather than an empty machine that a future
	// io task would share.
	s := newScorer(MinRuntime)
	m := &MIOS{Scorer: s}
	counts := Counts{EmptyCategory: 2, "cpu": 1}
	pl, err := m.Schedule(tasks("io"), counts, Load{TotalSlots: 4, Queued: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pl[0].Category != "cpu" {
		t.Fatalf("placement = %+v", pl)
	}
}

func TestMIOSLeavesTasksWhenFull(t *testing.T) {
	s := newScorer(MinRuntime)
	m := &MIOS{Scorer: s}
	pl, err := m.Schedule(tasks("io", "cpu", "io"), Counts{"cpu": 1}, Load{TotalSlots: 4, Queued: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 {
		t.Fatalf("placed %d tasks on 1 slot", len(pl))
	}
}

func TestFIFOPlacesInOrder(t *testing.T) {
	pl, err := FIFO{}.Schedule(tasks("io", "io", "cpu"), Counts{EmptyCategory: 4}, Load{TotalSlots: 4, Queued: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 3 {
		t.Fatalf("placed %d", len(pl))
	}
	for i, p := range pl {
		if p.Category != AnyCategory {
			t.Fatalf("FIFO placement %d category %q", i, p.Category)
		}
		if p.Task.ID != int64(i) {
			t.Fatal("FIFO out of order")
		}
	}
}

func TestMIBSPairsCompatibleTasks(t *testing.T) {
	s := newScorer(MinRuntime)
	m := &MIBS{Scorer: s, QueueLen: 4}
	// Two empty machines (4 slots). Queue: io, io, cpu, cpu.
	// MIBS should pair io with cpu, not io with io.
	counts := Counts{EmptyCategory: 4}
	pl, err := m.Schedule(tasks("io", "io", "cpu", "cpu"), counts, Load{TotalSlots: 4, Queued: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 4 {
		t.Fatalf("placed %d of 4", len(pl))
	}
	// The Min-Min head opens an empty machine and gets the compatible
	// companion committed beside it; critically, no io task ever lands next
	// to another io task (FIFO would do exactly that here).
	if pl[0].Category != EmptyCategory {
		t.Fatalf("pl[0] = %+v", pl[0])
	}
	if pl[1].Task.App == pl[0].Task.App {
		t.Fatalf("companion %+v duplicates the head %+v", pl[1], pl[0])
	}
	for _, p := range pl {
		if p.Task.App == "io" && p.Category == "io" {
			t.Fatalf("io task co-located with io: %+v", p)
		}
	}
}

func TestMIBSWorksWithOddQueue(t *testing.T) {
	s := newScorer(MinRuntime)
	m := &MIBS{Scorer: s, QueueLen: 3}
	counts := Counts{EmptyCategory: 6}
	pl, err := m.Schedule(tasks("io", "cpu", "io"), counts, Load{TotalSlots: 6, Queued: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 3 {
		t.Fatalf("placed %d of 3", len(pl))
	}
}

func TestMIBSStopsWhenClusterFull(t *testing.T) {
	s := newScorer(MinRuntime)
	m := &MIBS{Scorer: s, QueueLen: 8}
	pl, err := m.Schedule(tasks("io", "cpu", "io", "cpu"), Counts{EmptyCategory: 2}, Load{TotalSlots: 2, Queued: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 2 {
		t.Fatalf("placed %d on a 2-slot cluster", len(pl))
	}
}

func TestMIXAtLeastAsGoodAsMIBS(t *testing.T) {
	// With a queue whose head is adversarial for MIBS, MIX's rotation must
	// find an assignment whose predicted total is no worse.
	for _, queue := range [][]string{
		{"io", "io", "cpu", "cpu"},
		{"io", "io", "io", "cpu"},
		{"mid", "io", "cpu", "io"},
		{"cpu", "mid", "mid", "io"},
	} {
		s := newScorer(MinRuntime)
		mibs := &MIBS{Scorer: s, QueueLen: 4}
		mix := &MIX{Scorer: s, QueueLen: 4}
		counts := Counts{EmptyCategory: 4}

		plB, err := mibs.Schedule(tasks(queue...), counts.Clone(), Load{TotalSlots: 4, Queued: 4})
		if err != nil {
			t.Fatal(err)
		}
		plX, err := mix.Schedule(tasks(queue...), counts.Clone(), Load{TotalSlots: 4, Queued: 4})
		if err != nil {
			t.Fatal(err)
		}
		scB, err := mix.totalScore(plB)
		if err != nil {
			t.Fatal(err)
		}
		scX, err := mix.totalScore(plX)
		if err != nil {
			t.Fatal(err)
		}
		if scX > scB+1e-9 {
			t.Fatalf("queue %v: MIX score %v worse than MIBS %v", queue, scX, scB)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	s := newScorer(MinRuntime)
	cases := map[string]Scheduler{
		"FIFO":     FIFO{},
		"MIOSRT":   &MIOS{Scorer: s},
		"MIBS8-RT": &MIBS{Scorer: s, QueueLen: 8},
		"MIX4-RT":  &MIX{Scorer: s, QueueLen: 4},
	}
	for want, sch := range cases {
		if got := sch.Name(); got != want {
			t.Errorf("Name = %q want %q", got, want)
		}
	}
	io := NewScorer(fakePred{}, MaxIOPS)
	if got := (&MIBS{Scorer: io, QueueLen: 2}).Name(); got != "MIBS2-IO" {
		t.Errorf("Name = %q", got)
	}
}

func TestFreePoolPopOrderAndCategories(t *testing.T) {
	p := NewFreePool()
	p.SetFree(3, 0, EmptyCategory)
	p.SetFree(3, 1, EmptyCategory)
	p.SetFree(1, 1, "cpu")
	p.SetFree(2, 0, "io")

	if got := p.Counts(); got[EmptyCategory] != 2 || got["cpu"] != 1 || got["io"] != 1 {
		t.Fatalf("counts = %v", got)
	}
	// AnyCategory is FIFO over VMs: (3,0) was freed first.
	m, sl, err := p.Pop(AnyCategory)
	if err != nil || m != 3 || sl != 0 {
		t.Fatalf("Pop(Any) = %d,%d,%v", m, sl, err)
	}
	// Category pop takes the lowest-indexed slot within the category.
	m, sl, err = p.Pop(EmptyCategory)
	if err != nil || m != 3 || sl != 1 {
		t.Fatalf("Pop(empty) = %d,%d,%v", m, sl, err)
	}
	if _, _, err := p.Pop("io"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Pop("cpu"); err != nil {
		t.Fatal(err)
	}
	// Everything is consumed now.
	if _, _, err := p.Pop(AnyCategory); err == nil {
		t.Fatal("popped from empty pool")
	}
}

func TestFreePoolRecategorize(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 1, "io")
	p.SetFree(0, 1, "cpu") // neighbour changed
	if got := p.Counts(); got["io"] != 0 || got["cpu"] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if _, _, err := p.Pop("io"); err == nil {
		t.Fatal("stale category pop succeeded")
	}
	m, sl, err := p.Pop("cpu")
	if err != nil || m != 0 || sl != 1 {
		t.Fatalf("Pop = %d,%d,%v", m, sl, err)
	}
}

func TestFreePoolSetBusyIdempotent(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 0, EmptyCategory)
	p.SetBusy(0, 0)
	p.SetBusy(0, 0)
	if p.FreeSlots() != 0 {
		t.Fatalf("FreeSlots = %d", p.FreeSlots())
	}
	if _, ok := p.Category(0, 0); ok {
		t.Fatal("busy slot still categorized")
	}
}

func TestFreePoolDuplicateSetFreeSameCategory(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 0, "cpu")
	p.SetFree(0, 0, "cpu")
	if got := p.Counts()["cpu"]; got != 1 {
		t.Fatalf("duplicate SetFree inflated count to %d", got)
	}
}

func TestPlacementsAreExecutable(t *testing.T) {
	// Whatever a scheduler returns must be executable against a real pool
	// holding the same counts.
	s := newScorer(MinRuntime)
	for _, sch := range []Scheduler{FIFO{}, &MIOS{Scorer: s}, &MIBS{Scorer: s, QueueLen: 4}, &MIX{Scorer: s, QueueLen: 4}} {
		p := NewFreePool()
		p.SetFree(0, 0, EmptyCategory)
		p.SetFree(0, 1, EmptyCategory)
		p.SetFree(1, 0, "cpu")
		p.SetFree(2, 1, "io")
		pl, err := sch.Schedule(tasks("io", "cpu", "mid"), p.Counts(), Load{TotalSlots: 8, Queued: 3})
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		used := map[string]bool{}
		for _, place := range pl {
			m, sl, err := p.Pop(place.Category)
			if err != nil {
				t.Fatalf("%s: unexecutable placement %+v: %v", sch.Name(), place, err)
			}
			key := fmt.Sprintf("%d/%d", m, sl)
			if used[key] {
				t.Fatalf("%s: slot %s assigned twice", sch.Name(), key)
			}
			used[key] = true
			// Executing a placement onto an empty machine recategorizes the
			// sibling slot, as the engine would.
			if place.Category == EmptyCategory {
				sibling := 1 - sl
				if _, ok := p.Category(m, sibling); ok {
					p.SetFree(m, sibling, place.Task.App)
				}
			}
		}
	}
}

func TestSortedCategoriesDeterministic(t *testing.T) {
	c := Counts{"b": 1, EmptyCategory: 2, "a": 1}
	got := sortedCategories(c)
	want := []string{EmptyCategory, "a", "b"}
	if !sort.StringsAreSorted(got) || len(got) != 3 || got[0] != want[0] {
		t.Fatalf("sortedCategories = %v", got)
	}
}

func TestLoadFraction(t *testing.T) {
	counts := Counts{EmptyCategory: 4} // 4 free of 8 → 4 occupied
	l := Load{TotalSlots: 8, Queued: 2}
	if got := l.Fraction(counts); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Fraction = %v want 0.75", got)
	}
	// Saturates at 1.
	if got := (Load{TotalSlots: 8, Queued: 100}).Fraction(counts); got != 1 {
		t.Fatalf("Fraction = %v want 1", got)
	}
	// Degenerate cluster counts as fully loaded.
	if got := (Load{}).Fraction(counts); got != 1 {
		t.Fatalf("Fraction = %v want 1", got)
	}
}

func TestMIXForcedRotationBeatsDegenerateHead(t *testing.T) {
	// A situation where Min-Min's head choice is fine but MIX must at least
	// match MIBS on every queue permutation.
	s := newScorer(MinRuntime)
	for _, perm := range [][]string{
		{"io", "cpu", "io", "cpu"},
		{"cpu", "cpu", "io", "io"},
		{"io", "io", "cpu", "cpu"},
	} {
		mibs := &MIBS{Scorer: s, QueueLen: 4}
		mix := &MIX{Scorer: s, QueueLen: 4}
		load := Load{TotalSlots: 4, Queued: 4}
		plB, err := mibs.Schedule(tasks(perm...), Counts{EmptyCategory: 4}, load)
		if err != nil {
			t.Fatal(err)
		}
		plX, err := mix.Schedule(tasks(perm...), Counts{EmptyCategory: 4}, load)
		if err != nil {
			t.Fatal(err)
		}
		scB, err := mix.totalScore(plB)
		if err != nil {
			t.Fatal(err)
		}
		scX, err := mix.totalScore(plX)
		if err != nil {
			t.Fatal(err)
		}
		if scX > scB+1e-9 {
			t.Fatalf("perm %v: MIX %v worse than MIBS %v", perm, scX, scB)
		}
	}
}

func TestPairScorePhaseAwareness(t *testing.T) {
	// pair(io, io): both predicted at 1000 from solos of 100 → they crawl
	// together and finish together: total 2000, extra 1800.
	s := newScorer(MinRuntime)
	got, err := s.PairScore("io", "io")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1800) > 1e-9 {
		t.Fatalf("PairScore(io,io) = %v want 1800", got)
	}
	// pair(io, cpu): io paired 105, cpu paired 110. io finishes at 105;
	// cpu then has 100·(1−105/110) ≈ 4.55 left → total ≈ 105+109.55,
	// extra ≈ 14.55.
	got, err = s.PairScore("io", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-14.545454545454547) > 1e-6 {
		t.Fatalf("PairScore(io,cpu) = %v", got)
	}
	// Symmetry and caching.
	rev, err := s.PairScore("cpu", "io")
	if err != nil {
		t.Fatal(err)
	}
	if rev != got {
		t.Fatalf("PairScore not symmetric: %v vs %v", rev, got)
	}
}

func TestEmptyScoreScalesWithLoad(t *testing.T) {
	s := newScorer(MinRuntime)
	mp, err := s.MeanPairOver([]string{"io"})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := s.EmptyScore("io", mp, 0)
	if err != nil || zero != 0 {
		t.Fatalf("zero-load empty score = %v, %v", zero, err)
	}
	half, err := s.EmptyScore("io", mp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.EmptyScore("io", mp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(half > 0 && math.Abs(full-2*half) < 1e-9) {
		t.Fatalf("EmptyScore not linear in load: %v vs %v", half, full)
	}
	// An app absent from the summary still gets a sensible mean.
	out, err := s.EmptyScore("cpu", mp, 1)
	if err != nil || out <= 0 {
		t.Fatalf("EmptyScore for off-queue app = %v, %v", out, err)
	}
}

func TestMeanPairOverWeightsCounts(t *testing.T) {
	s := newScorer(MinRuntime)
	mp, err := s.MeanPairOver([]string{"io", "io", "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	pIOIO, _ := s.PairScore("io", "io")
	pIOCPU, _ := s.PairScore("io", "cpu")
	want := (2*pIOIO + pIOCPU) / 3
	if math.Abs(mp["io"]-want) > 1e-9 {
		t.Fatalf("MeanPair[io] = %v want %v", mp["io"], want)
	}
}
