package sched

import (
	"sync"
	"testing"
)

// TestScorerConcurrentUse hammers one shared Scorer from many goroutines —
// cold cache, so readers and writers of the memo map collide constantly.
// Run under -race this proves the shared read path of the parallel
// experiment runner is synchronized; it also checks every goroutine
// observes the same deterministic scores.
func TestScorerConcurrentUse(t *testing.T) {
	apps := []string{"cpu", "io", "mid"}
	for _, obj := range []Objective{MinRuntime, MaxIOPS} {
		s := NewScorer(fakePred{}, obj)

		// Reference values from a private sequential scorer.
		ref := NewScorer(fakePred{}, obj)
		want := map[[2]string]float64{}
		for _, a := range apps {
			for _, b := range apps {
				v, err := ref.PairScore(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want[[2]string{a, b}] = v
			}
		}

		const goroutines = 16
		var wg sync.WaitGroup
		errCh := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 50; iter++ {
					for i, a := range apps {
						b := apps[(i+g+iter)%len(apps)]
						v, err := s.PairScore(a, b)
						if err != nil {
							errCh <- err
							return
						}
						if v != want[[2]string{a, b}] {
							t.Errorf("PairScore(%s,%s) = %v, want %v", a, b, v, want[[2]string{a, b}])
							return
						}
						mp, err := s.MeanPairOver([]string{a, b, b})
						if err != nil {
							errCh <- err
							return
						}
						if _, err := s.EmptyScore(a, mp, 0.5); err != nil {
							errCh <- err
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
	}
}

// TestFreePoolPerGoroutineOwnership is the pattern the parallel runner
// uses: each concurrent simulation builds its own FreePool. Run under
// -race this asserts per-owner pools need no synchronization.
func TestFreePoolPerGoroutineOwnership(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewFreePool()
			for m := 0; m < 16; m++ {
				p.SetFree(m, 0, EmptyCategory)
				p.SetFree(m, 1, "io")
			}
			for i := 0; i < 16; i++ {
				if _, _, err := p.Pop(AnyCategory); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := p.Pop("io"); err != nil {
					t.Error(err)
					return
				}
			}
			if got := p.FreeSlots(); got != 0 {
				t.Errorf("FreeSlots = %d, want 0", got)
			}
		}()
	}
	wg.Wait()
}

// TestFreePoolSingleOwnerGuard asserts the documented ownership contract
// is enforced: a FreePool entered by a second party panics instead of
// corrupting its heaps. The guard is tripped deterministically by holding
// the pool "entered" while calling a public method.
func TestFreePoolSingleOwnerGuard(t *testing.T) {
	p := NewFreePool()
	p.SetFree(0, 0, EmptyCategory)

	p.enter() // simulate another goroutine mid-call
	defer func() {
		if recover() == nil {
			t.Fatal("concurrent FreePool use did not panic")
		}
	}()
	p.Pop(AnyCategory)
}
