package sched

import (
	"fmt"
	"sort"
	"sync"

	"tracon/internal/model"
)

// Scorer turns model predictions into placement scores (lower is better).
// Scores are expressed as the absolute predicted cost a decision *adds* to
// the objective: extra total seconds for the runtime objective, lost
// aggregate IOPS for the throughput objective. Scores are memoized: the
// application set is small and predictions are deterministic, so large
// simulations pay for each (target, neighbour) pair once.
//
// A Scorer is safe for concurrent use: the memo cache is guarded by a
// read-write lock, and because predictions are pure functions of the
// (target, neighbour) pair, two goroutines racing to fill the same entry
// compute the same value — the cache contents never depend on
// interleaving. This is what lets the parallel experiment runner share one
// trained predictor across simulations.
type Scorer struct {
	pred model.Predictor
	obj  Objective

	mu    sync.RWMutex
	cache map[[2]string]float64
}

// NewScorer builds a scorer over a predictor for the given objective.
func NewScorer(pred model.Predictor, obj Objective) *Scorer {
	return &Scorer{pred: pred, obj: obj, cache: map[[2]string]float64{}}
}

// Objective returns the optimization target.
func (s *Scorer) Objective() Objective { return s.obj }

// PairScore is the predicted cost added by co-locating two fresh tasks,
// relative to each running alone. For the runtime objective it is
// phase-aware, the way the data-center executes pairs: both slow each
// other until the shorter finishes, then the survivor speeds back up.
func (s *Scorer) PairScore(a, b string) (float64, error) {
	key := [2]string{a, b}
	if b < a {
		key = [2]string{b, a} // symmetric; halve the cache
	}
	s.mu.RLock()
	v, ok := s.cache[key]
	s.mu.RUnlock()
	if ok {
		return v, nil
	}
	var score float64
	var err error
	if s.obj == MinRuntime {
		score, err = s.pairExtraRuntime(a, b)
	} else {
		score, err = s.pairExtraIOPS(a, b)
	}
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.cache[key] = score
	s.mu.Unlock()
	return score, nil
}

// pairRuntimes predicts the realized runtimes of a and b started together
// from a cold start, with the survivor's remaining work rescaled once the
// shorter task completes — mirroring the simulator's execution model, but
// computed purely from model predictions.
func (s *Scorer) pairRuntimes(a, b string) (sa, sb, rtA, rtB float64, err error) {
	sa, err = s.pred.SoloRuntime(a)
	if err != nil {
		return
	}
	sb, err = s.pred.SoloRuntime(b)
	if err != nil {
		return
	}
	pa, err := s.pred.PredictRuntime(a, b)
	if err != nil {
		return
	}
	pb, err := s.pred.PredictRuntime(b, a)
	if err != nil {
		return
	}
	// A model can mispredict below solo; interference never speeds you up.
	if pa < sa {
		pa = sa
	}
	if pb < sb {
		pb = sb
	}
	if sa <= 0 || sb <= 0 {
		err = fmt.Errorf("sched: non-positive solo runtime for %q/%q", a, b)
		return
	}
	ra, rb := sa/pa, sb/pb // progress rates while paired
	if pa <= pb {
		// a finishes at pa; b then completes its remaining work alone.
		remB := sb - rb*pa
		if remB < 0 {
			remB = 0
		}
		rtA, rtB = pa, pa+remB
	} else {
		remA := sa - ra*pb
		if remA < 0 {
			remA = 0
		}
		rtA, rtB = pb+remA, pb
	}
	return
}

// pairExtraRuntime predicts the added total runtime (seconds) of pairing.
func (s *Scorer) pairExtraRuntime(a, b string) (float64, error) {
	sa, sb, rtA, rtB, err := s.pairRuntimes(a, b)
	if err != nil {
		return 0, err
	}
	return (rtA - sa) + (rtB - sb), nil
}

// pairExtraIOPS predicts the aggregate throughput lost by pairing a and b.
// Per eq. 4, a task's contribution is ops/runtime, so the loss follows
// directly from the phase-aware runtimes (which lean on the more accurate
// runtime models) with each task's request volume estimated from its solo
// profile: ops ≈ soloIOPS · soloRuntime.
func (s *Scorer) pairExtraIOPS(a, b string) (float64, error) {
	sa, sb, rtA, rtB, err := s.pairRuntimes(a, b)
	if err != nil {
		return 0, err
	}
	ioA, err := s.pred.SoloIOPS(a)
	if err != nil {
		return 0, err
	}
	ioB, err := s.pred.SoloIOPS(b)
	if err != nil {
		return 0, err
	}
	opsA, opsB := ioA*sa, ioB*sb
	return (opsA/sa - opsA/rtA) + (opsB/sb - opsB/rtB), nil
}

// PlacementScore scores running app on a free VM whose neighbour currently
// runs neighbour (EmptyCategory for an idle machine): the predicted cost
// added to the cluster objective by the co-location. An idle machine adds
// nothing — its forward-looking cost is handled by EmptyScore.
func (s *Scorer) PlacementScore(app, neighbour string) (float64, error) {
	if neighbour == EmptyCategory {
		return 0, nil
	}
	return s.PairScore(app, neighbour)
}

// MeanPair summarizes a queue for the batch-scoring formulas: for every
// distinct application in the queue, the mean pairing cost of that
// application against the whole queue. Computing it once per Schedule call
// keeps batch scheduling O(l²) instead of O(l³) (the 1,024-machine static
// runs schedule 2,048-task batches in one call).
type MeanPair map[string]float64

// MeanPairOver builds the summary for a queue.
func (s *Scorer) MeanPairOver(queueApps []string) (MeanPair, error) {
	if len(queueApps) == 0 {
		return MeanPair{}, nil
	}
	counts := map[string]int{}
	for _, a := range queueApps {
		counts[a]++
	}
	out := make(MeanPair, len(counts))
	for a := range counts {
		sum := 0.0
		for b, n := range counts {
			sc, err := s.PairScore(a, b)
			if err != nil {
				return nil, err
			}
			sum += sc * float64(n)
		}
		out[a] = sum / float64(len(queueApps))
	}
	return out, nil
}

// EmptyScore scores placing app on an idle machine, accounting for the
// future: under load, the idle machine will soon receive a neighbour drawn
// from the current workload mix, so its true cost is the load-weighted
// mean pairing cost against the queued applications (from the queue's
// MeanPair summary). Without this, every policy degenerates to "spread
// out", and batch pairing (the heart of MIBS) never engages.
func (s *Scorer) EmptyScore(app string, meanPair MeanPair, load float64) (float64, error) {
	if load <= 0 || len(meanPair) == 0 {
		return 0, nil
	}
	if load > 1 {
		load = 1
	}
	mean, ok := meanPair[app]
	if !ok {
		// App not in the queue summary (e.g. a forced probe): compute the
		// mean against the summarized apps directly.
		sum := 0.0
		for b := range meanPair {
			sc, err := s.PairScore(app, b)
			if err != nil {
				return 0, err
			}
			sum += sc
		}
		mean = sum / float64(len(meanPair))
	}
	return load * mean, nil
}

// CompanionScore ranks candidate as the batch companion for head (MIBS's
// first "Min"). Raw mutual interference alone is a trap: two no-I/O tasks
// always look like the best pair, which wastes gentle partners on tasks
// that did not need them and leaves the heavy tasks to collide at the end
// of the batch. The score therefore subtracts the candidate's mean pairing
// cost against the whole queue — its opportunity cost — so a head prefers
// the partner that is cheapest *relative to what that partner would cost
// anyone else*.
func (s *Scorer) CompanionScore(candidate, head string, meanPair MeanPair) (float64, error) {
	pair, err := s.PairScore(candidate, head)
	if err != nil {
		return 0, err
	}
	if len(meanPair) == 0 {
		return pair, nil
	}
	return pair - meanPair[candidate], nil
}

// bestCategory finds the free-pool category with the minimum placement
// score for app, using emptyScore for idle machines. Ties break toward
// the empty category first, then lexicographically, for determinism.
func (s *Scorer) bestCategory(app string, counts Counts, emptyScore float64) (string, float64, bool, error) {
	best := ""
	bestScore := 0.0
	found := false
	// Deterministic iteration: empty category first, then sorted names;
	// only a strictly better score displaces the incumbent, so ties favour
	// idle machines and then lexicographic order.
	for _, cat := range sortedCategories(counts) {
		if counts[cat] <= 0 {
			continue
		}
		var sc float64
		var err error
		if cat == EmptyCategory {
			sc = emptyScore
		} else {
			sc, err = s.PlacementScore(app, cat)
			if err != nil {
				return "", 0, false, err
			}
		}
		if !found || sc < bestScore-1e-12 {
			best, bestScore, found = cat, sc, true
		}
	}
	return best, bestScore, found, nil
}

func sortedCategories(counts Counts) []string {
	out := make([]string, 0, len(counts))
	for c := range counts {
		out = append(out, c)
	}
	sort.Strings(out) // EmptyCategory ("") sorts first
	return out
}
