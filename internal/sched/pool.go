package sched

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// FreePool tracks every free VM slot in the cluster, bucketed by the
// application occupying the machine's other slot. It resolves Placements
// (which name only a category) to concrete (machine, slot) pairs,
// preferring the lowest-indexed slot for determinism.
//
// Slots are kept in lazy min-heaps: recategorizations simply push a fresh
// entry and stale entries are discarded at pop time against the
// authoritative per-slot state.
//
// A FreePool is single-owner state: it is owned by exactly one simulation
// engine and must not be shared across goroutines (the parallel experiment
// runner gives every concurrent simulation its own engine and therefore
// its own pool). Every method carries a cheap atomic reentry guard that
// panics on concurrent access, so a violation of the ownership contract
// fails loudly instead of corrupting heaps silently.
type FreePool struct {
	heaps   map[string]*slotHeap
	global  slotHeap
	state   map[int64]slotState
	counts  Counts
	freeSeq int64
	inUse   int32
}

// enter trips the single-owner guard; every public method must pair it
// with leave. It is not a lock — it never blocks — it only detects two
// goroutines inside the pool at once.
func (p *FreePool) enter() {
	if !atomic.CompareAndSwapInt32(&p.inUse, 0, 1) {
		panic("sched: FreePool used concurrently; it is single-owner state (give each engine its own pool)")
	}
}

func (p *FreePool) leave() { atomic.StoreInt32(&p.inUse, 0) }

type slotState struct {
	free     bool
	category string
}

type slotEntry struct {
	machine, slot int
	category      string // category at push time ("" is valid; global uses any)
	seq           int64  // freed-order stamp (0 in category heaps)
}

type slotHeap []slotEntry

// Less orders by freed-order when stamped (the global FIFO-over-VMs heap),
// else by slot index (category heaps, for determinism).
func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	if h[i].machine != h[j].machine {
		return h[i].machine < h[j].machine
	}
	return h[i].slot < h[j].slot
}
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(slotEntry)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewFreePool returns an empty pool.
func NewFreePool() *FreePool {
	return &FreePool{
		heaps:  map[string]*slotHeap{},
		state:  map[int64]slotState{},
		counts: Counts{},
	}
}

func slotKey(machine, slot int) int64 { return int64(machine)<<8 | int64(slot) }

// SetFree marks a slot free under the given neighbour category, adding or
// recategorizing as needed.
func (p *FreePool) SetFree(machine, slot int, category string) {
	p.enter()
	defer p.leave()
	if category == AnyCategory {
		panic("sched: AnyCategory is not a real category")
	}
	key := slotKey(machine, slot)
	cur, ok := p.state[key]
	if ok && cur.free {
		if cur.category == category {
			return
		}
		p.counts[cur.category]--
	}
	p.state[key] = slotState{free: true, category: category}
	p.counts[category]++
	h, okh := p.heaps[category]
	if !okh {
		h = &slotHeap{}
		p.heaps[category] = h
	}
	heap.Push(h, slotEntry{machine: machine, slot: slot, category: category})
	// The global heap is FIFO over VMs: the next AnyCategory task takes the
	// slot that has been free the longest, so an idle cluster spreads tasks
	// instead of repeatedly packing the lowest-numbered machine. Only the
	// first SetFree after a busy period stamps the order; recategorizations
	// keep the original position via the stale-entry check at pop time.
	p.freeSeq++
	heap.Push(&p.global, slotEntry{machine: machine, slot: slot, seq: p.freeSeq})
}

// SetBusy marks a slot occupied.
func (p *FreePool) SetBusy(machine, slot int) {
	p.enter()
	defer p.leave()
	p.setBusy(machine, slot)
}

func (p *FreePool) setBusy(machine, slot int) {
	key := slotKey(machine, slot)
	cur, ok := p.state[key]
	if !ok || !cur.free {
		return
	}
	p.counts[cur.category]--
	p.state[key] = slotState{free: false}
}

// Counts returns a copy of the per-category free counts (zero entries
// removed).
func (p *FreePool) Counts() Counts {
	p.enter()
	defer p.leave()
	out := make(Counts, len(p.counts))
	for c, n := range p.counts {
		if n > 0 {
			out[c] = n
		}
	}
	return out
}

// FreeSlots returns the total number of free slots.
func (p *FreePool) FreeSlots() int {
	p.enter()
	defer p.leave()
	t := 0
	for _, n := range p.counts {
		if n > 0 {
			t += n
		}
	}
	return t
}

// Pop resolves a placement category to a concrete free slot and marks it
// busy. AnyCategory takes the lowest-indexed free slot overall.
func (p *FreePool) Pop(category string) (machine, slot int, err error) {
	p.enter()
	defer p.leave()
	if category == AnyCategory {
		for p.global.Len() > 0 {
			e := heap.Pop(&p.global).(slotEntry)
			st, ok := p.state[slotKey(e.machine, e.slot)]
			if ok && st.free {
				p.setBusy(e.machine, e.slot)
				return e.machine, e.slot, nil
			}
		}
		return 0, 0, fmt.Errorf("sched: no free VM")
	}
	h, ok := p.heaps[category]
	if !ok {
		return 0, 0, fmt.Errorf("sched: no free VM with neighbour %q", category)
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(slotEntry)
		st, oks := p.state[slotKey(e.machine, e.slot)]
		if oks && st.free && st.category == e.category {
			p.setBusy(e.machine, e.slot)
			return e.machine, e.slot, nil
		}
	}
	return 0, 0, fmt.Errorf("sched: no free VM with neighbour %q", category)
}

// Category returns the current category of a free slot (ok=false if the
// slot is not free).
func (p *FreePool) Category(machine, slot int) (string, bool) {
	p.enter()
	defer p.leave()
	st, ok := p.state[slotKey(machine, slot)]
	if !ok || !st.free {
		return "", false
	}
	return st.category, true
}
