package sched

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// FreePool tracks every free VM slot in the cluster, bucketed by the
// application occupying the machine's other slot. It resolves Placements
// (which name only a category) to concrete (machine, slot) pairs,
// preferring the lowest-indexed slot for determinism.
//
// Slots are kept in lazy min-heaps: recategorizations simply push a fresh
// entry and stale entries are discarded at pop time against the
// authoritative per-slot state. A heap that grows large and mostly stale
// (long runs never popping a category accumulate garbage) is compacted in
// place, so heap memory stays proportional to the live slot count.
//
// A FreePool is single-owner state: it is owned by exactly one simulation
// engine and must not be shared across goroutines (the parallel experiment
// runner gives every concurrent simulation its own engine and therefore
// its own pool). Every method carries a cheap atomic reentry guard that
// panics on concurrent access, so a violation of the ownership contract
// fails loudly instead of corrupting heaps silently.
type FreePool struct {
	heaps   map[string]*slotHeap
	global  slotHeap
	state   map[int64]slotState
	counts  Counts
	freeSeq int64
	inUse   int32
}

// enter trips the single-owner guard; every public method must pair it
// with leave. It is not a lock — it never blocks — it only detects two
// goroutines inside the pool at once.
func (p *FreePool) enter() {
	if !atomic.CompareAndSwapInt32(&p.inUse, 0, 1) {
		panic("sched: FreePool used concurrently; it is single-owner state (give each engine its own pool)")
	}
}

func (p *FreePool) leave() { atomic.StoreInt32(&p.inUse, 0) }

type slotState struct {
	free     bool
	category string
	// freeGen is the freed-order stamp of the latest busy→free transition.
	// Recategorizations keep it, so a slot's position in the global FIFO is
	// the moment it last became free, not the last time its neighbour
	// changed. Global entries carry the stamp they were pushed with; an
	// entry whose stamp no longer matches is stale and rejected at pop.
	freeGen int64
}

type slotEntry struct {
	machine, slot int
	category      string // category at push time ("" is valid; global uses any)
	seq           int64  // freed-order stamp (0 in category heaps)
}

type slotHeap []slotEntry

// Less orders by freed-order when stamped (the global FIFO-over-VMs heap),
// else by slot index (category heaps, for determinism).
func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	if h[i].machine != h[j].machine {
		return h[i].machine < h[j].machine
	}
	return h[i].slot < h[j].slot
}
func (h slotHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x interface{}) { *h = append(*h, x.(slotEntry)) }
func (h *slotHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewFreePool returns an empty pool.
func NewFreePool() *FreePool {
	return &FreePool{
		heaps:  map[string]*slotHeap{},
		state:  map[int64]slotState{},
		counts: Counts{},
	}
}

func slotKey(machine, slot int) int64 { return int64(machine)<<8 | int64(slot) }

// SetFree marks a slot free under the given neighbour category, adding or
// recategorizing as needed.
func (p *FreePool) SetFree(machine, slot int, category string) {
	p.enter()
	defer p.leave()
	if category == AnyCategory {
		panic("sched: AnyCategory is not a real category")
	}
	key := slotKey(machine, slot)
	cur, ok := p.state[key]
	if ok && cur.free {
		if cur.category == category {
			return
		}
		// Recategorization: the slot keeps its freed-order stamp and its
		// existing global entry (which still carries the matching stamp), so
		// its position in the FIFO-over-VMs queue is unchanged. Only the
		// category heaps see a fresh entry.
		p.counts[cur.category]--
		p.state[key] = slotState{free: true, category: category, freeGen: cur.freeGen}
		p.counts[category]++
		p.pushCategory(machine, slot, category)
		return
	}
	// Busy→free transition: stamp the freed order and enter the global FIFO.
	// The next AnyCategory task takes the slot that has been free the
	// longest, so an idle cluster spreads tasks instead of repeatedly
	// packing the lowest-numbered machine.
	p.freeSeq++
	p.state[key] = slotState{free: true, category: category, freeGen: p.freeSeq}
	p.counts[category]++
	p.pushCategory(machine, slot, category)
	heap.Push(&p.global, slotEntry{machine: machine, slot: slot, seq: p.freeSeq})
	p.maybeCompactGlobal()
}

// pushCategory adds a category-heap entry and compacts the heap if stale
// entries dominate it.
func (p *FreePool) pushCategory(machine, slot int, category string) {
	h, ok := p.heaps[category]
	if !ok {
		h = &slotHeap{}
		p.heaps[category] = h
	}
	heap.Push(h, slotEntry{machine: machine, slot: slot, category: category})
	p.maybeCompactCategory(category)
}

// SetBusy marks a slot occupied.
func (p *FreePool) SetBusy(machine, slot int) {
	p.enter()
	defer p.leave()
	p.setBusy(machine, slot)
}

func (p *FreePool) setBusy(machine, slot int) {
	key := slotKey(machine, slot)
	cur, ok := p.state[key]
	if !ok || !cur.free {
		return
	}
	p.counts[cur.category]--
	p.state[key] = slotState{free: false}
}

// Counts returns a copy of the per-category free counts (zero entries
// removed).
func (p *FreePool) Counts() Counts {
	p.enter()
	defer p.leave()
	out := make(Counts, len(p.counts))
	for c, n := range p.counts {
		if n > 0 {
			out[c] = n
		}
	}
	return out
}

// FreeSlots returns the total number of free slots.
func (p *FreePool) FreeSlots() int {
	p.enter()
	defer p.leave()
	t := 0
	for _, n := range p.counts {
		if n > 0 {
			t += n
		}
	}
	return t
}

// Pop resolves a placement category to a concrete free slot and marks it
// busy. AnyCategory takes the lowest-indexed free slot overall.
func (p *FreePool) Pop(category string) (machine, slot int, err error) {
	machine, slot, _, err = p.PopTraced(category)
	return machine, slot, err
}

// PopTraced is Pop plus the popped slot's freed-order stamp — the
// busy→free generation the FIFO-over-VMs queue ordered the slot by. The
// tracing layer records it so fairness can be re-derived offline from an
// event stream alone.
func (p *FreePool) PopTraced(category string) (machine, slot int, freeGen int64, err error) {
	p.enter()
	defer p.leave()
	if category == AnyCategory {
		for p.global.Len() > 0 {
			e := heap.Pop(&p.global).(slotEntry)
			st, ok := p.state[slotKey(e.machine, e.slot)]
			// The stamp must match: a slot freed, made busy and freed again
			// leaves an older entry behind whose stamp no longer matches, and
			// honouring it would let the recently freed slot jump the
			// FIFO-over-VMs queue.
			if ok && st.free && st.freeGen == e.seq {
				p.setBusy(e.machine, e.slot)
				return e.machine, e.slot, st.freeGen, nil
			}
		}
		return 0, 0, 0, fmt.Errorf("sched: no free VM")
	}
	h, ok := p.heaps[category]
	if !ok {
		return 0, 0, 0, fmt.Errorf("sched: no free VM with neighbour %q", category)
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(slotEntry)
		st, oks := p.state[slotKey(e.machine, e.slot)]
		if oks && st.free && st.category == e.category {
			p.setBusy(e.machine, e.slot)
			return e.machine, e.slot, st.freeGen, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("sched: no free VM with neighbour %q", category)
}

// Category returns the current category of a free slot (ok=false if the
// slot is not free).
func (p *FreePool) Category(machine, slot int) (string, bool) {
	p.enter()
	defer p.leave()
	st, ok := p.state[slotKey(machine, slot)]
	if !ok || !st.free {
		return "", false
	}
	return st.category, true
}

// OldestFree returns the free slot that has been free the longest — the
// slot Pop(AnyCategory) is contractually bound to take next. It is a pure
// read (O(slots)) used by the invariant auditor to validate FIFO fairness.
func (p *FreePool) OldestFree() (machine, slot int, ok bool) {
	p.enter()
	defer p.leave()
	best := int64(0)
	for key, st := range p.state {
		if !st.free {
			continue
		}
		if !ok || st.freeGen < best {
			best = st.freeGen
			machine, slot = int(key>>8), int(key&0xff)
			ok = true
		}
	}
	return machine, slot, ok
}

// PoolStats reports the pool's internal sizes, for observability and the
// bounded-garbage tests.
type PoolStats struct {
	// FreeSlots is the number of live free slots.
	FreeSlots int
	// GlobalHeapLen is the global FIFO heap's length, stale entries
	// included.
	GlobalHeapLen int
	// CategoryHeapLen is the summed length of all category heaps, stale
	// entries included.
	CategoryHeapLen int
	// Categories is the number of category heaps ever created.
	Categories int
}

// Stats returns the current PoolStats.
func (p *FreePool) Stats() PoolStats {
	p.enter()
	defer p.leave()
	s := PoolStats{GlobalHeapLen: p.global.Len(), Categories: len(p.heaps)}
	for _, n := range p.counts {
		if n > 0 {
			s.FreeSlots += n
		}
	}
	for _, h := range p.heaps {
		s.CategoryHeapLen += h.Len()
	}
	return s
}

// compactMinLen mirrors the simulation engine's backlog-compaction
// heuristic: a heap is rebuilt only once it is both large in absolute terms
// and dominated by stale entries, so compaction cost amortizes to O(1) per
// push.
const compactMinLen = 4096

// liveFree is the total number of live free slots (internal; callers hold
// the reentry guard).
func (p *FreePool) liveFree() int {
	t := 0
	for _, n := range p.counts {
		if n > 0 {
			t += n
		}
	}
	return t
}

// maybeCompactGlobal rebuilds the global heap keeping only entries whose
// freed-order stamp still matches the authoritative slot state.
func (p *FreePool) maybeCompactGlobal() {
	if p.global.Len() <= compactMinLen || p.global.Len() <= 2*p.liveFree() {
		return
	}
	keep := p.global[:0]
	for _, e := range p.global {
		st, ok := p.state[slotKey(e.machine, e.slot)]
		if ok && st.free && st.freeGen == e.seq {
			keep = append(keep, e)
		}
	}
	p.global = keep
	heap.Init(&p.global)
}

// maybeCompactCategory rebuilds one category heap, dropping stale entries
// and deduplicating live ones (a slot re-freed under the same category can
// legitimately appear twice).
func (p *FreePool) maybeCompactCategory(category string) {
	h, ok := p.heaps[category]
	if !ok {
		return
	}
	live := p.counts[category]
	if live < 0 {
		live = 0
	}
	if h.Len() <= compactMinLen || h.Len() <= 2*live {
		return
	}
	seen := make(map[int64]bool, live)
	keep := (*h)[:0]
	for _, e := range *h {
		key := slotKey(e.machine, e.slot)
		st, oks := p.state[key]
		if oks && st.free && st.category == e.category && !seen[key] {
			seen[key] = true
			keep = append(keep, e)
		}
	}
	*h = keep
	heap.Init(h)
}
