package sched

import (
	"fmt"
)

// FIFO is the paper's baseline: tasks go to free VMs in first-in,
// first-out order, with no regard for interference.
type FIFO struct{}

// Name implements Scheduler.
func (FIFO) Name() string { return "FIFO" }

// BatchSize implements Scheduler: FIFO dispatches immediately.
func (FIFO) BatchSize() int { return 1 }

// Schedule implements Scheduler: each task takes the next free VM in index
// order (AnyCategory placements are resolved by the executor).
func (FIFO) Schedule(batch []Task, counts Counts, _ Load) ([]Placement, error) {
	free := counts.Total()
	var out []Placement
	for _, t := range batch {
		if free <= 0 {
			break
		}
		out = append(out, Placement{Task: t, Category: AnyCategory})
		free--
	}
	return out, nil
}

// MIOS is the minimum interference online scheduler (Algorithm 1): each
// incoming task is immediately dispatched to the VM with the best
// predicted performance.
type MIOS struct {
	Scorer *Scorer
}

// Name implements Scheduler.
func (m *MIOS) Name() string { return "MIOS" + m.Scorer.Objective().String() }

// BatchSize implements Scheduler: online, no batching.
func (m *MIOS) BatchSize() int { return 1 }

// Schedule implements Scheduler.
func (m *MIOS) Schedule(batch []Task, counts Counts, load Load) ([]Placement, error) {
	meanPair, err := m.Scorer.MeanPairOver(apps(batch))
	if err != nil {
		return nil, err
	}
	var out []Placement
	for _, t := range batch {
		p, ok, err := placeOne(m.Scorer, t, counts, meanPair, load)
		if err != nil {
			return nil, err
		}
		if !ok {
			break // no free VM; the rest of the batch waits too
		}
		out = append(out, p)
	}
	return out, nil
}

// placeOne runs one MIOS step: pick the best category for the task and
// consume the slot from counts.
func placeOne(s *Scorer, t Task, counts Counts, meanPair MeanPair, load Load) (Placement, bool, error) {
	emptyScore, err := s.EmptyScore(t.App, meanPair, load.Fraction(counts))
	if err != nil {
		return Placement{}, false, err
	}
	cat, _, ok, err := s.bestCategory(t.App, counts, emptyScore)
	if err != nil || !ok {
		return Placement{}, false, err
	}
	if err := counts.take(cat, t.App); err != nil {
		return Placement{}, false, err
	}
	return Placement{Task: t, Category: cat}, true, nil
}

// MIBS is the minimum interference batch scheduler (Algorithm 2), built on
// the Min-Min heuristic [17]: the queued task with the best achievable
// placement goes first, then the queued task with the least mutual
// interference against it joins it, and the pair leaves the queue.
type MIBS struct {
	Scorer *Scorer
	// QueueLen is the batch size (the paper evaluates 2, 4 and 8).
	QueueLen int
	// forceHead makes the first head the literal batch head instead of the
	// Min-Min choice; MIX uses it to explore rotations (Algorithm 3).
	forceHead bool
}

// Name implements Scheduler, e.g. "MIBS8-RT".
func (m *MIBS) Name() string {
	return fmt.Sprintf("MIBS%d-%s", m.QueueLen, m.Scorer.Objective())
}

// BatchSize implements Scheduler.
func (m *MIBS) BatchSize() int {
	if m.QueueLen < 1 {
		return 1
	}
	return m.QueueLen
}

// Schedule implements Scheduler (Algorithm 2 / the Min-Min heuristic
// [17]). The first "Min" evaluates every queued task's best VM; the task
// with the overall minimum predicted score is placed first (this is what
// makes the batch scheduler beat MIOS when VMs free up one at a time: the
// batch picks the *task that fits the opening*, the online scheduler is
// stuck with the head). Its least-interfering companion follows.
func (m *MIBS) Schedule(batch []Task, counts Counts, load Load) ([]Placement, error) {
	queue := append([]Task(nil), batch...)
	meanPair, err := m.Scorer.MeanPairOver(apps(batch))
	if err != nil {
		return nil, err
	}
	var out []Placement
	first := true
	for len(queue) > 0 {
		// candidate1: the queued task with the best achievable placement.
		headIdx := -1
		headScore := 0.0
		if m.forceHead && first {
			headIdx = 0
		} else {
			for i, t := range queue {
				emptyScore, err := m.Scorer.EmptyScore(t.App, meanPair, load.Fraction(counts))
				if err != nil {
					return nil, err
				}
				_, sc, ok, err := m.Scorer.bestCategory(t.App, counts, emptyScore)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				if headIdx < 0 || sc < headScore-1e-12 {
					headIdx, headScore = i, sc
				}
			}
		}
		first = false
		if headIdx < 0 {
			break // cluster full
		}
		head := queue[headIdx]
		p1, ok, err := placeOne(m.Scorer, head, counts, meanPair, load)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, p1)
		queue = append(queue[:headIdx], queue[headIdx+1:]...)
		if len(queue) == 0 {
			break
		}

		// candidate2: the queued task with the least interference against
		// candidate1 relative to its opportunity cost (the first "Min").
		bestIdx, bestScore := -1, 0.0
		for i, t := range queue {
			sc, err := m.Scorer.CompanionScore(t.App, head.App, meanPair)
			if err != nil {
				return nil, err
			}
			if bestIdx < 0 || sc < bestScore-1e-12 {
				bestIdx, bestScore = i, sc
			}
		}
		// The companion is committed next to the head when the head opened a
		// fresh machine AND the pairing actually beats the companion's own
		// empty-machine option under the expected load — otherwise it gets
		// its own MIOS placement (in a half-empty cluster, spreading wins).
		var p2 Placement
		var ok2 bool
		commit := false
		if p1.Category == EmptyCategory && counts[head.App] > 0 {
			pairSc, err := m.Scorer.PlacementScore(queue[bestIdx].App, head.App)
			if err != nil {
				return nil, err
			}
			commit = counts[EmptyCategory] == 0
			if !commit {
				emptySc, err := m.Scorer.EmptyScore(queue[bestIdx].App, meanPair, load.Fraction(counts))
				if err != nil {
					return nil, err
				}
				commit = pairSc <= emptySc
			}
		}
		if commit {
			p2 = Placement{Task: queue[bestIdx], Category: head.App}
			if err := counts.take(head.App, queue[bestIdx].App); err != nil {
				return nil, err
			}
			ok2 = true
		} else {
			p2, ok2, err = placeOne(m.Scorer, queue[bestIdx], counts, meanPair, load)
			if err != nil {
				return nil, err
			}
		}
		if !ok2 {
			break
		}
		out = append(out, p2)
		queue = append(queue[:bestIdx], queue[bestIdx+1:]...)
	}
	return out, nil
}

// MIX (Algorithm 3) tries every queued task as the head of a hypothetical
// MIBS run, keeps the assignment with the best total predicted score, and
// executes it. It trades the highest scheduling cost for the best
// potential decisions.
type MIX struct {
	Scorer   *Scorer
	QueueLen int
}

// Name implements Scheduler, e.g. "MIX8-RT".
func (m *MIX) Name() string {
	return fmt.Sprintf("MIX%d-%s", m.QueueLen, m.Scorer.Objective())
}

// BatchSize implements Scheduler.
func (m *MIX) BatchSize() int {
	if m.QueueLen < 1 {
		return 1
	}
	return m.QueueLen
}

// Schedule implements Scheduler (Algorithm 3).
func (m *MIX) Schedule(batch []Task, counts Counts, load Load) ([]Placement, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	// Candidate assignments: the plain Min-Min MIBS run, plus one run per
	// rotation in which that task is forced to be the first head ("gives
	// every job a chance to be the first job in the queue").
	inner := &MIBS{Scorer: m.Scorer, QueueLen: m.QueueLen}
	forced := &MIBS{Scorer: m.Scorer, QueueLen: m.QueueLen, forceHead: true}

	var bestPl []Placement
	bestScore := 0.0
	for rot := -1; rot < len(batch); rot++ {
		runner := forced
		var rotated []Task
		if rot < 0 {
			runner = inner
			rotated = batch
		} else {
			rotated = make([]Task, 0, len(batch))
			rotated = append(rotated, batch[rot])
			rotated = append(rotated, batch[:rot]...)
			rotated = append(rotated, batch[rot+1:]...)
		}

		trial := counts.Clone()
		pl, err := runner.Schedule(rotated, trial, load)
		if err != nil {
			return nil, err
		}
		sc, err := m.totalScore(pl)
		if err != nil {
			return nil, err
		}
		// Prefer assignments that place more tasks; among equals, the best
		// total predicted score wins. Ties keep the earliest rotation.
		if bestPl == nil || len(pl) > len(bestPl) ||
			(len(pl) == len(bestPl) && sc < bestScore-1e-12) {
			bestPl, bestScore = pl, sc
		}
	}
	// Execute the winning assignment against the real counts.
	for _, p := range bestPl {
		if err := counts.take(p.Category, p.Task.App); err != nil {
			return nil, err
		}
	}
	return bestPl, nil
}

// totalScore sums the placement scores of an assignment.
func (m *MIX) totalScore(pl []Placement) (float64, error) {
	total := 0.0
	for _, p := range pl {
		sc, err := m.Scorer.PlacementScore(p.Task.App, p.Category)
		if err != nil {
			return 0, err
		}
		total += sc
	}
	return total, nil
}

// apps extracts the application names of a batch.
func apps(batch []Task) []string {
	out := make([]string, len(batch))
	for i, t := range batch {
		out[i] = t.App
	}
	return out
}
