// Package par provides the bounded-worker fan-out primitive the parallel
// evaluation engine is built on. Results are always collected into
// caller-owned, index-addressed slices, so the output of a parallel run is
// a pure function of the inputs — never of goroutine scheduling. That is
// the contract the determinism tests in internal/experiments enforce:
// parallel output must be byte-identical to sequential output.
package par

import "sync"

// Clamp bounds a requested worker count to [1, n] where n is the number of
// independent jobs. workers <= 0 is treated as "one worker" (sequential);
// callers that want GOMAXPROCS pass it explicitly.
func Clamp(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if n >= 1 && workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// and waits for all of them. With workers <= 1 it degenerates to a plain
// sequential loop on the calling goroutine (no goroutines spawned), which
// is the reference execution the parallel paths must reproduce.
//
// All n jobs always run; an error in one job does not cancel the others
// (jobs are independent by contract and results land in caller-owned
// slices). If any jobs fail, ForEach returns the error of the
// lowest-indexed failing job, so the reported error is deterministic no
// matter how the goroutines interleave.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
