package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 8, 1},
		{-3, 8, 1},
		{1, 8, 1},
		{4, 8, 4},
		{16, 8, 8},
		{4, 0, 4}, // n<1: no job bound to apply
	}
	for _, c := range cases {
		if got := Clamp(c.workers, c.n); got != c.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 37
		out := make([]int, n)
		err := ForEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, max int32
	var mu sync.Mutex
	err := ForEach(workers, n, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > max {
			max = c
		}
		mu.Unlock()
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Errorf("observed %d concurrent jobs, bound is %d", max, workers)
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	for _, workers := range []int{1, 4} {
		var ran int32
		err := ForEach(workers, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 || i == 7 {
				return boom(i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
		if ran != 10 {
			t.Errorf("workers=%d: ran %d jobs, want all 10", workers, ran)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
