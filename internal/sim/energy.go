package sim

// Energy accounting. The paper motivates data-center scheduling partly by
// server energy ("the total energy used by the servers is estimated to
// approach 3% of US electricity consumption", Sec. 2.2) and cites
// power-aware consolidation (pSciMapper) as the closest related system.
// The simulator therefore integrates a standard linear server power model:
//
//	P(machine) = P_idle + (P_peak − P_idle) · utilization        (while on)
//	P(machine) = P_off                                           (no tasks)
//
// Utilization comes from the measured interference table (guest CPU plus
// attributable Dom0 work per co-location), so pairing decisions change the
// energy bill — finishing the same work in fewer machine-seconds is how an
// interference-aware scheduler saves energy.

// PowerModel parameterizes per-machine power draw in watts.
type PowerModel struct {
	// OffW is drawn by a machine with no running tasks (deep sleep).
	OffW float64
	// IdleW is drawn by a powered-on machine at zero utilization.
	IdleW float64
	// PeakW is drawn at full utilization.
	PeakW float64
}

// DefaultPower matches the class of servers in the paper's testbed era:
// ≈10 W asleep, ≈160 W idle, ≈250 W at peak.
func DefaultPower() PowerModel {
	return PowerModel{OffW: 10, IdleW: 160, PeakW: 250}
}

// watts returns the draw of a machine at the given total utilization
// (0 = no tasks = asleep).
func (p PowerModel) watts(active bool, util float64) float64 {
	if !active {
		return p.OffW
	}
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	return p.IdleW + (p.PeakW-p.IdleW)*util
}

// machinePower computes the current draw of machine m from its occupancy.
func (e *Engine) machinePower(m int) float64 {
	ms := &e.machines[m]
	active := false
	util := 0.0
	for s, rt := range ms.slots {
		if rt == nil {
			continue
		}
		active = true
		neighbour := ""
		if other := ms.slots[1-s]; other != nil {
			neighbour = other.task.App
		}
		util += e.table.Util(rt.task.App, neighbour)
	}
	// Two VMs share the guest core; utilization saturates at 1 per core
	// plus Dom0 — watts() clamps.
	return e.cfg.Power.watts(active, util/2)
}

// settleEnergy integrates machine m's energy up to the current time and
// re-samples its power. Must be called on every membership change, before
// the change is applied... it is invoked from settle(), which the engine
// already calls at exactly those points.
func (e *Engine) settleEnergy(m int) {
	ms := &e.machines[m]
	dt := e.now - ms.lastEnergyAt
	if dt > 0 {
		e.results.EnergyJ += dt * ms.powerW
		ms.lastEnergyAt = e.now
	}
	ms.powerW = e.machinePower(m)
}

// flushEnergy integrates every machine to the horizon at the end of a run.
func (e *Engine) flushEnergy(until float64) {
	for m := range e.machines {
		ms := &e.machines[m]
		dt := until - ms.lastEnergyAt
		if dt > 0 {
			e.results.EnergyJ += dt * ms.powerW
			ms.lastEnergyAt = until
		}
	}
}

// EnergyKWh converts the run's integrated energy to kilowatt-hours.
func (r *Results) EnergyKWh() float64 { return r.EnergyJ / 3.6e6 }

// EnergyPerTaskKJ is the energy bill per completed task in kilojoules.
func (r *Results) EnergyPerTaskKJ() float64 {
	if r.CompletedCount == 0 {
		return 0
	}
	return r.EnergyJ / float64(r.CompletedCount) / 1000
}
