package sim

import (
	"math"
	"reflect"
	"testing"

	"tracon/internal/sched"
	"tracon/internal/workload"
)

// genTasks draws a Poisson-ish arrival stream over the benchmark mix,
// deterministically for the seed.
func genTasks(seed int64, n int, spacing float64) []sched.Task {
	mix := workload.NewMixer(seed)
	batch := mix.Batch(workload.MediumIO, n)
	tasks := make([]sched.Task, n)
	tm := 0.0
	for i, spec := range batch {
		// Deterministic irregular spacing, including bursts of simultaneous
		// arrivals every 7th task — the case that stresses flush collapsing.
		if i%7 != 0 {
			tm += spacing * float64(1+(i*2654435761)%5)
		}
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name), Arrival: tm}
	}
	return tasks
}

// runFlushMode executes one configuration with either the naive
// one-flush-per-enqueue scheme or the suppressed single-armed-flush scheme.
func runFlushMode(t *testing.T, naive bool, s sched.Scheduler, machines int, tasks []sched.Task, horizon, flushTimeout float64) (*Results, int) {
	t.Helper()
	eng, err := NewEngine(Config{Machines: machines, Scheduler: s, Table: table(t), FlushTimeout: flushTimeout})
	if err != nil {
		t.Fatal(err)
	}
	eng.naiveFlush = naive
	maxHeap := 0
	if !naive {
		// Track the event-heap high-water mark through an observer; the
		// naive run must not carry one (observers must not perturb either
		// mode, but the heap bound claim is about the suppressed mode).
		eng.cfg.Observer = heapWatcher{max: &maxHeap}
	}
	res, err := eng.Run(tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	return res, maxHeap
}

// heapWatcher is a minimal Observer recording the event-heap high-water
// mark.
type heapWatcher struct{ max *int }

func (w heapWatcher) OnEvent(v View, kind EventKind, now float64) error {
	if n := v.EventHeapLen(); n > *w.max {
		*w.max = n
	}
	return nil
}
func (w heapWatcher) OnComplete(View, Completion) error   { return nil }
func (w heapWatcher) OnPop(View, PopInfo) error           { return nil }
func (w heapWatcher) OnSchedule(View, ScheduleInfo) error { return nil }
func (w heapWatcher) OnDone(View, *Results) error         { return nil }

// TestFlushSuppressionMatchesNaive proves the evFlush optimization changes
// nothing observable: for seeds 1 and 42, across FIFO and batch policies,
// finite and infinite horizons, the suppressed-flush engine produces
// Results deep-equal to the naive one-flush-per-enqueue engine — per-task
// records included — while keeping the event heap bounded.
func TestFlushSuppressionMatchesNaive(t *testing.T) {
	pred := oracle(t)
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		tasks := genTasks(seed, 300, 15)
		cases := []struct {
			name    string
			sched   func() sched.Scheduler
			horizon float64
		}{
			{"fifo", func() sched.Scheduler { return sched.FIFO{} }, math.Inf(1)},
			{"mibs8", func() sched.Scheduler {
				return &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 8}
			}, math.Inf(1)},
			{"mibs8-horizon", func() sched.Scheduler {
				return &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 8}
			}, 4000},
		}
		for _, c := range cases {
			naive, _ := runFlushMode(t, true, c.sched(), 6, tasks, c.horizon, 25)
			fast, maxHeap := runFlushMode(t, false, c.sched(), 6, tasks, c.horizon, 25)
			if !reflect.DeepEqual(naive, fast) {
				t.Errorf("seed %d %s: suppressed-flush results differ from naive flush\nnaive: %+v\nfast:  %+v",
					seed, c.name, summary(naive), summary(fast))
			}
			// 300 tasks → the naive scheme would hold up to 300 flush events;
			// the suppressed scheme keeps at most one armed alongside
			// arrivals and completions.
			if maxHeap > len(tasks)+2*6*vmsPerMachine+2 {
				t.Errorf("seed %d %s: event heap high-water %d suggests flush bloat", seed, c.name, maxHeap)
			}
		}
	}
}

func summary(r *Results) map[string]float64 {
	return map[string]float64{
		"completed": float64(r.CompletedCount),
		"runtime":   r.TotalRuntime,
		"wait":      r.TotalWait,
		"energy":    r.EnergyJ,
		"horizon":   r.Horizon,
	}
}

// TestObserverDoesNotPerturbRun: attaching observers must leave Results
// bit-identical to an unobserved run.
func TestObserverDoesNotPerturbRun(t *testing.T) {
	pred := oracle(t)
	tasks := genTasks(9, 120, 20)
	run := func(obs Observer) *Results {
		s := &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 4}
		eng, err := NewEngine(Config{Machines: 4, Scheduler: s, Table: table(t), Observer: obs})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	max := 0
	plain := run(nil)
	observed := run(heapWatcher{max: &max})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observer perturbed the run: %+v vs %+v", summary(plain), summary(observed))
	}
	if max == 0 {
		t.Fatal("observer never fired")
	}
}

// TestFlushStillPreventsStarvation: the suppression must preserve the
// original guarantee that a partial batch cannot starve — including after
// the armed flush is spent and the backlog refills from releases.
func TestFlushStillPreventsStarvation(t *testing.T) {
	pred := oracle(t)
	s := &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 8}
	eng, err := NewEngine(Config{Machines: 2, Scheduler: s, Table: table(t), FlushTimeout: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Two trickling arrivals far apart: each must flush on its own timeout.
	tasks := []sched.Task{
		{ID: 0, App: "email", Arrival: 0},
		{ID: 1, App: "email", Arrival: 5000},
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 2 {
		t.Fatalf("completed %d of 2: starvation", res.CompletedCount)
	}
	for _, r := range res.Completed {
		if w := r.Wait(); w < 10-1e-9 || w > 60 {
			t.Fatalf("task %d wait %v, expected ≈ flush timeout", r.Task.ID, w)
		}
	}
}
