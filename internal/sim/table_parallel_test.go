package sim

import (
	"reflect"
	"testing"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// TestParallelTableMatchesSequential asserts the headline guarantee of the
// parallel build: same host, same apps, any worker count — the exact same
// table, down to the last bit.
func TestParallelTableMatchesSequential(t *testing.T) {
	host, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	var specs []xen.AppSpec
	for _, b := range workload.Benchmarks() {
		specs = append(specs, b.Spec)
	}
	seq := table(t) // the shared sequential fixture over the same specs

	for _, workers := range []int{2, 4, 16} {
		p, err := BuildInterferenceTableParallel(host, specs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(p.apps, seq.apps) {
			t.Fatalf("workers=%d: apps %v vs %v", workers, p.apps, seq.apps)
		}
		if !reflect.DeepEqual(p.soloRT, seq.soloRT) ||
			!reflect.DeepEqual(p.soloIO, seq.soloIO) ||
			!reflect.DeepEqual(p.soloOps, seq.soloOps) {
			t.Fatalf("workers=%d: solo maps differ", workers)
		}
		if !reflect.DeepEqual(p.rate, seq.rate) ||
			!reflect.DeepEqual(p.iops, seq.iops) ||
			!reflect.DeepEqual(p.util, seq.util) {
			t.Fatalf("workers=%d: pair maps differ", workers)
		}
	}
}

func TestParallelTableRejectsBadInput(t *testing.T) {
	host, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildInterferenceTableParallel(host, nil, 4); err == nil {
		t.Error("empty app set must fail")
	}
	b, err := workload.BenchmarkByName("blastn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildInterferenceTableParallel(host, []xen.AppSpec{b.Spec, b.Spec}, 4); err == nil {
		t.Error("duplicate app must fail")
	}
}
