package sim

import (
	"math"
	"testing"

	"tracon/internal/sched"
)

func TestWorkflowChainRunsInOrder(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 4, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	tasks := []sched.Task{
		{ID: 1, App: "blastn"},
		{ID: 2, App: "freqmine", DependsOn: []int64{1}},
		{ID: 3, App: "dedup", DependsOn: []int64{2}},
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 3 {
		t.Fatalf("completed %d of 3", res.CompletedCount)
	}
	finish := map[int64]float64{}
	start := map[int64]float64{}
	for _, r := range res.Completed {
		finish[r.Task.ID] = r.Finish
		start[r.Task.ID] = r.Start
	}
	if !(start[2] >= finish[1] && start[3] >= finish[2]) {
		t.Fatalf("chain order violated: starts %v finishes %v", start, finish)
	}
	// A chain on an otherwise idle cluster never interferes: the makespan
	// is the sum of solo runtimes.
	want := tb.SoloRuntime("blastn") + tb.SoloRuntime("freqmine") + tb.SoloRuntime("dedup")
	if math.Abs(res.LastFinish-want)/want > 0.01 {
		t.Fatalf("makespan %v want ≈%v", res.LastFinish, want)
	}
}

func TestWorkflowDiamondParallelizes(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 4, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	// blastn fans out to two independent stages which join into dedup.
	tasks := []sched.Task{
		{ID: 1, App: "blastn"},
		{ID: 2, App: "freqmine", DependsOn: []int64{1}},
		{ID: 3, App: "compile", DependsOn: []int64{1}},
		{ID: 4, App: "dedup", DependsOn: []int64{2, 3}},
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 4 {
		t.Fatalf("completed %d of 4", res.CompletedCount)
	}
	var rec = map[int64]TaskRecord{}
	for _, r := range res.Completed {
		rec[r.Task.ID] = r
	}
	// The middle stages overlap in time (they run on a 4-machine cluster).
	if rec[2].Start >= rec[3].Finish || rec[3].Start >= rec[2].Finish {
		t.Fatalf("fan-out stages did not overlap: %+v %+v", rec[2], rec[3])
	}
	if rec[4].Start < rec[2].Finish-1e-9 || rec[4].Start < rec[3].Finish-1e-9 {
		t.Fatal("join stage started before both parents finished")
	}
}

func TestWorkflowInterferenceAwareSchedulingHelpsPipelines(t *testing.T) {
	// Four two-stage pipelines submitted together: the scheduler decides
	// which stages co-locate. MIBS must not lose to FIFO on total runtime.
	tb := table(t)
	pred := oracle(t)
	mk := func() []sched.Task {
		var tasks []sched.Task
		id := int64(0)
		for p := 0; p < 4; p++ {
			first := id
			tasks = append(tasks, sched.Task{ID: id, App: []string{"video", "blastn", "dedup", "freqmine"}[p]})
			id++
			tasks = append(tasks, sched.Task{ID: id, App: []string{"email", "blastp", "web", "compile"}[p], DependsOn: []int64{first}})
			id++
		}
		return tasks
	}
	run := func(s sched.Scheduler) *Results {
		eng, err := NewEngine(Config{Machines: 2, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(mk(), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletedCount != 8 {
			t.Fatalf("%s completed %d of 8", s.Name(), res.CompletedCount)
		}
		return res
	}
	fifo := run(sched.FIFO{})
	mibs := run(&sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 8})
	if mibs.TotalRuntime > fifo.TotalRuntime*1.02 {
		t.Fatalf("MIBS total runtime %v worse than FIFO %v on pipelines", mibs.TotalRuntime, fifo.TotalRuntime)
	}
}

func TestWorkflowValidation(t *testing.T) {
	tb := table(t)
	run := func(tasks []sched.Task) error {
		eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		_, err = eng.Run(tasks, math.Inf(1))
		return err
	}
	if err := run([]sched.Task{{ID: 1, App: "email", DependsOn: []int64{99}}}); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	if err := run([]sched.Task{{ID: 1, App: "email", DependsOn: []int64{1}}}); err == nil {
		t.Fatal("self-dependency accepted")
	}
	if err := run([]sched.Task{
		{ID: 1, App: "email", DependsOn: []int64{2}},
		{ID: 2, App: "web", DependsOn: []int64{1}},
	}); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := run([]sched.Task{{ID: 1, App: "email"}, {ID: 1, App: "web"}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestWorkflowDependencyCompletesBeforeArrival(t *testing.T) {
	// The dependent arrives long after its parent has finished; it must
	// run immediately on arrival.
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	late := tb.SoloRuntime("email") + 5000
	tasks := []sched.Task{
		{ID: 1, App: "email"},
		{ID: 2, App: "web", Arrival: late, DependsOn: []int64{1}},
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 2 {
		t.Fatalf("completed %d", res.CompletedCount)
	}
	for _, r := range res.Completed {
		if r.Task.ID == 2 && r.Wait() > 60 {
			t.Fatalf("late dependent waited %v after arrival", r.Wait())
		}
	}
}
