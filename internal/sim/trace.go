package sim

import "tracon/internal/sched"

// This file is the engine's tracing surface, the per-event sibling of the
// aggregate Observer hooks in observe.go. A Tracer receives one callback
// per lifecycle transition of every task (arrival → queue → placement →
// interference-dilated execution segments → completion) and per scheduler
// decision, synchronously on the engine goroutine in event order. A nil
// Config.Tracer costs one branch per emission point; a non-nil tracer must
// not perturb the simulation — every payload is data the engine computes
// anyway, and the golden no-perturbation tests enforce it. Unlike
// observers, tracer callbacks cannot fail: tracing is a recorder, not a
// validator, so it has no error channel that could abort a run.
//
// All payload values are pure functions of the simulated run, so a
// deterministic Tracer implementation (see internal/obs) produces
// byte-identical exports for the same seed at every worker count.

// Tracer records structured simulation events. Implementations must treat
// every payload as read-only and must not call back into the engine.
type Tracer interface {
	// TraceArrival fires when an arrival event is processed. held reports
	// that the task has unmet workflow dependencies and was parked instead
	// of queued; a TraceEnqueue with released=true follows once the last
	// dependency completes.
	TraceArrival(now float64, t sched.Task, held bool)
	// TraceEnqueue fires when a task enters the scheduling backlog.
	// released marks tasks a workflow-dependency completion just unblocked.
	TraceEnqueue(now float64, t sched.Task, released bool)
	// TraceFlush fires when a flush wake-up forces a scheduling pass on a
	// partial batch.
	TraceFlush(now float64)
	// TraceDecision fires after every scheduling-policy invocation.
	TraceDecision(now float64, d Decision)
	// TracePop fires after each free-pool resolution.
	TracePop(now float64, p PopInfo)
	// TracePlace fires when a task starts on a concrete VM.
	TracePlace(now float64, p PlaceInfo)
	// TraceSegment fires when a running task's progress rate is repriced
	// (machine membership changed): the start of one execution segment.
	// The segment ends at the slot's next TraceSegment or TraceComplete.
	TraceSegment(now float64, s Segment)
	// TraceComplete fires for every completed task.
	TraceComplete(now float64, c Completion)
	// TraceFault fires for every fault-injection transition (see fault.go):
	// machine crash/recover, attempt failure/timeout/eviction, scheduled
	// retries and abandoned tasks. Never fires in fault-free runs.
	TraceFault(now float64, f FaultInfo)
	// TraceDone fires once when the run ends, after final energy settlement.
	TraceDone(now float64, res *Results)
}

// Decision describes one scheduling-policy invocation for tracing: the
// batch offered, what the policy placed, and the candidate set it saw.
type Decision struct {
	// Batch is the number of tasks offered to the policy.
	Batch int
	// Placed is the number of placements the policy emitted.
	Placed int
	// Backlog is the queue length at decision time (batch included).
	Backlog int
	// FreeSlots is the free-VM count at decision time.
	FreeSlots int
	// Candidates is the free pool's per-category slot counts — the
	// candidate set the policy chose from — sorted by category for
	// deterministic export.
	Candidates []CategoryCount
}

// CategoryCount is one candidate-set entry: free slots per neighbour app.
type CategoryCount struct {
	Category string
	N        int
}

// PlaceInfo describes one placement for tracing.
type PlaceInfo struct {
	// Task is the placed task.
	Task sched.Task
	// Machine and Slot name the VM the task starts on.
	Machine, Slot int
	// Neighbour is the application on the machine's other slot at
	// placement time (empty when the machine was idle).
	Neighbour string
	// Work is the task's solo execution time in seconds — the work the
	// task must progress through at its interference-dilated rate.
	Work float64
	// Predicted is the runtime forecast frozen at placement: Work over the
	// progress rate under Neighbour. Comparing it with the realized
	// runtime isolates mid-flight neighbour churn.
	Predicted float64
}

// FaultInfo describes one fault-injection transition for tracing.
type FaultInfo struct {
	// Kind is one of the Fault* constants in fault.go: fail, timeout,
	// evict, retry, lost, machine_down, machine_up.
	Kind string
	// Machine and Slot locate the transition (-1 when not applicable:
	// machine transitions carry Slot -1, retry/lost carry both -1).
	Machine, Slot int
	// TaskID and App identify the affected task (zero/empty for machine
	// transitions).
	TaskID int64
	App    string
	// Attempt is the task's placement attempts made so far.
	Attempt int
	// Delay is the retry backoff in seconds (retry only).
	Delay float64
}

// Segment describes the start of one execution segment: a maximal interval
// over which a running task progresses at a constant interference-dilated
// rate. A new segment starts whenever machine membership changes.
type Segment struct {
	// Machine and Slot locate the running task.
	Machine, Slot int
	// TaskID and App identify it.
	TaskID int64
	App    string
	// Rate is the progress rate for this segment (1 = solo speed; lower
	// means the neighbour dilutes it).
	Rate float64
	// Neighbour is the co-resident application ("" when running alone).
	Neighbour string
	// WorkLeft is the remaining solo-seconds of work at segment start.
	WorkLeft float64
}
