package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"tracon/internal/fault"
	"tracon/internal/sched"
)

// recTracer records fault transitions (and a printable event log) for
// assertions; every other callback is a no-op.
type recTracer struct {
	faults []FaultInfo
	log    []string
}

func (r *recTracer) TraceArrival(now float64, t sched.Task, held bool) {}
func (r *recTracer) TraceEnqueue(now float64, t sched.Task, rel bool)  {}
func (r *recTracer) TraceFlush(now float64)                            {}
func (r *recTracer) TraceDecision(now float64, d Decision)             {}
func (r *recTracer) TracePop(now float64, p PopInfo)                   {}
func (r *recTracer) TracePlace(now float64, p PlaceInfo) {
	r.log = append(r.log, fmt.Sprintf("place t=%.6f task=%d m=%d s=%d", now, p.Task.ID, p.Machine, p.Slot))
}
func (r *recTracer) TraceSegment(now float64, s Segment) {}
func (r *recTracer) TraceComplete(now float64, c Completion) {
	r.log = append(r.log, fmt.Sprintf("complete t=%.6f task=%d", now, c.Record.Task.ID))
}
func (r *recTracer) TraceFault(now float64, f FaultInfo) {
	r.faults = append(r.faults, f)
	r.log = append(r.log, fmt.Sprintf("fault t=%.6f %+v", now, f))
}
func (r *recTracer) TraceDone(now float64, res *Results) {}

// TestChaosCrashRecoveryCompletesAllTasks is the acceptance scenario: crash
// 1 of N machines mid-run; every task must still complete via re-placement
// and retry.
func TestChaosCrashRecoveryCompletesAllTasks(t *testing.T) {
	tb := table(t)
	s := tb.SoloRuntime("blastn")
	tasks := taskList("blastn", "video", "freqmine", "blastn", "video", "freqmine", "blastn", "video", "freqmine", "blastn", "video", "freqmine")
	plan := &fault.Plan{
		Crashes: []fault.Crash{{Machine: 1, DownAt: 0.2 * s, UpAt: 0.5 * s}},
		Retry:   fault.RetryPolicy{MaxAttempts: 5, Backoff: 0.01 * s, BackoffFactor: 1},
	}
	tr := &recTracer{}
	eng, err := NewEngine(Config{Machines: 4, Scheduler: sched.FIFO{}, Table: tb, Faults: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != len(tasks) || res.Lost != 0 {
		t.Fatalf("completed %d of %d (lost %d)", res.CompletedCount, len(tasks), res.Lost)
	}
	if res.MachineDowns != 1 || res.MachineUps != 1 {
		t.Fatalf("machine transitions: %d down, %d up", res.MachineDowns, res.MachineUps)
	}
	// Machine 1 had both VMs busy when it crashed (FIFO fills all 8 slots
	// with the first 8 tasks), so exactly two attempts were evicted.
	if res.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", res.Evictions)
	}
	if res.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", res.Retries)
	}
	// Recovery must be visible in the trace in order: down, evictions,
	// retries, up.
	var kinds []string
	for _, f := range tr.faults {
		kinds = append(kinds, f.Kind)
	}
	want := []string{FaultMachineDown, FaultEvict, FaultRetry, FaultEvict, FaultRetry, FaultMachineUp}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("fault sequence = %v, want %v", kinds, want)
	}
}

// TestChaosDeterministicRepeatRuns: the same fault-injected configuration
// must reproduce identical results and identical event logs.
func TestChaosDeterministicRepeatRuns(t *testing.T) {
	tb := table(t)
	s := tb.SoloRuntime("blastn")
	plan := &fault.Plan{
		Seed:        42,
		FailProb:    0.2,
		TaskTimeout: 3 * s,
		Crashes: []fault.Crash{
			{Machine: 0, DownAt: 0.3 * s, UpAt: 0.7 * s},
			{Machine: 2, DownAt: 0.5 * s},
		},
		Slowdowns: []fault.Slowdown{{Machine: 1, Slot: 0, From: 0.1 * s, To: 0.4 * s, Factor: 0.25}},
		Retry:     fault.RetryPolicy{MaxAttempts: 4, Backoff: 0.05 * s},
	}
	run := func() (*Results, []string) {
		tr := &recTracer{}
		eng, err := NewEngine(Config{Machines: 3, Scheduler: sched.FIFO{}, Table: tb, Faults: plan, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		tasks := taskList("video", "freqmine", "blastn", "video", "freqmine", "blastn", "video", "freqmine")
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res, tr.log
	}
	res1, log1 := run()
	res2, log2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("results differ between identical runs:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatal("event logs differ between identical runs")
	}
	// The plan must actually have injected something.
	if res1.Evictions == 0 && res1.FailedAttempts == 0 && res1.Timeouts == 0 {
		t.Fatal("plan injected no faults; the test asserts nothing")
	}
}

// TestTimeoutRacingCompletion: a timeout landing at the exact instant the
// attempt would complete wins deterministically (it carries the earlier
// sequence number), every time — so a timeout equal to the solo runtime
// exhausts the attempt budget.
func TestTimeoutRacingCompletion(t *testing.T) {
	tb := table(t)
	s := tb.SoloRuntime("blastn")

	run := func(timeout float64) *Results {
		plan := &fault.Plan{TaskTimeout: timeout, Retry: fault.RetryPolicy{MaxAttempts: 3, Backoff: 1}}
		eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(taskList("blastn"), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Deadline exactly at the completion instant: the timeout wins the tie
	// on every attempt and the task is lost after three timeouts.
	res := run(s)
	if res.Timeouts != 3 || res.Lost != 1 || res.CompletedCount != 0 {
		t.Fatalf("tie race: timeouts=%d lost=%d completed=%d, want 3/1/0",
			res.Timeouts, res.Lost, res.CompletedCount)
	}
	// A deadline just past the completion instant never fires.
	res = run(s * 1.0001)
	if res.Timeouts != 0 || res.CompletedCount != 1 {
		t.Fatalf("loose deadline: timeouts=%d completed=%d, want 0/1", res.Timeouts, res.CompletedCount)
	}
}

// TestRetryAfterDoubleCrash: a task whose machine crashes twice is evicted
// twice and completes on its third attempt.
func TestRetryAfterDoubleCrash(t *testing.T) {
	tb := table(t)
	s := tb.SoloRuntime("blastn")
	plan := &fault.Plan{
		Crashes: []fault.Crash{
			{Machine: 0, DownAt: 0.2 * s, UpAt: 0.3 * s},
			{Machine: 0, DownAt: 0.5 * s, UpAt: 0.6 * s},
		},
		Retry: fault.RetryPolicy{MaxAttempts: 3, Backoff: 0.01 * s, BackoffFactor: 1},
	}
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("blastn"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions != 2 || res.Retries != 2 || res.Lost != 0 || res.CompletedCount != 1 {
		t.Fatalf("evictions=%d retries=%d lost=%d completed=%d, want 2/2/0/1",
			res.Evictions, res.Retries, res.Lost, res.CompletedCount)
	}
	// The third attempt starts at the second recovery and runs solo.
	rec := res.Completed[0]
	if math.Abs(rec.Start-0.6*s) > 1e-6*s {
		t.Fatalf("final attempt started at %v, want %v", rec.Start, 0.6*s)
	}
	if math.Abs(rec.Runtime()-s)/s > 1e-6 {
		t.Fatalf("final attempt runtime %v, want solo %v", rec.Runtime(), s)
	}
}

// TestBackoffCappingObserved: retry delays follow backoff · factor^(n−1)
// capped at MaxBackoff, as reported through the trace.
func TestBackoffCappingObserved(t *testing.T) {
	tb := table(t)
	plan := &fault.Plan{
		FailProb: 1, // every attempt fails
		Retry:    fault.RetryPolicy{MaxAttempts: 4, Backoff: 3, BackoffFactor: 2, MaxBackoff: 4},
	}
	tr := &recTracer{}
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb, Faults: plan, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("blastn"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedAttempts != 4 || res.Retries != 3 || res.Lost != 1 || res.CompletedCount != 0 {
		t.Fatalf("failed=%d retries=%d lost=%d completed=%d, want 4/3/1/0",
			res.FailedAttempts, res.Retries, res.Lost, res.CompletedCount)
	}
	var delays []float64
	for _, f := range tr.faults {
		if f.Kind == FaultRetry {
			delays = append(delays, f.Delay)
		}
	}
	if !reflect.DeepEqual(delays, []float64{3, 4, 4}) {
		t.Fatalf("retry delays = %v, want [3 4 4]", delays)
	}
}

// TestSlowdownStallDelaysCompletion: a full-stall window pauses progress
// for exactly its length, and the horizon is not dragged to a pseudo-time
// by an unschedulable stalled completion.
func TestSlowdownStallDelaysCompletion(t *testing.T) {
	tb := table(t)
	s := tb.SoloRuntime("blastn")
	plan := &fault.Plan{
		Slowdowns: []fault.Slowdown{{Machine: 0, Slot: 0, From: 0.1 * s, To: 0.3 * s, Factor: 0}},
	}
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("blastn"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 1 {
		t.Fatalf("completed %d", res.CompletedCount)
	}
	want := 1.2 * s // solo work plus the 0.2·s stall
	if got := res.Completed[0].Runtime(); math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("runtime %v, want %v", got, want)
	}
	if res.Horizon > 2*s {
		t.Fatalf("horizon %v dragged far past completion %v", res.Horizon, want)
	}
}

// TestEmptyPlanZeroPerturbation: a non-nil plan that injects nothing must
// leave the run byte-identical to a fault-free one.
func TestEmptyPlanZeroPerturbation(t *testing.T) {
	tb := table(t)
	tasks := taskList("video", "freqmine", "blastn", "video", "freqmine", "blastn", "video", "freqmine")
	run := func(plan *fault.Plan) (*Results, []string) {
		tr := &recTracer{}
		eng, err := NewEngine(Config{Machines: 3, Scheduler: sched.FIFO{}, Table: tb, Faults: plan, Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res, tr.log
	}
	base, baseLog := run(nil)
	empty, emptyLog := run(&fault.Plan{})
	if !reflect.DeepEqual(base, empty) {
		t.Fatalf("empty plan perturbed results:\n%+v\n%+v", base, empty)
	}
	if !reflect.DeepEqual(baseLog, emptyLog) {
		t.Fatal("empty plan perturbed the event log")
	}
}

// TestFaultPlanValidatedAtEngineBuild: NewEngine rejects plans that target
// machines outside the cluster.
func TestFaultPlanValidatedAtEngineBuild(t *testing.T) {
	tb := table(t)
	plan := &fault.Plan{Crashes: []fault.Crash{{Machine: 9, DownAt: 1}}}
	if _, err := NewEngine(Config{Machines: 2, Scheduler: sched.FIFO{}, Table: tb, Faults: plan}); err == nil {
		t.Fatal("out-of-range crash accepted")
	}
}
