package sim

import (
	"math"
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

var (
	tblOnce sync.Once
	tbl     *InterferenceTable
	tblTB   *xen.Testbed
)

func table(t *testing.T) *InterferenceTable {
	t.Helper()
	tblOnce.Do(func() {
		host, err := xen.NewHost(xen.DefaultHost())
		if err != nil {
			panic(err)
		}
		tblTB = xen.NewTestbed(host, 1, 0, 1)
		var specs []xen.AppSpec
		for _, b := range workload.Benchmarks() {
			specs = append(specs, b.Spec)
		}
		tbl, err = BuildInterferenceTable(host, specs)
		if err != nil {
			panic(err)
		}
	})
	return tbl
}

func oracle(t *testing.T) model.Predictor {
	t.Helper()
	table(t)
	var specs []xen.AppSpec
	for _, b := range workload.Benchmarks() {
		specs = append(specs, b.Spec)
	}
	return model.NewOracle(tblTB, specs)
}

func TestTableBasicInvariants(t *testing.T) {
	tb := table(t)
	if len(tb.Apps()) != 8 {
		t.Fatalf("apps = %v", tb.Apps())
	}
	for _, a := range tb.Apps() {
		if tb.SoloRuntime(a) <= 0 {
			t.Fatalf("%s solo runtime %v", a, tb.SoloRuntime(a))
		}
		if tb.Rate(a, "") != 1 {
			t.Fatalf("%s solo rate != 1", a)
		}
		for _, b := range tb.Apps() {
			r := tb.Rate(a, b)
			if r <= 0 || r > 1+1e-9 {
				t.Fatalf("rate(%s|%s) = %v out of (0,1]", a, b, r)
			}
			if io := tb.IOPS(a, b); io < 0 || io > tb.SoloIOPS(a)+1e-6 {
				t.Fatalf("iops(%s|%s) = %v exceeds solo %v", a, b, io, tb.SoloIOPS(a))
			}
		}
	}
}

func TestTableSelfInterferenceHurts(t *testing.T) {
	tb := table(t)
	// The I/O-heaviest app must suffer from a twin neighbour.
	if r := tb.Rate("video", "video"); r > 0.6 {
		t.Fatalf("video|video rate = %v, expected heavy slowdown", r)
	}
	// And a compute-heavy app barely hurts an I/O app compared to that.
	if tb.Rate("video", "blastp") <= tb.Rate("video", "video") {
		t.Fatal("blastp neighbour should be gentler than video neighbour")
	}
}

func taskList(apps ...string) []sched.Task {
	out := make([]sched.Task, len(apps))
	for i, a := range apps {
		out[i] = sched.Task{ID: int64(i), App: a}
	}
	return out
}

func TestSingleTaskRunsAtSoloRuntime(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("blastn"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 {
		t.Fatalf("completed %d", len(res.Completed))
	}
	got := res.Completed[0].Runtime()
	want := tb.SoloRuntime("blastn")
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("runtime %v want %v", got, want)
	}
}

func TestTwoTasksOneMachineInterfere(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("video", "video"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 2 {
		t.Fatalf("completed %d", len(res.Completed))
	}
	solo := tb.SoloRuntime("video")
	for _, r := range res.Completed {
		if r.Runtime() < solo*1.5 {
			t.Fatalf("co-located video runtime %v should far exceed solo %v", r.Runtime(), solo)
		}
	}
}

func TestRemainingWorkRescaling(t *testing.T) {
	// One machine: a long I/O task plus a short CPU task; when the short
	// one finishes, the long one must speed back up. Its total runtime must
	// land strictly between solo and fully-paired runtimes.
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("video", "blastp"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	var videoRec TaskRecord
	for _, r := range res.Completed {
		if r.Task.App == "video" {
			videoRec = r
		}
	}
	solo := tb.SoloRuntime("video")
	paired := solo / tb.Rate("video", "blastp")
	got := videoRec.Runtime()
	if got <= solo+1e-9 || got >= paired-1e-9 {
		// blastp runs much longer than video here, so video may stay paired
		// its whole life; then got ≈ paired. Accept equality with paired.
		if math.Abs(got-paired)/paired > 1e-6 {
			t.Fatalf("video runtime %v outside (solo %v, paired %v)", got, solo, paired)
		}
	}
}

func TestRescalingSpeedsUpSurvivor(t *testing.T) {
	// Pick the pair dynamically: long runs beside short; short finishes
	// first, so the survivor's runtime must land strictly between its solo
	// and fully-paired runtimes.
	tb := table(t)
	long, short := "video", "freqmine"
	if tb.SoloRuntime(long)/tb.Rate(long, short) <= tb.SoloRuntime(short)/tb.Rate(short, long) {
		t.Fatalf("test premise broken: %s no longer outlives %s", long, short)
	}
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList(long, short), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	var rec TaskRecord
	for _, r := range res.Completed {
		if r.Task.App == long {
			rec = r
		}
	}
	solo := tb.SoloRuntime(long)
	paired := solo / tb.Rate(long, short)
	if !(rec.Runtime() > solo+1e-6 && rec.Runtime() < paired-1e-6) {
		t.Fatalf("%s runtime %v not in (solo %v, paired %v)", long, rec.Runtime(), solo, paired)
	}
}

func TestFIFOFillsMachinesInOrder(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 2, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("email", "email", "email"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 3 {
		t.Fatalf("completed %d", len(res.Completed))
	}
	// First two tasks pair on machine 0; the third gets machine 1.
	placements := map[int64]int{}
	for _, r := range res.Completed {
		placements[r.Task.ID] = r.Machine
	}
	if placements[0] != 0 || placements[1] != 0 || placements[2] != 1 {
		t.Fatalf("FIFO placements: %v", placements)
	}
}

func TestMIOSBeatsFIFOOnAdversarialBatch(t *testing.T) {
	// Arrival order alternates heavy-I/O pairs; FIFO co-locates them, MIOS
	// must not.
	tb := table(t)
	pred := oracle(t)
	apps := []string{"video", "dedup", "blastp", "email", "video", "dedup", "blastp", "email"}

	run := func(s sched.Scheduler) float64 {
		eng, err := NewEngine(Config{Machines: 4, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(taskList(apps...), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Completed) != len(apps) {
			t.Fatalf("%s completed %d of %d", s.Name(), len(res.Completed), len(apps))
		}
		return res.TotalRuntime
	}
	fifo := run(sched.FIFO{})
	mios := run(&sched.MIOS{Scorer: sched.NewScorer(pred, sched.MinRuntime)})
	if mios >= fifo {
		t.Fatalf("MIOS total runtime %v should beat FIFO %v", mios, fifo)
	}
}

func TestMIBSStaticBeatsFIFO(t *testing.T) {
	// Any single batch can land near a tie (or FIFO can luck into a good
	// pairing), so the claim is statistical: across seeds, MIBS-RT must
	// beat FIFO in aggregate and in most individual runs.
	tb := table(t)
	pred := oracle(t)
	run := func(s sched.Scheduler, tasks []sched.Task) *Results {
		eng, err := NewEngine(Config{Machines: 8, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var fifoRT, mibsRT, fifoIO, mibsIO float64
	wins := 0
	const seeds = 6
	for seed := int64(1); seed <= seeds; seed++ {
		m := workload.NewMixer(seed)
		batch := m.Batch(workload.MediumIO, 16) // 8 machines × 2 VMs
		tasks := make([]sched.Task, len(batch))
		for i, spec := range batch {
			tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name)}
		}
		fifo := run(sched.FIFO{}, tasks)
		rt := run(&sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: len(tasks)}, tasks)
		io := run(&sched.MIBS{Scorer: sched.NewScorer(pred, sched.MaxIOPS), QueueLen: len(tasks)}, tasks)
		fifoRT += fifo.TotalRuntime
		mibsRT += rt.TotalRuntime
		fifoIO += fifo.TotalIOPS
		mibsIO += io.TotalIOPS
		if rt.TotalRuntime < fifo.TotalRuntime {
			wins++
		}
	}
	if mibsRT >= fifoRT {
		t.Fatalf("MIBS-RT aggregate runtime %v should beat FIFO %v", mibsRT, fifoRT)
	}
	if wins < seeds*2/3 {
		t.Fatalf("MIBS-RT won only %d of %d runs", wins, seeds)
	}
	if mibsIO <= fifoIO {
		t.Fatalf("MIBS-IO aggregate IOPS %v should beat FIFO %v", mibsIO, fifoIO)
	}
}

func TestDynamicPoissonCompletes(t *testing.T) {
	tb := table(t)
	mix := workload.NewMixer(7)
	rngTasks := mix.Batch(workload.MediumIO, 60)
	var tasks []sched.Task
	tm := 0.0
	for i, spec := range rngTasks {
		tm += 50
		tasks = append(tasks, sched.Task{ID: int64(i), App: workload.BaseName(spec.Name), Arrival: tm})
	}
	eng, err := NewEngine(Config{Machines: 16, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	horizon := 3600.0 * 3
	res, err := eng.Run(tasks, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) == 0 {
		t.Fatal("nothing completed")
	}
	if len(res.Completed) > len(tasks) {
		t.Fatal("completed more than submitted")
	}
	for _, r := range res.Completed {
		if r.Finish > horizon+1e-9 {
			t.Fatalf("task finished after horizon: %v", r.Finish)
		}
		if r.Start < r.Task.Arrival-1e-9 {
			t.Fatalf("task started before arrival: %+v", r)
		}
		if r.Runtime() < tb.SoloRuntime(r.Task.App)-1e-6 {
			t.Fatalf("task ran faster than solo: %+v", r)
		}
	}
}

func TestBatchSchedulerFlushesPartialQueue(t *testing.T) {
	// A single task with a q=8 batch scheduler must still run (after the
	// flush timeout), not starve.
	tb := table(t)
	pred := oracle(t)
	s := &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 8}
	eng, err := NewEngine(Config{Machines: 2, Scheduler: s, Table: tb, FlushTimeout: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("email"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 {
		t.Fatal("task starved in a partial batch")
	}
	if w := res.Completed[0].Wait(); w < 10-1e-9 || w > 60 {
		t.Fatalf("wait %v, expected ≈ flush timeout", w)
	}
}

func TestEngineDeterminism(t *testing.T) {
	tb := table(t)
	pred := oracle(t)
	mk := func() *Results {
		s := &sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: 4}
		eng, err := NewEngine(Config{Machines: 4, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		mix := workload.NewMixer(3)
		batch := mix.Batch(workload.HeavyIO, 12)
		var tasks []sched.Task
		for i, spec := range batch {
			tasks = append(tasks, sched.Task{ID: int64(i), App: workload.BaseName(spec.Name), Arrival: float64(i) * 20})
		}
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.TotalRuntime != b.TotalRuntime || len(a.Completed) != len(b.Completed) {
		t.Fatal("simulation not deterministic")
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	tb := table(t)
	if _, err := NewEngine(Config{Machines: 0, Scheduler: sched.FIFO{}, Table: tb}); err == nil {
		t.Fatal("0 machines accepted")
	}
	if _, err := NewEngine(Config{Machines: 1, Table: tb}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(taskList("nope"), math.Inf(1)); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestNoOvercommit(t *testing.T) {
	// More tasks than VMs: at no completion time may a machine hold more
	// than two concurrent tasks; total completed must equal submitted.
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 2, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(taskList("email", "web", "email", "web", "email", "web", "email", "web"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 8 {
		t.Fatalf("completed %d of 8", len(res.Completed))
	}
	// Overlap check per machine/slot: intervals on the same slot must not
	// overlap.
	type iv struct{ s, f float64 }
	slots := map[[2]int][]iv{}
	for _, r := range res.Completed {
		slots[[2]int{r.Machine, r.Slot}] = append(slots[[2]int{r.Machine, r.Slot}], iv{r.Start, r.Finish})
	}
	for key, list := range slots {
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.s < b.f-1e-9 && b.s < a.f-1e-9 {
					t.Fatalf("slot %v double-booked: %+v %+v", key, a, b)
				}
			}
		}
	}
}

func TestEnergyAccounting(t *testing.T) {
	tb := table(t)
	// A cluster that never runs anything draws only the sleep power.
	idle, err := NewEngine(Config{Machines: 4, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idle.Run(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantIdle := 4 * DefaultPower().OffW * 1000
	if math.Abs(res.EnergyJ-wantIdle) > 1 {
		t.Fatalf("idle cluster energy %v want %v", res.EnergyJ, wantIdle)
	}

	// Running work costs strictly more; the bound is peak power times the
	// horizon.
	busy, err := NewEngine(Config{Machines: 4, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	resBusy, err := busy.Run(taskList("video", "blastn", "compile"), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if resBusy.EnergyJ <= wantIdle {
		t.Fatalf("busy cluster energy %v not above idle baseline", resBusy.EnergyJ)
	}
	maxPossible := 4 * DefaultPower().PeakW * resBusy.Horizon
	if resBusy.EnergyJ > maxPossible {
		t.Fatalf("energy %v exceeds physical bound %v", resBusy.EnergyJ, maxPossible)
	}
	if resBusy.EnergyKWh() <= 0 || resBusy.EnergyPerTaskKJ() <= 0 {
		t.Fatal("energy conversions broken")
	}
}

func TestEnergyBetterSchedulingUsesLess(t *testing.T) {
	// Same work, better pairing → fewer machine-seconds → less energy.
	tb := table(t)
	pred := oracle(t)
	apps := []string{"video", "dedup", "blastn", "email", "blastp", "web", "video", "email"}
	run := func(s sched.Scheduler) *Results {
		eng, err := NewEngine(Config{Machines: 4, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(taskList(apps...), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := run(sched.FIFO{})
	mibs := run(&sched.MIBS{Scorer: sched.NewScorer(pred, sched.MinRuntime), QueueLen: len(apps)})
	// Energy is integrated to each run's own horizon; compare per-task cost.
	if mibs.EnergyPerTaskKJ() >= fifo.EnergyPerTaskKJ()*1.05 {
		t.Fatalf("MIBS energy/task %v should not exceed FIFO %v",
			mibs.EnergyPerTaskKJ(), fifo.EnergyPerTaskKJ())
	}
}

func TestHorizonCutsOffRunningTasks(t *testing.T) {
	tb := table(t)
	eng, err := NewEngine(Config{Machines: 1, Scheduler: sched.FIFO{}, Table: tb})
	if err != nil {
		t.Fatal(err)
	}
	// blastn solo ≈ 800 s; a 100 s horizon completes nothing.
	res, err := eng.Run(taskList("blastn"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 0 {
		t.Fatalf("completed %d before the horizon", res.CompletedCount)
	}
	if res.Horizon != 100 {
		t.Fatalf("horizon %v", res.Horizon)
	}
}

func TestDropRecordsKeepsAggregates(t *testing.T) {
	tb := table(t)
	run := func(drop bool) *Results {
		eng, err := NewEngine(Config{Machines: 2, Scheduler: sched.FIFO{}, Table: tb, DropRecords: drop})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(taskList("email", "web", "compile"), math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	if len(without.Completed) != 0 {
		t.Fatal("DropRecords kept records")
	}
	if without.CompletedCount != with.CompletedCount ||
		math.Abs(without.TotalRuntime-with.TotalRuntime) > 1e-9 ||
		math.Abs(without.TotalIOPS-with.TotalIOPS) > 1e-9 {
		t.Fatal("aggregates differ when records are dropped")
	}
}

func TestMeanHelpers(t *testing.T) {
	r := &Results{}
	if r.MeanRuntime() != 0 || r.MeanWait() != 0 || r.CompletedTasks() != 0 {
		t.Fatal("zero-value Results helpers broken")
	}
	r.CompletedCount = 4
	r.TotalRuntime = 100
	r.TotalWait = 20
	if r.MeanRuntime() != 25 || r.MeanWait() != 5 {
		t.Fatal("means wrong")
	}
}

func TestWorkConservationProperty(t *testing.T) {
	// Interference only slows tasks down: every completed task's runtime is
	// at least its solo runtime, so total runtime ≥ Σ solo runtimes.
	tb := table(t)
	mix := workload.NewMixer(17)
	batch := mix.Batch(workload.HeavyIO, 24)
	tasks := make([]sched.Task, len(batch))
	soloSum := 0.0
	for i, spec := range batch {
		app := workload.BaseName(spec.Name)
		tasks[i] = sched.Task{ID: int64(i), App: app}
		soloSum += tb.SoloRuntime(app)
	}
	for _, s := range []sched.Scheduler{
		sched.FIFO{},
		&sched.MIBS{Scorer: sched.NewScorer(oracle(t), sched.MinRuntime), QueueLen: len(tasks)},
	} {
		eng, err := NewEngine(Config{Machines: 6, Scheduler: s, Table: tb})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(tasks, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalRuntime < soloSum-1e-6 {
			t.Fatalf("%s: total runtime %v below solo sum %v", s.Name(), res.TotalRuntime, soloSum)
		}
	}
}
