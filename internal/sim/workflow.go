package sim

import (
	"fmt"

	"tracon/internal/sched"
)

// Workflow (DAG) support. The paper's subject is data-intensive scientific
// workflows; its evaluation uses independent tasks, but the framework is
// pitched at workflow systems (pSciMapper is the closest related work).
// The engine therefore honours Task.DependsOn: a task becomes schedulable
// only once all of its dependencies have completed, so whole pipelines
// (e.g. sequence-search → mining → dedup stages) can be pushed through an
// interference-aware cluster.

// depState tracks the dependency bookkeeping of one run.
type depState struct {
	unmet      map[int64]int     // task ID → number of incomplete deps
	dependents map[int64][]int64 // task ID → tasks waiting on it
	held       map[int64]heldTask
	done       map[int64]bool
}

type heldTask struct {
	task    taskRef
	arrived bool
}

// taskRef aliases the scheduler task type for readability.
type taskRef = sched.Task

// validateDAG checks that every dependency references a submitted task and
// that the dependency graph is acyclic (Kahn's algorithm). It returns the
// prepared depState (nil when no task has dependencies — the common,
// paper-faithful case costs nothing).
func validateDAG(tasks []taskRef) (*depState, error) {
	hasDeps := false
	ids := make(map[int64]bool, len(tasks))
	for _, t := range tasks {
		if ids[t.ID] {
			return nil, fmt.Errorf("sim: duplicate task ID %d", t.ID)
		}
		ids[t.ID] = true
		if len(t.DependsOn) > 0 {
			hasDeps = true
		}
	}
	if !hasDeps {
		return nil, nil
	}
	ds := &depState{
		unmet:      map[int64]int{},
		dependents: map[int64][]int64{},
		held:       map[int64]heldTask{},
		done:       map[int64]bool{},
	}
	indeg := map[int64]int{}
	for _, t := range tasks {
		for _, d := range t.DependsOn {
			if !ids[d] {
				return nil, fmt.Errorf("sim: task %d depends on unknown task %d", t.ID, d)
			}
			if d == t.ID {
				return nil, fmt.Errorf("sim: task %d depends on itself", t.ID)
			}
			ds.unmet[t.ID]++
			ds.dependents[d] = append(ds.dependents[d], t.ID)
			indeg[t.ID]++
		}
	}
	// Kahn's algorithm for cycle detection.
	var frontier []int64
	for _, t := range tasks {
		if indeg[t.ID] == 0 {
			frontier = append(frontier, t.ID)
		}
	}
	visited := 0
	for len(frontier) > 0 {
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		visited++
		for _, dep := range ds.dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				frontier = append(frontier, dep)
			}
		}
	}
	if visited != len(tasks) {
		return nil, fmt.Errorf("sim: dependency cycle among submitted tasks")
	}
	return ds, nil
}

// ready reports whether the task can enter the scheduling queue now.
func (ds *depState) ready(id int64) bool { return ds == nil || ds.unmet[id] == 0 }

// heldCount reports how many arrived tasks are parked on unmet
// dependencies (for observers and tracers; nil-safe like ready).
func (ds *depState) heldCount() int {
	if ds == nil {
		return 0
	}
	return len(ds.held)
}

// hold parks an arrived task until its dependencies complete.
func (ds *depState) hold(t taskRef) { ds.held[t.ID] = heldTask{task: t, arrived: true} }

// complete marks a task done and returns the tasks it released.
func (ds *depState) complete(id int64) []taskRef {
	if ds == nil {
		return nil
	}
	ds.done[id] = true
	var released []taskRef
	for _, dep := range ds.dependents[id] {
		ds.unmet[dep]--
		if ds.unmet[dep] == 0 {
			if h, ok := ds.held[dep]; ok && h.arrived {
				released = append(released, h.task)
				delete(ds.held, dep)
			}
		}
	}
	return released
}
