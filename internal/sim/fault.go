package sim

import "tracon/internal/sched"

// This file is the engine's fault-recovery machinery, active only when
// Config.Faults is set (see internal/fault for the plan format). Crashed
// machines evict their running tasks; evicted, probabilistically failed and
// timed-out attempts re-enter the backlog after the plan's backoff, bounded
// by its attempt budget. Every transition is traced through TraceFault and
// counted in Results, and all of it is driven by heap events whose order is
// a pure function of the inputs — fault-injected runs stay byte-identical
// across worker counts and reproducible from the seed.

// Fault kinds reported through Tracer.TraceFault.
const (
	// FaultFail is a probabilistic attempt failure at the moment the
	// attempt would have completed.
	FaultFail = "fail"
	// FaultTimeout is an attempt evicted at its per-attempt deadline.
	FaultTimeout = "timeout"
	// FaultEvict is an attempt orphaned by its machine crashing.
	FaultEvict = "evict"
	// FaultRetry is a re-placement entering the backoff delay.
	FaultRetry = "retry"
	// FaultLost is a task abandoned after exhausting its attempt budget.
	FaultLost = "lost"
	// FaultMachineDown and FaultMachineUp are machine crash/recover
	// transitions.
	FaultMachineDown = "machine_down"
	FaultMachineUp   = "machine_up"
)

// machineDown crashes machine m: running attempts are evicted and queued
// for retry, both pool slots leave the free pool, and the machine draws
// off-power until it recovers.
func (e *Engine) machineDown(m int) {
	e.settle(m)
	e.down[m] = true
	e.downCount++
	e.results.MachineDowns++
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceFault(e.now, FaultInfo{Kind: FaultMachineDown, Machine: m, Slot: -1})
	}
	ms := &e.machines[m]
	for s := range ms.slots {
		if rt := ms.slots[s]; rt != nil {
			ms.slots[s] = nil
			e.results.Evictions++
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.TraceFault(e.now, FaultInfo{
					Kind: FaultEvict, Machine: m, Slot: s,
					TaskID: rt.task.ID, App: rt.task.App, Attempt: e.attempts[rt.task.ID],
				})
			}
			e.retryOrLose(rt.task)
		}
		e.pool.SetBusy(m, s)
	}
	e.settleEnergy(m) // the machine is now empty: off-power
}

// machineUp recovers machine m: both slots re-enter the free pool as an
// idle machine, stamped now so FIFO-over-VMs fairness treats them as the
// newest free slots.
func (e *Engine) machineUp(m int) {
	e.down[m] = false
	e.downCount--
	e.results.MachineUps++
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceFault(e.now, FaultInfo{Kind: FaultMachineUp, Machine: m, Slot: -1})
	}
	for s := 0; s < vmsPerMachine; s++ {
		e.pool.SetFree(m, s, sched.EmptyCategory)
	}
	e.settleEnergy(m)
}

// evictAttempt ends the attempt running in (m, slot) without completing it
// (kind is FaultFail or FaultTimeout; crash evictions go through
// machineDown), frees the slot with the same pool bookkeeping as a
// completion, and queues the task for retry.
func (e *Engine) evictAttempt(m, slot int, kind string) {
	e.settle(m)
	ms := &e.machines[m]
	rt := ms.slots[slot]
	ms.slots[slot] = nil
	switch kind {
	case FaultFail:
		e.results.FailedAttempts++
	case FaultTimeout:
		e.results.Timeouts++
	}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceFault(e.now, FaultInfo{
			Kind: kind, Machine: m, Slot: slot,
			TaskID: rt.task.ID, App: rt.task.App, Attempt: e.attempts[rt.task.ID],
		})
	}
	// The freed slot's category is the survivor's app; an idle machine is
	// empty-category on both slots (mirrors complete()).
	other := ms.slots[1-slot]
	if other != nil {
		e.pool.SetFree(m, slot, other.task.App)
	} else {
		e.pool.SetFree(m, slot, sched.EmptyCategory)
		if _, free := e.pool.Category(m, 1-slot); free {
			e.pool.SetFree(m, 1-slot, sched.EmptyCategory)
		}
	}
	e.reprice(m)
	e.settleEnergy(m)
	e.retryOrLose(rt.task)
}

// retryOrLose schedules the task's next attempt after the plan's backoff,
// or abandons it once the attempt budget is exhausted.
func (e *Engine) retryOrLose(t sched.Task) {
	made := e.attempts[t.ID]
	if !e.cfg.Faults.RetryAllowed(made + 1) {
		e.results.Lost++
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.TraceFault(e.now, FaultInfo{
				Kind: FaultLost, Machine: -1, Slot: -1,
				TaskID: t.ID, App: t.App, Attempt: made,
			})
		}
		return
	}
	delay := e.cfg.Faults.RetryDelay(made)
	e.results.Retries++
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceFault(e.now, FaultInfo{
			Kind: FaultRetry, Machine: -1, Slot: -1,
			TaskID: t.ID, App: t.App, Attempt: made, Delay: delay,
		})
	}
	e.push(event{time: e.now + delay, kind: evRetry, task: t})
}
