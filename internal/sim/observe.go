package sim

import (
	"time"

	"tracon/internal/sched"
)

// This file is the engine's observability surface: an Observer receives
// synchronous callbacks at every interesting point of a run, with a View
// handle for read-only inspection of the engine's internals. A nil
// Config.Observer costs nothing — every hook site is guarded by a nil
// check — and a non-nil observer must not perturb the simulation: all View
// accessors are pure reads, and the engine feeds observers data it computes
// anyway. The PR-1 determinism golden tests run with observers attached to
// enforce this.

// EventKind labels a processed simulation event for observers.
type EventKind int

// The event kinds of the engine's event loop. The fault kinds (EvFail and
// later) occur only in fault-injected runs (Config.Faults non-nil).
const (
	EvArrival EventKind = iota
	EvCompletion
	EvFlush
	// EvFail is a completion event whose attempt failed probabilistically.
	EvFail
	// EvMachineDown and EvMachineUp are machine crash/recover transitions.
	EvMachineDown
	EvMachineUp
	// EvSlowChange is a slowdown-window boundary repricing a slot.
	EvSlowChange
	// EvRetry is a retried task re-entering the backlog after backoff.
	EvRetry
	// EvTimeout is an attempt evicted at its per-attempt deadline.
	EvTimeout
)

// String returns the kind's label.
func (k EventKind) String() string {
	switch k {
	case EvArrival:
		return "arrival"
	case EvCompletion:
		return "completion"
	case EvFlush:
		return "flush"
	case EvFail:
		return "fail"
	case EvMachineDown:
		return "machine_down"
	case EvMachineUp:
		return "machine_up"
	case EvSlowChange:
		return "slow_change"
	case EvRetry:
		return "retry"
	case EvTimeout:
		return "timeout"
	}
	return "unknown"
}

// PopInfo describes one free-pool resolution performed by the engine.
type PopInfo struct {
	// Category is the placement category that was resolved.
	Category string
	// Machine/Slot is the slot the pool returned.
	Machine, Slot int
	// FreeGen is the popped slot's freed-order stamp (the busy→free
	// generation that positions it in the pool's FIFO-over-VMs queue).
	FreeGen int64
	// OldestMachine/OldestSlot is the pool's longest-free slot computed
	// immediately before the pop; valid only when OldestOK and only for
	// AnyCategory pops (it is what FIFO-over-VMs fairness demands the pop
	// return).
	OldestMachine, OldestSlot int
	OldestOK                  bool
}

// Completion describes one finished task for observers.
type Completion struct {
	// Record is the task's outcome.
	Record TaskRecord
	// Predicted is the runtime forecast frozen at placement time
	// (solo work over the progress rate under the placement's neighbour).
	// Realized-vs-predicted error measures how much mid-flight neighbour
	// churn moved the task away from its placement-time forecast.
	Predicted float64
	// Residual is the task's remaining work at completion before the
	// engine's non-negativity clamp; work conservation demands it settle
	// to zero (within float tolerance).
	Residual float64
}

// ScheduleInfo describes one invocation of the scheduling policy.
type ScheduleInfo struct {
	// Batch is the number of tasks offered to the policy.
	Batch int
	// Placed is the number of placements the policy emitted.
	Placed int
	// Wall is the policy's decision latency in wall-clock time. It is
	// measured only when an observer is attached and is inherently
	// nondeterministic; deterministic metric exports must exclude it.
	Wall time.Duration
}

// Observer receives simulation lifecycle callbacks. All methods run
// synchronously on the engine's goroutine in event order; implementations
// must treat the View as read-only. A non-nil error aborts the run and is
// returned from Engine.Run — that is how the invariant auditor turns a
// violation into a loud failure.
type Observer interface {
	// OnEvent fires after each event has been processed and the subsequent
	// scheduling pass has finished; engine state is consistent here.
	OnEvent(v View, kind EventKind, now float64) error
	// OnComplete fires for every completed task, before pool bookkeeping
	// for the freed slot.
	OnComplete(v View, c Completion) error
	// OnPop fires after each free-pool resolution (the popped slot is
	// already busy in the pool; the task is not yet placed on the machine).
	OnPop(v View, p PopInfo) error
	// OnSchedule fires after each scheduling-policy invocation.
	OnSchedule(v View, s ScheduleInfo) error
	// OnDone fires once when the run ends, after final energy settlement.
	OnDone(v View, res *Results) error
}

// View is a read-only window into a running engine for observers.
type View struct{ e *Engine }

// Now returns the current simulation time.
func (v View) Now() float64 { return v.e.now }

// SchedulerName returns the policy under test.
func (v View) SchedulerName() string { return v.e.results.Scheduler }

// Machines returns the cluster size.
func (v View) Machines() int { return len(v.e.machines) }

// TotalSlots returns the cluster's VM count.
func (v View) TotalSlots() int { return len(v.e.machines) * vmsPerMachine }

// Backlog returns the current queue length.
func (v View) Backlog() int { return v.e.backlog() }

// EventHeapLen returns the pending event count (to watch heap bloat).
func (v View) EventHeapLen() int { return v.e.events.Len() }

// EnergyJ returns the energy integrated so far.
func (v View) EnergyJ() float64 { return v.e.results.EnergyJ }

// FreeSlots returns the pool's free-slot count.
func (v View) FreeSlots() int { return v.e.pool.FreeSlots() }

// Slot reports the task running in (machine, slot): its application,
// remaining work in solo-seconds, and whether the slot is occupied.
func (v View) Slot(machine, slot int) (app string, workLeft float64, running bool) {
	if machine < 0 || machine >= len(v.e.machines) || slot < 0 || slot >= vmsPerMachine {
		return "", 0, false
	}
	rt := v.e.machines[machine].slots[slot]
	if rt == nil {
		return "", 0, false
	}
	return rt.task.App, rt.workLeft, true
}

// PoolCategory returns the free pool's category for (machine, slot), with
// ok=false when the pool does not consider the slot free.
func (v View) PoolCategory(machine, slot int) (string, bool) {
	return v.e.pool.Category(machine, slot)
}

// PoolCounts returns a copy of the pool's per-category free counts.
func (v View) PoolCounts() sched.Counts { return v.e.pool.Counts() }

// PoolStats returns the pool's internal sizes.
func (v View) PoolStats() sched.PoolStats { return v.e.pool.Stats() }

// CompletedCount returns the number of tasks completed so far.
func (v View) CompletedCount() int { return v.e.results.CompletedCount }

// MachineDown reports whether the machine is currently crashed under the
// run's fault plan (always false in fault-free runs).
func (v View) MachineDown(machine int) bool {
	return v.e.down != nil && machine >= 0 && machine < len(v.e.down) && v.e.down[machine]
}

// DownMachines returns the number of currently crashed machines.
func (v View) DownMachines() int { return v.e.downCount }

// HeldTasks returns the number of arrived tasks parked on unmet workflow
// dependencies.
func (v View) HeldTasks() int { return v.e.deps.heldCount() }
