package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"tracon/internal/fault"
	"tracon/internal/sched"
)

// Config describes one simulation run.
type Config struct {
	// Machines is the number of physical machines (two VMs each).
	Machines int
	// Scheduler is the policy under test.
	Scheduler sched.Scheduler
	// Table is the measured ground truth the simulator replays.
	Table *InterferenceTable
	// FlushTimeout bounds how long a batch scheduler may hold a partial
	// queue before scheduling it anyway (seconds). Zero means the default
	// of 30 s. Without it, a trickle of arrivals would starve under a
	// batch policy waiting for a full queue.
	FlushTimeout float64
	// DropRecords discards per-task records, keeping only aggregates —
	// needed for the multi-million-task scalability runs.
	DropRecords bool
	// Power is the per-machine power model for energy accounting; the zero
	// value takes DefaultPower.
	Power PowerModel
	// Observer, when non-nil, receives synchronous lifecycle callbacks
	// (see observe.go). nil costs nothing, and observers must not perturb
	// the simulation's outputs.
	Observer Observer
	// Tracer, when non-nil, receives per-event lifecycle trace callbacks
	// (see trace.go). Same contract as Observer: nil costs one branch per
	// emission point, and tracers must not perturb the run.
	Tracer Tracer
	// Faults, when non-nil, injects the plan's deterministic failures into
	// the run (see fault.go): machine crash/recover windows, per-slot
	// slowdowns, probabilistic attempt failures, per-attempt timeouts, and
	// bounded retry-with-backoff. nil — and a plan that injects nothing —
	// leaves the simulation byte-identical to a fault-free run.
	Faults *fault.Plan
}

// vmsPerMachine is fixed at the paper's configuration ("each physical
// machine supports two virtual machines").
const vmsPerMachine = 2

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evFlush
	evMachineDown
	evMachineUp
	evSlowChange
	evRetry
	evTimeout
)

type event struct {
	time    float64
	kind    eventKind
	seq     int64 // tie-break for determinism
	task    sched.Task
	machine int
	slot    int
	gen     int64 // completion generation guard
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type runningTask struct {
	task       sched.Task
	workLeft   float64 // remaining work in solo-seconds
	rate       float64 // current progress rate
	lastUpdate float64
	start      float64
	gen        int64
	placeGen   int64   // placement generation guarding timeout events (faults)
	predicted  float64 // runtime forecast frozen at placement (observers)
	rawLeft    float64 // last pre-clamp workLeft from settle (observers)
}

type machineState struct {
	slots        [vmsPerMachine]*runningTask
	powerW       float64
	lastEnergyAt float64
}

// TaskRecord is the outcome of one completed task.
type TaskRecord struct {
	Task    sched.Task
	Start   float64
	Finish  float64
	Machine int
	Slot    int
}

// Runtime is the task's execution time (queueing excluded, as in eq. 3).
func (r TaskRecord) Runtime() float64 { return r.Finish - r.Start }

// Wait is the queueing delay before the task started.
func (r TaskRecord) Wait() float64 { return r.Start - r.Task.Arrival }

// Results aggregates a simulation run.
type Results struct {
	Scheduler string
	// Completed holds per-task records (empty when Config.DropRecords).
	Completed []TaskRecord
	// CompletedCount is the number of completed tasks (valid always).
	CompletedCount int
	// TotalRuntime is Σ runtimes of completed tasks (eq. 3).
	TotalRuntime float64
	// TotalIOPS is Σ per-task average throughput (eq. 4).
	TotalIOPS float64
	// TotalWait is Σ queueing delays of completed tasks.
	TotalWait float64
	// Horizon is the simulated duration.
	Horizon float64
	// Submitted is the number of tasks offered to the system.
	Submitted int
	// EnergyJ is the integrated cluster energy in joules (see energy.go).
	EnergyJ float64
	// LastFinish is the completion time of the last finished task — the
	// makespan of a workflow run that starts at time zero.
	LastFinish float64

	// Fault-recovery accounting; all fields stay zero in fault-free runs.

	// FailedAttempts counts attempts that failed probabilistically.
	FailedAttempts int
	// Timeouts counts attempts evicted at their per-attempt deadline.
	Timeouts int
	// Evictions counts attempts orphaned by a machine crash.
	Evictions int
	// Retries counts re-placements scheduled after failed attempts.
	Retries int
	// Lost counts tasks abandoned after exhausting their attempt budget.
	Lost int
	// MachineDowns and MachineUps count machine crash/recover transitions.
	MachineDowns int
	MachineUps   int
}

// CompletedTasks returns the completed-task count as a float64. This is
// the T_S of Section 4.7: the paper reports it normalized against FIFO on
// the same arrivals and horizon, so the horizon divides out and the raw
// count is the right quantity. (It was previously named Throughput, which
// wrongly suggested a rate.)
func (r *Results) CompletedTasks() float64 { return float64(r.CompletedCount) }

// TasksPerHour is a true rate: completed tasks per simulated hour.
func (r *Results) TasksPerHour() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return float64(r.CompletedCount) / (r.Horizon / 3600)
}

// MeanRuntime returns the average execution time of completed tasks.
func (r *Results) MeanRuntime() float64 {
	if r.CompletedCount == 0 {
		return 0
	}
	return r.TotalRuntime / float64(r.CompletedCount)
}

// MeanWait returns the average queueing delay of completed tasks.
func (r *Results) MeanWait() float64 {
	if r.CompletedCount == 0 {
		return 0
	}
	return r.TotalWait / float64(r.CompletedCount)
}

// Engine runs one simulation.
type Engine struct {
	cfg      Config
	machines []machineState
	pool     *sched.FreePool
	events   eventHeap
	deps     *depState
	queue    []sched.Task // backlog; live region is queue[qhead:]
	qhead    int
	now      float64
	seq      int64
	genSeq   int64
	results  Results
	table    *InterferenceTable
	// nextFlushAt is the armed flush wake-up's time (+Inf when none). The
	// engine keeps at most one flush armed — the head task's deadline — so
	// the event heap stays O(machines + pending completions) instead of
	// growing one flush per enqueued task.
	nextFlushAt float64
	// naiveFlush restores the pre-optimization one-flush-per-enqueue
	// behaviour; the flush-equivalence test uses it to prove the suppressed
	// schedule is byte-identical to the naive one.
	naiveFlush bool
	// Fault-injection state (allocated only when Config.Faults is set).
	down      []bool        // machine index → currently crashed
	downCount int           // number of crashed machines
	attempts  map[int64]int // task ID → placement attempts made so far
}

// NewEngine validates the config and prepares an idle cluster.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Machines <= 0 {
		return nil, fmt.Errorf("sim: need at least one machine")
	}
	if cfg.Scheduler == nil || cfg.Table == nil {
		return nil, fmt.Errorf("sim: scheduler and table are required")
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = 30
	}
	if cfg.Power == (PowerModel{}) {
		cfg.Power = DefaultPower()
	}
	e := &Engine{
		cfg:         cfg,
		machines:    make([]machineState, cfg.Machines),
		pool:        sched.NewFreePool(),
		table:       cfg.Table,
		nextFlushAt: math.Inf(1),
	}
	e.results.Scheduler = cfg.Scheduler.Name()
	for m := 0; m < cfg.Machines; m++ {
		e.machines[m].powerW = cfg.Power.OffW
		for s := 0; s < vmsPerMachine; s++ {
			e.pool.SetFree(m, s, sched.EmptyCategory)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.Machines, vmsPerMachine); err != nil {
			return nil, err
		}
		e.down = make([]bool, cfg.Machines)
		e.attempts = map[int64]int{}
	}
	return e, nil
}

// Run executes the arrivals until the horizon (Inf = run to completion of
// all tasks) and returns the results. Tasks still running or queued at the
// horizon are not counted as completed.
func (e *Engine) Run(arrivals []sched.Task, horizon float64) (*Results, error) {
	for _, t := range arrivals {
		if !e.table.Has(t.App) {
			return nil, fmt.Errorf("sim: unknown application %q", t.App)
		}
		e.push(event{time: t.Arrival, kind: evArrival, task: t})
	}
	var err error
	if e.deps, err = validateDAG(arrivals); err != nil {
		return nil, err
	}
	e.results.Submitted = len(arrivals)
	if e.cfg.Faults != nil {
		// Fault boundaries enter the heap after all arrivals, in Timeline's
		// deterministic order, so their sequence numbers — and therefore
		// same-instant tie-breaks — are pure functions of the inputs.
		for _, b := range e.cfg.Faults.Timeline() {
			switch b.Kind {
			case fault.BoundaryDown:
				e.push(event{time: b.T, kind: evMachineDown, machine: b.Machine, slot: -1})
			case fault.BoundaryUp:
				e.push(event{time: b.T, kind: evMachineUp, machine: b.Machine, slot: -1})
			default:
				e.push(event{time: b.T, kind: evSlowChange, machine: b.Machine, slot: b.Slot})
			}
		}
	}

	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.time > horizon {
			e.now = horizon
			break
		}
		if ev.time < e.now-1e-9 {
			return nil, fmt.Errorf("sim: time went backwards: %v < %v", ev.time, e.now)
		}
		e.now = math.Max(e.now, ev.time)
		okind := observedKind(ev.kind)
		switch ev.kind {
		case evArrival:
			held := !e.deps.ready(ev.task.ID)
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.TraceArrival(e.now, ev.task, held)
			}
			if held {
				e.deps.hold(ev.task)
				continue
			}
			e.enqueue(ev.task, false)
		case evCompletion:
			rt := e.machines[ev.machine].slots[ev.slot]
			if rt == nil || rt.gen != ev.gen {
				continue // stale completion from before a repricing
			}
			if e.cfg.Faults != nil && e.cfg.Faults.TaskFails(rt.task.ID, e.attempts[rt.task.ID]) {
				// The attempt fails at the instant it would have completed.
				e.evictAttempt(ev.machine, ev.slot, FaultFail)
				okind = EvFail
			} else if err := e.complete(ev.machine, ev.slot); err != nil {
				return nil, err
			}
		case evFlush:
			// Just a wake-up; scheduling below. The armed flush is spent;
			// ensureFlush re-arms for the remaining head if needed.
			e.nextFlushAt = math.Inf(1)
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.TraceFlush(e.now)
			}
		case evMachineDown:
			e.machineDown(ev.machine)
		case evMachineUp:
			e.machineUp(ev.machine)
		case evSlowChange:
			// A slowdown window boundary: settle at the old rate, reprice at
			// the new one. A crashed machine has nothing running to reprice.
			if !e.down[ev.machine] {
				e.settle(ev.machine)
				e.reprice(ev.machine)
			}
		case evRetry:
			t := ev.task
			t.Arrival = e.now // became schedulable now; Wait() measures queueing
			e.enqueue(t, false)
		case evTimeout:
			rt := e.machines[ev.machine].slots[ev.slot]
			if rt == nil || rt.placeGen != ev.gen {
				continue // the attempt completed or was evicted first
			}
			e.evictAttempt(ev.machine, ev.slot, FaultTimeout)
		}
		if err := e.trySchedule(); err != nil {
			return nil, err
		}
		e.ensureFlush()
		if e.cfg.Observer != nil {
			if oerr := e.cfg.Observer.OnEvent(View{e}, okind, e.now); oerr != nil {
				return nil, fmt.Errorf("sim: observer: %w", oerr)
			}
		}
	}
	if math.IsInf(horizon, 1) {
		e.results.Horizon = e.now
	} else {
		e.results.Horizon = horizon
	}
	e.flushEnergy(e.results.Horizon)
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceDone(e.results.Horizon, &e.results)
	}
	if e.cfg.Observer != nil {
		if oerr := e.cfg.Observer.OnDone(View{e}, &e.results); oerr != nil {
			return nil, fmt.Errorf("sim: observer: %w", oerr)
		}
	}
	return &e.results, nil
}

// observedKind maps the internal event kind to the observer-facing one.
// A completion event whose attempt fails probabilistically is reported as
// EvFail by the event loop instead.
func observedKind(k eventKind) EventKind {
	switch k {
	case evArrival:
		return EvArrival
	case evCompletion:
		return EvCompletion
	case evMachineDown:
		return EvMachineDown
	case evMachineUp:
		return EvMachineUp
	case evSlowChange:
		return EvSlowChange
	case evRetry:
		return EvRetry
	case evTimeout:
		return EvTimeout
	default:
		return EvFlush
	}
}

// enqueue adds a schedulable task to the backlog (released marks tasks a
// workflow-dependency completion just unblocked). Flush wake-ups (so a
// partial batch cannot starve waiting for a batch scheduler's queue to
// fill) are armed by ensureFlush after the scheduling pass.
func (e *Engine) enqueue(t sched.Task, released bool) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TraceEnqueue(e.now, t, released)
	}
	e.queue = append(e.queue, t)
	// Compact the backlog when the dead prefix dominates.
	if e.qhead > 4096 && e.qhead*2 > len(e.queue) {
		e.queue = append(e.queue[:0], e.queue[e.qhead:]...)
		e.qhead = 0
	}
	if e.naiveFlush {
		e.push(event{time: e.now + e.cfg.FlushTimeout, kind: evFlush})
	}
}

// ensureFlush keeps exactly one flush wake-up armed at the backlog head's
// deadline (arrival + FlushTimeout). Arming one flush per enqueued task —
// the previous scheme — bloated the event heap O(tasks); one armed flush
// gives the identical schedule because the backlog is ordered by arrival,
// so the head's deadline is always the earliest one, and a flush at any
// later queued task's deadline would find the head already over its
// timeout and force the same scheduling pass.
func (e *Engine) ensureFlush() {
	if e.naiveFlush || e.backlog() == 0 {
		return
	}
	deadline := e.queue[e.qhead].Arrival + e.cfg.FlushTimeout
	// deadline <= now means the head is already past its timeout and the
	// scheduling pass that just ran could not place it (no free slots or
	// the policy declined); a wake-up would re-run the same decision on the
	// same state. The next arrival or completion re-triggers scheduling,
	// exactly as the per-task scheme behaved once its flushes were spent.
	if deadline <= e.now || e.nextFlushAt <= deadline {
		return
	}
	e.push(event{time: deadline, kind: evFlush})
	e.nextFlushAt = deadline
}

func (e *Engine) push(ev event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.events, ev)
}

// settle brings a machine's running tasks (and energy meter) up to the
// current time.
func (e *Engine) settle(m int) {
	e.settleEnergy(m)
	for _, rt := range e.machines[m].slots {
		if rt == nil {
			continue
		}
		rt.workLeft -= rt.rate * (e.now - rt.lastUpdate)
		rt.rawLeft = rt.workLeft // pre-clamp, for work-conservation audits
		if rt.workLeft < 0 {
			rt.workLeft = 0
		}
		rt.lastUpdate = e.now
	}
}

// reprice recomputes both slots' progress rates after a membership change
// and schedules fresh completion events.
func (e *Engine) reprice(m int) {
	ms := &e.machines[m]
	for s, rt := range ms.slots {
		if rt == nil {
			continue
		}
		neighbour := ""
		if other := ms.slots[1-s]; other != nil {
			neighbour = other.task.App
		}
		rt.rate = e.table.Rate(rt.task.App, neighbour)
		if rt.rate <= 0 {
			rt.rate = 1e-9
		}
		if e.cfg.Faults != nil {
			// A slowdown window dilates the rate; factor 0 is a full stall.
			rt.rate *= e.cfg.Faults.RateFactor(m, s, e.now)
		}
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.TraceSegment(e.now, Segment{
				Machine: m, Slot: s, TaskID: rt.task.ID, App: rt.task.App,
				Rate: rt.rate, Neighbour: neighbour, WorkLeft: rt.workLeft,
			})
		}
		// Generations are engine-global: a per-task counter would collide
		// with stale events left behind by a previous occupant of the slot.
		e.genSeq++
		rt.gen = e.genSeq
		if rt.rate <= 0 {
			// Fully stalled: no completion is schedulable (it would land at
			// an absurd pseudo-time and drag the horizon there when it popped
			// stale). The slowdown window's end boundary reprices the slot.
			continue
		}
		e.push(event{
			time:    e.now + rt.workLeft/rt.rate,
			kind:    evCompletion,
			machine: m,
			slot:    s,
			gen:     rt.gen,
		})
	}
}

// complete finishes the task in (m, slot), records it, frees the VM and
// reprices the survivor.
func (e *Engine) complete(m, slot int) error {
	e.settle(m)
	ms := &e.machines[m]
	rt := ms.slots[slot]
	if rt == nil {
		return fmt.Errorf("sim: completion on empty slot %d/%d", m, slot)
	}
	ms.slots[slot] = nil
	rec := TaskRecord{Task: rt.task, Start: rt.start, Finish: e.now, Machine: m, Slot: slot}
	if e.cfg.Observer != nil || e.cfg.Tracer != nil {
		c := Completion{Record: rec, Predicted: rt.predicted, Residual: rt.rawLeft}
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.TraceComplete(e.now, c)
		}
		if e.cfg.Observer != nil {
			if oerr := e.cfg.Observer.OnComplete(View{e}, c); oerr != nil {
				return fmt.Errorf("sim: observer: %w", oerr)
			}
		}
	}
	// Release any workflow tasks this completion unblocks.
	for _, released := range e.deps.complete(rt.task.ID) {
		released.Arrival = e.now // became schedulable now; Wait() measures queueing
		e.enqueue(released, true)
	}
	if e.now > e.results.LastFinish {
		e.results.LastFinish = e.now
	}
	e.results.CompletedCount++
	e.results.TotalRuntime += rec.Runtime()
	e.results.TotalWait += rec.Wait()
	if !e.cfg.DropRecords {
		e.results.Completed = append(e.results.Completed, rec)
	}
	if ops := e.table.Ops(rt.task.App); ops > 0 && rec.Runtime() > 0 {
		e.results.TotalIOPS += ops / rec.Runtime()
	}

	// Pool bookkeeping: the freed slot's category is the survivor's app;
	// if the survivor slot is itself free, the whole machine is idle and
	// both slots are empty-category.
	other := ms.slots[1-slot]
	if other != nil {
		e.pool.SetFree(m, slot, other.task.App)
	} else {
		e.pool.SetFree(m, slot, sched.EmptyCategory)
		if _, free := e.pool.Category(m, 1-slot); free {
			e.pool.SetFree(m, 1-slot, sched.EmptyCategory)
		}
	}
	e.reprice(m)
	e.settleEnergy(m) // re-sample power under the new membership
	return nil
}

// place starts a task on a concrete VM.
func (e *Engine) place(t sched.Task, m, slot int) error {
	ms := &e.machines[m]
	if ms.slots[slot] != nil {
		return fmt.Errorf("sim: slot %d/%d already occupied", m, slot)
	}
	e.settle(m)
	ms.slots[slot] = &runningTask{
		task:       t,
		workLeft:   e.table.SoloRuntime(t.App),
		lastUpdate: e.now,
		start:      e.now,
	}
	// The sibling slot, if free, is now neighboured by this app.
	if _, free := e.pool.Category(m, 1-slot); free {
		e.pool.SetFree(m, 1-slot, t.App)
	}
	// The placement-time neighbour, captured before reprice (which only
	// recomputes rates) for the placement trace.
	neighbour := ""
	if other := ms.slots[1-slot]; other != nil {
		neighbour = other.task.App
	}
	if e.cfg.Faults != nil {
		e.attempts[t.ID]++
		e.genSeq++
		ms.slots[slot].placeGen = e.genSeq
		if to := e.cfg.Faults.TaskTimeout; to > 0 {
			// The deadline is armed once per attempt and guarded by placeGen,
			// which (unlike gen) survives repricing. It is pushed before the
			// reprice below ever pushes the attempt's completion event, and
			// repricing only re-pushes completions with later sequence
			// numbers — so a timeout landing at the same instant as the
			// completion deterministically wins.
			e.push(event{time: e.now + to, kind: evTimeout, machine: m, slot: slot, gen: e.genSeq})
		}
	}
	e.reprice(m)
	// Freeze the placement-time runtime forecast for observers (reprice
	// just set the rate under the placement's neighbour).
	rt := ms.slots[slot]
	if rt.rate > 0 {
		rt.predicted = rt.workLeft / rt.rate
	} else {
		// Placed into a fully stalled slowdown window: forecast at the
		// undilated rate — a forecast of +Inf would be meaningless and
		// unencodable in the JSON trace.
		base := e.table.Rate(t.App, neighbour)
		if base <= 0 {
			base = 1e-9
		}
		rt.predicted = rt.workLeft / base
	}
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.TracePlace(e.now, PlaceInfo{
			Task: t, Machine: m, Slot: slot, Neighbour: neighbour,
			Work: rt.workLeft, Predicted: rt.predicted,
		})
	}
	e.settleEnergy(m) // re-sample power under the new membership
	return nil
}

// trySchedule runs the scheduling policy against the current queue.
func (e *Engine) trySchedule() error {
	q := e.cfg.Scheduler.BatchSize()
	for e.backlog() > 0 && e.pool.FreeSlots() > 0 {
		n := e.backlog()
		ready := n >= q || e.now-e.queue[e.qhead].Arrival >= e.cfg.FlushTimeout-1e-9
		if !ready {
			return nil
		}
		batchLen := q
		if batchLen > n {
			batchLen = n
		}
		batch := append([]sched.Task(nil), e.queue[e.qhead:e.qhead+batchLen]...)
		// Crashed machines are not capacity (downCount is zero without faults).
		load := sched.Load{TotalSlots: (e.cfg.Machines - e.downCount) * vmsPerMachine, Queued: n}
		counts := e.pool.Counts()
		var candidates []CategoryCount
		if e.cfg.Tracer != nil {
			// Snapshot the candidate set before Schedule mutates its copy.
			cats := make([]string, 0, len(counts))
			for c := range counts {
				cats = append(cats, c)
			}
			sort.Strings(cats)
			candidates = make([]CategoryCount, len(cats))
			for i, c := range cats {
				candidates[i] = CategoryCount{Category: c, N: counts[c]}
			}
		}
		var t0 time.Time
		if e.cfg.Observer != nil {
			t0 = time.Now()
		}
		placements, err := e.cfg.Scheduler.Schedule(batch, counts, load)
		if err != nil {
			return err
		}
		if e.cfg.Observer != nil {
			info := ScheduleInfo{Batch: len(batch), Placed: len(placements), Wall: time.Since(t0)}
			if oerr := e.cfg.Observer.OnSchedule(View{e}, info); oerr != nil {
				return fmt.Errorf("sim: observer: %w", oerr)
			}
		}
		if e.cfg.Tracer != nil {
			e.cfg.Tracer.TraceDecision(e.now, Decision{
				Batch: len(batch), Placed: len(placements), Backlog: n,
				FreeSlots: e.pool.FreeSlots(), Candidates: candidates,
			})
		}
		if len(placements) == 0 {
			return nil
		}
		placed := map[int64]bool{}
		for _, p := range placements {
			var pop PopInfo
			if e.cfg.Observer != nil && p.Category == sched.AnyCategory {
				// Snapshot the FIFO-over-VMs contract's answer before the pop
				// consumes it, so the auditor can hold Pop to it.
				pop.OldestMachine, pop.OldestSlot, pop.OldestOK = e.pool.OldestFree()
			}
			m, slot, freeGen, err := e.pool.PopTraced(p.Category)
			if err != nil {
				return fmt.Errorf("sim: scheduler %s emitted unexecutable placement %+v: %w",
					e.cfg.Scheduler.Name(), p, err)
			}
			pop.Category, pop.Machine, pop.Slot, pop.FreeGen = p.Category, m, slot, freeGen
			if e.cfg.Observer != nil {
				if oerr := e.cfg.Observer.OnPop(View{e}, pop); oerr != nil {
					return fmt.Errorf("sim: observer: %w", oerr)
				}
			}
			if e.cfg.Tracer != nil {
				e.cfg.Tracer.TracePop(e.now, pop)
			}
			if err := e.place(p.Task, m, slot); err != nil {
				return err
			}
			placed[p.Task.ID] = true
		}
		// Keep the unplaced batch members at the front of the backlog,
		// preserving order — O(batch), never O(backlog).
		keep := batch[:0]
		for _, t := range batch {
			if !placed[t.ID] {
				keep = append(keep, t)
			}
		}
		e.qhead += batchLen - len(keep)
		copy(e.queue[e.qhead:e.qhead+len(keep)], keep)
		if len(placements) < batchLen {
			return nil // cluster full; wait for completions
		}
	}
	return nil
}

func (e *Engine) backlog() int { return len(e.queue) - e.qhead }

// QueueLength reports the current backlog (for tests and diagnostics).
func (e *Engine) QueueLength() int { return e.backlog() }
