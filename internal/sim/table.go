// Package sim is the discrete-event data-center simulator of Section 4.2:
// 8–10,000 physical machines, two VMs each, tasks arriving statically (one
// per VM) or dynamically (Poisson), schedulers assigning tasks to VMs, and
// ground-truth execution replayed from interference measurements — exactly
// the paper's methodology ("the simulator calculates the performance by
// using the actual statistics that have been measured in the real
// systems").
//
// When a task's co-runner changes mid-flight, its remaining work is
// rescaled to the new pairing's progress rate (the paper's 80%/20%
// example).
package sim

import (
	"fmt"
	"math"
	"sort"

	"tracon/internal/par"
	"tracon/internal/xen"
)

// InterferenceTable replays measured pairwise interference: for every
// ordered application pair, the progress rate (inverse slowdown) and
// throughput of the first while co-located with the second.
//
// The table is immutable once built, so any number of concurrent
// simulations may read one shared instance; the parallel experiment runner
// relies on this.
type InterferenceTable struct {
	apps    []string
	soloRT  map[string]float64
	soloIO  map[string]float64
	soloOps map[string]float64
	rate    map[[2]string]float64
	iops    map[[2]string]float64
	util    map[[2]string]float64 // guest CPU + Dom0 utilization attributable
}

// BuildInterferenceTable measures every ordered pair (and every solo run)
// on the host model. For n applications this is n solo solves plus n·n
// pair solves.
func BuildInterferenceTable(host *xen.Host, apps []xen.AppSpec) (*InterferenceTable, error) {
	return BuildInterferenceTableParallel(host, apps, 1)
}

// BuildInterferenceTableParallel is BuildInterferenceTable with the solo
// and pair steady-state solves fanned out over at most workers goroutines.
// Each solve is an independent pure function of the host configuration, and
// results are collected by index before the maps are filled in input order,
// so the table is identical to the sequential build bit-for-bit.
func BuildInterferenceTableParallel(host *xen.Host, apps []xen.AppSpec, workers int) (*InterferenceTable, error) {
	n := len(apps)
	if n == 0 {
		return nil, fmt.Errorf("sim: no applications")
	}
	t := &InterferenceTable{
		soloRT:  map[string]float64{},
		soloIO:  map[string]float64{},
		soloOps: map[string]float64{},
		rate:    map[[2]string]float64{},
		iops:    map[[2]string]float64{},
		util:    map[[2]string]float64{},
	}
	seen := map[string]bool{}
	for _, a := range apps {
		if seen[a.Name] {
			return nil, fmt.Errorf("sim: duplicate application %q", a.Name)
		}
		seen[a.Name] = true
	}

	solos := make([]xen.AppSteady, n)
	err := par.ForEach(workers, n, func(i int) error {
		st, err := host.Steady([]xen.AppSpec{apps[i]})
		if err != nil {
			return err
		}
		if math.IsInf(st[0].Runtime, 0) {
			return fmt.Errorf("sim: application %q never terminates", apps[i].Name)
		}
		solos[i] = st[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range apps {
		t.apps = append(t.apps, a.Name)
		t.soloRT[a.Name] = solos[i].Runtime
		t.soloIO[a.Name] = solos[i].IOPS
		t.soloOps[a.Name] = a.TotalOps()
		t.util[[2]string{a.Name, ""}] = solos[i].GuestCPU + solos[i].Dom0CPU
	}
	sort.Strings(t.apps)

	pairs := make([]xen.AppSteady, n*n)
	err = par.ForEach(workers, n*n, func(k int) error {
		a, b := apps[k/n], apps[k%n]
		b.Name = b.Name + "~peer"
		st, err := host.Steady([]xen.AppSpec{a, b})
		if err != nil {
			return err
		}
		pairs[k] = st[0]
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, a := range apps {
		for j, b := range apps {
			st := pairs[i*n+j]
			key := [2]string{a.Name, b.Name}
			t.rate[key] = st.ProgressRate
			t.iops[key] = st.IOPS
			t.util[key] = st.GuestCPU + st.Dom0CPU
		}
	}
	return t, nil
}

// Apps returns the application names, sorted.
func (t *InterferenceTable) Apps() []string {
	return append([]string(nil), t.apps...)
}

// Has reports whether the table knows app.
func (t *InterferenceTable) Has(app string) bool {
	_, ok := t.soloRT[app]
	return ok
}

// SoloRuntime returns the measured no-interference runtime of app.
func (t *InterferenceTable) SoloRuntime(app string) float64 {
	return t.soloRT[app]
}

// SoloIOPS returns the measured no-interference throughput of app.
func (t *InterferenceTable) SoloIOPS(app string) float64 {
	return t.soloIO[app]
}

// Ops returns the total I/O request count of one task of app.
func (t *InterferenceTable) Ops(app string) float64 {
	return t.soloOps[app]
}

// Rate returns app's progress rate (solo-seconds per wall second, in
// (0, 1]) while co-located with neighbour ("" = running alone).
func (t *InterferenceTable) Rate(app, neighbour string) float64 {
	if neighbour == "" {
		return 1
	}
	r, ok := t.rate[[2]string{app, neighbour}]
	if !ok {
		return 1
	}
	return r
}

// Util returns the CPU utilization (guest vCPU plus attributable Dom0
// work) app drives while co-located with neighbour — the basis of the
// simulator's energy accounting.
func (t *InterferenceTable) Util(app, neighbour string) float64 {
	u, ok := t.util[[2]string{app, neighbour}]
	if !ok {
		return t.util[[2]string{app, ""}]
	}
	return u
}

// IOPS returns app's throughput while co-located with neighbour.
func (t *InterferenceTable) IOPS(app, neighbour string) float64 {
	if neighbour == "" {
		return t.soloIO[app]
	}
	io, ok := t.iops[[2]string{app, neighbour}]
	if !ok {
		return t.soloIO[app]
	}
	return io
}
