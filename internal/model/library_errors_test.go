package model

import (
	"bytes"
	"errors"
	"testing"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// The serving daemon maps scoring-path failures to HTTP statuses by typed
// error: ErrUnknownApp (bad request) vs ErrEmptyLibrary / anything else
// (internal). Every lookup must return the right one instead of panicking.
func TestLibraryLookupTypedErrors(t *testing.T) {
	tss, tb := fixture(t)
	lib := NewLibrary(LM)
	b := benchSpec(t, "blastn")
	solo, err := tb.ProfileSolo(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(tss["blastn"], solo); err != nil {
		t.Fatal(err)
	}
	empty := NewLibrary(LM)

	type call func(l *Library) error
	calls := map[string]call{
		"PredictRuntime/target": func(l *Library) error { _, err := l.PredictRuntime("nosuch", ""); return err },
		"PredictRuntime/corun":  func(l *Library) error { _, err := l.PredictRuntime("blastn", "nosuch"); return err },
		"PredictIOPS/target":    func(l *Library) error { _, err := l.PredictIOPS("nosuch", ""); return err },
		"PredictIOPS/corun":     func(l *Library) error { _, err := l.PredictIOPS("blastn", "nosuch"); return err },
		"SoloRuntime":           func(l *Library) error { _, err := l.SoloRuntime("nosuch"); return err },
		"SoloIOPS":              func(l *Library) error { _, err := l.SoloIOPS("nosuch"); return err },
		"Features":              func(l *Library) error { _, err := l.Features("nosuch"); return err },
		"Model":                 func(l *Library) error { _, err := l.Model("nosuch"); return err },
		"Replace":               func(l *Library) error { return l.Replace("nosuch", nil) },
	}
	for name, c := range calls {
		err := c(lib)
		if !errors.Is(err, ErrUnknownApp) {
			t.Errorf("%s on populated library: got %v, want ErrUnknownApp", name, err)
		}
		if errors.Is(err, ErrEmptyLibrary) {
			t.Errorf("%s on populated library wrongly reports ErrEmptyLibrary", name)
		}
	}
	// The same lookups against an empty library are a configuration error,
	// not a bad name — except the corunner path, which fails on the unknown
	// target first; either typed error is acceptable there as long as one
	// fires.
	for name, c := range calls {
		err := c(empty)
		if !errors.Is(err, ErrEmptyLibrary) && !errors.Is(err, ErrUnknownApp) {
			t.Errorf("%s on empty library: got %v, want a typed lookup error", name, err)
		}
		if name != "PredictRuntime/corun" && name != "PredictIOPS/corun" &&
			!errors.Is(err, ErrEmptyLibrary) {
			t.Errorf("%s on empty library: got %v, want ErrEmptyLibrary", name, err)
		}
	}
	// Known lookups keep working.
	if _, err := lib.PredictRuntime("blastn", "blastn"); err != nil {
		t.Fatalf("known pair failed: %v", err)
	}
}

func TestOracleTypedErrors(t *testing.T) {
	_, tb := fixture(t)
	o := NewOracle(tb, []xen.AppSpec{benchSpec(t, "blastn")})
	if _, err := o.PredictRuntime("nosuch", ""); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("oracle target: got %v, want ErrUnknownApp", err)
	}
	if _, err := o.PredictRuntime("blastn", "nosuch"); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("oracle corunner: got %v, want ErrUnknownApp", err)
	}
}

func TestLibrarySaveLoadRoundTrip(t *testing.T) {
	tss, tb := fixture(t)
	lib := NewLibrary(NLM)
	for _, name := range []string{"blastn", "blastp", "video"} {
		solo, err := tb.ProfileSolo(benchSpec(t, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Add(tss[name], solo); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := lib.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLibrary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != NLM {
		t.Fatalf("kind lost: %v", loaded.Kind)
	}
	apps := loaded.Apps()
	if len(apps) != 3 {
		t.Fatalf("apps lost: %v", apps)
	}
	// Every prediction path must match bit-for-bit, including the solo
	// baselines and co-runner features the scorers rely on.
	for _, a := range apps {
		for _, c := range append(apps, "") {
			for _, f := range []func(p Predictor) (float64, error){
				func(p Predictor) (float64, error) { return p.PredictRuntime(a, c) },
				func(p Predictor) (float64, error) { return p.PredictIOPS(a, c) },
			} {
				want, err := f(lib)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f(loaded)
				if err != nil {
					t.Fatal(err)
				}
				if want != got {
					t.Fatalf("prediction diverged after round trip (%s vs %q)", a, c)
				}
			}
		}
		wantRT, _ := lib.SoloRuntime(a)
		gotRT, err := loaded.SoloRuntime(a)
		if err != nil || wantRT != gotRT {
			t.Fatalf("solo runtime diverged for %s: %v %v (%v)", a, wantRT, gotRT, err)
		}
		wantIO, _ := lib.SoloIOPS(a)
		gotIO, err := loaded.SoloIOPS(a)
		if err != nil || wantIO != gotIO {
			t.Fatalf("solo IOPS diverged for %s: %v %v (%v)", a, wantIO, gotIO, err)
		}
	}
}

func TestLibrarySaveRejectsInstanceBasedFamilies(t *testing.T) {
	tss, tb := fixture(t)
	lib := NewLibrary(WMM)
	solo, err := tb.ProfileSolo(benchSpec(t, "blastn"))
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(tss["blastn"], solo); err != nil {
		t.Fatal(err)
	}
	if err := lib.Save(&bytes.Buffer{}); !errors.Is(err, ErrNotPersistable) {
		t.Fatalf("WMM library serialized: %v", err)
	}
}

func TestAddTrainedValidates(t *testing.T) {
	tss, _ := fixture(t)
	m, err := Train(tss["blastn"], LM)
	if err != nil {
		t.Fatal(err)
	}
	feats := tss["blastn"].Features
	cases := map[string]error{
		"nil model":     NewLibrary(LM).AddTrained(nil, feats, xen.SoloProfile{}),
		"kind mismatch": NewLibrary(NLM).AddTrained(m, feats, xen.SoloProfile{}),
		"bad features":  NewLibrary(LM).AddTrained(m, []float64{1}, xen.SoloProfile{}),
	}
	for name, err := range cases {
		if err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	lib := NewLibrary(LM)
	if err := lib.AddTrained(m, feats, xen.SoloProfile{Runtime: 10, IOPS: 5}); err != nil {
		t.Fatal(err)
	}
	if rt, err := lib.SoloRuntime("blastn"); err != nil || rt != 10 {
		t.Fatalf("AddTrained solo runtime: %v (%v)", rt, err)
	}
}

// benchSpec resolves a Table 3 benchmark spec by name.
func benchSpec(t *testing.T, name string) xen.AppSpec {
	t.Helper()
	b, err := workload.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Spec
}
