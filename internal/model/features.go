// Package model implements TRACON's interference prediction models
// (Sec. 3.1): the weighted mean method (WMM, PCA + distance-weighted
// nearest neighbours), the linear model (LM, stepwise AIC selection over
// first-degree terms) and the nonlinear model (NLM, stepwise AIC over the
// full degree-2 expansion, refit with Gauss-Newton), for the two responses
// the paper studies — application runtime and IOPS.
//
// A model is trained per target application from its interference profile:
// the target runs in VM1 while each of the 125 synthetic workloads runs in
// VM2, and the four Table 2 characteristics of the background workload are
// the controlled variables.
package model

import (
	"errors"
	"fmt"

	"tracon/internal/mat"
	"tracon/internal/xen"
)

// NumFeatures is the number of Table 2 application characteristics:
// read req/s, write req/s, DomU CPU, Dom0 CPU.
const NumFeatures = 4

// FeatureNames labels the Table 2 characteristics, in vector order.
var FeatureNames = [NumFeatures]string{"read/s", "write/s", "domU-cpu", "dom0-cpu"}

// Response selects which observable a model predicts.
type Response int

// The two responses of the paper.
const (
	Runtime Response = iota
	IOPS
)

// String returns the response label.
func (r Response) String() string {
	if r == Runtime {
		return "runtime"
	}
	return "iops"
}

// Sample is one profiling observation: the background workload's solo
// characteristics and the target's measured behaviour under that
// interference.
type Sample struct {
	BG      []float64 // background features, length NumFeatures
	Runtime float64   // target's runtime under interference (seconds)
	IOPS    float64   // target's throughput under interference
}

// TrainingSet is a target application's interference profile.
type TrainingSet struct {
	App      string
	Features []float64 // the target's own solo characteristics
	Samples  []Sample
}

// ErrTooFewSamples is returned when a training set cannot support the
// requested model.
var ErrTooFewSamples = errors.New("model: too few training samples")

// Matrix lays the background features out as a design-input matrix
// (observations in rows).
func (ts *TrainingSet) Matrix() *mat.Matrix {
	if len(ts.Samples) == 0 {
		panic("model: empty training set")
	}
	x := mat.New(len(ts.Samples), NumFeatures)
	for i, s := range ts.Samples {
		x.SetRow(i, s.BG)
	}
	return x
}

// ResponseVec extracts the chosen response column.
func (ts *TrainingSet) ResponseVec(r Response) []float64 {
	y := make([]float64, len(ts.Samples))
	for i, s := range ts.Samples {
		if r == Runtime {
			y[i] = s.Runtime
		} else {
			y[i] = s.IOPS
		}
	}
	return y
}

// Profiler produces training sets by exercising a target application
// against a set of background workloads on a testbed — the automated
// profiling pipeline of Sec. 3.1.
type Profiler struct {
	TB *xen.Testbed
}

// soloReplicas is how many independent no-interference measurements the
// profiler folds into each training set. The paper's profile includes the
// "performance without interference"; replicating it anchors the fitted
// response surface at the solo baseline, which the schedulers' empty-
// machine predictions and Fig 5/6's best-case predictions depend on.
const soloReplicas = 8

// Profile runs target against every background and assembles the training
// set. Background features are the background's own solo profile, which is
// what the task and resource monitor can observe in production.
func (p *Profiler) Profile(target xen.AppSpec, backgrounds []xen.AppSpec) (*TrainingSet, error) {
	if len(backgrounds) == 0 {
		return nil, fmt.Errorf("model: no backgrounds to profile %q against", target.Name)
	}
	tgtSolo, err := p.TB.ProfileSolo(target)
	if err != nil {
		return nil, err
	}
	ts := &TrainingSet{App: target.Name, Features: tgtSolo.Features()}
	for _, bg := range backgrounds {
		bgSolo, err := p.TB.ProfileSolo(bg)
		if err != nil {
			return nil, err
		}
		m, err := p.TB.MeasureAgainstBackground(target, bg)
		if err != nil {
			return nil, err
		}
		ts.Samples = append(ts.Samples, Sample{
			BG:      bgSolo.Features(),
			Runtime: m.Runtime,
			IOPS:    m.IOPS,
		})
	}
	// Independent repetitions of the no-interference run (distinct idle
	// "workloads" so each carries fresh measurement noise).
	for rep := 0; rep < soloReplicas; rep++ {
		idle := xen.Idle()
		idle.Name = fmt.Sprintf("idle-rep-%d", rep)
		m, err := p.TB.MeasureAgainstBackground(target, idle)
		if err != nil {
			return nil, err
		}
		ts.Samples = append(ts.Samples, Sample{
			BG:      make([]float64, NumFeatures),
			Runtime: m.Runtime,
			IOPS:    m.IOPS,
		})
	}
	return ts, nil
}
