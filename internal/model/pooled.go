package model

import (
	"fmt"

	"tracon/internal/mat"
	"tracon/internal/stats"
)

// PooledModel is the full eight-variable form of the paper's equations (1)
// and (2): both VMs' characteristics are controlled variables, and one
// model is trained across all applications. Per-application models (Train)
// are what TRACON deploys; the pooled model is the natural extension for
// predicting applications that were never profiled individually, at the
// cost of accuracy on the profiled ones.
type PooledModel struct {
	Kind    Kind
	runtime predictor
	iops    predictor
}

// pooledCols returns the raw feature indices of the 8-variable input
// [VM1 features (4) ++ VM2 features (4)], honouring the Dom0 ablation on
// both halves.
func pooledCols(k Kind) []int {
	if k == NLMNoDom0 {
		return []int{0, 1, 2, 4, 5, 6}
	}
	return allCols(2 * NumFeatures)
}

// TrainPooled fits a pooled model from several applications' training
// sets. Each observation's input is the concatenation of the target's own
// solo characteristics (X_VM1) and the background's characteristics
// (X_VM2).
func TrainPooled(sets []*TrainingSet, k Kind) (*PooledModel, error) {
	var rows [][]float64
	var yRT, yIO []float64
	for _, ts := range sets {
		if len(ts.Features) != NumFeatures {
			return nil, fmt.Errorf("model: training set %q has %d target features", ts.App, len(ts.Features))
		}
		for _, s := range ts.Samples {
			row := make([]float64, 0, 2*NumFeatures)
			row = append(row, ts.Features...)
			row = append(row, s.BG...)
			rows = append(rows, row)
			yRT = append(yRT, s.Runtime)
			yIO = append(yIO, s.IOPS)
		}
	}
	if len(rows) == 0 {
		return nil, ErrTooFewSamples
	}
	x := mat.NewFromRows(rows)
	rt, err := trainPooledPredictor(k, x, yRT)
	if err != nil {
		return nil, err
	}
	io, err := trainPooledPredictor(k, x, yIO)
	if err != nil {
		return nil, err
	}
	return &PooledModel{Kind: k, runtime: rt, iops: io}, nil
}

func trainPooledPredictor(k Kind, x *mat.Matrix, y []float64) (predictor, error) {
	cols := pooledCols(k)
	sub := x.SelectColumns(cols)
	switch k {
	case WMM:
		pca, err := stats.FitPCACov(sub, wmmComponents)
		if err != nil {
			return nil, err
		}
		pts := mat.New(sub.Rows(), pca.Comp.Cols())
		for i := 0; i < sub.Rows(); i++ {
			pts.SetRow(i, pca.Project(sub.RawRow(i)))
		}
		return &wmmPredictor{pca: pca, knn: stats.NewKNN(wmmNeighbours, pts, y), cols: cols}, nil
	case LM:
		cfg := stats.DefaultStepwise()
		cfg.Weights = relativeWeights(y)
		fit, err := stats.Stepwise(sub, y, stats.LinearTerms(len(cols)), cfg)
		if err != nil {
			return nil, err
		}
		lo, hi := responseBand(y)
		return &fitPredictor{fit: fit, cols: cols, lo: lo, hi: hi, clamping: true}, nil
	case NLM, NLMNoDom0:
		// Equation (2): the full degree-2 expansion over both VMs'
		// characteristics (44 terms for the 8-variable case).
		cfg := stats.DefaultStepwise()
		cfg.Weights = relativeWeights(y)
		fit, err := stats.Stepwise(sub, y, stats.QuadraticTerms(len(cols)), cfg)
		if err != nil {
			return nil, err
		}
		gn, err := stats.FitGaussNewton(sub, y, fit.Terms, stats.GaussNewtonConfig{Damping: true})
		if err == nil && weightedSSE(sub, y, gn) < fit.SSE {
			fit = gn
		}
		lo, hi := responseBand(y)
		return &fitPredictor{fit: fit, cols: cols, lo: lo, hi: hi, clamping: true}, nil
	default:
		return nil, fmt.Errorf("model: unknown kind %v", k)
	}
}

// PredictRuntime predicts the runtime of a target with solo
// characteristics tgt co-located with a workload of characteristics bg.
func (p *PooledModel) PredictRuntime(tgt, bg []float64) float64 {
	v := p.runtime.predict(concat(tgt, bg))
	if v < 1e-6 {
		v = 1e-6
	}
	return v
}

// PredictIOPS likewise for throughput.
func (p *PooledModel) PredictIOPS(tgt, bg []float64) float64 {
	v := p.iops.predict(concat(tgt, bg))
	if v < 0 {
		v = 0
	}
	return v
}

func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}
