package model

import (
	"fmt"

	"tracon/internal/mat"
	"tracon/internal/stats"
)

// Kind selects a model family.
type Kind int

// The model families compared in the paper, plus the paper's own ablation
// (NLM trained without the fourth characteristic, global Dom0 CPU).
const (
	WMM Kind = iota
	LM
	NLM
	NLMNoDom0
	// Forest is a bagged regression-tree ensemble — the "different
	// modeling technique" extension of the paper's future work. It handles
	// the cliff-shaped low-rate region of the interference response that
	// polynomials smooth over.
	Forest
)

// String returns the family label used in the figures.
func (k Kind) String() string {
	switch k {
	case WMM:
		return "WMM"
	case LM:
		return "LM"
	case NLM:
		return "NLM"
	case NLMNoDom0:
		return "NLM-noDom0"
	case Forest:
		return "Forest"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns the three families of Fig 3/4 in presentation order.
func Kinds() []Kind { return []Kind{WMM, LM, NLM} }

// predictor is one trained response model.
type predictor interface {
	predict(bg []float64) float64
}

// fitPredictor is implemented by stats.Fit-backed predictors. Predictions
// are clamped to a band around the observed training range: a polynomial
// extrapolating outside the profiled workload space can produce arbitrarily
// wrong values, and TRACON knows the physically plausible response range
// from profiling.
type fitPredictor struct {
	fit      *stats.Fit
	cols     []int // raw feature indices used (ablation support)
	lo, hi   float64
	clamping bool
}

func (f *fitPredictor) predict(bg []float64) float64 {
	x := pick(bg, f.cols)
	v := f.fit.Predict(x)
	if f.clamping {
		if v < f.lo {
			v = f.lo
		} else if v > f.hi {
			v = f.hi
		}
	}
	return v
}

// responseBand returns the clamp band for a response vector: [½·min, 1.5·max].
func responseBand(y []float64) (lo, hi float64) {
	s := stats.Summarize(y)
	return 0.5 * s.Min, 1.5 * s.Max
}

// relativeWeights returns wᵢ = 1/yᵢ², the weights under which least squares
// minimizes the paper's relative-error metric. Responses near zero are
// floored to avoid infinite weight.
func relativeWeights(y []float64) []float64 {
	w := make([]float64, len(y))
	for i, v := range y {
		a := v
		if a < 0 {
			a = -a
		}
		if a < 1e-6 {
			a = 1e-6
		}
		w[i] = 1 / (a * a)
	}
	return w
}

// forestPredictor wraps a bagged regression-tree ensemble.
type forestPredictor struct {
	forest *stats.Forest
	cols   []int
}

func (f *forestPredictor) predict(bg []float64) float64 {
	return f.forest.Predict(pick(bg, f.cols))
}

// wmmPredictor is the weighted mean method: project onto the leading
// principal components of the training features, then take the
// reciprocal-distance-weighted mean of the three nearest profiled
// responses ([21]-style, Sec. 3.1).
type wmmPredictor struct {
	pca  *stats.PCA
	knn  *stats.KNNRegressor
	cols []int
}

func (w *wmmPredictor) predict(bg []float64) float64 {
	return w.knn.Predict(w.pca.Project(pick(bg, w.cols)))
}

// wmmNeighbours is the paper's k: the three nearest data points.
const wmmNeighbours = 3

// wmmComponents is the paper's embedding dimension: the first four
// principal components.
const wmmComponents = 4

// weightedSSE evaluates a fit under the relative weights, so Gauss-Newton
// refits are compared on the same objective as the stepwise selection.
func weightedSSE(x *mat.Matrix, y []float64, f *stats.Fit) float64 {
	w := relativeWeights(y)
	sse := 0.0
	for i := 0; i < x.Rows(); i++ {
		r := y[i] - f.Predict(x.RawRow(i))
		sse += w[i] * r * r
	}
	return sse
}

func pick(x []float64, cols []int) []float64 {
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = x[c]
	}
	return out
}

// allCols returns [0..n).
func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// featureCols returns the raw feature indices a model kind consumes.
func featureCols(k Kind) []int {
	if k == NLMNoDom0 {
		// Drop the global Dom0 CPU characteristic (index 3).
		return []int{0, 1, 2}
	}
	return allCols(NumFeatures)
}

// trainPredictor fits one response model of the given kind.
func trainPredictor(k Kind, x *mat.Matrix, y []float64) (predictor, error) {
	cols := featureCols(k)
	sub := x.SelectColumns(cols)
	switch k {
	case WMM:
		comps := wmmComponents
		if comps > len(cols) {
			comps = len(cols)
		}
		pca, err := stats.FitPCACov(sub, comps)
		if err != nil {
			return nil, fmt.Errorf("model: WMM PCA: %w", err)
		}
		pts := mat.New(sub.Rows(), comps)
		for i := 0; i < sub.Rows(); i++ {
			pts.SetRow(i, pca.Project(sub.RawRow(i)))
		}
		return &wmmPredictor{pca: pca, knn: stats.NewKNN(wmmNeighbours, pts, y), cols: cols}, nil

	case LM:
		cfg := stats.DefaultStepwise()
		cfg.Weights = relativeWeights(y)
		fit, err := stats.Stepwise(sub, y, stats.LinearTerms(len(cols)), cfg)
		if err != nil {
			return nil, fmt.Errorf("model: LM stepwise: %w", err)
		}
		lo, hi := responseBand(y)
		return &fitPredictor{fit: fit, cols: cols, lo: lo, hi: hi, clamping: true}, nil

	case Forest:
		f, err := stats.FitForest(sub, y, stats.ForestConfig{Trees: 60, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("model: forest: %w", err)
		}
		return &forestPredictor{forest: f, cols: cols}, nil

	case NLM, NLMNoDom0:
		cfg := stats.DefaultStepwise()
		cfg.Weights = relativeWeights(y)
		fit, err := stats.Stepwise(sub, y, stats.QuadraticTerms(len(cols)), cfg)
		if err != nil {
			return nil, fmt.Errorf("model: NLM stepwise: %w", err)
		}
		// Refit the selected term set with the Gauss-Newton solver, the
		// paper's estimation procedure for the nonlinear models. For a
		// polynomial model this lands on the least-squares optimum; the
		// call keeps the training path faithful and guards the stepwise
		// result (we keep whichever fit has lower weighted SSE).
		gn, err := stats.FitGaussNewton(sub, y, fit.Terms, stats.GaussNewtonConfig{Damping: true})
		if err == nil && weightedSSE(sub, y, gn) < fit.SSE {
			fit = gn
		}
		lo, hi := responseBand(y)
		return &fitPredictor{fit: fit, cols: cols, lo: lo, hi: hi, clamping: true}, nil

	default:
		return nil, fmt.Errorf("model: unknown kind %v", k)
	}
}

// AppModel is a trained interference model for one target application:
// one predictor per response.
type AppModel struct {
	App  string
	Kind Kind

	runtime predictor
	iops    predictor

	// SoloRuntime and SoloIOPS are the target's no-interference baselines,
	// used to clamp predictions and to express slowdowns.
	SoloRuntime float64
	SoloIOPS    float64
}

// Train fits an AppModel of the given kind from a training set.
func Train(ts *TrainingSet, k Kind) (*AppModel, error) {
	min := NumFeatures + 2
	if k == NLM || k == NLMNoDom0 {
		// Enough rows to support the quadratic expansion.
		min = len(stats.QuadraticTerms(len(featureCols(k)))) + 2
	}
	if len(ts.Samples) < min {
		return nil, fmt.Errorf("%w: %d samples for %v (need >= %d)", ErrTooFewSamples, len(ts.Samples), k, min)
	}
	x := ts.Matrix()
	rt, err := trainPredictor(k, x, ts.ResponseVec(Runtime))
	if err != nil {
		return nil, err
	}
	io, err := trainPredictor(k, x, ts.ResponseVec(IOPS))
	if err != nil {
		return nil, err
	}
	m := &AppModel{App: ts.App, Kind: k, runtime: rt, iops: io}
	m.SoloRuntime = m.PredictRuntime(zeroFeatures())
	m.SoloIOPS = m.PredictIOPS(zeroFeatures())
	return m, nil
}

// PredictRuntime predicts the target's runtime when co-located with a
// workload having the given characteristics. Predictions are floored at a
// small positive value; a regression can extrapolate below zero at the
// edge of the training domain, and a negative runtime is meaningless to
// the scheduler.
func (m *AppModel) PredictRuntime(bg []float64) float64 {
	v := m.runtime.predict(bg)
	if v < 1e-6 {
		v = 1e-6
	}
	return v
}

// PredictIOPS predicts the target's throughput under the given
// interference, floored at zero.
func (m *AppModel) PredictIOPS(bg []float64) float64 {
	v := m.iops.predict(bg)
	if v < 0 {
		v = 0
	}
	return v
}

// zeroFeatures is the characteristics vector of an idle neighbour.
func zeroFeatures() []float64 { return make([]float64, NumFeatures) }
