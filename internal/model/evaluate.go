package model

import (
	"fmt"
	"math"

	"tracon/internal/stats"
)

// PredictionError is the paper's error metric:
// |predicted − actual| / actual.
func PredictionError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// CrossValidate estimates per-sample prediction errors of a model family on
// a training set by k-fold cross-validation (deterministic round-robin fold
// assignment): each fold is held out, a model is trained on the rest, and
// held-out samples are predicted. The returned slice has one relative error
// per sample, in sample order.
func CrossValidate(ts *TrainingSet, k Kind, r Response, folds int) ([]float64, error) {
	n := len(ts.Samples)
	if folds < 2 {
		return nil, fmt.Errorf("model: need at least 2 folds, got %d", folds)
	}
	if folds > n {
		folds = n
	}
	errs := make([]float64, n)
	for fold := 0; fold < folds; fold++ {
		train := &TrainingSet{App: ts.App, Features: ts.Features}
		var heldOut []int
		for i, s := range ts.Samples {
			if i%folds == fold {
				heldOut = append(heldOut, i)
			} else {
				train.Samples = append(train.Samples, s)
			}
		}
		m, err := Train(train, k)
		if err != nil {
			return nil, fmt.Errorf("model: CV fold %d: %w", fold, err)
		}
		for _, i := range heldOut {
			s := ts.Samples[i]
			var pred, actual float64
			if r == Runtime {
				pred, actual = m.PredictRuntime(s.BG), s.Runtime
			} else {
				pred, actual = m.PredictIOPS(s.BG), s.IOPS
			}
			errs[i] = PredictionError(pred, actual)
		}
	}
	return errs, nil
}

// ErrorSummary condenses a CV error vector the way Fig 3 reports it:
// average prediction error with its standard deviation.
func ErrorSummary(errs []float64) (mean, stddev float64) {
	s := stats.Summarize(errs)
	return s.Mean, s.Stddev
}
