package model

import (
	"math"
	"sync"
	"testing"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Shared profiling fixture: measuring 125 backgrounds is the expensive part
// of every model test, so it is done once per target app.
var (
	fixtureOnce sync.Once
	fixtureTS   map[string]*TrainingSet
	fixtureTB   *xen.Testbed
)

func fixture(t *testing.T) (map[string]*TrainingSet, *xen.Testbed) {
	t.Helper()
	fixtureOnce.Do(func() {
		host, err := xen.NewHost(xen.DefaultHost())
		if err != nil {
			panic(err)
		}
		fixtureTB = xen.NewTestbed(host, 3, 0.05, 1)
		prof := &Profiler{TB: fixtureTB}
		var bgs []xen.AppSpec
		for _, w := range workload.ProfilingWorkloads(host.Config().Disk) {
			bgs = append(bgs, w.Spec)
		}
		fixtureTS = map[string]*TrainingSet{}
		for _, name := range []string{"blastn", "blastp", "video"} {
			b, err := workload.BenchmarkByName(name)
			if err != nil {
				panic(err)
			}
			ts, err := prof.Profile(b.Spec, bgs)
			if err != nil {
				panic(err)
			}
			fixtureTS[name] = ts
		}
	})
	return fixtureTS, fixtureTB
}

func TestProfileShape(t *testing.T) {
	tss, _ := fixture(t)
	ts := tss["blastn"]
	if len(ts.Samples) != 125+soloReplicas {
		t.Fatalf("profile has %d samples, want %d", len(ts.Samples), 125+soloReplicas)
	}
	if len(ts.Features) != NumFeatures {
		t.Fatalf("target features: %v", ts.Features)
	}
	for _, s := range ts.Samples {
		if len(s.BG) != NumFeatures {
			t.Fatalf("bad sample features %v", s.BG)
		}
		if s.Runtime <= 0 || s.IOPS < 0 {
			t.Fatalf("bad responses %+v", s)
		}
	}
}

func TestIdleBackgroundGivesSoloRuntime(t *testing.T) {
	tss, tb := fixture(t)
	ts := tss["blastn"]
	b, _ := workload.BenchmarkByName("blastn")
	solo, err := tb.ProfileSolo(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// Sample 0 is the idle grid point.
	if math.Abs(ts.Samples[0].Runtime-solo.Runtime)/solo.Runtime > 0.1 {
		t.Fatalf("idle-background runtime %v far from solo %v", ts.Samples[0].Runtime, solo.Runtime)
	}
}

func TestTrainAllKinds(t *testing.T) {
	tss, _ := fixture(t)
	for _, k := range []Kind{WMM, LM, NLM, NLMNoDom0} {
		m, err := Train(tss["blastn"], k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.App != "blastn" || m.Kind != k {
			t.Fatalf("bad model identity %+v", m)
		}
		p := m.PredictRuntime(zeroFeatures())
		if p <= 0 || math.IsNaN(p) {
			t.Fatalf("%v idle prediction %v", k, p)
		}
	}
}

func TestTrainRejectsTinySets(t *testing.T) {
	tss, _ := fixture(t)
	small := &TrainingSet{
		App:      "tiny",
		Features: tss["blastn"].Features,
		Samples:  tss["blastn"].Samples[:4],
	}
	if _, err := Train(small, NLM); err == nil {
		t.Fatal("NLM trained on 4 samples")
	}
}

func TestPredictionsRespondToInterference(t *testing.T) {
	// A heavy background must predict a longer runtime and lower IOPS than
	// an idle one, for every model kind.
	tss, _ := fixture(t)
	ts := tss["blastn"]
	heavy := ts.Samples[124].BG // the (1,1,1) grid corner (replicas follow)
	for _, k := range Kinds() {
		m, err := Train(ts, k)
		if err != nil {
			t.Fatal(err)
		}
		idleRT := m.PredictRuntime(zeroFeatures())
		heavyRT := m.PredictRuntime(heavy)
		if heavyRT <= idleRT {
			t.Errorf("%v: heavy interference runtime %v <= idle %v", k, heavyRT, idleRT)
		}
		idleIO := m.PredictIOPS(zeroFeatures())
		heavyIO := m.PredictIOPS(heavy)
		if heavyIO >= idleIO {
			t.Errorf("%v: heavy interference IOPS %v >= idle %v", k, heavyIO, idleIO)
		}
	}
}

// The Fig 3 reproduction criterion: averaged over data-intensive targets,
// NLM must have the lowest cross-validated runtime prediction error, and
// dropping the Dom0 feature must hurt it substantially.
func TestFig3Ordering(t *testing.T) {
	tss, _ := fixture(t)
	mean := func(k Kind, r Response) float64 {
		tot, n := 0.0, 0
		for _, ts := range tss {
			errs, err := CrossValidate(ts, k, r, 5)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := ErrorSummary(errs)
			tot += m
			n++
		}
		return tot / float64(n)
	}
	nlm := mean(NLM, Runtime)
	lm := mean(LM, Runtime)
	wmm := mean(WMM, Runtime)
	noDom0 := mean(NLMNoDom0, Runtime)
	if nlm >= lm {
		t.Errorf("NLM runtime error %v not below LM %v", nlm, lm)
	}
	if nlm >= wmm {
		t.Errorf("NLM runtime error %v not below WMM %v", nlm, wmm)
	}
	if noDom0 < nlm*1.2 {
		t.Errorf("dropping Dom0 should hurt NLM substantially: %v vs %v", noDom0, nlm)
	}
	if nlm > 0.25 {
		t.Errorf("NLM mean runtime error %v too large", nlm)
	}
	nlmIO := mean(NLM, IOPS)
	lmIO := mean(LM, IOPS)
	if nlmIO >= lmIO {
		t.Errorf("NLM IOPS error %v not below LM %v", nlmIO, lmIO)
	}
}

func TestPredictionErrorMetric(t *testing.T) {
	if e := PredictionError(110, 100); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("err = %v", e)
	}
	if e := PredictionError(90, 100); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("err = %v", e)
	}
	if e := PredictionError(0, 0); e != 0 {
		t.Fatalf("0/0 err = %v", e)
	}
	if e := PredictionError(1, 0); !math.IsInf(e, 1) {
		t.Fatalf("x/0 err = %v", e)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	tss, _ := fixture(t)
	if _, err := CrossValidate(tss["blastn"], NLM, Runtime, 1); err == nil {
		t.Fatal("1 fold accepted")
	}
	errs, err := CrossValidate(tss["blastn"], LM, Runtime, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 125 grid workloads + the replicated no-interference runs.
	if len(errs) != 125+soloReplicas {
		t.Fatalf("got %d errors", len(errs))
	}
	for _, e := range errs {
		if e < 0 || math.IsNaN(e) {
			t.Fatalf("bad error %v", e)
		}
	}
}

func TestLibraryPredictAndLookup(t *testing.T) {
	tss, tb := fixture(t)
	lib := NewLibrary(NLM)
	for name, ts := range tss {
		b, _ := workload.BenchmarkByName(name)
		solo, err := tb.ProfileSolo(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Add(ts, solo); err != nil {
			t.Fatal(err)
		}
	}
	if got := lib.Apps(); len(got) != 3 {
		t.Fatalf("Apps = %v", got)
	}
	// Idle corunner ≈ solo runtime.
	idleRT, err := lib.PredictRuntime("blastn", "")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := lib.SoloRuntime("blastn")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idleRT-solo)/solo > 0.25 {
		t.Fatalf("idle prediction %v far from solo %v", idleRT, solo)
	}
	// A video corunner must be predicted worse than a blastp corunner.
	heavy, err := lib.PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	light, err := lib.PredictRuntime("blastn", "blastp")
	if err != nil {
		t.Fatal(err)
	}
	if heavy <= light {
		t.Fatalf("video corunner (%v) should hurt more than blastp (%v)", heavy, light)
	}
	// Unknown apps error cleanly.
	if _, err := lib.PredictRuntime("nope", ""); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := lib.PredictRuntime("blastn", "nope"); err == nil {
		t.Fatal("unknown corunner accepted")
	}
	if _, err := lib.Features("nope"); err == nil {
		t.Fatal("unknown app features accepted")
	}
}

func TestOraclePredictor(t *testing.T) {
	_, tb := fixture(t)
	var specs []xen.AppSpec
	for _, b := range workload.Benchmarks() {
		specs = append(specs, b.Spec)
	}
	o := NewOracle(tb, specs)
	if len(o.Apps()) != 8 {
		t.Fatalf("oracle apps = %v", o.Apps())
	}
	solo, err := o.SoloRuntime("blastn")
	if err != nil {
		t.Fatal(err)
	}
	with, err := o.PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	if with <= solo {
		t.Fatalf("oracle: corunner runtime %v <= solo %v", with, solo)
	}
	if _, err := o.PredictRuntime("blastn", "nope"); err == nil {
		t.Fatal("unknown corunner accepted")
	}
	// Oracle must handle a task co-located with another instance of itself.
	same, err := o.PredictRuntime("blastn", "blastn")
	if err != nil {
		t.Fatal(err)
	}
	if same <= solo {
		t.Fatalf("self co-location should still interfere: %v vs %v", same, solo)
	}
}

func TestPooledModelTrainsAndOrders(t *testing.T) {
	tss, _ := fixture(t)
	var sets []*TrainingSet
	for _, ts := range tss {
		sets = append(sets, ts)
	}
	pm, err := TrainPooled(sets, NLM)
	if err != nil {
		t.Fatal(err)
	}
	blastn := tss["blastn"]
	// The heaviest *grid* sample (the trailing samples are idle replicas).
	heavy := blastn.Samples[124].BG
	idle := pm.PredictRuntime(blastn.Features, zeroFeatures())
	loaded := pm.PredictRuntime(blastn.Features, heavy)
	// The pooled model is a coarse cross-application extension; require
	// sane, ordered (non-strict: clamping may saturate both) predictions.
	if loaded < idle || idle <= 0 || math.IsNaN(loaded) {
		t.Fatalf("pooled: heavy corunner %v < idle %v", loaded, idle)
	}
	if pm.PredictIOPS(blastn.Features, heavy) > pm.PredictIOPS(blastn.Features, zeroFeatures()) {
		t.Fatal("pooled IOPS should drop under interference")
	}
}

func TestTrainPooledEmpty(t *testing.T) {
	if _, err := TrainPooled(nil, NLM); err == nil {
		t.Fatal("empty pooled training accepted")
	}
}
