package model

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"tracon/internal/stats"
	"tracon/internal/xen"
)

// Model persistence: a production TRACON manager trains models once and
// serves them across restarts. The regression-backed families (LM, NLM and
// the ablation variant) serialize to JSON; the instance-based families
// (WMM, Forest) carry their whole training set by construction and are
// cheap to retrain at startup, so persisting them would just duplicate the
// profile store — Save reports this explicitly.

// savedModel is the on-disk form of an AppModel.
type savedModel struct {
	App         string   `json:"app"`
	Kind        string   `json:"kind"`
	SoloRuntime float64  `json:"solo_runtime"`
	SoloIOPS    float64  `json:"solo_iops"`
	Runtime     savedFit `json:"runtime"`
	IOPS        savedFit `json:"iops"`
}

type savedFit struct {
	Cols      []int       `json:"cols"`
	Intercept float64     `json:"intercept"`
	Terms     []savedTerm `json:"terms"`
	Coef      []float64   `json:"coef"`
	Lo        float64     `json:"lo"`
	Hi        float64     `json:"hi"`
	Clamping  bool        `json:"clamping"`
}

type savedTerm struct {
	I int `json:"i"`
	J int `json:"j"`
}

// ErrNotPersistable is returned when a model family does not support
// serialization (retrain it from the stored profile instead).
var ErrNotPersistable = fmt.Errorf("model: this family is instance-based; retrain from the profile")

// Save serializes the model as JSON.
func (m *AppModel) Save(w io.Writer) error {
	out, err := m.saved()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// saved builds the on-disk form, or ErrNotPersistable for instance-based
// families.
func (m *AppModel) saved() (savedModel, error) {
	rt, ok := m.runtime.(*fitPredictor)
	if !ok {
		return savedModel{}, fmt.Errorf("%w (%v)", ErrNotPersistable, m.Kind)
	}
	io_, ok := m.iops.(*fitPredictor)
	if !ok {
		return savedModel{}, fmt.Errorf("%w (%v)", ErrNotPersistable, m.Kind)
	}
	return savedModel{
		App:         m.App,
		Kind:        m.Kind.String(),
		SoloRuntime: m.SoloRuntime,
		SoloIOPS:    m.SoloIOPS,
		Runtime:     encodeFit(rt),
		IOPS:        encodeFit(io_),
	}, nil
}

func encodeFit(f *fitPredictor) savedFit {
	sf := savedFit{
		Cols:      append([]int(nil), f.cols...),
		Intercept: f.fit.Intercept,
		Coef:      append([]float64(nil), f.fit.Coef...),
		Lo:        f.lo,
		Hi:        f.hi,
		Clamping:  f.clamping,
	}
	for _, t := range f.fit.Terms {
		sf.Terms = append(sf.Terms, savedTerm{I: t.I, J: t.J})
	}
	return sf
}

// Load deserializes a model saved with Save.
func Load(r io.Reader) (*AppModel, error) {
	var in savedModel
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding saved model: %w", err)
	}
	return in.model()
}

// model reconstructs the AppModel from its on-disk form.
func (in savedModel) model() (*AppModel, error) {
	kind, err := kindFromString(in.Kind)
	if err != nil {
		return nil, err
	}
	rt, err := decodeFit(in.Runtime)
	if err != nil {
		return nil, fmt.Errorf("model: runtime fit: %w", err)
	}
	io_, err := decodeFit(in.IOPS)
	if err != nil {
		return nil, fmt.Errorf("model: iops fit: %w", err)
	}
	if in.App == "" {
		return nil, fmt.Errorf("model: saved model has no application name")
	}
	return &AppModel{
		App:         in.App,
		Kind:        kind,
		runtime:     rt,
		iops:        io_,
		SoloRuntime: in.SoloRuntime,
		SoloIOPS:    in.SoloIOPS,
	}, nil
}

func decodeFit(sf savedFit) (*fitPredictor, error) {
	if len(sf.Terms) != len(sf.Coef) {
		return nil, fmt.Errorf("%d terms but %d coefficients", len(sf.Terms), len(sf.Coef))
	}
	if len(sf.Cols) == 0 {
		return nil, fmt.Errorf("no feature columns")
	}
	for _, c := range sf.Cols {
		if c < 0 || c >= NumFeatures {
			return nil, fmt.Errorf("feature column %d out of range", c)
		}
	}
	terms := make([]stats.Term, len(sf.Terms))
	for i, t := range sf.Terms {
		if t.I < 0 || t.I >= len(sf.Cols) || t.J >= len(sf.Cols) {
			return nil, fmt.Errorf("term %d indexes outside the column set", i)
		}
		terms[i] = stats.Term{I: t.I, J: t.J}
	}
	return &fitPredictor{
		fit: &stats.Fit{
			Terms:     terms,
			Intercept: sf.Intercept,
			Coef:      append([]float64(nil), sf.Coef...),
		},
		cols:     append([]int(nil), sf.Cols...),
		lo:       sf.Lo,
		hi:       sf.Hi,
		clamping: sf.Clamping,
	}, nil
}

// savedLibrary is the on-disk form of a whole Library: everything a
// serving daemon needs to score placements — per-app models plus the solo
// characteristics that describe each application as a co-runner.
type savedLibrary struct {
	Kind string              `json:"kind"`
	Apps []savedLibraryEntry `json:"apps"`
}

type savedLibraryEntry struct {
	Model       savedModel `json:"model"`
	Features    []float64  `json:"features"`
	SoloRuntime float64    `json:"solo_runtime"`
	SoloIOPS    float64    `json:"solo_iops"`
}

// Save serializes the whole library as JSON, apps sorted by name. Only
// regression-backed families persist; instance-based ones return
// ErrNotPersistable (retrain them from the profile store instead).
func (l *Library) Save(w io.Writer) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := savedLibrary{Kind: l.Kind.String()}
	names := make([]string, 0, len(l.models))
	for a := range l.models {
		names = append(names, a)
	}
	sort.Strings(names)
	for _, a := range names {
		sm, err := l.models[a].saved()
		if err != nil {
			return err
		}
		out.Apps = append(out.Apps, savedLibraryEntry{
			Model:       sm,
			Features:    append([]float64(nil), l.features[a]...),
			SoloRuntime: l.soloRT[a],
			SoloIOPS:    l.soloIO[a],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadLibrary deserializes a library saved with Library.Save.
func LoadLibrary(r io.Reader) (*Library, error) {
	var in savedLibrary
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding saved library: %w", err)
	}
	kind, err := kindFromString(in.Kind)
	if err != nil {
		return nil, err
	}
	lib := NewLibrary(kind)
	for i, e := range in.Apps {
		m, err := e.Model.model()
		if err != nil {
			return nil, fmt.Errorf("model: saved library app %d: %w", i, err)
		}
		solo := xen.SoloProfile{Runtime: e.SoloRuntime, IOPS: e.SoloIOPS}
		if err := lib.AddTrained(m, e.Features, solo); err != nil {
			return nil, fmt.Errorf("model: saved library app %d: %w", i, err)
		}
	}
	return lib, nil
}

func kindFromString(s string) (Kind, error) {
	for _, k := range []Kind{WMM, LM, NLM, NLMNoDom0, Forest} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("model: unknown kind %q", s)
}
