package model

import (
	"encoding/json"
	"fmt"
	"io"

	"tracon/internal/stats"
)

// Model persistence: a production TRACON manager trains models once and
// serves them across restarts. The regression-backed families (LM, NLM and
// the ablation variant) serialize to JSON; the instance-based families
// (WMM, Forest) carry their whole training set by construction and are
// cheap to retrain at startup, so persisting them would just duplicate the
// profile store — Save reports this explicitly.

// savedModel is the on-disk form of an AppModel.
type savedModel struct {
	App         string   `json:"app"`
	Kind        string   `json:"kind"`
	SoloRuntime float64  `json:"solo_runtime"`
	SoloIOPS    float64  `json:"solo_iops"`
	Runtime     savedFit `json:"runtime"`
	IOPS        savedFit `json:"iops"`
}

type savedFit struct {
	Cols      []int       `json:"cols"`
	Intercept float64     `json:"intercept"`
	Terms     []savedTerm `json:"terms"`
	Coef      []float64   `json:"coef"`
	Lo        float64     `json:"lo"`
	Hi        float64     `json:"hi"`
	Clamping  bool        `json:"clamping"`
}

type savedTerm struct {
	I int `json:"i"`
	J int `json:"j"`
}

// ErrNotPersistable is returned when a model family does not support
// serialization (retrain it from the stored profile instead).
var ErrNotPersistable = fmt.Errorf("model: this family is instance-based; retrain from the profile")

// Save serializes the model as JSON.
func (m *AppModel) Save(w io.Writer) error {
	rt, ok := m.runtime.(*fitPredictor)
	if !ok {
		return fmt.Errorf("%w (%v)", ErrNotPersistable, m.Kind)
	}
	io_, ok := m.iops.(*fitPredictor)
	if !ok {
		return fmt.Errorf("%w (%v)", ErrNotPersistable, m.Kind)
	}
	out := savedModel{
		App:         m.App,
		Kind:        m.Kind.String(),
		SoloRuntime: m.SoloRuntime,
		SoloIOPS:    m.SoloIOPS,
		Runtime:     encodeFit(rt),
		IOPS:        encodeFit(io_),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func encodeFit(f *fitPredictor) savedFit {
	sf := savedFit{
		Cols:      append([]int(nil), f.cols...),
		Intercept: f.fit.Intercept,
		Coef:      append([]float64(nil), f.fit.Coef...),
		Lo:        f.lo,
		Hi:        f.hi,
		Clamping:  f.clamping,
	}
	for _, t := range f.fit.Terms {
		sf.Terms = append(sf.Terms, savedTerm{I: t.I, J: t.J})
	}
	return sf
}

// Load deserializes a model saved with Save.
func Load(r io.Reader) (*AppModel, error) {
	var in savedModel
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding saved model: %w", err)
	}
	kind, err := kindFromString(in.Kind)
	if err != nil {
		return nil, err
	}
	rt, err := decodeFit(in.Runtime)
	if err != nil {
		return nil, fmt.Errorf("model: runtime fit: %w", err)
	}
	io_, err := decodeFit(in.IOPS)
	if err != nil {
		return nil, fmt.Errorf("model: iops fit: %w", err)
	}
	if in.App == "" {
		return nil, fmt.Errorf("model: saved model has no application name")
	}
	return &AppModel{
		App:         in.App,
		Kind:        kind,
		runtime:     rt,
		iops:        io_,
		SoloRuntime: in.SoloRuntime,
		SoloIOPS:    in.SoloIOPS,
	}, nil
}

func decodeFit(sf savedFit) (*fitPredictor, error) {
	if len(sf.Terms) != len(sf.Coef) {
		return nil, fmt.Errorf("%d terms but %d coefficients", len(sf.Terms), len(sf.Coef))
	}
	if len(sf.Cols) == 0 {
		return nil, fmt.Errorf("no feature columns")
	}
	for _, c := range sf.Cols {
		if c < 0 || c >= NumFeatures {
			return nil, fmt.Errorf("feature column %d out of range", c)
		}
	}
	terms := make([]stats.Term, len(sf.Terms))
	for i, t := range sf.Terms {
		if t.I < 0 || t.I >= len(sf.Cols) || t.J >= len(sf.Cols) {
			return nil, fmt.Errorf("term %d indexes outside the column set", i)
		}
		terms[i] = stats.Term{I: t.I, J: t.J}
	}
	return &fitPredictor{
		fit: &stats.Fit{
			Terms:     terms,
			Intercept: sf.Intercept,
			Coef:      append([]float64(nil), sf.Coef...),
		},
		cols:     append([]int(nil), sf.Cols...),
		lo:       sf.Lo,
		hi:       sf.Hi,
		clamping: sf.Clamping,
	}, nil
}

func kindFromString(s string) (Kind, error) {
	for _, k := range []Kind{WMM, LM, NLM, NLMNoDom0, Forest} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("model: unknown kind %q", s)
}
