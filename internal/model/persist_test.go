package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTripNLM(t *testing.T) {
	tss, _ := fixture(t)
	m, err := Train(tss["blastn"], NLM)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != "blastn" || loaded.Kind != NLM {
		t.Fatalf("identity lost: %+v", loaded)
	}
	// Predictions must match bit-for-bit on several inputs.
	for _, bg := range [][]float64{
		zeroFeatures(),
		tss["blastn"].Samples[40].BG,
		tss["blastn"].Samples[124].BG,
	} {
		if m.PredictRuntime(bg) != loaded.PredictRuntime(bg) {
			t.Fatalf("runtime prediction diverged after round trip")
		}
		if m.PredictIOPS(bg) != loaded.PredictIOPS(bg) {
			t.Fatalf("IOPS prediction diverged after round trip")
		}
	}
	if m.SoloRuntime != loaded.SoloRuntime || m.SoloIOPS != loaded.SoloIOPS {
		t.Fatal("solo baselines lost")
	}
}

func TestSaveLoadRoundTripLM(t *testing.T) {
	tss, _ := fixture(t)
	m, err := Train(tss["video"], LM)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bg := tss["video"].Samples[10].BG
	if m.PredictRuntime(bg) != loaded.PredictRuntime(bg) {
		t.Fatal("LM round trip diverged")
	}
}

func TestSaveRejectsInstanceBasedFamilies(t *testing.T) {
	tss, _ := fixture(t)
	for _, k := range []Kind{WMM, Forest} {
		m, err := Train(tss["blastn"], k)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err == nil {
			t.Fatalf("%v serialized; expected ErrNotPersistable", k)
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"unknown kind": `{"app":"x","kind":"MLP","runtime":{"cols":[0]},"iops":{"cols":[0]}}`,
		"no app":       `{"app":"","kind":"NLM","runtime":{"cols":[0]},"iops":{"cols":[0]}}`,
		"ragged fit":   `{"app":"x","kind":"NLM","runtime":{"cols":[0],"terms":[{"i":0,"j":-1}],"coef":[]},"iops":{"cols":[0]}}`,
		"bad column":   `{"app":"x","kind":"NLM","runtime":{"cols":[9]},"iops":{"cols":[0]}}`,
		"bad term":     `{"app":"x","kind":"NLM","runtime":{"cols":[0],"terms":[{"i":5,"j":-1}],"coef":[1]},"iops":{"cols":[0]}}`,
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
