package model

import (
	"fmt"
)

// DriftDetector watches a stream of prediction errors and reports when the
// model has stopped describing reality (a mean shift or a variance surge —
// the "predefined events" of Sec. 3.1). The monitor package provides the
// implementation; the interface lives here so the adaptive model does not
// depend on it.
type DriftDetector interface {
	// Observe folds in one prediction error and reports whether drift was
	// detected at this point.
	Observe(err float64) bool
	// Reset clears the detector after a rebuild.
	Reset()
}

// AdaptiveConfig tunes the online-learning loop of Fig 7.
type AdaptiveConfig struct {
	// WindowCap bounds the sliding training window (the paper's initial
	// blastn model holds 500 points).
	WindowCap int
	// RetrainEvery rebuilds the model after this many new observations
	// (the paper rebuilds every 160 new data points).
	RetrainEvery int
	// Detector, when non-nil, can force an early rebuild on drift.
	Detector DriftDetector
}

// DefaultAdaptive returns the paper's settings.
func DefaultAdaptive() AdaptiveConfig {
	return AdaptiveConfig{WindowCap: 500, RetrainEvery: 160}
}

// Adaptive is an online-learning interference model: it serves predictions
// from its current model, tracks prediction errors against observed
// outcomes, gradually replaces old training data with fresh observations,
// and rebuilds the model periodically (or on drift).
type Adaptive struct {
	cfg     AdaptiveConfig
	kind    Kind
	app     string
	feats   []float64
	window  []Sample
	sinceRT int
	current *AppModel

	// Per-observation relative errors, recorded before the observation is
	// added to the window — exactly Fig 7's x-axis.
	RuntimeErrors []float64
	IOPSErrors    []float64
	// Rebuilds records the observation indices at which retraining fired.
	Rebuilds []int
}

// NewAdaptive builds the initial model from ts.
func NewAdaptive(ts *TrainingSet, k Kind, cfg AdaptiveConfig) (*Adaptive, error) {
	if cfg.WindowCap <= 0 {
		cfg.WindowCap = 500
	}
	if cfg.RetrainEvery <= 0 {
		cfg.RetrainEvery = 160
	}
	m, err := Train(ts, k)
	if err != nil {
		return nil, err
	}
	w := append([]Sample(nil), ts.Samples...)
	if len(w) > cfg.WindowCap {
		w = w[len(w)-cfg.WindowCap:]
	}
	return &Adaptive{
		cfg:     cfg,
		kind:    k,
		app:     ts.App,
		feats:   append([]float64(nil), ts.Features...),
		window:  w,
		current: m,
	}, nil
}

// Model returns the currently served model.
func (a *Adaptive) Model() *AppModel { return a.current }

// Observe records one production observation: the model's error on it is
// logged, the sample joins the sliding window, and the model is rebuilt
// when enough new data has accumulated (or the drift detector fires).
// It reports whether a rebuild happened.
func (a *Adaptive) Observe(s Sample) (rebuilt bool, err error) {
	if len(s.BG) != NumFeatures {
		return false, fmt.Errorf("model: observation has %d features, want %d", len(s.BG), NumFeatures)
	}
	rtErr := PredictionError(a.current.PredictRuntime(s.BG), s.Runtime)
	ioErr := PredictionError(a.current.PredictIOPS(s.BG), s.IOPS)
	a.RuntimeErrors = append(a.RuntimeErrors, rtErr)
	a.IOPSErrors = append(a.IOPSErrors, ioErr)

	a.window = append(a.window, s)
	if len(a.window) > a.cfg.WindowCap {
		a.window = a.window[len(a.window)-a.cfg.WindowCap:]
	}
	a.sinceRT++

	drift := false
	if a.cfg.Detector != nil {
		drift = a.cfg.Detector.Observe(rtErr)
	}
	if a.sinceRT < a.cfg.RetrainEvery && !drift {
		return false, nil
	}
	ts := &TrainingSet{App: a.app, Features: a.feats, Samples: a.window}
	m, trainErr := Train(ts, a.kind)
	if trainErr != nil {
		// Not enough clean data to retrain; keep serving the old model and
		// try again later rather than going dark.
		a.sinceRT = 0
		return false, nil
	}
	a.current = m
	a.sinceRT = 0
	if a.cfg.Detector != nil {
		a.cfg.Detector.Reset()
	}
	a.Rebuilds = append(a.Rebuilds, len(a.RuntimeErrors)-1)
	return true, nil
}

// RecentError returns the mean runtime prediction error over the last n
// observations (or all, if fewer).
func (a *Adaptive) RecentError(n int) float64 {
	errs := a.RuntimeErrors
	if len(errs) == 0 {
		return 0
	}
	if n > len(errs) {
		n = len(errs)
	}
	sum := 0.0
	for _, e := range errs[len(errs)-n:] {
		sum += e
	}
	return sum / float64(n)
}
