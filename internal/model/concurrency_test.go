package model

import (
	"sync"
	"testing"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// TestLibraryConcurrentPredict hammers one shared Library from many
// goroutines — the read path every concurrent simulation of the parallel
// experiment runner exercises — while another goroutine keeps swapping a
// model in via Replace (the adaptive retraining path). Run under -race
// this proves the Library's synchronization; it also checks reads stay
// deterministic (Replace installs an identically trained model, so every
// prediction must keep returning the same value).
func TestLibraryConcurrentPredict(t *testing.T) {
	tss, tb := fixture(t)

	lib := NewLibrary(WMM) // cheapest family to train; locking is shared code
	apps := []string{"blastn", "blastp", "video"}
	for _, app := range apps {
		solo, err := tb.ProfileSolo(mustSpec(t, app))
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.Add(tss[app], solo); err != nil {
			t.Fatal(err)
		}
	}
	replacement, err := Train(tss["blastn"], WMM)
	if err != nil {
		t.Fatal(err)
	}

	want := map[[2]string]float64{}
	for _, a := range apps {
		for _, b := range append([]string{""}, apps...) {
			rt, err := lib.PredictRuntime(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]string{a, b}] = rt
		}
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() { // writer: adaptive retraining swaps models in
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := lib.Replace("blastn", replacement); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				a := apps[(g+iter)%len(apps)]
				b := apps[iter%len(apps)]
				rt, err := lib.PredictRuntime(a, b)
				if err != nil {
					t.Error(err)
					return
				}
				if rt != want[[2]string{a, b}] {
					t.Errorf("PredictRuntime(%s,%s) = %v, want %v", a, b, rt, want[[2]string{a, b}])
					return
				}
				if _, err := lib.PredictIOPS(a, ""); err != nil {
					t.Error(err)
					return
				}
				if _, err := lib.SoloRuntime(a); err != nil {
					t.Error(err)
					return
				}
				if _, err := lib.Features(a); err != nil {
					t.Error(err)
					return
				}
				lib.Apps()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
}

// TestTestbedConcurrentMeasurement asserts the xen.Testbed contract the
// parallel profiler leans on: concurrent measurements on one testbed (and
// on same-seed clones) reproduce sequential measurements exactly, because
// the noise stream is key-addressed rather than call-order-addressed.
func TestTestbedConcurrentMeasurement(t *testing.T) {
	_, tb := fixture(t)
	target := mustSpec(t, "blastn")
	bg := mustSpec(t, "video")

	ref, err := tb.MeasureAgainstBackground(target, bg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wtb := tb
			if g%2 == 0 {
				wtb = tb.Clone()
			}
			for i := 0; i < 20; i++ {
				m, err := wtb.MeasureAgainstBackground(target, bg)
				if err != nil {
					t.Error(err)
					return
				}
				if m != ref {
					t.Errorf("concurrent measurement %+v differs from sequential %+v", m, ref)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func mustSpec(t *testing.T, name string) xen.AppSpec {
	t.Helper()
	b, err := workload.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Spec
}
