package model

import (
	"fmt"
	"sort"
	"sync"

	"tracon/internal/xen"
)

// Predictor is what the interference-aware schedulers consume: given a
// target application and the application currently occupying the other VM
// of a candidate machine (empty string = idle), predict the target's
// runtime or throughput. Implementations: Library (trained models, the
// TRACON path) and Oracle (ground truth, an upper-bound ablation).
type Predictor interface {
	// PredictRuntime returns the expected runtime of target when co-located
	// with corunner ("" for an idle neighbour).
	PredictRuntime(target, corunner string) (float64, error)
	// PredictIOPS returns the expected throughput of target likewise.
	PredictIOPS(target, corunner string) (float64, error)
	// SoloRuntime returns target's no-interference runtime estimate.
	SoloRuntime(target string) (float64, error)
	// SoloIOPS returns target's no-interference throughput estimate.
	SoloIOPS(target string) (float64, error)
	// Apps lists the applications the predictor knows.
	Apps() []string
}

// Library holds one trained AppModel per application plus the solo
// characteristics needed to describe each application as a co-runner.
//
// A Library is safe for concurrent use. Reads (the Predict* hot path the
// schedulers hammer) take a shared lock; Add and Replace (training and the
// adaptive retraining path) take it exclusively, so a retrain can swap a
// model in while concurrent simulations keep predicting. Individual
// AppModels are immutable once trained.
type Library struct {
	Kind Kind

	mu       sync.RWMutex
	models   map[string]*AppModel
	features map[string][]float64
	soloRT   map[string]float64
	soloIO   map[string]float64
}

// NewLibrary creates an empty library of the given family.
func NewLibrary(k Kind) *Library {
	return &Library{
		Kind:     k,
		models:   map[string]*AppModel{},
		features: map[string][]float64{},
		soloRT:   map[string]float64{},
		soloIO:   map[string]float64{},
	}
}

// Add trains a model from ts and registers the application. solo is the
// application's measured solo profile.
func (l *Library) Add(ts *TrainingSet, solo xen.SoloProfile) error {
	m, err := Train(ts, l.Kind)
	if err != nil {
		return fmt.Errorf("model: training %s/%v: %w", ts.App, l.Kind, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.models[ts.App] = m
	l.features[ts.App] = append([]float64(nil), ts.Features...)
	l.soloRT[ts.App] = solo.Runtime
	l.soloIO[ts.App] = solo.IOPS
	return nil
}

// Replace swaps in an externally trained model (used by the adaptive path).
func (l *Library) Replace(app string, m *AppModel) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.models[app]; !ok {
		return fmt.Errorf("model: unknown app %q", app)
	}
	l.models[app] = m
	return nil
}

// Features returns an application's solo characteristics vector.
func (l *Library) Features(app string) ([]float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	f, ok := l.features[app]
	if !ok {
		return nil, fmt.Errorf("model: unknown app %q", app)
	}
	return f, nil
}

// Model returns the trained model for app.
func (l *Library) Model(app string) (*AppModel, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.models[app]
	if !ok {
		return nil, fmt.Errorf("model: unknown app %q", app)
	}
	return m, nil
}

// Apps returns the registered application names, sorted.
func (l *Library) Apps() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.models))
	for a := range l.models {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// PredictRuntime implements Predictor.
func (l *Library) PredictRuntime(target, corunner string) (float64, error) {
	l.mu.RLock()
	m, ok := l.models[target]
	bg, err := l.corunnerFeaturesLocked(corunner)
	l.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("model: unknown target %q", target)
	}
	if err != nil {
		return 0, err
	}
	return m.PredictRuntime(bg), nil
}

// PredictIOPS implements Predictor.
func (l *Library) PredictIOPS(target, corunner string) (float64, error) {
	l.mu.RLock()
	m, ok := l.models[target]
	bg, err := l.corunnerFeaturesLocked(corunner)
	l.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("model: unknown target %q", target)
	}
	if err != nil {
		return 0, err
	}
	return m.PredictIOPS(bg), nil
}

// SoloRuntime implements Predictor.
func (l *Library) SoloRuntime(target string) (float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rt, ok := l.soloRT[target]
	if !ok {
		return 0, fmt.Errorf("model: unknown target %q", target)
	}
	return rt, nil
}

// SoloIOPS returns the measured no-interference throughput.
func (l *Library) SoloIOPS(target string) (float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	io, ok := l.soloIO[target]
	if !ok {
		return 0, fmt.Errorf("model: unknown target %q", target)
	}
	return io, nil
}

// corunnerFeaturesLocked requires l.mu held (read or write).
func (l *Library) corunnerFeaturesLocked(corunner string) ([]float64, error) {
	if corunner == "" {
		return zeroFeatures(), nil
	}
	f, ok := l.features[corunner]
	if !ok {
		return nil, fmt.Errorf("model: unknown corunner %q", corunner)
	}
	return f, nil
}

// BuildLibrary profiles and trains models for every target application
// against the given background workloads — the full TRACON bring-up
// pipeline. This is the expensive call (apps × backgrounds measurements);
// experiments build one library per model family and reuse it.
func BuildLibrary(tb *xen.Testbed, targets []xen.AppSpec, backgrounds []xen.AppSpec, k Kind) (*Library, error) {
	lib := NewLibrary(k)
	prof := &Profiler{TB: tb}
	for _, t := range targets {
		ts, err := prof.Profile(t, backgrounds)
		if err != nil {
			return nil, err
		}
		solo, err := tb.ProfileSolo(t)
		if err != nil {
			return nil, err
		}
		if err := lib.Add(ts, solo); err != nil {
			return nil, err
		}
	}
	return lib, nil
}

// Oracle is a ground-truth Predictor backed directly by the host
// simulator. It is the upper bound a perfect interference model would
// reach, used by the scheduler-ablation benches.
type Oracle struct {
	tb    *xen.Testbed
	specs map[string]xen.AppSpec
}

// NewOracle builds an oracle over the given applications.
func NewOracle(tb *xen.Testbed, apps []xen.AppSpec) *Oracle {
	m := make(map[string]xen.AppSpec, len(apps))
	for _, a := range apps {
		m[a.Name] = a
	}
	return &Oracle{tb: tb, specs: m}
}

// PredictRuntime implements Predictor with a true co-run solve.
func (o *Oracle) PredictRuntime(target, corunner string) (float64, error) {
	st, err := o.steady(target, corunner)
	if err != nil {
		return 0, err
	}
	return st.Runtime, nil
}

// PredictIOPS implements Predictor with a true co-run solve.
func (o *Oracle) PredictIOPS(target, corunner string) (float64, error) {
	st, err := o.steady(target, corunner)
	if err != nil {
		return 0, err
	}
	return st.IOPS, nil
}

// SoloRuntime implements Predictor.
func (o *Oracle) SoloRuntime(target string) (float64, error) {
	st, err := o.steady(target, "")
	if err != nil {
		return 0, err
	}
	return st.Runtime, nil
}

// SoloIOPS implements Predictor.
func (o *Oracle) SoloIOPS(target string) (float64, error) {
	st, err := o.steady(target, "")
	if err != nil {
		return 0, err
	}
	return st.IOPS, nil
}

// Apps implements Predictor.
func (o *Oracle) Apps() []string {
	out := make([]string, 0, len(o.specs))
	for a := range o.specs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (o *Oracle) steady(target, corunner string) (xen.AppSteady, error) {
	t, ok := o.specs[target]
	if !ok {
		return xen.AppSteady{}, fmt.Errorf("model: oracle: unknown target %q", target)
	}
	apps := []xen.AppSpec{t}
	if corunner != "" {
		c, ok := o.specs[corunner]
		if !ok {
			return xen.AppSteady{}, fmt.Errorf("model: oracle: unknown corunner %q", corunner)
		}
		c.Name = c.Name + "-bg"
		apps = append(apps, c)
	}
	st, err := o.tb.Host().Steady(apps)
	if err != nil {
		return xen.AppSteady{}, err
	}
	return st[0], nil
}
