package model

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"tracon/internal/xen"
)

// ErrUnknownApp is wrapped by every library and oracle lookup that names
// an application the predictor was never trained on. Callers serving
// untrusted input (the tracond daemon) branch on it with errors.Is to
// distinguish a bad request from an internal failure.
var ErrUnknownApp = errors.New("model: unknown application")

// ErrEmptyLibrary is wrapped by scoring-path lookups against a library
// with no trained models at all — a configuration error rather than a
// bad application name.
var ErrEmptyLibrary = errors.New("model: empty library")

// Predictor is what the interference-aware schedulers consume: given a
// target application and the application currently occupying the other VM
// of a candidate machine (empty string = idle), predict the target's
// runtime or throughput. Implementations: Library (trained models, the
// TRACON path) and Oracle (ground truth, an upper-bound ablation).
type Predictor interface {
	// PredictRuntime returns the expected runtime of target when co-located
	// with corunner ("" for an idle neighbour).
	PredictRuntime(target, corunner string) (float64, error)
	// PredictIOPS returns the expected throughput of target likewise.
	PredictIOPS(target, corunner string) (float64, error)
	// SoloRuntime returns target's no-interference runtime estimate.
	SoloRuntime(target string) (float64, error)
	// SoloIOPS returns target's no-interference throughput estimate.
	SoloIOPS(target string) (float64, error)
	// Apps lists the applications the predictor knows.
	Apps() []string
}

// Library holds one trained AppModel per application plus the solo
// characteristics needed to describe each application as a co-runner.
//
// A Library is safe for concurrent use. Reads (the Predict* hot path the
// schedulers hammer) take a shared lock; Add and Replace (training and the
// adaptive retraining path) take it exclusively, so a retrain can swap a
// model in while concurrent simulations keep predicting. Individual
// AppModels are immutable once trained.
type Library struct {
	Kind Kind

	mu       sync.RWMutex
	models   map[string]*AppModel
	features map[string][]float64
	soloRT   map[string]float64
	soloIO   map[string]float64
}

// NewLibrary creates an empty library of the given family.
func NewLibrary(k Kind) *Library {
	return &Library{
		Kind:     k,
		models:   map[string]*AppModel{},
		features: map[string][]float64{},
		soloRT:   map[string]float64{},
		soloIO:   map[string]float64{},
	}
}

// Add trains a model from ts and registers the application. solo is the
// application's measured solo profile.
func (l *Library) Add(ts *TrainingSet, solo xen.SoloProfile) error {
	m, err := Train(ts, l.Kind)
	if err != nil {
		return fmt.Errorf("model: training %s/%v: %w", ts.App, l.Kind, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.models[ts.App] = m
	l.features[ts.App] = append([]float64(nil), ts.Features...)
	l.soloRT[ts.App] = solo.Runtime
	l.soloIO[ts.App] = solo.IOPS
	return nil
}

// AddTrained registers an externally trained model (typically loaded via
// LoadLibrary) together with the solo characteristics the library needs to
// describe the application as a co-runner. The model family must match.
func (l *Library) AddTrained(m *AppModel, features []float64, solo xen.SoloProfile) error {
	if m == nil {
		return fmt.Errorf("model: nil model")
	}
	if m.App == "" {
		return fmt.Errorf("model: model has no application name")
	}
	if m.Kind != l.Kind {
		return fmt.Errorf("model: %v model %q added to %v library", m.Kind, m.App, l.Kind)
	}
	if len(features) != NumFeatures {
		return fmt.Errorf("model: %q has %d features, want %d", m.App, len(features), NumFeatures)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.models[m.App] = m
	l.features[m.App] = append([]float64(nil), features...)
	l.soloRT[m.App] = solo.Runtime
	l.soloIO[m.App] = solo.IOPS
	return nil
}

// Replace swaps in an externally trained model (used by the adaptive path).
func (l *Library) Replace(app string, m *AppModel) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.models[app]; !ok {
		return l.lookupErrLocked(app)
	}
	l.models[app] = m
	return nil
}

// Features returns an application's solo characteristics vector.
func (l *Library) Features(app string) ([]float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	f, ok := l.features[app]
	if !ok {
		return nil, l.lookupErrLocked(app)
	}
	return f, nil
}

// Model returns the trained model for app.
func (l *Library) Model(app string) (*AppModel, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.models[app]
	if !ok {
		return nil, l.lookupErrLocked(app)
	}
	return m, nil
}

// lookupErrLocked builds the typed error for a failed lookup: an empty
// library is a configuration problem (ErrEmptyLibrary); a populated one
// simply does not know this name (ErrUnknownApp). Requires l.mu held.
func (l *Library) lookupErrLocked(app string) error {
	if len(l.models) == 0 {
		return fmt.Errorf("%w (%v family): no models trained, cannot look up %q", ErrEmptyLibrary, l.Kind, app)
	}
	return fmt.Errorf("%w: %q not in %v library", ErrUnknownApp, app, l.Kind)
}

// Apps returns the registered application names, sorted.
func (l *Library) Apps() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.models))
	for a := range l.models {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// PredictRuntime implements Predictor.
func (l *Library) PredictRuntime(target, corunner string) (float64, error) {
	l.mu.RLock()
	m, ok := l.models[target]
	bg, err := l.corunnerFeaturesLocked(corunner)
	if !ok {
		err = l.lookupErrLocked(target)
	}
	l.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	return m.PredictRuntime(bg), nil
}

// PredictIOPS implements Predictor.
func (l *Library) PredictIOPS(target, corunner string) (float64, error) {
	l.mu.RLock()
	m, ok := l.models[target]
	bg, err := l.corunnerFeaturesLocked(corunner)
	if !ok {
		err = l.lookupErrLocked(target)
	}
	l.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	return m.PredictIOPS(bg), nil
}

// SoloRuntime implements Predictor.
func (l *Library) SoloRuntime(target string) (float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rt, ok := l.soloRT[target]
	if !ok {
		return 0, l.lookupErrLocked(target)
	}
	return rt, nil
}

// SoloIOPS returns the measured no-interference throughput.
func (l *Library) SoloIOPS(target string) (float64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	io, ok := l.soloIO[target]
	if !ok {
		return 0, l.lookupErrLocked(target)
	}
	return io, nil
}

// corunnerFeaturesLocked requires l.mu held (read or write).
func (l *Library) corunnerFeaturesLocked(corunner string) ([]float64, error) {
	if corunner == "" {
		return zeroFeatures(), nil
	}
	f, ok := l.features[corunner]
	if !ok {
		return nil, fmt.Errorf("%w: corunner %q not in %v library", ErrUnknownApp, corunner, l.Kind)
	}
	return f, nil
}

// BuildLibrary profiles and trains models for every target application
// against the given background workloads — the full TRACON bring-up
// pipeline. This is the expensive call (apps × backgrounds measurements);
// experiments build one library per model family and reuse it.
func BuildLibrary(tb *xen.Testbed, targets []xen.AppSpec, backgrounds []xen.AppSpec, k Kind) (*Library, error) {
	lib := NewLibrary(k)
	prof := &Profiler{TB: tb}
	for _, t := range targets {
		ts, err := prof.Profile(t, backgrounds)
		if err != nil {
			return nil, err
		}
		solo, err := tb.ProfileSolo(t)
		if err != nil {
			return nil, err
		}
		if err := lib.Add(ts, solo); err != nil {
			return nil, err
		}
	}
	return lib, nil
}

// Oracle is a ground-truth Predictor backed directly by the host
// simulator. It is the upper bound a perfect interference model would
// reach, used by the scheduler-ablation benches.
type Oracle struct {
	tb    *xen.Testbed
	specs map[string]xen.AppSpec
}

// NewOracle builds an oracle over the given applications.
func NewOracle(tb *xen.Testbed, apps []xen.AppSpec) *Oracle {
	m := make(map[string]xen.AppSpec, len(apps))
	for _, a := range apps {
		m[a.Name] = a
	}
	return &Oracle{tb: tb, specs: m}
}

// PredictRuntime implements Predictor with a true co-run solve.
func (o *Oracle) PredictRuntime(target, corunner string) (float64, error) {
	st, err := o.steady(target, corunner)
	if err != nil {
		return 0, err
	}
	return st.Runtime, nil
}

// PredictIOPS implements Predictor with a true co-run solve.
func (o *Oracle) PredictIOPS(target, corunner string) (float64, error) {
	st, err := o.steady(target, corunner)
	if err != nil {
		return 0, err
	}
	return st.IOPS, nil
}

// SoloRuntime implements Predictor.
func (o *Oracle) SoloRuntime(target string) (float64, error) {
	st, err := o.steady(target, "")
	if err != nil {
		return 0, err
	}
	return st.Runtime, nil
}

// SoloIOPS implements Predictor.
func (o *Oracle) SoloIOPS(target string) (float64, error) {
	st, err := o.steady(target, "")
	if err != nil {
		return 0, err
	}
	return st.IOPS, nil
}

// Apps implements Predictor.
func (o *Oracle) Apps() []string {
	out := make([]string, 0, len(o.specs))
	for a := range o.specs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (o *Oracle) steady(target, corunner string) (xen.AppSteady, error) {
	t, ok := o.specs[target]
	if !ok {
		return xen.AppSteady{}, fmt.Errorf("%w: oracle has no target %q", ErrUnknownApp, target)
	}
	apps := []xen.AppSpec{t}
	if corunner != "" {
		c, ok := o.specs[corunner]
		if !ok {
			return xen.AppSteady{}, fmt.Errorf("%w: oracle has no corunner %q", ErrUnknownApp, corunner)
		}
		c.Name = c.Name + "-bg"
		apps = append(apps, c)
	}
	st, err := o.tb.Host().Steady(apps)
	if err != nil {
		return xen.AppSteady{}, err
	}
	return st[0], nil
}
