package model

import (
	"testing"

	"tracon/internal/workload"
	"tracon/internal/xen"
)

// iscsiSamples builds observations of blastn on an iSCSI-backed host —
// the Fig 7 environment change.
func iscsiSamples(t *testing.T, n int) []Sample {
	t.Helper()
	cfg := xen.DefaultHost()
	cfg.Disk = xen.ISCSI()
	host, err := xen.NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := xen.NewTestbed(host, 3, 0.05, 99)
	prof := &Profiler{TB: tb}
	var bgs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(cfg.Disk) {
		bgs = append(bgs, w.Spec)
	}
	b, _ := workload.BenchmarkByName("blastn")
	ts, err := prof.Profile(b.Spec, bgs)
	if err != nil {
		t.Fatal(err)
	}
	out := ts.Samples
	for len(out) < n {
		out = append(out, ts.Samples...)
	}
	return out[:n]
}

func TestAdaptiveRecoversAfterEnvironmentChange(t *testing.T) {
	tss, _ := fixture(t)
	ad, err := NewAdaptive(tss["blastn"], NLM, DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: observations from the training environment — errors modest.
	for _, s := range tss["blastn"].Samples[:50] {
		if _, err := ad.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	baseErr := ad.RecentError(50)

	// Phase 2: the storage moves to iSCSI. Errors must jump, then recover
	// after enough observations trigger rebuilds on the new data.
	newEnv := iscsiSamples(t, 500)
	for _, s := range newEnv[:100] {
		if _, err := ad.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	shockErr := ad.RecentError(100)
	if shockErr < baseErr*2 {
		t.Fatalf("environment change should spike the error: base %v, shock %v", baseErr, shockErr)
	}

	for _, s := range newEnv[100:] {
		if _, err := ad.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	recovered := ad.RecentError(80)
	if recovered > shockErr/2 {
		t.Fatalf("adaptation failed to recover: shock %v, recovered %v", shockErr, recovered)
	}
	if len(ad.Rebuilds) == 0 {
		t.Fatal("no rebuilds happened")
	}
}

func TestAdaptiveStableEnvironmentStaysAccurate(t *testing.T) {
	tss, _ := fixture(t)
	ad, err := NewAdaptive(tss["blastn"], NLM, DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	// Re-observe the same environment twice over; accuracy must not degrade.
	for round := 0; round < 2; round++ {
		for _, s := range tss["blastn"].Samples {
			if _, err := ad.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e := ad.RecentError(100); e > 0.35 {
		t.Fatalf("stable environment error drifted to %v", e)
	}
}

func TestAdaptiveRejectsBadObservation(t *testing.T) {
	tss, _ := fixture(t)
	ad, err := NewAdaptive(tss["blastn"], LM, DefaultAdaptive())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ad.Observe(Sample{BG: []float64{1, 2}}); err == nil {
		t.Fatal("short feature vector accepted")
	}
}

func TestAdaptiveWindowBounded(t *testing.T) {
	tss, _ := fixture(t)
	cfg := AdaptiveConfig{WindowCap: 150, RetrainEvery: 40}
	ad, err := NewAdaptive(tss["blastn"], LM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, s := range tss["blastn"].Samples {
			if _, err := ad.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(ad.window) > 150 {
		t.Fatalf("window grew to %d", len(ad.window))
	}
	if want := 3 * len(tss["blastn"].Samples); len(ad.RuntimeErrors) != want {
		t.Fatalf("error log has %d entries, want %d", len(ad.RuntimeErrors), want)
	}
}

type testDetector struct{ fireAt, seen int }

func (d *testDetector) Observe(err float64) bool {
	d.seen++
	return d.seen == d.fireAt
}
func (d *testDetector) Reset() {}

func TestAdaptiveDriftDetectorForcesEarlyRebuild(t *testing.T) {
	tss, _ := fixture(t)
	det := &testDetector{fireAt: 5}
	cfg := AdaptiveConfig{WindowCap: 500, RetrainEvery: 1000, Detector: det}
	ad, err := NewAdaptive(tss["blastn"], LM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rebuilds := 0
	for _, s := range tss["blastn"].Samples[:10] {
		r, err := ad.Observe(s)
		if err != nil {
			t.Fatal(err)
		}
		if r {
			rebuilds++
		}
	}
	if rebuilds != 1 {
		t.Fatalf("detector should have forced exactly one rebuild, got %d", rebuilds)
	}
}
