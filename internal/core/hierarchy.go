package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tracon/internal/sched"
	"tracon/internal/sim"
)

// The paper's deployment (Sec. 3) organizes application servers under a
// tree of manager servers for scalability. This file implements that
// hierarchy for the simulator: a large cluster is partitioned into groups,
// each group is supervised by its own scheduler instance, and arriving
// tasks are spread round-robin across groups — so a 10,000-machine run is
// ten independent 1,000-machine problems, exactly the property the
// hierarchy exists to provide. Groups simulate concurrently.

// PartitionedResults aggregates a hierarchical simulation.
type PartitionedResults struct {
	// Groups holds each manager's local results.
	Groups []*sim.Results
	// Scheduler is the policy name.
	Scheduler string
	// CompletedCount, TotalRuntime, TotalIOPS and Submitted are summed
	// across groups.
	CompletedCount int
	TotalRuntime   float64
	TotalIOPS      float64
	Submitted      int
	// Horizon is the simulated duration.
	Horizon float64
}

// CompletedTasks returns the total completed-task count across groups as a
// float64 — the T_S of Sec. 4.7, which the paper reports normalized against
// FIFO so the horizon divides out. (Previously named Throughput, which
// wrongly suggested a rate.)
func (r *PartitionedResults) CompletedTasks() float64 { return float64(r.CompletedCount) }

// TasksPerHour is a true rate: completed tasks per simulated hour.
func (r *PartitionedResults) TasksPerHour() float64 {
	if r.Horizon <= 0 || math.IsInf(r.Horizon, 1) {
		return 0
	}
	return float64(r.CompletedCount) / (r.Horizon / 3600)
}

// SimulatePartitioned runs a hierarchical simulation: totalMachines are
// split evenly into groups, tasks are routed round-robin, and each group
// is scheduled independently by its own instance of the policy.
func (c *Controller) SimulatePartitioned(spec SchedulerSpec, totalMachines, groups int, tasks []sched.Task, horizon float64) (*PartitionedResults, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("core: need at least one group")
	}
	if totalMachines < groups {
		return nil, fmt.Errorf("core: %d machines cannot form %d groups", totalMachines, groups)
	}
	if totalMachines%groups != 0 {
		return nil, fmt.Errorf("core: %d machines do not split evenly into %d groups", totalMachines, groups)
	}
	table, err := c.InterferenceTable()
	if err != nil {
		return nil, err
	}
	perGroup := totalMachines / groups

	// Round-robin routing at the root manager.
	routed := make([][]sched.Task, groups)
	for i, t := range tasks {
		g := i % groups
		routed[g] = append(routed[g], t)
	}
	if horizon <= 0 {
		horizon = math.Inf(1)
	}

	out := &PartitionedResults{Groups: make([]*sim.Results, groups), Horizon: horizon}
	errs := make([]error, groups)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s, err := c.NewScheduler(spec)
			if err != nil {
				errs[g] = err
				return
			}
			eng, err := sim.NewEngine(sim.Config{
				Machines:    perGroup,
				Scheduler:   s,
				Table:       table,
				DropRecords: true,
			})
			if err != nil {
				errs[g] = err
				return
			}
			out.Groups[g], errs[g] = eng.Run(routed[g], horizon)
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, r := range out.Groups {
		out.Scheduler = r.Scheduler
		out.CompletedCount += r.CompletedCount
		out.TotalRuntime += r.TotalRuntime
		out.TotalIOPS += r.TotalIOPS
		out.Submitted += r.Submitted
	}
	return out, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}
