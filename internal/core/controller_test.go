package core

import (
	"math"
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

var (
	ctrlOnce sync.Once
	ctrl     *Controller
)

// fixture registers all eight benchmarks once (the expensive bring-up).
func fixture(t *testing.T) *Controller {
	t.Helper()
	ctrlOnce.Do(func() {
		c, err := New(DefaultConfig())
		if err != nil {
			panic(err)
		}
		if err := c.RegisterBenchmarks(); err != nil {
			panic(err)
		}
		ctrl = c
	})
	return ctrl
}

func TestRegisterBenchmarks(t *testing.T) {
	c := fixture(t)
	if got := c.Apps(); len(got) != 8 {
		t.Fatalf("Apps = %v", got)
	}
	if _, err := c.Spec("blastn"); err != nil {
		t.Fatal(err)
	}
	ts, err := c.TrainingSet("video")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Samples) < 125 {
		t.Fatalf("training set has %d samples", len(ts.Samples))
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	c := fixture(t)
	b, _ := workload.BenchmarkByName("blastn")
	if err := c.Register(b.Spec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := c.Register(xen.AppSpec{Name: "bad", ReqSizeKB: -1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestLibraryServesPredictions(t *testing.T) {
	c := fixture(t)
	rt, err := c.Library().PredictRuntime("blastn", "video")
	if err != nil {
		t.Fatal(err)
	}
	solo, err := c.Library().SoloRuntime("blastn")
	if err != nil {
		t.Fatal(err)
	}
	if rt <= solo {
		t.Fatalf("co-located prediction %v not above solo %v", rt, solo)
	}
}

func TestNewSchedulerPolicies(t *testing.T) {
	c := fixture(t)
	cases := []struct {
		spec SchedulerSpec
		name string
	}{
		{SchedulerSpec{Policy: "fifo"}, "FIFO"},
		{SchedulerSpec{Policy: "mios", Objective: sched.MinRuntime}, "MIOSRT"},
		{SchedulerSpec{Policy: "mibs", QueueLen: 8, Objective: sched.MinRuntime}, "MIBS8-RT"},
		{SchedulerSpec{Policy: "mix", QueueLen: 4, Objective: sched.MaxIOPS}, "MIX4-IO"},
	}
	for _, cse := range cases {
		s, err := c.NewScheduler(cse.spec)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != cse.name {
			t.Fatalf("Name = %q want %q", s.Name(), cse.name)
		}
	}
	if _, err := c.NewScheduler(SchedulerSpec{Policy: "nope"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimulateStaticBatch(t *testing.T) {
	c := fixture(t)
	mix := workload.NewMixer(11)
	batch := mix.Batch(workload.MediumIO, 8)
	tasks := make([]sched.Task, len(batch))
	for i, spec := range batch {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name)}
	}
	res, err := c.Simulate(SchedulerSpec{Policy: "mibs", QueueLen: 8, Objective: sched.MinRuntime}, 4, tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 8 {
		t.Fatalf("completed %d of 8", res.CompletedCount)
	}
}

func TestObserveFeedsAdaptation(t *testing.T) {
	c := fixture(t)
	ts, err := c.TrainingSet("blastn")
	if err != nil {
		t.Fatal(err)
	}
	rebuilds := 0
	// Push two full passes of observations; periodic retraining must fire.
	for round := 0; round < 2; round++ {
		for _, s := range ts.Samples {
			r, err := c.Observe("blastn", s)
			if err != nil {
				t.Fatal(err)
			}
			if r {
				rebuilds++
			}
		}
	}
	if rebuilds == 0 {
		t.Fatal("no rebuild over 250 observations (retrain-every is 160)")
	}
	ad, err := c.Adaptive("blastn")
	if err != nil {
		t.Fatal(err)
	}
	if ad.RecentError(50) > 0.5 {
		t.Fatalf("adaptive error drifted: %v", ad.RecentError(50))
	}
	if _, err := c.Observe("nope", model.Sample{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSimulatePartitionedMatchesAggregates(t *testing.T) {
	c := fixture(t)
	mix := workload.NewMixer(13)
	batch := mix.Batch(workload.MediumIO, 64)
	tasks := make([]sched.Task, len(batch))
	for i, spec := range batch {
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name), Arrival: float64(i)}
	}
	spec := SchedulerSpec{Policy: "mios", Objective: sched.MinRuntime}
	part, err := c.SimulatePartitioned(spec, 32, 4, tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if part.CompletedCount != 64 || part.Submitted != 64 {
		t.Fatalf("partitioned completed %d submitted %d", part.CompletedCount, part.Submitted)
	}
	if len(part.Groups) != 4 {
		t.Fatalf("groups = %d", len(part.Groups))
	}
	// Each group must have received a quarter of the tasks.
	for g, r := range part.Groups {
		if r.Submitted != 16 {
			t.Fatalf("group %d got %d tasks", g, r.Submitted)
		}
	}
}

func TestSimulatePartitionedValidation(t *testing.T) {
	c := fixture(t)
	if _, err := c.SimulatePartitioned(SchedulerSpec{Policy: "fifo"}, 10, 3, nil, 0); err == nil {
		t.Fatal("uneven split accepted")
	}
	if _, err := c.SimulatePartitioned(SchedulerSpec{Policy: "fifo"}, 2, 0, nil, 0); err == nil {
		t.Fatal("zero groups accepted")
	}
}

func TestOracleSchedulerWorks(t *testing.T) {
	c := fixture(t)
	s, err := c.NewScheduler(SchedulerSpec{Policy: "mios", Objective: sched.MinRuntime, UseOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := s.Schedule([]sched.Task{{ID: 1, App: "video"}}, sched.Counts{"video": 1, "blastp": 1}, sched.Load{TotalSlots: 8, Queued: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 1 || pl[0].Category != "blastp" {
		t.Fatalf("oracle MIOS placed video at %+v, want beside blastp", pl)
	}
}

func TestControllerRequiresAppsForTable(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.InterferenceTable(); err == nil {
		t.Fatal("table built with no applications")
	}
}
