// Package core assembles TRACON, the Task and Resource Allocation CONtrol
// framework of the paper: the interference prediction models (internal/
// model), the interference-aware schedulers (internal/sched) and the task
// and resource monitor (internal/monitor), wired over the virtualized
// testbed (internal/xen) and exercised at scale by the data-center
// simulator (internal/sim).
//
// The Controller is the "manager server" of Fig 2: it profiles incoming
// application types, trains and serves prediction models, constructs
// schedulers around them, and runs the online adaptation loop that rebuilds
// a model when the monitor reports drift.
package core

import (
	"fmt"
	"math"
	"sort"

	"tracon/internal/model"
	"tracon/internal/monitor"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Config configures a Controller bring-up.
type Config struct {
	// Host is the physical-machine model of the application servers.
	Host xen.HostConfig
	// MeasurementRuns is how many repetitions each measurement averages
	// (the paper uses 3).
	MeasurementRuns int
	// MeasurementNoise is the per-run multiplicative noise σ.
	MeasurementNoise float64
	// Seed fixes all stochastic behaviour.
	Seed int64
	// Kind selects the deployed model family (the paper concludes NLM).
	Kind model.Kind
	// Adaptive configures online learning; zero values take the paper's
	// defaults (window 500, retrain every 160).
	Adaptive model.AdaptiveConfig
}

// DefaultConfig returns the paper's deployment: NLM models on the
// calibrated HDD testbed, three averaged runs per measurement.
func DefaultConfig() Config {
	return Config{
		Host:             xen.DefaultHost(),
		MeasurementRuns:  3,
		MeasurementNoise: 0.05,
		Seed:             1,
		Kind:             model.NLM,
		Adaptive:         model.DefaultAdaptive(),
	}
}

// Controller is the TRACON manager.
type Controller struct {
	cfg      Config
	tb       *xen.Testbed
	mon      *monitor.Monitor
	lib      *model.Library
	sets     map[string]*model.TrainingSet
	adaptive map[string]*model.Adaptive
	specs    map[string]xen.AppSpec
	bgs      []xen.AppSpec
	table    *sim.InterferenceTable
}

// New creates an empty Controller (no applications registered yet).
func New(cfg Config) (*Controller, error) {
	if cfg.MeasurementRuns <= 0 {
		cfg.MeasurementRuns = 3
	}
	host, err := xen.NewHost(cfg.Host)
	if err != nil {
		return nil, err
	}
	tb := xen.NewTestbed(host, cfg.MeasurementRuns, cfg.MeasurementNoise, cfg.Seed)
	var bgs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(cfg.Host.Disk) {
		bgs = append(bgs, w.Spec)
	}
	return &Controller{
		cfg:      cfg,
		tb:       tb,
		mon:      monitor.New(tb),
		lib:      model.NewLibrary(cfg.Kind),
		sets:     map[string]*model.TrainingSet{},
		adaptive: map[string]*model.Adaptive{},
		specs:    map[string]xen.AppSpec{},
		bgs:      bgs,
	}, nil
}

// Testbed exposes the measurement harness.
func (c *Controller) Testbed() *xen.Testbed { return c.tb }

// Monitor exposes the task and resource monitor.
func (c *Controller) Monitor() *monitor.Monitor { return c.mon }

// Library exposes the trained model library (the prediction module).
func (c *Controller) Library() *model.Library { return c.lib }

// Register profiles a new application type against the synthetic workload
// grid, trains its interference model and starts its adaptation loop —
// the automated new-application pipeline of Sec. 3.1.
func (c *Controller) Register(app xen.AppSpec) error {
	if err := app.Validate(); err != nil {
		return err
	}
	if _, dup := c.specs[app.Name]; dup {
		return fmt.Errorf("core: application %q already registered", app.Name)
	}
	prof := &model.Profiler{TB: c.tb}
	ts, err := prof.Profile(app, c.bgs)
	if err != nil {
		return err
	}
	solo, err := c.mon.ObserveSolo(app)
	if err != nil {
		return err
	}
	if err := c.lib.Add(ts, solo); err != nil {
		return err
	}
	acfg := c.cfg.Adaptive
	if acfg.Detector == nil {
		acfg.Detector = monitor.NewDetector(monitor.DriftConfig{})
	}
	ad, err := model.NewAdaptive(ts, c.cfg.Kind, acfg)
	if err != nil {
		return err
	}
	c.specs[app.Name] = app
	c.sets[app.Name] = ts
	c.adaptive[app.Name] = ad
	c.table = nil // invalidate; app set changed
	return nil
}

// RegisterBenchmarks registers all eight Table 3 applications.
func (c *Controller) RegisterBenchmarks() error {
	for _, b := range workload.Benchmarks() {
		if err := c.Register(b.Spec); err != nil {
			return err
		}
	}
	return nil
}

// Apps returns the registered application names, sorted.
func (c *Controller) Apps() []string {
	out := make([]string, 0, len(c.specs))
	for a := range c.specs {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Spec returns the registered spec for an application.
func (c *Controller) Spec(app string) (xen.AppSpec, error) {
	s, ok := c.specs[app]
	if !ok {
		return xen.AppSpec{}, fmt.Errorf("core: unknown application %q", app)
	}
	return s, nil
}

// TrainingSet returns an application's interference profile.
func (c *Controller) TrainingSet(app string) (*model.TrainingSet, error) {
	ts, ok := c.sets[app]
	if !ok {
		return nil, fmt.Errorf("core: unknown application %q", app)
	}
	return ts, nil
}

// Observe feeds one production observation (target measured against a
// live background workload) into the adaptation loop. When the adaptive
// model rebuilds, the library's served model is replaced — Fig 7's online
// learning.
func (c *Controller) Observe(target string, s model.Sample) (rebuilt bool, err error) {
	ad, ok := c.adaptive[target]
	if !ok {
		return false, fmt.Errorf("core: unknown application %q", target)
	}
	rebuilt, err = ad.Observe(s)
	if err != nil {
		return false, err
	}
	if rebuilt {
		if err := c.lib.Replace(target, ad.Model()); err != nil {
			return true, err
		}
	}
	return rebuilt, nil
}

// Adaptive returns the adaptation state of an application's model.
func (c *Controller) Adaptive(target string) (*model.Adaptive, error) {
	ad, ok := c.adaptive[target]
	if !ok {
		return nil, fmt.Errorf("core: unknown application %q", target)
	}
	return ad, nil
}

// SchedulerSpec names a scheduling policy.
type SchedulerSpec struct {
	// Policy is "fifo", "mios", "mibs" or "mix".
	Policy string
	// QueueLen is the batch size for mibs/mix (the paper uses 2, 4, 8).
	QueueLen int
	// Objective is the optimization target.
	Objective sched.Objective
	// UseOracle swaps the trained models for ground truth (an ablation:
	// the perfect-model upper bound).
	UseOracle bool
}

// NewScheduler constructs the named scheduler over the trained models.
func (c *Controller) NewScheduler(spec SchedulerSpec) (sched.Scheduler, error) {
	var pred model.Predictor = c.lib
	if spec.UseOracle {
		specs := make([]xen.AppSpec, 0, len(c.specs))
		for _, s := range c.specs {
			specs = append(specs, s)
		}
		pred = model.NewOracle(c.tb, specs)
	}
	scorer := sched.NewScorer(pred, spec.Objective)
	switch spec.Policy {
	case "fifo":
		return sched.FIFO{}, nil
	case "mios":
		return &sched.MIOS{Scorer: scorer}, nil
	case "mibs":
		return &sched.MIBS{Scorer: scorer, QueueLen: spec.QueueLen}, nil
	case "mix":
		return &sched.MIX{Scorer: scorer, QueueLen: spec.QueueLen}, nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q", spec.Policy)
	}
}

// InterferenceTable returns (building on first use) the measured pairwise
// ground truth the data-center simulator replays.
func (c *Controller) InterferenceTable() (*sim.InterferenceTable, error) {
	if c.table != nil {
		return c.table, nil
	}
	if len(c.specs) == 0 {
		return nil, fmt.Errorf("core: no applications registered")
	}
	specs := make([]xen.AppSpec, 0, len(c.specs))
	for _, name := range c.Apps() {
		specs = append(specs, c.specs[name])
	}
	t, err := sim.BuildInterferenceTable(c.tb.Host(), specs)
	if err != nil {
		return nil, err
	}
	c.table = t
	return t, nil
}

// Simulate runs a data-center simulation under the given policy.
func (c *Controller) Simulate(spec SchedulerSpec, machines int, tasks []sched.Task, horizon float64) (*sim.Results, error) {
	s, err := c.NewScheduler(spec)
	if err != nil {
		return nil, err
	}
	table, err := c.InterferenceTable()
	if err != nil {
		return nil, err
	}
	eng, err := sim.NewEngine(sim.Config{
		Machines:    machines,
		Scheduler:   s,
		Table:       table,
		DropRecords: len(tasks) > 200000,
	})
	if err != nil {
		return nil, err
	}
	if horizon <= 0 {
		horizon = math.Inf(1)
	}
	return eng.Run(tasks, horizon)
}
