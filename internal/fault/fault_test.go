package fault

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRetryDelayTable(t *testing.T) {
	cases := []struct {
		name   string
		policy RetryPolicy
		failed int
		want   float64
	}{
		{"defaults first retry", RetryPolicy{}, 1, 1},
		{"defaults second retry doubles", RetryPolicy{}, 2, 2},
		{"defaults third retry doubles again", RetryPolicy{}, 3, 4},
		{"defaults cap at 60", RetryPolicy{}, 20, 60},
		{"custom base", RetryPolicy{Backoff: 0.5}, 1, 0.5},
		{"custom factor", RetryPolicy{Backoff: 2, BackoffFactor: 3}, 3, 18},
		{"custom cap", RetryPolicy{Backoff: 10, MaxBackoff: 15}, 2, 15},
		{"cap below base", RetryPolicy{Backoff: 10, MaxBackoff: 5}, 1, 5},
		{"factor one never grows", RetryPolicy{Backoff: 7, BackoffFactor: 1}, 9, 7},
		{"failed below one clamps", RetryPolicy{}, 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &Plan{Retry: c.policy}
			if got := p.RetryDelay(c.failed); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("RetryDelay(%d) = %v, want %v", c.failed, got, c.want)
			}
		})
	}
}

func TestRetryAllowedTable(t *testing.T) {
	cases := []struct {
		name    string
		policy  RetryPolicy
		attempt int
		want    bool
	}{
		{"defaults allow third attempt", RetryPolicy{}, 3, true},
		{"defaults deny fourth attempt", RetryPolicy{}, 4, false},
		{"single attempt denies any retry", RetryPolicy{MaxAttempts: 1}, 2, false},
		{"custom budget boundary", RetryPolicy{MaxAttempts: 5}, 5, true},
		{"custom budget exhausted", RetryPolicy{MaxAttempts: 5}, 6, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := &Plan{Retry: c.policy}
			if got := p.RetryAllowed(c.attempt); got != c.want {
				t.Fatalf("RetryAllowed(%d) = %v, want %v", c.attempt, got, c.want)
			}
		})
	}
}

func TestTaskFailsIsKeyAddressed(t *testing.T) {
	p := &Plan{Seed: 42, FailProb: 0.3}
	// Same (task, attempt) always answers the same, regardless of call order.
	first := map[[2]int64]bool{}
	for id := int64(0); id < 200; id++ {
		for a := 1; a <= 3; a++ {
			first[[2]int64{id, int64(a)}] = p.TaskFails(id, a)
		}
	}
	for id := int64(199); id >= 0; id-- {
		for a := 3; a >= 1; a-- {
			if got := p.TaskFails(id, a); got != first[[2]int64{id, int64(a)}] {
				t.Fatalf("TaskFails(%d, %d) changed between calls", id, a)
			}
		}
	}
	// The empirical rate over many keys must be near FailProb.
	n, fails := 20000, 0
	for id := int64(0); id < int64(n); id++ {
		if p.TaskFails(id, 1) {
			fails++
		}
	}
	rate := float64(fails) / float64(n)
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("empirical failure rate %v too far from 0.3", rate)
	}
	// Different seeds fail different keys.
	q := &Plan{Seed: 43, FailProb: 0.3}
	same := 0
	for id := int64(0); id < 1000; id++ {
		if p.TaskFails(id, 1) == q.TaskFails(id, 1) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 42 and 43 fail identical keys")
	}
	// Degenerate probabilities.
	if (&Plan{FailProb: 0}).TaskFails(1, 1) {
		t.Fatal("FailProb 0 failed a task")
	}
	if !(&Plan{FailProb: 1}).TaskFails(1, 1) {
		t.Fatal("FailProb 1 passed a task")
	}
	var nilPlan *Plan
	if nilPlan.TaskFails(1, 1) {
		t.Fatal("nil plan failed a task")
	}
}

func TestRateFactorWindows(t *testing.T) {
	p := &Plan{Slowdowns: []Slowdown{
		{Machine: 1, Slot: 0, From: 10, To: 20, Factor: 0.5},
		{Machine: 1, Slot: 0, From: 30, To: 40, Factor: 0},
	}}
	cases := []struct {
		m, s int
		t    float64
		want float64
	}{
		{1, 0, 9.999, 1},
		{1, 0, 10, 0.5}, // half-open: From included
		{1, 0, 19.99, 0.5},
		{1, 0, 20, 1}, // half-open: To excluded
		{1, 0, 35, 0}, // full stall
		{1, 1, 15, 1}, // other slot untouched
		{0, 0, 15, 1}, // other machine untouched
	}
	for _, c := range cases {
		if got := p.RateFactor(c.m, c.s, c.t); got != c.want {
			t.Fatalf("RateFactor(%d, %d, %v) = %v, want %v", c.m, c.s, c.t, got, c.want)
		}
	}
	var nilPlan *Plan
	if nilPlan.RateFactor(0, 0, 0) != 1 {
		t.Fatal("nil plan dilated a rate")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		plan    Plan
		wantErr string
	}{
		{"empty plan ok", Plan{}, ""},
		{"fail prob range", Plan{FailProb: 1.5}, "fail_prob"},
		{"negative timeout", Plan{TaskTimeout: -1}, "task_timeout"},
		{"negative retry", Plan{Retry: RetryPolicy{Backoff: -1}}, "retry-policy"},
		{"crash machine bounds", Plan{Crashes: []Crash{{Machine: 4, DownAt: 1}}}, "outside"},
		{"crash up before down", Plan{Crashes: []Crash{{Machine: 0, DownAt: 5, UpAt: 3}}}, "up_at"},
		{"overlapping crashes", Plan{Crashes: []Crash{
			{Machine: 0, DownAt: 1, UpAt: 10},
			{Machine: 0, DownAt: 5, UpAt: 20},
		}}, "overlapping crash"},
		{"unrecovered then crash again", Plan{Crashes: []Crash{
			{Machine: 0, DownAt: 1},
			{Machine: 0, DownAt: 5, UpAt: 20},
		}}, "overlapping crash"},
		{"adjacent crash windows ok", Plan{Crashes: []Crash{
			{Machine: 0, DownAt: 1, UpAt: 10},
			{Machine: 0, DownAt: 10, UpAt: 20},
		}}, ""},
		{"slowdown slot bounds", Plan{Slowdowns: []Slowdown{{Machine: 0, Slot: 2, From: 1, To: 2, Factor: 0.5}}}, "slot"},
		{"slowdown factor one", Plan{Slowdowns: []Slowdown{{Machine: 0, Slot: 0, From: 1, To: 2, Factor: 1}}}, "factor"},
		{"slowdown empty window", Plan{Slowdowns: []Slowdown{{Machine: 0, Slot: 0, From: 2, To: 2, Factor: 0.5}}}, "window"},
		{"overlapping slowdowns", Plan{Slowdowns: []Slowdown{
			{Machine: 0, Slot: 0, From: 1, To: 5, Factor: 0.5},
			{Machine: 0, Slot: 0, From: 4, To: 9, Factor: 0.2},
		}}, "overlapping slowdown"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.plan.Validate(4, 2)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestTimelineOrder(t *testing.T) {
	p := &Plan{
		Crashes: []Crash{
			{Machine: 2, DownAt: 10, UpAt: 30},
			{Machine: 0, DownAt: 10, UpAt: 20},
			{Machine: 1, DownAt: 20, UpAt: 40},
		},
		Slowdowns: []Slowdown{{Machine: 3, Slot: 1, From: 10, To: 20, Factor: 0.5}},
	}
	bs := p.Timeline()
	for i := 1; i < len(bs); i++ {
		a, b := bs[i-1], bs[i]
		if a.T > b.T {
			t.Fatalf("timeline out of order at %d: %+v after %+v", i, b, a)
		}
	}
	// At t=20: machine 0's up must precede machine 1's down (adjacent-seam
	// ordering), and slowdown boundaries come after machine boundaries.
	var at20 []Boundary
	for _, b := range bs {
		if b.T == 20 {
			at20 = append(at20, b)
		}
	}
	if len(at20) != 3 || at20[0].Kind != BoundaryUp || at20[1].Kind != BoundaryDown || at20[2].Kind != BoundarySlowEnd {
		t.Fatalf("tie-break order wrong at t=20: %+v", at20)
	}
	if (&Plan{}).Timeline() != nil {
		t.Fatal("empty plan produced a timeline")
	}
}

func TestForMachines(t *testing.T) {
	p := &Plan{
		FailProb: 0.1,
		Crashes: []Crash{
			{Machine: 0, DownAt: 1, UpAt: 2},
			{Machine: 7, DownAt: 1, UpAt: 2},
		},
		Slowdowns: []Slowdown{
			{Machine: 3, Slot: 0, From: 1, To: 2, Factor: 0.5},
			{Machine: 9, Slot: 0, From: 1, To: 2, Factor: 0.5},
		},
	}
	q := p.ForMachines(4)
	if len(q.Crashes) != 1 || q.Crashes[0].Machine != 0 {
		t.Fatalf("clipped crashes wrong: %+v", q.Crashes)
	}
	if len(q.Slowdowns) != 1 || q.Slowdowns[0].Machine != 3 {
		t.Fatalf("clipped slowdowns wrong: %+v", q.Slowdowns)
	}
	if q.FailProb != 0.1 {
		t.Fatal("scalar fields not carried over")
	}
	if len(p.Crashes) != 2 || len(p.Slowdowns) != 2 {
		t.Fatal("receiver was modified")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Seed:        7,
		FailProb:    0.05,
		TaskTimeout: 600,
		Retry:       RetryPolicy{MaxAttempts: 4, Backoff: 2, BackoffFactor: 2, MaxBackoff: 30},
		Crashes:     []Crash{{Machine: 1, DownAt: 100, UpAt: 400}},
		Slowdowns:   []Slowdown{{Machine: 0, Slot: 1, From: 50, To: 150, Factor: 0.25}},
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Seed != 7 || q.FailProb != 0.05 || q.TaskTimeout != 600 ||
		len(q.Crashes) != 1 || q.Crashes[0] != p.Crashes[0] ||
		len(q.Slowdowns) != 1 || q.Slowdowns[0] != p.Slowdowns[0] ||
		q.Retry != p.Retry {
		t.Fatalf("round trip mismatch: %+v", q)
	}
}

func TestLoadRejectsUnknownFieldsAndBadPlans(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"typo_field": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Load(strings.NewReader(`{"fail_prob": 2}`)); err == nil {
		t.Fatal("invalid plan accepted")
	}
	p, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatal("empty JSON plan not Empty")
	}
}
