// Package fault defines deterministic fault-injection plans for the TRACON
// simulator and serving stack. A Plan is pure data: machine crash/recover
// windows, per-slot stall/slowdown intervals, a per-attempt probabilistic
// task-failure rate, a per-attempt timeout, and a bounded retry-with-backoff
// policy. Every query on a Plan is a pure function of the plan itself (the
// probabilistic failures are key-addressed hashes of the plan seed, task ID
// and attempt number — never of call order), so a fault-injected run is
// byte-identical across worker counts and reproducible from the seed, the
// same contract the rest of the repo holds.
//
// The package deliberately imports nothing from the simulator or scheduler:
// it is the bottom of the dependency stack so both internal/sim and
// internal/serve can share one plan format.
package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Crash takes one machine down at DownAt and, when UpAt > 0, brings it back
// at UpAt. UpAt == 0 (or omitted in JSON) means the machine never recovers
// within the run.
type Crash struct {
	Machine int     `json:"machine"`
	DownAt  float64 `json:"down_at"`
	UpAt    float64 `json:"up_at,omitempty"`
}

// Slowdown dilates one VM slot's progress rate by Factor over [From, To).
// Factor 0 is a full stall (no progress until To); 0.5 halves the rate.
type Slowdown struct {
	Machine int     `json:"machine"`
	Slot    int     `json:"slot"`
	From    float64 `json:"from"`
	To      float64 `json:"to"`
	Factor  float64 `json:"factor"`
}

// RetryPolicy bounds how a failed/evicted/timed-out task attempt is retried.
// The zero value means the defaults: 3 total attempts, 1 s base backoff
// doubling per attempt, capped at 60 s.
type RetryPolicy struct {
	// MaxAttempts is the total number of placement attempts per task
	// (first placement included). 0 means the default of 3.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Backoff is the delay before the first retry, in seconds. 0 means 1 s.
	Backoff float64 `json:"backoff,omitempty"`
	// BackoffFactor multiplies the delay per subsequent retry. 0 means 2.
	BackoffFactor float64 `json:"backoff_factor,omitempty"`
	// MaxBackoff caps the delay, in seconds. 0 means 60 s.
	MaxBackoff float64 `json:"max_backoff,omitempty"`
}

// Retry-policy defaults (see RetryPolicy).
const (
	DefaultMaxAttempts   = 3
	DefaultBackoff       = 1.0
	DefaultBackoffFactor = 2.0
	DefaultMaxBackoff    = 60.0
)

func (r RetryPolicy) maxAttempts() int {
	if r.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return r.MaxAttempts
}

func (r RetryPolicy) backoff() float64 {
	if r.Backoff <= 0 {
		return DefaultBackoff
	}
	return r.Backoff
}

func (r RetryPolicy) factor() float64 {
	if r.BackoffFactor <= 0 {
		return DefaultBackoffFactor
	}
	return r.BackoffFactor
}

func (r RetryPolicy) maxBackoff() float64 {
	if r.MaxBackoff <= 0 {
		return DefaultMaxBackoff
	}
	return r.MaxBackoff
}

// Plan is one deterministic fault-injection schedule. The zero value (and
// an empty JSON object) injects nothing and perturbs nothing.
type Plan struct {
	// Seed keys the probabilistic task failures. Two plans that differ only
	// in Seed fail different (task, attempt) pairs.
	Seed int64 `json:"seed,omitempty"`
	// FailProb is the probability that any single task attempt fails at the
	// moment it would have completed. 0 disables probabilistic failures.
	FailProb float64 `json:"fail_prob,omitempty"`
	// TaskTimeout bounds each placement attempt's wall-clock time in
	// simulated seconds; an attempt still running at its deadline is evicted
	// and retried. 0 disables timeouts. A timeout landing at the same
	// instant as the attempt's completion wins deterministically.
	TaskTimeout float64 `json:"task_timeout,omitempty"`
	// Retry bounds re-placement of failed attempts.
	Retry RetryPolicy `json:"retry,omitempty"`
	// Crashes are machine down/up windows.
	Crashes []Crash `json:"crashes,omitempty"`
	// Slowdowns are per-slot rate dilations.
	Slowdowns []Slowdown `json:"slowdowns,omitempty"`
}

// Empty reports whether the plan injects nothing at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		(p.FailProb <= 0 && p.TaskTimeout <= 0 && len(p.Crashes) == 0 && len(p.Slowdowns) == 0)
}

// Validate checks the plan against a cluster of the given size (machines
// with slotsPer VM slots each). machines <= 0 skips the bounds checks, for
// validating a plan before the cluster size is known.
func (p *Plan) Validate(machines, slotsPer int) error {
	if p == nil {
		return nil
	}
	if p.FailProb < 0 || p.FailProb > 1 {
		return fmt.Errorf("fault: fail_prob %v outside [0, 1]", p.FailProb)
	}
	if p.TaskTimeout < 0 {
		return fmt.Errorf("fault: negative task_timeout %v", p.TaskTimeout)
	}
	if p.Retry.MaxAttempts < 0 || p.Retry.Backoff < 0 || p.Retry.BackoffFactor < 0 || p.Retry.MaxBackoff < 0 {
		return fmt.Errorf("fault: negative retry-policy field")
	}
	// Crash windows on the same machine must be disjoint and ordered so the
	// engine's down/up transitions are well defined.
	byMachine := map[int][]Crash{}
	for i, c := range p.Crashes {
		if machines > 0 && (c.Machine < 0 || c.Machine >= machines) {
			return fmt.Errorf("fault: crash %d targets machine %d outside [0, %d)", i, c.Machine, machines)
		}
		if c.DownAt < 0 || math.IsNaN(c.DownAt) || math.IsInf(c.DownAt, 0) {
			return fmt.Errorf("fault: crash %d has invalid down_at %v", i, c.DownAt)
		}
		if c.UpAt != 0 && (c.UpAt <= c.DownAt || math.IsNaN(c.UpAt) || math.IsInf(c.UpAt, 0)) {
			return fmt.Errorf("fault: crash %d has up_at %v not after down_at %v", i, c.UpAt, c.DownAt)
		}
		byMachine[c.Machine] = append(byMachine[c.Machine], c)
	}
	for m, cs := range byMachine {
		sort.Slice(cs, func(i, j int) bool { return cs[i].DownAt < cs[j].DownAt })
		for i := 1; i < len(cs); i++ {
			prev := cs[i-1]
			if prev.UpAt == 0 || cs[i].DownAt < prev.UpAt {
				return fmt.Errorf("fault: overlapping crash windows on machine %d", m)
			}
		}
	}
	for i, s := range p.Slowdowns {
		if machines > 0 && (s.Machine < 0 || s.Machine >= machines) {
			return fmt.Errorf("fault: slowdown %d targets machine %d outside [0, %d)", i, s.Machine, machines)
		}
		if slotsPer > 0 && (s.Slot < 0 || s.Slot >= slotsPer) {
			return fmt.Errorf("fault: slowdown %d targets slot %d outside [0, %d)", i, s.Slot, slotsPer)
		}
		if s.From < 0 || s.To <= s.From || math.IsNaN(s.From) || math.IsInf(s.To, 0) || math.IsNaN(s.To) {
			return fmt.Errorf("fault: slowdown %d has invalid window [%v, %v)", i, s.From, s.To)
		}
		if s.Factor < 0 || s.Factor >= 1 {
			return fmt.Errorf("fault: slowdown %d factor %v outside [0, 1)", i, s.Factor)
		}
	}
	// Slowdown windows on the same slot must be disjoint (a stacked product
	// would be order-dependent in spirit even if not in arithmetic).
	bySlot := map[[2]int][]Slowdown{}
	for _, s := range p.Slowdowns {
		k := [2]int{s.Machine, s.Slot}
		bySlot[k] = append(bySlot[k], s)
	}
	for k, ss := range bySlot {
		sort.Slice(ss, func(i, j int) bool { return ss[i].From < ss[j].From })
		for i := 1; i < len(ss); i++ {
			if ss[i].From < ss[i-1].To {
				return fmt.Errorf("fault: overlapping slowdown windows on machine %d slot %d", k[0], k[1])
			}
		}
	}
	return nil
}

// ForMachines returns a copy of the plan with crashes and slowdowns that
// target machines outside [0, machines) dropped, so one plan file can be
// applied across sweep points of different cluster sizes. The receiver is
// not modified.
func (p *Plan) ForMachines(machines int) *Plan {
	if p == nil {
		return nil
	}
	out := *p
	out.Crashes = nil
	for _, c := range p.Crashes {
		if c.Machine >= 0 && c.Machine < machines {
			out.Crashes = append(out.Crashes, c)
		}
	}
	out.Slowdowns = nil
	for _, s := range p.Slowdowns {
		if s.Machine >= 0 && s.Machine < machines {
			out.Slowdowns = append(out.Slowdowns, s)
		}
	}
	return &out
}

// RetryAllowed reports whether the task may make the given attempt
// (1-based; the first placement is attempt 1).
func (p *Plan) RetryAllowed(attempt int) bool {
	return attempt <= p.Retry.maxAttempts()
}

// RetryDelay returns the backoff before the retry that follows the given
// number of failed attempts: backoff · factor^(failed−1), capped.
func (p *Plan) RetryDelay(failed int) float64 {
	if failed < 1 {
		failed = 1
	}
	d := p.Retry.backoff() * math.Pow(p.Retry.factor(), float64(failed-1))
	if max := p.Retry.maxBackoff(); d > max {
		return max
	}
	return d
}

// FNV-1a 64-bit, folded over fixed-width words so the failure decision is a
// pure function of (seed, task, attempt) — never of event order.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// TaskFails reports whether the given attempt (1-based) of the given task
// fails at the moment it would have completed.
func (p *Plan) TaskFails(taskID int64, attempt int) bool {
	if p == nil || p.FailProb <= 0 {
		return false
	}
	if p.FailProb >= 1 {
		return true
	}
	h := fnvMix(uint64(fnvOffset64), uint64(p.Seed))
	h = fnvMix(h, uint64(taskID))
	h = fnvMix(h, uint64(attempt))
	// Top 53 bits → uniform float in [0, 1).
	u := h >> 11
	return float64(u)/float64(1<<53) < p.FailProb
}

// RateFactor returns the rate multiplier for (machine, slot) at time t:
// 1 outside every slowdown window, the window's Factor inside (windows on
// one slot are disjoint by Validate; half-open [From, To)).
func (p *Plan) RateFactor(machine, slot int, t float64) float64 {
	if p == nil {
		return 1
	}
	for _, s := range p.Slowdowns {
		if s.Machine == machine && s.Slot == slot && t >= s.From && t < s.To {
			return s.Factor
		}
	}
	return 1
}

// BoundaryKind labels one timeline boundary.
type BoundaryKind int

// Boundary kinds, in tie-break order: at one instant a machine goes down
// before it comes up (disjoint windows make simultaneous down/up on one
// machine an adjacent-window seam: the up of the earlier window must land
// before the down of the later one, so Up orders first).
const (
	BoundaryUp BoundaryKind = iota
	BoundaryDown
	BoundarySlowStart
	BoundarySlowEnd
)

// Boundary is one scheduled fault transition.
type Boundary struct {
	T       float64
	Kind    BoundaryKind
	Machine int
	Slot    int // -1 for machine boundaries
}

// Timeline returns every crash/recover and slowdown start/end boundary in
// deterministic order (time, then kind, then machine, then slot).
func (p *Plan) Timeline() []Boundary {
	if p == nil {
		return nil
	}
	var bs []Boundary
	for _, c := range p.Crashes {
		bs = append(bs, Boundary{T: c.DownAt, Kind: BoundaryDown, Machine: c.Machine, Slot: -1})
		if c.UpAt > 0 {
			bs = append(bs, Boundary{T: c.UpAt, Kind: BoundaryUp, Machine: c.Machine, Slot: -1})
		}
	}
	for _, s := range p.Slowdowns {
		bs = append(bs, Boundary{T: s.From, Kind: BoundarySlowStart, Machine: s.Machine, Slot: s.Slot})
		bs = append(bs, Boundary{T: s.To, Kind: BoundarySlowEnd, Machine: s.Machine, Slot: s.Slot})
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].T != bs[j].T {
			return bs[i].T < bs[j].T
		}
		if bs[i].Kind != bs[j].Kind {
			return bs[i].Kind < bs[j].Kind
		}
		if bs[i].Machine != bs[j].Machine {
			return bs[i].Machine < bs[j].Machine
		}
		return bs[i].Slot < bs[j].Slot
	})
	return bs
}

// Load parses a JSON plan. Unknown fields are rejected so a typo'd plan
// fails loudly instead of silently injecting nothing.
func Load(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	if err := p.Validate(0, 0); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadFile reads and parses a JSON plan file.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}

// Save writes the plan as indented JSON.
func (p *Plan) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}
