package mat

import "math"

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a, such that a = L·Lᵀ. It returns ErrSingular if
// a is not positive definite to working precision. The Gauss-Newton solver
// uses it for the normal-equations path when the Jacobian is well
// conditioned.
func Cholesky(a *Matrix) (*Matrix, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b given the Cholesky factor l of a, via forward
// then backward substitution.
func CholeskySolve(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows()
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
