package mat

import "math"

// Vector helpers operate on plain []float64 slices; a dedicated type would
// buy nothing here and would cost conversions at every call site.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow the way
// hypot does.
func Norm2(v []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AddVec returns a + b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a - b as a new slice.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s·v as a new slice.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// Sum returns the sum of the entries of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	scale, ssq := 0.0, 1.0
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		ad := math.Abs(d)
		if scale < ad {
			r := scale / ad
			ssq = 1 + ssq*r*r
			scale = ad
		} else {
			r := ad / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}
