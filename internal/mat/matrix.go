// Package mat provides the dense linear algebra kernels used by the
// TRACON statistical learning stack: matrices, vectors, Householder QR
// least squares, Cholesky factorization, and a Jacobi symmetric
// eigendecomposition (used for PCA).
//
// The package is deliberately small and allocation-conscious: matrices are
// stored in a single row-major backing slice, and the factorizations
// used in model fitting reuse scratch buffers where it matters.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromSlice returns an r×c matrix backed by a copy of data, which must
// have length r*c and be laid out row-major.
func NewFromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// NewFromRows builds a matrix from a slice of equal-length rows.
func NewFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: empty row set")
	}
	m := New(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d columns, want %d", i, len(row), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage. Mutating the
// returned slice mutates the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range", i))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(ErrShape)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewFromSlice(m.rows, m.cols, m.data)
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(ErrShape)
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(ErrShape)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic(ErrShape)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// SelectColumns returns a new matrix containing the listed columns of m, in
// the given order. Used by stepwise model selection to build candidate
// design matrices.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	out := New(m.rows, len(cols))
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		for k, c := range cols {
			if c < 0 || c >= m.cols {
				panic(fmt.Sprintf("mat: column %d out of range %d", c, m.cols))
			}
			dst[k] = src[c]
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and b have the same shape and entries within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
