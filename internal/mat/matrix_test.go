package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 3}, {3, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 42.5)
	if got := m.At(1, 2); got != 42.5 {
		t.Fatalf("At(1,2) = %v want 42.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("unrelated cell changed: %v", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	_ = m.At(2, 0)
}

func TestNewFromRowsAndRowCol(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := m.Row(1); got[0] != 4 || got[2] != 6 {
		t.Fatalf("Row(1) = %v", got)
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 5 {
		t.Fatalf("Col(1) = %v", got)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestRowIsACopy(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	raw := m.RawRow(0)
	raw[0] = 99
	if m.At(0, 0) != 99 {
		t.Fatal("RawRow must alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if r, c := tt.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	if tt.At(2, 1) != 6 || tt.At(0, 0) != 1 {
		t.Fatalf("bad transpose:\n%v", tt)
	}
}

func TestMulAgainstKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul =\n%vwant\n%v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	if !a.Mul(Identity(5)).Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !Identity(5).Mul(a).Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 4, 6)
	v := randomVec(rng, 6)
	got := a.MulVec(v)
	vm := New(6, 1)
	for i, x := range v {
		vm.Set(i, 0, x)
	}
	want := a.Mul(vm)
	for i := range got {
		if math.Abs(got[i]-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{4, 3}, {2, 1}})
	if !a.Add(b).Equal(NewFromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatal("Add wrong")
	}
	if !a.Sub(a).Equal(New(2, 2), 0) {
		t.Fatal("A-A != 0")
	}
	if !a.Scale(2).Equal(NewFromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestSelectColumns(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	s := m.SelectColumns([]int{2, 0})
	want := NewFromRows([][]float64{{3, 1}, {6, 4}})
	if !s.Equal(want, 0) {
		t.Fatalf("SelectColumns =\n%v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3+rng.Intn(4), 2+rng.Intn(4))
		b := randomMatrix(rng, a.Cols(), 2+rng.Intn(4))
		left := a.Mul(b).T()
		right := b.T().Mul(a.T())
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		c := randomMatrix(rng, n, n)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewFromRows([][]float64{{1, -7}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v want 7", got)
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
