package mat

import (
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: A = V·Λ·Vᵀ.
// Eigenvalues are sorted in descending order; Vectors column j is the
// eigenvector for Values[j]. PCA (used by the paper's weighted-mean method)
// consumes this directly.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes the eigendecomposition of symmetric matrix a using the
// cyclic Jacobi method. Jacobi is O(n³) per sweep, which is irrelevant for
// the ≤ 8-dimensional covariance matrices in TRACON, and is unconditionally
// stable for symmetric input.
func SymEigen(a *Matrix) (*Eigen, error) {
	n, c := a.Dims()
	if n != c {
		return nil, ErrShape
	}
	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*(1+w.MaxAbs()*w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				cth := 1 / math.Sqrt(1+t*t)
				sth := t * cth
				rotate(w, p, q, cth, sth)
				rotateCols(v, p, q, cth, sth)
			}
		}
	}

	e := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
	for k, src := range idx {
		e.Values[k] = vals[src]
		for i := 0; i < n; i++ {
			e.Vectors.Set(i, k, v.At(i, src))
		}
	}
	return e, nil
}

// rotate applies a two-sided Jacobi rotation to symmetric matrix w in the
// (p,q) plane.
func rotate(w *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
}

// rotateCols applies the rotation to the eigenvector accumulator (columns
// only; v is not symmetric).
func rotateCols(v *Matrix, p, q int, c, s float64) {
	n := v.Rows()
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// Covariance returns the sample covariance matrix of the rows of x
// (observations in rows, variables in columns), using the n−1 denominator.
func Covariance(x *Matrix) *Matrix {
	n, p := x.Dims()
	mu := make([]float64, p)
	for j := 0; j < p; j++ {
		mu[j] = Mean(x.Col(j))
	}
	cov := New(p, p)
	if n < 2 {
		return cov
	}
	for i := 0; i < n; i++ {
		row := x.RawRow(i)
		for a := 0; a < p; a++ {
			da := row[a] - mu[a]
			if da == 0 {
				continue
			}
			for b := a; b < p; b++ {
				cov.data[a*p+b] += da * (row[b] - mu[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			v := cov.data[a*p+b] * inv
			cov.data[a*p+b] = v
			cov.data[b*p+a] = v
		}
	}
	return cov
}
