package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSolvesExactSquareSystem(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Solution of 2x+y=5, x+3y=10 is x=1, y=3.
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("x = %v want [1 3]", x)
	}
}

func TestQRRecoversPlantedCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, p := 200, 5
	truth := []float64{3, -1.5, 0.25, 2, -4}
	a := New(n, p)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = Dot(a.RawRow(i), truth)
	}
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if math.Abs(x[j]-truth[j]) > 1e-8 {
			t.Fatalf("coef %d = %v want %v", j, x[j], truth[j])
		}
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// For the LS solution, the residual must be orthogonal to every column
	// of A — the defining property of least squares.
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 30, 4)
	b := randomVec(rng, 30)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := SubVec(b, a.MulVec(x))
	for j := 0; j < a.Cols(); j++ {
		if d := math.Abs(Dot(a.Col(j), res)); d > 1e-9 {
			t.Fatalf("residual not orthogonal to column %d: %v", j, d)
		}
	}
}

func TestQRSingularDetection(t *testing.T) {
	// Second column is an exact multiple of the first.
	a := NewFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := NewQR(a); err != ErrSingular {
		t.Fatalf("err = %v want ErrSingular", err)
	}
}

func TestQRZeroMatrix(t *testing.T) {
	if _, err := NewQR(New(4, 2)); err != ErrSingular {
		t.Fatal("zero matrix must be singular")
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	if _, err := NewQR(New(2, 4)); err != ErrShape {
		t.Fatal("m < n must return ErrShape")
	}
}

func TestQRSolveWrongLength(t *testing.T) {
	a := NewFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	f, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err != ErrShape {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

// Property: for random well-conditioned tall systems, no other perturbed
// candidate beats the QR solution in sum of squared residuals.
func TestQRIsArgminProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(20)
		p := 2 + rng.Intn(3)
		a := randomMatrix(rng, n, p)
		b := randomVec(rng, n)
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			return true // degenerate draw; property vacuous
		}
		best := sse(a, b, x)
		for trial := 0; trial < 10; trial++ {
			alt := make([]float64, p)
			for j := range alt {
				alt[j] = x[j] + rng.NormFloat64()*0.1
			}
			if sse(a, b, alt) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeShrinksTowardZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 50, 3)
	b := randomVec(rng, 50)
	x0, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	xBig, err := RidgeSolve(a, b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(xBig) >= Norm2(x0) {
		t.Fatalf("ridge with huge penalty did not shrink: %v >= %v", Norm2(xBig), Norm2(x0))
	}
	if Norm2(xBig) > 1e-2 {
		t.Fatalf("huge penalty should drive coefficients near zero, got %v", Norm2(xBig))
	}
}

func TestRidgeHandlesCollinearColumns(t *testing.T) {
	// Exactly collinear design: plain QR fails, ridge must still produce a
	// finite solution.
	a := NewFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}})
	b := []float64{1, 2, 3, 4}
	if _, err := SolveLeastSquares(a, b); err == nil {
		t.Fatal("expected singular failure without ridge")
	}
	x, err := RidgeSolve(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("ridge solution not finite: %v", x)
		}
	}
}

func sse(a *Matrix, b, x []float64) float64 {
	r := SubVec(b, a.MulVec(x))
	return Dot(r, r)
}
