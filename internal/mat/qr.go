package mat

import "math"

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// A = Q·R with Q orthogonal (m×m, stored implicitly as reflectors) and R
// upper triangular (n×n). It is the workhorse behind ordinary least squares
// in the TRACON model-fitting pipeline.
type QR struct {
	qr   *Matrix   // packed factorization: R in the upper triangle, reflectors below
	rd   []float64 // diagonal of R
	m, n int
}

// NewQR computes the QR factorization of a. It returns ErrSingular if a has
// (numerically) rank-deficient columns — the caller decides whether to drop
// predictors or use ridge regularization.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.Dims()
	if m < n {
		return nil, ErrShape
	}
	f := &QR{qr: a.Clone(), rd: make([]float64, n), m: m, n: n}
	d := f.qr.data
	for k := 0; k < n; k++ {
		// Householder reflection for column k.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, d[i*n+k])
		}
		if nrm == 0 {
			return nil, ErrSingular
		}
		if d[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			d[i*n+k] /= nrm
		}
		d[k*n+k]++
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += d[i*n+k] * d[i*n+j]
			}
			s = -s / d[k*n+k]
			for i := k; i < m; i++ {
				d[i*n+j] += s * d[i*n+k]
			}
		}
		f.rd[k] = -nrm
	}
	// Reject factors whose R diagonal is negligible relative to the matrix
	// scale: back-substitution through them would amplify noise unboundedly.
	scale := f.qr.MaxAbs()
	if scale == 0 {
		return nil, ErrSingular
	}
	for k := 0; k < n; k++ {
		if math.Abs(f.rd[k]) < 1e-12*scale {
			return nil, ErrSingular
		}
	}
	return f, nil
}

// Solve returns the least-squares solution x of A·x ≈ b.
func (f *QR) Solve(b []float64) ([]float64, error) {
	if len(b) != f.m {
		return nil, ErrShape
	}
	d := f.qr.data
	y := make([]float64, f.m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < f.n; k++ {
		s := 0.0
		for i := k; i < f.m; i++ {
			s += d[i*f.n+k] * y[i]
		}
		s = -s / d[k*f.n+k]
		for i := k; i < f.m; i++ {
			y[i] += s * d[i*f.n+k]
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, f.n)
	for k := f.n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < f.n; j++ {
			s -= d[k*f.n+j] * x[j]
		}
		x[k] = s / f.rd[k]
	}
	return x, nil
}

// SolveLeastSquares computes the OLS solution of a·x ≈ b in one call.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeSolve solves the Tikhonov-regularized least squares problem
// min ‖A·x − b‖² + λ‖x‖² by augmenting the system with √λ·I rows. It is the
// fallback used by the model fitter when the design matrix is collinear
// (frequent with degree-2 expansions of near-constant monitor features).
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		panic("mat: negative ridge penalty")
	}
	m, n := a.Dims()
	if len(b) != m {
		return nil, ErrShape
	}
	aug := New(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.RawRow(i), a.RawRow(i))
	}
	sq := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sq)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return SolveLeastSquares(aug, rhs)
}
