package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-10 {
			t.Fatalf("eigenvalues = %v want %v", e.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Values[0]-3) > 1e-10 || math.Abs(e.Values[1]-1) > 1e-10 {
		t.Fatalf("values = %v want [3 1]", e.Values)
	}
	// Eigenvector for λ=3 is (1,1)/√2 up to sign.
	v := e.Vectors.Col(0)
	if math.Abs(math.Abs(v[0])-math.Sqrt2/2) > 1e-8 || math.Abs(v[0]-v[1]) > 1e-8 {
		t.Fatalf("first eigenvector = %v", v)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSymmetric(rng, 6)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild V·Λ·Vᵀ and compare.
	lam := New(6, 6)
	for i, v := range e.Values {
		lam.Set(i, i, v)
	}
	rec := e.Vectors.Mul(lam).Mul(e.Vectors.T())
	if !rec.Equal(a, 1e-8) {
		t.Fatalf("reconstruction error:\n%v vs\n%v", rec, a)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSymmetric(rng, 5)
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vtv := e.Vectors.T().Mul(e.Vectors)
	if !vtv.Equal(Identity(5), 1e-8) {
		t.Fatalf("VᵀV != I:\n%v", vtv)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err != ErrShape {
		t.Fatalf("err = %v want ErrShape", err)
	}
}

// Property: trace equals sum of eigenvalues; descending order.
func TestSymEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSymmetric(rng, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
		}
		if math.Abs(tr-Sum(e.Values)) > 1e-8*(1+math.Abs(tr)) {
			return false
		}
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly anti-correlated variables.
	x := NewFromRows([][]float64{{1, -1}, {2, -2}, {3, -3}})
	c := Covariance(x)
	if math.Abs(c.At(0, 0)-1) > 1e-12 || math.Abs(c.At(0, 1)+1) > 1e-12 {
		t.Fatalf("cov =\n%v", c)
	}
	if math.Abs(c.At(0, 1)-c.At(1, 0)) > 0 {
		t.Fatal("covariance not symmetric")
	}
}

func TestCovarianceSingleObservation(t *testing.T) {
	c := Covariance(NewFromRows([][]float64{{5, 7}}))
	if c.MaxAbs() != 0 {
		t.Fatal("covariance of one observation must be zero")
	}
}

func TestCovariancePSDProperty(t *testing.T) {
	// Covariance matrices must be positive semidefinite: all eigenvalues >= 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomMatrix(rng, 10+rng.Intn(20), 2+rng.Intn(4))
		e, err := SymEigen(Covariance(x))
		if err != nil {
			return false
		}
		for _, v := range e.Values {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Build SPD matrix A = BᵀB + I.
	b := randomMatrix(rng, 6, 6)
	a := b.T().Mul(b).Add(Identity(6))
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Mul(l.T()).Equal(a, 1e-9) {
		t.Fatal("L·Lᵀ != A")
	}
	rhs := randomVec(rng, 6)
	x, err := CholeskySolve(l, rhs)
	if err != nil {
		t.Fatal(err)
	}
	got := a.MulVec(x)
	for i := range rhs {
		if math.Abs(got[i]-rhs[i]) > 1e-8 {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, got[i], rhs[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := Cholesky(a); err != ErrSingular {
		t.Fatalf("err = %v want ErrSingular", err)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{3, 4}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if Dot(a, []float64{1, 2}) != 11 {
		t.Fatal("Dot wrong")
	}
	if got := Distance([]float64{0, 0}, a); got != 5 {
		t.Fatalf("Distance = %v", got)
	}
	if got := AddVec(a, a); got[0] != 6 || got[1] != 8 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(a, a); got[0] != 0 || got[1] != 0 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(2, a); got[0] != 6 || got[1] != 8 {
		t.Fatalf("ScaleVec = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean wrong")
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow here.
	v := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(v); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflow-guard failed: %v", got)
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}
