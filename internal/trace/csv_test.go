package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"x,y", "z"}},
	}
	if err := Write(&buf, tab); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Fatalf("comma not quoted: %q", out)
	}
}

func TestWriteRejectsRaggedRows(t *testing.T) {
	var buf bytes.Buffer
	tab := Table{Header: []string{"a", "b"}, Rows: [][]string{{"only-one"}}}
	if err := Write(&buf, tab); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestSaveCreatesDirectories(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "deep", "out.csv")
	tab := Table{Header: []string{"v"}, Rows: [][]string{{F(1.5)}, {I(7)}}}
	if err := Save(path, tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "v\n1.5\n7\n"
	if string(data) != want {
		t.Fatalf("file = %q want %q", data, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(0.125) != "0.125" {
		t.Fatalf("F = %q", F(0.125))
	}
	if I(-3) != "-3" {
		t.Fatalf("I = %q", I(-3))
	}
}
