// Package trace exports experiment results as machine-readable artifacts
// (CSV), so the regenerated tables and figures can be plotted or diffed
// against the paper without re-running the simulations.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Table is a rectangular result: a header plus rows.
type Table struct {
	Header []string
	Rows   [][]string
}

// Tabular is implemented by experiment results that can render themselves
// as a table.
type Tabular interface {
	Table() Table
}

// Write streams the table as CSV.
func Write(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return err
		}
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Header) && len(t.Header) > 0 {
			return fmt.Errorf("trace: row has %d fields, header has %d", len(row), len(t.Header))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Save writes the table to a CSV file, creating parent directories.
func Save(path string, t Table) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, t); err != nil {
		return err
	}
	return f.Close()
}

// F formats a float for CSV cells.
func F(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// I formats an int for CSV cells.
func I(v int) string { return strconv.Itoa(v) }
