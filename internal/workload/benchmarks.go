// Package workload defines the applications and workload generators of the
// TRACON evaluation: the eight data-intensive benchmarks of Table 3, the
// Calc/SeqRead micro-apps of Table 1, the 125 synthetic profiling workloads
// of Section 3.1, the Gaussian light/medium/heavy mixes of Section 4.1 and
// the Poisson arrival process of Section 4.7.
package workload

import (
	"fmt"
	"sort"

	"tracon/internal/xen"
)

// Benchmark couples an application spec with the Table 3 metadata that the
// experiments report.
type Benchmark struct {
	Spec xen.AppSpec
	// Category and Description mirror Table 3.
	Category    string
	Description string
	// DataSizeGB is the nominal input size from Table 3.
	DataSizeGB float64
	// IORank is the Table 3 I/O-intensity rank (1 = lowest IOPS,
	// 8 = highest). The Gaussian workload mixes sample over this rank.
	IORank int
	// HasRuntimeMetric is false for the web benchmark: FileBench takes the
	// runtime as an input, so the paper evaluates web on IOPS only.
	HasRuntimeMetric bool
}

// Benchmarks returns the eight data-intensive applications of Table 3.
// Demand totals are chosen so that each benchmark's *solo measured IOPS*
// on the default host reproduces the Table 3 intensity ranking
// (email < web < blastp < compile < freqmine < blastn < dedup < video)
// with solo runtimes in the hundreds of seconds, matching the scale of the
// paper's testbed runs. See benchmarks_test.go for the asserted ordering.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{
			Spec: xen.AppSpec{
				Name: "blastn", CPUSeconds: 150,
				ReadOps: 240000, WriteOps: 10000,
				ReqSizeKB: 64, Seq: 0.85, MaxIODepth: 2,
			},
			Category: "Bioinformatics", Description: "DNA sequence similarity searching",
			DataSizeGB: 12, IORank: 6, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "blastp", CPUSeconds: 600,
				ReadOps: 14000, WriteOps: 1000,
				ReqSizeKB: 64, Seq: 0.8, MaxIODepth: 2,
			},
			Category: "Bioinformatics", Description: "Protein sequence similarity searching",
			DataSizeGB: 11, IORank: 3, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "compile", CPUSeconds: 180,
				ReadOps: 45000, WriteOps: 30000,
				ReqSizeKB: 8, Seq: 0.45, MaxIODepth: 1,
			},
			Category: "Software development", Description: "Linux kernel compilation",
			DataSizeGB: 2.1, IORank: 4, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "dedup", CPUSeconds: 80,
				ReadOps: 250000, WriteOps: 125000,
				ReqSizeKB: 32, Seq: 0.9, MaxIODepth: 4,
			},
			Category: "System administration", Description: "Data compression and deduplication",
			DataSizeGB: 0.672, IORank: 7, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "email", CPUSeconds: 60, ThinkSeconds: 560,
				ReadOps: 1500, WriteOps: 1500,
				ReqSizeKB: 4, Seq: 0.1, MaxIODepth: 1,
			},
			Category: "Server application", Description: "Email server workload benchmark",
			DataSizeGB: 1.6, IORank: 1, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "freqmine", CPUSeconds: 120,
				ReadOps: 90000, WriteOps: 5000,
				ReqSizeKB: 16, Seq: 0.75, MaxIODepth: 2,
			},
			Category: "Data mining", Description: "Frequent itemset mining",
			DataSizeGB: 0.206, IORank: 5, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "video", CPUSeconds: 40,
				ReadOps: 500000, WriteOps: 250000,
				ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 1,
			},
			Category: "Multimedia processing", Description: "H.264 video encoding",
			DataSizeGB: 1.5, IORank: 8, HasRuntimeMetric: true,
		},
		{
			Spec: xen.AppSpec{
				Name: "web", CPUSeconds: 40, ThinkSeconds: 480,
				ReadOps: 4500, WriteOps: 500,
				ReqSizeKB: 4, Seq: 0.05, MaxIODepth: 10,
			},
			Category: "Server application", Description: "Web server workload benchmark",
			DataSizeGB: 0.16, IORank: 2, HasRuntimeMetric: false,
		},
	}
}

// BenchmarkByName returns the named benchmark.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range Benchmarks() {
		if b.Spec.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// BenchmarksByRank returns the benchmarks sorted by their Table 3
// I/O-intensity rank (ascending), so index k holds rank k+1. The Gaussian
// workload mixes index into this ordering.
func BenchmarksByRank() []Benchmark {
	bs := Benchmarks()
	sort.Slice(bs, func(i, j int) bool { return bs[i].IORank < bs[j].IORank })
	return bs
}

// Names returns the benchmark names in Table 3 order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Spec.Name
	}
	return out
}
