package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tracon/internal/xen"
)

func testbed(t *testing.T) *xen.Testbed {
	t.Helper()
	h, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	return xen.NewTestbed(h, 3, 0, 1)
}

func TestEightBenchmarksValid(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("want 8 benchmarks, got %d", len(bs))
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.Spec.Name, err)
		}
		if seen[b.Spec.Name] {
			t.Errorf("duplicate benchmark %s", b.Spec.Name)
		}
		seen[b.Spec.Name] = true
	}
}

func TestRanksAreAPermutation(t *testing.T) {
	seen := map[int]string{}
	for _, b := range Benchmarks() {
		if b.IORank < 1 || b.IORank > 8 {
			t.Fatalf("%s rank %d out of range", b.Spec.Name, b.IORank)
		}
		if prev, ok := seen[b.IORank]; ok {
			t.Fatalf("rank %d assigned to both %s and %s", b.IORank, prev, b.Spec.Name)
		}
		seen[b.IORank] = b.Spec.Name
	}
}

// The Table 3 reproduction criterion: measured solo IOPS must follow the
// paper's intensity ranking exactly.
func TestSoloIOPSFollowsTable3Ranking(t *testing.T) {
	tb := testbed(t)
	prev := -1.0
	for _, b := range BenchmarksByRank() {
		p, err := tb.ProfileSolo(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.IOPS <= prev {
			t.Fatalf("%s (rank %d) has IOPS %v, not above previous rank's %v",
				b.Spec.Name, b.IORank, p.IOPS, prev)
		}
		prev = p.IOPS
	}
}

func TestSoloRuntimesAreTestbedScale(t *testing.T) {
	// The paper's benchmark runs are minutes-scale; wildly short or long
	// solo runtimes would distort every scheduling experiment.
	tb := testbed(t)
	for _, b := range Benchmarks() {
		p, err := tb.ProfileSolo(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if p.Runtime < 120 || p.Runtime > 3600 {
			t.Errorf("%s solo runtime %v outside [120s, 1h]", b.Spec.Name, p.Runtime)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	b, err := BenchmarkByName("blastn")
	if err != nil || b.Spec.Name != "blastn" {
		t.Fatalf("lookup failed: %v %v", b, err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestOnlyWebLacksRuntimeMetric(t *testing.T) {
	for _, b := range Benchmarks() {
		want := b.Spec.Name != "web"
		if b.HasRuntimeMetric != want {
			t.Errorf("%s HasRuntimeMetric = %v", b.Spec.Name, b.HasRuntimeMetric)
		}
	}
}

// Table 1 calibration bands: the simulated testbed must reproduce the
// paper's interference ratios in shape and approximate magnitude.
func TestTable1CalibrationBands(t *testing.T) {
	tb := testbed(t)
	type band struct{ lo, hi float64 }
	want := map[string]map[Table1Background]band{
		"calc": {
			BGCPUHigh:    {1.8, 2.2},  // paper: 1.96
			BGIOHigh:     {1.1, 1.5},  // paper: 1.26
			BGBothMedium: {1.45, 2.1}, // paper: 1.77
			BGBothHigh:   {2.1, 3.0},  // paper: 2.52
		},
		"seqread": {
			BGCPUHigh:    {0.95, 1.15}, // paper: 1.03
			BGIOHigh:     {8, 17},      // paper: 10.23
			BGBothMedium: {1.5, 3.2},   // paper: 1.78
			BGBothHigh:   {13, 25},     // paper: 16.11
		},
	}
	apps := map[string]xen.AppSpec{"calc": Calc(), "seqread": SeqRead()}
	for name, app := range apps {
		for bg, b := range want[name] {
			sd, err := tb.Slowdown(app, bg.Spec())
			if err != nil {
				t.Fatal(err)
			}
			if sd < b.lo || sd > b.hi {
				t.Errorf("Table1 %s vs %s: slowdown %.2f outside [%v, %v]", name, bg, sd, b.lo, b.hi)
			}
		}
	}
}

// The headline ordering of Table 1: for the data-intensive probe,
// CPU-only ≪ both-medium < IO-only < both-high.
func TestTable1Ordering(t *testing.T) {
	tb := testbed(t)
	sr := SeqRead()
	var vals []float64
	for _, bg := range []Table1Background{BGCPUHigh, BGBothMedium, BGIOHigh, BGBothHigh} {
		sd, err := tb.Slowdown(sr, bg.Spec())
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, sd)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatalf("Table 1 ordering violated: %v", vals)
		}
	}
}

func TestProfilingGridShape(t *testing.T) {
	ws := ProfilingWorkloads(xen.HDD())
	if len(ws) != 125 {
		t.Fatalf("grid has %d workloads, want 125", len(ws))
	}
	// First point is the idle VM.
	if ws[0].CPULevel != 0 || ws[0].ReadLevel != 0 || ws[0].WriteLevel != 0 {
		t.Fatalf("grid[0] = %+v, want the idle point", ws[0])
	}
	if ws[0].Spec.CPUDemand != 0 || ws[0].Spec.TargetReadRate != 0 {
		t.Fatal("idle point has nonzero demand")
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Spec.Validate(); err != nil {
			t.Fatalf("%s: %v", w.Spec.Name, err)
		}
		if !w.Spec.Endless {
			t.Fatalf("%s: profiling workloads must be endless", w.Spec.Name)
		}
		if seen[w.Spec.Name] {
			t.Fatalf("duplicate synthetic name %s", w.Spec.Name)
		}
		seen[w.Spec.Name] = true
	}
}

func TestProfilingGridSpansSizes(t *testing.T) {
	sizes := map[float64]bool{}
	seqs := map[float64]bool{}
	for _, w := range ProfilingWorkloads(xen.HDD()) {
		sizes[w.Spec.ReqSizeKB] = true
		seqs[w.Spec.Seq] = true
	}
	if len(sizes) < 3 {
		t.Fatalf("grid spans only %d request sizes", len(sizes))
	}
	// The generator's access pattern is fixed (one large file, sequential):
	// sequentiality must NOT vary, or the models would face a hidden
	// variable none of the four monitored characteristics can express.
	if len(seqs) != 1 {
		t.Fatalf("grid spans %d sequentialities, want exactly 1", len(seqs))
	}
}

func TestRateForLevelMonotone(t *testing.T) {
	d := xen.HDD()
	prev := -1.0
	for _, l := range IntensityLevels {
		r := RateForLevel(l, d, 64)
		if r < prev {
			t.Fatalf("rate not monotone at level %v", l)
		}
		prev = r
	}
	if RateForLevel(0, d, 64) != 0 {
		t.Fatal("level 0 must be rate 0")
	}
	if RateForLevel(1, d, 64) < d.MaxSeqIOPS(64) {
		t.Fatal("level 1 must saturate the device")
	}
}

func TestMixerGaussianMeansOrdered(t *testing.T) {
	m := NewMixer(1)
	avgRank := func(mix IOIntensity) float64 {
		sum := 0.0
		const n = 4000
		for i := 0; i < n; i++ {
			sum += float64(m.Draw(mix).IORank)
		}
		return sum / n
	}
	l, md, h := avgRank(LightIO), avgRank(MediumIO), avgRank(HeavyIO)
	if !(l < md && md < h) {
		t.Fatalf("mix mean ranks not ordered: light=%v medium=%v heavy=%v", l, md, h)
	}
	if math.Abs(l-2.5) > 0.5 || math.Abs(md-4.0) > 0.5 || math.Abs(h-5.5) > 0.5 {
		t.Fatalf("mix means too far from paper's 2.5/4/5.5: %v %v %v", l, md, h)
	}
}

func TestMixerDeterministic(t *testing.T) {
	a := NewMixer(7).Batch(MediumIO, 20)
	b := NewMixer(7).Batch(MediumIO, 20)
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("mixer not deterministic")
		}
	}
}

func TestBatchNamesUniqueAndParseable(t *testing.T) {
	batch := NewMixer(3).Batch(HeavyIO, 32)
	if len(batch) != 32 {
		t.Fatalf("batch size %d", len(batch))
	}
	seen := map[string]bool{}
	for _, spec := range batch {
		if seen[spec.Name] {
			t.Fatalf("duplicate instance name %s", spec.Name)
		}
		seen[spec.Name] = true
		base := BaseName(spec.Name)
		if strings.Contains(base, "#") {
			t.Fatalf("BaseName failed on %s", spec.Name)
		}
		if _, err := BenchmarkByName(base); err != nil {
			t.Fatalf("instance %s has unknown base %s", spec.Name, base)
		}
	}
}

func TestUniformBatchCoversAllApps(t *testing.T) {
	batch := NewMixer(5).UniformBatch(400)
	counts := map[string]int{}
	for _, spec := range batch {
		counts[BaseName(spec.Name)]++
	}
	if len(counts) != 8 {
		t.Fatalf("uniform sampling hit %d of 8 apps", len(counts))
	}
}

func TestArrivalsPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lambda := 30.0 // per minute
	horizon := 3600.0
	times := Arrivals(rng, lambda, horizon)
	want := lambda / 60 * horizon
	if math.Abs(float64(len(times))-want)/want > 0.15 {
		t.Fatalf("got %d arrivals, want ≈%v", len(times), want)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("arrival times not sorted")
		}
	}
	if len(times) > 0 && (times[0] < 0 || times[len(times)-1] >= horizon) {
		t.Fatal("arrival outside horizon")
	}
}

func TestArrivalsDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Arrivals(rng, 0, 100) != nil {
		t.Fatal("zero rate must yield no arrivals")
	}
	if Arrivals(rng, 10, 0) != nil {
		t.Fatal("zero horizon must yield no arrivals")
	}
}

// Property: every batch instance's spec equals its base benchmark's spec
// except for the name.
func TestBatchSpecsMatchBase(t *testing.T) {
	f := func(seed int64) bool {
		m := NewMixer(seed)
		for _, spec := range m.Batch(MediumIO, 10) {
			b, err := BenchmarkByName(BaseName(spec.Name))
			if err != nil {
				return false
			}
			want := b.Spec
			want.Name = spec.Name
			if spec != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
