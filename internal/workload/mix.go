package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tracon/internal/xen"
)

// IOIntensity selects one of the paper's three workload mixes (Sec. 4.1):
// benchmark ranks are sampled from a Gaussian over the Table 3 I/O ranking
// with means 2.5 (light), 4 (medium) and 5.5 (heavy).
type IOIntensity int

// The three mixes.
const (
	LightIO IOIntensity = iota
	MediumIO
	HeavyIO
)

// String returns the mix label used in the figures.
func (m IOIntensity) String() string {
	switch m {
	case LightIO:
		return "light"
	case MediumIO:
		return "medium"
	case HeavyIO:
		return "heavy"
	default:
		return "unknown"
	}
}

// Mean returns the Gaussian mean over ranks for the mix.
func (m IOIntensity) Mean() float64 {
	switch m {
	case LightIO:
		return 2.5
	case MediumIO:
		return 4.0
	case HeavyIO:
		return 5.5
	default:
		return 4.0
	}
}

// Stddev returns the spread of the rank Gaussian for the mix. The paper
// gives only the means; the spreads are chosen so each mix behaves as the
// text describes: the medium mix spans the whole intensity range ("a
// mixture of workloads"), while the heavy mix concentrates on the
// I/O-hungry benchmarks ("almost all combinations in this workload likely
// severely interfere with each other").
func (m IOIntensity) Stddev() float64 {
	switch m {
	case LightIO:
		return 1.2
	case MediumIO:
		return 2.0
	case HeavyIO:
		return 0.9
	default:
		return 1.5
	}
}

// Mixer draws benchmark instances for workload mixes. It is deterministic
// for a given seed.
type Mixer struct {
	rng    *rand.Rand
	byRank []Benchmark
}

// NewMixer returns a Mixer seeded deterministically.
func NewMixer(seed int64) *Mixer {
	return &Mixer{
		rng:    rand.New(rand.NewSource(seed)),
		byRank: BenchmarksByRank(),
	}
}

// Draw samples one benchmark according to the mix's rank Gaussian.
func (m *Mixer) Draw(mix IOIntensity) Benchmark {
	mean := mix.Mean()
	for {
		r := m.rng.NormFloat64()*mix.Stddev() + mean
		rank := int(math.Round(r))
		if rank >= 1 && rank <= len(m.byRank) {
			return m.byRank[rank-1]
		}
	}
}

// DrawUniform samples one benchmark uniformly (Sec. 4.4's batches).
func (m *Mixer) DrawUniform() Benchmark {
	return m.byRank[m.rng.Intn(len(m.byRank))]
}

// Batch draws n benchmark instances for the mix, giving each task instance
// a unique name suffix so traces stay readable.
func (m *Mixer) Batch(mix IOIntensity, n int) []xen.AppSpec {
	out := make([]xen.AppSpec, n)
	for i := range out {
		b := m.Draw(mix)
		spec := b.Spec
		spec.Name = fmt.Sprintf("%s#%d", b.Spec.Name, i)
		out[i] = spec
	}
	return out
}

// UniformBatch draws n benchmark instances uniformly at random.
func (m *Mixer) UniformBatch(n int) []xen.AppSpec {
	out := make([]xen.AppSpec, n)
	for i := range out {
		b := m.DrawUniform()
		spec := b.Spec
		spec.Name = fmt.Sprintf("%s#%d", b.Spec.Name, i)
		out[i] = spec
	}
	return out
}

// BaseName strips the "#i" instance suffix added by Batch, recovering the
// benchmark name.
func BaseName(instance string) string {
	for i := 0; i < len(instance); i++ {
		if instance[i] == '#' {
			return instance[:i]
		}
	}
	return instance
}

// Arrivals generates Poisson task arrival times (Sec. 4.7): rate λ tasks
// per minute over the given horizon in seconds. The returned times are in
// seconds, sorted ascending.
func Arrivals(rng *rand.Rand, lambdaPerMinute float64, horizonSeconds float64) []float64 {
	if lambdaPerMinute <= 0 || horizonSeconds <= 0 {
		return nil
	}
	ratePerSecond := lambdaPerMinute / 60
	var times []float64
	t := 0.0
	for {
		// Exponential inter-arrival times.
		t += rng.ExpFloat64() / ratePerSecond
		if t >= horizonSeconds {
			return times
		}
		times = append(times, t)
	}
}
