package workload

import (
	"fmt"

	"tracon/internal/xen"
)

// The profiling workload generator of Section 3.1: CPU utilization and
// read/write request rates are each driven at five intensities
// (0%, 25%, 50%, 75%, 100%), giving 5×5×5 = 125 background workloads.
// The (0,0,0) point is the idle VM, so the grid also covers the paper's
// "no interference" baseline.

// IntensityLevels are the five generator settings.
var IntensityLevels = []float64{0, 0.25, 0.5, 0.75, 1.0}

// profileSizesKB cycles request sizes across grid points so that the
// training data spans the Dom0-cost dimension (per-KB driver-domain work),
// not just raw request rates.
var profileSizesKB = []float64{4, 16, 64, 256}

// profileSeqs is the stream sequentiality of the generator. The paper's
// generator reads from / writes to one large file, so its access pattern is
// sequential; varying it here would inject a hidden variable that none of
// the four monitored characteristics can observe.
var profileSeqs = []float64{1.0}

// RateForLevel maps an intensity level to a target request rate for the
// given disk and request size: the fraction of the device's sequential
// capacity at that size. The top setting is unthrottled (closed loop).
func RateForLevel(level float64, disk xen.DiskParams, sizeKB float64) float64 {
	if level <= 0 {
		return 0
	}
	if level >= 1 {
		return 1e9 // unthrottled: closed loop, device-limited
	}
	return level * disk.MaxSeqIOPS(sizeKB)
}

// SyntheticWorkload is one profiling grid point.
type SyntheticWorkload struct {
	Spec xen.AppSpec
	// CPULevel, ReadLevel, WriteLevel are the generator settings in [0,1].
	CPULevel, ReadLevel, WriteLevel float64
	// Index is the position in the 125-point grid.
	Index int
}

// ProfilingWorkloads returns the 125 synthetic background workloads used to
// profile an application's interference behaviour, for the given device.
func ProfilingWorkloads(disk xen.DiskParams) []SyntheticWorkload {
	var out []SyntheticWorkload
	idx := 0
	for _, cl := range IntensityLevels {
		for _, rl := range IntensityLevels {
			for _, wl := range IntensityLevels {
				size := profileSizesKB[idx%len(profileSizesKB)]
				seq := profileSeqs[(idx/len(profileSizesKB))%len(profileSeqs)]
				spec := xen.AppSpec{
					Name:            fmt.Sprintf("synth-%03d-c%.0f-r%.0f-w%.0f", idx, cl*100, rl*100, wl*100),
					Endless:         true,
					CPUDemand:       cl,
					TargetReadRate:  RateForLevel(rl, disk, size),
					TargetWriteRate: RateForLevel(wl, disk, size),
					ReqSizeKB:       size,
					Seq:             seq,
					MaxIODepth:      4,
				}
				out = append(out, SyntheticWorkload{
					Spec: spec, CPULevel: cl, ReadLevel: rl, WriteLevel: wl, Index: idx,
				})
				idx++
			}
		}
	}
	return out
}
