package workload

import "tracon/internal/xen"

// Table 1 of the paper measures two probe applications against four classes
// of co-located interference. These are the corresponding specs for the
// simulated testbed.

// Calc is the CPU-intensive probe of Table 1: pure arithmetic, no I/O.
func Calc() xen.AppSpec {
	return xen.AppSpec{Name: "calc", CPUSeconds: 600, ReqSizeKB: 4}
}

// SeqRead is the data-intensive probe of Table 1: a large sequential read.
func SeqRead() xen.AppSpec {
	return xen.AppSpec{
		Name: "seqread", CPUSeconds: 5,
		ReadOps: 100000, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4,
	}
}

// Table1Background identifies one interference class (one column of
// Table 1).
type Table1Background int

// The four Table 1 interference classes.
const (
	BGCPUHigh Table1Background = iota
	BGIOHigh
	BGBothMedium
	BGBothHigh
)

// String returns the paper's column label.
func (b Table1Background) String() string {
	switch b {
	case BGCPUHigh:
		return "CPU High"
	case BGIOHigh:
		return "I/O High"
	case BGBothMedium:
		return "CPU&I/O Medium"
	case BGBothHigh:
		return "CPU&I/O High"
	default:
		return "unknown"
	}
}

// Spec returns the background generator for the interference class. The
// "medium" class reflects what the paper's workload generator actually
// achieves at its middle setting: the spinner reaches ≈40% utilization
// (sleep quantization) and the paced I/O thread issues a few tens of
// requests per second.
func (b Table1Background) Spec() xen.AppSpec {
	switch b {
	case BGCPUHigh:
		return xen.AppSpec{Name: "bg-cpu-high", Endless: true, CPUDemand: 1.0, ReqSizeKB: 4}
	case BGIOHigh:
		return xen.AppSpec{
			Name: "bg-io-high", Endless: true, CPUDemand: 0.05,
			TargetReadRate: 1e9, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4,
		}
	case BGBothMedium:
		return xen.AppSpec{
			Name: "bg-both-med", Endless: true, CPUDemand: 0.40,
			TargetReadRate: 45, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4,
		}
	case BGBothHigh:
		return xen.AppSpec{
			Name: "bg-both-high", Endless: true, CPUDemand: 1.0,
			TargetReadRate: 1e9, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4,
		}
	default:
		return xen.Idle()
	}
}

// Table1Backgrounds returns the four classes in column order.
func Table1Backgrounds() []Table1Background {
	return []Table1Background{BGCPUHigh, BGIOHigh, BGBothMedium, BGBothHigh}
}
