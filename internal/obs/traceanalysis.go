package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Offline trace analysis: everything cmd/tracontrace prints is computed
// here, from a RunTrace alone, so the analyses are unit-testable and the
// CLI stays a thin shell. All outputs are deterministically ordered
// (sorted by app/machine/task, never by map iteration).

// TaskSpan is one task's reconstructed lifecycle.
type TaskSpan struct {
	Task      int64
	App       string
	Machine   int
	Slot      int
	Enqueued  float64
	Start     float64
	Finish    float64
	Work      float64 // solo-seconds of work
	Predicted float64 // placement-time runtime forecast
	// Completed reports that the trace holds the task's completion; tasks
	// cut off by the horizon (or the ring) have only a prefix.
	Completed bool
	Placed    bool
}

// Wait is the task's queueing delay (valid when Placed).
func (s TaskSpan) Wait() float64 { return s.Start - s.Enqueued }

// Runtime is the realized execution time (valid when Completed).
func (s TaskSpan) Runtime() float64 { return s.Finish - s.Start }

// Dilation is the execution time lost to interference: realized runtime
// minus solo work (valid when Completed).
func (s TaskSpan) Dilation() float64 { return s.Runtime() - s.Work }

// TaskSpans reconstructs per-task lifecycles from the event stream,
// sorted by task ID. Tasks whose enqueue fell out of the ring inherit
// their place time (zero wait) rather than being dropped.
func (r *RunTrace) TaskSpans() []TaskSpan {
	spans := map[int64]*TaskSpan{}
	get := func(id int64, app string) *TaskSpan {
		s, ok := spans[id]
		if !ok {
			s = &TaskSpan{Task: id, App: app, Enqueued: -1}
			spans[id] = s
		}
		return s
	}
	for _, ev := range r.Events {
		switch {
		case ev.Enqueue != nil:
			get(ev.Enqueue.Task, ev.Enqueue.App).Enqueued = ev.T
		case ev.Place != nil:
			p := ev.Place
			s := get(p.Task, p.App)
			s.Machine, s.Slot = p.Machine, p.Slot
			s.Start, s.Work, s.Predicted = ev.T, p.Work, p.Predicted
			s.Placed = true
			if s.Enqueued < 0 {
				s.Enqueued = ev.T
			}
		case ev.Complete != nil:
			c := ev.Complete
			s := get(c.Task, c.App)
			s.Finish = ev.T
			s.Completed = true
			if !s.Placed {
				// The place event fell out of the ring; recover what the
				// completion carries.
				s.Machine, s.Slot, s.Start = c.Machine, c.Slot, c.Start
				s.Enqueued = c.Start - c.Wait
				s.Placed = true
			}
		}
	}
	out := make([]TaskSpan, 0, len(spans))
	for _, s := range spans {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// AppBreakdown aggregates completed tasks per application.
type AppBreakdown struct {
	App       string
	N         int
	MeanWait  float64
	MeanExec  float64
	MeanSolo  float64
	MeanDilat float64 // mean (exec − solo): time lost to interference
	MaxWait   float64
}

// AppBreakdowns summarizes completed tasks per app, sorted by app name.
func AppBreakdowns(spans []TaskSpan) []AppBreakdown {
	acc := map[string]*AppBreakdown{}
	for _, s := range spans {
		if !s.Completed {
			continue
		}
		a, ok := acc[s.App]
		if !ok {
			a = &AppBreakdown{App: s.App}
			acc[s.App] = a
		}
		a.N++
		a.MeanWait += s.Wait()
		a.MeanExec += s.Runtime()
		a.MeanSolo += s.Work
		a.MeanDilat += s.Dilation()
		if w := s.Wait(); w > a.MaxWait {
			a.MaxWait = w
		}
	}
	out := make([]AppBreakdown, 0, len(acc))
	for _, a := range acc {
		n := float64(a.N)
		a.MeanWait /= n
		a.MeanExec /= n
		a.MeanSolo /= n
		a.MeanDilat /= n
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// TopWaits returns the k longest-waiting placed tasks, longest first
// (ties broken by task ID for determinism).
func TopWaits(spans []TaskSpan, k int) []TaskSpan {
	var placed []TaskSpan
	for _, s := range spans {
		if s.Placed {
			placed = append(placed, s)
		}
	}
	sort.Slice(placed, func(i, j int) bool {
		wi, wj := placed[i].Wait(), placed[j].Wait()
		if wi != wj {
			return wi > wj
		}
		return placed[i].Task < placed[j].Task
	})
	if k > 0 && len(placed) > k {
		placed = placed[:k]
	}
	return placed
}

// MachineTimeline summarizes one machine's contention over the trace.
type MachineTimeline struct {
	Machine int
	// Busy is slot-seconds with a task running; Contended is wall-seconds
	// with both VMs busy.
	Busy      float64
	Contended float64
	// Lost is the solo-seconds of progress lost to interference:
	// Σ (1 − rate) × segment length over all execution segments.
	Lost float64
	// Segments counts execution segments (repricings) on the machine.
	Segments int
}

// MachineTimelines reconstructs per-machine contention from segment and
// completion events, sorted by machine index. The final segment on each
// slot is closed at the trace's last event time when no completion closes
// it (horizon cut).
func (r *RunTrace) MachineTimelines() []MachineTimeline {
	type key struct{ m, s int }
	type open struct {
		start float64
		rate  float64
	}
	openSegs := map[key]open{}
	acc := map[int]*MachineTimeline{}
	get := func(m int) *MachineTimeline {
		t, ok := acc[m]
		if !ok {
			t = &MachineTimeline{Machine: m}
			acc[m] = t
		}
		return t
	}
	var lastT float64
	closeSeg := func(k key, end float64) {
		o, ok := openSegs[k]
		if !ok {
			return
		}
		dur := end - o.start
		if dur > 0 {
			t := get(k.m)
			t.Busy += dur
			t.Lost += (1 - o.rate) * dur
			if _, both := openSegs[key{k.m, 1 - k.s}]; both {
				t.Contended += dur
			}
		}
		delete(openSegs, k)
	}
	for _, ev := range r.Events {
		lastT = ev.T
		switch {
		case ev.Segment != nil:
			s := ev.Segment
			k := key{s.Machine, s.Slot}
			closeSeg(k, ev.T)
			openSegs[k] = open{start: ev.T, rate: s.Rate}
			get(s.Machine).Segments++
		case ev.Complete != nil:
			closeSeg(key{ev.Complete.Machine, ev.Complete.Slot}, ev.T)
		}
	}
	keys := make([]key, 0, len(openSegs))
	for k := range openSegs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].m != keys[j].m {
			return keys[i].m < keys[j].m
		}
		return keys[i].s < keys[j].s
	})
	for _, k := range keys {
		closeSeg(k, lastT)
	}
	out := make([]MachineTimeline, 0, len(acc))
	for _, t := range acc {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// Contention note: closeSeg checks both-slots-busy at close time using the
// sibling's open segment, which exists exactly when the sibling was
// running through this interval (any sibling membership change would have
// closed and reopened this segment too, because the engine reprices both
// slots together).

// CPHop is one hop of the completion-time critical path.
type CPHop struct {
	Task   int64
	App    string
	Reason string // "dependency", "slot", or "arrival"
	Wait   float64
	Exec   float64
}

// CriticalPath walks back from the last-finishing task: through its
// latest-finishing workflow dependency when one exists, else through the
// task whose completion freed the slot it started on (queueing pressure),
// stopping at a task that started at its arrival. Hops are returned in
// chronological order.
func (r *RunTrace) CriticalPath() []CPHop {
	spans := r.TaskSpans()
	byID := map[int64]TaskSpan{}
	deps := map[int64][]int64{}
	for _, s := range spans {
		byID[s.Task] = s
	}
	// prevOnSlot[(m,s)] at a given start time: the completion on that slot
	// with the largest finish ≤ start. Collect completions per slot.
	type key struct{ m, s int }
	finishes := map[key][]TaskSpan{}
	for _, ev := range r.Events {
		if ev.Arrival != nil && len(ev.Arrival.Deps) > 0 {
			deps[ev.Arrival.Task] = ev.Arrival.Deps
		}
	}
	var last *TaskSpan
	for i := range spans {
		s := &spans[i]
		if !s.Completed {
			continue
		}
		k := key{s.Machine, s.Slot}
		finishes[k] = append(finishes[k], *s)
		if last == nil || s.Finish > last.Finish ||
			(s.Finish == last.Finish && s.Task < last.Task) {
			last = s
		}
	}
	for k := range finishes {
		f := finishes[k]
		sort.Slice(f, func(i, j int) bool { return f[i].Finish < f[j].Finish })
		finishes[k] = f
	}
	const eps = 1e-9
	var rev []CPHop
	seen := map[int64]bool{}
	cur := last
	for cur != nil && !seen[cur.Task] {
		seen[cur.Task] = true
		hop := CPHop{Task: cur.Task, App: cur.App, Wait: cur.Wait(), Exec: cur.Runtime(), Reason: "arrival"}
		var next *TaskSpan
		// Prefer the workflow edge: the latest-finishing dependency.
		for _, d := range deps[cur.Task] {
			ds, ok := byID[d]
			if !ok || !ds.Completed {
				continue
			}
			if next == nil || ds.Finish > next.Finish {
				c := ds
				next = &c
			}
		}
		if next != nil {
			hop.Reason = "dependency"
		} else if cur.Wait() > eps {
			// Queueing: the task waited for its slot; charge the previous
			// occupant (latest completion on the slot at or before start).
			f := finishes[key{cur.Machine, cur.Slot}]
			idx := sort.Search(len(f), func(i int) bool { return f[i].Finish > cur.Start+eps })
			for i := idx - 1; i >= 0; i-- {
				if f[i].Task != cur.Task {
					c := f[i]
					next = &c
					hop.Reason = "slot"
					break
				}
			}
		}
		rev = append(rev, hop)
		cur = next
	}
	// Chronological order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// MachineDowntime is one machine's aggregate crash record.
type MachineDowntime struct {
	Machine int
	// Downs counts crash transitions; Downtime is the wall-seconds spent
	// down (an unrecovered crash is closed at the trace's last event time).
	Downs    int
	Downtime float64
}

// FaultReport summarizes a fault-injected run's recovery behaviour.
type FaultReport struct {
	// Counts is events per fault kind (fail, timeout, evict, retry, lost,
	// machine_down, machine_up), sorted by kind.
	Counts map[string]int
	// Downtimes is the per-machine crash record, sorted by machine.
	Downtimes []MachineDowntime
	// RetriedTasks and LostTasks count distinct tasks that were retried at
	// least once and abandoned, respectively.
	RetriedTasks int
	LostTasks    int
}

// Empty reports that the trace holds no fault events at all.
func (f *FaultReport) Empty() bool { return len(f.Counts) == 0 }

// Faults reconstructs the run's fault-recovery summary from its fault
// events (empty for fault-free traces).
func (r *RunTrace) Faults() *FaultReport {
	rep := &FaultReport{Counts: map[string]int{}}
	downAt := map[int]float64{}
	acc := map[int]*MachineDowntime{}
	retried := map[int64]bool{}
	lost := map[int64]bool{}
	var lastT float64
	for _, ev := range r.Events {
		lastT = ev.T
		if ev.Fault == nil {
			continue
		}
		rep.Counts[ev.Kind]++
		switch ev.Kind {
		case "machine_down":
			m := ev.Fault.Machine
			d, ok := acc[m]
			if !ok {
				d = &MachineDowntime{Machine: m}
				acc[m] = d
			}
			d.Downs++
			downAt[m] = ev.T
		case "machine_up":
			m := ev.Fault.Machine
			if at, ok := downAt[m]; ok {
				acc[m].Downtime += ev.T - at
				delete(downAt, m)
			}
		case "retry":
			retried[ev.Fault.Task] = true
		case "lost":
			lost[ev.Fault.Task] = true
		}
	}
	for m, at := range downAt {
		acc[m].Downtime += lastT - at
	}
	for _, d := range acc {
		rep.Downtimes = append(rep.Downtimes, *d)
	}
	sort.Slice(rep.Downtimes, func(i, j int) bool {
		return rep.Downtimes[i].Machine < rep.Downtimes[j].Machine
	})
	rep.RetriedTasks = len(retried)
	rep.LostTasks = len(lost)
	return rep
}

// ServeAppStats aggregates one application's serving-path lifecycle.
type ServeAppStats struct {
	App       string
	Admits    int
	Places    int
	Completes int
	// MeanWait is the mean admit→place delay, MeanLifetime the mean
	// admit→complete span (seconds), over tasks whose events are all in
	// the ring.
	MeanWait     float64
	MeanLifetime float64
}

// ServeSummary is the offline analysis of a tracond trace: span counts by
// kind, per-app lifecycle joins (by placement ID), and scheduling-pass
// duration stats.
type ServeSummary struct {
	Kinds map[string]int
	Apps  []ServeAppStats
	// Passes counts batch_pass spans; PassMeanS/PassMaxS their durations.
	Passes    int
	PassMeanS float64
	PassMaxS  float64
	// CoalesceMeanS is the mean coalesce_wait duration.
	Coalesced     int
	CoalesceMeanS float64
}

// IsServe reports whether the run carries serving-path spans.
func (r *RunTrace) IsServe() bool {
	for _, ev := range r.Events {
		if ev.Serve != nil {
			return true
		}
	}
	return false
}

// ServeSummarize computes the serving-run analysis.
func (r *RunTrace) ServeSummarize() ServeSummary {
	sum := ServeSummary{Kinds: map[string]int{}}
	type life struct {
		app                    string
		admitT, placeT, endT   float64
		admit, placed, compled bool
	}
	lives := map[string]*life{}
	get := func(task, app string) *life {
		l, ok := lives[task]
		if !ok {
			l = &life{app: app}
			lives[task] = l
		}
		if l.app == "" {
			l.app = app
		}
		return l
	}
	for _, ev := range r.Events {
		sv := ev.Serve
		if sv == nil {
			continue
		}
		sum.Kinds[ev.Kind]++
		switch ev.Kind {
		case "admit":
			l := get(sv.Task, sv.App)
			l.admit, l.admitT = true, ev.T
		case "place":
			l := get(sv.Task, sv.App)
			l.placed, l.placeT = true, ev.T
		case "complete":
			l := get(sv.Task, sv.App)
			l.compled, l.endT = true, ev.T
		case "batch_pass":
			sum.Passes++
			sum.PassMeanS += sv.DurS
			if sv.DurS > sum.PassMaxS {
				sum.PassMaxS = sv.DurS
			}
		case "coalesce_wait":
			sum.Coalesced++
			sum.CoalesceMeanS += sv.DurS
		}
	}
	if sum.Passes > 0 {
		sum.PassMeanS /= float64(sum.Passes)
	}
	if sum.Coalesced > 0 {
		sum.CoalesceMeanS /= float64(sum.Coalesced)
	}
	apps := map[string]*ServeAppStats{}
	for _, l := range lives {
		a, ok := apps[l.app]
		if !ok {
			a = &ServeAppStats{App: l.app}
			apps[l.app] = a
		}
		if l.admit {
			a.Admits++
		}
		if l.placed {
			a.Places++
		}
		if l.compled {
			a.Completes++
		}
		if l.admit && l.placed {
			a.MeanWait += l.placeT - l.admitT
		}
		if l.admit && l.compled {
			a.MeanLifetime += l.endT - l.admitT
		}
	}
	for _, a := range apps {
		if n := min(a.Admits, a.Places); n > 0 {
			a.MeanWait /= float64(n)
		}
		if n := min(a.Admits, a.Completes); n > 0 {
			a.MeanLifetime /= float64(n)
		}
		sum.Apps = append(sum.Apps, *a)
	}
	sort.Slice(sum.Apps, func(i, j int) bool { return sum.Apps[i].App < sum.Apps[j].App })
	return sum
}

// summarizeServe writes the serving-run report.
func (r *RunTrace) summarizeServe(w io.Writer) {
	sum := r.ServeSummarize()
	fmt.Fprintf(w, "serving-path spans:\n")
	kinds := make([]string, 0, len(sum.Kinds))
	for k := range sum.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-14s %6d\n", k, sum.Kinds[k])
	}
	fmt.Fprintf(w, "\nper-app lifecycle (admit→place→complete, joined by placement ID):\n")
	fmt.Fprintf(w, "  %-10s %8s %8s %10s %12s %12s\n", "app", "admits", "places", "completes", "mean wait", "mean life")
	for _, a := range sum.Apps {
		fmt.Fprintf(w, "  %-10s %8d %8d %10d %10.2fms %10.2fms\n",
			a.App, a.Admits, a.Places, a.Completes, a.MeanWait*1e3, a.MeanLifetime*1e3)
	}
	if sum.Passes > 0 {
		fmt.Fprintf(w, "\nscheduling passes: %d (mean %.2fms, max %.2fms)\n",
			sum.Passes, sum.PassMeanS*1e3, sum.PassMaxS*1e3)
	}
	if sum.Coalesced > 0 {
		fmt.Fprintf(w, "coalesced submissions: %d (mean wait %.2fms)\n",
			sum.Coalesced, sum.CoalesceMeanS*1e3)
	}
}

// Summarize writes the CLI's full human-readable analysis of one run.
func (r *RunTrace) Summarize(w io.Writer, topK int) {
	fmt.Fprintf(w, "run %s\n", r.Label)
	fmt.Fprintf(w, "  scheduler %s, %d machines, %d events (%d dropped)\n",
		r.Scheduler, r.Machines, r.Total, r.Dropped)
	if r.IsServe() {
		r.summarizeServe(w)
		return
	}
	spans := r.TaskSpans()
	completed := 0
	for _, s := range spans {
		if s.Completed {
			completed++
		}
	}
	fmt.Fprintf(w, "  tasks in trace: %d (%d completed)\n\n", len(spans), completed)

	fmt.Fprintf(w, "per-app breakdown (completed tasks):\n")
	fmt.Fprintf(w, "  %-10s %6s %10s %10s %10s %10s %10s\n",
		"app", "n", "wait", "exec", "solo", "dilation", "max wait")
	for _, a := range AppBreakdowns(spans) {
		fmt.Fprintf(w, "  %-10s %6d %9.1fs %9.1fs %9.1fs %9.1fs %9.1fs\n",
			a.App, a.N, a.MeanWait, a.MeanExec, a.MeanSolo, a.MeanDilat, a.MaxWait)
	}

	fmt.Fprintf(w, "\ntop %d longest-waiting tasks:\n", topK)
	fmt.Fprintf(w, "  %-8s %-10s %10s %10s %10s\n", "task", "app", "wait", "exec", "machine/vm")
	for _, s := range TopWaits(spans, topK) {
		exec := "-"
		if s.Completed {
			exec = fmt.Sprintf("%.1fs", s.Runtime())
		}
		fmt.Fprintf(w, "  %-8d %-10s %9.1fs %10s %7d/%d\n",
			s.Task, s.App, s.Wait(), exec, s.Machine, s.Slot)
	}

	fmt.Fprintf(w, "\nper-machine contention:\n")
	fmt.Fprintf(w, "  %-8s %12s %12s %12s %9s\n", "machine", "busy slot-s", "contended s", "lost solo-s", "segments")
	tls := r.MachineTimelines()
	const maxMachines = 20
	shown := tls
	if len(shown) > maxMachines {
		shown = shown[:maxMachines]
	}
	for _, t := range shown {
		fmt.Fprintf(w, "  %-8d %12.1f %12.1f %12.1f %9d\n",
			t.Machine, t.Busy, t.Contended, t.Lost, t.Segments)
	}
	if len(tls) > len(shown) {
		var busy, cont, lost float64
		for _, t := range tls {
			busy += t.Busy
			cont += t.Contended
			lost += t.Lost
		}
		fmt.Fprintf(w, "  (… %d more machines; totals: busy %.1f, contended %.1f, lost %.1f)\n",
			len(tls)-len(shown), busy, cont, lost)
	}

	if faults := r.Faults(); !faults.Empty() {
		fmt.Fprintf(w, "\nfault injection & recovery:\n")
		kinds := make([]string, 0, len(faults.Counts))
		for k := range faults.Counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "  %-14s %6d\n", k, faults.Counts[k])
		}
		if len(faults.Downtimes) > 0 {
			fmt.Fprintf(w, "  machine downtime:\n")
			for _, d := range faults.Downtimes {
				fmt.Fprintf(w, "    machine %-4d %d crash(es), %.1fs down\n", d.Machine, d.Downs, d.Downtime)
			}
		}
		fmt.Fprintf(w, "  tasks retried: %d, tasks lost: %d\n", faults.RetriedTasks, faults.LostTasks)
	}

	cp := r.CriticalPath()
	fmt.Fprintf(w, "\ncompletion-time critical path (%d hops):\n", len(cp))
	for _, h := range cp {
		fmt.Fprintf(w, "  task %-6d %-10s wait %8.1fs  exec %8.1fs  via %s\n",
			h.Task, h.App, h.Wait, h.Exec, h.Reason)
	}
	if len(cp) > 0 {
		var wait, exec float64
		for _, h := range cp {
			wait += h.Wait
			exec += h.Exec
		}
		fmt.Fprintf(w, "  path total: wait %.1fs + exec %.1fs = %.1fs\n", wait, exec, wait+exec)
	}
}

// FindRuns filters runs whose label contains the substring (all runs when
// the filter is empty), preserving order.
func FindRuns(runs []*RunTrace, filter string) []*RunTrace {
	if filter == "" {
		return runs
	}
	var out []*RunTrace
	for _, r := range runs {
		if strings.Contains(r.Label, filter) {
			out = append(out, r)
		}
	}
	return out
}
