package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/sched"
	"tracon/internal/sim"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

var (
	tblOnce sync.Once
	tbl     *sim.InterferenceTable
	tblTB   *xen.Testbed
)

func table(t *testing.T) *sim.InterferenceTable {
	t.Helper()
	tblOnce.Do(func() {
		host, err := xen.NewHost(xen.DefaultHost())
		if err != nil {
			panic(err)
		}
		tblTB = xen.NewTestbed(host, 1, 0, 1)
		var specs []xen.AppSpec
		for _, b := range workload.Benchmarks() {
			specs = append(specs, b.Spec)
		}
		tbl, err = sim.BuildInterferenceTable(host, specs)
		if err != nil {
			panic(err)
		}
	})
	return tbl
}

func oracle(t *testing.T) model.Predictor {
	t.Helper()
	table(t)
	var specs []xen.AppSpec
	for _, b := range workload.Benchmarks() {
		specs = append(specs, b.Spec)
	}
	return model.NewOracle(tblTB, specs)
}

func genTasks(seed int64, n int, spacing float64) []sched.Task {
	mix := workload.NewMixer(seed)
	batch := mix.Batch(workload.MediumIO, n)
	tasks := make([]sched.Task, n)
	tm := 0.0
	for i, spec := range batch {
		if i%5 != 0 {
			tm += spacing * float64(1+(i*2654435761)%4)
		}
		tasks[i] = sched.Task{ID: int64(i), App: workload.BaseName(spec.Name), Arrival: tm}
	}
	return tasks
}

// runObserved executes one MIBS run with the given observer attached.
func runObserved(t *testing.T, o sim.Observer, seed int64, n int) *sim.Results {
	t.Helper()
	s := &sched.MIBS{Scorer: sched.NewScorer(oracle(t), sched.MinRuntime), QueueLen: 6}
	eng, err := sim.NewEngine(sim.Config{Machines: 4, Scheduler: s, Table: table(t), Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(genTasks(seed, n, 20), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("c_" + name).Add(3)
			r.Gauge("g_" + name).Set(7)
			r.Histogram("h_"+name, []float64{1, 10}).Observe(5)
		}
		return r
	}
	a := build([]string{"x", "y", "z"}).Snapshot()
	b := build([]string{"z", "x", "y"}).Snapshot()
	if len(a) != 9 || len(a) != len(b) {
		t.Fatalf("snapshot sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind || a[i].Value != b[i].Value {
			t.Fatalf("snapshot order differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1} // ≤1: {0.5,1}; ≤2: {1.5}; ≤4: {3}; over: {100}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s)
		}
	}
	if s.N != 5 || s.Mean() != 106.0/5 {
		t.Fatalf("n=%d mean=%v", s.N, s.Mean())
	}
	if g := (&Gauge{}); func() float64 { g.Set(3); g.Set(1); return g.Max() }() != 3 {
		t.Fatal("gauge max not retained")
	}
}

func TestSimStatsEndToEnd(t *testing.T) {
	stats := NewSimStats("test-run")
	audit := NewAuditor()
	res := runObserved(t, Multi{stats, audit}, 3, 150)

	if n := audit.Total(); n != 0 {
		t.Fatalf("auditor found %d violations on a healthy run:\n%s", n, audit.Summary())
	}
	if !strings.Contains(audit.Summary(), "0 violations") {
		t.Fatalf("summary: %s", audit.Summary())
	}
	s := stats.Snapshot(true)
	if s.Completed != res.CompletedCount || s.Completed == 0 {
		t.Fatalf("stats completed %d, results %d", s.Completed, res.CompletedCount)
	}
	if s.Events["arrival"] != int64(res.Submitted) {
		t.Fatalf("arrival events %d, submitted %d", s.Events["arrival"], res.Submitted)
	}
	if s.Events["completion"] != int64(res.CompletedCount) {
		t.Fatalf("completion events %d, completed %d", s.Events["completion"], res.CompletedCount)
	}
	if s.SlotUtilization <= 0 || s.SlotUtilization > 1 {
		t.Fatalf("slot utilization %v out of (0,1]", s.SlotUtilization)
	}
	if s.EnergyJ <= 0 {
		t.Fatalf("energy %v", s.EnergyJ)
	}
	if len(s.PerApp) == 0 {
		t.Fatal("no per-app prediction error collected")
	}
	for _, a := range s.PerApp {
		if a.N <= 0 || a.MeanAbsRelErr < 0 || a.MeanRealized <= 0 {
			t.Fatalf("per-app stats malformed: %+v", a)
		}
	}
	if s.SchedCalls == 0 || s.PopsTotal == 0 {
		t.Fatalf("scheduler/pool hooks never fired: %+v", s)
	}
	if len(s.QueueTimeline) == 0 || s.MaxQueueLen == 0 {
		t.Fatal("queue timeline empty")
	}
}

// TestMetricsExportDeterministic: two identical runs must export
// byte-identical JSON and CSV (wall latency excluded).
func TestMetricsExportDeterministic(t *testing.T) {
	export := func() (string, string) {
		c := NewCollector()
		label := RunLabel("test", "mibs", 4, genTasks(3, 100, 20))
		runObserved(t, c.Observer(label), 3, 100)
		var j, v bytes.Buffer
		if err := c.WriteJSON(&j, false); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteCSV(&v); err != nil {
			t.Fatal(err)
		}
		return j.String(), v.String()
	}
	j1, c1 := export()
	j2, c2 := export()
	if j1 != j2 {
		t.Fatal("JSON export differs between identical runs")
	}
	if c1 != c2 {
		t.Fatal("CSV export differs between identical runs")
	}
	if !strings.Contains(c1, "slot_utilization") {
		t.Fatalf("csv header missing: %q", c1[:80])
	}
}

// TestAuditorCatchesViolations feeds the auditor fabricated bad inputs
// through a View captured from a real (healthy, finished) run.
func TestAuditorCatchesViolations(t *testing.T) {
	var captured sim.View
	grab := viewGrabber{v: &captured}
	runObserved(t, grab, 5, 40)

	t.Run("time-backwards", func(t *testing.T) {
		a := NewAuditor()
		if err := a.OnEvent(captured, sim.EvArrival, 100); err != nil {
			t.Fatalf("first event: %v", err)
		}
		if err := a.OnEvent(captured, sim.EvArrival, 50); err == nil {
			t.Fatal("clock regression not caught")
		}
	})
	t.Run("residual-work", func(t *testing.T) {
		a := NewAuditor()
		c := sim.Completion{Residual: 0.5}
		c.Record.Task.ID = 7
		c.Record.Task.App = "email"
		if err := a.OnComplete(captured, c); err == nil {
			t.Fatal("leftover work at completion not caught")
		}
		if err := a.OnComplete(captured, sim.Completion{Residual: 1e-9}); err != nil {
			t.Fatalf("tolerable residual rejected: %v", err)
		}
	})
	t.Run("unfair-pop", func(t *testing.T) {
		a := NewAuditor()
		p := sim.PopInfo{Category: sched.AnyCategory, Machine: 1, Slot: 0,
			OldestMachine: 0, OldestSlot: 1, OldestOK: true}
		if err := a.OnPop(captured, p); err == nil {
			t.Fatal("FIFO-unfair pop not caught")
		}
		fair := sim.PopInfo{Category: sched.AnyCategory, Machine: 0, Slot: 1,
			OldestMachine: 0, OldestSlot: 1, OldestOK: true}
		if err := a.OnPop(captured, fair); err != nil {
			t.Fatalf("fair pop rejected: %v", err)
		}
		if err := a.OnPop(captured, sim.PopInfo{Category: "email", Machine: 9}); err != nil {
			t.Fatalf("category pop must be exempt from FIFO check: %v", err)
		}
	})
	t.Run("non-strict-tallies", func(t *testing.T) {
		a := &InvariantAuditor{Every: 1 << 30} // skip full scans; O(1) checks only
		if err := a.OnEvent(captured, sim.EvArrival, 100); err != nil {
			t.Fatal(err)
		}
		if err := a.OnEvent(captured, sim.EvArrival, 50); err != nil {
			t.Fatalf("non-strict auditor must not abort: %v", err)
		}
		if err := a.OnComplete(captured, sim.Completion{Residual: 2}); err != nil {
			t.Fatalf("non-strict auditor must not abort: %v", err)
		}
		if a.Total() != 2 {
			t.Fatalf("tallied %d violations, want 2", a.Total())
		}
		if !strings.Contains(a.Summary(), "2 VIOLATIONS") {
			t.Fatalf("summary: %s", a.Summary())
		}
	})
}

// viewGrabber captures the engine's View handle for post-run fabrication
// of auditor inputs.
type viewGrabber struct{ v *sim.View }

func (g viewGrabber) OnEvent(v sim.View, _ sim.EventKind, _ float64) error { *g.v = v; return nil }
func (g viewGrabber) OnComplete(sim.View, sim.Completion) error            { return nil }
func (g viewGrabber) OnPop(sim.View, sim.PopInfo) error                    { return nil }
func (g viewGrabber) OnSchedule(sim.View, sim.ScheduleInfo) error          { return nil }
func (g viewGrabber) OnDone(sim.View, *sim.Results) error                  { return nil }

func TestRunLabelDeterministic(t *testing.T) {
	tasks := genTasks(11, 30, 10)
	a := RunLabel("fig3", "tracon", 8, tasks)
	b := RunLabel("fig3", "tracon", 8, genTasks(11, 30, 10))
	if a != b {
		t.Fatalf("labels differ for identical inputs: %s vs %s", a, b)
	}
	tasks[0].Arrival += 1
	if RunLabel("fig3", "tracon", 8, tasks) == a {
		t.Fatal("label insensitive to task stream")
	}
	if RunLabel("fig3", "tracon", 16, genTasks(11, 30, 10)) == a {
		t.Fatal("label insensitive to cluster size")
	}
}
