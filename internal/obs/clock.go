package obs

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts every timing primitive the serving daemon uses: reading
// the current instant, measuring elapsed time, and arming one-shot timers.
// Production code runs on Wall; the deterministic simulation harness
// (internal/dst) substitutes a VirtualClock so the entire daemon advances
// only when the test calls Advance.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	// AfterFunc arms a one-shot timer that calls fn after d has elapsed
	// on this clock. fn runs on its own goroutine for the wall clock and
	// on the Advance goroutine for a VirtualClock; either way it must not
	// block indefinitely.
	AfterFunc(d time.Duration, fn func()) Timer
}

// Timer is the stoppable handle returned by Clock.AfterFunc. Stop reports
// whether the call prevented the timer from firing.
type Timer interface {
	Stop() bool
}

// Wall is the production clock, backed by the runtime's real timers.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                  { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	return time.AfterFunc(d, fn)
}

// VirtualClock is a manually advanced clock with deterministic timer
// delivery. Timers due at or before the new instant fire synchronously
// inside Advance, ordered by deadline and then by arm order, with the
// clock set to each timer's deadline while its callback runs. Callbacks
// execute without the clock lock held, so they may read Now or arm new
// timers (which fire in the same Advance if still due).
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int64
	timers timerHeap
}

// NewVirtualClock returns a VirtualClock whose Now starts at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// AfterFunc arms fn to run when the clock is advanced to or past d from
// the current virtual instant. A non-positive d fires on the next Advance
// (including Advance(0)), mirroring the runtime's "already expired" case
// without spawning a goroutine.
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &virtualTimer{
		clock: c,
		when:  c.now.Add(d),
		seq:   c.seq,
		fn:    fn,
	}
	c.seq++
	heap.Push(&c.timers, t)
	return t
}

// Advance moves the clock forward by d, firing every due timer in
// deterministic order. It returns the number of timers fired. Negative d
// is treated as zero: virtual time never goes backwards.
func (c *VirtualClock) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	target := c.now.Add(d)
	fired := 0
	for {
		if len(c.timers) == 0 || c.timers[0].when.After(target) {
			break
		}
		t := heap.Pop(&c.timers).(*virtualTimer)
		if t.stopped {
			continue
		}
		t.fired = true
		// Deliver the timer at its own deadline, not the target, so a
		// callback reading Now sees the instant it was scheduled for.
		if t.when.After(c.now) {
			c.now = t.when
		}
		c.mu.Unlock()
		t.fn()
		c.mu.Lock()
		fired++
	}
	if target.After(c.now) {
		c.now = target
	}
	c.mu.Unlock()
	return fired
}

// PendingTimers reports how many armed, unfired timers are outstanding.
func (c *VirtualClock) PendingTimers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

type virtualTimer struct {
	clock   *VirtualClock
	when    time.Time
	seq     int64
	fn      func()
	index   int
	stopped bool
	fired   bool
}

func (t *virtualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap orders timers by deadline, breaking ties by arm order so
// delivery is deterministic regardless of heap internals.
type timerHeap []*virtualTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*virtualTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
