package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestLabeledSortsAndEscapes(t *testing.T) {
	got := Labeled("serve.http_requests", "route", "/v1/tasks", "code", "2xx")
	want := `serve.http_requests{code="2xx",route="/v1/tasks"}`
	if got != want {
		t.Fatalf("Labeled = %q, want %q", got, want)
	}
	// Same pairs, different order → same registry key.
	if again := Labeled("serve.http_requests", "code", "2xx", "route", "/v1/tasks"); again != got {
		t.Fatalf("Labeled not order-independent: %q vs %q", again, got)
	}
	// Exposition escaping: backslash, quote, newline.
	esc := Labeled("m", "k", "a\\b\"c\nd")
	if want := `m{k="a\\b\"c\nd"}`; esc != want {
		t.Fatalf("escaped Labeled = %q, want %q", esc, want)
	}
}

func TestLabeledOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Labeled with odd kv count did not panic")
		}
	}()
	Labeled("m", "key-without-value")
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"serve.request_seconds", "serve_request_seconds"},
		{"a-b c", "a_b_c"},
		{"9lives", "_9lives"},
		{"ok_name:sub", "ok_name:sub"},
	} {
		if got := sanitizeName(tc.in); got != tc.want {
			t.Errorf("sanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// testRegistry builds the fixture the golden file and the parser tests
// share: every metric kind, labeled and unlabeled, with values chosen to
// exercise bucket accumulation.
func testRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("serve.tasks_submitted").Add(42)
	reg.Counter(Labeled("serve.http_requests", "code", "2xx", "route", "/v1/tasks")).Add(40)
	reg.Counter(Labeled("serve.http_requests", "code", "4xx", "route", "/v1/tasks")).Add(2)
	reg.Gauge("serve.queue_depth").Set(7)
	h := reg.Histogram(Labeled("serve.http_request_seconds", "route", "/v1/tasks"), []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusWellFormed asserts the structural exposition rules on
// the rendered output: one TYPE line per family, cumulative bucket series
// ending at le="+Inf" equal to _count, and monotone bucket counts.
func TestWritePrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	typeSeen := map[string]int{}
	var lastCum float64 = -1
	var infVal, countVal float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			typeSeen[fields[2]+" "+fields[3]]++
			continue
		}
		name, labels, v, err := parsePromLine(line)
		if err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		for _, r := range name {
			ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				t.Errorf("metric name %q outside the exposition alphabet", name)
			}
		}
		if name == "serve_http_request_seconds_bucket" {
			if labels["le"] == "+Inf" {
				infVal = v
				continue
			}
			if v < lastCum {
				t.Errorf("bucket counts not cumulative: le=%s has %v after %v", labels["le"], v, lastCum)
			}
			lastCum = v
		}
		if name == "serve_http_request_seconds_count" {
			countVal = v
		}
	}
	for fam, n := range typeSeen {
		if n != 1 {
			t.Errorf("family %q has %d TYPE lines", fam, n)
		}
	}
	if infVal != countVal || infVal != 5 {
		t.Errorf("le=+Inf bucket %v and _count %v must both equal 5", infVal, countVal)
	}
}

func TestParsePrometheusHistogramRoundTrip(t *testing.T) {
	reg := testRegistry()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	ph, err := ParsePrometheusHistogram(&buf,
		"serve_http_request_seconds", map[string]string{"route": "/v1/tasks"})
	if err != nil {
		t.Fatal(err)
	}
	snap := ph.Snapshot()
	orig := reg.Histogram(Labeled("serve.http_request_seconds", "route", "/v1/tasks"), nil).Snapshot()
	if snap.N != orig.N || snap.Sum != orig.Sum {
		t.Fatalf("round-trip N/Sum = %d/%v, want %d/%v", snap.N, snap.Sum, orig.N, orig.Sum)
	}
	for i := range orig.Counts {
		if snap.Counts[i] != orig.Counts[i] {
			t.Fatalf("bucket %d: %d != %d", i, snap.Counts[i], orig.Counts[i])
		}
	}
	if got, want := snap.Quantile(0.5), orig.Quantile(0.5); got != want {
		t.Fatalf("round-trip p50 %v != %v", got, want)
	}
}

func TestPromHistogramSub(t *testing.T) {
	base := PromHistogram{Bounds: []float64{1, 2}, Cumulative: []int64{3, 5}, Sum: 4, Count: 6}
	later := PromHistogram{Bounds: []float64{1, 2}, Cumulative: []int64{10, 14}, Sum: 20, Count: 16}
	d := later.Sub(base)
	if d.Count != 10 || d.Sum != 16 {
		t.Fatalf("Sub count/sum = %d/%v, want 10/16", d.Count, d.Sum)
	}
	if d.Cumulative[0] != 7 || d.Cumulative[1] != 9 {
		t.Fatalf("Sub cumulative = %v, want [7 9]", d.Cumulative)
	}
	snap := d.Snapshot()
	// Per-bucket: 7, 2, overflow 10-9=1.
	if snap.Counts[0] != 7 || snap.Counts[1] != 2 || snap.Counts[2] != 1 {
		t.Fatalf("Sub snapshot counts = %v, want [7 2 1]", snap.Counts)
	}
}

// TestSnapshotStableUnderConcurrentWriters hammers one registry from many
// goroutines while snapshotting: every snapshot must keep the sorted
// (kind, name) order and never tear (run under -race in CI).
func TestSnapshotStableUnderConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter(fmt.Sprintf("c.%d", w)).Inc()
				reg.Gauge(fmt.Sprintf("g.%d", w)).Set(float64(i))
				reg.Histogram(Labeled("h", "w", strconv.Itoa(w)), []float64{1, 2, 4}).Observe(float64(i % 5))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		points := reg.Snapshot()
		for j := 1; j < len(points); j++ {
			a, b := points[j-1], points[j]
			if a.Kind > b.Kind || (a.Kind == b.Kind && a.Name >= b.Name) {
				t.Fatalf("snapshot %d unsorted at %d: (%s %s) before (%s %s)",
					i, j, a.Kind, a.Name, b.Kind, b.Name)
			}
		}
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, points); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
