package obs

import (
	"math"
	"testing"
)

func TestLatencySummaryEmpty(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets())
	s := h.Latency()
	if s.N != 0 || s.Mean != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram summary not zero: %+v", s)
	}
}

func TestLatencySummarySingleSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	s := h.Latency()
	if s.N != 1 {
		t.Fatalf("n = %d", s.N)
	}
	if s.Mean != 1.5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// With one observation every quantile lands in the same bucket (1,2];
	// the estimates must agree with each other and stay inside the bucket.
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q < 1 || q > 2 {
			t.Fatalf("quantile %v outside the observed bucket", q)
		}
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestLatencySummaryMatchesQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(0.001, 2, 20))
	for i := 0; i < 1000; i++ {
		h.Observe(0.001 * float64(i+1))
	}
	snap := h.Snapshot()
	s := snap.Latency()
	if s.P50 != snap.Quantile(0.50) || s.P95 != snap.Quantile(0.95) || s.P99 != snap.Quantile(0.99) {
		t.Fatalf("summary disagrees with Quantile: %+v", s)
	}
	if s.N != 1000 {
		t.Fatalf("n = %d", s.N)
	}
	if math.Abs(s.Mean-snap.Mean()) > 1e-12 {
		t.Fatalf("mean disagrees: %v vs %v", s.Mean, snap.Mean())
	}
	// Sanity: the p50 estimate should sit near the true median 0.5s.
	if s.P50 < 0.3 || s.P50 > 0.8 {
		t.Fatalf("p50 estimate %v implausible for uniform 0..1s", s.P50)
	}
}

func TestLatencySummaryOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100) // overflow
	s := h.Latency()
	// The histogram cannot see beyond its last bound: the estimate is the
	// documented lower bound, not a fabricated value.
	if s.P99 != 1 {
		t.Fatalf("overflow p99 = %v, want last bound 1", s.P99)
	}
}
