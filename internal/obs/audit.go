package obs

import (
	"fmt"
	"strings"
	"sync"

	"tracon/internal/sched"
	"tracon/internal/sim"
)

// InvariantAuditor is a sim.Observer that validates the engine's internal
// consistency as the simulation runs:
//
//   - event-time monotonicity: the clock never goes backwards;
//   - energy monotonicity: integrated energy never decreases;
//   - work conservation: no running task's remaining work is negative, and
//     every completed task's pre-clamp residual settles to zero within
//     float tolerance;
//   - pool⟺machine consistency: a slot is free in the pool exactly when no
//     task occupies it on the machine, its category matches a co-resident
//     application (or Empty on an idle machine), and the pool's per-category
//     counts sum to its free-slot total;
//   - FIFO fairness: every AnyCategory pop returns the slot that had been
//     free the longest, per the pool's own pre-pop OldestFree snapshot.
//
// The full-state scan runs only from OnEvent (where the engine guarantees
// a consistent snapshot — OnComplete and OnPop fire mid-transition) and can
// be sampled via Every to keep large runs cheap. In Strict mode (the
// default via NewAuditor) the first violation aborts the run with an error;
// otherwise violations are tallied and kept for Summary.
type InvariantAuditor struct {
	mu sync.Mutex

	// Every samples the O(slots) full-state scan to one in Every events;
	// values < 1 mean every event. Cheap O(1) checks always run.
	Every int
	// Strict aborts the run on the first violation.
	Strict bool

	lastTime   float64
	lastEnergy float64
	started    bool

	events     int64
	fullScans  int64
	popChecks  int64
	completes  int64
	total      int64
	violations []Violation
}

// Violation is one recorded invariant failure.
type Violation struct {
	Time   float64
	Kind   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%.6f %s: %s", v.Time, v.Kind, v.Detail)
}

// keptViolations bounds the recorded (not counted) violations.
const keptViolations = 100

// NewAuditor returns a strict auditor that full-scans every event.
func NewAuditor() *InvariantAuditor {
	return &InvariantAuditor{Every: 1, Strict: true}
}

func (a *InvariantAuditor) report(now float64, kind, format string, args ...any) error {
	viol := Violation{Time: now, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	a.total++
	if len(a.violations) < keptViolations {
		a.violations = append(a.violations, viol)
	}
	if a.Strict {
		return fmt.Errorf("obs: invariant violated: %s", viol)
	}
	return nil
}

// OnEvent runs the monotonicity checks and (sampled) the full-state scan.
func (a *InvariantAuditor) OnEvent(v sim.View, kind sim.EventKind, now float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.events++
	if a.started {
		if now < a.lastTime {
			if err := a.report(now, "time-monotonicity",
				"clock went backwards: %.9f after %.9f", now, a.lastTime); err != nil {
				return err
			}
		}
		if e := v.EnergyJ(); e < a.lastEnergy-1e-9 {
			if err := a.report(now, "energy-monotonicity",
				"energy decreased: %.9f J after %.9f J", e, a.lastEnergy); err != nil {
				return err
			}
		}
	}
	a.started = true
	a.lastTime = now
	a.lastEnergy = v.EnergyJ()

	every := a.Every
	if every < 1 {
		every = 1
	}
	if a.events%int64(every) != 0 {
		return nil
	}
	a.fullScans++
	return a.scan(v, now)
}

// scan validates the pool-vs-machine slot state and work conservation for
// every slot in the cluster. Callers hold a.mu.
func (a *InvariantAuditor) scan(v sim.View, now float64) error {
	machines := v.Machines()
	slotsPer := 0
	if machines > 0 {
		slotsPer = v.TotalSlots() / machines
	}
	freeSeen := 0
	countsSeen := sched.Counts{}
	for m := 0; m < machines; m++ {
		if v.MachineDown(m) {
			// A crashed machine must be fully evacuated: nothing running,
			// nothing offered to the pool.
			for s := 0; s < slotsPer; s++ {
				if app, _, running := v.Slot(m, s); running {
					if err := a.report(now, "fault-consistency",
						"machine %d is down but slot %d runs %q", m, s, app); err != nil {
						return err
					}
				}
				if cat, free := v.PoolCategory(m, s); free {
					if err := a.report(now, "fault-consistency",
						"machine %d is down but the pool lists slot %d free (category %q)", m, s, cat); err != nil {
						return err
					}
				}
			}
			continue
		}
		// Apps running on this machine, for category validation.
		var neighbours []string
		for s := 0; s < slotsPer; s++ {
			if app, _, running := v.Slot(m, s); running {
				neighbours = append(neighbours, app)
			}
		}
		for s := 0; s < slotsPer; s++ {
			app, workLeft, running := v.Slot(m, s)
			cat, free := v.PoolCategory(m, s)
			if running && free {
				if err := a.report(now, "pool-consistency",
					"slot %d/%d runs %q but the pool lists it free (category %q)", m, s, app, cat); err != nil {
					return err
				}
			}
			if !running && !free {
				if err := a.report(now, "pool-consistency",
					"slot %d/%d is idle but the pool does not list it free", m, s); err != nil {
					return err
				}
			}
			if running && workLeft < -1e-9 {
				if err := a.report(now, "work-conservation",
					"slot %d/%d task %q has negative remaining work %.9g", m, s, app, workLeft); err != nil {
					return err
				}
			}
			if free {
				freeSeen++
				countsSeen[cat]++
				if cat == sched.EmptyCategory {
					if len(neighbours) != 0 {
						if err := a.report(now, "pool-category",
							"slot %d/%d is Empty-category but machine runs %v", m, s, neighbours); err != nil {
							return err
						}
					}
				} else if !contains(neighbours, cat) {
					if err := a.report(now, "pool-category",
						"slot %d/%d category %q matches no co-resident app %v", m, s, cat, neighbours); err != nil {
						return err
					}
				}
			}
		}
	}
	if got := v.FreeSlots(); got != freeSeen {
		if err := a.report(now, "pool-consistency",
			"pool reports %d free slots but %d are free per slot state", got, freeSeen); err != nil {
			return err
		}
	}
	counts := v.PoolCounts()
	for cat, n := range countsSeen {
		if counts[cat] != n {
			if err := a.report(now, "pool-consistency",
				"pool counts %d free slots in category %q, slot state says %d", counts[cat], cat, n); err != nil {
				return err
			}
		}
	}
	for cat, n := range counts {
		if n != 0 && countsSeen[cat] == 0 {
			if err := a.report(now, "pool-consistency",
				"pool counts %d free slots in category %q that slot state lacks", n, cat); err != nil {
				return err
			}
		}
	}
	return nil
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// OnComplete checks that the finished task's remaining work settled to
// zero: the pre-clamp residual must vanish within a float tolerance that
// scales with the task's runtime (each settle step accumulates rounding).
func (a *InvariantAuditor) OnComplete(v sim.View, c sim.Completion) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.completes++
	res := c.Residual
	if res < 0 {
		res = -res
	}
	if tol := 1e-6 * (1 + c.Record.Runtime()); res > tol {
		return a.report(v.Now(), "work-conservation",
			"task %d (%s) completed with residual work %.9g (tolerance %.3g)",
			c.Record.Task.ID, c.Record.Task.App, c.Residual, tol)
	}
	return nil
}

// OnPop checks FIFO fairness of AnyCategory pops against the pool's
// pre-pop longest-free snapshot.
func (a *InvariantAuditor) OnPop(v sim.View, p sim.PopInfo) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.Category != sched.AnyCategory {
		return nil
	}
	a.popChecks++
	if !p.OldestOK {
		return a.report(v.Now(), "pop-fairness",
			"AnyCategory pop returned %d/%d but the pool had no free slot on record", p.Machine, p.Slot)
	}
	if p.Machine != p.OldestMachine || p.Slot != p.OldestSlot {
		return a.report(v.Now(), "pop-fairness",
			"AnyCategory pop returned %d/%d; the longest-free slot was %d/%d",
			p.Machine, p.Slot, p.OldestMachine, p.OldestSlot)
	}
	return nil
}

// OnSchedule is a no-op; scheduling has no cross-call invariant to check.
func (a *InvariantAuditor) OnSchedule(sim.View, sim.ScheduleInfo) error { return nil }

// OnDone runs one final full scan so runs that end between sampling points
// still get an end-state audit.
func (a *InvariantAuditor) OnDone(v sim.View, res *sim.Results) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fullScans++
	return a.scan(v, v.Now())
}

// Total returns the number of violations found (including unrecorded ones).
func (a *InvariantAuditor) Total() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Violations returns the recorded violations (capped at keptViolations).
func (a *InvariantAuditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Summary renders a one-paragraph audit report.
func (a *InvariantAuditor) Summary() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d events, %d full scans, %d completions, %d AnyCategory pops checked: ",
		a.events, a.fullScans, a.completes, a.popChecks)
	if a.total == 0 {
		b.WriteString("0 violations")
		return b.String()
	}
	fmt.Fprintf(&b, "%d VIOLATIONS", a.total)
	for i, v := range a.violations {
		if i == 10 {
			fmt.Fprintf(&b, "\n  ... (%d more)", a.total-10)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}
