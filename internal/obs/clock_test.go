package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWallClockBasics(t *testing.T) {
	before := time.Now()
	now := Wall.Now()
	if now.Before(before) {
		t.Fatalf("Wall.Now went backwards: %v < %v", now, before)
	}
	if d := Wall.Since(before); d < 0 {
		t.Fatalf("Wall.Since negative: %v", d)
	}
	done := make(chan struct{})
	tm := Wall.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported true")
	}
}

func TestVirtualClockAdvanceFiresInOrder(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewVirtualClock(start)
	var got []string
	c.AfterFunc(30*time.Millisecond, func() { got = append(got, "c") })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, "a") })
	c.AfterFunc(10*time.Millisecond, func() { got = append(got, "b") }) // same deadline: arm order
	if fired := c.Advance(20 * time.Millisecond); fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("order = %v, want [a b]", got)
	}
	if want := start.Add(20 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
	if fired := c.Advance(10 * time.Millisecond); fired != 1 {
		t.Fatalf("second Advance fired = %d, want 1", fired)
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("final order = %v", got)
	}
}

func TestVirtualClockCallbackSeesOwnDeadline(t *testing.T) {
	start := time.Unix(0, 0)
	c := NewVirtualClock(start)
	var at time.Time
	c.AfterFunc(5*time.Millisecond, func() { at = c.Now() })
	c.Advance(time.Hour)
	if want := start.Add(5 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw %v, want %v", at, want)
	}
	if want := start.Add(time.Hour); !c.Now().Equal(want) {
		t.Fatalf("Now after Advance = %v, want %v", c.Now(), want)
	}
}

func TestVirtualClockStop(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	fired := false
	tm := c.AfterFunc(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	if n := c.Advance(time.Minute); n != 0 {
		t.Fatalf("stopped timer fired (n=%d)", n)
	}
	if fired {
		t.Fatal("stopped timer callback ran")
	}
	if got := c.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d, want 0", got)
	}
}

func TestVirtualClockRearmWithinAdvance(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	var seq []int
	c.AfterFunc(time.Millisecond, func() {
		seq = append(seq, 1)
		c.AfterFunc(time.Millisecond, func() { seq = append(seq, 2) })
	})
	if fired := c.Advance(10 * time.Millisecond); fired != 2 {
		t.Fatalf("fired = %d, want 2 (re-armed timer due in same Advance)", fired)
	}
	if fmt.Sprint(seq) != "[1 2]" {
		t.Fatalf("seq = %v", seq)
	}
}

func TestVirtualClockZeroAndNegative(t *testing.T) {
	start := time.Unix(42, 0)
	c := NewVirtualClock(start)
	ran := false
	c.AfterFunc(0, func() { ran = true })
	c.Advance(0)
	if !ran {
		t.Fatal("zero-duration timer did not fire on Advance(0)")
	}
	c.Advance(-time.Hour)
	if !c.Now().Equal(start) {
		t.Fatalf("negative Advance moved the clock: %v", c.Now())
	}
}

func TestVirtualClockConcurrentArm(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0))
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.AfterFunc(time.Duration(i)*time.Millisecond, func() {
				mu.Lock()
				count++
				mu.Unlock()
			})
		}(i)
	}
	wg.Wait()
	c.Advance(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if count != 32 {
		t.Fatalf("count = %d, want 32", count)
	}
}
