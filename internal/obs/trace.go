package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"tracon/internal/sched"
	"tracon/internal/sim"
)

// This file implements sim.Tracer: a deterministic, bounded recorder of
// per-task lifecycle spans and scheduler decisions. Events land in a ring
// buffer of fixed capacity with an explicit drop counter, so tracing a
// 10,000-machine run costs O(capacity) memory and the export says exactly
// how much history it kept. Two export formats are supported: a compact
// NDJSON stream (the canonical, machine-readable form consumed by
// cmd/tracontrace) and Chrome/Perfetto trace_event JSON (one track per
// machine, one for the scheduler) for chrome://tracing or ui.perfetto.dev.
//
// Every event payload is a pure function of the simulated run and events
// are recorded in engine order, so for a fixed seed the exports are
// byte-identical no matter how many workers executed the experiment suite
// — provided run labels are input-derived (see RunLabel) so each engine
// run feeds its own Tracer.

// TraceSchema versions the NDJSON stream. Schema 2 added the fault event
// kinds (fail, timeout, evict, retry, lost, machine_down, machine_up);
// schema 3 added the serving-path span kinds carried in the Serve payload
// (admit, reject, coalesce_wait, batch_pass, score, plan_commit,
// plan_retry, plan_fallback, place, complete, evict_requeue — the last
// three distinguished from their simulator namesakes by the payload).
// ReadTraces still accepts older streams, which simply predate them.
const TraceSchema = 3

// minTraceSchema is the oldest schema ReadTraces accepts.
const minTraceSchema = 1

// DefaultTraceCap is the default ring capacity (events per run).
const DefaultTraceCap = 1 << 16

// TraceEvent is one recorded simulation event. Exactly one payload pointer
// is non-nil, matching Kind.
type TraceEvent struct {
	// Seq is the event's emission index within its run (0-based, counts
	// dropped events too: a stream that starts at Seq > 0 lost its head).
	Seq int64 `json:"seq"`
	// T is the simulation time in seconds.
	T float64 `json:"t"`
	// Kind is one of arrival, enqueue, flush, decision, pop, place,
	// segment, complete, done — or, in fault-injected runs, one of the
	// fault kinds fail, timeout, evict, retry, lost, machine_down,
	// machine_up (all carried in the Fault payload).
	Kind string `json:"k"`

	Arrival  *ArrivalInfo  `json:"arrival,omitempty"`
	Enqueue  *EnqueueInfo  `json:"enqueue,omitempty"`
	Decision *DecisionInfo `json:"decision,omitempty"`
	Pop      *PopInfo      `json:"pop,omitempty"`
	Place    *PlaceInfo    `json:"place,omitempty"`
	Segment  *SegmentInfo  `json:"segment,omitempty"`
	Complete *CompleteInfo `json:"complete,omitempty"`
	Fault    *FaultInfo    `json:"fault,omitempty"`
	Done     *DoneInfo     `json:"done,omitempty"`
	Serve    *ServeInfo    `json:"serve,omitempty"`
}

// ServeInfo is the payload of every serving-path span (schema 3): the
// online daemon's request lifecycle, joinable end to end by Req (the
// submission's X-Request-Id) and Task (the placement ID). T on the
// enclosing event is seconds since the daemon started. Spans that cover
// an interval (coalesce_wait, score, batch_pass) carry their duration in
// DurS and are stamped at the interval's end.
type ServeInfo struct {
	// Req is the request ID of the submission that created the task; on
	// admit/reject it is the current request's ID.
	Req string `json:"req,omitempty"`
	// Task is the placement ID ("t-<n>").
	Task string `json:"task,omitempty"`
	App  string `json:"app,omitempty"`
	// Machine and Slot locate placement-bound events (-1 when not bound).
	Machine int `json:"m"`
	Slot    int `json:"s"`
	// Neighbour is the co-located application at placement time.
	Neighbour string `json:"nb,omitempty"`
	// Batch and Placed describe one scheduling pass (batch_pass, score).
	Batch  int `json:"batch,omitempty"`
	Placed int `json:"placed,omitempty"`
	// DurS is the span's duration in seconds (interval spans only).
	DurS float64 `json:"dur_s,omitempty"`
	// Reason carries the shed/failure reason (reject).
	Reason string `json:"reason,omitempty"`
	// Predicted is the model's runtime forecast at placement (place).
	Predicted float64 `json:"pred,omitempty"`
	// Gen is the model generation that made the decision (place).
	Gen uint64 `json:"gen,omitempty"`
}

// ArrivalInfo records one task arrival.
type ArrivalInfo struct {
	Task int64  `json:"task"`
	App  string `json:"app"`
	// Held marks tasks parked on unmet workflow dependencies.
	Held bool    `json:"held,omitempty"`
	Deps []int64 `json:"deps,omitempty"`
}

// EnqueueInfo records a task entering the scheduling backlog.
type EnqueueInfo struct {
	Task int64  `json:"task"`
	App  string `json:"app"`
	// Released marks tasks a workflow-dependency completion unblocked.
	Released bool `json:"released,omitempty"`
}

// DecisionInfo records one scheduling-policy invocation: what the policy
// was offered, what it placed, and the candidate set it chose from.
type DecisionInfo struct {
	Batch      int             `json:"batch"`
	Placed     int             `json:"placed"`
	Backlog    int             `json:"backlog"`
	FreeSlots  int             `json:"free_slots"`
	Candidates []CategoryCount `json:"candidates,omitempty"`
}

// CategoryCount is one candidate-set entry (category = neighbour app).
type CategoryCount struct {
	Category string `json:"cat"`
	N        int    `json:"n"`
}

// PopInfo records one free-pool resolution.
type PopInfo struct {
	Category string `json:"cat"`
	Machine  int    `json:"m"`
	Slot     int    `json:"s"`
	// FreeGen is the popped slot's freed-order stamp in the pool's
	// FIFO-over-VMs queue.
	FreeGen int64 `json:"free_gen"`
}

// PlaceInfo records a task starting on a concrete VM.
type PlaceInfo struct {
	Task      int64   `json:"task"`
	App       string  `json:"app"`
	Machine   int     `json:"m"`
	Slot      int     `json:"s"`
	Neighbour string  `json:"nb,omitempty"`
	Work      float64 `json:"work"`
	Predicted float64 `json:"pred"`
}

// SegmentInfo records the start of one constant-rate execution segment.
type SegmentInfo struct {
	Machine   int     `json:"m"`
	Slot      int     `json:"s"`
	Task      int64   `json:"task"`
	App       string  `json:"app"`
	Rate      float64 `json:"rate"`
	Neighbour string  `json:"nb,omitempty"`
	WorkLeft  float64 `json:"left"`
}

// CompleteInfo records one finished task.
type CompleteInfo struct {
	Task      int64   `json:"task"`
	App       string  `json:"app"`
	Machine   int     `json:"m"`
	Slot      int     `json:"s"`
	Start     float64 `json:"start"`
	Wait      float64 `json:"wait"`
	Predicted float64 `json:"pred"`
	Residual  float64 `json:"resid"`
}

// FaultInfo records one fault-injection transition. Kind on the enclosing
// TraceEvent names the transition; machine transitions carry Slot -1 and no
// task, retry/lost carry Machine and Slot -1.
type FaultInfo struct {
	Machine int    `json:"m"`
	Slot    int    `json:"s"`
	Task    int64  `json:"task,omitempty"`
	App     string `json:"app,omitempty"`
	// Attempt is the task's placement attempts made so far.
	Attempt int `json:"attempt,omitempty"`
	// Delay is the retry backoff in seconds (retry only).
	Delay float64 `json:"delay,omitempty"`
}

// DoneInfo records the end of a run.
type DoneInfo struct {
	Scheduler string  `json:"scheduler"`
	Completed int     `json:"completed"`
	Submitted int     `json:"submitted"`
	Horizon   float64 `json:"horizon_s"`
}

// Tracer is a bounded, deterministic recorder for one simulation run. It
// implements sim.Tracer. The zero value is not usable; use NewTracer.
type Tracer struct {
	mu        sync.Mutex
	label     string
	scheduler string
	machines  int
	cap       int
	buf       []TraceEvent
	total     int64
}

// NewTracer builds a recorder with the given ring capacity (events);
// capacity <= 0 takes DefaultTraceCap. The label should be input-derived
// (see RunLabel); scheduler and machines annotate the export header.
func NewTracer(label, scheduler string, machines, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{label: label, scheduler: scheduler, machines: machines, cap: capacity}
}

// Label returns the run label.
func (t *Tracer) Label() string { return t.label }

// record appends one event, overwriting the oldest once the ring is full.
func (t *Tracer) record(ev TraceEvent) {
	t.mu.Lock()
	ev.Seq = t.total
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.total%int64(t.cap)] = ev
	}
	t.total++
	t.mu.Unlock()
}

// Append records one externally built event (the serving daemon's span
// emitters); Seq is stamped by the ring exactly as for sim events.
func (t *Tracer) Append(ev TraceEvent) { t.record(ev) }

// Total returns the number of events emitted (dropped ones included).
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if d := t.total - int64(len(t.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, 0, len(t.buf))
	if t.total > int64(t.cap) {
		head := int(t.total % int64(t.cap))
		out = append(out, t.buf[head:]...)
		out = append(out, t.buf[:head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// TraceArrival implements sim.Tracer.
func (t *Tracer) TraceArrival(now float64, task sched.Task, held bool) {
	t.record(TraceEvent{T: now, Kind: "arrival", Arrival: &ArrivalInfo{
		Task: task.ID, App: task.App, Held: held, Deps: task.DependsOn,
	}})
}

// TraceEnqueue implements sim.Tracer.
func (t *Tracer) TraceEnqueue(now float64, task sched.Task, released bool) {
	t.record(TraceEvent{T: now, Kind: "enqueue", Enqueue: &EnqueueInfo{
		Task: task.ID, App: task.App, Released: released,
	}})
}

// TraceFlush implements sim.Tracer.
func (t *Tracer) TraceFlush(now float64) {
	t.record(TraceEvent{T: now, Kind: "flush"})
}

// TraceDecision implements sim.Tracer.
func (t *Tracer) TraceDecision(now float64, d sim.Decision) {
	info := &DecisionInfo{Batch: d.Batch, Placed: d.Placed, Backlog: d.Backlog, FreeSlots: d.FreeSlots}
	for _, c := range d.Candidates {
		info.Candidates = append(info.Candidates, CategoryCount{Category: c.Category, N: c.N})
	}
	t.record(TraceEvent{T: now, Kind: "decision", Decision: info})
}

// TracePop implements sim.Tracer.
func (t *Tracer) TracePop(now float64, p sim.PopInfo) {
	t.record(TraceEvent{T: now, Kind: "pop", Pop: &PopInfo{
		Category: p.Category, Machine: p.Machine, Slot: p.Slot, FreeGen: p.FreeGen,
	}})
}

// TracePlace implements sim.Tracer.
func (t *Tracer) TracePlace(now float64, p sim.PlaceInfo) {
	t.record(TraceEvent{T: now, Kind: "place", Place: &PlaceInfo{
		Task: p.Task.ID, App: p.Task.App, Machine: p.Machine, Slot: p.Slot,
		Neighbour: p.Neighbour, Work: p.Work, Predicted: p.Predicted,
	}})
}

// TraceSegment implements sim.Tracer.
func (t *Tracer) TraceSegment(now float64, s sim.Segment) {
	t.record(TraceEvent{T: now, Kind: "segment", Segment: &SegmentInfo{
		Machine: s.Machine, Slot: s.Slot, Task: s.TaskID, App: s.App,
		Rate: s.Rate, Neighbour: s.Neighbour, WorkLeft: s.WorkLeft,
	}})
}

// TraceComplete implements sim.Tracer.
func (t *Tracer) TraceComplete(now float64, c sim.Completion) {
	r := c.Record
	t.record(TraceEvent{T: now, Kind: "complete", Complete: &CompleteInfo{
		Task: r.Task.ID, App: r.Task.App, Machine: r.Machine, Slot: r.Slot,
		Start: r.Start, Wait: r.Wait(), Predicted: c.Predicted, Residual: c.Residual,
	}})
}

// TraceFault implements sim.Tracer.
func (t *Tracer) TraceFault(now float64, f sim.FaultInfo) {
	t.record(TraceEvent{T: now, Kind: f.Kind, Fault: &FaultInfo{
		Machine: f.Machine, Slot: f.Slot, Task: f.TaskID, App: f.App,
		Attempt: f.Attempt, Delay: f.Delay,
	}})
}

// TraceDone implements sim.Tracer.
func (t *Tracer) TraceDone(now float64, res *sim.Results) {
	t.record(TraceEvent{T: now, Kind: "done", Done: &DoneInfo{
		Scheduler: res.Scheduler, Completed: res.CompletedCount,
		Submitted: res.Submitted, Horizon: res.Horizon,
	}})
}

// traceHeader is the NDJSON run-header line.
type traceHeader struct {
	Kind      string `json:"k"` // always "run"
	Schema    int    `json:"schema"`
	Label     string `json:"label"`
	Scheduler string `json:"scheduler"`
	Machines  int    `json:"machines"`
	Events    int64  `json:"events"`
	Dropped   int64  `json:"dropped"`
}

// WriteNDJSON writes the run as one header line followed by one JSON
// object per retained event.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	t.mu.Lock()
	hdr := traceHeader{
		Kind: "run", Schema: TraceSchema, Label: t.label,
		Scheduler: t.scheduler, Machines: t.machines, Events: t.total,
	}
	t.mu.Unlock()
	if hdr.Dropped = t.Dropped(); hdr.Dropped < 0 {
		hdr.Dropped = 0
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RunTrace is one run loaded back from an NDJSON export.
type RunTrace struct {
	Label     string
	Scheduler string
	Machines  int
	// Total is the number of events the run emitted; Dropped of those were
	// overwritten in the ring and are absent from Events.
	Total   int64
	Dropped int64
	Events  []TraceEvent
}

// ReadTraces parses an NDJSON export (one or more runs).
func ReadTraces(r io.Reader) ([]*RunTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var runs []*RunTrace
	var cur *RunTrace
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Kind string `json:"k"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if probe.Kind == "run" {
			var hdr traceHeader
			if err := json.Unmarshal(raw, &hdr); err != nil {
				return nil, fmt.Errorf("obs: trace header line %d: %w", line, err)
			}
			if hdr.Schema < minTraceSchema || hdr.Schema > TraceSchema {
				return nil, fmt.Errorf("obs: trace line %d: unsupported schema %d", line, hdr.Schema)
			}
			cur = &RunTrace{
				Label: hdr.Label, Scheduler: hdr.Scheduler, Machines: hdr.Machines,
				Total: hdr.Events, Dropped: hdr.Dropped,
			}
			runs = append(runs, cur)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("obs: trace line %d: event before run header", line)
		}
		var ev TraceEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		cur.Events = append(cur.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return runs, nil
}

// TraceCollector owns one Tracer per run label, for experiment suites that
// execute many runs from parallel workers. Labels must be input-derived
// (see RunLabel) and unique per run; a duplicate label gets its own tracer
// under a disambiguated name and bumps Collisions, because interleaving
// two engines' events in one ring would make the export depend on worker
// scheduling.
type TraceCollector struct {
	mu         sync.Mutex
	cap        int
	runs       map[string]*Tracer
	collisions int
}

// NewTraceCollector returns an empty collector whose tracers use the given
// ring capacity (<= 0 takes DefaultTraceCap).
func NewTraceCollector(capacity int) *TraceCollector {
	return &TraceCollector{cap: capacity, runs: map[string]*Tracer{}}
}

// Tracer builds the recorder for one run.
func (c *TraceCollector) Tracer(label, scheduler string, machines int) *Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.runs[label]; dup {
		c.collisions++
		label = fmt.Sprintf("%s!dup%d", label, c.collisions)
	}
	t := NewTracer(label, scheduler, machines, c.cap)
	c.runs[label] = t
	return t
}

// Len returns the number of runs traced.
func (c *TraceCollector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// Collisions returns how many duplicate labels were seen; a non-zero value
// means labels were not input-unique and the export is not deterministic.
func (c *TraceCollector) Collisions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.collisions
}

// WriteNDJSON writes every run, sorted by label.
func (c *TraceCollector) WriteNDJSON(w io.Writer) error {
	c.mu.Lock()
	labels := make([]string, 0, len(c.runs))
	for l := range c.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	tracers := make([]*Tracer, len(labels))
	for i, l := range labels {
		tracers[i] = c.runs[l]
	}
	c.mu.Unlock()
	for _, t := range tracers {
		if err := t.WriteNDJSON(w); err != nil {
			return err
		}
	}
	return nil
}

// Export writes trace_<tag>.ndjson under dir, creating dir if needed.
func (c *TraceCollector) Export(dir, tag string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("trace_%s.ndjson", tag))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := c.WriteNDJSON(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
