package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"tracon/internal/sched"
	"tracon/internal/sim"
)

// runTraced executes one MIBS run with the given tracer attached.
func runTraced(t *testing.T, tr sim.Tracer, seed int64, n int) *sim.Results {
	t.Helper()
	s := &sched.MIBS{Scorer: sched.NewScorer(oracle(t), sched.MinRuntime), QueueLen: 6}
	eng, err := sim.NewEngine(sim.Config{Machines: 4, Scheduler: s, Table: table(t), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(genTasks(seed, n, 20), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTracerRingDrop(t *testing.T) {
	tr := NewTracer("ring", "fifo", 1, 8)
	for i := 0; i < 20; i++ {
		tr.TraceFlush(float64(i))
	}
	if tr.Total() != 20 {
		t.Fatalf("total %d, want 20", tr.Total())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(12 + i); ev.Seq != want || ev.T != float64(want) {
			t.Fatalf("event %d: seq=%d t=%v, want seq=%d (oldest first)", i, ev.Seq, ev.T, want)
		}
	}
}

func TestTracerNoDropUnderCap(t *testing.T) {
	tr := NewTracer("small", "fifo", 1, 8)
	tr.TraceFlush(1)
	tr.TraceFlush(2)
	if tr.Dropped() != 0 || tr.Total() != 2 || len(tr.Events()) != 2 {
		t.Fatalf("dropped=%d total=%d events=%d", tr.Dropped(), tr.Total(), len(tr.Events()))
	}
}

func TestTraceNDJSONRoundTrip(t *testing.T) {
	tr := NewTracer("roundtrip", "MIBS6-RT", 4, 0)
	res := runTraced(t, tr, 9, 60)

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadTraces(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("parsed %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Label != "roundtrip" || r.Scheduler != "MIBS6-RT" || r.Machines != 4 {
		t.Fatalf("header mismatch: %+v", r)
	}
	if r.Dropped != 0 || r.Total != int64(len(r.Events)) {
		t.Fatalf("header counts: total=%d dropped=%d events=%d", r.Total, r.Dropped, len(r.Events))
	}
	if !reflect.DeepEqual(r.Events, tr.Events()) {
		t.Fatal("events did not survive the NDJSON round trip")
	}
	if first := r.Events[0].Kind; first != "arrival" {
		t.Fatalf("first event %q, want arrival", first)
	}
	if last := r.Events[len(r.Events)-1]; last.Kind != "done" ||
		last.Done == nil || last.Done.Completed != res.CompletedCount {
		t.Fatalf("last event %+v, want done with %d completed", last, res.CompletedCount)
	}
	// The stream must hold every lifecycle stage.
	kinds := map[string]int{}
	for _, ev := range r.Events {
		kinds[ev.Kind]++
	}
	for _, k := range []string{"arrival", "enqueue", "decision", "pop", "place", "segment", "complete", "done"} {
		if kinds[k] == 0 {
			t.Fatalf("no %q events in trace (kinds: %v)", k, kinds)
		}
	}
	if kinds["complete"] != res.CompletedCount {
		t.Fatalf("complete events %d, results %d", kinds["complete"], res.CompletedCount)
	}
}

// TestTracerNoPerturbation: attaching a tracer must leave the simulation's
// results bit-identical.
func TestTracerNoPerturbation(t *testing.T) {
	plain := runTraced(t, nil, 13, 80)
	traced := runTraced(t, NewTracer("x", "s", 4, 128), 13, 80)
	if plain.CompletedCount != traced.CompletedCount ||
		plain.TotalRuntime != traced.TotalRuntime ||
		plain.Horizon != traced.Horizon ||
		plain.TotalIOPS != traced.TotalIOPS {
		t.Fatalf("tracer perturbed results:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

func TestPerfettoExport(t *testing.T) {
	tr := NewTracer("perfetto", "MIBS6-RT", 4, 0)
	runTraced(t, tr, 21, 40)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		Unit        string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	ph := map[string]int{}
	for _, ev := range doc.TraceEvents {
		p, _ := ev["ph"].(string)
		ph[p]++
		if p == "X" {
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("X event without non-negative dur: %v", ev)
			}
		}
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Fatalf("negative timestamp: %v", ev)
		}
	}
	for _, p := range []string{"X", "M", "b", "e", "C", "i"} {
		if ph[p] == 0 {
			t.Fatalf("no %q phase events (have %v)", p, ph)
		}
	}
	if ph["b"] != ph["e"] {
		t.Fatalf("unbalanced async spans: %d b vs %d e", ph["b"], ph["e"])
	}
}

func TestTaskSpansAndBreakdowns(t *testing.T) {
	tr := NewTracer("spans", "MIBS6-RT", 4, 0)
	res := runTraced(t, tr, 31, 70)
	run := &RunTrace{Label: tr.Label(), Total: tr.Total(), Events: tr.Events()}

	spans := run.TaskSpans()
	if len(spans) != res.Submitted {
		t.Fatalf("spans %d, submitted %d", len(spans), res.Submitted)
	}
	completed := 0
	for i, s := range spans {
		if s.Task != int64(i) {
			t.Fatalf("spans not sorted by task: %d at %d", s.Task, i)
		}
		if s.Completed {
			completed++
			if s.Wait() < 0 || s.Runtime() <= 0 || s.Work <= 0 {
				t.Fatalf("degenerate span %+v", s)
			}
			if s.Dilation() < -1e-9 {
				t.Fatalf("negative dilation %v for task %d", s.Dilation(), s.Task)
			}
		}
	}
	if completed != res.CompletedCount {
		t.Fatalf("completed spans %d, results %d", completed, res.CompletedCount)
	}

	apps := AppBreakdowns(spans)
	if len(apps) == 0 {
		t.Fatal("no app breakdowns")
	}
	sum := 0
	for i, a := range apps {
		sum += a.N
		if i > 0 && apps[i-1].App >= a.App {
			t.Fatal("breakdowns not sorted by app")
		}
		if a.MeanExec < a.MeanSolo {
			t.Fatalf("%s: mean exec %.2f < mean solo %.2f", a.App, a.MeanExec, a.MeanSolo)
		}
		if a.MaxWait < 0 || a.MeanWait < 0 || a.MaxWait+1e-9 < a.MeanWait {
			t.Fatalf("%s: wait stats inconsistent: %+v", a.App, a)
		}
	}
	if sum != completed {
		t.Fatalf("breakdown N sums to %d, want %d", sum, completed)
	}

	top := TopWaits(spans, 5)
	if len(top) != 5 {
		t.Fatalf("top-5 returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Wait() > top[i-1].Wait() {
			t.Fatal("top waits not descending")
		}
	}
}

func TestMachineTimelines(t *testing.T) {
	tr := NewTracer("machines", "MIBS6-RT", 4, 0)
	runTraced(t, tr, 41, 60)
	run := &RunTrace{Events: tr.Events()}
	tls := run.MachineTimelines()
	if len(tls) == 0 || len(tls) > 4 {
		t.Fatalf("%d machine timelines for a 4-machine run", len(tls))
	}
	for i, tl := range tls {
		if i > 0 && tls[i-1].Machine >= tl.Machine {
			t.Fatal("timelines not sorted by machine")
		}
		if tl.Busy <= 0 || tl.Segments == 0 {
			t.Fatalf("idle timeline on a busy run: %+v", tl)
		}
		if tl.Lost < 0 || tl.Contended < 0 || tl.Contended > tl.Busy+1e-9 {
			t.Fatalf("inconsistent timeline: %+v", tl)
		}
	}
}

// TestCriticalPathDAG runs a three-task dependency chain on one machine
// and expects the critical path to follow the workflow edges.
func TestCriticalPathDAG(t *testing.T) {
	tasks := genTasks(7, 3, 0)
	for i := range tasks {
		tasks[i].Arrival = 0
		tasks[i].DependsOn = nil
	}
	tasks[1].DependsOn = []int64{0}
	tasks[2].DependsOn = []int64{1}

	tr := NewTracer("dag", "FIFO", 1, 0)
	eng, err := sim.NewEngine(sim.Config{Machines: 1, Scheduler: sched.FIFO{}, Table: table(t), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(tasks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedCount != 3 {
		t.Fatalf("completed %d, want 3", res.CompletedCount)
	}
	run := &RunTrace{Events: tr.Events()}
	cp := run.CriticalPath()
	if len(cp) != 3 {
		t.Fatalf("critical path %+v, want 3 hops", cp)
	}
	for i, want := range []int64{0, 1, 2} {
		if cp[i].Task != want {
			t.Fatalf("hop %d is task %d, want %d (%+v)", i, cp[i].Task, want, cp)
		}
	}
	if cp[0].Reason != "arrival" {
		t.Fatalf("first hop via %q, want arrival", cp[0].Reason)
	}
	for _, h := range cp[1:] {
		if h.Reason != "dependency" {
			t.Fatalf("hop %+v, want dependency", h)
		}
	}

	var buf bytes.Buffer
	run.Label, run.Scheduler, run.Machines = "dag", "FIFO", 1
	run.Summarize(&buf, 3)
	for _, want := range []string{"per-app breakdown", "critical path (3 hops)", "via dependency", "per-machine contention"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestTraceCollectorCollisions(t *testing.T) {
	c := NewTraceCollector(16)
	a := c.Tracer("same", "s", 1)
	b := c.Tracer("same", "s", 1)
	if c.Collisions() != 1 || c.Len() != 2 {
		t.Fatalf("collisions=%d len=%d", c.Collisions(), c.Len())
	}
	if a.Label() == b.Label() {
		t.Fatal("duplicate labels not disambiguated")
	}
	a.TraceFlush(1)
	b.TraceFlush(2)
	var buf bytes.Buffer
	if err := c.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("exported %d runs, want 2", len(runs))
	}
	if runs[0].Label >= runs[1].Label {
		t.Fatal("export not sorted by label")
	}
}

func TestFindRuns(t *testing.T) {
	runs := []*RunTrace{{Label: "static/FIFO"}, {Label: "dynamic/MIBS8-RT"}}
	if got := FindRuns(runs, ""); len(got) != 2 {
		t.Fatalf("empty filter returned %d", len(got))
	}
	if got := FindRuns(runs, "MIBS"); len(got) != 1 || got[0].Label != "dynamic/MIBS8-RT" {
		t.Fatalf("filter MIBS returned %+v", got)
	}
	if got := FindRuns(runs, "nope"); len(got) != 0 {
		t.Fatalf("filter nope returned %d", len(got))
	}
}

func TestHistogramQuantile(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if q := NewHistogram([]float64{1, 2}).Quantile(0.5); q != 0 {
			t.Fatalf("empty histogram p50 = %v", q)
		}
	})
	t.Run("single-bucket", func(t *testing.T) {
		h := NewHistogram([]float64{10})
		for i := 0; i < 5; i++ {
			h.Observe(3)
		}
		// All mass in [0,10]: the median interpolates to the bucket middle.
		if q := h.Quantile(0.5); q != 5 {
			t.Fatalf("p50 = %v, want 5", q)
		}
		if q := h.Quantile(1); q != 10 {
			t.Fatalf("p100 = %v, want 10", q)
		}
	})
	t.Run("all-overflow", func(t *testing.T) {
		h := NewHistogram([]float64{1})
		h.Observe(5)
		h.Observe(50)
		// The histogram cannot see past its last bound; the estimate
		// saturates there.
		if q := h.Quantile(0.5); q != 1 {
			t.Fatalf("overflow p50 = %v, want last bound 1", q)
		}
	})
	t.Run("interpolation", func(t *testing.T) {
		h := NewHistogram([]float64{1, 2, 4})
		for _, v := range []float64{0.5, 1.5, 1.6, 3, 3.5} {
			h.Observe(v)
		}
		// target(0.5)=2.5 → 1.5 ranks into bucket (1,2]: 1 + (2.5−1)/2 × 1.
		if q := h.Quantile(0.5); math.Abs(q-1.75) > 1e-12 {
			t.Fatalf("p50 = %v, want 1.75", q)
		}
		if p95, p99 := h.Quantile(0.95), h.Quantile(0.99); p95 > p99 {
			t.Fatalf("quantiles not monotone: p95=%v p99=%v", p95, p99)
		}
	})
	t.Run("clamping", func(t *testing.T) {
		h := NewHistogram([]float64{1})
		h.Observe(0.5)
		if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
			t.Fatal("q not clamped to [0,1]")
		}
	})
	t.Run("csv-surfaced", func(t *testing.T) {
		joined := strings.Join(csvHeader, ",")
		for _, col := range []string{"queue_p50", "queue_p95", "queue_p99"} {
			if !strings.Contains(joined, col) {
				t.Fatalf("csv header missing %s: %s", col, joined)
			}
		}
	})
}
