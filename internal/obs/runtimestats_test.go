package obs

import (
	"testing"
	"time"
)

func TestRuntimeStatsSampleAndStop(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeStats(reg, time.Hour) // immediate sample, then idle
	defer s.Stop()
	if g := reg.Gauge("runtime.goroutines").Value(); g <= 0 {
		t.Fatalf("runtime.goroutines = %v, want > 0", g)
	}
	if g := reg.Gauge("runtime.heap_alloc_bytes").Value(); g <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %v, want > 0", g)
	}
	// The gauges must ride the standard export surfaces.
	found := false
	for _, pt := range reg.Snapshot() {
		if pt.Name == "runtime.heap_inuse_bytes" && pt.Kind == "gauge" {
			found = true
		}
	}
	if !found {
		t.Fatal("runtime gauges missing from Snapshot")
	}
}

func TestRuntimeStatsStopIdempotentExit(t *testing.T) {
	reg := NewRegistry()
	s := StartRuntimeStats(reg, time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let a few ticks land
	s.Stop()                         // must not deadlock or race
}
