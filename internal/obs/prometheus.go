package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) over a Registry snapshot.
// The registry stays stdlib-only and name-keyed; metrics that need labels
// encode them in the name via Labeled ("base{k=\"v\"}"), and the renderer
// splits them back out so a standard scraper sees proper label sets.
// Histograms render the cumulative _bucket/_sum/_count series the format
// requires (the registry stores per-bucket counts; the renderer accumulates).

// PrometheusContentType is the exposition-format content type.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Labeled encodes a label set into a registry metric name:
// Labeled("serve.http_requests", "route", "/v1/tasks", "code", "2xx")
// → `serve.http_requests{code="2xx",route="/v1/tasks"}`. Pairs are sorted
// by key so the same label set always produces the same registry key, and
// values are escaped the way the exposition format expects, so the name
// can be emitted verbatim.
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Labeled needs key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeName(p.k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition format's label-value escaping:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// sanitizeName maps a registry name onto the exposition format's metric
// name alphabet [a-zA-Z0-9_:]: dots and anything else illegal become
// underscores, and a leading digit gets an underscore prefix.
func sanitizeName(name string) string {
	var b strings.Builder
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitName separates a (possibly Labeled) registry name into the
// sanitized metric name and the raw label body ("" when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return sanitizeName(name[:i]), name[i+1 : len(name)-1]
	}
	return sanitizeName(name), ""
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// series writes one sample line: name{labels} value.
func series(w io.Writer, name, labels string, value float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(value))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(value))
	return err
}

// joinLabels appends extra label assignments to an existing raw label body.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format. Points sharing a base name form one metric family:
// a single # TYPE line followed by every labeled series. Histograms emit
// cumulative _bucket series (ending in le="+Inf"), then _sum and _count.
// The snapshot is already sorted, so the output is deterministic.
func WritePrometheus(w io.Writer, points []MetricPoint) error {
	bw := bufio.NewWriter(w)
	// Group points by (kind, base name) preserving snapshot order: every
	// family must be contiguous with exactly one TYPE line.
	typed := map[string]bool{}
	for _, pt := range points {
		base, labels := splitName(pt.Name)
		kind := pt.Kind
		if !typed[kind+" "+base] {
			typed[kind+" "+base] = true
			if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
		}
		switch kind {
		case "counter", "gauge":
			if err := series(bw, base, labels, pt.Value); err != nil {
				return err
			}
		case "histogram":
			h := pt.Hist
			if h == nil {
				continue
			}
			var cum int64
			for i, bound := range h.Bounds {
				cum += h.Counts[i]
				le := joinLabels(labels, `le="`+formatFloat(bound)+`"`)
				if err := series(bw, base+"_bucket", le, float64(cum)); err != nil {
					return err
				}
			}
			inf := joinLabels(labels, `le="+Inf"`)
			if err := series(bw, base+"_bucket", inf, float64(h.N)); err != nil {
				return err
			}
			if err := series(bw, base+"_sum", labels, h.Sum); err != nil {
				return err
			}
			if err := series(bw, base+"_count", labels, float64(h.N)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// PromHistogram is one histogram family read back from an exposition
// scrape: cumulative bucket counts keyed by le, plus sum and count.
type PromHistogram struct {
	// Bounds are the finite le bounds in ascending order; Cumulative the
	// matching cumulative counts. Count includes the +Inf bucket.
	Bounds     []float64
	Cumulative []int64
	Sum        float64
	Count      int64
}

// Snapshot converts the cumulative scrape form back into the registry's
// per-bucket HistogramSnapshot (the overflow bucket absorbs count beyond
// the last finite bound), so quantile estimation is shared with the
// in-process path.
func (p PromHistogram) Snapshot() HistogramSnapshot {
	counts := make([]int64, len(p.Bounds)+1)
	var prev int64
	for i, c := range p.Cumulative {
		counts[i] = c - prev
		prev = c
	}
	counts[len(p.Bounds)] = p.Count - prev
	return HistogramSnapshot{
		Bounds: append([]float64(nil), p.Bounds...),
		Counts: counts,
		Sum:    p.Sum,
		N:      p.Count,
	}
}

// Sub returns the per-window difference p − base of two cumulative scrapes
// of the same histogram (matching bounds). Prometheus histograms are
// monotone, so the difference is itself a valid histogram: the samples
// observed between the two scrapes.
func (p PromHistogram) Sub(base PromHistogram) PromHistogram {
	out := PromHistogram{
		Bounds: append([]float64(nil), p.Bounds...),
		Sum:    p.Sum - base.Sum,
		Count:  p.Count - base.Count,
	}
	out.Cumulative = make([]int64, len(p.Cumulative))
	for i := range p.Cumulative {
		out.Cumulative[i] = p.Cumulative[i]
		if i < len(base.Cumulative) {
			out.Cumulative[i] -= base.Cumulative[i]
		}
	}
	return out
}

// ParsePrometheusHistogram extracts one histogram family from an
// exposition-format scrape. name is the sanitized metric name (without
// the _bucket suffix); want restricts matches to series carrying all the
// given label assignments (nil matches the family's unlabeled series).
func ParsePrometheusHistogram(r io.Reader, name string, want map[string]string) (PromHistogram, error) {
	var out PromHistogram
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	seen := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		metric, labels, value, err := parsePromLine(line)
		if err != nil {
			return out, err
		}
		switch metric {
		case name + "_bucket":
			if !labelsMatch(labels, want) {
				continue
			}
			le, ok := labels["le"]
			if !ok {
				return out, fmt.Errorf("obs: %s_bucket without le label", name)
			}
			seen = true
			if le == "+Inf" {
				continue // Count comes from _count (and must agree)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return out, fmt.Errorf("obs: bad le %q: %w", le, err)
			}
			out.Bounds = append(out.Bounds, bound)
			out.Cumulative = append(out.Cumulative, int64(value))
		case name + "_sum":
			if !labelsMatch(labels, want) {
				continue
			}
			seen = true
			out.Sum = value
		case name + "_count":
			if !labelsMatch(labels, want) {
				continue
			}
			seen = true
			out.Count = int64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if !seen {
		return out, fmt.Errorf("obs: histogram %q not found in scrape", name)
	}
	return out, nil
}

// labelsMatch reports whether got carries every assignment in want.
func labelsMatch(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// parsePromLine splits one exposition sample line into metric name, label
// map and value, undoing label-value escaping.
func parsePromLine(line string) (string, map[string]string, float64, error) {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("obs: malformed sample %q", line)
		}
		body := line[i+1 : j]
		rest = strings.TrimSpace(line[j+1:])
		for len(body) > 0 {
			eq := strings.IndexByte(body, '=')
			if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("obs: malformed labels in %q", line)
			}
			key := strings.TrimSpace(body[:eq])
			// Scan the quoted value honouring backslash escapes.
			val := strings.Builder{}
			k := eq + 2
			for ; k < len(body); k++ {
				c := body[k]
				if c == '\\' && k+1 < len(body) {
					k++
					switch body[k] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(body[k])
					}
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if k >= len(body) {
				return "", nil, 0, fmt.Errorf("obs: unterminated label value in %q", line)
			}
			labels[key] = val.String()
			body = strings.TrimPrefix(strings.TrimSpace(body[k+1:]), ",")
			body = strings.TrimSpace(body)
		}
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("obs: malformed sample %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("obs: bad value in %q: %w", line, err)
	}
	return name, labels, v, nil
}
