package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome/Perfetto trace_event export: the run becomes one process per
// machine (one thread per VM slot, carrying the interference-dilated
// execution segments as complete "X" spans) plus one scheduler process
// carrying queue-wait spans (async "b"/"e" pairs keyed by task ID),
// decision instants and backlog/free-slot counters. The output opens in
// ui.perfetto.dev or chrome://tracing. Sim seconds map to trace
// microseconds. Everything is derived from the event stream in order, so
// the export is deterministic.

// perfettoEvent is one trace_event entry. Field order fixes the JSON
// layout; Args is map-backed and encoding/json sorts map keys, so the
// bytes are stable.
type perfettoEvent struct {
	Name  string                 `json:"name,omitempty"`
	Cat   string                 `json:"cat,omitempty"`
	Ph    string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   *float64               `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid,omitempty"`
	ID    *int64                 `json:"id,omitempty"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

const usPerSec = 1e6

// openSeg tracks a not-yet-closed execution segment on one VM slot.
type openSeg struct {
	start     float64
	task      int64
	app       string
	rate      float64
	neighbour string
}

// WritePerfetto renders the run as Chrome/Perfetto trace_event JSON.
func WritePerfetto(w io.Writer, run *RunTrace) error {
	// pid 0 is reserved by the UI; machines map to pid = index+1 and the
	// scheduler to the next pid after the highest machine seen.
	maxMachine := run.Machines - 1
	for _, ev := range run.Events {
		switch {
		case ev.Segment != nil && ev.Segment.Machine > maxMachine:
			maxMachine = ev.Segment.Machine
		case ev.Place != nil && ev.Place.Machine > maxMachine:
			maxMachine = ev.Place.Machine
		case ev.Complete != nil && ev.Complete.Machine > maxMachine:
			maxMachine = ev.Complete.Machine
		}
	}
	schedPID := maxMachine + 2

	var out perfettoFile
	out.DisplayTimeUnit = "ms"
	meta := func(pid, tid int, kind, name string) {
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: kind, Ph: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	schedName := run.Scheduler
	if schedName == "" {
		schedName = "scheduler"
	}
	meta(schedPID, 0, "process_name", "scheduler "+schedName)
	usedMachine := map[int]bool{}
	machineMeta := func(m int) {
		if usedMachine[m] {
			return
		}
		usedMachine[m] = true
	}

	// Track open execution segments per slot and open wait spans per task.
	type slotKey struct{ m, s int }
	openSegs := map[slotKey]openSeg{}
	waitOpen := map[int64]bool{}

	span := func(m, s int, seg openSeg, end float64) {
		dur := (end - seg.start) * usPerSec
		args := map[string]interface{}{"task": seg.task, "rate": seg.rate}
		if seg.neighbour != "" {
			args["neighbour"] = seg.neighbour
		}
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: seg.app, Cat: "exec", Ph: "X", TS: seg.start * usPerSec,
			Dur: &dur, PID: m + 1, TID: s + 1, Args: args,
		})
	}

	var lastT float64
	serveSeen := false
	for _, ev := range run.Events {
		lastT = ev.T
		// Serving-path spans (schema 3) carry their own payload and never
		// share an event with the simulator kinds; render them on their own
		// tracks so a tracond export opens in the same UI.
		if ev.Serve != nil {
			serveSeen = true
			writeServeEvent(&out, ev, schedPID, machineMeta)
			continue
		}
		switch ev.Kind {
		case "enqueue":
			e := ev.Enqueue
			id := e.Task
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: e.App, Cat: "wait", Ph: "b", TS: ev.T * usPerSec,
				PID: schedPID, TID: 1, ID: &id,
			})
			waitOpen[e.Task] = true
		case "place":
			p := ev.Place
			machineMeta(p.Machine)
			if waitOpen[p.Task] {
				id := p.Task
				out.TraceEvents = append(out.TraceEvents, perfettoEvent{
					Name: p.App, Cat: "wait", Ph: "e", TS: ev.T * usPerSec,
					PID: schedPID, TID: 1, ID: &id,
				})
				delete(waitOpen, p.Task)
			}
		case "segment":
			s := ev.Segment
			machineMeta(s.Machine)
			key := slotKey{s.Machine, s.Slot}
			if open, ok := openSegs[key]; ok && ev.T > open.start {
				span(s.Machine, s.Slot, open, ev.T)
			}
			openSegs[key] = openSeg{
				start: ev.T, task: s.Task, app: s.App,
				rate: s.Rate, neighbour: s.Neighbour,
			}
		case "complete":
			c := ev.Complete
			machineMeta(c.Machine)
			key := slotKey{c.Machine, c.Slot}
			if open, ok := openSegs[key]; ok {
				span(c.Machine, c.Slot, open, ev.T)
				delete(openSegs, key)
			}
		case "fail", "timeout", "evict":
			// The attempt ended without completing; close its open segment.
			if f := ev.Fault; f != nil && f.Machine >= 0 {
				machineMeta(f.Machine)
				key := slotKey{f.Machine, f.Slot}
				if open, ok := openSegs[key]; ok {
					if ev.T > open.start {
						span(f.Machine, f.Slot, open, ev.T)
					}
					delete(openSegs, key)
				}
				out.TraceEvents = append(out.TraceEvents, perfettoEvent{
					Name: ev.Kind, Cat: "fault", Ph: "i", TS: ev.T * usPerSec,
					PID: f.Machine + 1, TID: f.Slot + 1, Scope: "t",
					Args: map[string]interface{}{"task": f.Task, "attempt": f.Attempt},
				})
			}
		case "machine_down", "machine_up":
			if f := ev.Fault; f != nil && f.Machine >= 0 {
				machineMeta(f.Machine)
				out.TraceEvents = append(out.TraceEvents, perfettoEvent{
					Name: ev.Kind, Cat: "fault", Ph: "i", TS: ev.T * usPerSec,
					PID: f.Machine + 1, TID: 1, Scope: "p",
				})
			}
		case "decision":
			d := ev.Decision
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "decision", Cat: "sched", Ph: "i", TS: ev.T * usPerSec,
				PID: schedPID, TID: 1, Scope: "t",
				Args: map[string]interface{}{
					"batch": d.Batch, "placed": d.Placed,
					"backlog": d.Backlog, "free_slots": d.FreeSlots,
				},
			})
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "backlog", Ph: "C", TS: ev.T * usPerSec, PID: schedPID,
				Args: map[string]interface{}{"queued": d.Backlog},
			})
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "free_slots", Ph: "C", TS: ev.T * usPerSec, PID: schedPID,
				Args: map[string]interface{}{"free": d.FreeSlots},
			})
		}
	}
	// Close segments still running when the trace ends (horizon cut),
	// in deterministic slot order.
	keys := make([]slotKey, 0, len(openSegs))
	for k := range openSegs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].m != keys[j].m {
			return keys[i].m < keys[j].m
		}
		return keys[i].s < keys[j].s
	})
	for _, k := range keys {
		open := openSegs[k]
		if lastT > open.start {
			span(k.m, k.s, open, lastT)
		}
	}
	// Name the machine processes and slot threads actually used.
	machines := make([]int, 0, len(usedMachine))
	for m := range usedMachine {
		machines = append(machines, m)
	}
	sort.Ints(machines)
	for _, m := range machines {
		meta(m+1, 0, "process_name", fmt.Sprintf("machine %d", m))
		meta(m+1, 1, "thread_name", "vm0")
		meta(m+1, 2, "thread_name", "vm1")
	}
	if serveSeen {
		meta(schedPID, serveTaskTID, "thread_name", "tasks")
		meta(schedPID, serveCoalesceTID, "thread_name", "coalesce")
		meta(schedPID, serveSchedTID, "thread_name", "sched")
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Serving-run track layout on the scheduler process: task lifecycle
// spans (admit→complete, async, keyed by the numeric placement ID),
// coalescer waits, and scheduling passes.
const (
	serveTaskTID     = 1
	serveCoalesceTID = 2
	serveSchedTID    = 3
)

// serveTaskNum extracts the numeric part of a "t-<n>" placement ID for
// use as an async-span key; ok is false for foreign ID shapes.
func serveTaskNum(task string) (int64, bool) {
	var n int64
	seen := false
	for i := 0; i < len(task); i++ {
		if c := task[i]; c >= '0' && c <= '9' {
			n = n*10 + int64(c-'0')
			seen = true
		}
	}
	return n, seen
}

// writeServeEvent renders one serving-path span. Interval spans
// (coalesce_wait, score, batch_pass) are stamped at their end with DurS,
// so the complete-span start is ts − dur; lifecycle events become async
// b/e pairs (admit → complete) plus instants on the machine tracks.
func writeServeEvent(out *perfettoFile, ev TraceEvent, schedPID int, machineMeta func(int)) {
	sv := ev.Serve
	ts := ev.T * usPerSec
	args := map[string]interface{}{}
	if sv.Req != "" {
		args["req"] = sv.Req
	}
	if sv.Task != "" {
		args["task"] = sv.Task
	}
	if sv.App != "" {
		args["app"] = sv.App
	}
	switch ev.Kind {
	case "admit":
		if id, ok := serveTaskNum(sv.Task); ok {
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: sv.App, Cat: "task", Ph: "b", TS: ts,
				PID: schedPID, TID: serveTaskTID, ID: &id, Args: args,
			})
		}
	case "complete":
		if id, ok := serveTaskNum(sv.Task); ok {
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: sv.App, Cat: "task", Ph: "e", TS: ts,
				PID: schedPID, TID: serveTaskTID, ID: &id,
			})
		}
		if sv.Machine >= 0 {
			machineMeta(sv.Machine)
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "complete", Cat: "serve", Ph: "i", TS: ts, Scope: "t",
				PID: sv.Machine + 1, TID: sv.Slot + 1, Args: args,
			})
		}
	case "place", "evict_requeue":
		if sv.Machine >= 0 {
			machineMeta(sv.Machine)
			if sv.Neighbour != "" {
				args["neighbour"] = sv.Neighbour
			}
			if sv.Predicted > 0 {
				args["pred"] = sv.Predicted
			}
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: ev.Kind, Cat: "serve", Ph: "i", TS: ts, Scope: "t",
				PID: sv.Machine + 1, TID: sv.Slot + 1, Args: args,
			})
		}
	case "reject":
		if sv.Reason != "" {
			args["reason"] = sv.Reason
		}
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: "reject", Cat: "admission", Ph: "i", TS: ts, Scope: "t",
			PID: schedPID, TID: serveTaskTID, Args: args,
		})
	case "coalesce_wait":
		dur := sv.DurS * usPerSec
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: sv.App, Cat: "coalesce", Ph: "X", TS: ts - dur, Dur: &dur,
			PID: schedPID, TID: serveCoalesceTID, Args: args,
		})
	case "score", "batch_pass":
		dur := sv.DurS * usPerSec
		args["batch"] = sv.Batch
		if ev.Kind == "batch_pass" {
			args["placed"] = sv.Placed
		}
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: ev.Kind, Cat: "sched", Ph: "X", TS: ts - dur, Dur: &dur,
			PID: schedPID, TID: serveSchedTID, Args: args,
		})
	default: // plan_commit, plan_retry, plan_fallback, future kinds
		out.TraceEvents = append(out.TraceEvents, perfettoEvent{
			Name: ev.Kind, Cat: "sched", Ph: "i", TS: ts, Scope: "t",
			PID: schedPID, TID: serveSchedTID, Args: args,
		})
	}
}

// WritePerfetto renders this tracer's retained events (a convenience for
// in-process export; file-based pipelines go NDJSON → tracontrace).
func (t *Tracer) WritePerfetto(w io.Writer) error {
	return WritePerfetto(w, &RunTrace{
		Label: t.label, Scheduler: t.scheduler, Machines: t.machines,
		Total: t.Total(), Dropped: t.Dropped(), Events: t.Events(),
	})
}
