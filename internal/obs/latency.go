package obs

// Latency summarization shared by the serving daemon (tracond) and the
// load generator (traconload): both record request latencies into a
// Histogram and report the same percentile digest, so the numbers in
// /metrics and in the load report are computed by one piece of code.

// LatencySummary condenses a latency histogram into the digest a serving
// benchmark reports: count, mean, and the p50/p95/p99 quantile estimates.
// Quantiles inherit Histogram.Quantile's semantics: interpolated within
// buckets, lower-bounded at the last bucket bound for overflow ranks.
type LatencySummary struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// Latency builds the summary digest from a snapshot.
func (s HistogramSnapshot) Latency() LatencySummary {
	return LatencySummary{
		N:    s.N,
		Mean: s.Mean(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
	}
}

// Latency builds the summary digest from the live histogram.
func (h *Histogram) Latency() LatencySummary { return h.Snapshot().Latency() }

// DefaultLatencyBuckets spans request latencies from 10µs to ~20min with
// 2× exponential resolution — wide enough for an in-process placement
// decision and for a queued task waiting out a saturated cluster.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(1e-5, 2, 27) }

// BatchSizeBuckets spans scheduling batch sizes from a singleton to 1024
// tasks with 2× resolution — the serving daemon's batch-size histogram
// records one observation per flushed scheduling pass.
func BatchSizeBuckets() []float64 { return ExpBuckets(1, 2, 11) }
