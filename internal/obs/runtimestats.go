package obs

import (
	"runtime"
	"time"
)

// Runtime self-stats: a background sampler that publishes the Go
// runtime's own health signals (goroutine count, heap in use, GC work)
// into a Registry as gauges, so the daemon's process vitals ride the
// same /metrics surface — JSON and Prometheus — as its serving metrics.

// DefaultRuntimeStatsInterval is the default sampling period.
const DefaultRuntimeStatsInterval = 5 * time.Second

// RuntimeSampler periodically snapshots runtime.MemStats into a registry.
type RuntimeSampler struct {
	reg   *Registry
	every time.Duration
	stop  chan struct{}
	done  chan struct{}
}

// StartRuntimeStats samples immediately (so the gauges exist before the
// first scrape), then every interval until Stop. every <= 0 takes the
// default.
func StartRuntimeStats(reg *Registry, every time.Duration) *RuntimeSampler {
	if every <= 0 {
		every = DefaultRuntimeStatsInterval
	}
	s := &RuntimeSampler{
		reg:   reg,
		every: every,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.Sample()
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.every)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.Sample()
		}
	}
}

// Sample takes one reading now. ReadMemStats briefly stops the world, so
// the interval should stay in whole seconds under serving load.
func (s *RuntimeSampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("runtime.heap_inuse_bytes").Set(float64(ms.HeapInuse))
	s.reg.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	s.reg.Gauge("runtime.gc_runs").Set(float64(ms.NumGC))
}

// Stop halts the sampler and waits for its goroutine to exit.
func (s *RuntimeSampler) Stop() {
	close(s.stop)
	<-s.done
}
