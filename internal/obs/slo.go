package obs

import (
	"sync"
	"time"
)

// Rolling-window SLO evaluation for the serving daemon: a latency
// objective (p99 of the last window must stay under a target) and an
// error-rate objective (the fraction of failed requests must stay under
// an error budget). The window is a ring of fixed time slices, so memory
// is constant and expired samples age out without heap churn; Report
// merges the live slices into one HistogramSnapshot and reuses the
// registry's quantile estimator, keeping the SLO's p99 arithmetic
// identical to /metrics and the load generator.

// SLOConfig tunes a tracker. Zero values take the defaults.
type SLOConfig struct {
	// Window is the rolling evaluation window (DefaultSLOWindow if 0).
	Window time.Duration
	// Slices is the ring granularity (DefaultSLOSlices if 0): a sample
	// ages out after at most Window + Window/Slices.
	Slices int
	// LatencyP99 is the latency objective in seconds: the rolling p99 must
	// stay at or under it (DefaultSLOLatencyP99 if 0; negative disables).
	LatencyP99 float64
	// ErrorRate is the error budget: the rolling error fraction must stay
	// at or under it (DefaultSLOErrorRate if 0; negative disables).
	ErrorRate float64
	// Buckets are the latency histogram bounds (DefaultLatencyBuckets if
	// nil). The p99 resolution is the bucket resolution.
	Buckets []float64
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// SLO defaults: a minute-scale window sliced into 5-second buckets, a
// 250ms p99 placement-path objective, and a 1% error budget.
const (
	DefaultSLOSlices     = 12
	DefaultSLOLatencyP99 = 0.25
	DefaultSLOErrorRate  = 0.01
)

// DefaultSLOWindow is the default rolling evaluation window.
const DefaultSLOWindow = time.Minute

// SLO status values. StatusNoData marks an empty window: objectives are
// vacuously met, and healthz reports ok.
const (
	SLOStatusOK       = "ok"
	SLOStatusDegraded = "degraded"
	SLOStatusNoData   = "no_data"
)

// sloSlice is one time slice of the rolling window.
type sloSlice struct {
	epoch    int64 // slice index since the epoch; -1 = never used
	counts   []int64
	sum      float64
	n        int64
	errors   int64
	requests int64
}

// SLOTracker evaluates the rolling objectives. Safe for concurrent use.
type SLOTracker struct {
	cfg    SLOConfig
	width  time.Duration // one slice's span
	bounds []float64

	mu     sync.Mutex
	slices []sloSlice
}

// NewSLOTracker builds a tracker from cfg (zero values take defaults).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.Window <= 0 {
		cfg.Window = DefaultSLOWindow
	}
	if cfg.Slices <= 0 {
		cfg.Slices = DefaultSLOSlices
	}
	if cfg.LatencyP99 == 0 {
		cfg.LatencyP99 = DefaultSLOLatencyP99
	}
	if cfg.ErrorRate == 0 {
		cfg.ErrorRate = DefaultSLOErrorRate
	}
	if cfg.Buckets == nil {
		cfg.Buckets = DefaultLatencyBuckets()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &SLOTracker{
		cfg:    cfg,
		width:  cfg.Window / time.Duration(cfg.Slices),
		bounds: append([]float64(nil), cfg.Buckets...),
	}
	t.slices = make([]sloSlice, cfg.Slices)
	for i := range t.slices {
		t.slices[i] = sloSlice{epoch: -1, counts: make([]int64, len(t.bounds)+1)}
	}
	return t
}

// sliceLocked resolves the live slice for the current instant, recycling
// any slice whose epoch has rotated out of the window.
func (t *SLOTracker) sliceLocked(now time.Time) *sloSlice {
	epoch := now.UnixNano() / int64(t.width)
	s := &t.slices[int(epoch%int64(len(t.slices)))]
	if s.epoch != epoch {
		s.epoch = epoch
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.sum, s.n, s.errors, s.requests = 0, 0, 0, 0
	}
	return s
}

// Record folds one request into the window: its latency in seconds and
// whether it counts against the error budget.
func (t *SLOTracker) Record(latencySeconds float64, isError bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sliceLocked(t.cfg.Now())
	s.requests++
	if isError {
		s.errors++
	}
	s.sum += latencySeconds
	s.n++
	for i, b := range t.bounds {
		if latencySeconds <= b {
			s.counts[i]++
			return
		}
	}
	s.counts[len(t.bounds)]++
}

// SLOReport is the GET /v1/slo body: the rolling window's observed
// latency digest and error rate against the configured objectives.
type SLOReport struct {
	WindowS  float64 `json:"window_s"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	// ErrorRate is errors/requests over the window (0 when empty).
	ErrorRate float64 `json:"error_rate"`
	// ErrorBudgetLeft is the unburned fraction of the error budget:
	// 1 = untouched, 0 = exhausted, negative = overspent.
	ErrorBudgetLeft float64        `json:"error_budget_left"`
	Latency         LatencySummary `json:"latency_s"`
	// Objectives echo the configured targets (≤ 0 = disabled).
	LatencyObjectiveP99S float64 `json:"latency_objective_p99_s"`
	ErrorRateObjective   float64 `json:"error_rate_objective"`
	// LatencyOK / ErrorsOK are the per-objective verdicts; Status is
	// "ok", "degraded", or "no_data" for an empty window.
	LatencyOK bool   `json:"latency_ok"`
	ErrorsOK  bool   `json:"errors_ok"`
	Status    string `json:"status"`
}

// Report evaluates the objectives over the slices still inside the window.
func (t *SLOTracker) Report() SLOReport {
	t.mu.Lock()
	now := t.cfg.Now()
	oldest := now.UnixNano()/int64(t.width) - int64(len(t.slices)) + 1
	merged := HistogramSnapshot{
		Bounds: append([]float64(nil), t.bounds...),
		Counts: make([]int64, len(t.bounds)+1),
	}
	var errors, requests int64
	for i := range t.slices {
		s := &t.slices[i]
		if s.epoch < oldest {
			continue
		}
		for j, c := range s.counts {
			merged.Counts[j] += c
		}
		merged.Sum += s.sum
		merged.N += s.n
		errors += s.errors
		requests += s.requests
	}
	t.mu.Unlock()

	rep := SLOReport{
		WindowS:              t.cfg.Window.Seconds(),
		Requests:             requests,
		Errors:               errors,
		Latency:              merged.Latency(),
		LatencyObjectiveP99S: t.cfg.LatencyP99,
		ErrorRateObjective:   t.cfg.ErrorRate,
	}
	if requests == 0 {
		rep.LatencyOK, rep.ErrorsOK = true, true
		rep.ErrorBudgetLeft = 1
		rep.Status = SLOStatusNoData
		return rep
	}
	rep.ErrorRate = float64(errors) / float64(requests)
	rep.LatencyOK = t.cfg.LatencyP99 <= 0 || rep.Latency.P99 <= t.cfg.LatencyP99
	if t.cfg.ErrorRate > 0 {
		rep.ErrorBudgetLeft = 1 - rep.ErrorRate/t.cfg.ErrorRate
		rep.ErrorsOK = rep.ErrorRate <= t.cfg.ErrorRate
	} else {
		rep.ErrorBudgetLeft = 1
		rep.ErrorsOK = true
	}
	if rep.LatencyOK && rep.ErrorsOK {
		rep.Status = SLOStatusOK
	} else {
		rep.Status = SLOStatusDegraded
	}
	return rep
}
