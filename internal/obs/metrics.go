// Package obs is the simulation stack's observability and self-audit
// layer: a stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms), a per-run SimStats collector implementing sim.Observer, and
// an invariant auditor that validates the engine's internal consistency
// after every event. High-fidelity simulators live or die on validation
// against invariants; this package turns silent state drift (stale heap
// entries, broken work conservation, unfair pops) into loud failures and
// exportable numbers.
//
// Everything here is deterministic for a fixed simulation: exports sort
// by name/label, and wall-clock measurements are segregated so the
// deterministic surface is byte-identical across worker counts.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter; negative deltas are rejected.
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic("obs: counter decreased")
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time metric that also tracks its maximum.
type Gauge struct {
	mu      sync.Mutex
	v, max  float64
	everSet bool
}

// Set records the current value (and the running maximum).
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	if !g.everSet || v > g.max {
		g.max = v
	}
	g.everSet = true
	g.mu.Unlock()
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the largest value ever set.
func (g *Gauge) Max() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations ≤ Bounds[i]; one implicit overflow bucket counts the rest.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExpBuckets returns n bounds starting at start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: bad exponential bucket spec")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// HistogramSnapshot is an exportable view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// entry.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	N      int64     `json:"n"`
}

// Mean returns the mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.Sum / float64(s.N)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank, assuming non-negative
// observations (the first bucket interpolates from zero). An empty
// histogram returns 0. Ranks falling into the overflow bucket return the
// last bound — the histogram cannot see beyond it, so the estimate is a
// lower bound there.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.N)
	var cum float64
	for i, b := range s.Bounds {
		c := float64(s.Counts[i])
		if cum+c >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(b-lo)
		}
		cum += c
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the q-quantile of the live histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		N:      h.n,
	}
}

// Registry is a named collection of metrics. Lookups create on first use;
// Snapshot renders everything sorted by name, so its output is
// deterministic regardless of registration or update order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; bounds are
// used only on first creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// MetricPoint is one exported metric.
type MetricPoint struct {
	Name  string             `json:"name"`
	Kind  string             `json:"kind"` // "counter" | "gauge" | "histogram"
	Value float64            `json:"value,omitempty"`
	Max   float64            `json:"max,omitempty"`
	Hist  *HistogramSnapshot `json:"hist,omitempty"`
}

// Snapshot renders every metric, sorted by (kind, name).
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []MetricPoint
	for name, c := range r.counters {
		out = append(out, MetricPoint{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricPoint{Name: name, Kind: "gauge", Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out = append(out, MetricPoint{Name: name, Kind: "histogram", Hist: &s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// round9 trims float noise for stable human-facing exports where exactness
// is not load-bearing (never applied to determinism-checked fields).
func round9(v float64) float64 {
	if v == 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1e9) / 1e9
}
