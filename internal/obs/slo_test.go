package obs

import (
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_000_000, 0)} }
func sloCfg(clk *fakeClock, cfg SLOConfig) SLOConfig {
	cfg.Now = clk.Now
	return cfg
}

func TestSLOEmptyWindowIsNoData(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{}))
	rep := tr.Report()
	if rep.Status != SLOStatusNoData {
		t.Fatalf("empty window status = %q, want %q", rep.Status, SLOStatusNoData)
	}
	if !rep.LatencyOK || !rep.ErrorsOK || rep.ErrorBudgetLeft != 1 {
		t.Fatalf("empty window must be vacuously healthy: %+v", rep)
	}
}

func TestSLOOKWithinObjectives(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{Window: time.Minute, LatencyP99: 0.25, ErrorRate: 0.1}))
	for i := 0; i < 200; i++ {
		tr.Record(0.001, false)
	}
	rep := tr.Report()
	if rep.Status != SLOStatusOK {
		t.Fatalf("status = %q, want ok: %+v", rep.Status, rep)
	}
	if rep.Requests != 200 || rep.Errors != 0 || rep.ErrorBudgetLeft != 1 {
		t.Fatalf("unexpected accounting: %+v", rep)
	}
}

func TestSLODegradedOnLatency(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{LatencyP99: 0.01}))
	for i := 0; i < 100; i++ {
		tr.Record(0.5, false) // every request far over the objective
	}
	rep := tr.Report()
	if rep.Status != SLOStatusDegraded || rep.LatencyOK {
		t.Fatalf("latency breach not flagged: %+v", rep)
	}
	if !rep.ErrorsOK {
		t.Fatalf("error objective wrongly flagged: %+v", rep)
	}
}

func TestSLODegradedOnErrorBudget(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{ErrorRate: 0.01}))
	for i := 0; i < 100; i++ {
		tr.Record(0.001, i < 5) // 5% errors against a 1% budget
	}
	rep := tr.Report()
	if rep.Status != SLOStatusDegraded || rep.ErrorsOK {
		t.Fatalf("error breach not flagged: %+v", rep)
	}
	if rep.ErrorRate != 0.05 {
		t.Fatalf("error rate = %v, want 0.05", rep.ErrorRate)
	}
	// 5% observed against 1% budget = 5× overspent.
	if rep.ErrorBudgetLeft != 1-5.0 {
		t.Fatalf("budget left = %v, want -4", rep.ErrorBudgetLeft)
	}
}

func TestSLOWindowAgesOut(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{Window: time.Minute, Slices: 12, ErrorRate: 0.01}))
	for i := 0; i < 50; i++ {
		tr.Record(1.0, true) // all errors, all slow
	}
	if rep := tr.Report(); rep.Status != SLOStatusDegraded {
		t.Fatalf("expected degraded: %+v", rep)
	}
	// One full window later the bad slice has rotated out.
	clk.advance(time.Minute + 10*time.Second)
	rep := tr.Report()
	if rep.Status != SLOStatusNoData || rep.Requests != 0 {
		t.Fatalf("stale samples survived the window: %+v", rep)
	}
	// And fresh, healthy traffic reports ok again.
	for i := 0; i < 50; i++ {
		tr.Record(0.001, false)
	}
	if rep := tr.Report(); rep.Status != SLOStatusOK {
		t.Fatalf("recovery not visible: %+v", rep)
	}
}

func TestSLOSliceRecycling(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{Window: 12 * time.Second, Slices: 12}))
	// Walk two full window rotations, one request per slice.
	for i := 0; i < 24; i++ {
		tr.Record(0.001, false)
		clk.advance(time.Second)
	}
	rep := tr.Report()
	// Only the last window's worth of slices may remain.
	if rep.Requests > 12 {
		t.Fatalf("window holds %d requests, cap is 12", rep.Requests)
	}
	if rep.Requests == 0 {
		t.Fatal("window empty after continuous traffic")
	}
}

func TestSLODisabledObjectives(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{LatencyP99: -1, ErrorRate: -1}))
	for i := 0; i < 10; i++ {
		tr.Record(10, true) // terrible by any enabled objective
	}
	rep := tr.Report()
	if rep.Status != SLOStatusOK {
		t.Fatalf("disabled objectives must never degrade: %+v", rep)
	}
}

func TestSLOP99MatchesHistogramQuantile(t *testing.T) {
	clk := newFakeClock()
	bounds := DefaultLatencyBuckets()
	tr := NewSLOTracker(sloCfg(clk, SLOConfig{Buckets: bounds}))
	ref := NewHistogram(bounds)
	for i := 0; i < 1000; i++ {
		v := 0.0001 * float64(i%37+1)
		tr.Record(v, false)
		ref.Observe(v)
	}
	rep := tr.Report()
	if got, want := rep.Latency.P99, ref.Snapshot().Latency().P99; got != want {
		t.Fatalf("SLO p99 %v != registry-path p99 %v", got, want)
	}
}
