package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on the runtime profilers the CLIs expose via
// -cpuprofile / -memprofile. CPU profiling starts immediately when cpuPath
// is non-empty; the returned stop function ends it and, when memPath is
// non-empty, garbage-collects and writes an allocs-accounted heap profile.
// Either path may be empty, in which case that profile is skipped; stop is
// never nil and is safe to call exactly once.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			// Collect garbage first so the profile reflects live objects,
			// not whatever the last GC cycle happened to leave behind.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			return f.Close()
		}
		return nil
	}, nil
}
