package obs

import (
	"encoding/binary"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"tracon/internal/sched"
	"tracon/internal/sim"
)

// SimStats is a per-run statistics collector implementing sim.Observer.
// It integrates time-weighted state (queue length, busy slots) between
// events, tracks heap high-water marks, accumulates per-application
// realized-vs-predicted interference error, and times scheduler decisions.
//
// Every number except scheduler wall-clock latency is a pure function of
// the simulated run, so exports with wall latency excluded are
// byte-identical no matter how many workers executed the experiment suite.
type SimStats struct {
	mu sync.Mutex

	// Label identifies the run in exports; it must be derived from run
	// inputs (not creation order) to keep exports deterministic.
	Label string

	// Timeline sampling: queue length recorded on change, downsampled by
	// stride doubling once the cap is hit so memory stays bounded and the
	// kept points are a deterministic subset.
	timeline  []TimelinePoint
	stride    int
	changes   int64
	lastQueue int

	// Time-weighted integrals over [firstEvent, lastEvent].
	started       bool
	prevTime      float64
	prevBusy      int
	prevQueue     int
	busyIntegral  float64 // busy-slot-seconds
	queueIntegral float64 // queued-task-seconds
	span          float64

	queueHist *Histogram

	events   map[string]int64
	maxQueue int

	maxEventHeap    int
	maxGlobalHeap   int
	maxCategoryHeap int

	popsTotal int64
	popsAny   int64

	perApp map[string]*appAcc

	schedCalls  int64
	schedPlaced int64
	schedWall   time.Duration

	machines   int
	totalSlots int

	final *sim.Results
}

type appAcc struct {
	n            int64
	sumAbsRelErr float64
	sumRelErr    float64
	sumPredicted float64
	sumRealized  float64
}

// TimelinePoint is one (time, queue-length) sample.
type TimelinePoint struct {
	T float64 `json:"t"`
	Q int     `json:"q"`
}

// timelineCap bounds the per-run timeline; when full, every other point is
// dropped and the sampling stride doubles.
const timelineCap = 2048

// NewSimStats returns a collector for one run.
func NewSimStats(label string) *SimStats {
	return &SimStats{
		Label:     label,
		stride:    1,
		queueHist: NewHistogram(ExpBuckets(1, 2, 14)), // 1..8192 then overflow
		events:    map[string]int64{},
		perApp:    map[string]*appAcc{},
		lastQueue: -1,
	}
}

// OnEvent integrates the previous state up to now and snapshots the new one.
func (s *SimStats) OnEvent(v sim.View, kind sim.EventKind, now float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.machines == 0 {
		s.machines = v.Machines()
		s.totalSlots = v.TotalSlots()
	}
	if s.started {
		if dt := now - s.prevTime; dt > 0 {
			s.busyIntegral += float64(s.prevBusy) * dt
			s.queueIntegral += float64(s.prevQueue) * dt
			s.span += dt
		}
	}
	// Crashed machines' slots are neither free nor busy; excluding them
	// keeps utilization honest during downtime (DownMachines is zero in
	// fault-free runs).
	busy := v.TotalSlots() - v.FreeSlots() - v.DownMachines()*(v.TotalSlots()/v.Machines())
	if busy < 0 {
		busy = 0
	}
	q := v.Backlog()
	s.prevTime, s.prevBusy, s.prevQueue, s.started = now, busy, q, true

	s.events[kind.String()]++
	s.queueHist.Observe(float64(q))
	if q > s.maxQueue {
		s.maxQueue = q
	}
	if q != s.lastQueue {
		s.lastQueue = q
		s.changes++
		if (s.changes-1)%int64(s.stride) == 0 {
			s.timeline = append(s.timeline, TimelinePoint{T: now, Q: q})
			if len(s.timeline) >= timelineCap {
				kept := s.timeline[:0]
				for i := 0; i < len(s.timeline); i += 2 {
					kept = append(kept, s.timeline[i])
				}
				s.timeline = kept
				s.stride *= 2
			}
		}
	}
	if n := v.EventHeapLen(); n > s.maxEventHeap {
		s.maxEventHeap = n
	}
	ps := v.PoolStats()
	if ps.GlobalHeapLen > s.maxGlobalHeap {
		s.maxGlobalHeap = ps.GlobalHeapLen
	}
	if ps.CategoryHeapLen > s.maxCategoryHeap {
		s.maxCategoryHeap = ps.CategoryHeapLen
	}
	return nil
}

// OnComplete accumulates realized-vs-predicted interference error per app.
func (s *SimStats) OnComplete(v sim.View, c sim.Completion) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	app := c.Record.Task.App
	acc := s.perApp[app]
	if acc == nil {
		acc = &appAcc{}
		s.perApp[app] = acc
	}
	realized := c.Record.Runtime()
	acc.n++
	acc.sumPredicted += c.Predicted
	acc.sumRealized += realized
	if c.Predicted > 0 {
		rel := (realized - c.Predicted) / c.Predicted
		acc.sumRelErr += rel
		if rel < 0 {
			rel = -rel
		}
		acc.sumAbsRelErr += rel
	}
	return nil
}

// OnPop counts free-pool resolutions.
func (s *SimStats) OnPop(v sim.View, p sim.PopInfo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.popsTotal++
	if p.Category == sched.AnyCategory {
		s.popsAny++
	}
	return nil
}

// OnSchedule accumulates scheduler invocation stats and wall latency.
func (s *SimStats) OnSchedule(v sim.View, info sim.ScheduleInfo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schedCalls++
	s.schedPlaced += int64(info.Placed)
	s.schedWall += info.Wall
	return nil
}

// OnDone captures the run's final Results.
func (s *SimStats) OnDone(v sim.View, res *sim.Results) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.final = res
	return nil
}

// AppError is the exported per-application prediction-error summary.
type AppError struct {
	App string `json:"app"`
	N   int64  `json:"n"`
	// MeanAbsRelErr is mean |realized−predicted|/predicted — the
	// interference-prediction error realized by the engine, the analogue of
	// the modeling-error metric the paper reports for TRACON's models.
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	// MeanRelErr keeps the sign: positive when tasks run longer than their
	// placement-time forecast (neighbour churn added interference).
	MeanRelErr    float64 `json:"mean_rel_err"`
	MeanPredicted float64 `json:"mean_predicted_s"`
	MeanRealized  float64 `json:"mean_realized_s"`
}

// FaultStats is the exported fault-recovery summary of one run.
type FaultStats struct {
	// FailedAttempts, Timeouts and Evictions count attempts ended by
	// probabilistic failure, per-attempt deadline and machine crash.
	FailedAttempts int `json:"failed_attempts"`
	Timeouts       int `json:"timeouts"`
	Evictions      int `json:"evictions"`
	// Retries counts re-placements scheduled; Lost counts tasks abandoned
	// after exhausting their attempt budget.
	Retries int `json:"retries"`
	Lost    int `json:"lost"`
	// MachineDowns and MachineUps count crash/recover transitions.
	MachineDowns int `json:"machine_downs"`
	MachineUps   int `json:"machine_ups"`
}

// RunStats is the exportable snapshot of one run. All fields are
// deterministic for a fixed simulation except SchedWallMS, which Snapshot
// omits unless asked for.
type RunStats struct {
	Label     string `json:"label"`
	Scheduler string `json:"scheduler"`
	Machines  int    `json:"machines"`
	Slots     int    `json:"slots"`

	Completed int     `json:"completed"`
	Submitted int     `json:"submitted"`
	Horizon   float64 `json:"horizon_s"`
	EnergyJ   float64 `json:"energy_j"`

	MeanRuntime float64 `json:"mean_runtime_s"`
	MeanWait    float64 `json:"mean_wait_s"`

	SlotUtilization float64 `json:"slot_utilization"`
	MeanQueueLen    float64 `json:"mean_queue_len"`
	MaxQueueLen     int     `json:"max_queue_len"`

	// QueueP50/P95/P99 are event-weighted queue-length quantiles estimated
	// from QueueHist by linear interpolation within buckets.
	QueueP50 float64 `json:"queue_p50"`
	QueueP95 float64 `json:"queue_p95"`
	QueueP99 float64 `json:"queue_p99"`

	Events        map[string]int64  `json:"events"`
	QueueHist     HistogramSnapshot `json:"queue_hist"`
	QueueTimeline []TimelinePoint   `json:"queue_timeline"`

	MaxEventHeap    int `json:"max_event_heap"`
	MaxGlobalHeap   int `json:"max_pool_global_heap"`
	MaxCategoryHeap int `json:"max_pool_category_heap"`

	PopsTotal int64 `json:"pops_total"`
	PopsAny   int64 `json:"pops_any"`

	PerApp []AppError `json:"per_app"`

	// Faults summarizes fault-injection recovery; nil (and absent from the
	// JSON) in fault-free runs, so existing exports are byte-unchanged.
	Faults *FaultStats `json:"faults,omitempty"`

	SchedCalls  int64 `json:"sched_calls"`
	SchedPlaced int64 `json:"sched_placed"`
	// SchedWallMS is scheduler decision latency in wall-clock milliseconds.
	// It is nondeterministic and therefore zeroed in deterministic exports.
	SchedWallMS float64 `json:"sched_wall_ms,omitempty"`
}

// Snapshot renders the run's statistics. includeWall controls whether the
// nondeterministic wall-clock scheduler latency is included.
func (s *SimStats) Snapshot(includeWall bool) RunStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := RunStats{
		Label:           s.Label,
		Machines:        s.machines,
		Slots:           s.totalSlots,
		MaxQueueLen:     s.maxQueue,
		Events:          map[string]int64{},
		QueueHist:       s.queueHist.Snapshot(),
		QueueTimeline:   append([]TimelinePoint(nil), s.timeline...),
		MaxEventHeap:    s.maxEventHeap,
		MaxGlobalHeap:   s.maxGlobalHeap,
		MaxCategoryHeap: s.maxCategoryHeap,
		PopsTotal:       s.popsTotal,
		PopsAny:         s.popsAny,
		SchedCalls:      s.schedCalls,
		SchedPlaced:     s.schedPlaced,
	}
	for k, n := range s.events {
		out.Events[k] = n
	}
	out.QueueP50 = round9(out.QueueHist.Quantile(0.50))
	out.QueueP95 = round9(out.QueueHist.Quantile(0.95))
	out.QueueP99 = round9(out.QueueHist.Quantile(0.99))
	if s.span > 0 {
		out.SlotUtilization = round9(s.busyIntegral / (float64(s.totalSlots) * s.span))
		out.MeanQueueLen = round9(s.queueIntegral / s.span)
	}
	if s.final != nil {
		out.Scheduler = s.final.Scheduler
		out.Completed = s.final.CompletedCount
		out.Submitted = s.final.Submitted
		out.Horizon = s.final.Horizon
		out.EnergyJ = round9(s.final.EnergyJ)
		out.MeanRuntime = round9(s.final.MeanRuntime())
		out.MeanWait = round9(s.final.MeanWait())
		f := s.final
		if f.FailedAttempts != 0 || f.Timeouts != 0 || f.Evictions != 0 ||
			f.Retries != 0 || f.Lost != 0 || f.MachineDowns != 0 || f.MachineUps != 0 {
			out.Faults = &FaultStats{
				FailedAttempts: f.FailedAttempts, Timeouts: f.Timeouts,
				Evictions: f.Evictions, Retries: f.Retries, Lost: f.Lost,
				MachineDowns: f.MachineDowns, MachineUps: f.MachineUps,
			}
		}
	}
	apps := make([]string, 0, len(s.perApp))
	for app := range s.perApp {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		a := s.perApp[app]
		e := AppError{App: app, N: a.n}
		if a.n > 0 {
			e.MeanAbsRelErr = round9(a.sumAbsRelErr / float64(a.n))
			e.MeanRelErr = round9(a.sumRelErr / float64(a.n))
			e.MeanPredicted = round9(a.sumPredicted / float64(a.n))
			e.MeanRealized = round9(a.sumRealized / float64(a.n))
		}
		out.PerApp = append(out.PerApp, e)
	}
	if includeWall {
		out.SchedWallMS = float64(s.schedWall) / float64(time.Millisecond)
	}
	return out
}

// RunLabel derives a deterministic run identifier from run inputs: a
// human-readable prefix plus an FNV-1a hash over the task stream. Two runs
// with the same experiment kind, scheduler, cluster size and tasks get the
// same label no matter which worker executes them or in what order — the
// property that keeps metric exports identical across -parallel widths.
func RunLabel(kind, scheduler string, machines int, tasks []sched.Task) string {
	h := fnv.New64a()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	io.WriteString(h, kind)
	io.WriteString(h, "\x00")
	io.WriteString(h, scheduler)
	io.WriteString(h, "\x00")
	wi(int64(machines))
	wi(int64(len(tasks)))
	for _, t := range tasks {
		wi(t.ID)
		io.WriteString(h, t.App)
		wf(t.Arrival)
	}
	return fmt.Sprintf("%s/%s/m%d/%016x", kind, scheduler, machines, h.Sum64())
}

// Collector owns one SimStats per run label, for experiment suites that
// execute many runs (possibly from parallel workers).
type Collector struct {
	mu   sync.Mutex
	runs map[string]*SimStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{runs: map[string]*SimStats{}}
}

// Observer returns the run collector for label, creating it on first use.
// The label must be input-derived (see RunLabel) so that which-worker-ran-it
// never leaks into exports.
func (c *Collector) Observer(label string) *SimStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.runs[label]
	if !ok {
		s = NewSimStats(label)
		c.runs[label] = s
	}
	return s
}

// Len returns the number of runs collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// Snapshot renders every run sorted by label.
func (c *Collector) Snapshot(includeWall bool) []RunStats {
	c.mu.Lock()
	stats := make([]*SimStats, 0, len(c.runs))
	for _, s := range c.runs {
		stats = append(stats, s)
	}
	c.mu.Unlock()
	out := make([]RunStats, 0, len(stats))
	for _, s := range stats {
		out = append(out, s.Snapshot(includeWall))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// WriteJSON writes the full per-run statistics as indented JSON.
func (c *Collector) WriteJSON(w io.Writer, includeWall bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot(includeWall))
}

// csvHeader is the flat per-run summary schema (documented in README.md).
var csvHeader = []string{
	"label", "scheduler", "machines", "slots", "completed", "submitted",
	"horizon_s", "energy_j", "mean_runtime_s", "mean_wait_s",
	"slot_utilization", "mean_queue_len", "max_queue_len",
	"queue_p50", "queue_p95", "queue_p99",
	"max_event_heap", "max_pool_global_heap", "max_pool_category_heap",
	"pops_total", "pops_any", "sched_calls", "sched_placed",
	"mean_abs_rel_err",
}

// WriteCSV writes a flat one-row-per-run summary (wall latency excluded —
// the CSV is always deterministic).
func (c *Collector) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, r := range c.Snapshot(false) {
		// Overall mean |rel err| weighted by per-app counts.
		var n int64
		var sum float64
		for _, a := range r.PerApp {
			n += a.N
			sum += a.MeanAbsRelErr * float64(a.N)
		}
		overall := 0.0
		if n > 0 {
			overall = round9(sum / float64(n))
		}
		row := []string{
			r.Label, r.Scheduler, strconv.Itoa(r.Machines), strconv.Itoa(r.Slots),
			strconv.Itoa(r.Completed), strconv.Itoa(r.Submitted),
			f(r.Horizon), f(r.EnergyJ), f(r.MeanRuntime), f(r.MeanWait),
			f(r.SlotUtilization), f(r.MeanQueueLen), strconv.Itoa(r.MaxQueueLen),
			f(r.QueueP50), f(r.QueueP95), f(r.QueueP99),
			strconv.Itoa(r.MaxEventHeap), strconv.Itoa(r.MaxGlobalHeap),
			strconv.Itoa(r.MaxCategoryHeap),
			d(r.PopsTotal), d(r.PopsAny), d(r.SchedCalls), d(r.SchedPlaced),
			f(overall),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Export writes metrics_<tag>.json and metrics_<tag>.csv under dir,
// creating dir if needed. The JSON includes wall latency only when
// includeWall is set; the CSV never does.
func (c *Collector) Export(dir, tag string, includeWall bool) (jsonPath, csvPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	jsonPath = filepath.Join(dir, fmt.Sprintf("metrics_%s.json", tag))
	jf, err := os.Create(jsonPath)
	if err != nil {
		return "", "", err
	}
	if err := c.WriteJSON(jf, includeWall); err != nil {
		jf.Close()
		return "", "", err
	}
	if err := jf.Close(); err != nil {
		return "", "", err
	}
	csvPath = filepath.Join(dir, fmt.Sprintf("metrics_%s.csv", tag))
	cf, err := os.Create(csvPath)
	if err != nil {
		return "", "", err
	}
	if err := c.WriteCSV(cf); err != nil {
		cf.Close()
		return "", "", err
	}
	return jsonPath, csvPath, cf.Close()
}

// Multi fans callbacks out to several observers in order; the first error
// aborts the run.
type Multi []sim.Observer

// OnEvent forwards to each observer.
func (m Multi) OnEvent(v sim.View, kind sim.EventKind, now float64) error {
	for _, o := range m {
		if err := o.OnEvent(v, kind, now); err != nil {
			return err
		}
	}
	return nil
}

// OnComplete forwards to each observer.
func (m Multi) OnComplete(v sim.View, c sim.Completion) error {
	for _, o := range m {
		if err := o.OnComplete(v, c); err != nil {
			return err
		}
	}
	return nil
}

// OnPop forwards to each observer.
func (m Multi) OnPop(v sim.View, p sim.PopInfo) error {
	for _, o := range m {
		if err := o.OnPop(v, p); err != nil {
			return err
		}
	}
	return nil
}

// OnSchedule forwards to each observer.
func (m Multi) OnSchedule(v sim.View, s sim.ScheduleInfo) error {
	for _, o := range m {
		if err := o.OnSchedule(v, s); err != nil {
			return err
		}
	}
	return nil
}

// OnDone forwards to each observer.
func (m Multi) OnDone(v sim.View, res *sim.Results) error {
	for _, o := range m {
		if err := o.OnDone(v, res); err != nil {
			return err
		}
	}
	return nil
}
