package xen

import (
	"errors"
	"fmt"
)

// AppSpec describes a workload as the host simulator executes it. Both the
// paper's eight real benchmarks and the synthetic profiling workloads of
// Section 3.1 are expressed in these terms.
//
// Two execution styles are supported:
//
//   - Finite applications (Endless=false) carry total demands: CPUSeconds of
//     guest computation, ReadOps/WriteOps requests, ThinkSeconds of idle
//     time. They run to completion; the simulator reports runtime and IOPS.
//
//   - Background generators (Endless=true) are the paper's profiling
//     workloads: a CPU spinner at CPUDemand utilization plus a closed-loop
//     I/O thread that tries to sustain TargetReadRate/TargetWriteRate
//     requests per second forever.
type AppSpec struct {
	Name string

	// Finite totals (used when Endless is false).
	CPUSeconds   float64 // guest CPU work at full speed
	ReadOps      float64 // total read requests
	WriteOps     float64 // total write requests
	ThinkSeconds float64 // idle/waiting time not on CPU or disk

	// Request shape.
	ReqSizeKB float64 // request size (KB)
	Seq       float64 // sequentiality of the I/O stream, 0..1

	// Endless background generator knobs (used when Endless is true).
	Endless         bool
	CPUDemand       float64 // 0..1 fraction of one vCPU the spinner wants
	TargetReadRate  float64 // read requests/second the generator tries to issue
	TargetWriteRate float64 // write requests/second

	// MaxIODepth caps how many requests the app keeps in flight. Depth 1 is
	// a synchronous reader; data-intensive apps with readahead get more.
	MaxIODepth float64
}

// ErrBadSpec reports an invalid application specification.
var ErrBadSpec = errors.New("xen: invalid application spec")

// Validate checks the spec for impossible values.
func (a AppSpec) Validate() error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s: %s", ErrBadSpec, a.Name, fmt.Sprintf(format, args...))
	}
	if a.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadSpec)
	}
	if a.Seq < 0 || a.Seq > 1 {
		return bad("sequentiality %v outside [0,1]", a.Seq)
	}
	if a.ReqSizeKB <= 0 {
		return bad("request size %v must be positive", a.ReqSizeKB)
	}
	if a.Endless {
		if a.CPUDemand < 0 || a.CPUDemand > 1 {
			return bad("CPU demand %v outside [0,1]", a.CPUDemand)
		}
		if a.TargetReadRate < 0 || a.TargetWriteRate < 0 {
			return bad("negative target I/O rate")
		}
		return nil
	}
	if a.CPUSeconds < 0 || a.ReadOps < 0 || a.WriteOps < 0 || a.ThinkSeconds < 0 {
		return bad("negative demand totals")
	}
	if a.CPUSeconds == 0 && a.ReadOps == 0 && a.WriteOps == 0 {
		return bad("no work at all")
	}
	return nil
}

// TotalOps returns the total number of I/O requests of a finite app.
func (a AppSpec) TotalOps() float64 { return a.ReadOps + a.WriteOps }

// ReadFraction returns the share of reads in the app's I/O mix (0.5 for an
// app with no I/O, which keeps downstream arithmetic well-defined).
func (a AppSpec) ReadFraction() float64 {
	if a.Endless {
		tot := a.TargetReadRate + a.TargetWriteRate
		if tot == 0 {
			return 0.5
		}
		return a.TargetReadRate / tot
	}
	tot := a.TotalOps()
	if tot == 0 {
		return 0.5
	}
	return a.ReadOps / tot
}

// depth returns the I/O queue depth, defaulting to 1 (synchronous).
func (a AppSpec) depth() float64 {
	if a.MaxIODepth < 1 {
		return 1
	}
	return a.MaxIODepth
}

// Idle returns an endless spec that consumes nothing — the "other VM idle"
// case used for no-interference baselines.
func Idle() AppSpec {
	return AppSpec{Name: "idle", Endless: true, ReqSizeKB: 4}
}
