package xen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func cpuHog(name string, demand float64) AppSpec {
	return AppSpec{Name: name, Endless: true, CPUDemand: demand, ReqSizeKB: 4}
}

func seqReader(name string) AppSpec {
	return AppSpec{Name: name, ReadOps: 100000, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4, CPUSeconds: 5}
}

func ioHogBG(name string) AppSpec {
	return AppSpec{Name: name, Endless: true, CPUDemand: 0.05, TargetReadRate: 1e9, ReqSizeKB: 64, Seq: 1.0, MaxIODepth: 4}
}

func TestNewHostRejectsBadConfig(t *testing.T) {
	cfg := DefaultHost()
	cfg.GuestCPUCap = 0
	if _, err := NewHost(cfg); err == nil {
		t.Fatal("zero guest capacity accepted")
	}
	cfg = DefaultHost()
	cfg.Dom0CPUCap = -1
	if _, err := NewHost(cfg); err == nil {
		t.Fatal("negative dom0 capacity accepted")
	}
}

func TestSteadyRejectsInvalidSpecs(t *testing.T) {
	h := newTestHost(t)
	if _, err := h.Steady(nil); err == nil {
		t.Fatal("empty app set accepted")
	}
	if _, err := h.Steady([]AppSpec{{Name: "x", ReqSizeKB: 4}}); err == nil {
		t.Fatal("spec with no work accepted")
	}
	if _, err := h.Steady([]AppSpec{{Name: "x", CPUSeconds: 1, ReqSizeKB: 0}}); err == nil {
		t.Fatal("zero request size accepted")
	}
}

func TestSoloCPUOnlyRuntime(t *testing.T) {
	h := newTestHost(t)
	st, err := h.Steady([]AppSpec{{Name: "calc", CPUSeconds: 600, ReqSizeKB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st[0].Runtime-600) > 1e-6 {
		t.Fatalf("solo CPU-only runtime = %v want 600", st[0].Runtime)
	}
	if st[0].IOPS != 0 || st[0].Dom0CPU != 0 {
		t.Fatalf("CPU-only app should not touch I/O: %+v", st[0])
	}
	if math.Abs(st[0].GuestCPU-1) > 1e-6 {
		t.Fatalf("CPU-only app should saturate its vCPU, got %v", st[0].GuestCPU)
	}
}

func TestSoloSeqReaderRespectsDeviceCeiling(t *testing.T) {
	h := newTestHost(t)
	st, err := h.Steady([]AppSpec{seqReader("sr")})
	if err != nil {
		t.Fatal(err)
	}
	devMax := h.Config().Disk.MaxSeqIOPS(64)
	if st[0].IOPS > devMax+1 {
		t.Fatalf("solo IOPS %v exceeds device max %v", st[0].IOPS, devMax)
	}
	if st[0].IOPS < 0.5*devMax {
		t.Fatalf("sequential reader should get most of the device: %v of %v", st[0].IOPS, devMax)
	}
}

func TestTwoCPUHogsHalve(t *testing.T) {
	h := newTestHost(t)
	st, err := h.Steady([]AppSpec{
		{Name: "calcA", CPUSeconds: 100, ReqSizeKB: 4},
		{Name: "calcB", CPUSeconds: 100, ReqSizeKB: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st {
		if math.Abs(s.Slowdown-2) > 0.05 {
			t.Fatalf("two CPU hogs should each slow ≈2×, got %v", s.Slowdown)
		}
	}
}

func TestIdleNeighbourIsHarmless(t *testing.T) {
	h := newTestHost(t)
	solo, err := h.Steady([]AppSpec{seqReader("sr")})
	if err != nil {
		t.Fatal(err)
	}
	with, err := h.Steady([]AppSpec{seqReader("sr"), Idle()})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with[0].Runtime-solo[0].Runtime)/solo[0].Runtime > 0.01 {
		t.Fatalf("idle neighbour changed runtime: %v vs %v", with[0].Runtime, solo[0].Runtime)
	}
}

func TestSlowdownNeverBelowOne(t *testing.T) {
	h := newTestHost(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := AppSpec{
			Name:       "a",
			CPUSeconds: rng.Float64() * 500,
			ReadOps:    rng.Float64() * 100000,
			WriteOps:   rng.Float64() * 20000,
			ReqSizeKB:  4 + rng.Float64()*124,
			Seq:        rng.Float64(),
			MaxIODepth: 1 + rng.Float64()*7,
		}
		if a.CPUSeconds == 0 && a.TotalOps() == 0 {
			return true
		}
		b := AppSpec{
			Name:            "b",
			Endless:         true,
			CPUDemand:       rng.Float64(),
			TargetReadRate:  rng.Float64() * 1500,
			TargetWriteRate: rng.Float64() * 300,
			ReqSizeKB:       4 + rng.Float64()*124,
			Seq:             rng.Float64(),
			MaxIODepth:      1 + rng.Float64()*7,
		}
		st, err := h.Steady([]AppSpec{a, b})
		if err != nil {
			return false
		}
		return st[0].Slowdown >= 1 && !math.IsNaN(st[0].Slowdown) && !math.IsInf(st[0].Slowdown, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestInterferenceMonotoneInBackgroundIORate(t *testing.T) {
	h := newTestHost(t)
	prev := 0.0
	for _, rate := range []float64{0, 50, 200, 800, 1e9} {
		bg := AppSpec{Name: "bg", Endless: true, TargetReadRate: rate, ReqSizeKB: 64, Seq: 1, MaxIODepth: 4}
		st, err := h.Steady([]AppSpec{seqReader("sr"), bg})
		if err != nil {
			t.Fatal(err)
		}
		if st[0].Slowdown < prev-0.05 {
			t.Fatalf("slowdown decreased when background I/O rate rose to %v: %v < %v", rate, st[0].Slowdown, prev)
		}
		prev = st[0].Slowdown
	}
	if prev < 5 {
		t.Fatalf("full-rate background should slow a sequential reader heavily, got %v", prev)
	}
}

func TestDom0FeatureReflectsRequestSize(t *testing.T) {
	// Two apps with identical request rates but different request sizes must
	// differ in Dom0 CPU — this is what makes the fourth model feature
	// informative (Sec. 3.1 / Fig 3 ablation).
	h := newTestHost(t)
	small := AppSpec{Name: "s", ReadOps: 10000, ReqSizeKB: 4, Seq: 1, CPUSeconds: 1, ThinkSeconds: 80}
	big := small
	big.Name = "b"
	big.ReqSizeKB = 256
	stS, err := h.Steady([]AppSpec{small})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := h.Steady([]AppSpec{big})
	if err != nil {
		t.Fatal(err)
	}
	perOpS := stS[0].Dom0CPU / stS[0].IOPS
	perOpB := stB[0].Dom0CPU / stB[0].IOPS
	if perOpB <= perOpS*2 {
		t.Fatalf("dom0 cost per op should grow strongly with request size: %v vs %v", perOpB, perOpS)
	}
}

func TestCrossDelayNeedsBothCPUAndIO(t *testing.T) {
	// The Table 1 story: a CPU-only neighbour barely hurts a sequential
	// reader, an IO-only neighbour hurts it a lot, and a CPU+IO neighbour
	// hurts it the most.
	h := newTestHost(t)
	sr := seqReader("sr")
	slow := func(bg AppSpec) float64 {
		st, err := h.Steady([]AppSpec{sr, bg})
		if err != nil {
			t.Fatal(err)
		}
		return st[0].Slowdown
	}
	cpuOnly := slow(cpuHog("cpu", 1.0))
	ioOnly := slow(ioHogBG("io"))
	both := slow(AppSpec{Name: "both", Endless: true, CPUDemand: 1.0, TargetReadRate: 1e9, ReqSizeKB: 64, Seq: 1, MaxIODepth: 4})
	if cpuOnly > 1.2 {
		t.Fatalf("CPU-only neighbour should barely affect a reader: %v", cpuOnly)
	}
	if ioOnly < 5 {
		t.Fatalf("IO-only neighbour should hurt a reader badly: %v", ioOnly)
	}
	if both < ioOnly*1.2 {
		t.Fatalf("CPU+IO neighbour (%v) should exceed IO-only (%v)", both, ioOnly)
	}
}

func TestWaterfill(t *testing.T) {
	cases := []struct {
		demands []float64
		cap     float64
		want    []float64
	}{
		{[]float64{0.2, 0.3}, 1.0, []float64{0.2, 0.3}},                       // under capacity
		{[]float64{1.0, 1.0}, 1.0, []float64{0.5, 0.5}},                       // equal split
		{[]float64{0.1, 1.0}, 1.0, []float64{0.1, 0.9}},                       // leftover flows
		{[]float64{0.6, 0.6, 0.6}, 1.0, []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}}, // three-way
		{[]float64{0.05, 0.5, 2.0}, 1.0, []float64{0.05, 0.475, 0.475}},
	}
	for _, c := range cases {
		got := waterfill(c.demands, c.cap)
		for i := range c.want {
			if math.Abs(got[i]-c.want[i]) > 1e-9 {
				t.Errorf("waterfill(%v, %v) = %v want %v", c.demands, c.cap, got, c.want)
			}
		}
	}
}

func TestWaterfillProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		demands := make([]float64, n)
		for i := range demands {
			demands[i] = rng.Float64() * 2
		}
		capacity := rng.Float64() * 3
		alloc := waterfill(demands, capacity)
		total := 0.0
		for i, a := range alloc {
			if a < -1e-12 || a > demands[i]+1e-12 {
				return false // never exceed demand, never negative
			}
			total += a
		}
		return total <= capacity+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSteadyDeterministic(t *testing.T) {
	h := newTestHost(t)
	apps := []AppSpec{seqReader("a"), ioHogBG("b")}
	s1, err := h.Steady(apps)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.Steady(apps)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] != s2[0] || s1[1] != s2[1] {
		t.Fatal("Steady is not deterministic")
	}
}

func TestThreeWayContentionWorseThanTwoWay(t *testing.T) {
	cfg := DefaultHost()
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	two, err := h.Steady([]AppSpec{seqReader("sr"), ioHogBG("b1")})
	if err != nil {
		t.Fatal(err)
	}
	three, err := h.Steady([]AppSpec{seqReader("sr"), ioHogBG("b1"), ioHogBG("b2")})
	if err != nil {
		t.Fatal(err)
	}
	if three[0].Slowdown <= two[0].Slowdown {
		t.Fatalf("three-way contention (%v) should exceed two-way (%v)", three[0].Slowdown, two[0].Slowdown)
	}
}

func TestSSDInterferenceMuchLowerThanHDD(t *testing.T) {
	cfg := DefaultHost()
	cfg.Disk = SSD()
	hs, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd := newTestHost(t)
	sr, bg := seqReader("sr"), ioHogBG("bg")
	stS, err := hs.Steady([]AppSpec{sr, bg})
	if err != nil {
		t.Fatal(err)
	}
	stH, err := hd.Steady([]AppSpec{sr, bg})
	if err != nil {
		t.Fatal(err)
	}
	if stS[0].Slowdown > stH[0].Slowdown/2 {
		t.Fatalf("SSD slowdown %v should be far below HDD %v", stS[0].Slowdown, stH[0].Slowdown)
	}
}

func TestDiskCostModel(t *testing.T) {
	d := HDD()
	seq := d.CostMs(1, 64, false)
	rnd := d.CostMs(0, 64, false)
	if rnd < seq*5 {
		t.Fatalf("random cost %v should dwarf sequential %v on an HDD", rnd, seq)
	}
	if w := d.CostMs(1, 64, true); w <= seq {
		t.Fatalf("write cost %v should exceed read %v", w, seq)
	}
	// Clamping.
	if d.CostMs(-1, 64, false) != rnd {
		t.Fatal("seq < 0 should clamp to 0")
	}
	if d.CostMs(2, 64, false) != seq {
		t.Fatal("seq > 1 should clamp to 1")
	}
}

func TestValidate(t *testing.T) {
	good := seqReader("ok")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Seq = 1.5
	if bad.Validate() == nil {
		t.Fatal("seq > 1 accepted")
	}
	bad = good
	bad.Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bg := cpuHog("bg", 0.5)
	if err := bg.Validate(); err != nil {
		t.Fatal(err)
	}
	bg.CPUDemand = 2
	if bg.Validate() == nil {
		t.Fatal("cpu demand > 1 accepted")
	}
}

func TestReadFraction(t *testing.T) {
	a := AppSpec{ReadOps: 30, WriteOps: 10}
	if got := a.ReadFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ReadFraction = %v", got)
	}
	if got := (AppSpec{}).ReadFraction(); got != 0.5 {
		t.Fatalf("no-IO ReadFraction = %v want 0.5", got)
	}
	e := AppSpec{Endless: true, TargetReadRate: 10, TargetWriteRate: 30}
	if got := e.ReadFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("endless ReadFraction = %v", got)
	}
}

func TestRAIDDevices(t *testing.T) {
	hdd, r4 := HDD(), RAID0(4)
	// Striping multiplies sequential throughput.
	if r4.MaxSeqIOPS(64) < 2*hdd.MaxSeqIOPS(64) {
		t.Fatalf("RAID0x4 seq IOPS %v should far exceed single HDD %v",
			r4.MaxSeqIOPS(64), hdd.MaxSeqIOPS(64))
	}
	// But random requests still pay mechanical positioning.
	if r4.CostMs(0, 4, false) < hdd.CostMs(0, 4, false) {
		t.Fatal("RAID0 random cost should not beat a single HDD")
	}
	// Degenerate member counts clamp.
	if RAID0(0).Name != "raid0x1" {
		t.Fatalf("RAID0(0) = %s", RAID0(0).Name)
	}
	r10 := RAID10(4)
	if r10.WritePenaltyFactor <= r4.WritePenaltyFactor {
		t.Fatal("mirroring must make writes relatively more expensive")
	}
	if RAID10(1).Name != "raid10x2" {
		t.Fatalf("RAID10(1) = %s", RAID10(1).Name)
	}
}

func TestRAIDDeliversMoreAbsoluteThroughputUnderContention(t *testing.T) {
	// Relative slowdowns can be *worse* on a faster device (the solo
	// baseline rises faster than the contended floor); what the array must
	// guarantee is higher absolute throughput in both states.
	cfg := DefaultHost()
	cfg.Disk = RAID0(4)
	hr, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd := newTestHost(t)
	bg := AppSpec{Name: "bg", Endless: true, TargetReadRate: 1e9, ReqSizeKB: 64, Seq: 1, MaxIODepth: 4}
	soloR, err := hr.Steady([]AppSpec{seqReader("sr")})
	if err != nil {
		t.Fatal(err)
	}
	soloH, err := hd.Steady([]AppSpec{seqReader("sr")})
	if err != nil {
		t.Fatal(err)
	}
	stR, err := hr.Steady([]AppSpec{seqReader("sr"), bg})
	if err != nil {
		t.Fatal(err)
	}
	stH, err := hd.Steady([]AppSpec{seqReader("sr"), bg})
	if err != nil {
		t.Fatal(err)
	}
	if soloR[0].IOPS <= soloH[0].IOPS {
		t.Fatalf("RAID solo IOPS %v should exceed HDD %v", soloR[0].IOPS, soloH[0].IOPS)
	}
	if stR[0].IOPS <= stH[0].IOPS {
		t.Fatalf("RAID contended IOPS %v should exceed HDD %v", stR[0].IOPS, stH[0].IOPS)
	}
}

func TestThinkTimeExtendsRuntimeWithoutIO(t *testing.T) {
	h := newTestHost(t)
	st, err := h.Steady([]AppSpec{{Name: "idleish", CPUSeconds: 10, ThinkSeconds: 100, ReqSizeKB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st[0].Runtime-110) > 1e-6 {
		t.Fatalf("runtime %v want 110", st[0].Runtime)
	}
	if st[0].GuestCPU > 0.2 {
		t.Fatalf("thinky app shows CPU %v", st[0].GuestCPU)
	}
}

func TestEndlessGeneratorHonoursTargets(t *testing.T) {
	h := newTestHost(t)
	bg := AppSpec{Name: "gen", Endless: true, TargetReadRate: 100, TargetWriteRate: 50, ReqSizeKB: 16, Seq: 1, MaxIODepth: 4}
	st, err := h.Steady([]AppSpec{bg})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st[0].IOPS-150) > 1 {
		t.Fatalf("generator achieved %v want 150", st[0].IOPS)
	}
	if math.Abs(st[0].ReadPerSec-100) > 1 || math.Abs(st[0].WritePerSec-50) > 1 {
		t.Fatalf("split %v/%v want 100/50", st[0].ReadPerSec, st[0].WritePerSec)
	}
}
