package xen

import (
	"math"
	"testing"
)

// The micro-simulator cross-validates the fluid fixed-point model: the two
// independently-built executions of the same host must agree on the
// qualitative interference structure, and quantitatively within bands.

func microHost(t *testing.T) (*MicroSim, *Host) {
	t.Helper()
	cfg := DefaultHost()
	return NewMicroSim(cfg), newTestHost(t)
}

func TestMicroSimSoloCPUOnly(t *testing.T) {
	ms, _ := microHost(t)
	res, err := ms.Run([]AppSpec{{Name: "calc", CPUSeconds: 100, ReqSizeKB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Runtime-100) > 1 {
		t.Fatalf("solo CPU runtime %v want 100", res[0].Runtime)
	}
}

func TestMicroSimTwoCPUHogsAgreeWithFluid(t *testing.T) {
	ms, _ := microHost(t)
	a := AppSpec{Name: "a", CPUSeconds: 50, ReqSizeKB: 4}
	b := AppSpec{Name: "b", CPUSeconds: 50, ReqSizeKB: 4}
	res, err := ms.Run([]AppSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if math.Abs(r.Runtime-100) > 2 {
			t.Fatalf("processor sharing broken: runtime %v want ≈100", r.Runtime)
		}
	}
}

func TestMicroSimSoloReaderMatchesFluidWithinBand(t *testing.T) {
	ms, h := microHost(t)
	// Depth-1 reader: both models describe a synchronous request loop.
	app := AppSpec{Name: "sr", ReadOps: 20000, ReqSizeKB: 64, Seq: 1.0, CPUSeconds: 2}
	micro, err := ms.Run([]AppSpec{app})
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := h.Steady([]AppSpec{app})
	if err != nil {
		t.Fatal(err)
	}
	ratio := micro[0].Runtime / fluid[0].Runtime
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("solo reader: micro %v vs fluid %v (ratio %v)", micro[0].Runtime, fluid[0].Runtime, ratio)
	}
}

func TestMicroSimInterferenceStructure(t *testing.T) {
	// The headline structure of Table 1 must emerge from per-request
	// mechanics with no calibration: a CPU hog barely hurts a reader, a
	// second reader devastates it.
	ms, _ := microHost(t)
	reader := AppSpec{Name: "r", ReadOps: 20000, ReqSizeKB: 64, Seq: 1.0, CPUSeconds: 2}
	solo, err := ms.Run([]AppSpec{reader})
	if err != nil {
		t.Fatal(err)
	}
	hog := AppSpec{Name: "hog", CPUSeconds: solo[0].Runtime * 2, ReqSizeKB: 4}
	withHog, err := ms.Run([]AppSpec{reader, hog})
	if err != nil {
		t.Fatal(err)
	}
	twin := reader
	twin.Name = "r2"
	withTwin, err := ms.Run([]AppSpec{reader, twin})
	if err != nil {
		t.Fatal(err)
	}
	hogSlow := withHog[0].Runtime / solo[0].Runtime
	twinSlow := withTwin[0].Runtime / solo[0].Runtime
	if hogSlow > 1.3 {
		t.Fatalf("CPU hog slowed the reader %vx; per-request mechanics disagree with Table 1", hogSlow)
	}
	if twinSlow < 4 {
		t.Fatalf("twin reader slowed only %vx; expected severe seek thrash", twinSlow)
	}
}

func TestMicroSimAgreesWithFluidOnReaderPair(t *testing.T) {
	// The quantitative cross-check: two colliding sequential readers. The
	// fluid model was calibrated against the paper's ≈10×; the independent
	// per-request execution must land in the same regime (within 2× of the
	// fluid slowdown).
	ms, h := microHost(t)
	reader := AppSpec{Name: "r", ReadOps: 20000, ReqSizeKB: 64, Seq: 1.0, CPUSeconds: 2}
	twin := reader
	twin.Name = "r2"

	microSolo, err := ms.Run([]AppSpec{reader})
	if err != nil {
		t.Fatal(err)
	}
	microPair, err := ms.Run([]AppSpec{reader, twin})
	if err != nil {
		t.Fatal(err)
	}
	microSlow := microPair[0].Runtime / microSolo[0].Runtime

	fluid, err := h.Steady([]AppSpec{reader, twin})
	if err != nil {
		t.Fatal(err)
	}
	fluidSlow := fluid[0].Slowdown

	ratio := microSlow / fluidSlow
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("reader-pair slowdown: micro %.1fx vs fluid %.1fx (ratio %.2f)", microSlow, fluidSlow, ratio)
	}
}

func TestMicroSimThinkOnlyApp(t *testing.T) {
	ms, _ := microHost(t)
	res, err := ms.Run([]AppSpec{{Name: "sleepy", CPUSeconds: 5, ThinkSeconds: 95, ReqSizeKB: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Runtime-100) > 1 {
		t.Fatalf("think-only runtime %v want 100", res[0].Runtime)
	}
}

func TestMicroSimRejectsEndless(t *testing.T) {
	ms, _ := microHost(t)
	if _, err := ms.Run([]AppSpec{Idle()}); err == nil {
		t.Fatal("endless app accepted")
	}
	if _, err := ms.Run(nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestMicroSimDeterministic(t *testing.T) {
	ms, _ := microHost(t)
	apps := []AppSpec{
		{Name: "a", ReadOps: 5000, ReqSizeKB: 64, Seq: 1, CPUSeconds: 3},
		{Name: "b", ReadOps: 3000, WriteOps: 1000, ReqSizeKB: 16, Seq: 0.5, CPUSeconds: 10},
	}
	r1, err := ms.Run(apps)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ms.Run(apps)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] != r2[0] || r1[1] != r2[1] {
		t.Fatal("microsim not deterministic")
	}
}
