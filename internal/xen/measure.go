package xen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// SoloProfile is what the TRACON monitor observes about an application when
// it runs without interference: the four controlled variables of Table 2
// plus the solo runtime and throughput used as normalization baselines.
type SoloProfile struct {
	Runtime     float64 // seconds (Inf for endless generators)
	ReadPerSec  float64 // read requests per second (feature 1)
	WritePerSec float64 // write requests per second (feature 2)
	DomUCPU     float64 // guest CPU utilization 0..1 (feature 3)
	Dom0CPU     float64 // driver-domain CPU utilization 0..1 (feature 4)
	IOPS        float64 // total request throughput
}

// Features returns the Table 2 characteristic vector
// [read/s, write/s, DomU CPU, Dom0 CPU].
func (p SoloProfile) Features() []float64 {
	return []float64{p.ReadPerSec, p.WritePerSec, p.DomUCPU, p.Dom0CPU}
}

// Measurement is one observed co-run: the target app's runtime and IOPS
// under the given interference, averaged over cfg.Runs noisy repetitions —
// the paper reports the average of three runs.
type Measurement struct {
	Runtime float64
	IOPS    float64
}

// Testbed wraps a Host with the measurement conventions of the paper:
// repeated runs, multiplicative measurement noise, deterministic seeding.
//
// A Testbed is immutable after construction and its measurements are
// key-addressed (the noise stream of every measurement is derived from the
// seed and the measurement's own name, not from call order), so a single
// Testbed is safe for concurrent use and every measurement returns the
// same bytes no matter how calls interleave across goroutines. The
// parallel evaluation engine in internal/experiments leans on exactly this
// property.
type Testbed struct {
	host  *Host
	runs  int
	sigma float64
	seed  int64
}

// NewTestbed builds a measurement harness around host. runs is the number
// of repetitions averaged per measurement (the paper uses 3); sigma is the
// per-run multiplicative noise standard deviation; seed fixes the noise
// stream.
func NewTestbed(host *Host, runs int, sigma float64, seed int64) *Testbed {
	if runs <= 0 {
		runs = 1
	}
	if sigma < 0 {
		sigma = 0
	}
	return &Testbed{host: host, runs: runs, sigma: sigma, seed: seed}
}

// Host returns the underlying host model.
func (tb *Testbed) Host() *Host { return tb.host }

// Seed returns the testbed's noise-stream seed.
func (tb *Testbed) Seed() int64 { return tb.seed }

// Clone returns an independent testbed value with the same host, run count,
// noise level and seed. Because measurement noise is key-addressed, a clone
// reproduces the original's measurements bit-for-bit; per-worker clones let
// the parallel profiler keep a testbed value per goroutine without sharing
// anything mutable (and without changing a single output byte relative to
// the sequential run).
func (tb *Testbed) Clone() *Testbed {
	c := *tb
	return &c
}

// WithSeed returns a clone whose noise stream is driven by the given seed.
// Use DeriveSeed to obtain well-separated per-worker or per-experiment
// seeds from a base seed.
func (tb *Testbed) WithSeed(seed int64) *Testbed {
	c := *tb
	c.seed = seed
	return &c
}

// DeriveSeed deterministically derives an independent seed from a base seed
// and a label (e.g. a worker's experiment name). Distinct labels give
// well-separated streams; the same (base, label) pair always gives the same
// seed, so parallel runs that partition work by label stay reproducible.
func DeriveSeed(base int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	return base ^ int64(h.Sum64())
}

// ProfileSolo measures an application running alone (the other VM idle).
func (tb *Testbed) ProfileSolo(app AppSpec) (SoloProfile, error) {
	st, err := tb.host.Steady([]AppSpec{app})
	if err != nil {
		return SoloProfile{}, err
	}
	s := st[0]
	return SoloProfile{
		Runtime:     s.Runtime,
		ReadPerSec:  s.ReadPerSec,
		WritePerSec: s.WritePerSec,
		DomUCPU:     s.GuestCPU,
		Dom0CPU:     s.Dom0CPU,
		IOPS:        s.IOPS,
	}, nil
}

// MeasureAgainstBackground measures target while bg runs continuously in
// the other VM — the paper's profiling procedure (Sec. 3.1). The target
// sees constant interference for its whole run, so one steady-state solve
// suffices. The result carries measurement noise averaged over tb.runs.
func (tb *Testbed) MeasureAgainstBackground(target, bg AppSpec) (Measurement, error) {
	if target.Endless {
		return Measurement{}, fmt.Errorf("xen: target %q must be finite", target.Name)
	}
	st, err := tb.host.Steady([]AppSpec{target, bg})
	if err != nil {
		return Measurement{}, err
	}
	return tb.noisy(target.Name+"|"+bg.Name, st[0].Runtime, st[0].IOPS), nil
}

// PairResult reports a full co-run of two finite applications started
// together: each runs under contention until the shorter finishes, then the
// survivor continues alone.
type PairResult struct {
	RuntimeA, RuntimeB float64
	IOPSA, IOPSB       float64 // average over each app's own runtime
}

// MeasurePair runs two finite applications to completion, phase-wise.
func (tb *Testbed) MeasurePair(a, b AppSpec) (PairResult, error) {
	if a.Endless || b.Endless {
		return PairResult{}, fmt.Errorf("xen: MeasurePair requires finite apps")
	}
	st, err := tb.host.Steady([]AppSpec{a, b})
	if err != nil {
		return PairResult{}, err
	}
	soloA, err := tb.host.Steady([]AppSpec{a})
	if err != nil {
		return PairResult{}, err
	}
	soloB, err := tb.host.Steady([]AppSpec{b})
	if err != nil {
		return PairResult{}, err
	}

	// Phase 1: both run at contended rates until the first completion.
	// Work is measured in solo-seconds; progress rate is 1/slowdown.
	workA, workB := soloA[0].Runtime, soloB[0].Runtime
	rateA, rateB := st[0].ProgressRate, st[1].ProgressRate
	doneA, doneB := workA/rateA, workB/rateB

	var rtA, rtB float64
	if doneA <= doneB {
		rtA = doneA
		// B finishes the remaining work alone.
		remaining := workB - rateB*doneA
		rtB = doneA + remaining
	} else {
		rtB = doneB
		remaining := workA - rateA*doneB
		rtA = doneB + remaining
	}

	res := PairResult{RuntimeA: rtA, RuntimeB: rtB}
	if rtA > 0 {
		res.IOPSA = a.TotalOps() / rtA
	}
	if rtB > 0 {
		res.IOPSB = b.TotalOps() / rtB
	}

	mA := tb.noisy("pair:"+a.Name+"|"+b.Name+":A", res.RuntimeA, res.IOPSA)
	mB := tb.noisy("pair:"+a.Name+"|"+b.Name+":B", res.RuntimeB, res.IOPSB)
	res.RuntimeA, res.IOPSA = mA.Runtime, mA.IOPS
	res.RuntimeB, res.IOPSB = mB.Runtime, mB.IOPS
	return res, nil
}

// noisy applies tb.runs repetitions of multiplicative Gaussian noise and
// averages, seeding deterministically from the measurement key so repeated
// experiments reproduce exactly.
func (tb *Testbed) noisy(key string, runtime, iops float64) Measurement {
	if tb.sigma == 0 {
		return Measurement{Runtime: runtime, IOPS: iops}
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := rand.New(rand.NewSource(tb.seed ^ int64(h.Sum64())))
	var rtSum, ioSum float64
	for r := 0; r < tb.runs; r++ {
		rtSum += runtime * noiseFactor(rng, tb.sigma)
		ioSum += iops * noiseFactor(rng, tb.sigma)
	}
	n := float64(tb.runs)
	return Measurement{Runtime: rtSum / n, IOPS: ioSum / n}
}

// noiseFactor returns a positive multiplicative noise term with standard
// deviation ≈ sigma around 1.
func noiseFactor(rng *rand.Rand, sigma float64) float64 {
	f := 1 + rng.NormFloat64()*sigma
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// Slowdown is a convenience wrapper returning only the slowdown of target
// against a continuously running background (Table 1's normalized runtime).
func (tb *Testbed) Slowdown(target, bg AppSpec) (float64, error) {
	solo, err := tb.ProfileSolo(target)
	if err != nil {
		return 0, err
	}
	m, err := tb.MeasureAgainstBackground(target, bg)
	if err != nil {
		return 0, err
	}
	if solo.Runtime <= 0 || math.IsInf(solo.Runtime, 0) {
		return 0, fmt.Errorf("xen: app %q has no finite solo runtime", target.Name)
	}
	return m.Runtime / solo.Runtime, nil
}
