package xen

import (
	"container/heap"
	"fmt"
	"math"
)

// MicroSim is a discrete per-request simulation of one physical machine:
// every I/O request is individually queued at the device (FCFS, with the
// mechanical penalty charged when the head leaves a stream's locality),
// guest CPU is processor-shared among runnable vCPUs, and Dom0 handling is
// charged per request. It exists to cross-validate the fluid fixed-point
// model in host.go — the substitution this repository makes for the
// paper's real hardware — at request granularity. See microsim_test.go for
// the agreement bands.
//
// Only finite applications are supported; each is executed as its natural
// loop: compute a CPU slice, issue one I/O request, repeat (think time is
// spread uniformly across iterations).
type MicroSim struct {
	cfg HostConfig
}

// NewMicroSim builds a per-request simulator for the host configuration.
func NewMicroSim(cfg HostConfig) *MicroSim {
	return &MicroSim{cfg: cfg}
}

// MicroResult is one application's outcome.
type MicroResult struct {
	Runtime float64
	IOPS    float64
}

// microApp is the per-app execution state.
type microApp struct {
	spec      AppSpec
	opsLeft   int
	cpuPerOp  float64 // seconds of CPU before each request
	thinkPer  float64 // seconds of idle before each request
	cpuLeft   float64 // remaining CPU in the current slice
	thinkLeft float64
	state     microState
	done      bool
	finish    float64
	totalOps  int
}

type microState int

const (
	msCompute microState = iota
	msThink
	msQueued  // request waiting at the device
	msService // request being served
	msDone
)

type microEvent struct {
	time float64
	seq  int64
	kind int // 0: recompute checkpoint, 1: disk service complete, 2: think done
	app  int
}

type microHeap []microEvent

func (h microHeap) Len() int { return len(h) }
func (h microHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h microHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *microHeap) Push(x interface{}) { *h = append(*h, x.(microEvent)) }
func (h *microHeap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// Run executes the applications to completion and returns per-app results.
// The simulation is deterministic.
func (m *MicroSim) Run(specs []AppSpec) ([]MicroResult, error) {
	n := len(specs)
	if n == 0 {
		return nil, fmt.Errorf("xen: microsim needs at least one app")
	}
	apps := make([]*microApp, n)
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if s.Endless {
			return nil, fmt.Errorf("xen: microsim supports finite apps only (%s)", s.Name)
		}
		ops := int(s.TotalOps())
		a := &microApp{spec: s, opsLeft: ops, totalOps: ops}
		if ops > 0 {
			a.cpuPerOp = s.CPUSeconds / float64(ops)
			a.thinkPer = s.ThinkSeconds / float64(ops)
		} else {
			a.cpuPerOp = s.CPUSeconds
			a.thinkLeft = s.ThinkSeconds
		}
		a.cpuLeft = a.cpuPerOp
		a.state = msCompute
		apps[i] = a
	}

	sliceMs := m.cfg.MicroSliceMs
	if sliceMs <= 0 {
		sliceMs = 3 // CFQ-style stream slice
	}
	var (
		now         float64
		seq         int64
		events      microHeap
		diskQueue   []int // app indices, FCFS arrival order
		diskBusy    = -1  // app currently in service
		lastServed  = -1  // stream owning the disk's locality
		sliceUsedMs float64
		lastCPUAt   float64
	)
	push := func(t float64, kind, app int) {
		seq++
		heap.Push(&events, microEvent{time: t, seq: seq, kind: kind, app: app})
	}

	computing := func() []int {
		var out []int
		for i, a := range apps {
			if !a.done && a.state == msCompute {
				out = append(out, i)
			}
		}
		return out
	}

	// settleCPU advances every computing app by the processor-shared
	// amount since the last checkpoint.
	settleCPU := func() {
		comp := computing()
		if len(comp) > 0 {
			share := m.cfg.GuestCPUCap / float64(len(comp))
			if share > 1 {
				share = 1 // one vCPU cannot use more than one core
			}
			dt := now - lastCPUAt
			for _, i := range comp {
				apps[i].cpuLeft -= dt * share
			}
		}
		lastCPUAt = now
	}

	serviceMs := func(i int, switched bool) float64 {
		a := apps[i]
		seqEff := a.spec.Seq
		if switched {
			seqEff = 0 // the head moved: full positioning cost
		}
		return m.cfg.Disk.CostMs(seqEff, a.spec.ReqSizeKB, a.spec.WriteOps > a.spec.ReadOps) +
			m.cfg.Dom0PerOpMs + m.cfg.Dom0PerKBMs*a.spec.ReqSizeKB
	}

	serveIdx := func(qi int, switched bool) {
		i := diskQueue[qi]
		diskQueue = append(diskQueue[:qi], diskQueue[qi+1:]...)
		cost := serviceMs(i, switched)
		if switched {
			// The positioning cost of moving the head does not consume the
			// new owner's slice — the slice meters sequential service time.
			lastServed = i
			sliceUsedMs = 0
		} else {
			sliceUsedMs += cost
		}
		diskBusy = i
		apps[i].state = msService
		push(now+cost/1000, 1, i)
	}

	// startService implements a CFQ-style disk scheduler: the stream that
	// owns the head keeps it for up to sliceMs of service (with
	// anticipatory idling while its next synchronous request is en route);
	// then the head moves to the longest-waiting other stream and pays the
	// positioning cost. Without slices, two synchronous streams would
	// alternate every request and the simulation would overstate seek
	// thrash relative to any real disk scheduler.
	startService := func() {
		if diskBusy >= 0 {
			return
		}
		if lastServed >= 0 && sliceUsedMs < sliceMs {
			// The slice owner goes first if queued.
			for qi, i := range diskQueue {
				if i == lastServed {
					serveIdx(qi, false)
					return
				}
			}
			// Anticipate: the owner is computing toward its next request —
			// hold the disk briefly (its arrival event will retrigger us).
			a := apps[lastServed]
			if !a.done && a.state == msCompute && a.opsLeft > 0 {
				return
			}
		}
		if len(diskQueue) == 0 {
			return
		}
		serveIdx(0, diskQueue[0] != lastServed)
	}

	// advance moves app i through its loop after finishing a stage.
	var advance func(i int)
	advance = func(i int) {
		a := apps[i]
		if a.done {
			return
		}
		switch a.state {
		case msCompute:
			if a.cpuLeft > 1e-12 {
				return // still computing; checkpoint will fire again
			}
			if a.opsLeft <= 0 {
				// No I/O phase left: possibly think, then done.
				if a.thinkLeft > 1e-12 {
					a.state = msThink
					push(now+a.thinkLeft, 2, i)
					a.thinkLeft = 0
					return
				}
				a.done = true
				a.state = msDone
				a.finish = now
				return
			}
			a.state = msQueued
			diskQueue = append(diskQueue, i)
			startService()
		case msThink:
			a.done = true
			a.state = msDone
			a.finish = now
		case msService:
			a.opsLeft--
			if a.thinkPer > 1e-12 {
				a.state = msThink
				push(now+a.thinkPer, 2, i)
				return
			}
			a.startNextIteration(now)
		}
	}

	scheduleCheckpoint := func() {
		comp := computing()
		if len(comp) == 0 {
			return
		}
		share := m.cfg.GuestCPUCap / float64(len(comp))
		if share > 1 {
			share = 1
		}
		soonest := math.Inf(1)
		who := -1
		for _, i := range comp {
			t := apps[i].cpuLeft / share
			if t < soonest {
				soonest, who = t, i
			}
		}
		push(now+soonest, 0, who)
	}

	// Seed: every app starts computing (or straight to I/O if no CPU).
	for i, a := range apps {
		if a.cpuLeft <= 1e-12 {
			a.state = msCompute
			a.cpuLeft = 0
			advance(i)
		}
	}
	scheduleCheckpoint()

	const maxEvents = 50_000_000
	for steps := 0; events.Len() > 0; steps++ {
		if steps > maxEvents {
			return nil, fmt.Errorf("xen: microsim exceeded %d events", maxEvents)
		}
		ev := heap.Pop(&events).(microEvent)
		if ev.time < now-1e-9 {
			return nil, fmt.Errorf("xen: microsim time went backwards")
		}
		now = ev.time
		settleCPU()
		switch ev.kind {
		case 0: // CPU checkpoint: whoever hit zero advances
			for i, a := range apps {
				if !a.done && a.state == msCompute && a.cpuLeft <= 1e-9 {
					a.cpuLeft = 0
					advance(i)
				}
			}
		case 1: // disk service complete
			diskBusy = -1
			advance(ev.app)
			startService()
		case 2: // think done
			a := apps[ev.app]
			if a.state == msThink {
				if a.opsLeft <= 0 && a.cpuLeft <= 1e-12 {
					advance(ev.app)
				} else {
					a.startNextIteration(now)
				}
			}
		}
		scheduleCheckpoint()
	}

	out := make([]MicroResult, n)
	for i, a := range apps {
		if !a.done {
			return nil, fmt.Errorf("xen: microsim app %s never finished", a.spec.Name)
		}
		r := MicroResult{Runtime: a.finish}
		if a.totalOps > 0 && a.finish > 0 {
			r.IOPS = float64(a.totalOps) / a.finish
		}
		out[i] = r
	}
	return out, nil
}

// startNextIteration begins the next compute slice (or finishes).
func (a *microApp) startNextIteration(now float64) {
	if a.opsLeft <= 0 && a.cpuLeft <= 1e-12 {
		a.done = true
		a.state = msDone
		a.finish = now
		return
	}
	a.state = msCompute
	a.cpuLeft = a.cpuPerOp
}
