package xen

import (
	"fmt"
	"math"
	"sort"
)

// HostConfig describes one physical machine of the testbed. The defaults
// (DefaultHost) are calibrated so that the Table 1 interference ratios of
// the paper are reproduced; see host_test.go for the asserted bands.
type HostConfig struct {
	// GuestCPUCap is the CPU capacity shared by guest vCPUs. The paper's
	// testbed multiplexes both guest vCPUs on one core (Table 1's CPU/CPU
	// slowdown of ≈2×), so the default is 1.0.
	GuestCPUCap float64
	// Dom0CPUCap is the CPU capacity available to the driver domain.
	Dom0CPUCap float64
	// Dom0PerOpMs is the driver-domain CPU cost per I/O request (event
	// channel, grant mapping, block backend).
	Dom0PerOpMs float64
	// Dom0PerKBMs is the driver-domain CPU cost per KB transferred (page
	// grant copies). This is what makes Dom0 CPU an informative model
	// feature beyond raw request rates.
	Dom0PerKBMs float64
	// CrossDelayMs is the additional per-request latency an application
	// suffers when a co-located guest burns CPU while also sharing the
	// I/O path: the driver domain's processing of this app's requests gets
	// delayed behind the busy vCPU (the Table 1 "CPU & I/O" 16× effect).
	// The delay applied is CrossDelayMs · (other guests' CPU use) ·
	// (other guests' share of the I/O stream).
	CrossDelayMs float64
	// Dom0StealFrac is the fraction of Dom0's CPU consumption that is stolen
	// from the guest CPU capacity (interrupt handling and event-channel
	// processing run on the guests' core). This produces Table 1's 1.26×
	// slowdown of a pure CPU task next to an I/O-heavy neighbour.
	Dom0StealFrac float64
	// Disk is the storage device model.
	Disk DiskParams

	// MaxIters and Damping control the fixed-point solver.
	MaxIters int
	Damping  float64

	// MicroSliceMs is the per-stream disk slice of the per-request
	// micro-simulator (see microsim.go); zero takes the default.
	MicroSliceMs float64
}

// DefaultHost returns the calibrated testbed machine: one core's worth of
// guest CPU, a dedicated core for Dom0, and the HDD of the paper's Dell
// machines.
func DefaultHost() HostConfig {
	return HostConfig{
		GuestCPUCap:   1.0,
		Dom0CPUCap:    1.0,
		Dom0PerOpMs:   0.25,
		Dom0PerKBMs:   0.004,
		CrossDelayMs:  3.0,
		Dom0StealFrac: 0.25,
		Disk:          HDD(),
		MaxIters:      3000,
		Damping:       0.15,
	}
}

// Host evaluates steady-state contention between co-located applications.
type Host struct {
	cfg HostConfig
}

// NewHost validates the configuration and returns a Host.
func NewHost(cfg HostConfig) (*Host, error) {
	if cfg.GuestCPUCap <= 0 || cfg.Dom0CPUCap <= 0 {
		return nil, fmt.Errorf("xen: CPU capacities must be positive, got guest=%v dom0=%v", cfg.GuestCPUCap, cfg.Dom0CPUCap)
	}
	if cfg.Disk.TransferMsPerKB < 0 || cfg.Disk.OverheadMs < 0 {
		return nil, fmt.Errorf("xen: invalid disk parameters %+v", cfg.Disk)
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 3000
	}
	if cfg.Damping <= 0 || cfg.Damping > 1 {
		cfg.Damping = 0.15
	}
	return &Host{cfg: cfg}, nil
}

// Config returns the host configuration.
func (h *Host) Config() HostConfig { return h.cfg }

// AppSteady is the steady-state behaviour of one application while the
// given co-location lasts.
type AppSteady struct {
	// Runtime is the completion time of a finite app under these steady
	// conditions (Inf for endless generators).
	Runtime float64
	// Slowdown is Runtime relative to the same app running alone.
	Slowdown float64
	// ProgressRate is 1/Slowdown: solo-seconds of progress per wall second.
	ProgressRate float64
	// IOPS is the achieved request throughput (reads+writes per second).
	IOPS float64
	// ReadPerSec and WritePerSec split IOPS by direction.
	ReadPerSec, WritePerSec float64
	// GuestCPU is the guest vCPU utilization (0..GuestCPUCap).
	GuestCPU float64
	// Dom0CPU is the driver-domain CPU utilization attributable to this
	// app's I/O.
	Dom0CPU float64
	// LatencyMs is the per-request I/O latency.
	LatencyMs float64
}

// Steady solves the contention fixed point for a set of co-located apps and
// returns the steady-state behaviour of each. Finite apps are assumed to be
// mid-execution (their demands persist for the duration of the phase);
// endless apps persist by construction. The phase-structured pair
// measurement in measure.go stitches these solutions together.
func (h *Host) Steady(apps []AppSpec) ([]AppSteady, error) {
	n := len(apps)
	if n == 0 {
		return nil, fmt.Errorf("xen: no applications")
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}

	soloLat := make([]float64, n) // per-request latency when alone (ms)
	soloRt := make([]float64, n)  // solo runtime of finite apps (s)
	for i, a := range apps {
		soloLat[i] = h.soloLatencyMs(a)
		if !a.Endless {
			soloRt[i] = h.finiteRuntime(a, 1, h.soloIOPSCeiling(a))
		}
	}

	// Iterated state.
	lat := append([]float64(nil), soloLat...) // current latency estimate (ms)
	stretch := make([]float64, n)             // CPU stretch factor (>=1)
	iops := make([]float64, n)
	cpuUsed := make([]float64, n)
	ceils := make([]float64, n) // achievable IOPS ceiling, refreshed each iteration
	for i, a := range apps {
		stretch[i] = 1
		ceils[i] = h.soloIOPSCeiling(a)
	}
	// Initialize rates from the solo solution.
	for i, a := range apps {
		iops[i] = h.initialIOPS(a, soloLat[i], soloRt[i])
		cpuUsed[i] = h.initialCPU(a, soloRt[i])
	}

	d := h.cfg.Damping
	for iter := 0; iter < h.cfg.MaxIters; iter++ {
		totalIOPS := 0.0
		for i := range apps {
			totalIOPS += iops[i]
		}

		// Dom0 load: if demand exceeds its capacity, all I/O is throttled
		// proportionally; whatever Dom0 does consume steals a fraction of
		// the guests' CPU capacity (interrupt/event-channel work).
		dom0Demand := 0.0
		for i, a := range apps {
			dom0Demand += iops[i] * h.dom0PerOpMs(a) / 1000
		}
		dom0Throttle := 1.0
		if dom0Demand > h.cfg.Dom0CPUCap {
			dom0Throttle = h.cfg.Dom0CPUCap / dom0Demand
		}
		dom0Used := math.Min(dom0Demand, h.cfg.Dom0CPUCap)
		guestCap := h.cfg.GuestCPUCap - h.cfg.Dom0StealFrac*dom0Used
		if guestCap < 0.05*h.cfg.GuestCPUCap {
			guestCap = 0.05 * h.cfg.GuestCPUCap
		}

		// Guest CPU water-fill over current demands.
		demands := make([]float64, n)
		for i, a := range apps {
			demands[i] = h.cpuDemand(a, lat[i])
		}
		alloc := waterfill(demands, guestCap)

		// Per-app effective service time (device cost at disrupted
		// sequentiality, plus the Dom0 cross delay, during which the disk
		// sits idle on this stream).
		newLat := make([]float64, n)
		newStretch := make([]float64, n)
		service := make([]float64, n) // ms of device occupancy per request
		desired := make([]float64, n) // requests/second the app would issue unconstrained
		for i, a := range apps {
			othersIOPS := totalIOPS - iops[i]
			otherShare := 0.0
			if totalIOPS > 1e-12 {
				otherShare = othersIOPS / totalIOPS
			}
			cEff := h.mixedCostMs(a, h.effSeq(a, iops[i], othersIOPS))

			otherCPU := 0.0
			for j := range apps {
				if j != i {
					otherCPU += cpuUsed[j]
				}
			}
			crossDelay := h.cfg.CrossDelayMs * otherCPU * otherShare

			service[i] = cEff + crossDelay
			newLat[i] = service[i] + h.dom0PerOpMs(a)/dom0Throttle

			if alloc[i] > 1e-12 && demands[i] > alloc[i] {
				newStretch[i] = demands[i] / alloc[i]
			} else {
				newStretch[i] = 1
			}

			closedLoop := a.depth() * 1000 / newLat[i]
			if a.Endless {
				desired[i] = math.Min(a.TargetReadRate+a.TargetWriteRate, closedLoop)
			} else if a.TotalOps() > 0 {
				rtUnc := h.finiteRuntime(a, newStretch[i], closedLoop)
				desired[i] = a.TotalOps() / rtUnc
			}
		}

		// The disk scheduler shares device time fairly among demanding
		// streams: each stream's long-run busy-time entitlement is
		// water-filled from its *average* demand...
		wantTime := make([]float64, n)
		for i := range apps {
			wantTime[i] = desired[i] * service[i] / 1000
		}
		tAlloc := waterfill(wantTime, 1.0)
		totalAlloc := 0.0
		for _, v := range tAlloc {
			totalAlloc += v
		}

		// ...but during its own I/O phases an app bursts into whatever
		// device time the others leave idle. Using the average entitlement
		// as the burst ceiling would double-count the app's CPU and think
		// time (a mostly-idle mail server would appear to throttle its own
		// bursts).
		maxDelta := 0.0
		for i, a := range apps {
			idleShare := 1 - (totalAlloc - tAlloc[i])
			if idleShare < 0.05 {
				idleShare = 0.05
			}
			ioCeiling := a.depth() * 1000 / newLat[i] // closed loop on latency
			if service[i] > 1e-12 {
				ioCeiling = math.Min(ioCeiling, idleShare*1000/service[i])
			}
			ioCeiling *= dom0Throttle
			ceils[i] = (1-d)*ceils[i] + d*ioCeiling
			ioCeiling = ceils[i]
			var nIOPS, nCPU float64
			if a.Endless {
				nIOPS = math.Min(desired[i], ioCeiling)
				nCPU = alloc[i]
				if a.CPUDemand < nCPU {
					nCPU = a.CPUDemand
				}
			} else {
				rt := h.finiteRuntime(a, newStretch[i], ioCeiling)
				nIOPS = a.TotalOps() / rt
				nCPU = a.CPUSeconds / rt // actual CPU seconds consumed per wall second
			}
			for _, delta := range []float64{math.Abs(nIOPS - iops[i]), math.Abs(nCPU - cpuUsed[i]), math.Abs(newLat[i] - lat[i])} {
				if delta > maxDelta {
					maxDelta = delta
				}
			}
			iops[i] = (1-d)*iops[i] + d*nIOPS
			cpuUsed[i] = (1-d)*cpuUsed[i] + d*nCPU
			lat[i] = (1-d)*lat[i] + d*newLat[i]
			stretch[i] = (1-d)*stretch[i] + d*newStretch[i]
		}
		if maxDelta < 1e-10 {
			break
		}
	}

	out := make([]AppSteady, n)
	for i, a := range apps {
		rf := a.ReadFraction()
		s := AppSteady{
			IOPS:        iops[i],
			ReadPerSec:  iops[i] * rf,
			WritePerSec: iops[i] * (1 - rf),
			GuestCPU:    cpuUsed[i],
			Dom0CPU:     iops[i] * h.dom0PerOpMs(a) / 1000,
			LatencyMs:   lat[i],
		}
		if a.Endless {
			s.Runtime = math.Inf(1)
			s.Slowdown = 1
			s.ProgressRate = 1
		} else {
			rt := h.finiteRuntime(a, stretch[i], ceils[i])
			s.Runtime = rt
			s.Slowdown = rt / soloRt[i]
			if s.Slowdown < 1 {
				// Numerical fuzz can land microscopically below 1; a co-run
				// can never beat solo in this model.
				s.Slowdown = 1
				s.Runtime = soloRt[i]
			}
			s.ProgressRate = 1 / s.Slowdown
		}
		out[i] = s
	}
	return out, nil
}

// soloLatencyMs returns the per-request latency of app a running alone.
func (h *Host) soloLatencyMs(a AppSpec) float64 {
	return h.mixedCostMs(a, a.Seq) + h.dom0PerOpMs(a)
}

// effSeq returns the effective sequentiality of app a's stream. The
// probability that one of my requests pays a seek is roughly the chance a
// competitor's request was served since my previous one, which grows with
// the competitor's request rate relative to mine and saturates smoothly:
// r/(1+r) where r = othersRate/myRate. A slow competitor barely dents a
// fast sequential stream; an equally hungry one interleaves half the
// requests; a much faster one interleaves nearly all of them.
func (h *Host) effSeq(a AppSpec, myIOPS, othersIOPS float64) float64 {
	if othersIOPS <= 0 {
		return a.Seq
	}
	if myIOPS < 1 {
		myIOPS = 1
	}
	r := othersIOPS / myIOPS
	interleave := r / (1 + r)
	return a.Seq * (1 - h.cfg.Disk.SeqDisruption*interleave)
}

// soloIOPSCeiling returns the request rate app a can reach when alone:
// closed-loop on its own latency, capped by the device.
func (h *Host) soloIOPSCeiling(a AppSpec) float64 {
	lat := h.soloLatencyMs(a)
	device := 1000 / h.mixedCostMs(a, a.Seq)
	return math.Min(a.depth()*1000/lat, device)
}

// finiteRuntime computes the completion time of a finite app whose CPU is
// stretched by the given factor and whose I/O proceeds at iopsEff.
func (h *Host) finiteRuntime(a AppSpec, stretchFactor, iopsEff float64) float64 {
	rt := a.CPUSeconds*stretchFactor + a.ThinkSeconds
	if ops := a.TotalOps(); ops > 0 {
		if iopsEff < 1e-9 {
			iopsEff = 1e-9
		}
		rt += ops / iopsEff
	}
	return rt
}

// mixedCostMs returns the read/write-weighted device service time at the
// given effective sequentiality.
func (h *Host) mixedCostMs(a AppSpec, effSeq float64) float64 {
	rf := a.ReadFraction()
	return rf*h.cfg.Disk.CostMs(effSeq, a.ReqSizeKB, false) +
		(1-rf)*h.cfg.Disk.CostMs(effSeq, a.ReqSizeKB, true)
}

// dom0PerOpMs returns the driver-domain CPU milliseconds consumed per
// request of app a.
func (h *Host) dom0PerOpMs(a AppSpec) float64 {
	return h.cfg.Dom0PerOpMs + h.cfg.Dom0PerKBMs*a.ReqSizeKB
}

// cpuDemand returns the guest CPU fraction app a would consume at the
// current latency if CPU were uncontended.
func (h *Host) cpuDemand(a AppSpec, latMs float64) float64 {
	if a.Endless {
		return a.CPUDemand
	}
	rt := a.CPUSeconds + a.TotalOps()/a.depth()*latMs/1000 + a.ThinkSeconds
	if rt <= 0 {
		return 0
	}
	return a.CPUSeconds / rt
}

func (h *Host) initialIOPS(a AppSpec, soloLatMs, soloRt float64) float64 {
	if a.Endless {
		closedLoop := a.depth() / (soloLatMs / 1000)
		return math.Min(a.TargetReadRate+a.TargetWriteRate, closedLoop)
	}
	if soloRt <= 0 {
		return 0
	}
	return a.TotalOps() / soloRt
}

func (h *Host) initialCPU(a AppSpec, soloRt float64) float64 {
	if a.Endless {
		return a.CPUDemand
	}
	if soloRt <= 0 {
		return 0
	}
	return a.CPUSeconds / soloRt
}

// waterfill distributes capacity among demands with equal entitlements:
// every demand below its fair share is fully satisfied, and the remainder
// is split equally among the rest — the behaviour of Xen's credit scheduler
// with equal weights.
func waterfill(demands []float64, capacity float64) []float64 {
	n := len(demands)
	alloc := make([]float64, n)
	if n == 0 || capacity <= 0 {
		return alloc
	}
	type entry struct {
		d float64
		i int
	}
	order := make([]entry, n)
	for i, d := range demands {
		order[i] = entry{d: d, i: i}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })
	remaining := capacity
	left := n
	for _, e := range order {
		share := remaining / float64(left)
		give := e.d
		if give > share {
			give = share
		}
		alloc[e.i] = give
		remaining -= give
		left--
	}
	return alloc
}
