package xen

import "testing"

func cloneApp() AppSpec {
	return AppSpec{
		Name: "clone-target", CPUSeconds: 50,
		ReadOps: 50000, WriteOps: 5000,
		ReqSizeKB: 16, Seq: 0.7, MaxIODepth: 2,
	}
}

func cloneBG() AppSpec {
	return AppSpec{
		Name: "clone-bg", CPUSeconds: 80,
		ReadOps: 80000, WriteOps: 8000,
		ReqSizeKB: 16, Seq: 0.5, MaxIODepth: 2,
	}
}

func TestCloneReproducesMeasurements(t *testing.T) {
	h, err := NewHost(DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(h, 3, 0.05, 7)
	want, err := tb.MeasureAgainstBackground(cloneApp(), cloneBG())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tb.Clone().MeasureAgainstBackground(cloneApp(), cloneBG())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("clone measurement %+v differs from original %+v", got, want)
	}
	if tb.Clone().Seed() != tb.Seed() {
		t.Error("clone changed the seed")
	}
}

func TestWithSeedChangesNoiseStream(t *testing.T) {
	h, err := NewHost(DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTestbed(h, 3, 0.05, 7)
	a, err := tb.MeasureAgainstBackground(cloneApp(), cloneBG())
	if err != nil {
		t.Fatal(err)
	}
	other := tb.WithSeed(8)
	if other.Seed() != 8 {
		t.Fatalf("WithSeed seed = %d", other.Seed())
	}
	b, err := other.MeasureAgainstBackground(cloneApp(), cloneBG())
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds produced identical noisy measurements")
	}
	// Same derived seed → same measurement again.
	c, err := tb.WithSeed(8).MeasureAgainstBackground(cloneApp(), cloneBG())
	if err != nil {
		t.Fatal(err)
	}
	if b != c {
		t.Errorf("same seed gave %+v then %+v", b, c)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "fig9") != DeriveSeed(1, "fig9") {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, "fig9") == DeriveSeed(1, "fig10") {
		t.Error("distinct labels must derive distinct seeds")
	}
	if DeriveSeed(1, "fig9") == DeriveSeed(2, "fig9") {
		t.Error("distinct bases must derive distinct seeds")
	}
}
