// Package xen models the virtualized host testbed the TRACON paper measured
// on: a Xen-style physical machine with a driver domain (Dom0) that performs
// I/O on behalf of guest domains, a credit-scheduled CPU shared by the guest
// vCPUs, and a storage device whose effective throughput collapses when
// concurrent streams destroy sequentiality.
//
// The paper ran eight real benchmarks on real hardware and replayed the
// measured interference inside its data-center simulator. This package is
// the substitute for that hardware: a fluid contention model, solved to a
// fixed point, that produces per-application runtime and IOPS under
// co-location. All coefficients are exposed in HostConfig and the defaults
// are calibrated against the paper's Table 1 ratios (see host_test.go).
package xen

import "fmt"

// DiskParams characterizes a storage device. Per-request service time is
//
//	cost(seq, sizeKB) = OverheadMs + sizeKB·TransferMsPerKB + (1−seq)·RandomPenaltyMs
//
// where seq ∈ [0,1] is the effective sequentiality of the request stream.
// A fully sequential stream pays only transfer cost; a fully random stream
// pays seek + rotational latency on every request.
type DiskParams struct {
	Name string
	// OverheadMs is the fixed per-request cost (controller, command setup).
	OverheadMs float64
	// TransferMsPerKB is the data transfer time per KB.
	TransferMsPerKB float64
	// RandomPenaltyMs is the seek + rotational cost paid by a fully random
	// request (scaled down by sequentiality).
	RandomPenaltyMs float64
	// WritePenaltyFactor scales the cost of writes relative to reads
	// (journalling, read-modify-write). 1 = symmetric.
	WritePenaltyFactor float64
	// SeqDisruption controls how much a competing I/O stream destroys this
	// device's sequential locality: effSeq = seq·(1 − SeqDisruption·otherShare).
	// Rotational media suffer badly; SSDs barely notice.
	SeqDisruption float64
}

// CostMs returns the per-request service time in milliseconds for a request
// of sizeKB at effective sequentiality seq, for a read (isWrite=false) or
// write.
func (d DiskParams) CostMs(seq, sizeKB float64, isWrite bool) float64 {
	if seq < 0 {
		seq = 0
	} else if seq > 1 {
		seq = 1
	}
	c := d.OverheadMs + sizeKB*d.TransferMsPerKB + (1-seq)*d.RandomPenaltyMs
	if isWrite {
		c *= d.WritePenaltyFactor
	}
	return c
}

// MaxSeqIOPS returns the device's peak IOPS for a fully sequential read
// stream of the given request size — a convenient normalization for the
// workload generator's intensity levels.
func (d DiskParams) MaxSeqIOPS(sizeKB float64) float64 {
	return 1000 / d.CostMs(1, sizeKB, false)
}

// HDD returns the paper's testbed device: a 1 TB 7200 RPM SATA drive
// (≈100 MB/s sequential, ≈8.5 ms average seek, ≈4.2 ms rotational latency).
func HDD() DiskParams {
	return DiskParams{
		Name:               "hdd",
		OverheadMs:         0.05,
		TransferMsPerKB:    0.01, // 100 MB/s ≈ 0.01 ms/KB
		RandomPenaltyMs:    12.5, // seek + half-rotation
		WritePenaltyFactor: 1.15,
		SeqDisruption:      0.55,
	}
}

// ISCSI returns a network-attached volume (Fig 7's remote storage): every
// request additionally crosses the network, sequential bandwidth is lower,
// and the array cache softens but does not remove the random penalty.
func ISCSI() DiskParams {
	return DiskParams{
		Name:               "iscsi",
		OverheadMs:         2.5,  // network round trips + target processing
		TransferMsPerKB:    0.06, // ≈16 MB/s over the storage network
		RandomPenaltyMs:    9.0,  // array cache absorbs part of the seeks
		WritePenaltyFactor: 1.3,
		SeqDisruption:      0.25,
	}
}

// RAID0 returns a striped array of n drives of the paper's HDD class — one
// of the storage systems the paper names as future work. Striping divides
// the transfer time across members and lets the array absorb more
// concurrent streams before sequentiality collapses (each member serves a
// narrower slice of the interleaved request mix), but every request still
// pays the mechanical positioning cost of its slowest member.
func RAID0(n int) DiskParams {
	if n < 1 {
		n = 1
	}
	base := HDD()
	return DiskParams{
		Name:               fmt.Sprintf("raid0x%d", n),
		OverheadMs:         base.OverheadMs + 0.02, // controller striping cost
		TransferMsPerKB:    base.TransferMsPerKB / float64(n),
		RandomPenaltyMs:    base.RandomPenaltyMs * 1.05, // slowest-member effect
		WritePenaltyFactor: base.WritePenaltyFactor,
		SeqDisruption:      base.SeqDisruption / (1 + 0.25*float64(n-1)),
	}
}

// RAID10 returns a mirrored-striped array of n drives (n even): reads
// behave like a RAID0 of n members, but every write lands on two members,
// so writes see only half the stripe bandwidth.
func RAID10(n int) DiskParams {
	if n < 2 {
		n = 2
	}
	d := RAID0(n)
	d.Name = fmt.Sprintf("raid10x%d", n)
	d.WritePenaltyFactor = 2 * HDD().WritePenaltyFactor
	return d
}

// SSD returns a solid-state device (the paper's future-work storage class):
// no mechanical penalty, so interference comes almost solely from bandwidth
// sharing and Dom0 CPU.
func SSD() DiskParams {
	return DiskParams{
		Name:               "ssd",
		OverheadMs:         0.08,
		TransferMsPerKB:    0.004, // 250 MB/s
		RandomPenaltyMs:    0.15,
		WritePenaltyFactor: 1.05,
		SeqDisruption:      0.05,
	}
}

func (d DiskParams) String() string { return fmt.Sprintf("disk(%s)", d.Name) }
