package xen

import (
	"math"
	"testing"
)

func newTestbedT(t *testing.T, runs int, sigma float64) *Testbed {
	t.Helper()
	return NewTestbed(newTestHost(t), runs, sigma, 42)
}

func TestProfileSoloFeatures(t *testing.T) {
	tb := newTestbedT(t, 3, 0)
	p, err := tb.ProfileSolo(seqReader("sr"))
	if err != nil {
		t.Fatal(err)
	}
	f := p.Features()
	if len(f) != 4 {
		t.Fatalf("features = %v", f)
	}
	if f[0] <= 0 {
		t.Fatal("read/s must be positive for a reader")
	}
	if f[1] != 0 {
		t.Fatal("write/s must be zero for a pure reader")
	}
	if f[2] <= 0 || f[2] > 1 {
		t.Fatalf("DomU CPU out of range: %v", f[2])
	}
	if f[3] <= 0 {
		t.Fatal("Dom0 CPU must be positive for an I/O app")
	}
}

func TestMeasureAgainstBackgroundRejectsEndlessTarget(t *testing.T) {
	tb := newTestbedT(t, 1, 0)
	if _, err := tb.MeasureAgainstBackground(ioHogBG("x"), Idle()); err == nil {
		t.Fatal("endless target accepted")
	}
}

func TestMeasurementNoiseIsDeterministicAndBounded(t *testing.T) {
	tb := newTestbedT(t, 3, 0.05)
	m1, err := tb.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tb.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("noisy measurement not reproducible for same key and seed")
	}
	clean := NewTestbed(newTestHost(t), 1, 0, 42)
	m0, err := clean.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m1.Runtime-m0.Runtime)/m0.Runtime > 0.2 {
		t.Fatalf("noise too large: %v vs clean %v", m1.Runtime, m0.Runtime)
	}
}

func TestDifferentSeedsDifferentNoise(t *testing.T) {
	a := NewTestbed(newTestHost(t), 1, 0.05, 1)
	b := NewTestbed(newTestHost(t), 1, 0.05, 2)
	ma, err := a.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	if ma == mb {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestMoreRunsReduceNoise(t *testing.T) {
	// Averaging over many runs must pull the measurement toward the clean
	// value compared to the typical single-run deviation.
	clean := NewTestbed(newTestHost(t), 1, 0, 7)
	m0, err := clean.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	many := NewTestbed(newTestHost(t), 200, 0.05, 7)
	mN, err := many.MeasureAgainstBackground(seqReader("sr"), ioHogBG("bg"))
	if err != nil {
		t.Fatal(err)
	}
	if dev := math.Abs(mN.Runtime-m0.Runtime) / m0.Runtime; dev > 0.02 {
		t.Fatalf("200-run average deviates %v from clean value", dev)
	}
}

func TestMeasurePairSymmetricApps(t *testing.T) {
	tb := newTestbedT(t, 1, 0)
	a := seqReader("a")
	b := seqReader("b")
	res, err := tb.MeasurePair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RuntimeA-res.RuntimeB)/res.RuntimeA > 0.02 {
		t.Fatalf("identical apps should finish together: %v vs %v", res.RuntimeA, res.RuntimeB)
	}
	solo, err := tb.ProfileSolo(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuntimeA < solo.Runtime*2 {
		t.Fatalf("two colliding sequential readers should be far slower than solo: %v vs %v", res.RuntimeA, solo.Runtime)
	}
}

func TestMeasurePairShortAndLong(t *testing.T) {
	tb := newTestbedT(t, 1, 0)
	long := seqReader("long")
	short := AppSpec{Name: "short", CPUSeconds: 2, ReqSizeKB: 4}
	res, err := tb.MeasurePair(long, short)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := tb.ProfileSolo(long)
	if err != nil {
		t.Fatal(err)
	}
	// The CPU-only short app barely disturbs the reader and finishes fast;
	// the reader's runtime should be close to solo.
	if res.RuntimeA > solo.Runtime*1.2 {
		t.Fatalf("long app runtime %v should be near solo %v", res.RuntimeA, solo.Runtime)
	}
	if res.RuntimeB > 10 {
		t.Fatalf("short app should finish quickly, took %v", res.RuntimeB)
	}
}

func TestMeasurePairRejectsEndless(t *testing.T) {
	tb := newTestbedT(t, 1, 0)
	if _, err := tb.MeasurePair(seqReader("a"), Idle()); err == nil {
		t.Fatal("endless app accepted in MeasurePair")
	}
}

func TestSlowdownAgainstIdleIsOne(t *testing.T) {
	tb := newTestbedT(t, 1, 0)
	sd, err := tb.Slowdown(seqReader("sr"), Idle())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-1) > 0.02 {
		t.Fatalf("slowdown vs idle = %v want ≈1", sd)
	}
}
