package stats

import (
	"errors"
	"math"

	"tracon/internal/mat"
)

// Fit is a fitted regression model over a fixed term set. It is the common
// representation for the paper's LM (linear terms only) and NLM (degree-2
// terms): in both cases prediction is intercept + Σ coefᵢ·termᵢ(x).
type Fit struct {
	Terms     []Term
	Intercept float64
	Coef      []float64 // one per term
	SSE       float64   // sum of squared errors on the training set
	N         int       // training observations
}

// ErrNoData is returned when a fit is attempted on an empty training set.
var ErrNoData = errors.New("stats: empty training set")

// ErrUnderdetermined is returned when there are fewer observations than
// parameters.
var ErrUnderdetermined = errors.New("stats: fewer observations than parameters")

// Predict evaluates the fitted model on raw variable vector x.
func (f *Fit) Predict(x []float64) float64 {
	y := f.Intercept
	for k, t := range f.Terms {
		y += f.Coef[k] * t.Eval(x)
	}
	return y
}

// K returns the number of free parameters (terms + intercept). AIC uses it.
func (f *Fit) K() int { return len(f.Coef) + 1 }

// AIC returns the Akaike information criterion of the fit, using the
// Gaussian log-likelihood form the paper cites ([1]):
//
//	AIC = n·ln(SSE/n) + 2k
//
// (additive constants dropped — only differences matter to stepwise).
// Lower is better. A variance floor keeps a perfect interpolating fit from
// producing -Inf and freezing the stepwise search.
func (f *Fit) AIC() float64 {
	n := float64(f.N)
	varHat := f.SSE / n
	if varHat < 1e-12 {
		varHat = 1e-12
	}
	return n*math.Log(varHat) + 2*float64(f.K())
}

// OLS fits y ≈ intercept + Σ coef·term(x) by least squares over the raw
// observation matrix x (observations in rows). If the design matrix is
// rank-deficient it falls back to a lightly ridge-regularized solve, which
// keeps stepwise search moving instead of aborting on collinear candidate
// models.
func OLS(x *mat.Matrix, y []float64, terms []Term) (*Fit, error) {
	return WLS(x, y, nil, terms)
}

// WLS is OLS with per-observation weights: it minimizes Σ wᵢ·(yᵢ−ŷᵢ)².
// A nil weights slice means equal weights. TRACON's model fitting uses
// wᵢ = 1/yᵢ² so that the optimized quantity matches the paper's relative
// error metric |ŷ−y|/y. The reported SSE is the weighted one (it is the
// likelihood-relevant quantity for AIC-guided selection).
func WLS(x *mat.Matrix, y, weights []float64, terms []Term) (*Fit, error) {
	n := x.Rows()
	if n == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(y) != n {
		return nil, mat.ErrShape
	}
	if weights != nil && len(weights) != n {
		return nil, mat.ErrShape
	}
	p := len(terms) + 1
	if n < p {
		return nil, ErrUnderdetermined
	}
	design := mat.New(n, p)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		row := design.RawRow(i)
		row[0] = 1
		raw := x.RawRow(i)
		for k, t := range terms {
			row[k+1] = t.Eval(raw)
		}
		s := 1.0
		if weights != nil {
			if weights[i] < 0 {
				return nil, errors.New("stats: negative weight")
			}
			s = math.Sqrt(weights[i])
			for k := range row {
				row[k] *= s
			}
		}
		rhs[i] = y[i] * s
	}
	beta, err := mat.SolveLeastSquares(design, rhs)
	if err != nil {
		// Collinear design: fall back to ridge so the caller still gets a
		// usable (if shrunk) model.
		beta, err = mat.RidgeSolve(design, rhs, 1e-8)
		if err != nil {
			return nil, err
		}
	}
	fit := &Fit{
		Terms:     append([]Term(nil), terms...),
		Intercept: beta[0],
		Coef:      append([]float64(nil), beta[1:]...),
		N:         n,
	}
	fit.SSE = computeWSSE(x, y, weights, fit)
	return fit, nil
}

func computeSSE(x *mat.Matrix, y []float64, f *Fit) float64 {
	return computeWSSE(x, y, nil, f)
}

func computeWSSE(x *mat.Matrix, y, weights []float64, f *Fit) float64 {
	sse := 0.0
	for i := 0; i < x.Rows(); i++ {
		r := y[i] - f.Predict(x.RawRow(i))
		if weights != nil {
			sse += weights[i] * r * r
		} else {
			sse += r * r
		}
	}
	return sse
}

// RSquared returns the coefficient of determination of f on (x, y).
func RSquared(x *mat.Matrix, y []float64, f *Fit) float64 {
	meanY := mat.Mean(y)
	tss := 0.0
	for _, v := range y {
		d := v - meanY
		tss += d * d
	}
	if tss == 0 {
		return 0
	}
	return 1 - computeSSE(x, y, f)/tss
}
