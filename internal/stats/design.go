// Package stats implements the statistical-learning machinery the TRACON
// paper relies on: ordinary least squares, AIC-guided stepwise model
// selection, Gauss-Newton nonlinear fitting, principal component analysis
// and the distance-weighted k-nearest-neighbour estimator behind the
// weighted mean method (WMM).
//
// Everything is built on internal/mat and the standard library only.
package stats

import (
	"fmt"
	"sort"
)

// Term describes one regression term over a raw variable vector x:
//
//   - {I: i, J: -1} is the linear term x[i]
//   - {I: i, J: i}  is the square term x[i]²
//   - {I: i, J: j}  is the interaction x[i]·x[j] (i < j canonically)
//
// The intercept is implicit in every model and never appears as a Term.
type Term struct {
	I, J int
}

// Linear returns the linear term for variable i.
func Linear(i int) Term { return Term{I: i, J: -1} }

// Square returns the pure quadratic term for variable i.
func Square(i int) Term { return Term{I: i, J: i} }

// Interaction returns the cross term x[i]·x[j], canonicalized so I < J.
func Interaction(i, j int) Term {
	if i > j {
		i, j = j, i
	}
	return Term{I: i, J: j}
}

// IsLinear reports whether t is a first-degree term.
func (t Term) IsLinear() bool { return t.J < 0 }

// Eval computes the term's value on raw variable vector x.
func (t Term) Eval(x []float64) float64 {
	if t.J < 0 {
		return x[t.I]
	}
	return x[t.I] * x[t.J]
}

// String renders the term for diagnostics, e.g. "x3", "x1*x4", "x2^2".
func (t Term) String() string {
	switch {
	case t.J < 0:
		return fmt.Sprintf("x%d", t.I)
	case t.I == t.J:
		return fmt.Sprintf("x%d^2", t.I)
	default:
		return fmt.Sprintf("x%d*x%d", t.I, t.J)
	}
}

// LinearTerms returns the p first-degree terms x0..x(p-1) — the term set of
// the paper's linear model, equation (1).
func LinearTerms(p int) []Term {
	terms := make([]Term, 0, p)
	for i := 0; i < p; i++ {
		terms = append(terms, Linear(i))
	}
	return terms
}

// QuadraticTerms returns the full degree-2 expansion over p raw variables:
// all linear terms, all squares, and all pairwise interactions. For p = 8
// this is the paper's equation (2) term set (44 terms + intercept).
func QuadraticTerms(p int) []Term {
	terms := LinearTerms(p)
	for i := 0; i < p; i++ {
		terms = append(terms, Square(i))
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			terms = append(terms, Interaction(i, j))
		}
	}
	return terms
}

// ExpandRow evaluates every term on x, producing one design-matrix row
// (without the intercept column).
func ExpandRow(x []float64, terms []Term) []float64 {
	row := make([]float64, len(terms))
	for k, t := range terms {
		row[k] = t.Eval(x)
	}
	return row
}

// sortTerms orders terms deterministically: linear first, then squares,
// then interactions, each by index. Stepwise selection relies on this for
// reproducible tie-breaking.
func sortTerms(terms []Term) {
	rank := func(t Term) (int, int, int) {
		switch {
		case t.J < 0:
			return 0, t.I, 0
		case t.I == t.J:
			return 1, t.I, 0
		default:
			return 2, t.I, t.J
		}
	}
	sort.Slice(terms, func(a, b int) bool {
		ka, ia, ja := rank(terms[a])
		kb, ib, jb := rank(terms[b])
		if ka != kb {
			return ka < kb
		}
		if ia != ib {
			return ia < ib
		}
		return ja < jb
	})
}
