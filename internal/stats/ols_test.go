package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracon/internal/mat"
)

func TestTermEvalAndString(t *testing.T) {
	x := []float64{2, 3, 5}
	cases := []struct {
		term Term
		want float64
		str  string
	}{
		{Linear(0), 2, "x0"},
		{Linear(2), 5, "x2"},
		{Square(1), 9, "x1^2"},
		{Interaction(0, 2), 10, "x0*x2"},
		{Interaction(2, 0), 10, "x0*x2"}, // canonicalized
	}
	for _, c := range cases {
		if got := c.term.Eval(x); got != c.want {
			t.Errorf("%v.Eval = %v want %v", c.term, got, c.want)
		}
		if got := c.term.String(); got != c.str {
			t.Errorf("String = %q want %q", got, c.str)
		}
	}
}

func TestQuadraticTermCount(t *testing.T) {
	// p linear + p squares + p(p-1)/2 interactions.
	for _, p := range []int{1, 2, 4, 8} {
		want := p + p + p*(p-1)/2
		if got := len(QuadraticTerms(p)); got != want {
			t.Errorf("QuadraticTerms(%d) = %d terms, want %d", p, got, want)
		}
	}
	// Equation (2) of the paper: 8 raw variables → 44 terms + intercept.
	if got := len(QuadraticTerms(8)); got != 44 {
		t.Errorf("paper expansion has %d terms, want 44", got)
	}
}

func TestExpandRow(t *testing.T) {
	terms := []Term{Linear(0), Square(0), Interaction(0, 1)}
	got := ExpandRow([]float64{3, 4}, terms)
	want := []float64{3, 9, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpandRow = %v want %v", got, want)
		}
	}
}

func TestOLSRecoversLinearTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 100
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x.SetRow(i, []float64{a, b})
		y[i] = 4 + 2*a - 3*b
	}
	fit, err := OLS(x, y, LinearTerms(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Intercept-4) > 1e-8 || math.Abs(fit.Coef[0]-2) > 1e-8 || math.Abs(fit.Coef[1]+3) > 1e-8 {
		t.Fatalf("fit = intercept %v coef %v", fit.Intercept, fit.Coef)
	}
	if fit.SSE > 1e-12 {
		t.Fatalf("noiseless fit should have ~0 SSE, got %v", fit.SSE)
	}
}

func TestOLSRecoversQuadraticTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.SetRow(i, []float64{a, b})
		y[i] = 1 + a - b + 0.5*a*a + 2*a*b
	}
	fit, err := OLS(x, y, QuadraticTerms(2))
	if err != nil {
		t.Fatal(err)
	}
	pred := fit.Predict([]float64{1, 2})
	want := 1 + 1 - 2 + 0.5 + 4.0
	if math.Abs(pred-want) > 1e-6 {
		t.Fatalf("Predict = %v want %v", pred, want)
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(mat.New(1, 1), nil, nil); err != ErrNoData {
		t.Fatalf("empty y: err = %v", err)
	}
	x := mat.New(2, 3)
	if _, err := OLS(x, []float64{1, 2}, QuadraticTerms(3)); err != ErrUnderdetermined {
		t.Fatalf("underdetermined: err = %v", err)
	}
	if _, err := OLS(x, []float64{1}, nil); err != mat.ErrShape {
		t.Fatalf("shape: err = %v", err)
	}
}

func TestOLSCollinearFallsBackToRidge(t *testing.T) {
	// x1 == x0 exactly: design is singular, but OLS should still return a
	// finite model via the ridge fallback.
	x := mat.NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	y := []float64{2, 4, 6, 8}
	fit, err := OLS(x, y, LinearTerms(2))
	if err != nil {
		t.Fatal(err)
	}
	if p := fit.Predict([]float64{5, 5}); math.Abs(p-10) > 0.01 {
		t.Fatalf("ridge-fallback prediction = %v want ≈10", p)
	}
}

func TestAICPenalizesParameters(t *testing.T) {
	// Same SSE, more parameters → larger AIC.
	a := &Fit{SSE: 10, N: 50, Coef: make([]float64, 2)}
	b := &Fit{SSE: 10, N: 50, Coef: make([]float64, 10)}
	if !(a.AIC() < b.AIC()) {
		t.Fatalf("AIC must penalize parameters: %v vs %v", a.AIC(), b.AIC())
	}
}

func TestAICRewardsFit(t *testing.T) {
	a := &Fit{SSE: 10, N: 50, Coef: make([]float64, 2)}
	b := &Fit{SSE: 100, N: 50, Coef: make([]float64, 2)}
	if !(a.AIC() < b.AIC()) {
		t.Fatal("AIC must reward lower SSE")
	}
}

func TestAICFiniteOnPerfectFit(t *testing.T) {
	f := &Fit{SSE: 0, N: 10, Coef: make([]float64, 1)}
	if math.IsInf(f.AIC(), 0) || math.IsNaN(f.AIC()) {
		t.Fatal("AIC must stay finite for SSE = 0")
	}
}

func TestRSquared(t *testing.T) {
	x := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}})
	y := []float64{2, 4, 6, 8}
	fit, err := OLS(x, y, LinearTerms(1))
	if err != nil {
		t.Fatal(err)
	}
	if r2 := RSquared(x, y, fit); math.Abs(r2-1) > 1e-10 {
		t.Fatalf("perfect fit R² = %v", r2)
	}
}

// Property: OLS residuals sum to ~0 whenever an intercept is present.
func TestOLSResidualMeanZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		x := mat.New(n, 2)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x.SetRow(i, []float64{rng.NormFloat64(), rng.NormFloat64()})
			y[i] = rng.NormFloat64() * 5
		}
		fit, err := OLS(x, y, LinearTerms(2))
		if err != nil {
			return true
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += y[i] - fit.Predict(x.RawRow(i))
		}
		return math.Abs(sum) < 1e-7*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
