package stats

import (
	"errors"
	"math"

	"tracon/internal/mat"
)

// ResidualFunc computes the residual vector r(θ) = y − ŷ(θ) for a parameter
// vector θ. The optimizer minimizes ‖r(θ)‖².
type ResidualFunc func(theta []float64) []float64

// GaussNewtonConfig tunes the iterative solver ([11] in the paper).
type GaussNewtonConfig struct {
	MaxIter int     // iteration budget (default 50)
	Tol     float64 // relative SSE improvement below which we stop (default 1e-10)
	// Damping enables a Levenberg-style fallback: when a pure Gauss-Newton
	// step fails to reduce SSE, the step is recomputed with an increasing
	// diagonal penalty until it does (or the penalty saturates).
	Damping bool
}

// ErrNoProgress is returned when the solver cannot reduce the objective at
// all from the starting point.
var ErrNoProgress = errors.New("stats: gauss-newton made no progress")

// GaussNewton minimizes ‖r(θ)‖² starting from theta0. The Jacobian is
// estimated by forward differences, which is exact in the limit for the
// polynomial models TRACON fits and adequate for the smooth responses here.
// It returns the optimized parameters and the final SSE.
func GaussNewton(r ResidualFunc, theta0 []float64, cfg GaussNewtonConfig) ([]float64, float64, error) {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-10
	}
	theta := append([]float64(nil), theta0...)
	res := r(theta)
	sse := mat.Dot(res, res)
	if math.IsNaN(sse) || math.IsInf(sse, 0) {
		return nil, 0, errors.New("stats: non-finite residual at start")
	}

	improvedEver := false
	for iter := 0; iter < cfg.MaxIter; iter++ {
		jac := numericJacobian(r, theta, res)
		step, err := solveStep(jac, res, 0)
		lambda := 0.0
		for {
			if err == nil {
				trial := mat.AddVec(theta, step)
				tres := r(trial)
				tsse := mat.Dot(tres, tres)
				if !math.IsNaN(tsse) && tsse < sse {
					rel := (sse - tsse) / (sse + 1e-300)
					theta, res, sse = trial, tres, tsse
					improvedEver = true
					if rel < cfg.Tol {
						return theta, sse, nil
					}
					break
				}
			}
			if !cfg.Damping {
				if improvedEver {
					return theta, sse, nil
				}
				return nil, 0, ErrNoProgress
			}
			// Increase damping and retry.
			if lambda == 0 {
				lambda = 1e-6
			} else {
				lambda *= 10
			}
			if lambda > 1e8 {
				if improvedEver {
					return theta, sse, nil
				}
				return nil, 0, ErrNoProgress
			}
			step, err = solveStep(jac, res, lambda)
		}
	}
	return theta, sse, nil
}

// solveStep solves (JᵀJ + λI)·δ = Jᵀr for the Gauss-Newton step δ.
// Note the sign convention: r = y − ŷ, so ŷ moves toward y along +δ.
func solveStep(jac *mat.Matrix, res []float64, lambda float64) ([]float64, error) {
	jt := jac.T()
	jtj := jt.Mul(jac)
	n := jtj.Rows()
	for i := 0; i < n; i++ {
		jtj.Set(i, i, jtj.At(i, i)+lambda)
	}
	jtr := jt.MulVec(res)
	l, err := mat.Cholesky(jtj)
	if err != nil {
		return nil, err
	}
	return mat.CholeskySolve(l, jtr)
}

// numericJacobian estimates ∂ŷ/∂θ (equivalently −∂r/∂θ) by forward
// differences, reusing the residual at theta.
func numericJacobian(r ResidualFunc, theta, res []float64) *mat.Matrix {
	m, p := len(res), len(theta)
	jac := mat.New(m, p)
	for j := 0; j < p; j++ {
		h := 1e-7 * (1 + math.Abs(theta[j]))
		bumped := append([]float64(nil), theta...)
		bumped[j] += h
		rb := r(bumped)
		for i := 0; i < m; i++ {
			// r = y − ŷ  ⇒  ∂ŷ/∂θ = −∂r/∂θ = (r(θ) − r(θ+h))/h.
			jac.Set(i, j, (res[i]-rb[i])/h)
		}
	}
	return jac
}

// FitGaussNewton fits the same term-based model as OLS but through the
// Gauss-Newton solver, as the paper does for its nonlinear models. For a
// model linear in its parameters Gauss-Newton converges in a single step to
// the OLS solution; the entry point exists so the NLM training path
// exercises the paper's algorithm and so that non-polynomial responses can
// reuse it.
func FitGaussNewton(x *mat.Matrix, y []float64, terms []Term, cfg GaussNewtonConfig) (*Fit, error) {
	n := x.Rows()
	if n == 0 {
		return nil, ErrNoData
	}
	p := len(terms) + 1
	if n < p {
		return nil, ErrUnderdetermined
	}
	resFn := func(theta []float64) []float64 {
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			raw := x.RawRow(i)
			pred := theta[0]
			for k, t := range terms {
				pred += theta[k+1] * t.Eval(raw)
			}
			out[i] = y[i] - pred
		}
		return out
	}
	theta0 := make([]float64, p)
	theta0[0] = mat.Mean(y) // start at the intercept-only model
	theta, sse, err := GaussNewton(resFn, theta0, cfg)
	if err == ErrNoProgress {
		// Already optimal at start (e.g. constant y); keep theta0.
		theta = theta0
		r0 := resFn(theta0)
		sse = mat.Dot(r0, r0)
	} else if err != nil {
		return nil, err
	}
	return &Fit{
		Terms:     append([]Term(nil), terms...),
		Intercept: theta[0],
		Coef:      append([]float64(nil), theta[1:]...),
		SSE:       sse,
		N:         n,
	}, nil
}
