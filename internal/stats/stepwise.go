package stats

import (
	"tracon/internal/mat"
)

// StepwiseConfig controls the bidirectional stepwise search ([14] in the
// paper) that picks a term subset minimizing AIC.
type StepwiseConfig struct {
	// MaxSteps bounds the number of add/remove moves; each move refits up
	// to |candidates| models, so this also bounds total work.
	MaxSteps int
	// MinImprovement is the AIC decrease required to accept a move.
	// Matches R's step() default behaviour of "any improvement" when 0.
	MinImprovement float64
	// StartFull starts from the full candidate set and prunes (backward
	// first) instead of growing from the intercept-only model.
	StartFull bool
	// Weights, when non-nil, makes every candidate fit a weighted least
	// squares fit (see WLS).
	Weights []float64
}

// DefaultStepwise mirrors the paper's usage: forward-backward from the
// empty model, accept any AIC improvement, generous step budget.
func DefaultStepwise() StepwiseConfig {
	return StepwiseConfig{MaxSteps: 200}
}

// Stepwise selects a subset of candidate terms by bidirectional search:
// at each step it evaluates every single-term addition and every
// single-term removal, takes the move with the best AIC, and stops when no
// move improves AIC by at least MinImprovement. The returned Fit is the
// best model found; it is never nil on success (the intercept-only model
// is always a valid candidate).
func Stepwise(x *mat.Matrix, y []float64, candidates []Term, cfg StepwiseConfig) (*Fit, error) {
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200
	}
	cand := append([]Term(nil), candidates...)
	sortTerms(cand)

	inModel := make([]bool, len(cand))
	if cfg.StartFull {
		for i := range inModel {
			inModel[i] = true
		}
	}

	current, err := fitSubset(x, y, cfg.Weights, cand, inModel)
	if err != nil {
		if cfg.StartFull {
			// The full model may be underdetermined; restart empty.
			for i := range inModel {
				inModel[i] = false
			}
			current, err = fitSubset(x, y, cfg.Weights, cand, inModel)
		}
		if err != nil {
			return nil, err
		}
	}
	bestAIC := current.AIC()

	for step := 0; step < cfg.MaxSteps; step++ {
		bestMove := -1
		bestMoveAIC := bestAIC
		var bestFit *Fit

		for i := range cand {
			inModel[i] = !inModel[i] // try toggling term i
			f, err := fitSubset(x, y, cfg.Weights, cand, inModel)
			inModel[i] = !inModel[i] // restore
			if err != nil {
				continue // e.g. underdetermined after adding; skip move
			}
			if aic := f.AIC(); aic < bestMoveAIC-cfg.MinImprovement {
				bestMove, bestMoveAIC, bestFit = i, aic, f
			}
		}
		if bestMove < 0 {
			break
		}
		inModel[bestMove] = !inModel[bestMove]
		bestAIC = bestMoveAIC
		current = bestFit
	}
	return current, nil
}

func fitSubset(x *mat.Matrix, y, weights []float64, cand []Term, inModel []bool) (*Fit, error) {
	sub := make([]Term, 0, len(cand))
	for i, in := range inModel {
		if in {
			sub = append(sub, cand[i])
		}
	}
	return WLS(x, y, weights, sub)
}
