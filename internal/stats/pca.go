package stats

import (
	"tracon/internal/mat"
)

// PCA is a fitted principal-component analysis: the standardization
// parameters of the training data plus the leading eigenvectors of its
// correlation structure. The paper's weighted mean method projects
// application characteristics onto the first four components before
// computing neighbour distances.
type PCA struct {
	Mean   []float64   // per-variable mean of the training data
	Scale  []float64   // per-variable standard deviation (1 where degenerate)
	Comp   *mat.Matrix // p×k matrix: columns are principal directions
	Lambda []float64   // eigenvalues (variance explained per component)
	// TotalVar is the total variance of the (scaled) training data — the
	// denominator of ExplainedVariance.
	TotalVar float64
}

// FitPCA computes the first k principal components of the rows of x,
// standardizing variables first (zero mean, unit variance) so that request
// rates and CPU utilizations — wildly different scales — contribute
// comparably.
func FitPCA(x *mat.Matrix, k int) (*PCA, error) {
	return fitPCA(x, k, true)
}

// FitPCACov computes covariance PCA on the raw (centred, unscaled) data —
// the textbook form cited by the paper ([18]), and what its weighted mean
// method uses: Euclidean distances in the space of the leading components
// of the raw monitoring data.
func FitPCACov(x *mat.Matrix, k int) (*PCA, error) {
	return fitPCA(x, k, false)
}

func fitPCA(x *mat.Matrix, k int, standardize bool) (*PCA, error) {
	n, p := x.Dims()
	if n == 0 {
		return nil, ErrNoData
	}
	if k <= 0 || k > p {
		k = p
	}
	pca := &PCA{
		Mean:  make([]float64, p),
		Scale: make([]float64, p),
	}
	for j := 0; j < p; j++ {
		col := x.Col(j)
		pca.Mean[j] = mat.Mean(col)
		if standardize {
			pca.Scale[j] = stddev(col, pca.Mean[j])
		} else {
			pca.Scale[j] = 1
		}
		if pca.Scale[j] < 1e-12 {
			pca.Scale[j] = 1 // constant variable: leave centred at zero
		}
	}
	z := mat.New(n, p)
	for i := 0; i < n; i++ {
		src := x.RawRow(i)
		dst := z.RawRow(i)
		for j := 0; j < p; j++ {
			dst[j] = (src[j] - pca.Mean[j]) / pca.Scale[j]
		}
	}
	eig, err := mat.SymEigen(mat.Covariance(z))
	if err != nil {
		return nil, err
	}
	pca.Comp = eig.Vectors.SelectColumns(indices(k))
	pca.Lambda = append([]float64(nil), eig.Values[:k]...)
	pca.TotalVar = mat.Sum(eig.Values)
	return pca, nil
}

// Project maps a raw observation into the k-dimensional principal space.
func (p *PCA) Project(x []float64) []float64 {
	if len(x) != len(p.Mean) {
		panic(mat.ErrShape)
	}
	z := make([]float64, len(x))
	for j := range x {
		z[j] = (x[j] - p.Mean[j]) / p.Scale[j]
	}
	k := p.Comp.Cols()
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := range z {
			s += p.Comp.At(j, c) * z[j]
		}
		out[c] = s
	}
	return out
}

// ExplainedVariance returns the fraction of total variance captured by the
// retained components.
func (p *PCA) ExplainedVariance() float64 {
	if p.TotalVar <= 0 {
		return 0
	}
	frac := mat.Sum(p.Lambda) / p.TotalVar
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

func indices(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i
	}
	return out
}

func stddev(v []float64, mean float64) float64 {
	if len(v) < 2 {
		return 0
	}
	ss := 0.0
	for _, x := range v {
		d := x - mean
		ss += d * d
	}
	return sqrt(ss / float64(len(v)-1))
}
