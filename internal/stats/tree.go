package stats

import (
	"fmt"
	"math/rand"
	"sort"

	"tracon/internal/mat"
)

// CART regression trees and a bagged forest. The paper's future work asks
// for "different modeling techniques to build a more accurate model"; a
// tree ensemble is the natural candidate: it handles the cliff-shaped
// interference response (a handful of competing random requests already
// costs whole seeks) that polynomials smooth over, at the price of more
// training data appetite and less interpretability.

// TreeConfig bounds a regression tree.
type TreeConfig struct {
	// MaxDepth limits the tree height (default 6).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 3).
	MinLeaf int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 3
	}
	return c
}

// treeNode is one node of a fitted tree.
type treeNode struct {
	feature   int // split feature (-1 for a leaf)
	threshold float64
	value     float64 // leaf prediction (mean of its samples)
	left      *treeNode
	right     *treeNode
}

// RegressionTree is a fitted CART regression tree.
type RegressionTree struct {
	root *treeNode
	p    int // input dimensionality
}

// FitTree grows a regression tree on (x, y) by greedy variance-reducing
// binary splits.
func FitTree(x *mat.Matrix, y []float64, cfg TreeConfig) (*RegressionTree, error) {
	n, p := x.Dims()
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("stats: tree needs matching non-empty x and y")
	}
	cfg = cfg.withDefaults()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	t := &RegressionTree{p: p}
	t.root = growTree(x, y, idx, cfg, 0, nil)
	return t, nil
}

// growTree recursively builds nodes. features limits the candidate split
// features (nil = all), which the forest uses for decorrelation.
func growTree(x *mat.Matrix, y []float64, idx []int, cfg TreeConfig, depth int, features []int) *treeNode {
	node := &treeNode{feature: -1, value: meanAt(y, idx)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return node
	}
	bestFeature, bestThr, bestGain := -1, 0.0, 0.0
	baseSSE := sseAt(y, idx)
	cand := features
	if cand == nil {
		cand = make([]int, x.Cols())
		for j := range cand {
			cand[j] = j
		}
	}
	for _, j := range cand {
		f, thr, gain := bestSplit(x, y, idx, j, cfg.MinLeaf, baseSSE)
		if f && gain > bestGain+1e-12 {
			bestFeature, bestThr, bestGain = j, thr, gain
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x.At(i, bestFeature) <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	node.feature = bestFeature
	node.threshold = bestThr
	node.left = growTree(x, y, left, cfg, depth+1, features)
	node.right = growTree(x, y, right, cfg, depth+1, features)
	return node
}

// bestSplit scans feature j for the threshold with maximum SSE reduction.
func bestSplit(x *mat.Matrix, y []float64, idx []int, j, minLeaf int, baseSSE float64) (ok bool, thr, gain float64) {
	type pair struct{ v, y float64 }
	pts := make([]pair, len(idx))
	for k, i := range idx {
		pts[k] = pair{x.At(i, j), y[i]}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].v < pts[b].v })

	// Prefix sums for O(1) left/right SSE at every cut.
	n := len(pts)
	sum, sumsq := make([]float64, n+1), make([]float64, n+1)
	for k, p := range pts {
		sum[k+1] = sum[k] + p.y
		sumsq[k+1] = sumsq[k] + p.y*p.y
	}
	sseRange := func(lo, hi int) float64 { // [lo, hi)
		cnt := float64(hi - lo)
		if cnt == 0 {
			return 0
		}
		s := sum[hi] - sum[lo]
		sq := sumsq[hi] - sumsq[lo]
		return sq - s*s/cnt
	}
	best := -1.0
	for cut := minLeaf; cut <= n-minLeaf; cut++ {
		if pts[cut-1].v == pts[cut].v {
			continue // no threshold separates equal values
		}
		g := baseSSE - sseRange(0, cut) - sseRange(cut, n)
		if g > best {
			best = g
			thr = (pts[cut-1].v + pts[cut].v) / 2
		}
	}
	if best <= 0 {
		return false, 0, 0
	}
	return true, thr, best
}

// Predict evaluates the tree on one input.
func (t *RegressionTree) Predict(x []float64) float64 {
	if len(x) != t.p {
		panic(mat.ErrShape)
	}
	node := t.root
	for node.feature >= 0 {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.value
}

// Depth returns the height of the tree (0 for a lone leaf).
func (t *RegressionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.feature < 0 {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// ForestConfig bounds a bagged regression forest.
type ForestConfig struct {
	// Trees is the ensemble size (default 40).
	Trees int
	// Tree bounds each member.
	Tree TreeConfig
	// Seed fixes the bootstrap and feature sampling.
	Seed int64
	// FeatureFraction of features considered per tree (default 1: bagging
	// only; lower it toward 0.6 for random-forest-style decorrelation).
	FeatureFraction float64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 40
	}
	if c.FeatureFraction <= 0 || c.FeatureFraction > 1 {
		c.FeatureFraction = 1
	}
	c.Tree = c.Tree.withDefaults()
	return c
}

// Forest is a bagged ensemble of regression trees.
type Forest struct {
	trees []*RegressionTree
}

// FitForest trains the ensemble on bootstrap resamples of (x, y).
func FitForest(x *mat.Matrix, y []float64, cfg ForestConfig) (*Forest, error) {
	n, p := x.Dims()
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("stats: forest needs matching non-empty x and y")
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{}
	nFeat := int(cfg.FeatureFraction*float64(p) + 0.5)
	if nFeat < 1 {
		nFeat = 1
	}
	for b := 0; b < cfg.Trees; b++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		var features []int
		if nFeat < p {
			perm := rng.Perm(p)
			features = append([]int(nil), perm[:nFeat]...)
			sort.Ints(features)
		}
		tree := &RegressionTree{p: p}
		tree.root = growTree(x, y, idx, cfg.Tree, 0, features)
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Predict returns the ensemble mean.
func (f *Forest) Predict(x []float64) float64 {
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// Size returns the number of member trees.
func (f *Forest) Size() int { return len(f.trees) }

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sseAt(y []float64, idx []int) float64 {
	m := meanAt(y, idx)
	s := 0.0
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}
