package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N/Mean = %d/%v", s.N, s.Mean)
	}
	// Sample stddev of this classic data set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Fatalf("Stddev = %v want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatal("empty summary must be zero")
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Stddev != 0 || s.Median != 42 {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 7
		w.Add(x)
		xs = append(xs, x)
	}
	s := Summarize(xs)
	if math.Abs(w.Mean()-s.Mean) > 1e-10 {
		t.Fatalf("Welford mean %v vs batch %v", w.Mean(), s.Mean)
	}
	if math.Abs(w.Variance()-s.Variance) > 1e-10 {
		t.Fatalf("Welford variance %v vs batch %v", w.Variance(), s.Variance)
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	// Min <= P25 <= Median <= P75 <= Max and Min <= Mean <= Max.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		s := Summarize(xs)
		ordered := s.Min <= s.P25+1e-9 && s.P25 <= s.Median+1e-9 &&
			s.Median <= s.P75+1e-9 && s.P75 <= s.Max+1e-9
		meanOK := s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
		return ordered && meanOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
