package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracon/internal/mat"
)

func TestPCAFindsDominantDirection(t *testing.T) {
	// Points along the (1,1) direction with tiny orthogonal noise: the first
	// component must align with (1,1)/√2 (up to sign).
	rng := rand.New(rand.NewSource(21))
	n := 500
	x := mat.New(n, 2)
	for i := 0; i < n; i++ {
		tv := rng.NormFloat64() * 10
		x.SetRow(i, []float64{tv + rng.NormFloat64()*0.01, tv - rng.NormFloat64()*0.01})
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	v0 := math.Abs(p.Comp.At(0, 0))
	v1 := math.Abs(p.Comp.At(1, 0))
	if math.Abs(v0-math.Sqrt2/2) > 0.01 || math.Abs(v1-math.Sqrt2/2) > 0.01 {
		t.Fatalf("first component = (%v,%v), want ±(0.707,0.707)", p.Comp.At(0, 0), p.Comp.At(1, 0))
	}
	if p.Lambda[0] < 100*p.Lambda[1] {
		t.Fatalf("variance not concentrated: %v", p.Lambda)
	}
}

func TestPCAProjectTrainingMeanIsOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 100
	x := mat.New(n, 3)
	for i := 0; i < n; i++ {
		x.SetRow(i, []float64{rng.NormFloat64() + 5, rng.NormFloat64() * 3, rng.Float64()})
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Project(p.Mean)
	for _, c := range proj {
		if math.Abs(c) > 1e-10 {
			t.Fatalf("projection of the mean should be 0, got %v", proj)
		}
	}
}

func TestPCAConstantVariable(t *testing.T) {
	// A constant column must not produce NaNs.
	x := mat.NewFromRows([][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}})
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.Project([]float64{2.5, 7})
	for _, c := range proj {
		if math.IsNaN(c) {
			t.Fatalf("NaN in projection: %v", proj)
		}
	}
}

func TestPCAEmpty(t *testing.T) {
	if _, err := FitPCA(mat.New(1, 1), 1); err != nil {
		t.Fatal("single observation should still fit")
	}
}

func TestPCAExplainedVarianceBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 20+rng.Intn(30), 2+rng.Intn(4)
		x := mat.New(n, p)
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			x.SetRow(i, row)
		}
		k := 1 + rng.Intn(p)
		pc, err := FitPCA(x, k)
		if err != nil {
			return false
		}
		ev := pc.ExplainedVariance()
		return ev >= -1e-9 && ev <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNExactMatchReturnsTrainingResponse(t *testing.T) {
	pts := mat.NewFromRows([][]float64{{0, 0}, {1, 0}, {0, 1}})
	knn := NewKNN(3, pts, []float64{10, 20, 30})
	if got := knn.Predict([]float64{1, 0}); got != 20 {
		t.Fatalf("exact-match prediction = %v want 20", got)
	}
}

func TestKNNWeightsByReciprocalDistance(t *testing.T) {
	// Query at distance 1 from y=0 and distance 3 from y=4 with k=2:
	// weights 1 and 1/3 → prediction (0·1 + 4/3)/(4/3) = 1.
	pts := mat.NewFromRows([][]float64{{1}, {5}})
	knn := NewKNN(2, pts, []float64{0, 4})
	got := knn.Predict([]float64{2})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("Predict = %v want 1", got)
	}
}

func TestKNNKLargerThanDataset(t *testing.T) {
	pts := mat.NewFromRows([][]float64{{0}, {2}})
	knn := NewKNN(10, pts, []float64{1, 3})
	got := knn.Predict([]float64{1})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("Predict = %v want 2 (both neighbours equidistant)", got)
	}
}

func TestKNNPredictionWithinRangeProperty(t *testing.T) {
	// A weighted mean of training responses can never leave their range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		pts := mat.New(n, 3)
		ys := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			pts.SetRow(i, []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
			ys[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, ys[i])
			hi = math.Max(hi, ys[i])
		}
		knn := NewKNN(3, pts, ys)
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		p := knn.Predict(q)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNPanicsOnBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched shapes must panic")
		}
	}()
	NewKNN(1, mat.New(2, 2), []float64{1})
}
