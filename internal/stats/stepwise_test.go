package stats

import (
	"math"
	"math/rand"
	"testing"

	"tracon/internal/mat"
)

// Build a data set where y depends only on x0 and x1·x2, with noise, and
// check stepwise recovers essentially that support.
func TestStepwiseFindsTrueSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 300
	x := mat.New(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x.SetRow(i, row)
		y[i] = 2 + 3*row[0] + 4*row[1]*row[2] + rng.NormFloat64()*0.05
	}
	fit, err := Stepwise(x, y, QuadraticTerms(4), DefaultStepwise())
	if err != nil {
		t.Fatal(err)
	}
	has := map[string]float64{}
	for k, term := range fit.Terms {
		has[term.String()] = fit.Coef[k]
	}
	if c, ok := has["x0"]; !ok || math.Abs(c-3) > 0.1 {
		t.Fatalf("x0 not recovered: %v", has)
	}
	if c, ok := has["x1*x2"]; !ok || math.Abs(c-4) > 0.1 {
		t.Fatalf("x1*x2 not recovered: %v", has)
	}
	// The selected model should be small: true support is 2 terms; allow a
	// little slack for noise-selected extras.
	if len(fit.Terms) > 6 {
		t.Fatalf("stepwise kept %d terms; AIC should prune aggressively", len(fit.Terms))
	}
}

func TestStepwiseBeatsOrMatchesFullModelAIC(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 120
	x := mat.New(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		x.SetRow(i, row)
		y[i] = 1 + row[0] + rng.NormFloat64()*0.1
	}
	cand := QuadraticTerms(3)
	full, err := OLS(x, y, cand)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Stepwise(x, y, cand, DefaultStepwise())
	if err != nil {
		t.Fatal(err)
	}
	if sel.AIC() > full.AIC()+1e-9 {
		t.Fatalf("stepwise AIC %v worse than full model %v", sel.AIC(), full.AIC())
	}
}

func TestStepwiseStartFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 100
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64()}
		x.SetRow(i, row)
		y[i] = 5 * row[1]
	}
	cfg := DefaultStepwise()
	cfg.StartFull = true
	fit, err := Stepwise(x, y, QuadraticTerms(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Must include x1 and predict well.
	found := false
	for _, tm := range fit.Terms {
		if tm.String() == "x1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("x1 dropped: %v", fit.Terms)
	}
}

func TestStepwiseConstantResponse(t *testing.T) {
	// With a constant response, the intercept-only model should win.
	x := mat.NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {2, 1}, {4, 3}})
	y := []float64{7, 7, 7, 7, 7, 7}
	fit, err := Stepwise(x, y, QuadraticTerms(2), DefaultStepwise())
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Terms) != 0 {
		t.Fatalf("expected intercept-only model, got %v", fit.Terms)
	}
	if math.Abs(fit.Intercept-7) > 1e-9 {
		t.Fatalf("intercept = %v", fit.Intercept)
	}
}

func TestStepwiseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 80
	x := mat.New(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		x.SetRow(i, row)
		y[i] = row[0] - row[2] + rng.NormFloat64()*0.2
	}
	a, err := Stepwise(x, y, QuadraticTerms(3), DefaultStepwise())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stepwise(x, y, QuadraticTerms(3), DefaultStepwise())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Terms) != len(b.Terms) {
		t.Fatal("stepwise not deterministic")
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] || a.Coef[i] != b.Coef[i] {
			t.Fatal("stepwise not deterministic in terms/coefs")
		}
	}
}

func TestGaussNewtonMatchesOLSOnLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 150
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := []float64{rng.NormFloat64(), rng.NormFloat64()}
		x.SetRow(i, row)
		y[i] = 2 + row[0] - 3*row[1] + 0.7*row[0]*row[1] + rng.NormFloat64()*0.1
	}
	terms := QuadraticTerms(2)
	ols, err := OLS(x, y, terms)
	if err != nil {
		t.Fatal(err)
	}
	gn, err := FitGaussNewton(x, y, terms, GaussNewtonConfig{Damping: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gn.SSE-ols.SSE)/ols.SSE > 1e-4 {
		t.Fatalf("GN SSE %v vs OLS SSE %v", gn.SSE, ols.SSE)
	}
}

func TestGaussNewtonNonlinearResidual(t *testing.T) {
	// Fit y = exp(a·t) with a_true = 0.5; genuinely nonlinear in the
	// parameter, so this exercises more than one iteration.
	ts := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	aTrue := 0.5
	ys := make([]float64, len(ts))
	for i, tv := range ts {
		ys[i] = math.Exp(aTrue * tv)
	}
	resFn := func(theta []float64) []float64 {
		out := make([]float64, len(ts))
		for i, tv := range ts {
			out[i] = ys[i] - math.Exp(theta[0]*tv)
		}
		return out
	}
	theta, sse, err := GaussNewton(resFn, []float64{0.1}, GaussNewtonConfig{Damping: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta[0]-aTrue) > 1e-6 {
		t.Fatalf("a = %v want %v (sse %v)", theta[0], aTrue, sse)
	}
}

func TestGaussNewtonNoProgressOnOptimal(t *testing.T) {
	// Residual independent of theta: solver must not loop forever and must
	// report no progress.
	resFn := func(theta []float64) []float64 { return []float64{1, -1} }
	_, _, err := GaussNewton(resFn, []float64{0}, GaussNewtonConfig{Damping: true, MaxIter: 5})
	if err != ErrNoProgress {
		t.Fatalf("err = %v want ErrNoProgress", err)
	}
}

func TestFitGaussNewtonConstantResponse(t *testing.T) {
	x := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}})
	y := []float64{5, 5, 5, 5}
	fit, err := FitGaussNewton(x, y, LinearTerms(1), GaussNewtonConfig{Damping: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Predict([]float64{10})-5) > 1e-6 {
		t.Fatalf("constant fit predicts %v", fit.Predict([]float64{10}))
	}
}
