package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tracon/internal/mat"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// A step no polynomial matches exactly: y = 10 for x<0.5, 20 otherwise.
	n := 200
	x := mat.New(n, 1)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		v := rng.Float64()
		x.Set(i, 0, v)
		if v < 0.5 {
			y[i] = 10
		} else {
			y[i] = 20
		}
	}
	tree, err := FitTree(x, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{0.1}); math.Abs(got-10) > 0.5 {
		t.Fatalf("left side predicts %v", got)
	}
	if got := tree.Predict([]float64{0.9}); math.Abs(got-20) > 0.5 {
		t.Fatalf("right side predicts %v", got)
	}
}

func TestTreeRespectsDepthAndLeafLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	x := mat.New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.SetRow(i, []float64{rng.Float64(), rng.Float64()})
		y[i] = rng.NormFloat64()
	}
	tree, err := FitTree(x, y, TreeConfig{MaxDepth: 3, MinLeaf: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth %d exceeds limit", d)
	}
}

func TestTreeConstantResponseIsLeaf(t *testing.T) {
	x := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}})
	y := []float64{7, 7, 7, 7, 7, 7, 7, 7}
	tree, err := FitTree(x, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("constant response grew depth %d", tree.Depth())
	}
	if tree.Predict([]float64{100}) != 7 {
		t.Fatal("leaf value wrong")
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(mat.New(1, 1), nil, TreeConfig{}); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
	tree, err := FitTree(mat.NewFromRows([][]float64{{1}, {2}}), []float64{1, 2}, TreeConfig{MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong predict dimensionality did not panic")
		}
	}()
	tree.Predict([]float64{1, 2})
}

func TestForestBeatsSingleTreeOnNoisyCliff(t *testing.T) {
	// A cliff with noise: ensembles should generalize better than one tree.
	gen := func(rng *rand.Rand, n int) (*mat.Matrix, []float64) {
		x := mat.New(n, 2)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := rng.Float64()*10, rng.Float64()*10
			x.SetRow(i, []float64{a, b})
			base := 100.0
			if a > 2 {
				base = 100 / (1 + a - 2)
			}
			y[i] = base + b + rng.NormFloat64()*5
		}
		return x, y
	}
	rng := rand.New(rand.NewSource(3))
	trainX, trainY := gen(rng, 300)
	testX, testY := gen(rng, 300)

	tree, err := FitTree(trainX, trainY, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := FitForest(trainX, trainY, ForestConfig{Trees: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mse := func(pred func([]float64) float64) float64 {
		s := 0.0
		for i := 0; i < testX.Rows(); i++ {
			d := pred(testX.RawRow(i)) - testY[i]
			s += d * d
		}
		return s / float64(testX.Rows())
	}
	if mse(forest.Predict) >= mse(tree.Predict) {
		t.Fatalf("forest MSE %v not below tree MSE %v", mse(forest.Predict), mse(tree.Predict))
	}
}

func TestForestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := mat.New(100, 3)
	y := make([]float64, 100)
	for i := 0; i < 100; i++ {
		x.SetRow(i, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y[i] = rng.Float64() * 100
	}
	a, err := FitForest(x, y, ForestConfig{Trees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitForest(x, y, ForestConfig{Trees: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, 0.6, 0.9}
	if a.Predict(q) != b.Predict(q) {
		t.Fatal("same seed, different forests")
	}
	c, err := FitForest(x, y, ForestConfig{Trees: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Predict(q) == c.Predict(q) {
		t.Fatal("different seeds produced identical forests (suspicious)")
	}
}

// Property: predictions never leave the range of the training responses.
func TestTreePredictionInRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		x := mat.New(n, 2)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			x.SetRow(i, []float64{rng.NormFloat64(), rng.NormFloat64()})
			y[i] = rng.NormFloat64() * 100
			lo, hi = math.Min(lo, y[i]), math.Max(hi, y[i])
		}
		tree, err := FitTree(x, y, TreeConfig{})
		if err != nil {
			return false
		}
		forest, err := FitForest(x, y, ForestConfig{Trees: 5, Seed: seed})
		if err != nil {
			return false
		}
		q := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		pt, pf := tree.Predict(q), forest.Predict(q)
		return pt >= lo-1e-9 && pt <= hi+1e-9 && pf >= lo-1e-9 && pf <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForestFeatureSubsampling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := mat.New(120, 4)
	y := make([]float64, 120)
	for i := 0; i < 120; i++ {
		row := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		x.SetRow(i, row)
		y[i] = row[0]*10 + row[2]*5
	}
	f, err := FitForest(x, y, ForestConfig{Trees: 30, Seed: 2, FeatureFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 30 {
		t.Fatalf("size %d", f.Size())
	}
	// Still captures the signal reasonably.
	pred := f.Predict([]float64{1, 0, 1, 0})
	if math.Abs(pred-15) > 5 {
		t.Fatalf("prediction %v too far from 15", pred)
	}
}
