package stats

import (
	"math"
	"sort"

	"tracon/internal/mat"
)

// KNNRegressor is a distance-weighted k-nearest-neighbour estimator in an
// embedded space. The paper's weighted mean method (WMM) is exactly this
// with k = 3 in the space of the first four principal components, weights
// being reciprocals of the Euclidean distances.
type KNNRegressor struct {
	K      int
	Points *mat.Matrix // training points in the embedded space (rows)
	Y      []float64   // responses
}

// NewKNN builds the regressor. It panics on inconsistent shapes because
// those are programming errors, not runtime conditions.
func NewKNN(k int, points *mat.Matrix, y []float64) *KNNRegressor {
	if points.Rows() != len(y) {
		panic(mat.ErrShape)
	}
	if k <= 0 {
		panic("stats: k must be positive")
	}
	return &KNNRegressor{K: k, Points: points, Y: y}
}

// Predict returns the reciprocal-distance-weighted mean of the K nearest
// training responses. An exact match (distance 0) returns that response
// directly, which is both the mathematical limit and what we want when
// the query is a training point.
func (r *KNNRegressor) Predict(q []float64) float64 {
	n := r.Points.Rows()
	type neighbour struct {
		d float64
		i int
	}
	nbrs := make([]neighbour, n)
	for i := 0; i < n; i++ {
		nbrs[i] = neighbour{d: mat.Distance(r.Points.RawRow(i), q), i: i}
	}
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].d != nbrs[b].d {
			return nbrs[a].d < nbrs[b].d
		}
		return nbrs[a].i < nbrs[b].i
	})
	k := r.K
	if k > n {
		k = n
	}
	wsum, ysum := 0.0, 0.0
	for _, nb := range nbrs[:k] {
		if nb.d < 1e-12 {
			return r.Y[nb.i]
		}
		w := 1 / nb.d
		wsum += w
		ysum += w * r.Y[nb.i]
	}
	if wsum == 0 || math.IsNaN(ysum) {
		return mat.Mean(r.Y)
	}
	return ysum / wsum
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
