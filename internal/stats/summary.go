package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample. Experiment reports use
// it for the mean ± stddev columns and min/avg/max series of Figs 3, 5, 6.
type Summary struct {
	N              int
	Mean, Stddev   float64
	Min, Max       float64
	Median         float64
	P25, P75, P95  float64
	Sum            float64
	Variance       float64
	StderrOfMean   float64
	CoefOfVariance float64
}

// Summarize computes descriptive statistics of v. It returns a zero Summary
// for an empty sample.
func Summarize(v []float64) Summary {
	var s Summary
	s.N = len(v)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range v {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	ss := 0.0
	for _, x := range v {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Variance = ss / float64(s.N-1)
		s.Stddev = math.Sqrt(s.Variance)
		s.StderrOfMean = s.Stddev / math.Sqrt(float64(s.N))
	}
	if s.Mean != 0 {
		s.CoefOfVariance = s.Stddev / math.Abs(s.Mean)
	}
	s.Median = Percentile(sorted, 50)
	s.P25 = Percentile(sorted, 25)
	s.P75 = Percentile(sorted, 75)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0–100) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Welford maintains running mean and variance in a single pass. The
// monitor's drift detector uses two of these (baseline window vs current
// window) to spot mean shifts and variance surges (Sec. 3.1).
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the running sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }
