package monitor

import (
	"testing"

	"tracon/internal/model"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// The boundary tests run the detector on hand-built error streams where
// the thresholds can be computed exactly, so firing behaviour is pinned at
// the decision boundary rather than just "somewhere past it".

// TestDetectorMeanShiftFloorBoundary: with a zero-variance baseline the
// sigma threshold collapses and MinMeanShift is the floor; a shift exactly
// at the floor must stay quiet, a shift just past it must fire.
func TestDetectorMeanShiftFloorBoundary(t *testing.T) {
	cfg := DriftConfig{Baseline: 30, Window: 10, MeanShiftSigmas: 3, MinMeanShift: 0.10, VarianceSurgeFactor: 1e9}
	baseline := func(d *Detector) {
		for i := 0; i < cfg.Baseline; i++ {
			if d.Observe(0.2) {
				t.Fatal("fired during baseline")
			}
		}
	}

	t.Run("at-floor", func(t *testing.T) {
		d := NewDetector(cfg)
		baseline(d)
		for i := 0; i < 40; i++ {
			// shift = 0.10 exactly: not strictly above the floor.
			if d.Observe(0.30) {
				t.Fatalf("fired at observation %d with shift == MinMeanShift", i)
			}
		}
	})
	t.Run("past-floor", func(t *testing.T) {
		d := NewDetector(cfg)
		baseline(d)
		fired := -1
		for i := 0; i < 40; i++ {
			if d.Observe(0.301) {
				fired = i
				break
			}
		}
		if fired < 0 {
			t.Fatal("never fired with shift past MinMeanShift")
		}
		if fired < cfg.Window-1 {
			t.Fatalf("fired at %d, before the recent window could fill", fired)
		}
	})
}

// TestDetectorSigmaThresholdBoundary: with a noisy baseline the sigma term
// dominates the floor. Baseline alternates 0.2±0.05 (sample stddev
// 0.05·√(30/29) ≈ 0.05085, so 3σ ≈ 0.1526): a recent mean shifted by 0.14
// stays quiet, one shifted by 0.16 fires.
func TestDetectorSigmaThresholdBoundary(t *testing.T) {
	cfg := DriftConfig{Baseline: 30, Window: 10, MeanShiftSigmas: 3, MinMeanShift: 0.01, VarianceSurgeFactor: 1e9}
	baseline := func(d *Detector) {
		for i := 0; i < cfg.Baseline; i++ {
			v := 0.15
			if i%2 == 1 {
				v = 0.25
			}
			if d.Observe(v) {
				t.Fatal("fired during baseline")
			}
		}
	}

	t.Run("below-3-sigma", func(t *testing.T) {
		d := NewDetector(cfg)
		baseline(d)
		for i := 0; i < 40; i++ {
			if d.Observe(0.34) {
				t.Fatalf("fired at %d with a 0.14 shift < 3σ≈0.153", i)
			}
		}
	})
	t.Run("above-3-sigma", func(t *testing.T) {
		d := NewDetector(cfg)
		baseline(d)
		fired := false
		for i := 0; i < 40; i++ {
			if d.Observe(0.36) {
				fired = true
				break
			}
		}
		if !fired {
			t.Fatal("never fired with a 0.16 shift > 3σ≈0.153")
		}
	})
}

// TestDetectorVarianceSurgeBoundary: recent errors alternate 0.2±0.15
// against a 0.2±0.05 baseline — the mean shift is zero, and the sample
// variance ratio is (0.0225·10/9)/(0.0025·30/29) ≈ 9.67. A surge factor
// below that ratio fires, one above stays quiet.
func TestDetectorVarianceSurgeBoundary(t *testing.T) {
	run := func(factor float64) bool {
		cfg := DriftConfig{Baseline: 30, Window: 10, MeanShiftSigmas: 3, MinMeanShift: 10, VarianceSurgeFactor: factor}
		d := NewDetector(cfg)
		for i := 0; i < cfg.Baseline; i++ {
			v := 0.15
			if i%2 == 1 {
				v = 0.25
			}
			d.Observe(v)
		}
		for i := 0; i < 40; i++ {
			v := 0.05
			if i%2 == 1 {
				v = 0.35
			}
			if d.Observe(v) {
				return true
			}
		}
		return false
	}
	if !run(9) {
		t.Fatal("factor 9 < ratio 9.67: surge not detected")
	}
	if run(10.5) {
		t.Fatal("factor 10.5 > ratio 9.67: fired without a qualifying surge")
	}
}

// TestDetectorZeroVarianceBaselineGuard: a constant baseline has (near-)
// zero variance; the variance path must stay disarmed rather than divide
// into a hair trigger.
func TestDetectorZeroVarianceBaselineGuard(t *testing.T) {
	cfg := DriftConfig{Baseline: 30, Window: 10, MeanShiftSigmas: 3, MinMeanShift: 10, VarianceSurgeFactor: 2}
	d := NewDetector(cfg)
	for i := 0; i < cfg.Baseline; i++ {
		d.Observe(0.2)
	}
	for i := 0; i < 40; i++ {
		v := 0.0
		if i%2 == 1 {
			v = 0.4
		}
		if d.Observe(v) {
			t.Fatalf("variance path fired at %d against a zero-variance baseline", i)
		}
	}
}

// TestDetectorEndToEndMonitorStream closes the loop the way Sec 3.1
// deploys the detector: a model trained on local storage serves
// predictions, the monitor observes production co-runs, and the stream of
// prediction errors feeds the detector. While the environment matches
// training, no drift fires; when storage migrates to iSCSI (Fig 7's
// shock), the error stream shifts and the detector must fire quickly.
func TestDetectorEndToEndMonitorStream(t *testing.T) {
	hddCfg := xen.DefaultHost()
	host, err := xen.NewHost(hddCfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := xen.NewTestbed(host, 3, 0.05, 11)
	target, err := workload.BenchmarkByName("blastn")
	if err != nil {
		t.Fatal(err)
	}
	var bgs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(hddCfg.Disk) {
		bgs = append(bgs, w.Spec)
	}
	ts, err := (&model.Profiler{TB: tb}).Profile(target.Spec, bgs)
	if err != nil {
		t.Fatal(err)
	}
	am, err := model.Train(ts, model.NLM)
	if err != nil {
		t.Fatal(err)
	}

	// One prediction error per monitored co-run on the given testbed.
	errStream := func(tb *xen.Testbed, n int) []float64 {
		mon := New(tb)
		out := make([]float64, 0, n)
		for i := 0; len(out) < n; i++ {
			s, err := mon.ObserveCoRun(target.Spec, bgs[i%len(bgs)])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, model.PredictionError(am.PredictRuntime(s.BG), s.Runtime))
		}
		return out
	}

	d := NewDetector(DriftConfig{})
	for i, e := range errStream(tb, 160) {
		if d.Observe(e) {
			t.Fatalf("drift fired at observation %d in the training environment", i)
		}
	}
	if !d.BaselineReady() {
		t.Fatal("baseline not established after 160 observations")
	}

	iscsiCfg := hddCfg
	iscsiCfg.Disk = xen.ISCSI()
	ihost, err := xen.NewHost(iscsiCfg)
	if err != nil {
		t.Fatal(err)
	}
	itb := xen.NewTestbed(ihost, 3, 0.05, 12)
	fired := -1
	for i, e := range errStream(itb, 80) {
		if d.Observe(e) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("detector missed the local → iSCSI storage migration")
	}
	t.Logf("migration detected after %d post-shift observations", fired+1)
}
