// Package monitor implements TRACON's task and resource monitor (Sec. 3):
// it observes the four Table 2 application characteristics the way xentop
// and iostat would (noisy, sampled, aggregated in Dom0), maintains running
// per-application estimates, and watches model prediction errors for the
// drift events — a significant mean shift or a variance surge — that
// trigger online model rebuilds (Sec. 3.1).
package monitor

import (
	"fmt"
	"sort"
	"sync"

	"tracon/internal/model"
	"tracon/internal/stats"
	"tracon/internal/xen"
)

// Monitor aggregates application characteristics observed on a testbed.
// It is safe for concurrent use: in a data center many application servers
// report into one manager-side monitor.
type Monitor struct {
	tb *xen.Testbed

	mu    sync.Mutex
	feats map[string][]stats.Welford // per app: one accumulator per feature
	runs  map[string]*stats.Welford  // per app: observed solo runtimes
}

// New builds a Monitor over the given testbed.
func New(tb *xen.Testbed) *Monitor {
	return &Monitor{
		tb:    tb,
		feats: map[string][]stats.Welford{},
		runs:  map[string]*stats.Welford{},
	}
}

// ObserveSolo measures one solo run of the application and folds the
// observed characteristics into the running estimates.
func (m *Monitor) ObserveSolo(app xen.AppSpec) (xen.SoloProfile, error) {
	p, err := m.tb.ProfileSolo(app)
	if err != nil {
		return xen.SoloProfile{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.feats[app.Name]
	if !ok {
		agg = make([]stats.Welford, model.NumFeatures)
		m.feats[app.Name] = agg
		m.runs[app.Name] = &stats.Welford{}
	}
	for i, v := range p.Features() {
		agg[i].Add(v)
	}
	m.runs[app.Name].Add(p.Runtime)
	return p, nil
}

// Features returns the running characteristic estimate for an application.
func (m *Monitor) Features(app string) ([]float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	agg, ok := m.feats[app]
	if !ok {
		return nil, fmt.Errorf("monitor: app %q never observed", app)
	}
	out := make([]float64, len(agg))
	for i := range agg {
		out[i] = agg[i].Mean()
	}
	return out, nil
}

// MeanSoloRuntime returns the running solo-runtime estimate.
func (m *Monitor) MeanSoloRuntime(app string) (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.runs[app]
	if !ok {
		return 0, fmt.Errorf("monitor: app %q never observed", app)
	}
	return w.Mean(), nil
}

// Apps lists observed applications, sorted.
func (m *Monitor) Apps() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.feats))
	for a := range m.feats {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// ObserveCoRun measures the target against a background workload and
// returns the production observation the adaptive models consume: the
// background's current characteristic estimate plus the target's measured
// outcome.
func (m *Monitor) ObserveCoRun(target, bg xen.AppSpec) (model.Sample, error) {
	if _, err := m.ObserveSolo(bg); err != nil {
		return model.Sample{}, err
	}
	bgFeat, err := m.Features(bg.Name)
	if err != nil {
		return model.Sample{}, err
	}
	meas, err := m.tb.MeasureAgainstBackground(target, bg)
	if err != nil {
		return model.Sample{}, err
	}
	return model.Sample{BG: bgFeat, Runtime: meas.Runtime, IOPS: meas.IOPS}, nil
}
