package monitor

import (
	"math"
	"math/rand"
	"testing"

	"tracon/internal/model"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

func newMonitor(t *testing.T) *Monitor {
	t.Helper()
	host, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	return New(xen.NewTestbed(host, 3, 0.05, 5))
}

func TestObserveSoloAccumulates(t *testing.T) {
	m := newMonitor(t)
	b, _ := workload.BenchmarkByName("blastn")
	if _, err := m.Features("blastn"); err == nil {
		t.Fatal("features available before observation")
	}
	var last xen.SoloProfile
	for i := 0; i < 5; i++ {
		p, err := m.ObserveSolo(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		last = p
	}
	f, err := m.Features("blastn")
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != model.NumFeatures {
		t.Fatalf("features = %v", f)
	}
	// The running mean should be near any single observation.
	for i, v := range last.Features() {
		if v > 0 && math.Abs(f[i]-v)/v > 0.5 {
			t.Fatalf("feature %d estimate %v far from observation %v", i, f[i], v)
		}
	}
	rt, err := m.MeanSoloRuntime("blastn")
	if err != nil || rt <= 0 {
		t.Fatalf("runtime estimate %v err %v", rt, err)
	}
	if got := m.Apps(); len(got) != 1 || got[0] != "blastn" {
		t.Fatalf("Apps = %v", got)
	}
}

func TestObserveCoRunProducesSample(t *testing.T) {
	m := newMonitor(t)
	b, _ := workload.BenchmarkByName("blastn")
	bg := workload.BGIOHigh.Spec()
	s, err := m.ObserveCoRun(b.Spec, bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BG) != model.NumFeatures || s.Runtime <= 0 || s.IOPS < 0 {
		t.Fatalf("bad sample %+v", s)
	}
	// Heavy background should yield a runtime well above solo.
	solo, err := m.tb.ProfileSolo(b.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Runtime < solo.Runtime*1.5 {
		t.Fatalf("co-run runtime %v vs solo %v", s.Runtime, solo.Runtime)
	}
}

func TestDetectorIgnoresStableErrors(t *testing.T) {
	d := NewDetector(DriftConfig{})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		if d.Observe(0.1 + rng.Float64()*0.05) {
			t.Fatalf("false positive at observation %d", i)
		}
	}
}

func TestDetectorFiresOnMeanShift(t *testing.T) {
	d := NewDetector(DriftConfig{})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if d.Observe(0.1 + rng.Float64()*0.05) {
			t.Fatal("false positive in baseline phase")
		}
	}
	fired := false
	for i := 0; i < 60; i++ {
		if d.Observe(1.2 + rng.Float64()*0.1) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("detector missed a 10x mean shift")
	}
}

func TestDetectorFiresOnVarianceSurge(t *testing.T) {
	d := NewDetector(DriftConfig{MinMeanShift: 10}) // disable the mean path
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		d.Observe(0.1 + rng.Float64()*0.02)
	}
	fired := false
	for i := 0; i < 60; i++ {
		// Same-ish mean, huge spread.
		e := 0.11 + rng.NormFloat64()*0.4
		if e < 0 {
			e = -e
		}
		if d.Observe(e) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("detector missed a variance surge")
	}
}

func TestDetectorResetRestartsBaseline(t *testing.T) {
	d := NewDetector(DriftConfig{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		d.Observe(0.1 + rng.Float64()*0.02)
	}
	d.Reset()
	if d.BaselineReady() {
		t.Fatal("baseline survived reset")
	}
	// High errors right after reset become the new baseline — no firing.
	for i := 0; i < 100; i++ {
		if d.Observe(1.0+rng.Float64()*0.05) && i < 60 {
			t.Fatal("fired while rebuilding baseline")
		}
	}
}

func TestDetectorImplementsModelInterface(t *testing.T) {
	var _ model.DriftDetector = NewDetector(DriftConfig{})
}

func TestDetectorDefaultsApplied(t *testing.T) {
	d := NewDetector(DriftConfig{})
	def := DefaultDrift()
	if d.cfg != def {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
}
