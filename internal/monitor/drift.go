package monitor

import (
	"tracon/internal/stats"
)

// DriftConfig tunes the prediction-error drift detector.
type DriftConfig struct {
	// Baseline is how many initial observations establish the reference
	// error distribution.
	Baseline int
	// Window is the size of the sliding recent-error window compared
	// against the baseline.
	Window int
	// MeanShiftSigmas fires when the recent mean error exceeds the
	// baseline mean by this many baseline standard deviations.
	MeanShiftSigmas float64
	// MinMeanShift is an absolute floor on the mean shift (guards against
	// a near-zero baseline variance making the detector hair-triggered).
	MinMeanShift float64
	// VarianceSurgeFactor fires when the recent error variance exceeds
	// the baseline variance by this factor.
	VarianceSurgeFactor float64
}

// DefaultDrift returns a conservative configuration: react to clear
// environment changes (Fig 7's storage migration) without tripping on the
// noise floor.
func DefaultDrift() DriftConfig {
	return DriftConfig{
		Baseline:            60,
		Window:              20,
		MeanShiftSigmas:     3,
		MinMeanShift:        0.10,
		VarianceSurgeFactor: 9,
	}
}

// Detector watches a stream of prediction errors for the "predefined
// events" of Sec. 3.1: a significant shift of the mean or a large surge in
// the variance. It implements model.DriftDetector.
type Detector struct {
	cfg      DriftConfig
	baseline stats.Welford
	recent   []float64
}

// NewDetector builds a Detector; zero-valued config fields take defaults.
func NewDetector(cfg DriftConfig) *Detector {
	def := DefaultDrift()
	if cfg.Baseline <= 0 {
		cfg.Baseline = def.Baseline
	}
	if cfg.Window <= 0 {
		cfg.Window = def.Window
	}
	if cfg.MeanShiftSigmas <= 0 {
		cfg.MeanShiftSigmas = def.MeanShiftSigmas
	}
	if cfg.MinMeanShift <= 0 {
		cfg.MinMeanShift = def.MinMeanShift
	}
	if cfg.VarianceSurgeFactor <= 0 {
		cfg.VarianceSurgeFactor = def.VarianceSurgeFactor
	}
	return &Detector{cfg: cfg}
}

// Observe folds in one prediction error and reports whether drift is
// detected at this observation.
func (d *Detector) Observe(err float64) bool {
	if d.baseline.N() < d.cfg.Baseline {
		d.baseline.Add(err)
		return false
	}
	d.recent = append(d.recent, err)
	if len(d.recent) > d.cfg.Window {
		d.recent = d.recent[len(d.recent)-d.cfg.Window:]
	}
	if len(d.recent) < d.cfg.Window {
		return false
	}
	s := stats.Summarize(d.recent)
	shift := s.Mean - d.baseline.Mean()
	threshold := d.cfg.MeanShiftSigmas * d.baseline.Stddev()
	if threshold < d.cfg.MinMeanShift {
		threshold = d.cfg.MinMeanShift
	}
	if shift > threshold {
		return true
	}
	if bv := d.baseline.Variance(); bv > 1e-12 && s.Variance > d.cfg.VarianceSurgeFactor*bv {
		return true
	}
	return false
}

// Reset clears all state (called after a model rebuild: the new model
// defines a new baseline).
func (d *Detector) Reset() {
	d.baseline.Reset()
	d.recent = d.recent[:0]
}

// BaselineReady reports whether the reference window is full.
func (d *Detector) BaselineReady() bool { return d.baseline.N() >= d.cfg.Baseline }
