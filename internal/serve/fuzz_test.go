package serve

import (
	"errors"
	"fmt"
	"testing"

	"tracon/internal/model"
)

// fuzzMachines is the cluster size the fuzzer drives.
const fuzzMachines = 3

// FuzzPlacerBacklog interprets the fuzz input as an operation stream
// against a live Placer — singleton submits, batch submits, completions,
// machine kills, revivals, drains and undrains in arbitrary order — and
// checks after every single operation that CheckInvariants stays silent
// and that admission never grows the backlog past the scaled bound
// (kill-requeued victims may leave it overfull; submits must not add to
// that), then at the end that no task was lost or double-placed: every
// admitted submission is still queued, placed on a unique slot, or
// completed.
//
// Operation encoding: op%9 selects the verb (0-1 submit, 2 submit a batch
// of 2-4 tasks, 3 complete the oldest placed task, 4 kill, 5 revive,
// 6 drain, 7 undrain, 8 submit under a reused idempotency key); op/9
// selects the application (submits), machine (lifecycle verbs) or key
// (dedup submits). Submissions shed by the admission bound (ErrQueueFull
// — the placer enforces it atomically) are expected; lifecycle verbs
// invalid in the machine's current state are expected no-ops
// (ErrBadTransition); anything else is a bug. A keyed resubmission must
// return the FIRST placement ID minted under that key, exactly once, no
// matter what kills, drains and completions happened in between.
func FuzzPlacerBacklog(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x03\x03\x03"))     // fill, then complete
	f.Add([]byte("\x00\x01\x02\x00\x04\x05\x00\x03"))         // kill 0 mid-load, revive
	f.Add([]byte("\x00\x0f\x00\x00\x10\x03"))                 // drain 1, fill, undrain
	f.Add([]byte("\x04\x0d\x16\x00\x00\x05\x0e\x17\x03\x03")) // kill everything, revive everything
	f.Add([]byte("\x02\x0b\x14\x03\x02\x04\x02\x05"))         // batch bursts around a kill
	f.Add([]byte("\x08\x08\x03\x08"))                         // keyed submit, dedup hit, complete, dedup to finished
	f.Add([]byte("\x08\x04\x08\x05\x11\x11"))                 // dedup across a kill/requeue, second key
	f.Add([]byte("\x08\x11\x1a\x23\x02\x08\x11"))             // four keys, a batch, two replays
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512] // bound one case's work; longer inputs add nothing
		}
		s := newTestServer(t, model.NLM, Config{Machines: fuzzMachines, Policy: "mios"})
		p := s.Placer()
		apps := testLibrary(t, model.NLM).Apps()

		var ids []string
		keys := map[string]string{}
		completed, rejected := 0, 0
		prevDepth := 0
		for i, op := range ops {
			verb, arg := int(op)%9, int(op)/9
			switch verb {
			case 0, 1:
				rec, err := p.Submit(apps[arg%len(apps)])
				switch {
				case errors.Is(err, ErrQueueFull):
					rejected++
				case err != nil:
					t.Fatalf("op %d: submit: %v", i, err)
				default:
					ids = append(ids, rec.ID)
				}
			case 2:
				n := 2 + arg%3
				batch := make([]string, n)
				for j := range batch {
					batch[j] = apps[(arg+j)%len(apps)]
				}
				outcomes, err := p.SubmitBatch(batch)
				if err != nil {
					t.Fatalf("op %d: batch submit: %v", i, err)
				}
				for j, o := range outcomes {
					switch {
					case errors.Is(o.Err, ErrQueueFull):
						rejected++
					case o.Err != nil:
						t.Fatalf("op %d: batch task %d: %v", i, j, o.Err)
					default:
						ids = append(ids, o.Placement.ID)
					}
				}
			case 3:
				for _, id := range ids {
					rec, ok := p.Get(id)
					if ok && rec.Status == StatusPlaced {
						if _, err := p.Complete(id); err != nil {
							t.Fatalf("op %d: complete %q: %v", i, id, err)
						}
						completed++
						break
					}
				}
			case 4:
				if _, err := p.Kill(arg % fuzzMachines); err != nil && !errors.Is(err, ErrBadTransition) {
					t.Fatalf("op %d: kill: %v", i, err)
				}
			case 5:
				if err := p.Revive(arg % fuzzMachines); err != nil && !errors.Is(err, ErrBadTransition) {
					t.Fatalf("op %d: revive: %v", i, err)
				}
			case 6:
				if err := p.Drain(arg % fuzzMachines); err != nil && !errors.Is(err, ErrBadTransition) {
					t.Fatalf("op %d: drain: %v", i, err)
				}
			case 7:
				if err := p.Undrain(arg % fuzzMachines); err != nil && !errors.Is(err, ErrBadTransition) {
					t.Fatalf("op %d: undrain: %v", i, err)
				}
			case 8:
				key := fmt.Sprintf("k%d", arg%4)
				rec, err := p.SubmitKeyed(apps[arg%len(apps)], "", key)
				switch {
				case errors.Is(err, ErrQueueFull):
					rejected++
				case err != nil:
					t.Fatalf("op %d: keyed submit: %v", i, err)
				case keys[key] != "":
					// Exactly-once: the replay must surface the original
					// placement, never mint a second ID for the same key.
					if rec.ID != keys[key] {
						t.Fatalf("op %d: key %q resubmit returned %q, original was %q", i, key, rec.ID, keys[key])
					}
				default:
					keys[key] = rec.ID
					ids = append(ids, rec.ID)
				}
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("op %d (byte %#x): %v", i, op, err)
			}
			// The scaled bound governs admission, not crash recovery: a kill
			// requeues its in-flight victims at the queue front even when the
			// surviving capacity's bound is already met (they were admitted
			// once; shedding them would lose tasks). So the invariant is that
			// submits never GROW the backlog past bound+free — an overfull
			// backlog left by a kill must strictly shrink until it fits.
			snap := p.Snapshot()
			if verb <= 2 {
				if bound := s.admission.ScaledBound(snap.Available, snap.Total); bound >= 0 &&
					snap.QueueDepth > bound+snap.FreeSlots && snap.QueueDepth > prevDepth {
					t.Fatalf("op %d: submit grew backlog to %d, past scaled bound %d (+%d free)",
						i, snap.QueueDepth, bound, snap.FreeSlots)
				}
			}
			prevDepth = snap.QueueDepth
		}

		// Conservation: every admitted task is accounted for exactly once,
		// and no two placed tasks share a slot.
		queued, placed := 0, 0
		slots := map[[2]int]string{}
		for _, id := range ids {
			rec, ok := p.Get(id)
			if !ok {
				t.Fatalf("task %q vanished", id)
			}
			switch rec.Status {
			case StatusQueued:
				queued++
			case StatusPlaced:
				placed++
				key := [2]int{rec.Machine, rec.Slot}
				if prev, dup := slots[key]; dup {
					t.Fatalf("slot %v double-placed: %s and %s", key, prev, id)
				}
				slots[key] = id
			case StatusCompleted:
				// Counted when the completion happened.
			default:
				t.Fatalf("task %q in unexpected state: %+v", id, rec)
			}
		}
		if queued+placed+completed != len(ids) {
			t.Fatalf("conservation: %d queued + %d placed + %d completed != %d admitted (%d rejected)",
				queued, placed, completed, len(ids), rejected)
		}
	})
}
