package serve

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tracon/internal/model"
	"tracon/internal/monitor"
	"tracon/internal/obs"
)

// Timing tests for the drift-to-swap loop and the coalescer, driven on
// injected clocks and controlled goroutine interleavings rather than
// wall-clock sleeps. All must stay green under -race.

// waitUntil spins (with real sleeps — this is coordination, not timing
// under test) until cond holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRetrainSingleFlightUnderConcurrentCompletions pins the single-flight
// contract: while one asynchronous retrain is in flight, any number of
// concurrent completion observations — including ones that re-fire the
// drift detector — must not launch a second retrain, and the manual
// trigger must refuse. After the cycle finishes the loop re-arms: a fresh
// baseline plus fresh drift launches cycle two.
func TestRetrainSingleFlightUnderConcurrentCompletions(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	ms, err := NewModelSet(lib, "mios", 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var retrains atomic.Int64
	sm := NewSwapManager(ms, func(recent map[string][]model.Sample) (*model.Library, error) {
		retrains.Add(1)
		<-gate // hold the retrain in flight until the test releases it
		return lib, nil
	}, monitor.DriftConfig{Baseline: 4, Window: 2, MeanShiftSigmas: 1, MinMeanShift: 0.01}, false)

	app := lib.Apps()[0]
	bg := make([]float64, model.NumFeatures)
	feed := func(ratio float64) {
		// predicted 1.0, observed ratio: relative error |ratio-1|.
		sm.ObserveCompletion(app, bg, 1.0, Observation{Runtime: ratio, IOPS: 1})
	}

	for i := 0; i < 4; i++ { // accurate baseline: error 0, stddev 0
		feed(1.0)
	}
	feed(3.0) // window of 2 needs two drifted points to fire
	feed(3.0) // detector fires here; the retrain parks on gate
	waitUntil(t, "first retrain launch", func() bool { return retrains.Load() == 1 })

	// Storm the manager while the retrain is parked: every one of these
	// observations would re-fire the detector, none may double-launch.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				feed(3.0)
			}
		}()
	}
	wg.Wait()
	if got := retrains.Load(); got != 1 {
		t.Fatalf("retrains launched during in-flight cycle = %d, want 1", got)
	}
	if err := sm.TriggerSwap(); err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("manual trigger during in-flight retrain: err=%v, want 'in flight'", err)
	}

	close(gate)
	sm.Wait()
	if got := ms.Swaps(); got != 1 {
		t.Fatalf("swaps after first cycle = %d, want 1", got)
	}
	if got := ms.Generation(); got != 2 {
		t.Fatalf("generation after first cycle = %d, want 2", got)
	}

	// The cycle ended with a detector reset: the loop must re-arm from a
	// fresh baseline and allow a second retrain.
	for i := 0; i < 4; i++ {
		feed(1.0)
	}
	feed(3.0)
	feed(3.0)
	waitUntil(t, "second retrain launch", func() bool { return retrains.Load() == 2 })
	sm.Wait()
	if got := ms.Generation(); got != 3 {
		t.Fatalf("generation after second cycle = %d, want 3", got)
	}
}

// TestSwapDuringBatchPass races model hot-swaps against batch scheduling
// passes: requests snapshot a generation's view, so a swap landing mid-pass
// must neither corrupt placement bookkeeping nor fail any admission.
func TestSwapDuringBatchPass(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	s, err := New(lib, Config{
		Machines: 4, Policy: "mibs", QueueLen: 8,
		Retrain: func(map[string][]model.Sample) (*model.Library, error) { return lib, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Placer()
	apps := lib.Apps()

	const passes = 20
	var wg sync.WaitGroup
	wg.Add(2)
	swapErrs := make(chan error, passes)
	go func() { // swapper: force a generation bump per pass
		defer wg.Done()
		for i := 0; i < passes; i++ {
			if err := s.Swapper().TriggerSwap(); err != nil {
				swapErrs <- err
			}
		}
	}()
	batchErrs := make(chan error, passes)
	go func() { // scheduler: one batch pass per iteration, then drain it
		defer wg.Done()
		batch := []string{apps[0], apps[1%len(apps)], apps[2%len(apps)]}
		for i := 0; i < passes; i++ {
			outcomes, err := p.SubmitBatch(batch)
			if err != nil {
				batchErrs <- err
				return
			}
			for _, o := range outcomes {
				if o.Err != nil {
					batchErrs <- o.Err
					return
				}
				if o.Placement.Status == StatusPlaced {
					if _, err := p.Complete(o.Placement.ID); err != nil {
						batchErrs <- err
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(swapErrs)
	close(batchErrs)
	for err := range swapErrs {
		t.Errorf("TriggerSwap during batch passes: %v", err)
	}
	for err := range batchErrs {
		t.Errorf("batch pass during swaps: %v", err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after swap/batch race: %v", err)
	}
	if got := s.ModelSet().Generation(); got != uint64(1+passes) {
		t.Fatalf("generation = %d, want %d (every manual swap must land)", got, 1+passes)
	}
}

// TestCoalescerWindowExpiryFakeClock drives the micro-batch window on a
// virtual clock: no flush may happen before the window elapses, the flush
// must happen exactly when it does, and a group reaching BatchMax must
// flush with no clock motion at all.
func TestCoalescerWindowExpiryFakeClock(t *testing.T) {
	type step struct {
		advance time.Duration
		waiting int // parked submissions expected after the advance
	}
	cases := []struct {
		name     string
		window   time.Duration
		n        int
		batchMax int
		steps    []step
	}{
		{
			name: "flush at exact expiry", window: 50 * time.Millisecond, n: 3, batchMax: 64,
			steps: []step{{49 * time.Millisecond, 3}, {time.Millisecond, 0}},
		},
		{
			name: "partial advances hold the group", window: 100 * time.Millisecond, n: 2, batchMax: 64,
			steps: []step{{60 * time.Millisecond, 2}, {39 * time.Millisecond, 2}, {time.Millisecond, 0}},
		},
		{
			name: "overshoot flushes once", window: 20 * time.Millisecond, n: 4, batchMax: 64,
			steps: []step{{time.Second, 0}},
		},
		{
			name: "maxbatch flushes with frozen clock", window: time.Hour, n: 3, batchMax: 3,
			steps: nil, // no clock motion at all
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vc := obs.NewVirtualClock(time.Unix(1700000000, 0))
			s := newTestServer(t, model.NLM, Config{
				Machines: 2, Policy: "mios",
				CoalesceWindow: tc.window, BatchMax: tc.batchMax,
				Clock: vc,
			})
			c := s.coalescer
			app := testLibrary(t, model.NLM).Apps()[0]

			results := make(chan error, tc.n)
			for i := 0; i < tc.n; i++ {
				go func() {
					rec, err := c.Submit(app)
					if err == nil && rec == nil {
						err = errNilPlacement
					}
					results <- err
				}()
			}
			if tc.batchMax > tc.n {
				// All n park; nothing may flush while the clock is frozen.
				waitUntil(t, "submissions to park", func() bool { return c.Waiting() == tc.n })
			}
			for i, st := range tc.steps {
				vc.Advance(st.advance)
				waitUntil(t, "post-advance waiting count", func() bool { return c.Waiting() == st.waiting })
				if st.waiting > 0 && len(results) != 0 {
					t.Fatalf("step %d: %d submissions returned before the window expired", i, len(results))
				}
			}
			for i := 0; i < tc.n; i++ {
				if err := <-results; err != nil {
					t.Fatalf("submission %d: %v", i, err)
				}
			}
			if got := c.Waiting(); got != 0 {
				t.Fatalf("%d submissions still parked after flush", got)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// errNilPlacement marks a Submit that returned neither record nor error.
var errNilPlacement = errNil{}

type errNil struct{}

func (errNil) Error() string { return "nil placement with nil error" }
