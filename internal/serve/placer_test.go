package serve

import (
	"errors"
	"testing"

	"tracon/internal/model"
	"tracon/internal/xen"
)

// newTestServer wires a Server over a shared trained library.
func newTestServer(t testing.TB, k model.Kind, cfg Config) *Server {
	t.Helper()
	s, err := New(testLibrary(t, k), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// subLibrary builds a library holding only the named applications, reusing
// the trained per-app models — a cheap way to get a census-changing swap.
func subLibrary(t *testing.T, lib *model.Library, apps ...string) *model.Library {
	t.Helper()
	sub := model.NewLibrary(lib.Kind)
	for _, a := range apps {
		m, err := lib.Model(a)
		if err != nil {
			t.Fatal(err)
		}
		f, err := lib.Features(a)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := lib.SoloRuntime(a)
		if err != nil {
			t.Fatal(err)
		}
		io, err := lib.SoloIOPS(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.AddTrained(m, f, xen.SoloProfile{Runtime: rt, IOPS: io}); err != nil {
			t.Fatal(err)
		}
	}
	return sub
}

func TestPlacerFillQueueAndPromote(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2, Policy: "mios"})
	p := s.Placer()
	apps := testLibrary(t, model.NLM).Apps()

	var recs []*Placement
	for i := 0; i < 6; i++ {
		rec, err := p.Submit(apps[i%len(apps)])
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	placed, queued := 0, 0
	for _, r := range recs {
		switch r.Status {
		case StatusPlaced:
			placed++
		case StatusQueued:
			queued++
		default:
			t.Fatalf("unexpected status %q", r.Status)
		}
	}
	if placed != 4 || queued != 2 {
		t.Fatalf("want 4 placed / 2 queued on 2 machines, got %d/%d", placed, queued)
	}
	if got := p.FreeSlots(); got != 0 {
		t.Fatalf("free slots = %d, want 0", got)
	}
	if got := p.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Completing one placement must promote a queued task into the slot.
	var placedID string
	for _, r := range recs {
		if r.Status == StatusPlaced {
			placedID = r.ID
			break
		}
	}
	done, err := p.Complete(placedID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusCompleted {
		t.Fatalf("completed record has status %q", done.Status)
	}
	if got := p.QueueDepth(); got != 1 {
		t.Fatalf("queue depth after completion = %d, want 1", got)
	}
	if got := p.FreeSlots(); got != 0 {
		t.Fatalf("free slots after promotion = %d, want 0", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacerNeighbourRecorded(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, Policy: "mios"})
	p := s.Placer()
	apps := testLibrary(t, model.NLM).Apps()

	first, err := p.Submit(apps[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusPlaced || first.Neighbour != "" {
		t.Fatalf("first placement: %+v", first)
	}
	if first.PredictedRuntime <= 0 {
		t.Fatalf("no runtime forecast captured: %+v", first)
	}
	second, err := p.Submit(apps[1])
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusPlaced || second.Neighbour != apps[0] {
		t.Fatalf("second placement should co-locate with %q: %+v", apps[0], second)
	}
	if second.Machine != first.Machine || second.Slot == first.Slot {
		t.Fatalf("second placement not on the sibling VM: %+v vs %+v", second, first)
	}
}

func TestPlacerTypedErrors(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1})
	p := s.Placer()
	apps := testLibrary(t, model.NLM).Apps()

	if _, err := p.Submit("nosuch"); !errors.Is(err, model.ErrUnknownApp) {
		t.Fatalf("submit of unknown app: %v", err)
	}
	if _, err := p.Complete("t-999"); !errors.Is(err, ErrUnknownPlacement) {
		t.Fatalf("complete of unknown id: %v", err)
	}
	rec, err := p.Submit(apps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Complete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Complete(rec.ID); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("double complete: %v", err)
	}
	// A queued (not yet placed) task cannot be completed either.
	for i := 0; i < 2; i++ {
		if _, err := p.Submit(apps[i]); err != nil {
			t.Fatal(err)
		}
	}
	q, err := p.Submit(apps[2])
	if err != nil {
		t.Fatal(err)
	}
	if q.Status != StatusQueued {
		t.Fatalf("expected a queued task on a full machine, got %+v", q)
	}
	if _, err := p.Complete(q.ID); !errors.Is(err, ErrNotPlaced) {
		t.Fatalf("complete of queued task: %v", err)
	}
}

// A hot-swap that shrinks the census must fail queued tasks the new
// library cannot score, loudly, instead of wedging the queue head.
func TestPlacerFailsQueuedTasksUnknownAfterSwap(t *testing.T) {
	lib := testLibrary(t, model.NLM)
	apps := lib.Apps()
	s, err := New(lib, Config{Machines: 1, Policy: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Placer()
	// Fill both slots with apps[0], then queue apps[1].
	var ids []string
	for i := 0; i < 2; i++ {
		rec, err := p.Submit(apps[0])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	victim, err := p.Submit(apps[1])
	if err != nil {
		t.Fatal(err)
	}
	if victim.Status != StatusQueued {
		t.Fatalf("expected queued, got %+v", victim)
	}
	// Swap to a library that has never heard of apps[1].
	if err := s.ModelSet().Swap(subLibrary(t, lib, apps[0])); err != nil {
		t.Fatal(err)
	}
	// The next drain (triggered by a completion) evicts the victim.
	if _, err := p.Complete(ids[0]); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Get(victim.ID)
	if !ok {
		t.Fatal("victim record vanished")
	}
	if got.Status != StatusFailed || got.Error == "" {
		t.Fatalf("victim should have failed loudly: %+v", got)
	}
	if p.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after eviction", p.QueueDepth())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The finished ring must bound the placement map.
func TestPlacerCompletedRecordsBounded(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, CompletedCap: 4})
	p := s.Placer()
	app := testLibrary(t, model.NLM).Apps()[0]
	var first string
	for i := 0; i < 10; i++ {
		rec, err := p.Submit(app)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rec.ID
		}
		if _, err := p.Complete(rec.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := p.Get(first); ok {
		t.Fatal("oldest finished record should have been evicted")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
