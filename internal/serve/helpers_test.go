package serve

import (
	"sync"
	"testing"

	"tracon/internal/model"
	"tracon/internal/workload"
	"tracon/internal/xen"
)

// Trained libraries are the expensive fixture (a full 8×125 profiling
// sweep per family), so each family is built once per test binary.
var (
	libMu    sync.Mutex
	libCache = map[model.Kind]*model.Library{}
)

// testLibrary returns a library of the given family trained over the
// eight Table 3 benchmarks at seed 1.
func testLibrary(t testing.TB, k model.Kind) *model.Library {
	t.Helper()
	libMu.Lock()
	defer libMu.Unlock()
	if lib, ok := libCache[k]; ok {
		return lib
	}
	host, err := xen.NewHost(xen.DefaultHost())
	if err != nil {
		t.Fatal(err)
	}
	tb := xen.NewTestbed(host, 3, 0.05, 1)
	var bgs []xen.AppSpec
	for _, w := range workload.ProfilingWorkloads(host.Config().Disk) {
		bgs = append(bgs, w.Spec)
	}
	var specs []xen.AppSpec
	for _, b := range workload.Benchmarks() {
		specs = append(specs, b.Spec)
	}
	lib, err := model.BuildLibrary(tb, specs, bgs, k)
	if err != nil {
		t.Fatal(err)
	}
	libCache[k] = lib
	return lib
}
