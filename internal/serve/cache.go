package serve

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"tracon/internal/model"
)

// The serving hot path scores every candidate co-location of every
// submitted task. The underlying model families pay real evaluation cost
// per prediction (a KNN search for WMM, 60 trees for Forest, a polynomial
// expansion for LM/NLM), and a daemon answers the same (target, corunner)
// queries millions of times. PredCache memoizes predictions in a sharded,
// bounded map keyed by the model kind and the *feature signature* of the
// app pair, so repeated scoring skips regression evaluation entirely while
// a model hot-swap (which changes the signatures) naturally misses and
// refills.

// predOp distinguishes the four Predictor query types sharing the cache.
type predOp uint8

const (
	opRuntime predOp = iota
	opIOPS
	opSoloRuntime
	opSoloIOPS
)

// predKey addresses one memoized prediction. Target and corunner are
// feature signatures (FNV-1a over the model kind, library generation, app
// name and characteristic vector), so two libraries never share entries
// and a hot-swap invalidates by construction rather than by flushing.
type predKey struct {
	op       predOp
	kind     model.Kind
	target   uint64
	corunner uint64
}

// cacheShards is the shard count; a power of two so the shard pick is a
// mask. 16 shards keep 8+ submitters from serializing on one mutex.
const cacheShards = 16

// DefaultCacheCap is the default per-shard entry bound. The full app-pair
// working set of an 8-app library is tiny (8×9×2 pair predictions); the
// bound exists so a daemon fed a churning app census cannot grow without
// limit.
const DefaultCacheCap = 4096

// PredCache is a sharded, bounded memo of model predictions. It is safe
// for concurrent use; values are pure functions of their key, so racing
// fills compute identical results and interleaving never changes contents.
type PredCache struct {
	capPerShard int
	shards      [cacheShards]cacheShard

	hits, misses, evictions atomic.Uint64
}

type cacheShard struct {
	mu sync.Mutex
	m  map[predKey]float64
}

// NewPredCache builds a cache bounded at capPerShard entries per shard
// (DefaultCacheCap if <= 0).
func NewPredCache(capPerShard int) *PredCache {
	if capPerShard <= 0 {
		capPerShard = DefaultCacheCap
	}
	c := &PredCache{capPerShard: capPerShard}
	for i := range c.shards {
		c.shards[i].m = make(map[predKey]float64)
	}
	return c
}

func (c *PredCache) shard(k predKey) *cacheShard {
	return &c.shards[(k.target^k.corunner^uint64(k.op))&(cacheShards-1)]
}

// get returns the memoized value for k.
func (c *PredCache) get(k predKey) (float64, bool) {
	s := c.shard(k)
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// put stores v under k, evicting an arbitrary resident entry when the
// shard is at capacity. Eviction order is irrelevant for correctness —
// every entry is recomputable — so the first key map iteration yields is
// good enough and costs O(1).
func (c *PredCache) put(k predKey, v float64) {
	s := c.shard(k)
	s.mu.Lock()
	if _, resident := s.m[k]; !resident && len(s.m) >= c.capPerShard {
		for old := range s.m {
			delete(s.m, old)
			c.evictions.Add(1)
			break
		}
	}
	s.m[k] = v
	s.mu.Unlock()
}

// Len returns the total resident entry count.
func (c *PredCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// Stats snapshots the counters.
func (c *PredCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// CachingPredictor wraps a model.Predictor with a PredCache. One instance
// serves one library generation: app feature signatures are computed at
// construction, so lookups on the hot path are two map reads and a hash
// join, never a feature fetch. Unknown applications bypass the cache and
// surface the library's typed error unchanged.
type CachingPredictor struct {
	pred  model.Predictor
	kind  model.Kind
	cache *PredCache
	sigs  map[string]uint64
	idle  uint64 // signature of the empty corunner
}

// NewCachingPredictor builds the caching view of lib for the given
// generation. The generation is folded into every signature so entries
// from different hot-swap epochs can never collide, even when a retrained
// model leaves an app's characteristics bit-identical.
func NewCachingPredictor(lib *model.Library, cache *PredCache, generation uint64) (*CachingPredictor, error) {
	cp := &CachingPredictor{
		pred:  lib,
		kind:  lib.Kind,
		cache: cache,
		sigs:  map[string]uint64{},
	}
	for _, app := range lib.Apps() {
		f, err := lib.Features(app)
		if err != nil {
			return nil, err
		}
		cp.sigs[app] = featureSignature(lib.Kind, generation, app, f)
	}
	cp.idle = featureSignature(lib.Kind, generation, "", nil)
	return cp, nil
}

// featureSignature hashes (kind, generation, name, features) with FNV-1a.
func featureSignature(kind model.Kind, generation uint64, app string, features []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(kind))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], generation)
	h.Write(buf[:])
	h.Write([]byte(app))
	for _, f := range features {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Cache exposes the underlying cache (for stats export).
func (cp *CachingPredictor) Cache() *PredCache { return cp.cache }

// memoized answers op through the cache; compute runs on a miss.
func (cp *CachingPredictor) memoized(op predOp, target, corunner string, compute func() (float64, error)) (float64, error) {
	tsig, ok := cp.sigs[target]
	if !ok {
		// Unknown target: let the library produce its typed error.
		return compute()
	}
	csig := cp.idle
	if corunner != "" {
		if csig, ok = cp.sigs[corunner]; !ok {
			return compute()
		}
	}
	k := predKey{op: op, kind: cp.kind, target: tsig, corunner: csig}
	if v, ok := cp.cache.get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return 0, err
	}
	cp.cache.put(k, v)
	return v, nil
}

// PredictRuntime implements model.Predictor.
func (cp *CachingPredictor) PredictRuntime(target, corunner string) (float64, error) {
	return cp.memoized(opRuntime, target, corunner, func() (float64, error) {
		return cp.pred.PredictRuntime(target, corunner)
	})
}

// PredictIOPS implements model.Predictor.
func (cp *CachingPredictor) PredictIOPS(target, corunner string) (float64, error) {
	return cp.memoized(opIOPS, target, corunner, func() (float64, error) {
		return cp.pred.PredictIOPS(target, corunner)
	})
}

// SoloRuntime implements model.Predictor.
func (cp *CachingPredictor) SoloRuntime(target string) (float64, error) {
	return cp.memoized(opSoloRuntime, target, "", func() (float64, error) {
		return cp.pred.SoloRuntime(target)
	})
}

// SoloIOPS implements model.Predictor.
func (cp *CachingPredictor) SoloIOPS(target string) (float64, error) {
	return cp.memoized(opSoloIOPS, target, "", func() (float64, error) {
		return cp.pred.SoloIOPS(target)
	})
}

// Apps implements model.Predictor.
func (cp *CachingPredictor) Apps() []string { return cp.pred.Apps() }
