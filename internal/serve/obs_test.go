package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"tracon/internal/model"
	"tracon/internal/obs"
)

func TestRequestIDEchoAndMint(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	// A client-supplied ID is echoed and lands on the placement record.
	body, _ := json.Marshal(submitRequest{App: app})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/tasks", bytes.NewReader(body))
	req.Header.Set(RequestIDHeader, "client-abc-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-abc-1" {
		t.Fatalf("echoed request id = %q, want client-abc-1", got)
	}
	var rec Placement
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ReqID != "client-abc-1" {
		t.Fatalf("record request_id = %q, want client-abc-1", rec.ReqID)
	}

	// Without a client ID the daemon mints one.
	resp3, err := http.Get(ts.URL + "/v1/machines")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	minted := resp3.Header.Get(RequestIDHeader)
	if !strings.HasPrefix(minted, "r-") {
		t.Fatalf("minted request id = %q, want r-... form", minted)
	}
}

func TestBatchSharesRequestID(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	breq := BatchRequest{Tasks: []BatchTask{{App: app}, {App: app}}}
	body, _ := json.Marshal(breq)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/tasks:batch", bytes.NewReader(body))
	req.Header.Set(RequestIDHeader, "batch-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	for i, r := range br.Results {
		if r.Placement == nil {
			t.Fatalf("task %d not admitted: %+v", i, r)
		}
		if r.Placement.ReqID != "batch-req-7" {
			t.Fatalf("task %d request_id = %q, want batch-req-7", i, r.Placement.ReqID)
		}
	}
}

// TestTraceSpansJoinable drives tasks through their full lifecycle and
// asserts the /v1/trace NDJSON stream joins admission to completion by
// request ID and placement ID, and converts to Perfetto without error.
func TestTraceSpansJoinable(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	body, _ := json.Marshal(submitRequest{App: app})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/tasks", bytes.NewReader(body))
	req.Header.Set(RequestIDHeader, "trace-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rec Placement
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if code := httpJSON(t, "POST", ts.URL+"/v1/placements/"+rec.ID+"/complete", Observation{Runtime: 1}, nil); code != http.StatusOK {
		t.Fatalf("complete: status %d", code)
	}

	traceResp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if ct := traceResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type = %q", ct)
	}
	runs, err := obs.ReadTraces(traceResp.Body)
	if err != nil {
		t.Fatalf("parsing /v1/trace: %v", err)
	}
	if len(runs) != 1 || runs[0].Label != "tracond" {
		t.Fatalf("trace runs = %+v", runs)
	}

	kinds := map[string]bool{}
	for _, ev := range runs[0].Events {
		sv := ev.Serve
		if sv == nil {
			t.Fatalf("non-serve event %q in daemon trace", ev.Kind)
		}
		if sv.Task == rec.ID {
			kinds[ev.Kind] = true
			switch ev.Kind {
			case "admit", "place", "complete":
				if sv.Req != "trace-req-1" {
					t.Fatalf("%s span request id = %q, want trace-req-1", ev.Kind, sv.Req)
				}
			}
			if ev.Kind == "place" && (sv.Machine < 0 || sv.App != app) {
				t.Fatalf("place span incomplete: %+v", sv)
			}
		}
	}
	for _, k := range []string{"admit", "place", "complete"} {
		if !kinds[k] {
			t.Fatalf("span kind %q missing for %s (saw %v)", k, rec.ID, kinds)
		}
	}

	var perfetto bytes.Buffer
	if err := obs.WritePerfetto(&perfetto, runs[0]); err != nil {
		t.Fatalf("perfetto conversion: %v", err)
	}
	var probe struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfetto.Bytes(), &probe); err != nil {
		t.Fatalf("perfetto output not JSON: %v", err)
	}
	if len(probe.TraceEvents) == 0 {
		t.Fatal("perfetto conversion produced no events")
	}

	// The serve-run analysis joins the lifecycle too.
	sum := runs[0].ServeSummarize()
	if sum.Kinds["admit"] == 0 || sum.Kinds["complete"] == 0 {
		t.Fatalf("ServeSummarize kinds = %v", sum.Kinds)
	}
}

func TestTraceDisabled(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, TraceCap: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled trace status = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, nil); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}

	// Default: JSON snapshot.
	var points []obs.MetricPoint
	if code := httpJSON(t, "GET", ts.URL+"/metrics", nil, &points); code != http.StatusOK {
		t.Fatalf("json metrics: status %d", code)
	}
	if len(points) == 0 {
		t.Fatal("json metrics empty")
	}

	// ?format=prometheus: exposition text parseable down to the submit
	// route's histogram.
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("prometheus content type = %q", ct)
	}
	ph, err := obs.ParsePrometheusHistogram(resp.Body,
		"serve_http_request_seconds", map[string]string{"route": "/v1/tasks"})
	if err != nil {
		t.Fatalf("parsing scrape: %v", err)
	}
	if ph.Count != 1 {
		t.Fatalf("submit route count = %d, want 1", ph.Count)
	}

	// Accept header negotiation reaches the same format.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(raw), "# TYPE serve_tasks_submitted counter") {
		t.Fatalf("Accept negotiation did not yield exposition text:\n%s", raw[:min(len(raw), 200)])
	}

	// Unknown formats are a client error.
	resp3, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status = %d, want 400", resp3.StatusCode)
	}
}

// TestOpsRoutesExcluded asserts scrape/probe traffic stays out of the
// aggregate latency histogram and the SLO window while still appearing in
// its own per-route series.
func TestOpsRoutesExcluded(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		for _, path := range []string{"/metrics", "/healthz", "/v1/slo"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	if n := s.latency.Snapshot().N; n != 0 {
		t.Fatalf("aggregate request histogram saw %d ops-route requests", n)
	}
	rep := s.slo.Report()
	if rep.Requests != 0 {
		t.Fatalf("SLO window saw %d ops-route requests", rep.Requests)
	}
	perRoute := s.reg.Histogram(obs.Labeled("serve.http_request_seconds", "route", "/metrics"), nil).Snapshot()
	if perRoute.N != 5 {
		t.Fatalf("per-route /metrics histogram N = %d, want 5", perRoute.N)
	}

	// Application traffic DOES feed both.
	app := testLibrary(t, model.NLM).Apps()[0]
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, nil); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if n := s.latency.Snapshot().N; n != 1 {
		t.Fatalf("aggregate histogram N = %d after one submit, want 1", n)
	}
	if rep := s.slo.Report(); rep.Requests != 1 {
		t.Fatalf("SLO window requests = %d after one submit, want 1", rep.Requests)
	}
}

// TestSLOEndpointAndDegradedHealthz saturates a tiny cluster so the
// admission valve sheds a request: the 429 burns the error budget, /v1/slo
// reports degraded, and healthz folds the verdict in.
func TestSLOEndpointAndDegradedHealthz(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 1, MaxQueue: 1, SLOErrorRate: 0.01})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	// 2 slots + queue bound 1: the fourth uncompleted submit is shed.
	saw429 := false
	for i := 0; i < 4; i++ {
		code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, nil)
		if code == http.StatusTooManyRequests {
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatal("saturation never produced a 429")
	}

	var rep obs.SLOReport
	if code := httpJSON(t, "GET", ts.URL+"/v1/slo", nil, &rep); code != http.StatusOK {
		t.Fatalf("/v1/slo status %d", code)
	}
	if rep.Status != obs.SLOStatusDegraded || rep.Errors == 0 {
		t.Fatalf("slo report not degraded after shed load: %+v", rep)
	}
	if rep.ErrorBudgetLeft >= 1 {
		t.Fatalf("error budget untouched: %+v", rep)
	}

	var hz struct {
		Status string `json:"status"`
		SLO    struct {
			Status string `json:"status"`
		} `json:"slo"`
	}
	if code := httpJSON(t, "GET", ts.URL+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hz.Status != "degraded" || hz.SLO.Status != obs.SLOStatusDegraded {
		t.Fatalf("healthz did not fold in the SLO verdict: %+v", hz)
	}
}

// TestEvictRequeueSpan kills a busy machine and asserts the re-queue is
// traced with the task's identity.
func TestEvictRequeueSpan(t *testing.T) {
	s := newTestServer(t, model.NLM, Config{Machines: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	app := testLibrary(t, model.NLM).Apps()[0]

	var rec Placement
	if code := httpJSON(t, "POST", ts.URL+"/v1/tasks", submitRequest{App: app}, &rec); code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	var op machineOpResponse
	if code := httpJSON(t, "POST", ts.URL+"/v1/machines/"+strconv.Itoa(rec.Machine)+"/kill", nil, &op); code != http.StatusOK {
		t.Fatalf("kill: status %d", code)
	}

	found := false
	for _, ev := range s.tracer.tr.Events() {
		if ev.Kind == "evict_requeue" && ev.Serve != nil && ev.Serve.Task == rec.ID {
			found = true
			if ev.Serve.Machine != rec.Machine {
				t.Fatalf("evict span machine = %d, want %d", ev.Serve.Machine, rec.Machine)
			}
		}
	}
	if !found {
		t.Fatal("no evict_requeue span for the killed task")
	}
}
