package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"tracon/internal/obs"
)

// HTTP-layer observability: request IDs, per-route metrics, structured
// access logging, and the SLO feed. Every handler runs inside instrument,
// which (1) resolves the request ID — accepted from the client's
// X-Request-Id header or minted here — and echoes it on the response,
// (2) records per-route latency and status-class counters, (3) feeds the
// application-aggregate histogram and the SLO tracker for non-operational
// routes, and (4) emits one Debug access-log line carrying the request ID.

// RequestIDHeader is the request/response header carrying the request ID.
const RequestIDHeader = "X-Request-Id"

// ctxKeyReqID keys the request ID in a request context.
type ctxKeyReqID struct{}

// RequestIDFrom extracts the request ID instrument stored in ctx ("" when
// the request did not pass through the instrumented mux).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyReqID{}).(string)
	return id
}

// newRequestID mints "r-<boot entropy>-<n>": unique within a daemon run
// and unlikely to collide across restarts.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("r-%s-%d", s.reqPrefix, s.reqSeq.Add(1))
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusClass buckets an HTTP status into its class label ("2xx", ...).
func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// opsRoutes are the scrape/probe surfaces: their traffic is operational,
// not application load, so it stays out of the aggregate request-latency
// histogram and the SLO window — a 1s/scrape Prometheus poll must not
// drag the p99 the daemon is judged by. Per-route series still cover them.
var opsRoutes = map[string]bool{
	"/metrics":  true,
	"/healthz":  true,
	"/v1/trace": true,
	"/v1/slo":   true,
}

// routeMetrics is one route's pre-created instrument set; building it at
// registration keeps the per-request path off the registry's name map.
type routeMetrics struct {
	lat *obs.Histogram
}

// instrument wraps a handler with the full request-scoped pipeline.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := &routeMetrics{
		lat: s.reg.Histogram(obs.Labeled("serve.http_request_seconds", "route", route), obs.DefaultLatencyBuckets()),
	}
	ops := opsRoutes[route]
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = s.newRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		ctx := context.WithValue(r.Context(), ctxKeyReqID{}, reqID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}

		t0 := s.clock.Now()
		h(sw, r.WithContext(ctx))
		elapsed := s.clock.Since(t0).Seconds()

		rm.lat.Observe(elapsed)
		s.reg.Counter(obs.Labeled("serve.http_requests",
			"code", statusClass(sw.code), "route", route)).Inc()
		if !ops {
			s.latency.Observe(elapsed)
			s.reg.Counter("serve.http_requests").Inc()
			// 429s burn the error budget: shed load is broken load from the
			// client's point of view, which is the SLO's point of view.
			s.slo.Record(elapsed, sw.code >= 500 || sw.code == http.StatusTooManyRequests)
		}
		s.logger.LogAttrs(ctx, slog.LevelDebug, "http request",
			slog.String("req_id", reqID),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("code", sw.code),
			slog.Float64("dur_ms", elapsed*1e3),
		)
	}
}

// sloReport evaluates the objectives and logs status transitions exactly
// once per change (evaluation happens on /v1/slo and /healthz, so a
// scraped daemon notices within one probe interval).
func (s *Server) sloReport() obs.SLOReport {
	rep := s.slo.Report()
	if prev := s.sloStatus.Swap(rep.Status); prev != nil && prev.(string) != rep.Status {
		level := slog.LevelWarn
		if rep.Status == obs.SLOStatusOK {
			level = slog.LevelInfo
		}
		s.logger.LogAttrs(context.Background(), level, "slo status changed",
			slog.String("from", prev.(string)),
			slog.String("to", rep.Status),
			slog.Float64("p99_s", rep.Latency.P99),
			slog.Float64("error_rate", rep.ErrorRate),
			slog.Float64("error_budget_left", rep.ErrorBudgetLeft),
		)
	}
	return rep
}

// handleSLO serves GET /v1/slo.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sloReport())
}

// handleTrace serves GET /v1/trace: the span ring as schema-3 NDJSON, the
// same stream format the offline experiment suites export, so
// tracontrace consumes daemon traces unchanged.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "tracing is disabled"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.tracer.writeNDJSON(w)
}

// newReqPrefix draws the boot entropy for request IDs.
func newReqPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0"
	}
	return hex.EncodeToString(b[:])
}

// discardLogger satisfies a nil Config.Logger: everything dropped.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every defined level
	}))
}
