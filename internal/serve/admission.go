package serve

import "sync/atomic"

// Admission is the daemon's backpressure valve: a non-blocking in-flight
// token bucket for the submit path plus a queue-depth bound enforced
// against the placer backlog. A saturated daemon answers 429 with a
// Retry-After hint instead of building an unbounded internal queue — the
// caller owns the retry policy.
//
// The bound checks here are pure — they never mutate the rejection
// counter. Whoever actually turns a "would reject" into a refused request
// (the HTTP layer, the placer's atomic admission) records it once via
// CountRejections, so probing callers (metrics, batch pre-checks) cannot
// inflate the count.
type Admission struct {
	sem      chan struct{}
	maxQueue int

	rejected atomic.Uint64
}

// DefaultMaxInflight bounds concurrent submissions being decided.
const DefaultMaxInflight = 64

// NewAdmission builds the valve. maxInflight <= 0 takes the default;
// maxQueue <= 0 disables the queue-depth bound.
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	return &Admission{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
	}
}

// TryAcquire claims an in-flight token without blocking. A refusal is not
// counted here — the caller decides whether it becomes a rejected request.
func (a *Admission) TryAcquire() bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a token claimed with TryAcquire.
func (a *Admission) Release() { <-a.sem }

// InFlight returns the number of tokens currently claimed.
func (a *Admission) InFlight() int { return len(a.sem) }

// WouldReject reports whether a submission arriving at the given backlog
// depth should shed. Pure: no counter is touched.
func (a *Admission) WouldReject(depth int) bool {
	return a.maxQueue > 0 && depth >= a.maxQueue
}

// ScaledBound resolves the queue bound against the fraction of the
// inventory that is actually schedulable: a cluster serving at half
// capacity queues half as much before shedding, and one with no up
// machines accepts nothing. The bound never scales below one slot's worth
// of queue while any capacity remains, and a disabled bound (maxQueue <= 0)
// stays disabled except for the zero-capacity cutoff. Returns -1 for
// "unbounded" and 0 for "reject everything".
func (a *Admission) ScaledBound(available, total int) int {
	if available <= 0 {
		return 0
	}
	if a.maxQueue <= 0 || total <= 0 {
		return -1
	}
	bound := a.maxQueue * available / total
	if bound < 1 {
		bound = 1
	}
	return bound
}

// WouldRejectScaled is WouldReject with the bound scaled by ScaledBound.
// Pure: no counter is touched.
func (a *Admission) WouldRejectScaled(depth, available, total int) bool {
	switch bound := a.ScaledBound(available, total); {
	case bound < 0:
		return false
	default:
		return depth >= bound
	}
}

// CountRejections records n refused submissions. This is the only mutator
// of the rejection count.
func (a *Admission) CountRejections(n int) {
	if n > 0 {
		a.rejected.Add(uint64(n))
	}
}

// Rejected counts admissions refused (inflight and queue-depth combined).
func (a *Admission) Rejected() uint64 { return a.rejected.Load() }
