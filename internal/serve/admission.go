package serve

import "sync/atomic"

// Admission is the daemon's backpressure valve: a non-blocking in-flight
// token bucket for the submit path plus a queue-depth bound checked
// against the placer backlog. A saturated daemon answers 429 with a
// Retry-After hint instead of building an unbounded internal queue — the
// caller owns the retry policy.
type Admission struct {
	sem      chan struct{}
	maxQueue int

	rejected atomic.Uint64
}

// DefaultMaxInflight bounds concurrent submissions being decided.
const DefaultMaxInflight = 64

// NewAdmission builds the valve. maxInflight <= 0 takes the default;
// maxQueue <= 0 disables the queue-depth bound.
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	return &Admission{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: maxQueue,
	}
}

// TryAcquire claims an in-flight token without blocking.
func (a *Admission) TryAcquire() bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
		a.rejected.Add(1)
		return false
	}
}

// Release returns a token claimed with TryAcquire.
func (a *Admission) Release() { <-a.sem }

// QueueFull reports whether the backlog is at its bound.
func (a *Admission) QueueFull(depth int) bool {
	if a.maxQueue <= 0 {
		return false
	}
	full := depth >= a.maxQueue
	if full {
		a.rejected.Add(1)
	}
	return full
}

// QueueFullScaled is QueueFull with the bound scaled to the fraction of
// the inventory that is actually schedulable: a cluster serving at half
// capacity queues half as much before shedding, and one with no up
// machines accepts nothing. The bound never scales below one slot's worth
// of queue while any capacity remains, and a disabled bound (maxQueue <= 0)
// stays disabled except for the zero-capacity cutoff.
func (a *Admission) QueueFullScaled(depth, available, total int) bool {
	if available <= 0 {
		a.rejected.Add(1)
		return true
	}
	if a.maxQueue <= 0 || total <= 0 {
		return false
	}
	bound := a.maxQueue * available / total
	if bound < 1 {
		bound = 1
	}
	full := depth >= bound
	if full {
		a.rejected.Add(1)
	}
	return full
}

// Rejected counts admissions refused (inflight and queue-depth combined).
func (a *Admission) Rejected() uint64 { return a.rejected.Load() }
