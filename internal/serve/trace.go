package serve

import (
	"io"
	"time"

	"tracon/internal/obs"
)

// serveTracer records the daemon's request lifecycle into a bounded
// obs.Tracer ring using the schema-3 serve span kinds, exported live on
// GET /v1/trace as NDJSON. Every emit is nil-safe so a daemon running
// with tracing disabled pays only a pointer check per span site. T on
// every span is seconds since the daemon started, making spans from one
// process directly comparable and the export convertible by
// tracontrace -perfetto.
type serveTracer struct {
	tr    *obs.Tracer
	clock obs.Clock
	start time.Time
}

// newServeTracer builds the ring. capacity <= 0 takes obs.DefaultTraceCap;
// a nil clock takes the wall clock.
func newServeTracer(policy string, machines, capacity int, clock obs.Clock) *serveTracer {
	if clock == nil {
		clock = obs.Wall
	}
	return &serveTracer{
		tr:    obs.NewTracer("tracond", policy, machines, capacity),
		clock: clock,
		start: clock.Now(),
	}
}

// emit stamps and records one span.
func (t *serveTracer) emit(kind string, info obs.ServeInfo) {
	if t == nil {
		return
	}
	t.tr.Append(obs.TraceEvent{
		T:     t.clock.Since(t.start).Seconds(),
		Kind:  kind,
		Serve: &info,
	})
}

// admit records a task entering the backlog.
func (t *serveTracer) admit(reqID, task, app string) {
	t.emit("admit", obs.ServeInfo{Req: reqID, Task: task, App: app, Machine: -1, Slot: -1})
}

// reject records a shed submission and why.
func (t *serveTracer) reject(reqID, app, reason string) {
	t.emit("reject", obs.ServeInfo{Req: reqID, App: app, Machine: -1, Slot: -1, Reason: reason})
}

// coalesceWait records how long a submission was parked in the coalescer.
func (t *serveTracer) coalesceWait(reqID, app string, dur time.Duration) {
	t.emit("coalesce_wait", obs.ServeInfo{
		Req: reqID, App: app, Machine: -1, Slot: -1, DurS: dur.Seconds(),
	})
}

// batchPass records one full draining iteration: batch offered, tasks
// placed, wall time of the pass.
func (t *serveTracer) batchPass(batch, placed int, dur time.Duration) {
	t.emit("batch_pass", obs.ServeInfo{
		Machine: -1, Slot: -1, Batch: batch, Placed: placed, DurS: dur.Seconds(),
	})
}

// score records one scheduler invocation (the model-scoring hot path).
func (t *serveTracer) score(batch, placed int, dur time.Duration) {
	t.emit("score", obs.ServeInfo{
		Machine: -1, Slot: -1, Batch: batch, Placed: placed, DurS: dur.Seconds(),
	})
}

// planOutcome records how an optimistic pass resolved: plan_commit (the
// snapshot held), plan_retry (stale snapshot, recompute), plan_fallback
// (contention exhausted the retries; scheduling ran under the lock).
func (t *serveTracer) planOutcome(kind string, batch int) {
	t.emit(kind, obs.ServeInfo{Machine: -1, Slot: -1, Batch: batch})
}

// place records a task binding to a concrete slot.
func (t *serveTracer) place(rec *Placement) {
	t.emit("place", obs.ServeInfo{
		Req: rec.ReqID, Task: rec.ID, App: rec.App,
		Machine: rec.Machine, Slot: rec.Slot, Neighbour: rec.Neighbour,
		Predicted: rec.PredictedRuntime, Gen: rec.Generation,
	})
}

// complete records a task freeing its slot.
func (t *serveTracer) complete(rec *Placement) {
	t.emit("complete", obs.ServeInfo{
		Req: rec.ReqID, Task: rec.ID, App: rec.App,
		Machine: rec.Machine, Slot: rec.Slot,
	})
}

// evictRequeue records a task losing its machine to a kill and returning
// to the backlog.
func (t *serveTracer) evictRequeue(rec *Placement, machine, slot int) {
	t.emit("evict_requeue", obs.ServeInfo{
		Req: rec.ReqID, Task: rec.ID, App: rec.App,
		Machine: machine, Slot: slot,
	})
}

// recovery records one boot-time journal recovery: events replayed
// (Batch), orphans re-queued (Placed) and the wall time of the whole
// restore-replay-verify sequence.
func (t *serveTracer) recovery(replayed, orphans int, dur time.Duration) {
	t.emit("recovery", obs.ServeInfo{
		Machine: -1, Slot: -1, Batch: replayed, Placed: orphans, DurS: dur.Seconds(),
	})
}

// writeNDJSON streams the retained spans; nil tracers write nothing.
func (t *serveTracer) writeNDJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	return t.tr.WriteNDJSON(w)
}
